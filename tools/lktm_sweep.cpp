// Manifest-driven sweep driver: plan a sweep once, run it (resumably, with
// per-job watchdogs and bounded retry), fan it out across worker processes
// and hosts, inspect its state, and merge the per-job artifacts into one
// lktm.stats.v1 document (optionally condensed to lktm.summary.v1).
//
//   lktm_sweep plan --preset smoke --manifest sweep.json --shards 3
//   lktm_sweep run --manifest sweep.json --host-threads 4      # one process
//   lktm_sweep work --manifest sweep.json --worker-id host1-a  # many
//   lktm_sweep status --manifest sweep.json
//   lktm_sweep merge --manifest sweep.json --out merged.json
//   lktm_sweep summarize --in merged.json --out summary.json
//
// `run` and `work` are idempotent: completed jobs are skipped, a job
// interrupted mid-run restarts (or is reclaimed from a dead worker), and the
// merged output is bit-identical no matter how many workers ran it, where,
// or how often they died. `work` coordinates purely through the claim spool
// next to the manifest (<manifest>.claims by default) — point every worker
// at the same directory (shared mount) and they divide the sweep without a
// daemon.
#include <chrono>
#include <filesystem>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "config/artifact.hpp"
#include "config/distrib.hpp"
#include "config/machine.hpp"
#include "config/orchestrator.hpp"
#include "config/systems.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace lktm;

void usage() {
  std::printf(
      "usage: lktm_sweep <command> [options]\n"
      "commands:\n"
      "  plan    create a job manifest\n"
      "    --manifest PATH      manifest file to write (required)\n"
      "    --artifact-dir DIR   per-job artifact directory (default: <manifest>.d)\n"
      "    --preset NAME        smoke | figures | table2-backends |\n"
      "                         table3-dbtraffic | bigcores-128 | bigcores-256\n"
      "                         (default smoke; bigcores-* need a build with\n"
      "                         -DLKTM_MAX_CORES large enough, e.g. the\n"
      "                         'bigcores' CMake preset)\n"
      "    --seed N             workload seed (default 11)\n"
      "    --shards N           shard count for distributed workers (default 1)\n"
      "  run     execute the pending jobs of a manifest (resumable, one process)\n"
      "    --manifest PATH      manifest file (required; updated in place)\n"
      "    --host-threads N     worker threads (default: hardware)\n"
      "    --max-jobs N         stop after N jobs this invocation (0 = all)\n"
      "    --max-attempts N     attempts for transient failures (default 2)\n"
      "    --retry-backoff S    seconds before first retry, doubling (default 0.5)\n"
      "    --wall-budget S      per-job host wall-clock budget (0 = none)\n"
      "    --cycle-budget N     per-job simulated-cycle ceiling (0 = machine)\n"
      "    --rerun-failed       re-run jobs recorded as failed/hang/timeout\n"
      "    --quiet              no per-job progress, no summary line\n"
      "  work    join a distributed sweep as one worker (many processes/hosts)\n"
      "    --manifest PATH      manifest file (required; read-only — state\n"
      "                         lives in the claim spool)\n"
      "    --worker-id ID       unique worker name (required; e.g. host-3)\n"
      "    --claim-dir DIR      claim spool shared by all workers\n"
      "                         (default: <manifest>.claims)\n"
      "    --shard K            preferred shard (default: derived from ID)\n"
      "    --heartbeat S        heartbeat rewrite cadence (default 2)\n"
      "    --lease S            reclaim a claim after its owner's heartbeat\n"
      "                         froze this long (default 30)\n"
      "    --poll S             idle wait between claim scans (default 0.2)\n"
      "    plus run's --host-threads/--max-jobs/--max-attempts/\n"
      "    --retry-backoff/--wall-budget/--cycle-budget/--quiet\n"
      "  status  per-state counts, failed jobs, worker liveness, [done/total]\n"
      "    --manifest PATH\n"
      "    --claim-dir DIR      (default: <manifest>.claims)\n"
      "  merge   write the combined artifact of every completed job\n"
      "    --manifest PATH\n"
      "    --out PATH           merged lktm.stats.v1 (required)\n"
      "    --summary PATH       also write the compact lktm.summary.v1\n"
      "    --save-manifest      fold claim state back into the manifest file\n"
      "  summarize  condense a merged lktm.stats.v1 into lktm.summary.v1\n"
      "    --in PATH            merged artifact (required)\n"
      "    --out PATH           summary file (required)\n");
}

cfg::SweepManifest planPreset(const std::string& preset, const std::string& artifactDir,
                              std::uint64_t seed) {
  if (preset == "smoke") {
    // Micro workloads only: seconds, not minutes — the CI resume test runs
    // this twice.
    return cfg::makeManifest(artifactDir, "typical", {"Baseline", "LockillerTM"},
                             {"counter", "bank"}, {2, 4}, seed);
  }
  if (preset == "figures") {
    std::vector<std::string> systems;
    for (const auto& s : cfg::evaluatedSystems()) systems.push_back(s.name);
    // Figs 1/7-12: the full Table II grid on the typical machine.
    cfg::SweepManifest m = cfg::makeManifest(artifactDir, "typical", systems,
                                             wl::stampNames(), {2, 4, 8, 16, 32}, seed);
    // Fig 13 cache-sensitivity: every system at max threads on the small and
    // large machines.
    for (const char* machine : {"small-cache", "large-cache"}) {
      cfg::SweepManifest extra =
          cfg::makeManifest(artifactDir, machine, systems, wl::stampNames(), {32}, seed);
      for (auto& j : extra.jobs) m.jobs.push_back(std::move(j));
    }
    return m;
  }
  if (preset == "table2-backends") {
    // The TM-backend comparison rows (Table II bottom block): the hardware
    // lockiller flagship vs. the lock baseline vs. the software TL2 and the
    // hybrid HTM/STM fallback, across all eight STAMP analogs.
    return cfg::makeManifest(artifactDir, "typical",
                             {"LockillerTM", "CGL", "TL2-STM", "Hybrid-TM"},
                             wl::stampNames(), {8}, seed);
  }
  if (preset == "table3-dbtraffic") {
    // Database-shaped traffic (Table III): skewed YCSB mixes, TPC-C-lite and
    // the SPS swap stressor across every TM backend, judged on the
    // commit-latency percentiles in the derived block rather than on mean
    // throughput.
    return cfg::makeManifest(artifactDir, "typical",
                             {"LockillerTM", "CGL", "TL2-STM", "Hybrid-TM"},
                             {"ycsb", "ycsb-lo", "ycsb-w", "ycsb-scan", "tpcc",
                              "sps", "sps-part"},
                             {8}, seed);
  }
  if (preset == "bigcores-128" || preset == "bigcores-256") {
    // Fig 7/12-style speedup grids past 64 cores: the headline systems
    // (Baseline, LosaTM-SAFU, LockillerTM) on a banked large-core machine.
    // Needs a build configured with -DLKTM_MAX_CORES >= the core count (the
    // 'bigcores' CMake preset); plan-time validation below rejects a
    // too-small build with a rebuild hint instead of failing mid-sweep.
    const bool big = preset == "bigcores-256";
    const std::string machine = big ? "typical-c256-b16" : "typical-c128-b8";
    const std::vector<unsigned> threads =
        big ? std::vector<unsigned>{64, 128, 256} : std::vector<unsigned>{32, 64, 128};
    cfg::machineByName(machine).validate();  // throws the rebuild hint
    return cfg::makeManifest(artifactDir, machine,
                             {"Baseline", "LosaTM-SAFU", "LockillerTM"},
                             {"genome", "ssca2", "kmeans+", "vacation+"}, threads,
                             seed);
  }
  throw std::invalid_argument(
      "unknown preset: " + preset +
      " (try smoke | figures | table2-backends | table3-dbtraffic | "
      "bigcores-128 | bigcores-256)");
}

std::string slurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Test hook: LKTM_SWEEP_JOB_DELAY_MS=N sleeps N ms before each job so CI
/// can reliably SIGKILL a worker mid-run. Off (0) in normal operation.
cfg::JobRunner delayedRunner() {
  const char* env = std::getenv("LKTM_SWEEP_JOB_DELAY_MS");
  const double ms = env != nullptr ? std::atof(env) : 0.0;
  if (ms <= 0.0) return {};
  return [ms](const cfg::JobSpec& spec, const cfg::OrchestratorOptions& o,
              sim::SimContext& ctx) {
    std::this_thread::sleep_for(std::chrono::duration<double>(ms / 1000.0));
    return cfg::runSpec(spec, o, ctx);
  };
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  std::string manifestPath;
  std::string artifactDir;
  std::string preset = "smoke";
  std::string outPath;
  std::string inPath;
  std::string summaryPath;
  std::uint64_t seed = cfg::kDefaultSweepSeed;
  std::uint64_t shards = 1;
  bool quiet = false;
  bool saveManifest = false;
  cfg::OrchestratorOptions opts;
  opts.retryBackoffSeconds = 0.5;
  opts.progress = &std::cerr;
  cfg::WorkerOptions wopts;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--manifest") {
      manifestPath = next();
    } else if (a == "--artifact-dir") {
      artifactDir = next();
    } else if (a == "--preset") {
      preset = next();
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--shards") {
      shards = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--out") {
      outPath = next();
    } else if (a == "--in") {
      inPath = next();
    } else if (a == "--summary") {
      summaryPath = next();
    } else if (a == "--save-manifest") {
      saveManifest = true;
    } else if (a == "--worker-id") {
      wopts.workerId = next();
    } else if (a == "--claim-dir") {
      wopts.claimDir = next();
    } else if (a == "--shard") {
      wopts.shard = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--heartbeat") {
      wopts.heartbeatSeconds = std::atof(next());
    } else if (a == "--lease") {
      wopts.leaseSeconds = std::atof(next());
    } else if (a == "--poll") {
      wopts.pollSeconds = std::atof(next());
    } else if (a == "--host-threads") {
      opts.hostThreads = static_cast<unsigned>(std::atoi(next()));
    } else if (a == "--max-jobs") {
      opts.maxJobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--max-attempts") {
      opts.maxAttempts = static_cast<unsigned>(std::atoi(next()));
    } else if (a == "--retry-backoff") {
      opts.retryBackoffSeconds = std::atof(next());
    } else if (a == "--wall-budget") {
      opts.jobWallBudgetSeconds = std::atof(next());
    } else if (a == "--cycle-budget") {
      opts.jobCycleBudget = static_cast<Cycle>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--rerun-failed") {
      opts.rerunFailed = true;
    } else if (a == "--quiet") {
      // Quiet means quiet: per-job progress AND the final summary lines.
      quiet = true;
      opts.progress = nullptr;
    } else {
      usage();
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  try {
    if (cmd == "summarize") {
      if (inPath.empty() || outPath.empty()) {
        std::fprintf(stderr, "error: summarize needs --in and --out\n");
        return 2;
      }
      const auto doc = stats::json::parse(slurpFile(inPath));
      std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
      }
      cfg::writeSummaryArtifact(doc, out);
      if (!quiet) std::printf("summarized %s -> %s\n", inPath.c_str(), outPath.c_str());
      return 0;
    }

    if (manifestPath.empty()) {
      std::fprintf(stderr, "error: --manifest is required\n");
      return 2;
    }
    if (wopts.claimDir.empty()) wopts.claimDir = manifestPath + ".claims";

    if (cmd == "plan") {
      if (artifactDir.empty()) artifactDir = manifestPath + ".d";
      if (shards == 0) {
        std::fprintf(stderr, "error: --shards must be >= 1\n");
        return 2;
      }
      cfg::SweepManifest m = planPreset(preset, artifactDir, seed);
      m.shards = shards;
      if (!m.save(manifestPath)) return 1;
      if (!quiet) {
        std::printf("%s: %zu jobs (%s), %llu shard%s, artifacts in %s\n",
                    manifestPath.c_str(), m.jobs.size(), preset.c_str(),
                    static_cast<unsigned long long>(m.shards),
                    m.shards == 1 ? "" : "s", artifactDir.c_str());
      }
      return 0;
    }

    cfg::SweepManifest m = cfg::SweepManifest::load(manifestPath);

    if (cmd == "run") {
      // A claim spool means distributed workers own this manifest's state;
      // the single-process runner would race them and clobber the file.
      namespace fs = std::filesystem;
      if (fs::exists(wopts.claimDir)) {
        std::fprintf(stderr,
                     "error: claim spool %s exists — this manifest is being "
                     "executed by distributed workers; use 'work' (or "
                     "status/merge)\n",
                     wopts.claimDir.c_str());
        return 2;
      }
      const cfg::OrchestratorReport rep = cfg::runManifest(m, manifestPath, opts);
      if (!quiet) {
        std::printf("ran %zu, skipped %zu, retried %zu; ok %zu, failed %zu, total %zu\n",
                    rep.ran, rep.skipped, rep.retried, rep.ok, rep.failed,
                    m.jobs.size());
        if (!m.complete()) {
          std::printf("manifest incomplete (%zu pending) — re-run to resume\n",
                      m.countIn(cfg::JobState::Pending));
        }
      }
      return m.complete() && m.allOk() ? 0 : 1;
    }
    if (cmd == "work") {
      if (wopts.workerId.empty()) {
        std::fprintf(stderr, "error: work needs --worker-id\n");
        return 2;
      }
      const cfg::OrchestratorReport rep =
          cfg::runWorker(m, wopts, opts, delayedRunner());
      if (!quiet) {
        std::printf(
            "worker %s: ran %zu, retried %zu; ok %zu, failed %zu, total %zu\n",
            wopts.workerId.c_str(), rep.ran, rep.retried, rep.ok, rep.failed,
            m.jobs.size());
      }
      return m.complete() && m.allOk() ? 0 : 1;
    }
    if (cmd == "status") {
      const std::size_t folded = cfg::foldClaimState(m, wopts.claimDir);
      for (const auto s : {cfg::JobState::Pending, cfg::JobState::Running,
                           cfg::JobState::Ok, cfg::JobState::Failed,
                           cfg::JobState::Hang, cfg::JobState::Timeout}) {
        std::printf("%-8s %zu\n", toString(s), m.countIn(s));
      }
      for (const auto& j : m.jobs) {
        if (j.state == cfg::JobState::Failed || j.state == cfg::JobState::Hang ||
            j.state == cfg::JobState::Timeout) {
          std::printf("  %s: %s (%u attempts) %s\n", j.spec.id().c_str(),
                      toString(j.state), j.attempts, j.diagnostic.c_str());
        }
      }
      if (folded > 0 || std::filesystem::exists(wopts.claimDir)) {
        // Distributed view, assembled from claim state — not from any one
        // process's private stderr counter.
        const cfg::ClaimStore store(wopts.claimDir, "status");
        const auto claimed = store.listClaimed();
        // lktm-lint: allow(no-wall-clock) -- heartbeat ages are display-only
        const auto wallNow = std::chrono::system_clock::now();
        const double now =
            std::chrono::duration<double>(wallNow.time_since_epoch()).count();
        for (const auto& h : store.listHeartbeats()) {
          std::size_t held = 0;
          for (const auto& c : claimed) held += c.worker == h.worker ? 1 : 0;
          // Age from the writer's wall clock: display-only (reclamation never
          // compares clocks across hosts).
          std::printf("worker %-16s heartbeat %.1fs ago (seq %llu), %zu job%s held\n",
                      h.worker.c_str(), now - h.unixSeconds,
                      static_cast<unsigned long long>(h.seq), held,
                      held == 1 ? "" : "s");
        }
        const std::size_t total = m.jobs.size();
        const std::size_t done = total - m.countIn(cfg::JobState::Pending) -
                                 m.countIn(cfg::JobState::Running);
        double wallSum = 0.0;
        std::size_t wallN = 0;
        for (const auto& j : m.jobs) {
          if (j.state != cfg::JobState::Pending &&
              j.state != cfg::JobState::Running && j.wallSeconds > 0.0) {
            wallSum += j.wallSeconds;
            ++wallN;
          }
        }
        // ETA only when there is a measured rate: zero completed jobs or
        // all-zero wall times have nothing to extrapolate.
        char eta[64];
        if (done < total && wallN > 0 && wallSum > 0.0) {
          std::snprintf(eta, sizeof(eta), ", eta ~%.0fs of work left",
                        wallSum / static_cast<double>(wallN) *
                            static_cast<double>(total - done));
        } else {
          eta[0] = '\0';
        }
        std::printf("[%zu/%zu] done%s\n", done, total, eta);
      }
      return 0;
    }
    if (cmd == "merge") {
      if (outPath.empty()) {
        std::fprintf(stderr, "error: merge needs --out\n");
        return 2;
      }
      cfg::foldClaimState(m, wopts.claimDir);
      if (!m.complete()) {
        std::fprintf(stderr, "error: manifest has unfinished jobs (%zu pending, %zu running)\n",
                     m.countIn(cfg::JobState::Pending),
                     m.countIn(cfg::JobState::Running));
        return 1;
      }
      if (saveManifest && !m.save(manifestPath)) return 1;
      if (!cfg::writeMergedArtifact(m, outPath)) return 1;
      if (!summaryPath.empty()) {
        const auto doc = stats::json::parse(slurpFile(outPath));
        std::ofstream sout(summaryPath, std::ios::binary | std::ios::trunc);
        if (!sout) {
          std::fprintf(stderr, "error: cannot open %s for writing\n",
                       summaryPath.c_str());
          return 1;
        }
        cfg::writeSummaryArtifact(doc, sout);
      }
      if (!quiet) {
        std::size_t merged = m.countIn(cfg::JobState::Ok);
        std::printf("merged %zu runs into %s\n", merged, outPath.c_str());
        if (!summaryPath.empty()) {
          std::printf("summary in %s\n", summaryPath.c_str());
        }
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
