// Manifest-driven sweep driver: plan a sweep once, run it (resumably, with
// per-job watchdogs and bounded retry), inspect its state, and merge the
// per-job artifacts into one lktm.stats.v1 document.
//
//   lktm_sweep plan --preset smoke --manifest sweep.json --artifact-dir runs/
//   lktm_sweep run --manifest sweep.json --host-threads 4
//   lktm_sweep status --manifest sweep.json
//   lktm_sweep merge --manifest sweep.json --out merged.json
//
// `run` is idempotent: completed jobs are skipped, a job interrupted mid-run
// restarts, and the merged output is bit-identical no matter how many times
// the sweep was interrupted or how many host threads executed it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "config/machine.hpp"
#include "config/orchestrator.hpp"
#include "config/systems.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace lktm;

void usage() {
  std::printf(
      "usage: lktm_sweep <command> [options]\n"
      "commands:\n"
      "  plan    create a job manifest\n"
      "    --manifest PATH      manifest file to write (required)\n"
      "    --artifact-dir DIR   per-job artifact directory (default: <manifest>.d)\n"
      "    --preset NAME        smoke | figures | bigcores-128 | bigcores-256\n"
      "                         (default smoke; bigcores-* need a build with\n"
      "                         -DLKTM_MAX_CORES large enough, e.g. the\n"
      "                         'bigcores' CMake preset)\n"
      "    --seed N             workload seed (default 11)\n"
      "  run     execute the pending jobs of a manifest (resumable)\n"
      "    --manifest PATH      manifest file (required; updated in place)\n"
      "    --host-threads N     worker threads (default: hardware)\n"
      "    --max-jobs N         stop after N jobs this invocation (0 = all)\n"
      "    --max-attempts N     attempts for transient failures (default 2)\n"
      "    --retry-backoff S    seconds before first retry, doubling (default 0.5)\n"
      "    --wall-budget S      per-job host wall-clock budget (0 = none)\n"
      "    --cycle-budget N     per-job simulated-cycle ceiling (0 = machine)\n"
      "    --rerun-failed       re-run jobs recorded as failed/hang/timeout\n"
      "    --quiet              no per-job progress on stderr\n"
      "  status  print per-state counts and failed jobs\n"
      "    --manifest PATH\n"
      "  merge   write the combined artifact of every completed job\n"
      "    --manifest PATH\n"
      "    --out PATH           merged lktm.stats.v1 (required)\n");
}

cfg::SweepManifest planPreset(const std::string& preset, const std::string& artifactDir,
                              std::uint64_t seed) {
  if (preset == "smoke") {
    // Micro workloads only: seconds, not minutes — the CI resume test runs
    // this twice.
    return cfg::makeManifest(artifactDir, "typical", {"Baseline", "LockillerTM"},
                             {"counter", "bank"}, {2, 4}, seed);
  }
  if (preset == "figures") {
    std::vector<std::string> systems;
    for (const auto& s : cfg::evaluatedSystems()) systems.push_back(s.name);
    // Figs 1/7-12: the full Table II grid on the typical machine.
    cfg::SweepManifest m = cfg::makeManifest(artifactDir, "typical", systems,
                                             wl::stampNames(), {2, 4, 8, 16, 32}, seed);
    // Fig 13 cache-sensitivity: every system at max threads on the small and
    // large machines.
    for (const char* machine : {"small-cache", "large-cache"}) {
      cfg::SweepManifest extra =
          cfg::makeManifest(artifactDir, machine, systems, wl::stampNames(), {32}, seed);
      for (auto& j : extra.jobs) m.jobs.push_back(std::move(j));
    }
    return m;
  }
  if (preset == "bigcores-128" || preset == "bigcores-256") {
    // Fig 7/12-style speedup grids past 64 cores: the headline systems
    // (Baseline, LosaTM-SAFU, LockillerTM) on a banked large-core machine.
    // Needs a build configured with -DLKTM_MAX_CORES >= the core count (the
    // 'bigcores' CMake preset); plan-time validation below rejects a
    // too-small build with a rebuild hint instead of failing mid-sweep.
    const bool big = preset == "bigcores-256";
    const std::string machine = big ? "typical-c256-b16" : "typical-c128-b8";
    const std::vector<unsigned> threads =
        big ? std::vector<unsigned>{64, 128, 256} : std::vector<unsigned>{32, 64, 128};
    cfg::machineByName(machine).validate();  // throws the rebuild hint
    return cfg::makeManifest(artifactDir, machine,
                             {"Baseline", "LosaTM-SAFU", "LockillerTM"},
                             {"genome", "ssca2", "kmeans+", "vacation+"}, threads,
                             seed);
  }
  throw std::invalid_argument(
      "unknown preset: " + preset +
      " (try smoke | figures | bigcores-128 | bigcores-256)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  std::string manifestPath;
  std::string artifactDir;
  std::string preset = "smoke";
  std::string outPath;
  std::uint64_t seed = cfg::kDefaultSweepSeed;
  cfg::OrchestratorOptions opts;
  opts.retryBackoffSeconds = 0.5;
  opts.progress = &std::cerr;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--manifest") {
      manifestPath = next();
    } else if (a == "--artifact-dir") {
      artifactDir = next();
    } else if (a == "--preset") {
      preset = next();
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--out") {
      outPath = next();
    } else if (a == "--host-threads") {
      opts.hostThreads = static_cast<unsigned>(std::atoi(next()));
    } else if (a == "--max-jobs") {
      opts.maxJobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--max-attempts") {
      opts.maxAttempts = static_cast<unsigned>(std::atoi(next()));
    } else if (a == "--retry-backoff") {
      opts.retryBackoffSeconds = std::atof(next());
    } else if (a == "--wall-budget") {
      opts.jobWallBudgetSeconds = std::atof(next());
    } else if (a == "--cycle-budget") {
      opts.jobCycleBudget = static_cast<Cycle>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--rerun-failed") {
      opts.rerunFailed = true;
    } else if (a == "--quiet") {
      opts.progress = nullptr;
    } else {
      usage();
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  if (manifestPath.empty()) {
    std::fprintf(stderr, "error: --manifest is required\n");
    return 2;
  }

  try {
    if (cmd == "plan") {
      if (artifactDir.empty()) artifactDir = manifestPath + ".d";
      const cfg::SweepManifest m = planPreset(preset, artifactDir, seed);
      if (!m.save(manifestPath)) return 1;
      std::printf("%s: %zu jobs (%s), artifacts in %s\n", manifestPath.c_str(),
                  m.jobs.size(), preset.c_str(), artifactDir.c_str());
      return 0;
    }

    cfg::SweepManifest m = cfg::SweepManifest::load(manifestPath);

    if (cmd == "run") {
      const cfg::OrchestratorReport rep = cfg::runManifest(m, manifestPath, opts);
      std::printf("ran %zu, skipped %zu, retried %zu; ok %zu, failed %zu, total %zu\n",
                  rep.ran, rep.skipped, rep.retried, rep.ok, rep.failed,
                  m.jobs.size());
      if (!m.complete()) {
        std::printf("manifest incomplete (%zu pending) — re-run to resume\n",
                    m.countIn(cfg::JobState::Pending));
      }
      return m.complete() && m.allOk() ? 0 : 1;
    }
    if (cmd == "status") {
      for (const auto s : {cfg::JobState::Pending, cfg::JobState::Running,
                           cfg::JobState::Ok, cfg::JobState::Failed,
                           cfg::JobState::Hang, cfg::JobState::Timeout}) {
        std::printf("%-8s %zu\n", toString(s), m.countIn(s));
      }
      for (const auto& j : m.jobs) {
        if (j.state == cfg::JobState::Failed || j.state == cfg::JobState::Hang ||
            j.state == cfg::JobState::Timeout) {
          std::printf("  %s: %s (%u attempts) %s\n", j.spec.id().c_str(),
                      toString(j.state), j.attempts, j.diagnostic.c_str());
        }
      }
      return 0;
    }
    if (cmd == "merge") {
      if (outPath.empty()) {
        std::fprintf(stderr, "error: merge needs --out\n");
        return 2;
      }
      if (!m.complete()) {
        std::fprintf(stderr, "error: manifest has unfinished jobs (%zu pending)\n",
                     m.countIn(cfg::JobState::Pending));
        return 1;
      }
      if (!cfg::writeMergedArtifact(m, outPath)) return 1;
      std::size_t merged = m.countIn(cfg::JobState::Ok);
      std::printf("merged %zu runs into %s\n", merged, outPath.c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
