// validate_stats_json: check that a versioned JSON artifact conforms to its
// declared schema — lktm.stats.v1 run artifacts (src/config/artifact.hpp),
// lktm.manifest.v1/v2 sweep manifests (src/config/orchestrator.hpp),
// lktm.summary.v1 condensed grids or lktm.lint.v1 findings reports
// (src/lint/rules.hpp); the file's
// own "schema" field picks the checker. Used as a CI stage in
// tools/run_checks.sh: lktm-sim / lktm_sweep / lktm_lint write artifacts,
// this validates them.
//
//   validate_stats_json <artifact.json> [more.json ...]
//
// Exit codes: 0 = every file validates, 1 = a file is invalid, 2 = usage /
// unreadable file.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config/artifact.hpp"
#include "config/orchestrator.hpp"
#include "lint/rules.hpp"
#include "runtime/backends/backend.hpp"
#include "stats/json.hpp"

namespace {

using lktm::stats::json::Value;

std::vector<std::string> g_errors;

void fail(const std::string& what) { g_errors.push_back(what); }

bool requireNumber(const Value& obj, const char* key, const std::string& where) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->isNumber()) {
    fail(where + ": missing or non-numeric \"" + key + "\"");
    return false;
  }
  return true;
}

void checkStatEntry(const Value& e, const std::string& where) {
  const Value* path = e.find("path");
  const Value* kind = e.find("kind");
  if (path == nullptr || !path->isString() || path->text.empty()) {
    fail(where + ": stat entry without a \"path\" string");
    return;
  }
  const std::string at = where + " stat \"" + path->text + "\"";
  if (kind == nullptr || !kind->isString()) {
    fail(at + ": missing \"kind\"");
    return;
  }
  const std::string& k = kind->text;
  if (k == "counter" || k == "formula") {
    requireNumber(e, "value", at);
  } else if (k == "distribution") {
    requireNumber(e, "count", at);
    requireNumber(e, "sum", at);
    const Value* count = e.find("count");
    if (count != nullptr && count->isNumber() && count->number == 0) {
      // Empty distributions must omit extrema: a min/max of 0 would be
      // indistinguishable from a real 0-cycle sample.
      for (const char* f : {"min", "max"}) {
        if (e.find(f) != nullptr) {
          fail(at + ": \"" + f + "\" present on an empty distribution (count == 0)");
        }
      }
    } else {
      requireNumber(e, "min", at);
      requireNumber(e, "max", at);
    }
  } else if (k == "histogram") {
    requireNumber(e, "count", at);
    requireNumber(e, "sum", at);
    const Value* overflowed = e.find("overflowed");
    if (overflowed != nullptr && overflowed->kind != Value::Kind::Bool) {
      fail(at + ": \"overflowed\" must be a boolean");
    }
    const Value* buckets = e.find("buckets");
    if (buckets == nullptr || !buckets->isArray()) {
      fail(at + ": histogram without a \"buckets\" array");
      return;
    }
    for (const Value& b : *buckets->array) {
      if (!b.isArray() || b.array->size() != 2 || !b.array->at(0).isNumber() ||
          !b.array->at(1).isNumber()) {
        fail(at + ": bucket entries must be [bucket, count] pairs");
        return;
      }
    }
  } else {
    fail(at + ": unknown kind \"" + k + "\"");
  }
}

// The derived block shared by lktm.stats.v1 and lktm.summary.v1 runs.
// commit_rate is null (not 1.0) when the run made no speculative attempts;
// commit_latency carries the HDR-histogram percentiles in cycles.
void checkDerived(const Value& derived, const std::string& where) {
  const Value* rate = derived.find("commit_rate");
  if (rate == nullptr ||
      (!rate->isNumber() && rate->kind != Value::Kind::Null)) {
    fail(where + ": \"commit_rate\" must be a number or null");
  }
  for (const char* key : {"total_commits", "htm_commits", "lock_commits",
                          "stl_commits", "stm_commits", "aborts"}) {
    requireNumber(derived, key, where);
  }
  const Value* lat = derived.find("commit_latency");
  if (lat == nullptr || !lat->isObject()) {
    fail(where + ": missing \"commit_latency\" object");
    return;
  }
  const std::string lw = where + ".commit_latency";
  for (const char* key : {"count", "p50", "p90", "p99", "p999"}) {
    requireNumber(*lat, key, lw);
  }
  double prev = 0.0;
  for (const char* key : {"p50", "p90", "p99", "p999"}) {
    const Value* v = lat->find(key);
    if (v == nullptr || !v->isNumber()) return;
    if (v->number < prev) {
      fail(lw + ": percentiles not monotone at \"" + key + "\"");
      return;
    }
    prev = v->number;
  }
  const Value* count = lat->find("count");
  if (count != nullptr && count->isNumber() && count->number == 0 && prev != 0.0) {
    fail(lw + ": non-zero percentiles with count == 0");
  }
}

void checkRun(const Value& run, unsigned idx) {
  const std::string where = "runs[" + std::to_string(idx) + "]";
  for (const char* key : {"system", "workload", "machine", "diagnostic"}) {
    const Value* v = run.find(key);
    if (v == nullptr || !v->isString()) {
      fail(where + ": missing or non-string \"" + key + "\"");
    }
  }
  for (const char* key : {"threads", "cores", "banks", "seed", "cycles",
                          "wall_seconds"}) {
    requireNumber(run, key, where);
  }
  // "backend" arrived with the pluggable TM-backend registry; earlier
  // artifacts omit it. When present it must name a registered backend so
  // downstream row-grouping (Table II) can't silently mislabel a run.
  const Value* backendV = run.find("backend");
  if (backendV != nullptr) {
    if (!backendV->isString()) {
      fail(where + ": \"backend\" must be a string");
    } else if (!backendV->text.empty() &&
               !lktm::tm::isBackendName(backendV->text)) {
      fail(where + ": unknown backend \"" + backendV->text + "\" (valid: " +
           lktm::tm::backendNameList() + ")");
    }
  }
  // Machine-scale metadata must be self-consistent: a run cannot use more
  // threads than cores, and the directory always has at least one bank.
  const Value* threadsV = run.find("threads");
  const Value* coresV = run.find("cores");
  const Value* banksV = run.find("banks");
  if (threadsV != nullptr && coresV != nullptr && threadsV->isNumber() &&
      coresV->isNumber() && threadsV->number > coresV->number) {
    fail(where + ": threads (" + threadsV->text + ") exceed cores (" +
         coresV->text + ")");
  }
  if (banksV != nullptr && banksV->isNumber() && banksV->number < 1) {
    fail(where + ": banks must be >= 1");
  }
  for (const char* key : {"ok", "hang"}) {
    const Value* v = run.find(key);
    if (v == nullptr || v->kind != Value::Kind::Bool) {
      fail(where + ": missing or non-boolean \"" + key + "\"");
    }
  }
  const Value* status = run.find("status");
  lktm::cfg::RunStatus parsed;
  if (status == nullptr || !status->isString()) {
    fail(where + ": missing or non-string \"status\"");
  } else if (!lktm::cfg::runStatusFromString(status->text, parsed)) {
    fail(where + ": unknown status \"" + status->text + "\"");
  }
  const Value* violations = run.find("violations");
  if (violations == nullptr || !violations->isArray()) {
    fail(where + ": missing \"violations\" array");
  }
  const Value* derived = run.find("derived");
  if (derived == nullptr || !derived->isObject()) {
    fail(where + ": missing \"derived\" object");
  } else {
    checkDerived(*derived, where + ".derived");
  }
  const Value* stats = run.find("stats");
  if (stats == nullptr || !stats->isArray()) {
    fail(where + ": missing \"stats\" array");
    return;
  }
  std::string prev;
  std::set<std::string> seen;
  for (const Value& e : *stats->array) {
    checkStatEntry(e, where);
    const Value* path = e.find("path");
    if (path == nullptr || !path->isString()) continue;
    if (!seen.insert(path->text).second) {
      fail(where + ": duplicate stat path \"" + path->text + "\"");
    }
    if (!prev.empty() && path->text < prev) {
      fail(where + ": stats not path-sorted (\"" + path->text + "\" after \"" +
           prev + "\")");
    }
    prev = path->text;
  }
}

// Shared across lktm.summary.v1 runs: identity + scale + the derived block,
// but no full stat snapshot.
void checkSummaryRun(const Value& run, unsigned idx) {
  const std::string where = "runs[" + std::to_string(idx) + "]";
  for (const char* key : {"system", "workload", "machine", "status",
                          "diagnostic"}) {
    const Value* v = run.find(key);
    if (v == nullptr || !v->isString()) {
      fail(where + ": missing or non-string \"" + key + "\"");
    }
  }
  for (const char* key : {"threads", "cores", "banks", "seed", "cycles"}) {
    requireNumber(run, key, where);
  }
  const Value* status = run.find("status");
  lktm::cfg::RunStatus parsed;
  if (status != nullptr && status->isString() &&
      !lktm::cfg::runStatusFromString(status->text, parsed)) {
    fail(where + ": unknown status \"" + status->text + "\"");
  }
  const Value* derived = run.find("derived");
  if (derived == nullptr || !derived->isObject()) {
    fail(where + ": missing \"derived\" object");
  } else {
    checkDerived(*derived, where + ".derived");
  }
}

void checkSummary(const Value& doc) {
  const Value* source = doc.find("source");
  if (source == nullptr || !source->isString() ||
      source->text != lktm::cfg::kStatsSchema) {
    fail(std::string("missing or wrong \"source\" (expected \"") +
         lktm::cfg::kStatsSchema + "\")");
  }
  const Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->isArray()) {
    fail("missing \"runs\" array");
    return;
  }
  if (runs->array->empty()) fail("\"runs\" is empty");
  for (unsigned i = 0; i < runs->array->size(); ++i) {
    checkSummaryRun(runs->array->at(i), i);
  }
}

void checkManifest(const Value& doc) {
  const Value* dir = doc.find("artifact_dir");
  if (dir == nullptr || !dir->isString()) {
    fail("missing or non-string \"artifact_dir\"");
  }
  // "shards" arrived with lktm.manifest.v2; v1 documents omit it (readers
  // treat that as a single shard).
  const Value* shardsV = doc.find("shards");
  if (shardsV != nullptr && (!shardsV->isNumber() || shardsV->number < 1)) {
    fail("\"shards\" must be a number >= 1");
  }
  const Value* jobs = doc.find("jobs");
  if (jobs == nullptr || !jobs->isArray()) {
    fail("missing \"jobs\" array");
    return;
  }
  std::set<std::string> ids;
  for (unsigned i = 0; i < jobs->array->size(); ++i) {
    const Value& j = jobs->array->at(i);
    const std::string where = "jobs[" + std::to_string(i) + "]";
    if (!j.isObject()) {
      fail(where + ": not an object");
      continue;
    }
    for (const char* key : {"id", "system", "workload", "machine", "diagnostic",
                            "artifact"}) {
      const Value* v = j.find(key);
      if (v == nullptr || !v->isString()) {
        fail(where + ": missing or non-string \"" + key + "\"");
      }
    }
    for (const char* key : {"threads", "seed", "attempts", "wall_seconds", "cycles"}) {
      requireNumber(j, key, where);
    }
    const Value* state = j.find("state");
    lktm::cfg::JobState parsed;
    if (state == nullptr || !state->isString()) {
      fail(where + ": missing or non-string \"state\"");
    } else if (!lktm::cfg::jobStateFromString(state->text, parsed)) {
      fail(where + ": unknown state \"" + state->text + "\"");
    } else if (parsed == lktm::cfg::JobState::Ok) {
      const Value* artifact = j.find("artifact");
      if (artifact != nullptr && artifact->isString() && artifact->text.empty()) {
        fail(where + ": state \"ok\" without an artifact path");
      }
    }
    const Value* id = j.find("id");
    if (id != nullptr && id->isString() && !ids.insert(id->text).second) {
      fail(where + ": duplicate job id \"" + id->text + "\"");
    }
  }
}

// lktm.lint.v1: the lktm_lint findings artifact (src/lint/rules.hpp). Rule
// ids must come from the live catalog, the suppressed/unsuppressed counters
// must agree with the findings array, and a suppressed finding must carry
// its allow() directive's reason.
void checkLint(const Value& doc) {
  const Value* filesV = doc.find("files_scanned");
  if (filesV == nullptr || !filesV->isNumber() || filesV->number < 0) {
    fail("missing or invalid \"files_scanned\"");
  }
  const Value* rules = doc.find("rules");
  std::set<std::string> activeRules;
  if (rules == nullptr || !rules->isArray()) {
    fail("missing \"rules\" array");
  } else {
    std::string prev;
    for (const Value& r : *rules->array) {
      if (!r.isString() || !lktm::lint::isRule(r.text)) {
        fail("rules[]: unknown rule id \"" + r.text + "\"");
        continue;
      }
      if (!prev.empty() && r.text <= prev) fail("rules[] not sorted/unique");
      prev = r.text;
      activeRules.insert(r.text);
    }
    if (activeRules.empty()) fail("\"rules\" is empty");
  }
  for (const char* key : {"unsuppressed", "suppressed"}) {
    requireNumber(doc, key, "lint report");
  }
  const Value* findings = doc.find("findings");
  if (findings == nullptr || !findings->isArray()) {
    fail("missing \"findings\" array");
    return;
  }
  std::size_t suppressed = 0;
  std::string prevKey;
  for (unsigned i = 0; i < findings->array->size(); ++i) {
    const Value& f = findings->array->at(i);
    const std::string where = "findings[" + std::to_string(i) + "]";
    if (!f.isObject()) {
      fail(where + ": not an object");
      continue;
    }
    for (const char* key : {"file", "rule", "zone", "reason", "excerpt"}) {
      const Value* v = f.find(key);
      if (v == nullptr || !v->isString()) {
        fail(where + ": missing or non-string \"" + key + "\"");
      }
    }
    const Value* line = f.find("line");
    if (line == nullptr || !line->isNumber() || line->number < 1) {
      fail(where + ": \"line\" must be a number >= 1");
    }
    const Value* rule = f.find("rule");
    if (rule != nullptr && rule->isString() && !activeRules.empty() &&
        activeRules.count(rule->text) == 0) {
      fail(where + ": rule \"" + rule->text + "\" not in the \"rules\" block");
    }
    const Value* zone = f.find("zone");
    if (zone != nullptr && zone->isString() && zone->text != "deterministic" &&
        zone->text != "host") {
      fail(where + ": unknown zone \"" + zone->text + "\"");
    }
    const Value* sup = f.find("suppressed");
    if (sup == nullptr || sup->kind != Value::Kind::Bool) {
      fail(where + ": missing or non-boolean \"suppressed\"");
    } else if (sup->boolean) {
      ++suppressed;
      const Value* reason = f.find("reason");
      if (reason == nullptr || !reason->isString() || reason->text.empty()) {
        fail(where + ": suppressed finding without a reason");
      }
    }
    const Value* file = f.find("file");
    if (file != nullptr && file->isString() && line != nullptr &&
        line->isNumber() && rule != nullptr && rule->isString()) {
      char key[32];
      std::snprintf(key, sizeof key, "%012.0f", line->number);
      const std::string sortKey = file->text + "\x01" + key + "\x01" + rule->text;
      if (!prevKey.empty() && sortKey < prevKey) {
        fail(where + ": findings not sorted by (file, line, rule)");
      }
      prevKey = sortKey;
    }
  }
  const Value* supV = doc.find("suppressed");
  if (supV != nullptr && supV->isNumber() &&
      supV->number != static_cast<double>(suppressed)) {
    fail("\"suppressed\" count disagrees with the findings array");
  }
  const Value* unsupV = doc.find("unsuppressed");
  if (unsupV != nullptr && unsupV->isNumber() &&
      unsupV->number !=
          static_cast<double>(findings->array->size() - suppressed)) {
    fail("\"unsuppressed\" count disagrees with the findings array");
  }
}

bool validateFile(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "validate_stats_json: cannot open %s\n", file.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  g_errors.clear();
  Value doc;
  try {
    doc = lktm::stats::json::parse(ss.str());
  } catch (const std::exception& e) {
    fail(e.what());
  }
  std::string schemaName = "?";
  if (g_errors.empty()) {
    const Value* schema = doc.find("schema");
    if (schema == nullptr || !schema->isString()) {
      fail("missing \"schema\" string");
    } else if (schema->text == lktm::cfg::kStatsSchema) {
      schemaName = schema->text;
      const Value* runs = doc.find("runs");
      if (runs == nullptr || !runs->isArray()) {
        fail("missing \"runs\" array");
      } else {
        if (runs->array->empty()) fail("\"runs\" is empty");
        for (unsigned i = 0; i < runs->array->size(); ++i) {
          checkRun(runs->array->at(i), i);
        }
      }
    } else if (schema->text == lktm::cfg::kManifestSchema ||
               schema->text == lktm::cfg::kManifestSchemaV1) {
      schemaName = schema->text;
      checkManifest(doc);
    } else if (schema->text == lktm::cfg::kSummarySchema) {
      schemaName = schema->text;
      checkSummary(doc);
    } else if (schema->text == lktm::lint::kLintSchema) {
      schemaName = schema->text;
      checkLint(doc);
    } else {
      fail("schema is \"" + schema->text + "\", expected \"" +
           lktm::cfg::kStatsSchema + "\", \"" + lktm::cfg::kManifestSchema +
           "\" (or v1), \"" + lktm::cfg::kSummarySchema + "\", or \"" +
           lktm::lint::kLintSchema + "\"");
    }
  }

  if (g_errors.empty()) {
    std::printf("%s: OK (%s)\n", file.c_str(), schemaName.c_str());
    return true;
  }
  for (const std::string& e : g_errors) {
    std::fprintf(stderr, "%s: %s\n", file.c_str(), e.c_str());
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: validate_stats_json <artifact.json> [...]\n");
    return 2;
  }
  bool allOk = true;
  for (int i = 1; i < argc; ++i) allOk = validateFile(argv[i]) && allOk;
  return allOk ? 0 : 1;
}
