// lktm_check: exhaustive protocol model checker driver.
//
// Explores every message-delivery/core-step interleaving of a small named
// configuration (see --list) by DFS over ScheduleOracle choice points, checks
// the InvariantPack at every state, and reports visited-state / choice-point
// counts. With --inject-bug it plants a known protocol bug and is expected to
// find a counterexample, which --cex-out dumps as a replayable schedule.
//
// Exit codes: 0 = clean (exhaustive unless truncated), 1 = violation found,
// 2 = usage error.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "verify/checker.hpp"
#include "verify/harness.hpp"

namespace {

void usage() {
  std::printf(
      "usage: lktm_check --config NAME [options]\n"
      "       lktm_check --replay FILE [--config NAME]\n"
      "       lktm_check --list\n"
      "\n"
      "options:\n"
      "  --config NAME      configuration to check (see --list)\n"
      "  --depth N          max events per schedule path (default 100000)\n"
      "  --max-paths N      stop after N schedules (default: unlimited)\n"
      "  --max-states N     stop after N distinct states (default: unlimited)\n"
      "  --inject-bug KIND  plant a bug: swmr-skip-inv\n"
      "  --cex-out FILE     write the first counterexample to FILE\n"
      "  --replay FILE      re-run the schedule in a counterexample file\n"
      "  --list             list configurations and exit\n");
}

std::uint64_t parseU64(const char* s, bool& ok) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  ok = end != nullptr && *end == '\0' && end != s;
  return static_cast<std::uint64_t>(v);
}

void printResult(const lktm::verify::CheckResult& r) {
  std::printf("paths explored:   %llu\n",
              static_cast<unsigned long long>(r.pathsExplored));
  std::printf("states visited:   %llu\n",
              static_cast<unsigned long long>(r.statesVisited));
  std::printf("choice points:    %llu\n",
              static_cast<unsigned long long>(r.choicePoints));
  std::printf("pruned paths:     %llu\n",
              static_cast<unsigned long long>(r.prunedPaths));
  std::printf("events executed:  %llu\n",
              static_cast<unsigned long long>(r.eventsExecuted));
  if (r.clean()) {
    std::printf("result:           CLEAN (%s)\n",
                r.exhaustive() ? "exhaustive" : "TRUNCATED — absence not proven");
    return;
  }
  std::printf("result:           VIOLATION\n");
  for (const lktm::verify::Violation& v : r.violations) {
    std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
  }
  if (!r.deadlockDiagnostic.empty()) {
    std::printf("%s", r.deadlockDiagnostic.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string configName;
  std::string bugName = "none";
  std::string cexOut;
  std::string replayFile;
  lktm::verify::CheckOptions opt;
  bool listOnly = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lktm_check: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      listOnly = true;
    } else if (arg == "--config") {
      const char* v = next("--config");
      if (v == nullptr) return 2;
      configName = v;
    } else if (arg == "--depth") {
      const char* v = next("--depth");
      if (v == nullptr) return 2;
      bool ok = false;
      opt.maxEventsPerPath = parseU64(v, ok);
      if (!ok || opt.maxEventsPerPath == 0) {
        std::fprintf(stderr, "lktm_check: bad --depth value '%s'\n", v);
        return 2;
      }
    } else if (arg == "--max-paths") {
      const char* v = next("--max-paths");
      if (v == nullptr) return 2;
      bool ok = false;
      opt.maxPaths = parseU64(v, ok);
      if (!ok || opt.maxPaths == 0) {
        std::fprintf(stderr, "lktm_check: bad --max-paths value '%s'\n", v);
        return 2;
      }
    } else if (arg == "--max-states") {
      const char* v = next("--max-states");
      if (v == nullptr) return 2;
      bool ok = false;
      opt.maxStates = parseU64(v, ok);
      if (!ok || opt.maxStates == 0) {
        std::fprintf(stderr, "lktm_check: bad --max-states value '%s'\n", v);
        return 2;
      }
    } else if (arg == "--inject-bug") {
      const char* v = next("--inject-bug");
      if (v == nullptr) return 2;
      bugName = v;
    } else if (arg == "--cex-out") {
      const char* v = next("--cex-out");
      if (v == nullptr) return 2;
      cexOut = v;
    } else if (arg == "--replay") {
      const char* v = next("--replay");
      if (v == nullptr) return 2;
      replayFile = v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "lktm_check: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (listOnly) {
    for (const std::string& n : lktm::verify::configNames()) {
      std::printf("%s\n", n.c_str());
    }
    return 0;
  }

  if (!replayFile.empty()) {
    const auto cex = lktm::verify::readCounterexample(replayFile);
    if (!cex.has_value()) {
      std::fprintf(stderr, "lktm_check: cannot parse counterexample '%s'\n",
                   replayFile.c_str());
      return 2;
    }
    // --config overrides the file's record (useful for cross-checking).
    const std::string name = configName.empty() ? cex->configName : configName;
    auto cfg = lktm::verify::namedConfig(name);
    if (!cfg.has_value()) {
      std::fprintf(stderr, "lktm_check: unknown config '%s'\n", name.c_str());
      return 2;
    }
    cfg->bug = cex->bug;
    std::printf("replaying %s (%zu forced choices, bug=%s)\n", name.c_str(),
                cex->schedule.size(), lktm::verify::toString(cex->bug));
    const auto result =
        lktm::verify::ModelChecker::replaySchedule(*cfg, cex->schedule,
                                                   opt.maxEventsPerPath);
    printResult(result);
    return result.clean() ? 0 : 1;
  }

  if (configName.empty()) {
    usage();
    return 2;
  }
  auto cfg = lktm::verify::namedConfig(configName);
  if (!cfg.has_value()) {
    std::fprintf(stderr, "lktm_check: unknown config '%s' (try --list)\n",
                 configName.c_str());
    return 2;
  }
  const auto bug = lktm::verify::bugFromString(bugName);
  if (!bug.has_value()) {
    std::fprintf(stderr, "lktm_check: unknown bug '%s'\n", bugName.c_str());
    return 2;
  }
  cfg->bug = *bug;

  std::printf("checking %s (%u cores, %zu lines, bug=%s)\n", cfg->name.c_str(),
              cfg->cores, cfg->lines.size(), lktm::verify::toString(cfg->bug));
  lktm::verify::ModelChecker checker(*cfg, opt);
  const auto result = checker.run();
  printResult(result);

  if (result.cex.has_value() && !cexOut.empty()) {
    lktm::verify::writeCounterexample(cexOut, *result.cex);
    if (result.cex->traceJson.empty()) {
      std::printf("counterexample written to %s\n", cexOut.c_str());
    } else {
      std::printf(
          "counterexample written to %s (embedded trace-event stream: %zu "
          "bytes, extract the trace-events section for Perfetto)\n",
          cexOut.c_str(), result.cex->traceJson.size());
    }
  }
  return result.clean() ? 0 : 1;
}
