// bench_to_json: turn raw google-benchmark JSON output into BENCH_kernel.json.
//
//   bench_to_json <benchmark_out.json> <baseline.json> <out.json>
//
// Reads the benchmark run (preferring *_median aggregates when repetitions
// were used), joins it against the recorded seed baseline
// (bench/baseline/BASELINE_seed.json), and emits one merged report with a
// speedup column (baseline_ns / current_ns) per benchmark. The kernel PR's
// acceptance gate — >=1.5x on the event-queue and mesh micros — is evaluated
// into the report's "summary" block so CI can grep a single line.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader. Only what the two input formats
// need: objects, arrays, strings, numbers, true/false/null. No escapes beyond
// the common ones; benchmark names never use exotic ones.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::Object || object == nullptr) return nullptr;
    const auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string src) : src_(std::move(src)) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != src_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skipWs() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{': return objectValue();
      case '[': return arrayValue();
      case '"': return stringValue();
      case 't': return literal("true", boolValue(true));
      case 'f': return literal("false", boolValue(false));
      case 'n': return literal("null", JsonValue{});
      default: return numberValue();
    }
  }

  static JsonValue boolValue(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue literal(const std::string& word, JsonValue v) {
    if (src_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
    return v;
  }

  JsonValue stringValue() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= src_.size()) fail("bad escape");
        const char e = src_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Benchmark names are ASCII; keep the raw sequence readable.
            if (pos_ + 4 > src_.size()) fail("bad \\u escape");
            out += "\\u" + src_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.text = std::move(out);
    return v;
  }

  JsonValue numberValue() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0 ||
            src_[pos_] == '-' || src_[pos_] == '+' || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(src_.substr(start, pos_ - start));
    return v;
  }

  JsonValue arrayValue() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    v.array = std::make_shared<JsonArray>();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array->push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue objectValue() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    v.object = std::make_shared<JsonObject>();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      JsonValue key = stringValue();
      skipWs();
      expect(':');
      (*v.object)[key.text] = value();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string src_;
  std::size_t pos_ = 0;
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double toNs(double t, const std::string& unit) {
  if (unit == "ns") return t;
  if (unit == "us") return t * 1e3;
  if (unit == "ms") return t * 1e6;
  if (unit == "s") return t * 1e9;
  throw std::runtime_error("unknown time_unit '" + unit + "'");
}

// ---------------------------------------------------------------------------

struct Measurement {
  double realTimeNs = 0.0;
  std::optional<double> itemsPerSecond;
};

/// Pull per-benchmark measurements out of google-benchmark's JSON. When the
/// run used --benchmark_repetitions, only the *_median aggregates are kept
/// (and the suffix is stripped so names join against the baseline); plain
/// single-run entries are used otherwise.
std::map<std::string, Measurement> readBenchmarkRun(const JsonValue& root) {
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::Array) {
    throw std::runtime_error("benchmark output has no \"benchmarks\" array");
  }
  std::map<std::string, Measurement> plain;
  std::map<std::string, Measurement> medians;
  for (const JsonValue& b : *benches->array) {
    const JsonValue* name = b.find("name");
    const JsonValue* realTime = b.find("real_time");
    const JsonValue* unit = b.find("time_unit");
    if (name == nullptr || realTime == nullptr || unit == nullptr) continue;
    Measurement m;
    m.realTimeNs = toNs(realTime->number, unit->text);
    if (const JsonValue* ips = b.find("items_per_second");
        ips != nullptr && ips->kind == JsonValue::Kind::Number) {
      m.itemsPerSecond = ips->number;
    }
    const JsonValue* aggregate = b.find("aggregate_name");
    if (aggregate != nullptr && aggregate->kind == JsonValue::Kind::String) {
      if (aggregate->text == "median") {
        std::string n = name->text;
        if (const auto pos = n.rfind("_median"); pos != std::string::npos) {
          n.erase(pos);
        }
        medians[n] = m;
      }
    } else {
      plain[name->text] = m;
    }
  }
  return medians.empty() ? plain : medians;
}

std::map<std::string, double> readBaseline(const JsonValue& root) {
  std::map<std::string, double> out;
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::Object) return out;
  for (const auto& [name, entry] : *benches->object) {
    if (const JsonValue* ns = entry.find("real_time_ns");
        ns != nullptr && ns->kind == JsonValue::Kind::Number) {
      out[name] = ns->number;
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream ss;
  ss.precision(6);
  ss << std::fixed << v;
  return ss.str();
}

/// Benchmarks whose speedup vs the seed baseline gates this PR.
constexpr const char* kGatedPrefixes[] = {"BM_EventQueueScheduleRun",
                                          "BM_MeshTraversal",
                                          "BM_DirectoryRequestThroughput",
                                          "BM_SignatureInsertQuery"};
constexpr double kRequiredSpeedup = 1.5;

bool isGated(const std::string& name) {
  for (const char* p : kGatedPrefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: bench_to_json <benchmark_out.json> <baseline.json> "
                 "<out.json>\n";
    return 2;
  }
  try {
    const JsonValue run = JsonParser(readFile(argv[1])).parse();
    const JsonValue base = JsonParser(readFile(argv[2])).parse();
    const auto measurements = readBenchmarkRun(run);
    const auto baseline = readBaseline(base);
    if (measurements.empty()) {
      throw std::runtime_error("no benchmark measurements found");
    }

    bool gatePassed = true;
    unsigned gateCount = 0;
    std::ostringstream out;
    out << "{\n  \"baseline\": \"" << argv[2] << "\",\n";
    out << "  \"required_speedup\": " << jsonNumber(kRequiredSpeedup) << ",\n";
    out << "  \"benchmarks\": {\n";
    bool first = true;
    for (const auto& [name, m] : measurements) {
      if (!first) out << ",\n";
      first = false;
      out << "    \"" << name << "\": {\n";
      out << "      \"real_time_ns\": " << jsonNumber(m.realTimeNs);
      if (m.itemsPerSecond) {
        out << ",\n      \"items_per_second\": " << jsonNumber(*m.itemsPerSecond);
      }
      const auto it = baseline.find(name);
      if (it != baseline.end() && m.realTimeNs > 0.0) {
        const double speedup = it->second / m.realTimeNs;
        out << ",\n      \"baseline_ns\": " << jsonNumber(it->second);
        out << ",\n      \"speedup\": " << jsonNumber(speedup);
        if (isGated(name)) {
          ++gateCount;
          const bool ok = speedup >= kRequiredSpeedup;
          gatePassed = gatePassed && ok;
          out << ",\n      \"gated\": true";
          out << ",\n      \"gate_passed\": " << (ok ? "true" : "false");
        }
      }
      out << "\n    }";
    }
    out << "\n  },\n";
    out << "  \"summary\": {\n";
    out << "    \"gated_benchmarks\": " << gateCount << ",\n";
    out << "    \"gate_passed\": "
        << ((gatePassed && gateCount > 0) ? "true" : "false") << "\n";
    out << "  }\n}\n";

    std::ofstream os(argv[3], std::ios::binary);
    if (!os) throw std::runtime_error(std::string("cannot write ") + argv[3]);
    os << out.str();
    std::cout << "wrote " << argv[3] << " (" << measurements.size()
              << " benchmarks, gate "
              << ((gatePassed && gateCount > 0) ? "PASSED" : "FAILED") << ")\n";
    return (gatePassed && gateCount > 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_to_json: " << e.what() << "\n";
    return 2;
  }
}
