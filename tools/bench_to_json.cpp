// bench_to_json: turn raw google-benchmark JSON output into BENCH_kernel.json.
//
//   bench_to_json <benchmark_out.json> <baseline.json> <out.json>
//
// Reads the benchmark run (preferring *_median aggregates when repetitions
// were used), joins it against the recorded seed baseline
// (bench/baseline/BASELINE_seed.json), and emits one merged report with a
// speedup column (baseline_ns / current_ns) per benchmark. The kernel PR's
// acceptance gate — >=1.5x on the event-queue and mesh micros — is evaluated
// into the report's "summary" block so CI can grep a single line.
//
// Parsing and emission ride the instrumentation spine's shared JSON layer
// (stats/json.hpp): same reader as validate_stats_json, locale-independent
// writer. The output is stamped "schema": "lktm.bench.v1", and a "schema"
// field found in the baseline file is passed through as "baseline_schema".
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "stats/json.hpp"

namespace {

using lktm::stats::json::Value;
using lktm::stats::json::Writer;

constexpr const char* kBenchSchema = "lktm.bench.v1";

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double toNs(double t, const std::string& unit) {
  if (unit == "ns") return t;
  if (unit == "us") return t * 1e3;
  if (unit == "ms") return t * 1e6;
  if (unit == "s") return t * 1e9;
  throw std::runtime_error("unknown time_unit '" + unit + "'");
}

struct Measurement {
  double realTimeNs = 0.0;
  std::optional<double> itemsPerSecond;
};

/// Pull per-benchmark measurements out of google-benchmark's JSON. When the
/// run used --benchmark_repetitions, only the *_median aggregates are kept
/// (and the suffix is stripped so names join against the baseline); plain
/// single-run entries are used otherwise.
std::map<std::string, Measurement> readBenchmarkRun(const Value& root) {
  const Value* benches = root.find("benchmarks");
  if (benches == nullptr || !benches->isArray()) {
    throw std::runtime_error("benchmark output has no \"benchmarks\" array");
  }
  std::map<std::string, Measurement> plain;
  std::map<std::string, Measurement> medians;
  for (const Value& b : *benches->array) {
    const Value* name = b.find("name");
    const Value* realTime = b.find("real_time");
    const Value* unit = b.find("time_unit");
    if (name == nullptr || realTime == nullptr || unit == nullptr) continue;
    Measurement m;
    m.realTimeNs = toNs(realTime->number, unit->text);
    if (const Value* ips = b.find("items_per_second");
        ips != nullptr && ips->isNumber()) {
      m.itemsPerSecond = ips->number;
    }
    const Value* aggregate = b.find("aggregate_name");
    if (aggregate != nullptr && aggregate->isString()) {
      if (aggregate->text == "median") {
        std::string n = name->text;
        if (const auto pos = n.rfind("_median"); pos != std::string::npos) {
          n.erase(pos);
        }
        medians[n] = m;
      }
    } else {
      plain[name->text] = m;
    }
  }
  return medians.empty() ? plain : medians;
}

std::map<std::string, double> readBaseline(const Value& root) {
  std::map<std::string, double> out;
  const Value* benches = root.find("benchmarks");
  if (benches == nullptr || !benches->isObject()) return out;
  for (const auto& [name, entry] : *benches->object) {
    if (const Value* ns = entry.find("real_time_ns");
        ns != nullptr && ns->isNumber()) {
      out[name] = ns->number;
    }
  }
  return out;
}

/// Benchmarks whose speedup vs the seed baseline gates this PR.
constexpr const char* kGatedPrefixes[] = {"BM_EventQueueScheduleRun",
                                          "BM_MeshTraversal",
                                          "BM_DirectoryRequestThroughput",
                                          "BM_SignatureInsertQuery"};
constexpr double kRequiredSpeedup = 1.5;

bool isGated(const std::string& name) {
  for (const char* p : kGatedPrefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::cerr << "usage: bench_to_json <benchmark_out.json> <baseline.json> "
                 "<out.json>\n";
    return 2;
  }
  try {
    const Value run = lktm::stats::json::parse(readFile(argv[1]));
    const Value base = lktm::stats::json::parse(readFile(argv[2]));
    const auto measurements = readBenchmarkRun(run);
    const auto baseline = readBaseline(base);
    if (measurements.empty()) {
      throw std::runtime_error("no benchmark measurements found");
    }

    bool gatePassed = true;
    unsigned gateCount = 0;
    std::ostringstream out;
    Writer w(out, /*pretty=*/true);
    w.beginObject();
    w.field("schema", kBenchSchema);
    if (const Value* baseSchema = base.find("schema");
        baseSchema != nullptr && baseSchema->isString()) {
      w.field("baseline_schema", baseSchema->text);
    }
    w.field("baseline", argv[2]);
    w.field("required_speedup", kRequiredSpeedup);
    w.key("benchmarks");
    w.beginObject();
    for (const auto& [name, m] : measurements) {
      w.key(name);
      w.beginObject();
      w.field("real_time_ns", m.realTimeNs);
      if (m.itemsPerSecond) w.field("items_per_second", *m.itemsPerSecond);
      const auto it = baseline.find(name);
      if (it != baseline.end() && m.realTimeNs > 0.0) {
        const double speedup = it->second / m.realTimeNs;
        w.field("baseline_ns", it->second);
        w.field("speedup", speedup);
        if (isGated(name)) {
          ++gateCount;
          const bool ok = speedup >= kRequiredSpeedup;
          gatePassed = gatePassed && ok;
          w.field("gated", true);
          w.field("gate_passed", ok);
        }
      }
      w.endObject();
    }
    w.endObject();
    w.key("summary");
    w.beginObject();
    w.field("gated_benchmarks", gateCount);
    w.field("gate_passed", gatePassed && gateCount > 0);
    w.endObject();
    w.endObject();

    std::ofstream os(argv[3], std::ios::binary);
    if (!os) throw std::runtime_error(std::string("cannot write ") + argv[3]);
    os << out.str() << "\n";
    std::cout << "wrote " << argv[3] << " (" << measurements.size()
              << " benchmarks, gate "
              << ((gatePassed && gateCount > 0) ? "PASSED" : "FAILED") << ")\n";
    return (gatePassed && gateCount > 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_to_json: " << e.what() << "\n";
    return 2;
  }
}
