// Command-line driver: run any (system x workload x threads x machine)
// configuration and print the full statistics report. The fastest way to
// explore the simulator without writing code.
//
//   lktm_sim --list
//   lktm_sim --system LockillerTM --workload vacation+ --threads 8
//   lktm_sim --system Baseline --workload yada --threads 32 --machine small
//   lktm_sim --system LockillerTM --workload labyrinth --breakdown --seed 7
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "config/artifact.hpp"
#include "config/orchestrator.hpp"
#include "config/runner.hpp"
#include "config/systems.hpp"
#include "runtime/backends/backend.hpp"
#include "sim/core_mask.hpp"
#include "sim/trace.hpp"
#include "stats/report.hpp"
#include "workloads/db_traffic.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace lktm;

void usage() {
  std::printf(
      "usage: lktm_sim [options]\n"
      "  --list                 list systems, workloads and machines\n"
      "  --system NAME          Table II system (default LockillerTM)\n"
      "  --workload NAME        STAMP analog, counter/bank/linkedlist, or a\n"
      "                         database-traffic workload: ycsb | ycsb-lo |\n"
      "                         ycsb-w | ycsb-scan | tpcc | sps | sps-part\n"
      "                         (default vacation+)\n"
      "  --threads N            1..numCores (default 8)\n"
      "  --machine M            typical | small | large, optionally with\n"
      "                         scale suffixes, e.g. typical-c128-b8\n"
      "                         (default typical)\n"
      "  --cores N              scale the machine to N cores (needs a build\n"
      "                         with -DLKTM_MAX_CORES >= N; derives a\n"
      "                         near-square mesh unless --mesh is given)\n"
      "  --banks N              LLC directory banks (power of two <= cores)\n"
      "  --mesh WxH             mesh geometry, e.g. --mesh 16x8\n"
      "  --backend NAME         force the TM backend (lockiller | cgl | tl2 |\n"
      "                         hybrid); default: the system row's choice.\n"
      "                         Equivalent to a -be=NAME machine suffix\n"
      "  --seed N               workload generation seed (default 11)\n"
      "  --breakdown            print the per-category time breakdown\n"
      "  --stats-json PATH      write the lktm.stats.v1 artifact to PATH\n"
      "  --trace PATH           write a Chrome trace_event JSON to PATH\n"
      "                         (needs a -DLKTM_TRACE=ON build to record)\n"
      "  --switch-on-fault      enable the switch-on-fault extension\n"
      "  --ideal-net            contention-free network (ablation)\n"
      "  --no-check             skip coherence checker + invariants\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string system = "LockillerTM";
  std::string workload = "vacation+";
  std::string machineName = "typical";
  cfg::MachineOverrides overrides;
  unsigned threads = 8;
  std::uint64_t seed = 11;
  bool breakdown = false;
  std::string statsJsonPath;
  std::string tracePath;
  bool switchOnFault = false;
  bool idealNet = false;
  bool check = true;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--list") {
      std::printf("systems:\n");
      for (const auto& s : cfg::evaluatedSystems()) {
        std::printf("  %-16s %s\n", s.name.c_str(), s.description.c_str());
      }
      std::printf("workloads:\n ");
      for (const auto& w : wl::stampNames()) std::printf(" %s", w.c_str());
      std::printf(" counter bank linkedlist\n ");
      for (const auto& w : wl::dbWorkloadNames()) std::printf(" %s", w.c_str());
      std::printf(
          "\n"
          "machines: typical small large (suffixable: typical-c128-b8-m16x8)\n"
          "          this build supports up to %u cores (LKTM_MAX_CORES)\n"
          "backends:\n",
          sim::CoreMask::kMaxCores);
      for (const auto& be : tm::backendRegistry()) {
        std::printf("  %-16s %s\n", be.name, be.summary);
      }
      return 0;
    } else if (a == "--system") {
      system = next();
    } else if (a == "--workload") {
      workload = next();
    } else if (a == "--threads") {
      threads = static_cast<unsigned>(std::atoi(next()));
    } else if (a == "--machine") {
      machineName = next();
    } else if (a == "--cores") {
      overrides.cores = static_cast<unsigned>(std::atoi(next()));
      if (overrides.cores == 0) {
        std::fprintf(stderr, "--cores needs a positive core count\n");
        return 2;
      }
    } else if (a == "--banks") {
      overrides.banks = static_cast<unsigned>(std::atoi(next()));
      if (overrides.banks == 0) {
        std::fprintf(stderr, "--banks needs a positive bank count\n");
        return 2;
      }
    } else if (a == "--mesh") {
      if (std::sscanf(next(), "%ux%u", &overrides.meshCols, &overrides.meshRows) != 2 ||
          overrides.meshCols == 0 || overrides.meshRows == 0) {
        std::fprintf(stderr, "--mesh wants WxH, e.g. --mesh 16x8\n");
        return 2;
      }
    } else if (a == "--backend") {
      overrides.backend = next();
      if (!tm::isBackendName(overrides.backend)) {
        std::fprintf(stderr, "unknown TM backend '%s' (valid: %s)\n",
                     overrides.backend.c_str(),
                     tm::backendNameList().c_str());
        return 2;
      }
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--breakdown") {
      breakdown = true;
    } else if (a == "--stats-json") {
      statsJsonPath = next();
    } else if (a == "--trace") {
      tracePath = next();
    } else if (a == "--switch-on-fault") {
      switchOnFault = true;
    } else if (a == "--ideal-net") {
      idealNet = true;
    } else if (a == "--no-check") {
      check = false;
    } else {
      usage();
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  cfg::RunConfig rc;
  try {
    rc.machine = cfg::machineByName(machineName);
    cfg::applyMachineOverrides(rc.machine, overrides);
    rc.machine.idealNetwork = idealNet;
    rc.machine.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  try {
    rc.system = cfg::systemByName(system);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s (try --list)\n", e.what());
    return 2;
  }
  rc.system.policy.switchOnFault = switchOnFault;
  if (threads == 0 || threads > rc.machine.numCores) {
    std::fprintf(stderr, "threads must be 1..%u\n", rc.machine.numCores);
    return 2;
  }
  rc.threads = threads;
  rc.runCoherenceChecker = check;
  rc.verifyWorkload = check;

  sim::TraceSink sink;
  if (!tracePath.empty()) {
    if (!sim::kTraceEnabled) {
      std::fprintf(stderr,
                   "note: this build has tracing compiled out; %s will hold an "
                   "empty trace (reconfigure with -DLKTM_TRACE=ON)\n",
                   tracePath.c_str());
    }
    rc.traceSink = &sink;
  }

  cfg::RunResult r;
  try {
    // Same factory the sweep orchestrator uses, so `lktm-sim --workload X`
    // and a sweep job named X run the identical generator parameterization.
    r = cfg::runSimulation(rc, [&] { return cfg::makeJobWorkload(workload, seed); });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s\n", r.str().c_str());
  std::printf("machine: %s\n", rc.machine.describe().c_str());
  std::printf("backend: %s\n", r.backend.c_str());
  stats::Table t({"metric", "value"});
  t.addRow({"cycles", std::to_string(r.cycles)});
  t.addRow({"commit rate", stats::Table::pct(r.commitRate())});
  t.addRow({"htm commits", std::to_string(r.htmCommits())});
  t.addRow({"lock commits", std::to_string(r.lockCommits())});
  t.addRow({"stl commits", std::to_string(r.stlCommits())});
  t.addRow({"stm commits", std::to_string(r.stmCommits())});
  t.addRow({"aborts", std::to_string(r.aborts())});
  const stats::SnapshotEntry lat = r.commitLatency();
  t.addRow({"commit latency txs", std::to_string(lat.count)});
  constexpr std::pair<const char*, unsigned> kPercentiles[] = {
      {"  latency p50", 500},
      {"  latency p90", 900},
      {"  latency p99", 990},
      {"  latency p999", 999}};
  for (const auto& [label, permille] : kPercentiles) {
    t.addRow({label,
              std::to_string(stats::histogramPercentile(lat, permille)) + " cyc"});
  }
  for (auto cause : {AbortCause::MemConflict, AbortCause::LockConflict,
                     AbortCause::Mutex, AbortCause::NonTran, AbortCause::Overflow,
                     AbortCause::Fault, AbortCause::Explicit}) {
    const auto n = r.abortCount(cause);
    if (n != 0) t.addRow({std::string("  abort/") + toString(cause), std::to_string(n)});
  }
  t.addRow({"rejects sent", std::to_string(r.rejectsSent())});
  t.addRow({"sig rejects", std::to_string(r.sigRejects())});
  t.addRow({"switch attempts/grants", std::to_string(r.switchAttempts()) + "/" +
                                          std::to_string(r.switchGrants())});
  t.addRow({"wakeups", std::to_string(r.wakeupsSent())});
  t.addRow({"net messages", std::to_string(r.messages())});
  t.addRow({"flit-hops", std::to_string(r.flitHops())});
  t.addRow({"L1 hit rate",
            stats::Table::pct(r.l1Hits() + r.l1Misses()
                                  ? double(r.l1Hits()) /
                                        double(r.l1Hits() + r.l1Misses())
                                  : 0.0)});
  t.addRow({"writebacks", std::to_string(r.writebacks())});
  std::printf("%s\n", t.str().c_str());

  if (breakdown) {
    const cfg::TimeBreakdown bd = r.breakdown();
    stats::Table bt({"category", "fraction", ""});
    for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
      const auto cat = static_cast<TimeCat>(c);
      bt.addRow({toString(cat), stats::Table::pct(bd.fraction(cat)),
                 stats::bar(bd.fraction(cat))});
    }
    std::printf("%s\n", bt.str().c_str());
  }

  if (!statsJsonPath.empty()) {
    if (!cfg::writeStatsJsonFile(statsJsonPath, r)) return 1;
    std::printf("stats artifact: %s\n", statsJsonPath.c_str());
  }
  if (!tracePath.empty()) {
    if (!sink.writeChromeJson(tracePath)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", tracePath.c_str());
      return 1;
    }
    std::printf("trace (%zu events): %s  [open in ui.perfetto.dev]\n",
                sink.size(), tracePath.c_str());
  }
  return r.ok() ? 0 : 1;
}
