// lktm_lint: the project's determinism-and-protocol static analyzer.
// Lexes C++ sources (src/lint/lexer.hpp), classifies each file into the
// sim-deterministic or host zone by path, and enforces the per-zone rule
// catalog of src/lint/rules.hpp. Findings are suppressible only via
// `// lktm-lint: allow(<rule>) -- <reason>` with a mandatory reason.
//
//   lktm_lint [options] [path ...]        lint files / directories (recursed)
//     --rules a,b     restrict to these rule ids
//     --root DIR      repo root for zone classification (default: cwd)
//     --json FILE     also write the lktm.lint.v1 findings artifact
//     --quiet         suppress per-finding output (summary only)
//     --list-rules    print the rule catalog and exit
//     --self-test     run the built-in seeded-violation fixtures (every rule
//                     must catch its plant and stay quiet on its clean twin,
//                     mirroring lktm_check --inject-bug) and exit
//
// Exit codes: 0 = clean (no unsuppressed findings / self-test passed),
//             1 = unsuppressed findings (or self-test failure),
//             2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/selftest.hpp"

namespace {

namespace fs = std::filesystem;
using lktm::lint::Finding;
using lktm::lint::LintOptions;
using lktm::lint::LintRun;

bool hasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Repo-relative, forward-slash path used for zone classification and
/// reporting; falls back to the path as given when it is not under root.
std::string relativeTo(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  const fs::path chosen =
      ec || rel.empty() || *rel.begin() == ".." ? p : rel;
  return chosen.generic_string();
}

int usage() {
  std::fprintf(stderr,
               "usage: lktm_lint [--rules a,b] [--root DIR] [--json FILE] "
               "[--quiet] [--list-rules] [--self-test] [path ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  LintOptions opts;
  std::string root = ".";
  std::string jsonOut;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lktm_lint: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      for (const std::string& r : lktm::lint::allRules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (arg == "--self-test") {
      return lktm::lint::runSelfTest(std::cout) ? 0 : 1;
    }
    if (arg == "--rules") {
      std::string rule;
      for (const char c : std::string(next()) + ",") {
        if (c == ',') {
          if (!rule.empty()) opts.rules.push_back(rule);
          rule.clear();
        } else {
          rule += c;
        }
      }
      for (const std::string& r : opts.rules) {
        if (!lktm::lint::isRule(r)) {
          std::fprintf(stderr, "lktm_lint: unknown rule \"%s\" (--list-rules)\n",
                       r.c_str());
          return 2;
        }
      }
      continue;
    }
    if (arg == "--root") {
      root = next();
      continue;
    }
    if (arg == "--json") {
      jsonOut = next();
      continue;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage();
    paths.push_back(arg);
  }
  if (paths.empty()) return usage();

  // Collect the file set, sorted by repo-relative path so output and the
  // JSON artifact are byte-stable regardless of argument or readdir order.
  std::vector<std::pair<std::string, fs::path>> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; !ec && it != end;
           it.increment(ec)) {
        if (it->is_regular_file() && hasLintableExtension(it->path())) {
          files.emplace_back(relativeTo(root, it->path()), it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.emplace_back(relativeTo(root, p), p);
    } else {
      std::fprintf(stderr, "lktm_lint: cannot read %s\n", p.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  LintRun run;
  run.rules = opts.rules.empty() ? lktm::lint::allRules() : opts.rules;
  std::sort(run.rules.begin(), run.rules.end());
  for (const auto& [rel, path] : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lktm_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ++run.filesScanned;
    for (Finding& f : lktm::lint::lintSource(rel, ss.str(), opts)) {
      run.findings.push_back(std::move(f));
    }
  }

  if (!quiet) {
    for (const Finding& f : run.findings) {
      if (f.suppressed) continue;
      std::printf("%s:%u: [%s] (%s zone) %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), toString(f.zone), f.excerpt.c_str());
    }
  }

  if (!jsonOut.empty()) {
    std::ofstream out(jsonOut, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "lktm_lint: cannot write %s\n", jsonOut.c_str());
      return 2;
    }
    lktm::lint::writeArtifact(out, run);
  }

  std::printf("lktm_lint: %zu file%s, %zu finding%s (%zu suppressed)\n",
              run.filesScanned, run.filesScanned == 1 ? "" : "s",
              run.unsuppressedCount(), run.unsuppressedCount() == 1 ? "" : "s",
              run.suppressedCount());
  return run.unsuppressedCount() == 0 ? 0 : 1;
}
