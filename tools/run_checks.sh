#!/usr/bin/env bash
# One-command pre-merge check: build the default and sanitize presets, run the
# full test suite under both (tier-1 plus the fuzz and coherence-replay
# determinism tests under ASan+UBSan), run the model-checker suite (ctest -L
# verify: exhaustive lktm_check sweeps + test_verify) under both presets, run
# clang-tidy over src/ when the tool is installed, validate a --stats-json
# artifact against the lktm.stats.v1 schema, smoke the lktm_sweep orchestrator
# (interrupt + resume must merge bit-identical to an uninterrupted run, under
# the default and sanitize builds), build + test the trace preset
# (LKTM_TRACE=ON), grep-gate bench/ against hand-scraped counter structs,
# then build the release tree and run the gated kernel microbenchmarks
# (writes BENCH_kernel.json; fails if any gated benchmark regresses below the
# required speedup against the recorded baseline).
#
# Usage: tools/run_checks.sh [--no-bench]
#   --no-bench   skip the release build + benchmark gate (tests only)
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) RUN_BENCH=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build: default (RelWithDebInfo, assertions on) =="
cmake --preset default >/dev/null
cmake --build build -j "$JOBS"

echo "== ctest: default =="
ctest --preset default

echo "== ctest: model checker (default) =="
ctest --preset verify

echo "== clang-tidy: src/ =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The default preset exports build/compile_commands.json; any warning fails
  # (WarningsAsErrors: '*' in .clang-tidy).
  find src -name '*.cpp' -print0 \
    | xargs -0 -P "$JOBS" -n 8 clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping static-analysis stage"
fi

echo "== stats artifact: emit + validate (lktm.stats.v1) =="
./build/tools/lktm-sim --system LockillerTM --workload counter --threads 4 \
  --stats-json build/stats_check.json >/dev/null
./build/tools/validate_stats_json build/stats_check.json

echo "== sweep orchestrator: smoke + interrupt/resume + bit-identical merge =="
run_sweep_smoke() {
  # $1 = build dir. Plan a smoke sweep, run it interrupted (3 jobs), resume,
  # merge; then run the same sweep uninterrupted on more host threads and
  # require a byte-identical merged artifact. Validates both schemas.
  local bdir="$1" d
  d="$bdir/sweep_check"
  rm -rf "$d" && mkdir -p "$d/a" "$d/b"
  "$bdir/tools/lktm_sweep" plan --preset smoke --manifest "$d/a/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/a/sweep.json" --max-jobs 3 --quiet >/dev/null || true
  "$bdir/tools/lktm_sweep" run --manifest "$d/a/sweep.json" --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/a/sweep.json" --out "$d/a/merged.json" >/dev/null
  "$bdir/tools/lktm_sweep" plan --preset smoke --manifest "$d/b/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/b/sweep.json" --host-threads 4 --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/b/sweep.json" --out "$d/b/merged.json" >/dev/null
  cmp "$d/a/merged.json" "$d/b/merged.json"
  "$bdir/tools/validate_stats_json" "$d/a/sweep.json" "$d/a/merged.json" "$d/a/sweep.json.d"/*.json
}
run_sweep_smoke build

echo "== grep gate: bench/ reads the stat registry, not ad-hoc counters =="
if grep -rnE '\.tx\.|\.protocol\.(messages|flitHops|llc|l1|writebacks)|TxCounters|ProtocolCounters|BreakdownSummary' bench/; then
  echo "bench/ still scrapes retired counter structs (see matches above)" >&2
  exit 1
fi

echo "== configure + build: trace (LKTM_TRACE=ON) =="
cmake --preset trace >/dev/null
cmake --build build-trace -j "$JOBS"

echo "== ctest: trace (full suite with tracing compiled in) =="
ctest --preset trace

echo "== configure + build: sanitize (ASan + UBSan) =="
cmake --preset sanitize >/dev/null
cmake --build build-sanitize -j "$JOBS"

echo "== ctest: sanitize (full suite incl. fuzz + coherence replay) =="
ctest --preset sanitize

echo "== ctest: model checker (sanitize) =="
ctest --preset verify-sanitize

echo "== sweep orchestrator: smoke + resume under ASan/UBSan =="
run_sweep_smoke build-sanitize

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== configure + build: release (benchmarks) =="
  cmake --preset release >/dev/null
  cmake --build build-release -j "$JOBS"

  echo "== benchmark gate: bench_kernel (writes BENCH_kernel.json) =="
  cmake --build build-release --target bench_kernel
fi

echo "== all checks passed =="
