#!/usr/bin/env bash
# One-command pre-merge check: build the default and sanitize presets, run the
# full test suite under both (tier-1 plus the fuzz and coherence-replay
# determinism tests under ASan+UBSan), run the model-checker suite (ctest -L
# verify: exhaustive lktm_check sweeps + test_verify) under both presets, run
# clang-tidy over src/ when the tool is installed, validate a --stats-json
# artifact against the lktm.stats.v1 schema, smoke the 128-core banked
# directory path (or, on a 64-core-capped build, verify its rejection
# diagnostic), run the bounded 2-bank model-checker configs (clean + the
# swmr-skip-inv plant must still be caught), smoke the lktm_sweep orchestrator
# (interrupt + resume must merge bit-identical to an uninterrupted run, under
# the default and sanitize builds), smoke the distributed fan-out (3 workers
# on one claim spool, one SIGKILLed mid-job and reclaimed via heartbeat
# lease, merge must cmp equal to a single-process run — default and sanitize
# builds), smoke the database-traffic family (ycsb on the TL2 backend must
# emit validating commit-latency percentiles; the table3-dbtraffic grid must
# merge bit-identically across 1 host thread, 4 host threads and a 2-worker
# distributed run — default and sanitize builds), enforce the bench/
# artifact size cap, re-run the committed
# 128-core fig07 grid split across 2 worker processes on the bigcores build
# (summary must cmp equal to the committed lktm.summary.v1), build + test
# the trace preset (LKTM_TRACE=ON), run the lktm_lint determinism linter
# (self-test must catch every planted violation; src/ and tools/ must be
# clean; bench/ and examples/ must be free of retired counter structs; the
# lktm.lint.v1 artifact must validate), build the TSan preset and run the
# host-parallel sweep tests under ThreadSanitizer, then build the release
# tree and run the gated kernel microbenchmarks
# (writes BENCH_kernel.json; fails if any gated benchmark regresses below the
# required speedup against the recorded baseline).
#
# Usage: tools/run_checks.sh [--no-bench]
#   --no-bench   skip the release build + benchmark gate (tests only)
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) RUN_BENCH=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build: default (RelWithDebInfo, assertions on) =="
cmake --preset default >/dev/null
cmake --build build -j "$JOBS"

echo "== ctest: default =="
ctest --preset default

echo "== ctest: model checker (default) =="
ctest --preset verify

echo "== clang-tidy: src/ + tools/ =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The default preset exports build/compile_commands.json; any warning fails
  # (WarningsAsErrors: '*' in .clang-tidy).
  find src tools -name '*.cpp' -print0 \
    | xargs -0 -P "$JOBS" -n 8 clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping static-analysis stage"
fi

echo "== stats artifact: emit + validate (lktm.stats.v1) =="
./build/tools/lktm-sim --system LockillerTM --workload counter --threads 4 \
  --stats-json build/stats_check.json >/dev/null
./build/tools/validate_stats_json build/stats_check.json

echo "== TM backends: each registry backend runs + validates (lktm-sim --backend) =="
run_backend_smoke() {
  # $1 = build dir. Every registered backend must run a small workload end to
  # end (workload invariants + coherence checker on), report itself in the
  # run metadata, and emit a valid lktm.stats.v1 artifact; an unknown
  # backend name must exit 2 with the valid-name list.
  local bdir="$1" be out
  for be in lockiller cgl tl2 hybrid; do
    out="$bdir/backend_${be}_check.json"
    "$bdir/tools/lktm-sim" --backend "$be" --system LockillerTM \
      --workload counter --threads 4 --stats-json "$out" \
      | grep -q "backend: $be" || {
      echo "lktm-sim --backend $be did not report backend: $be" >&2
      return 1
    }
    "$bdir/tools/validate_stats_json" "$out"
  done
  if "$bdir/tools/lktm-sim" --backend vaporware --workload counter \
      --threads 2 >/dev/null 2>"$bdir/backend_reject.txt"; then
    echo "lktm-sim accepted an unknown backend name" >&2
    return 1
  fi
  grep -q "lockiller" "$bdir/backend_reject.txt" || {
    echo "unknown-backend rejection lacks the valid-name list" >&2
    return 1
  }
}
run_backend_smoke build

echo "== model checker: TL2 commit footprint (stm-commit, exhaustive) =="
./build/tools/lktm_check --config stm-commit --depth 4000 | grep -q "CLEAN" \
  || { echo "stm-commit not clean" >&2; exit 1; }

echo "== lktm_lint: seeded-violation self-test =="
# Mirrors lktm_check --inject-bug: every rule's planted violation must be
# caught and its clean twin must stay quiet.
./build/tools/lktm_lint --self-test >/dev/null

echo "== lktm_lint: src/ + tools/ must be clean (emit + validate artifact) =="
./build/tools/lktm_lint --root . --json build/lint_check.json --quiet src tools
./build/tools/validate_stats_json build/lint_check.json

echo "== large-core smoke: 128-core banked directory (needs bigcores build) =="
run_bigcore_smoke() {
  # $1 = build dir. A 64-core-capped build must *reject* the 128-core machine
  # with a clear diagnostic; a bigcores build must run it end to end with the
  # coherence checker on and produce a valid artifact carrying the new
  # cores/banks metadata.
  local bdir="$1" out
  out="$bdir/bigcore_check.json"
  if "$bdir/tools/lktm-sim" --list | grep -q "up to 64 cores"; then
    if "$bdir/tools/lktm-sim" --machine typical-c128-b8 --workload counter \
        --threads 8 >/dev/null 2>"$bdir/bigcore_reject.txt"; then
      echo "64-core build accepted a 128-core machine" >&2
      return 1
    fi
    grep -q "LKTM_MAX_CORES" "$bdir/bigcore_reject.txt" || {
      echo "128-core rejection lacks the rebuild hint" >&2
      return 1
    }
    echo "  (64-core build: verified the clear rejection diagnostic)"
  else
    "$bdir/tools/lktm-sim" --machine typical --cores 128 --banks 8 \
      --system LockillerTM --workload counter --threads 96 \
      --stats-json "$out" >/dev/null
    "$bdir/tools/validate_stats_json" "$out"
    echo "  (128-core banked run completed and validated)"
  fi
}
run_bigcore_smoke build

echo "== model checker: banked directory (2-bank configs, bounded) =="
run_banked_check() {
  # $1 = build dir. The 2-bank configs must be exhaustively clean, and the
  # swmr-skip-inv plant must still be caught across bank boundaries.
  local bdir="$1"
  "$bdir/tools/lktm_check" --config tl-overflow-2b --max-states 200000 \
    | grep -q "CLEAN" || { echo "tl-overflow-2b not clean" >&2; return 1; }
  "$bdir/tools/lktm_check" --config 3c2l-2b --max-states 200000 \
    | grep -q "CLEAN" || { echo "3c2l-2b not clean" >&2; return 1; }
  if "$bdir/tools/lktm_check" --config 3c2l-2b --inject-bug swmr-skip-inv \
      --max-states 200000 | grep -q "CLEAN"; then
    echo "3c2l-2b missed the injected swmr bug" >&2
    return 1
  fi
}
run_banked_check build

echo "== sweep orchestrator: smoke + interrupt/resume + bit-identical merge =="
run_sweep_smoke() {
  # $1 = build dir. Plan a smoke sweep, run it interrupted (3 jobs), resume,
  # merge; then run the same sweep uninterrupted on more host threads and
  # require a byte-identical merged artifact. Validates both schemas.
  local bdir="$1" d
  d="$bdir/sweep_check"
  rm -rf "$d" && mkdir -p "$d/a" "$d/b"
  "$bdir/tools/lktm_sweep" plan --preset smoke --manifest "$d/a/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/a/sweep.json" --max-jobs 3 --quiet >/dev/null || true
  "$bdir/tools/lktm_sweep" run --manifest "$d/a/sweep.json" --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/a/sweep.json" --out "$d/a/merged.json" >/dev/null
  "$bdir/tools/lktm_sweep" plan --preset smoke --manifest "$d/b/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/b/sweep.json" --host-threads 4 --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/b/sweep.json" --out "$d/b/merged.json" >/dev/null
  cmp "$d/a/merged.json" "$d/b/merged.json"
  "$bdir/tools/validate_stats_json" "$d/a/sweep.json" "$d/a/merged.json" "$d/a/sweep.json.d"/*.json
}
run_sweep_smoke build

echo "== distributed sweep: 3 workers, SIGKILL one mid-run, bit-identical merge =="
run_distrib_smoke() {
  # $1 = build dir. The tentpole guarantee end to end: a single-process run
  # is the reference; then 3 'work' processes share one claim spool, one of
  # them (slowed so it is reliably mid-job) is SIGKILLed, the survivors must
  # reclaim its job after the heartbeat lease expires, and the merged
  # artifact must cmp equal to the reference. Validates manifest v2, the
  # merged document and the lktm.summary.v1 companion.
  local bdir="$1" d w1 w2 w3
  d="$bdir/distrib_check"
  rm -rf "$d" && mkdir -p "$d/single" "$d/multi"

  "$bdir/tools/lktm_sweep" plan --preset smoke --manifest "$d/single/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/single/sweep.json" --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/single/sweep.json" \
    --out "$d/single/merged.json" >/dev/null

  "$bdir/tools/lktm_sweep" plan --preset smoke --manifest "$d/multi/sweep.json" \
    --shards 3 >/dev/null
  # The victim crawls (1s per job) so the SIGKILL lands while it holds a
  # claim; the survivors are fast and then wait out the 1s heartbeat lease.
  LKTM_SWEEP_JOB_DELAY_MS=1000 "$bdir/tools/lktm_sweep" work \
    --manifest "$d/multi/sweep.json" --worker-id victim --shard 0 \
    --host-threads 1 --heartbeat 0.1 --lease 1 --poll 0.05 --quiet \
    >/dev/null 2>&1 &
  w1=$!
  LKTM_SWEEP_JOB_DELAY_MS=50 "$bdir/tools/lktm_sweep" work \
    --manifest "$d/multi/sweep.json" --worker-id surv-a --shard 1 \
    --host-threads 1 --heartbeat 0.1 --lease 1 --poll 0.05 \
    >/dev/null 2>"$d/multi/surv-a.log" &
  w2=$!
  LKTM_SWEEP_JOB_DELAY_MS=50 "$bdir/tools/lktm_sweep" work \
    --manifest "$d/multi/sweep.json" --worker-id surv-b --shard 2 \
    --host-threads 1 --heartbeat 0.1 --lease 1 --poll 0.05 \
    >/dev/null 2>"$d/multi/surv-b.log" &
  w3=$!
  sleep 0.6
  kill -9 "$w1" 2>/dev/null || true
  wait "$w1" 2>/dev/null || true
  wait "$w2"   # survivors must finish the whole sweep, exit 0
  wait "$w3"

  grep -hq "reclaimed .* from dead worker" "$d/multi/surv-a.log" \
      "$d/multi/surv-b.log" || {
    echo "no survivor reclaimed the SIGKILLed worker's job" >&2
    return 1
  }
  "$bdir/tools/lktm_sweep" merge --manifest "$d/multi/sweep.json" \
    --out "$d/multi/merged.json" --summary "$d/multi/summary.json" >/dev/null
  cmp "$d/single/merged.json" "$d/multi/merged.json"
  "$bdir/tools/validate_stats_json" "$d/multi/sweep.json" \
    "$d/multi/merged.json" "$d/multi/summary.json"
  echo "  (3-worker sweep with a SIGKILLed+reclaimed worker merged bit-identical)"
}
run_distrib_smoke build

echo "== database traffic: ycsb tail latency + table3 grid bit-identical merges =="
run_dbtraffic_smoke() {
  # $1 = build dir. The tail-latency acceptance checks: ycsb on the TL2
  # backend must report commit-latency percentiles and emit an artifact that
  # validates against lktm.stats.v1 (with the p999 field present), and the
  # table3-dbtraffic grid must merge bit-identically whether run on 1 host
  # thread, 4 host threads, or split across 2 distributed workers.
  local bdir="$1" d wa wb
  d="$bdir/dbtraffic_check"
  rm -rf "$d" && mkdir -p "$d/h1" "$d/h4" "$d/dist"
  "$bdir/tools/lktm-sim" --system LockillerTM --backend tl2 --workload ycsb \
    --threads 4 --stats-json "$d/ycsb.json" | grep -q "latency p99" || {
    echo "lktm-sim ycsb/tl2 did not report commit-latency percentiles" >&2
    return 1
  }
  "$bdir/tools/validate_stats_json" "$d/ycsb.json"
  grep -q '"p999"' "$d/ycsb.json" || {
    echo "ycsb artifact lacks the p999 commit-latency field" >&2
    return 1
  }
  "$bdir/tools/lktm_sweep" plan --preset table3-dbtraffic \
    --manifest "$d/h1/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/h1/sweep.json" \
    --host-threads 1 --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/h1/sweep.json" \
    --out "$d/h1/merged.json" >/dev/null
  "$bdir/tools/lktm_sweep" plan --preset table3-dbtraffic \
    --manifest "$d/h4/sweep.json" >/dev/null
  "$bdir/tools/lktm_sweep" run --manifest "$d/h4/sweep.json" \
    --host-threads 4 --quiet >/dev/null
  "$bdir/tools/lktm_sweep" merge --manifest "$d/h4/sweep.json" \
    --out "$d/h4/merged.json" >/dev/null
  cmp "$d/h1/merged.json" "$d/h4/merged.json"
  "$bdir/tools/lktm_sweep" plan --preset table3-dbtraffic \
    --manifest "$d/dist/sweep.json" --shards 2 >/dev/null
  "$bdir/tools/lktm_sweep" work --manifest "$d/dist/sweep.json" \
    --worker-id db-a --shard 0 --quiet >/dev/null &
  wa=$!
  "$bdir/tools/lktm_sweep" work --manifest "$d/dist/sweep.json" \
    --worker-id db-b --shard 1 --quiet >/dev/null &
  wb=$!
  wait "$wa"
  wait "$wb"
  "$bdir/tools/lktm_sweep" merge --manifest "$d/dist/sweep.json" \
    --out "$d/dist/merged.json" --summary "$d/dist/summary.json" >/dev/null
  cmp "$d/h1/merged.json" "$d/dist/merged.json"
  "$bdir/tools/validate_stats_json" "$d/dist/sweep.json" \
    "$d/dist/merged.json" "$d/dist/summary.json"
  echo "  (db grid: 1-thread, 4-thread and 2-worker merges all bit-identical)"
}
run_dbtraffic_smoke build

echo "== size guard: no bulk artifacts in bench/ (256 KiB per-file cap) =="
# The raw bigcores grids were 8/16 MB; only their lktm.summary.v1 condensates
# (a few tens of KB) belong in the tree.
if find bench -type f -size +262144c | grep .; then
  echo "bench/ contains files over 256 KiB (see above) — commit summaries, not raw grids" >&2
  exit 1
fi

echo "== retired-symbol gate: bench/ + examples/ read the stat registry =="
# Token-level replacement for the old grep gate: lktm_lint lexes the sources,
# so retired-field mentions in strings/comments cannot trip it, and the
# legitimate MachineParams::protocol latency knobs (m.protocol.llcLatency)
# never match.
./build/tools/lktm_lint --root . --rules no-retired-symbols --quiet \
  bench examples || {
  echo "bench//examples/ still scrape retired counter structs" >&2
  exit 1
}

echo "== configure + build: trace (LKTM_TRACE=ON) =="
cmake --preset trace >/dev/null
cmake --build build-trace -j "$JOBS"

echo "== ctest: trace (full suite with tracing compiled in) =="
ctest --preset trace

echo "== configure + build: tsan (ThreadSanitizer) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_sweep test_distrib

echo "== ctest: tsan (host-parallel sweep layer under ThreadSanitizer) =="
ctest --preset tsan

echo "== configure + build: sanitize (ASan + UBSan) =="
cmake --preset sanitize >/dev/null
cmake --build build-sanitize -j "$JOBS"

echo "== ctest: sanitize (full suite incl. fuzz + coherence replay) =="
ctest --preset sanitize

echo "== ctest: model checker (sanitize) =="
ctest --preset verify-sanitize

echo "== sweep orchestrator: smoke + resume under ASan/UBSan =="
run_sweep_smoke build-sanitize

echo "== distributed sweep: kill/reclaim/merge under ASan/UBSan =="
run_distrib_smoke build-sanitize

echo "== database traffic smoke under ASan/UBSan =="
run_dbtraffic_smoke build-sanitize

echo "== large-core smoke + banked model checker under ASan/UBSan =="
run_bigcore_smoke build-sanitize
run_banked_check build-sanitize

echo "== TM backends smoke under ASan/UBSan =="
run_backend_smoke build-sanitize

echo "== bigcores grid: 128-core sweep split across 2 worker processes =="
# Build only the sweep tools of the bigcores preset (LKTM_MAX_CORES=256) and
# re-run the committed fig07 128-core grid as a 2-worker distributed sweep.
# Every job must end ok, both workers must have finished jobs, and the
# regenerated lktm.summary.v1 must cmp equal to the committed artifact —
# the strongest cross-check that the distributed path reproduces the grid
# the single-process PR-6 run produced.
cmake --preset bigcores >/dev/null
cmake --build build-bigcores -j "$JOBS" --target lktm_sweep validate_stats_json
d="build-bigcores/bigcores_distrib_check"
rm -rf "$d" && mkdir -p "$d"
build-bigcores/tools/lktm_sweep plan --preset bigcores-128 \
  --manifest "$d/bc.json" --shards 2 >/dev/null
build-bigcores/tools/lktm_sweep work --manifest "$d/bc.json" \
  --worker-id grid-a --shard 0 --quiet >/dev/null &
WA=$!
build-bigcores/tools/lktm_sweep work --manifest "$d/bc.json" \
  --worker-id grid-b --shard 1 --quiet >/dev/null &
WB=$!
wait "$WA"   # exit 0 iff the whole grid is complete && all ok
wait "$WB"
for w in grid-a grid-b; do
  grep -lq "\"worker\":\"$w\"" "$d/bc.json.claims/done"/* || {
    echo "bigcores grid was not split: $w finished no jobs" >&2
    exit 1
  }
done
build-bigcores/tools/lktm_sweep merge --manifest "$d/bc.json" \
  --out "$d/merged.json" --summary "$d/summary.json" >/dev/null
cmp "$d/summary.json" bench/bigcores/fig07_bigcores_128_summary.json
build-bigcores/tools/validate_stats_json "$d/bc.json" "$d/merged.json" \
  "$d/summary.json"
echo "  (36-job 128-core grid split 2 ways, all ok, summary matches committed)"

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== configure + build: release (benchmarks) =="
  cmake --preset release >/dev/null
  cmake --build build-release -j "$JOBS"

  echo "== benchmark gate: bench_kernel (writes BENCH_kernel.json) =="
  cmake --build build-release --target bench_kernel
fi

echo "== all checks passed =="
