// Bank-transfer demo: concurrent money transfers under every Table II
// system. The invariant (total balance conserved) holds iff the TM stack
// provides atomicity — this is the library's end-to-end correctness story in
// one screen of output.
#include <cstdio>

#include "config/runner.hpp"
#include "config/systems.hpp"
#include "stats/report.hpp"
#include "workloads/micro.hpp"

int main() {
  using namespace lktm;

  std::printf(
      "Transferring money between 64 accounts, 16 threads, 480 transfers.\n"
      "Total balance must be conserved under every system.\n\n");

  stats::Table t({"system", "cycles", "commit rate", "rejects", "invariant"});
  for (const auto& sys : cfg::evaluatedSystems()) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 16;
    const auto r = cfg::runSimulation(
        rc, [] { return wl::makeBank(/*accounts=*/64, /*totalTxs=*/480); });
    t.addRow({r.system, std::to_string(r.cycles), stats::Table::pct(r.commitRate()),
              std::to_string(r.rejectsReceived()),
              r.ok() ? "conserved" : "VIOLATED"});
    if (!r.ok()) std::printf("%s\n", r.str().c_str());
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
