// Quickstart: run one workload on a few evaluated systems and print the
// aggregate statistics. Demonstrates the public API end to end:
// machine config -> system spec -> workload factory -> runSimulation.
#include <cstdio>

#include "config/runner.hpp"
#include "config/systems.hpp"
#include "stats/report.hpp"
#include "workloads/micro.hpp"

int main() {
  using namespace lktm;

  cfg::MachineParams machine = cfg::MachineParams::typical();

  stats::Table table({"system", "cycles", "commit rate", "htm", "lock", "stl",
                      "aborts", "rejects", "ok"});
  for (const char* name : {"CGL", "Baseline", "Lockiller-RWI", "LockillerTM"}) {
    cfg::RunConfig rc;
    rc.machine = machine;
    rc.system = cfg::systemByName(name);
    rc.threads = 8;
    const cfg::RunResult r = cfg::runSimulation(
        rc, [] { return wl::makeCounter(/*numCells=*/4, /*cellsPerTx=*/2,
                                        /*totalTxs=*/256); });
    table.addRow({r.system, std::to_string(r.cycles),
                  stats::Table::pct(r.commitRate()), std::to_string(r.htmCommits()),
                  std::to_string(r.lockCommits()), std::to_string(r.stlCommits()),
                  std::to_string(r.aborts()), std::to_string(r.rejectsReceived()),
                  r.ok() ? "yes" : "NO"});
    if (!r.ok()) {
      std::printf("%s\n", r.str().c_str());
    }
  }
  std::printf("Shared-counter microbenchmark, 8 threads, typical machine\n\n%s\n",
              table.str().c_str());
  return 0;
}
