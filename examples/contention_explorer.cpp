// Contention explorer: sweep the sharing degree of a counter workload (the
// number of distinct counter cells) and watch where best-effort HTM falls
// behind locking and how much of that LockillerTM recovers — a miniature,
// interactive version of the paper's motivation figure.
#include <cstdio>

#include "config/runner.hpp"
#include "config/systems.hpp"
#include "stats/report.hpp"
#include "workloads/micro.hpp"

int main() {
  using namespace lktm;

  constexpr unsigned kThreads = 16;
  constexpr unsigned kTxs = 320;
  std::printf(
      "Counter workload, %u threads, %u transactions, 2 increments each.\n"
      "Fewer cells = more contention. Speedups are vs CGL.\n\n",
      kThreads, kTxs);

  stats::Table t({"cells", "Baseline speedup", "rate", "LockillerTM speedup", "rate"});
  for (unsigned cells : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    auto runOne = [&](const char* name) {
      cfg::RunConfig rc;
      rc.system = cfg::systemByName(name);
      rc.threads = kThreads;
      return cfg::runSimulation(
          rc, [cells] { return wl::makeCounter(cells, 2, kTxs); });
    };
    const auto cgl = runOne("CGL");
    const auto base = runOne("Baseline");
    const auto lk = runOne("LockillerTM");
    if (!cgl.ok() || !base.ok() || !lk.ok()) {
      std::printf("FAILURE at %u cells\n", cells);
      return 1;
    }
    t.addRow({std::to_string(cells),
              stats::Table::fixed(double(cgl.cycles) / base.cycles, 2),
              stats::Table::pct(base.commitRate()),
              stats::Table::fixed(double(cgl.cycles) / lk.cycles, 2),
              stats::Table::pct(lk.commitRate())});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Expected shape: at high contention (1-4 cells) the baseline's\n"
      "requester-wins friendly fire collapses its commit rate; LockillerTM's\n"
      "recovery mechanism keeps one winner alive and stays ahead of CGL.\n");
  return 0;
}
