// Custom-workload walkthrough: how a downstream user writes their own
// transactional workload against the public API — a shared work queue where
// producers push and consumers pop inside critical sections — using the
// ProgramBuilder assembler and the pluggable tm::Backend interface. The body
// lambda handed to emitTransaction must be pure emission: dual-path backends
// (hybrid) invoke it once per execution path.
#include <cstdio>
#include <sstream>

#include "config/runner.hpp"
#include "config/systems.hpp"
#include "stats/report.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace lktm;

// A bounded ring of work items. Producers append (tail++), consumers take
// (head++); both counters live on one hot line, the slots on distinct lines.
class WorkQueueWorkload final : public wl::Workload {
 public:
  explicit WorkQueueWorkload(unsigned opsPerThread) : opsPerThread_(opsPerThread) {}

  std::string name() const override { return "work-queue"; }

  void init(mem::MainMemory&, unsigned) override {
    control_ = space_.allocLines(1);          // word0 = head, word1 = tail
    slots_ = space_.allocLines(kSlots);       // payload accumulator per slot
    doneCount_ = space_.allocLines(1);        // verification ledger
  }

  cpu::Program buildProgram(unsigned tid, unsigned nthreads,
                            tm::Backend& backend) override {
    const bool producer = tid % 2 == 0;
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, tid, nthreads);
    b.mark(TimeCat::NonTran);
    b.compute(static_cast<std::int64_t>(10 + 5 * tid));
    for (unsigned i = 0; i < opsPerThread_; ++i) {
      backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
        pb.li(1, static_cast<std::int64_t>(control_));
        if (producer) {
          backend.emitReadDyn(pb, 2, 1, 8);   // tail
          pb.addi(3, 2, 1);
          backend.emitWriteDyn(pb, 1, 3, 8);  // tail++
        } else {
          backend.emitReadDyn(pb, 2, 1, 0);   // head
          pb.addi(3, 2, 1);
          backend.emitWriteDyn(pb, 1, 3, 0);  // head++
        }
        // slot = (counter % kSlots); touch its payload. The slot address is
        // data-dependent, so this workload needs a backend with dynamic
        // addressing (lockiller/cgl).
        pb.li(4, kSlots);
        pb.rem(5, 2, 4);
        pb.li(4, kLineBytes);
        pb.mul(5, 5, 4);
        pb.li(4, static_cast<std::int64_t>(slots_));
        pb.add(5, 5, 4);
        backend.emitReadDyn(pb, 6, 5, 0);
        pb.addi(6, 6, 1);
        backend.emitWriteDyn(pb, 5, 6, 0);
        // ledger, updated atomically with the queue operation
        backend.emitUpdate(pb, doneCount_, 4, 6, 1);
      });
      b.compute(30);
    }
    b.barrier();
    b.halt();
    return b.build();
  }

  std::vector<std::string> verify(const wl::WordReader& read,
                                  unsigned nthreads) const override {
    std::vector<std::string> out;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(opsPerThread_) * nthreads;
    const std::uint64_t ledger = read(doneCount_);
    std::uint64_t slotSum = 0;
    for (unsigned s = 0; s < kSlots; ++s) slotSum += read(slots_ + s * kLineBytes);
    const std::uint64_t headPlusTail = read(control_) + read(control_ + 8);
    std::ostringstream oss;
    if (ledger != expected) {
      oss << "ledger " << ledger << " != " << expected;
      out.push_back(oss.str());
    }
    if (slotSum != expected) out.push_back("slot sum mismatch");
    if (headPlusTail != expected) out.push_back("head+tail mismatch");
    return out;
  }

  Addr footprintEnd() const override { return space_.used(); }

 private:
  static constexpr std::uint64_t kSlots = 32;
  unsigned opsPerThread_;
  wl::AddressSpace space_;
  Addr control_ = 0;
  Addr slots_ = 0;
  Addr doneCount_ = 0;
};

}  // namespace

int main() {
  using namespace lktm;
  std::printf("Custom workload (producer/consumer work queue), 8 threads:\n\n");
  stats::Table t({"system", "cycles", "commit rate", "stl commits", "ok"});
  for (const char* name : {"CGL", "Baseline", "Lockiller-RWI", "LockillerTM"}) {
    cfg::RunConfig rc;
    rc.system = cfg::systemByName(name);
    rc.threads = 8;
    const auto r =
        cfg::runSimulation(rc, [] { return std::make_unique<WorkQueueWorkload>(24); });
    t.addRow({r.system, std::to_string(r.cycles), stats::Table::pct(r.commitRate()),
              std::to_string(r.stlCommits()), r.ok() ? "yes" : "NO"});
    if (!r.ok()) std::printf("%s\n", r.str().c_str());
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
