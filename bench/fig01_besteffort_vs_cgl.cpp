// Fig 1: speedup of requester-win best-effort HTM with respect to the
// coarse-grained locking scheme under the STAMP analogs, two threads.
//
// Expected shape (paper): clearly above 1 for the friendly workloads
// (genome, kmeans-, ssca2, vacation+-), below 1 for the pathological ones
// (intruder, labyrinth, yada) — the motivation for LockillerTM.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const auto results = sweepCells(cfg::MachineParams::typical(),
                                         systemsByName({"CGL", "Baseline"}),
                                         workloads, {2});
  reportFailures(results);
  std::printf("Fig 1: requester-win best-effort HTM vs CGL, 2 threads\n\n");
  stats::Table t({"workload", "speedup vs CGL", "commit rate", ""});
  for (const auto& w : workloads) {
    const double s = speedupVsCgl(results, "Baseline", w, 2);
    const auto* r = cfg::findResult(results, "Baseline", w, 2);
    t.addRow({w, stats::Table::fixed(s, 2),
              r != nullptr ? stats::Table::pct(r->commitRate(), 1) : "-",
              stats::bar(s / 2.0)});
  }
  t.addRow({"geo-mean",
            stats::Table::fixed(avgSpeedupVsCgl(results, "Baseline", workloads, 2), 2),
            "", ""});
  std::printf("%s\n", t.str().c_str());
  return 0;
}
