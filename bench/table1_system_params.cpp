// Table I: system model parameters of the simulated 32-core tiled CMP.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  const auto m = cfg::MachineParams::typical();
  std::printf("TABLE I. System Model Parameters (reproduction)\n\n");
  stats::Table t({"Component Parameter", "Value"});
  t.addRow({"Number of Cores", std::to_string(m.numCores)});
  t.addRow({"Frequency", "2 GHz (1 cycle = 0.5 ns, timing in cycles)"});
  t.addRow({"Core Detail", "In-Order, Single-issue, bytecode ISA w/ TME-style HTM"});
  t.addRow({"Cache Line Size", std::to_string(kLineBytes) + " bytes"});
  t.addRow({"L1 I&D caches", "Private, " + std::to_string(m.l1.sizeBytes / 1024) +
                                 "KB, " + std::to_string(m.l1.assoc) + "-way, " +
                                 std::to_string(m.protocol.l1HitLatency) +
                                 "-cycle hit latency"});
  t.addRow({"L2 cache", "Shared, unified, " + std::to_string(m.llcBytes / (1024 * 1024)) +
                            "MB, " + std::to_string(m.protocol.llcLatency) +
                            "-cycle hit latency"});
  t.addRow({"Memory", "8GB (sparse), " + std::to_string(m.protocol.memLatency) +
                          "-cycle latency"});
  t.addRow({"Coherence protocol", "MESI, directory-based (MESI-Two-Level-HTM)"});
  t.addRow({"Topology and Routing",
            "2-D mesh (" + std::to_string(m.mesh.rows) + " x " +
                std::to_string(m.mesh.cols) + "), X-Y"});
  t.addRow({"Flit size/message size", "16 bytes / 5 flits (data), 1 flit (control)"});
  t.addRow({"Link latency/bandwidth", std::to_string(m.mesh.linkLatency) +
                                          " cycle / 1 flit per cycle"});
  t.addRow({"HTMLock signatures", std::to_string(m.signatureBits) + "-bit Bloom x2 in LLC"});
  std::printf("%s\n", t.str().c_str());
  std::printf("Sensitivity configurations (Fig 13):\n  %s\n  %s\n",
              cfg::MachineParams::smallCache().describe().c_str(),
              cfg::MachineParams::largeCache().describe().c_str());
  return 0;
}
