// Fig 10: percentage of transaction-abort causes under 2 threads for
// Baseline, Lockiller-RWIL and LockillerTM.
//
// Expected shape (paper): HTMLock eliminates `mutex` aborts entirely;
// switchingMode slashes `of` (capacity overflow) aborts; `fault` aborts
// remain (the paper does not switch on exceptions); kmeans+ has a 100%
// commit rate under HTMLock, so its RWIL/LockillerTM columns are (nearly)
// empty.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const std::vector<std::string> systems{"Baseline", "Lockiller-RWIL", "LockillerTM"};
  const auto results = sweepCells(cfg::MachineParams::typical(),
                                         systemsByName(systems), workloads, {2});
  reportFailures(results);
  std::printf("Fig 10: abort causes (%% of aborts) at 2 threads\n\n");
  stats::Table t({"workload", "system", "aborts", "mc", "lock", "mutex", "non_tran",
                  "of", "fault", "commit rate"});
  for (const auto& w : workloads) {
    for (const auto& s : systems) {
      const auto* r = cfg::findResult(results, s, w, 2);
      if (r == nullptr) continue;
      const double total = static_cast<double>(r->aborts());
      auto pct = [&](AbortCause c) {
        if (total == 0) return std::string("-");
        return stats::Table::pct(static_cast<double>(r->abortCount(c)) / total, 1);
      };
      t.addRow({w, s, std::to_string(r->aborts()), pct(AbortCause::MemConflict),
                pct(AbortCause::LockConflict), pct(AbortCause::Mutex),
                pct(AbortCause::NonTran), pct(AbortCause::Overflow),
                pct(AbortCause::Fault), stats::Table::pct(r->commitRate(), 1)});
    }
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
