// google-benchmark microbenchmarks of the simulator substrates: these gate
// the wall-clock cost of the figure sweeps (a full Fig 7 grid is ~400
// simulations), so substrate regressions show up here first.
#include <benchmark/benchmark.h>

#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "coherence/messages.hpp"
#include "mem/cache_array.hpp"
#include "mem/signature.hpp"
#include "noc/ideal.hpp"
#include "noc/mesh.hpp"
#include "sim/context.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "config/runner.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace lktm;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(static_cast<Cycle>(i % 97), [&sink] { ++sink; });
    }
    while (q.runOne()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_CacheArrayLookup(benchmark::State& state) {
  mem::CacheArray cache({32 * 1024, 4});
  sim::Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const LineAddr l = rng.below(4096);
    if (cache.find(l) == nullptr) {
      if (auto* w = cache.invalidWay(l)) cache.install(*w, l, mem::MesiState::S, {});
    }
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const LineAddr l = rng.below(4096);
    hits += cache.find(l) != nullptr;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void BM_BloomSignature(benchmark::State& state) {
  mem::BloomSignature sig(static_cast<unsigned>(state.range(0)), 4);
  sim::Rng rng(9);
  for (int i = 0; i < 128; ++i) sig.insert(rng.next());
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += sig.mayContain(rng.next());
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomSignature)->Arg(1024)->Arg(2048)->Arg(8192);

void BM_MeshTraversal(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimContext ctx;
    noc::MeshNetwork net(ctx, {});
    int delivered = 0;
    sim::Rng rng(11);
    for (int i = 0; i < 256; ++i) {
      net.send(static_cast<noc::NodeId>(rng.below(64)),
               static_cast<noc::NodeId>(rng.below(64)), noc::kDataFlits,
               [&delivered] { ++delivered; });
    }
    ctx.queue().runUntilDrained(1'000'000);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MeshTraversal);

// ---- kernel group: steady-state cost of the pooled event/message hot path.
// These reuse one SimContext across iterations, which is how the sweep
// executor runs; after the first iteration warms the pools, the kernel
// allocates nothing (verified by tests/test_kernel.cpp's pool-reuse test).

void BM_KernelQueueSteadyState(benchmark::State& state) {
  sim::EventQueue q;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(static_cast<Cycle>(i % 97), [&sink] { ++sink; });
    }
    while (q.runOne()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelQueueSteadyState)->Arg(1024)->Arg(16384);

void BM_KernelMeshSteady(benchmark::State& state) {
  sim::SimContext ctx;
  noc::MeshNetwork net(ctx, {});
  sim::Rng rng(11);
  int delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      net.send(static_cast<noc::NodeId>(rng.below(64)),
               static_cast<noc::NodeId>(rng.below(64)), noc::kDataFlits,
               [&delivered] { ++delivered; });
    }
    ctx.queue().runUntilDrained(1'000'000'000);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_KernelMeshSteady);

struct NullSink final : coh::MsgSink {
  std::uint64_t received = 0;
  void onMessage(const coh::Msg&) override { ++received; }
};

void BM_KernelPooledMsgPost(benchmark::State& state) {
  sim::SimContext ctx;
  noc::IdealNetwork net(ctx, 3);
  NullSink sink;
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      coh::Msg m{.type = coh::MsgType::DataE,
                 .line = static_cast<LineAddr>(i),
                 .hasData = true};
      coh::post(ctx, net, 0, 1, sink, std::move(m));
    }
    ctx.queue().runUntilDrained(1'000'000'000);
    benchmark::DoNotOptimize(sink.received);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_KernelPooledMsgPost);

void BM_KernelContextReuse(benchmark::State& state) {
  const auto sys = cfg::systemByName("LockillerTM");
  sim::SimContext ctx;
  for (auto _ : state) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    const auto r = cfg::runSimulation(
        rc, [] { return wl::makeCounter(8, 2, 128); }, &ctx);
    benchmark::DoNotOptimize(r.cycles);
    if (!r.ok()) state.SkipWithError("simulation failed");
  }
}
BENCHMARK(BM_KernelContextReuse)->Unit(benchmark::kMillisecond);

void BM_FullSimulationCounter(benchmark::State& state) {
  const auto sys = cfg::systemByName(state.range(0) == 0 ? "CGL" : "LockillerTM");
  for (auto _ : state) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    const auto r = cfg::runSimulation(
        rc, [] { return wl::makeCounter(8, 2, 128); });
    benchmark::DoNotOptimize(r.cycles);
    if (!r.ok()) state.SkipWithError("simulation failed");
  }
}
BENCHMARK(BM_FullSimulationCounter)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FullSimulationStamp(benchmark::State& state) {
  const auto sys = cfg::systemByName("LockillerTM");
  for (auto _ : state) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    const auto r =
        cfg::runSimulation(rc, [] { return wl::makeStamp("vacation+"); });
    benchmark::DoNotOptimize(r.cycles);
    if (!r.ok()) state.SkipWithError("simulation failed");
  }
}
BENCHMARK(BM_FullSimulationStamp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
