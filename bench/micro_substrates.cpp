// google-benchmark microbenchmarks of the simulator substrates: these gate
// the wall-clock cost of the figure sweeps (a full Fig 7 grid is ~400
// simulations), so substrate regressions show up here first.
#include <benchmark/benchmark.h>

#include <array>

#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "coherence/messages.hpp"
#include "core/wakeup_table.hpp"
#include "mem/cache_array.hpp"
#include "mem/mshr.hpp"
#include "mem/signature.hpp"
#include "noc/ideal.hpp"
#include "noc/mesh.hpp"
#include "sim/context.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "config/runner.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace lktm;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(static_cast<Cycle>(i % 97), [&sink] { ++sink; });
    }
    while (q.runOne()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_CacheArrayLookup(benchmark::State& state) {
  mem::CacheArray cache({32 * 1024, 4});
  sim::Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const LineAddr l = rng.below(4096);
    if (cache.find(l) == nullptr) {
      if (auto* w = cache.invalidWay(l)) cache.install(*w, l, mem::MesiState::S, {});
    }
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const LineAddr l = rng.below(4096);
    hits += cache.find(l) != nullptr;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void BM_BloomSignature(benchmark::State& state) {
  mem::BloomSignature sig(static_cast<unsigned>(state.range(0)), 4);
  sim::Rng rng(9);
  for (int i = 0; i < 128; ++i) sig.insert(rng.next());
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += sig.mayContain(rng.next());
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomSignature)->Arg(1024)->Arg(2048)->Arg(8192);

void BM_MeshTraversal(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimContext ctx;
    noc::MeshNetwork net(ctx, {});
    int delivered = 0;
    sim::Rng rng(11);
    for (int i = 0; i < 256; ++i) {
      net.send(static_cast<noc::NodeId>(rng.below(64)),
               static_cast<noc::NodeId>(rng.below(64)), noc::kDataFlits,
               [&delivered] { ++delivered; });
    }
    ctx.queue().runUntilDrained(1'000'000);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MeshTraversal);

// ---- kernel group: steady-state cost of the pooled event/message hot path.
// These reuse one SimContext across iterations, which is how the sweep
// executor runs; after the first iteration warms the pools, the kernel
// allocates nothing (verified by tests/test_kernel.cpp's pool-reuse test).

void BM_KernelQueueSteadyState(benchmark::State& state) {
  sim::EventQueue q;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule(static_cast<Cycle>(i % 97), [&sink] { ++sink; });
    }
    while (q.runOne()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelQueueSteadyState)->Arg(1024)->Arg(16384);

void BM_KernelMeshSteady(benchmark::State& state) {
  sim::SimContext ctx;
  noc::MeshNetwork net(ctx, {});
  sim::Rng rng(11);
  int delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      net.send(static_cast<noc::NodeId>(rng.below(64)),
               static_cast<noc::NodeId>(rng.below(64)), noc::kDataFlits,
               [&delivered] { ++delivered; });
    }
    ctx.queue().runUntilDrained(1'000'000'000);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_KernelMeshSteady);

struct NullSink final : coh::MsgSink {
  std::uint64_t received = 0;
  void onMessage(const coh::Msg&) override { ++received; }
};

void BM_KernelPooledMsgPost(benchmark::State& state) {
  sim::SimContext ctx;
  noc::IdealNetwork net(ctx, 3);
  NullSink sink;
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      coh::Msg m{.type = coh::MsgType::DataE,
                 .line = static_cast<LineAddr>(i),
                 .hasData = true};
      coh::post(ctx, net, 0, 1, sink, std::move(m));
    }
    ctx.queue().runUntilDrained(1'000'000'000);
    benchmark::DoNotOptimize(sink.received);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_KernelPooledMsgPost);

void BM_KernelContextReuse(benchmark::State& state) {
  const auto sys = cfg::systemByName("LockillerTM");
  sim::SimContext ctx;
  for (auto _ : state) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    const auto r = cfg::runSimulation(
        rc, [] { return wl::makeCounter(8, 2, 128); }, &ctx);
    benchmark::DoNotOptimize(r.cycles);
    if (!r.ok()) state.SkipWithError("simulation failed");
  }
}
BENCHMARK(BM_KernelContextReuse)->Unit(benchmark::kMillisecond);

// ---- coherence datapath group: per-message cost of the directory line
// tables, MSHR lifecycle, wakeup bookkeeping, and overflow signatures. These
// are the structures every L1 request walks, so they gate the protocol-side
// wall-clock the same way the kernel group gates the event/message kernel.

/// Scripted L1 endpoint that answers the directory immediately, so the
/// benchmark measures directory datapath cost rather than L1 logic.
struct AutoRespondL1 final : coh::MsgSink {
  coh::DirectoryController* dir = nullptr;
  CoreId id = 0;
  std::uint64_t handled = 0;

  void onMessage(const coh::Msg& m) override {
    ++handled;
    coh::Msg r;
    r.line = m.line;
    r.from = id;
    switch (m.type) {
      case coh::MsgType::DataE:
      case coh::MsgType::DataS:
        r.type = coh::MsgType::Unblock;
        break;
      case coh::MsgType::Inv:
        r.type = coh::MsgType::InvAck;
        break;
      case coh::MsgType::FwdGetS:
        r.type = coh::MsgType::FwdAck;
        r.keptCopy = true;
        break;
      case coh::MsgType::FwdGetX:
        r.type = coh::MsgType::FwdAck;
        r.keptCopy = false;
        break;
      default:
        return;  // PutAck / RejectResp / Wakeup need no answer
    }
    dir->onMessage(r);
  }
};

void BM_DirectoryRequestThroughput(benchmark::State& state) {
  constexpr unsigned kCores = 8;
  constexpr int kLines = 64;
  constexpr int kPasses = 8;
  sim::SimContext ctx;
  noc::IdealNetwork net(ctx, 1);
  mem::MainMemory memory;
  coh::DirectoryController dir(ctx, net, memory, coh::ProtocolParams{}, kCores);
  std::array<AutoRespondL1, kCores> l1s;
  for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c) {
    auto& l1 = l1s[static_cast<std::size_t>(c)];
    l1.dir = &dir;
    l1.id = c;
    dir.connectL1(c, &l1);
  }
  for (auto _ : state) {
    // Four read passes build sharer lists and forward chains; four exclusive
    // passes trigger Inv fan-out + ack collection and ownership migration.
    for (int p = 0; p < kPasses; ++p) {
      const CoreId c = p % kCores;
      const bool wantX = p >= kPasses / 2;
      for (int l = 0; l < kLines; ++l) {
        coh::Msg m;
        m.type = wantX ? coh::MsgType::GetX : coh::MsgType::GetS;
        m.line = static_cast<LineAddr>(l);
        m.from = c;
        m.req.core = c;
        m.req.wantsExclusive = wantX;
        dir.onMessage(m);
      }
    }
    ctx.queue().runUntilDrained(1'000'000'000);
    benchmark::DoNotOptimize(l1s[0].handled);
  }
  state.SetItemsProcessed(state.iterations() * kPasses * kLines);
}
BENCHMARK(BM_DirectoryRequestThroughput);

void BM_MshrAllocRetire(benchmark::State& state) {
  mem::MshrFile mshr(8);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (LineAddr l = 0; l < 8; ++l) {
      auto& e = mshr.allocate(l * 977 + 13);
      e.isWrite = (l & 1) != 0;
    }
    mshr.forEach([&](mem::MshrEntry& e) { sink += e.line; });
    for (LineAddr l = 0; l < 8; ++l) {
      sink += mshr.find(l * 977 + 13) != nullptr;
    }
    for (LineAddr l = 0; l < 8; ++l) mshr.release(l * 977 + 13);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MshrAllocRetire);

void BM_WakeupDrain(benchmark::State& state) {
  core::WakeupTable table;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      table.record(static_cast<LineAddr>(i & 15) * 31, i % 7);
    }
    for (const auto& e : table.drainAll()) {
      sink += e.line + static_cast<std::uint64_t>(e.core);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WakeupDrain);

void BM_SignatureInsertQuery(benchmark::State& state) {
  mem::BloomSignature sig(2048, 4);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    sig.clear();
    std::uint64_t x = 0x2545F4914F6CDD1Dull;
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      sig.insert(x >> 16);
    }
    std::uint64_t y = 0x2545F4914F6CDD1Dull;
    for (int i = 0; i < 64; ++i) {  // guaranteed hits
      y = y * 6364136223846793005ull + 1442695040888963407ull;
      hits += sig.mayContain(y >> 16);
    }
    for (int i = 0; i < 192; ++i) {  // mostly misses
      y = y * 6364136223846793005ull + 1442695040888963407ull;
      hits += sig.mayContain(y >> 16);
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * 320);
}
BENCHMARK(BM_SignatureInsertQuery);

void BM_FullSimulationCounter(benchmark::State& state) {
  const auto sys = cfg::systemByName(state.range(0) == 0 ? "CGL" : "LockillerTM");
  for (auto _ : state) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    const auto r = cfg::runSimulation(
        rc, [] { return wl::makeCounter(8, 2, 128); });
    benchmark::DoNotOptimize(r.cycles);
    if (!r.ok()) state.SkipWithError("simulation failed");
  }
}
BENCHMARK(BM_FullSimulationCounter)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FullSimulationStamp(benchmark::State& state) {
  const auto sys = cfg::systemByName("LockillerTM");
  for (auto _ : state) {
    cfg::RunConfig rc;
    rc.system = sys;
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    const auto r =
        cfg::runSimulation(rc, [] { return wl::makeStamp("vacation+"); });
    benchmark::DoNotOptimize(r.cycles);
    if (!r.ok()) state.SkipWithError("simulation failed");
  }
}
BENCHMARK(BM_FullSimulationStamp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
