// Ablation benches for the design choices DESIGN.md calls out:
//   (a) software retry policy (attempt budget, persistent-abort skip),
//   (b) HTMLock signature size (Bloom false positives -> spurious rejects),
//   (c) CGL lock implementation (MCS vs test-and-test-and-set),
//   (d) interconnect (4x8 mesh vs contention-free ideal network),
//   (e) the switch-on-fault extension the paper deliberately leaves out.
#include <cstdio>

#include "common.hpp"
#include "workloads/micro.hpp"

using namespace lktm;
using namespace lktm::bench;

namespace {

cfg::RunResult runOne(cfg::SystemSpec sys, const std::string& workload,
                      unsigned threads,
                      cfg::MachineParams machine = cfg::MachineParams::typical()) {
  cfg::RunConfig rc;
  rc.machine = machine;
  rc.system = std::move(sys);
  rc.threads = threads;
  auto r = cfg::runSimulation(rc, [&] { return wl::makeStamp(workload); });
  if (!r.ok()) std::printf("!! FAILED: %s\n", r.str().c_str());
  return r;
}

void retryPolicyAblation() {
  std::printf("(a) Retry policy — Baseline on vacation+ @16t\n");
  stats::Table t({"maxRetries", "skipPersistent", "cycles", "commit rate",
                  "fallback sections"});
  for (unsigned retries : {1u, 4u, 8u, 16u}) {
    for (bool skip : {true, false}) {
      auto sys = cfg::systemByName("Baseline");
      sys.retry.maxRetries = retries;
      sys.retry.skipRetriesOnPersistent = skip;
      const auto r = runOne(sys, "vacation+", 16);
      t.addRow({std::to_string(retries), skip ? "yes" : "no",
                std::to_string(r.cycles), stats::Table::pct(r.commitRate()),
                std::to_string(r.lockCommits())});
    }
  }
  std::printf("%s\n", t.str().c_str());
}

void signatureAblation() {
  std::printf(
      "(b) HTMLock signature size — LockillerTM on yada @8t, 8KB L1.\n"
      "    Smaller Bloom filters mean more false positives, but the filter is\n"
      "    only consulted for requests that reach the LLC *while* a lock\n"
      "    transaction holds overflowed lines — most conflicts resolve at the\n"
      "    holder's L1 first. Expected finding: performance is insensitive to\n"
      "    the signature size at these scales, which is why LogTM-SE-style\n"
      "    2048-bit filters are comfortably sufficient (and why the paper\n"
      "    never needed to tune them).\n");
  stats::Table t({"sig bits", "cycles", "sig rejects", "commit rate"});
  for (unsigned bits : {64u, 256u, 2048u, 16384u}) {
    auto machine = cfg::MachineParams::smallCache();
    machine.signatureBits = bits;
    const auto r = runOne(cfg::systemByName("LockillerTM"), "yada", 8, machine);
    t.addRow({std::to_string(bits), std::to_string(r.cycles),
              std::to_string(r.sigRejects()), stats::Table::pct(r.commitRate())});
  }
  std::printf("%s\n", t.str().c_str());
}

void lockImplAblation() {
  std::printf("(c) CGL lock implementation — kmeans- (short sections)\n");
  stats::Table t({"lock", "threads", "cycles"});
  for (auto impl : {rt::LockImpl::Mcs, rt::LockImpl::TestAndSet}) {
    for (unsigned th : {2u, 8u, 32u}) {
      auto sys = cfg::systemByName("CGL");
      sys.retry.cglLock = impl;
      const auto r = runOne(sys, "kmeans-", th);
      t.addRow({impl == rt::LockImpl::Mcs ? "MCS" : "TTS", std::to_string(th),
                std::to_string(r.cycles)});
    }
  }
  std::printf("%s\n", t.str().c_str());
}

void networkAblation() {
  std::printf("(d) Interconnect — LockillerTM @32t, mesh vs ideal network\n");
  stats::Table t({"workload", "mesh cycles", "ideal cycles", "NoC overhead"});
  for (const char* w : {"intruder", "kmeans+", "vacation-"}) {
    const auto mesh = runOne(cfg::systemByName("LockillerTM"), w, 32);
    auto machine = cfg::MachineParams::typical();
    machine.idealNetwork = true;
    const auto ideal = runOne(cfg::systemByName("LockillerTM"), w, 32, machine);
    const double ovh = ideal.cycles != 0
                           ? static_cast<double>(mesh.cycles) / ideal.cycles - 1.0
                           : 0.0;
    t.addRow({w, std::to_string(mesh.cycles), std::to_string(ideal.cycles),
              stats::Table::pct(ovh)});
  }
  std::printf("%s\n", t.str().c_str());
}

void switchOnFaultAblation() {
  std::printf(
      "(e) Switch-on-fault extension — yada (exception-dominated), the one\n"
      "    workload the paper loses; Section III-C explains why the authors\n"
      "    abort on exceptions instead (CPU complexity, context-switch\n"
      "    security). This quantifies what that choice costs.\n");
  stats::Table t({"threads", "LockillerTM", "+switchOnFault", "stl commits",
                  "fault aborts"});
  for (unsigned th : {2u, 8u, 16u}) {
    const auto base = runOne(cfg::systemByName("LockillerTM"), "yada", th);
    auto sys = cfg::systemByName("LockillerTM");
    sys.name = "LockillerTM+XF";
    sys.policy.switchOnFault = true;
    const auto xf = runOne(sys, "yada", th);
    t.addRow({std::to_string(th), std::to_string(base.cycles),
              std::to_string(xf.cycles), std::to_string(xf.stlCommits()),
              std::to_string(xf.abortCount(AbortCause::Fault))});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main() {
  std::printf("LockillerTM design-choice ablations\n\n");
  retryPolicyAblation();
  signatureAblation();
  lockImplAblation();
  networkAblation();
  switchOnFaultAblation();
  return 0;
}
