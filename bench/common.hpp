// Shared machinery for the figure-reproduction benches: sweeps, speedup
// tables and breakdown printers. Each bench binary regenerates one table or
// figure of the paper in text form.
//
// Sweeps go through sweepCells(): identical to cfg::sweepSystems normally,
// but when LKTM_SWEEP_DIR is set each bench's grid runs under the manifest
// orchestrator — per-job artifacts and a resumable manifest land in that
// directory, so a killed figure run continues where it stopped.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "config/machine.hpp"
#include "config/orchestrator.hpp"
#include "config/sweep.hpp"
#include "config/systems.hpp"
#include "stats/report.hpp"
#include "workloads/workload.hpp"

namespace lktm::bench {

inline const std::vector<unsigned>& paperThreadCounts() {
  static const std::vector<unsigned> t{2, 4, 8, 16, 32};
  return t;
}

inline std::vector<cfg::SystemSpec> systemsByName(const std::vector<std::string>& names) {
  std::vector<cfg::SystemSpec> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(cfg::systemByName(n));
  return out;
}

/// Run one figure grid. Without LKTM_SWEEP_DIR this is exactly
/// cfg::sweepSystems; with it, the grid becomes a manifest named after the
/// grid's contents (machine + FNV of the cell list) inside that directory and
/// runs resumably. The runner captures the caller's actual MachineParams /
/// SystemSpec objects — the manifest stores names purely as identity — so a
/// bench that tweaks params is still simulated faithfully.
inline std::vector<cfg::RunResult> sweepCells(const cfg::MachineParams& machine,
                                              const std::vector<cfg::SystemSpec>& systems,
                                              const std::vector<std::string>& workloads,
                                              const std::vector<unsigned>& threads,
                                              unsigned hostThreads = 0) {
  const char* dir = std::getenv("LKTM_SWEEP_DIR");
  if (dir == nullptr || *dir == '\0') {
    return cfg::sweepSystems(machine, systems, workloads, threads, hostThreads);
  }

  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;
    h *= 0x100000001b3ull;
  };
  mix(machine.name);
  std::vector<std::string> systemNames;
  for (const auto& s : systems) {
    systemNames.push_back(s.name);
    mix(s.name);
  }
  for (const auto& w : workloads) mix(w);
  for (const unsigned t : threads) mix(std::to_string(t));

  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(h));
  const std::string base = std::string(dir) + "/" + machine.name + "-" + hex;
  const std::string manifestPath = base + ".manifest.json";

  cfg::SweepManifest m;
  try {
    m = cfg::SweepManifest::load(manifestPath);
  } catch (const std::exception&) {
    m = cfg::makeManifest(base + ".d", machine.name, systemNames, workloads, threads);
  }

  cfg::OrchestratorOptions opts;
  opts.hostThreads = hostThreads;
  opts.progress = &std::cerr;
  auto runner = [&](const cfg::JobSpec& spec, const cfg::OrchestratorOptions& o,
                    sim::SimContext& ctx) {
    cfg::RunConfig rc;
    rc.machine = machine;
    if (o.jobCycleBudget > 0) rc.machine.maxCycles = o.jobCycleBudget;
    for (const auto& s : systems) {
      if (s.name == spec.system) rc.system = s;
    }
    rc.threads = spec.threads;
    rc.rngSeed = cfg::jobRunSeed(spec.seed, spec.system, spec.workload, spec.threads);
    rc.wallBudgetSeconds = o.jobWallBudgetSeconds;
    cfg::RunResult r = cfg::runSimulation(
        rc, [&] { return cfg::makeJobWorkload(spec.workload, spec.seed); }, &ctx);
    r.workload = spec.workload;
    return r;
  };
  std::vector<cfg::RunResult> results;
  cfg::runManifest(m, manifestPath, opts, runner, &results);
  return results;
}

/// Speedup of `sys` over the CGL run at the same workload/thread count.
inline double speedupVsCgl(const std::vector<cfg::RunResult>& results,
                           const std::string& sys, const std::string& workload,
                           unsigned threads) {
  const auto* cgl = cfg::findResult(results, "CGL", workload, threads);
  const auto* s = cfg::findResult(results, sys, workload, threads);
  if (cgl == nullptr || s == nullptr || s->cycles == 0) return 0.0;
  return static_cast<double>(cgl->cycles) / static_cast<double>(s->cycles);
}

/// Geometric mean of per-workload speedups vs CGL.
inline double avgSpeedupVsCgl(const std::vector<cfg::RunResult>& results,
                              const std::string& sys,
                              const std::vector<std::string>& workloads,
                              unsigned threads) {
  double product = 1.0;
  int n = 0;
  for (const auto& w : workloads) {
    const double s = speedupVsCgl(results, sys, w, threads);
    if (s > 0.0) {
      product *= s;
      ++n;
    }
  }
  return n > 0 ? std::pow(product, 1.0 / n) : 0.0;
}

/// One speedup table per thread count (the paper's Fig 7 layout).
inline void printSpeedupTables(const std::vector<cfg::RunResult>& results,
                               const std::vector<std::string>& systems,
                               const std::vector<std::string>& workloads,
                               const std::vector<unsigned>& threads) {
  for (unsigned t : threads) {
    std::printf("-- %u thread(s): speedup over CGL at the same thread count --\n", t);
    std::vector<std::string> header{"workload"};
    for (const auto& s : systems) header.push_back(s);
    stats::Table table(header);
    for (const auto& w : workloads) {
      std::vector<std::string> row{w};
      for (const auto& s : systems) {
        row.push_back(stats::Table::fixed(speedupVsCgl(results, s, w, t), 2));
      }
      table.addRow(row);
    }
    std::vector<std::string> avg{"geo-mean"};
    for (const auto& s : systems) {
      avg.push_back(stats::Table::fixed(avgSpeedupVsCgl(results, s, workloads, t), 2));
    }
    table.addRow(avg);
    std::printf("%s\n", table.str().c_str());
  }
}

/// Normalized execution-time breakdown rows (Figs 9/11).
inline void printBreakdown(const std::vector<cfg::RunResult>& results,
                           const std::vector<std::string>& systems,
                           const std::vector<std::string>& workloads,
                           unsigned threads, bool withSwitchLock) {
  std::vector<std::string> header{"workload", "system", "htm", "aborted", "lock"};
  if (withSwitchLock) header.push_back("switchLock");
  header.insert(header.end(), {"non_tran", "waitlock", "rollback", "commit rate",
                               "norm. time"});
  stats::Table table(header);
  for (const auto& w : workloads) {
    const auto* ref = cfg::findResult(results, systems.front(), w, threads);
    for (const auto& s : systems) {
      const auto* r = cfg::findResult(results, s, w, threads);
      if (r == nullptr) continue;
      std::vector<std::string> row{w, s};
      auto pct = [&](TimeCat c) {
        return stats::Table::pct(r->breakdown().fraction(c), 1);
      };
      row.push_back(pct(TimeCat::Htm));
      row.push_back(pct(TimeCat::Aborted));
      row.push_back(pct(TimeCat::Lock));
      if (withSwitchLock) row.push_back(pct(TimeCat::SwitchLock));
      row.push_back(pct(TimeCat::NonTran));
      row.push_back(pct(TimeCat::WaitLock));
      row.push_back(pct(TimeCat::Rollback));
      row.push_back(stats::Table::pct(r->commitRate(), 1));
      const double norm = ref != nullptr && ref->cycles != 0
                              ? static_cast<double>(r->cycles) / ref->cycles
                              : 0.0;
      row.push_back(stats::Table::fixed(norm, 2));
      table.addRow(row);
    }
  }
  std::printf("%s\n", table.str().c_str());
}

inline void reportFailures(const std::vector<cfg::RunResult>& results) {
  for (const auto& r : results) {
    if (!r.ok()) std::printf("!! FAILED RUN: %s\n", r.str().c_str());
  }
}

}  // namespace lktm::bench
