// Fig 9: execution-time breakdown and transaction commit rate under
// 32 threads for Baseline, Lockiller-RWI and Lockiller-RWIL.
//
// Expected shape (paper): RWIL slashes `waitlock` on genome / vacation+- /
// intruder (lock transactions and HTM transactions run concurrently) and
// lifts commit rates; labyrinth and yada stay fallback-dominated.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const std::vector<std::string> systems{"Baseline", "Lockiller-RWI",
                                         "Lockiller-RWIL"};
  const auto results = sweepCells(cfg::MachineParams::typical(),
                                         systemsByName(systems), workloads, {32});
  reportFailures(results);
  std::printf(
      "Fig 9: execution-time breakdown + commit rate, 32 threads "
      "(time normalized to Baseline)\n\n");
  printBreakdown(results, systems, workloads, 32, /*withSwitchLock=*/false);
  return 0;
}
