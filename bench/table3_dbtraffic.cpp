// Table III (extension): database-shaped traffic under every TM backend,
// with the tail-latency view — commit-latency p50/p99/p999 in cycles next
// to the throughput numbers. This is the bench behind the `table3-dbtraffic`
// sweep preset; under LKTM_SWEEP_DIR it runs resumably through the manifest
// orchestrator like every other figure.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "workloads/db_traffic.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto& workloads = wl::dbWorkloadNames();
  const std::vector<std::string> systems{"LockillerTM", "CGL", "TL2-STM",
                                         "Hybrid-TM"};
  constexpr unsigned kThreads = 8;
  const auto results = sweepCells(cfg::MachineParams::typical(),
                                  systemsByName(systems), workloads, {kThreads});
  reportFailures(results);
  std::printf(
      "Table III: database traffic, %u threads — commit latency percentiles\n"
      "(cycles from first critical-section attempt to commit, spanning "
      "retries)\n\n",
      kThreads);
  stats::Table t({"workload", "system", "cycles", "commit rate", "aborts",
                  "p50", "p99", "p999"});
  for (const auto& w : workloads) {
    for (const auto& s : systems) {
      const auto* r = cfg::findResult(results, s, w, kThreads);
      if (r == nullptr) continue;
      t.addRow({w, s, std::to_string(r->cycles),
                stats::Table::pct(r->commitRate(), 1),
                std::to_string(r->aborts()),
                std::to_string(r->commitLatencyPercentile(500)),
                std::to_string(r->commitLatencyPercentile(990)),
                std::to_string(r->commitLatencyPercentile(999))});
    }
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("geo-mean speedup vs CGL at %u threads:\n", kThreads);
  stats::Table g({"system", "speedup"});
  for (const auto& s : systems) {
    g.addRow({s, stats::Table::fixed(
                     avgSpeedupVsCgl(results, s, workloads, kThreads), 2)});
  }
  std::printf("%s\n", g.str().c_str());
  return 0;
}
