// Fig 7: speedup of every evaluated system relative to coarse-grained
// locking at the same thread count, typical cache size, threads 2..32,
// across all STAMP analogs.
//
// Expected shape (paper): every Lockiller variant above 1 for every workload
// except yada; recovery+insts-based priority already lifts the baseline
// substantially; HTMLock helps most at high thread counts.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  std::vector<std::string> systems;
  for (const auto& s : cfg::evaluatedSystems()) systems.push_back(s.name);

  const auto results =
      sweepCells(cfg::MachineParams::typical(), cfg::evaluatedSystems(),
                        workloads, paperThreadCounts());
  reportFailures(results);
  std::printf(
      "Fig 7: speedup over CGL, typical cache (32KB L1 / 8MB LLC), "
      "threads 2-32\n\n");
  std::vector<std::string> nonCgl(systems.begin() + 1, systems.end());
  printSpeedupTables(results, nonCgl, workloads, paperThreadCounts());
  return 0;
}
