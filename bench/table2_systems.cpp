// Table II: the evaluated systems and their mechanism composition. The row
// list is the single registry in cfg::evaluatedSystems() — which itself
// appends the TM-backend rows (TL2-STM, Hybrid-TM) from tm::backendRegistry()
// — so this table can never drift from what the sweeps actually run.
#include <cstdio>

#include "common.hpp"
#include "runtime/backends/backend.hpp"

int main() {
  using namespace lktm;
  std::printf("TABLE II. Evaluated Systems (reproduction)\n\n");
  stats::Table t({"System", "Description", "backend", "conflict",
                  "reject action", "priority", "HTMLock", "switching",
                  "lock subscr."});
  for (const auto& s : cfg::evaluatedSystems()) {
    const auto& p = s.policy;
    const std::string backend =
        !s.backend.empty() ? s.backend : tm::defaultBackendFor(p);
    t.addRow({s.name, s.description, backend,
              p.htmEnabled ? core::toString(p.conflict) : "-",
              p.htmEnabled && p.conflict == core::ConflictPolicy::Recovery
                  ? core::toString(p.rejectAction)
                  : "-",
              p.htmEnabled ? core::toString(p.priority) : "-",
              p.htmLock ? "yes" : "no", p.switching ? "yes" : "no",
              p.htmEnabled ? (p.subscribeLock ? "yes" : "no") : "-"});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
