// Table II: the evaluated systems and their mechanism composition.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  std::printf("TABLE II. Evaluated Systems (reproduction)\n\n");
  stats::Table t({"System", "Description", "conflict", "reject action", "priority",
                  "HTMLock", "switching", "lock subscr."});
  for (const auto& s : cfg::evaluatedSystems()) {
    const auto& p = s.policy;
    t.addRow({s.name, s.description,
              p.htmEnabled ? core::toString(p.conflict) : "-",
              p.htmEnabled && p.conflict == core::ConflictPolicy::Recovery
                  ? core::toString(p.rejectAction)
                  : "-",
              p.htmEnabled ? core::toString(p.priority) : "-",
              p.htmLock ? "yes" : "no", p.switching ? "yes" : "no",
              p.htmEnabled ? (p.subscribeLock ? "yes" : "no") : "-"});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
