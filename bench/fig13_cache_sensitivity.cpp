// Fig 13: sensitivity to the cache configuration — small (8KB L1 / 1MB LLC)
// and large (128KB L1 / 32MB LLC) — average speedup over CGL per thread
// count.
//
// Expected shape (paper): LockillerTM's average speedup beats both CGL and
// the requester-win baseline in both configurations; the small configuration
// stresses the overflow machinery (switchingMode + HTMLock signatures).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const std::vector<std::string> systems{"Baseline", "LosaTM-SAFU", "Lockiller-RWI",
                                         "LockillerTM"};
  for (const auto& machine :
       {cfg::MachineParams::smallCache(), cfg::MachineParams::largeCache()}) {
    const auto results = sweepCells(machine, systemsByName(systems),
                                           workloads, paperThreadCounts());
    // CGL reference runs.
    const auto cgl = sweepCells(machine, systemsByName({"CGL"}), workloads,
                                       paperThreadCounts());
    std::vector<cfg::RunResult> all = results;
    all.insert(all.end(), cgl.begin(), cgl.end());
    reportFailures(all);
    std::printf("Fig 13 [%s]: geo-mean speedup over CGL\n\n", machine.name.c_str());
    std::vector<std::string> header{"threads"};
    for (const auto& s : systems) header.push_back(s);
    stats::Table t(header);
    for (unsigned th : paperThreadCounts()) {
      std::vector<std::string> row{std::to_string(th)};
      for (const auto& s : systems) {
        row.push_back(stats::Table::fixed(avgSpeedupVsCgl(all, s, workloads, th), 2));
      }
      t.addRow(row);
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}
