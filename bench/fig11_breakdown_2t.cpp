// Fig 11: execution-time breakdown + commit rate at 2 threads, with the
// `switchLock` category (whole transactions that completed after proactively
// switching to HTMLock mode).
//
// Expected shape (paper): LockillerTM turns part of `aborted`+`lock` time
// into `switchLock` time on the overflow-prone workloads (labyrinth, yada),
// raising commit rates and cutting total time.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const std::vector<std::string> systems{"Baseline", "Lockiller-RWIL", "LockillerTM"};
  const auto results = sweepCells(cfg::MachineParams::typical(),
                                         systemsByName(systems), workloads, {2});
  reportFailures(results);
  std::printf(
      "Fig 11: execution-time breakdown + commit rate, 2 threads "
      "(time normalized to Baseline)\n\n");
  printBreakdown(results, systems, workloads, 2, /*withSwitchLock=*/true);

  // Headline: how many speculative attempts were rescued by switching.
  stats::Table t({"workload", "switch attempts", "grants", "stl commits"});
  for (const auto& w : workloads) {
    const auto* r = cfg::findResult(results, "LockillerTM", w, 2);
    if (r == nullptr) continue;
    t.addRow({w, std::to_string(r->switchAttempts()),
              std::to_string(r->switchGrants()), std::to_string(r->stlCommits())});
  }
  std::printf("LockillerTM switchingMode activity @2t\n%s\n", t.str().c_str());
  return 0;
}
