// Fig 8: average transaction commit rate of the HTM systems equipped with
// the recovery mechanism (RAI / RRI / RWI) vs the requester-win baseline,
// across thread counts.
//
// Expected shape (paper): the recovery mechanism + insts-based priority
// raise the average commit rate substantially over the baseline (the paper
// quotes 1.4x / 1.69x / 1.63x for the three reject actions).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const std::vector<std::string> systems{"Baseline", "Lockiller-RAI",
                                         "Lockiller-RRI", "Lockiller-RWI"};
  const auto results = sweepCells(cfg::MachineParams::typical(),
                                         systemsByName(systems), workloads,
                                         paperThreadCounts());
  reportFailures(results);
  std::printf("Fig 8: average transaction commit rate (all STAMP analogs)\n\n");
  std::vector<std::string> header{"threads"};
  for (const auto& s : systems) header.push_back(s);
  header.push_back("RWI/Baseline");
  stats::Table t(header);
  for (unsigned th : paperThreadCounts()) {
    std::vector<std::string> row{std::to_string(th)};
    double base = 0.0, rwi = 0.0;
    for (const auto& s : systems) {
      double sum = 0.0;
      int n = 0;
      for (const auto& w : workloads) {
        const auto* r = cfg::findResult(results, s, w, th);
        // Runs with no speculative attempts report an absent rate; averaging
        // them in (as the old 1.0 default did) inflated the figure.
        if (r == nullptr) continue;
        if (const auto rate = r->commitRate(); rate.has_value()) {
          sum += *rate;
          ++n;
        }
      }
      const double avg = n != 0 ? sum / n : 0.0;
      if (s == "Baseline") base = avg;
      if (s == "Lockiller-RWI") rwi = avg;
      row.push_back(stats::Table::pct(avg, 1));
    }
    row.push_back(base > 0 ? stats::Table::fixed(rwi / base, 2) + "x" : "-");
    t.addRow(row);
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
