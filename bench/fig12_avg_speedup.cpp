// Fig 12: average speedup of the evaluated systems (including the
// LosaTM-SAFU comparator) over CGL, per thread count.
//
// Expected shape (paper): LockillerTM above LosaTM-SAFU on average (the
// insts-based priority covers friendly fire better than progression-based,
// and HTMLock resolves the unfair-competition scenario completely); the
// paper quotes 1.86x over Baseline and 1.57x over LosaTM on average.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace lktm;
  using namespace lktm::bench;
  const auto workloads = wl::stampNames();
  const auto systems = cfg::evaluatedSystems();
  const auto results = sweepCells(cfg::MachineParams::typical(), systems,
                                         workloads, paperThreadCounts());
  reportFailures(results);
  std::printf("Fig 12: geo-mean speedup over CGL across all STAMP analogs\n\n");
  std::vector<std::string> header{"threads"};
  for (const auto& s : systems) {
    if (s.name != "CGL") header.push_back(s.name);
  }
  stats::Table t(header);
  for (unsigned th : paperThreadCounts()) {
    std::vector<std::string> row{std::to_string(th)};
    for (const auto& s : systems) {
      if (s.name == "CGL") continue;
      row.push_back(stats::Table::fixed(avgSpeedupVsCgl(results, s.name, workloads, th), 2));
    }
    t.addRow(row);
  }
  std::printf("%s\n", t.str().c_str());

  // Paper-style headline ratios, averaged over all thread counts.
  auto overall = [&](const std::string& sys) {
    double p = 1.0;
    for (unsigned th : paperThreadCounts()) p *= avgSpeedupVsCgl(results, sys, workloads, th);
    return std::pow(p, 1.0 / paperThreadCounts().size());
  };
  const double lk = overall("LockillerTM");
  const double base = overall("Baseline");
  const double losa = overall("LosaTM-SAFU");
  std::printf("LockillerTM vs best-effort HTM: %.2fx   vs LosaTM-SAFU: %.2fx\n",
              lk / base, lk / losa);
  return 0;
}
