// Simple centralized barrier for the simulated threads (the paper's STAMP
// runs use barrier-synchronized phases; each thread is pinned to one core).
#pragma once

#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace lktm::cpu {

class BarrierUnit {
 public:
  BarrierUnit(sim::SimContext& ctx, unsigned participants)
      : engine_(ctx.engine()), participants_(participants) {}

  /// Core `id` reached the barrier; `resume` fires when everyone has.
  void arrive(CoreId id, sim::Action resume);

  unsigned waiting() const { return static_cast<unsigned>(waiters_.size()); }
  std::uint64_t episodes() const { return episodes_; }

 private:
  sim::Engine& engine_;
  unsigned participants_;
  std::vector<sim::Action> waiters_;
  std::uint64_t episodes_ = 0;
};

}  // namespace lktm::cpu
