// In-order, single-issue simulated core (Table I: ARM-like in-order CPU with
// TME-style transactional instructions). Interprets the bytecode ISA,
// checkpoints the register file at xbegin, and resumes at the fallback point
// with the abort cause on rollback — RTM/TME semantics.
#pragma once

#include <array>
#include <functional>

#include "coherence/l1_controller.hpp"
#include "cpu/barrier.hpp"
#include "cpu/program.hpp"
#include "sim/engine.hpp"
#include "stats/breakdown.hpp"

namespace lktm::cpu {

struct CpuParams {
  Cycle rollbackPenalty = 25;  ///< squash + register/cache restore cost
  Cycle faultPenalty = 300;    ///< exception-induced abort: trap + handler + restore
  Cycle syscallCost = 120;     ///< survivable exception service time
  core::PriorityKind priorityKind = core::PriorityKind::None;
  /// Extension ablation: attempt the STL switch on an in-transaction fault
  /// instead of aborting (the paper chooses not to; see TmPolicy).
  bool switchOnFault = false;
};

class Cpu {
 public:
  Cpu(sim::SimContext& ctx, CoreId id, coh::L1Controller& l1, BarrierUnit& barrier,
      Program program, CpuParams params, std::function<void()> onHalt = [] {});

  /// Schedule the first instruction.
  void start();

  bool halted() const { return halted_; }
  CoreId id() const { return id_; }
  Cycle haltedAt() const { return haltedAt_; }

  stats::ThreadBreakdown& breakdown() { return bd_; }
  const stats::ThreadBreakdown& breakdown() const { return bd_; }
  stats::TxStats& txCounters() { return l1_.txCounters(); }

  /// Instructions retired since reset (all modes).
  std::uint64_t instsRetired() const { return instsRetired_; }

  std::string diagnostic() const;

 private:
  sim::Engine& engine_;
  CoreId id_;
  coh::L1Controller& l1_;
  BarrierUnit& barrier_;
  Program prog_;
  CpuParams params_;
  std::function<void()> onHalt_;

  std::size_t pc_ = 0;
  std::array<std::uint64_t, kNumRegs> regs_{};
  std::uint64_t epoch_ = 0;  ///< bumped on abort to cancel stale continuations
  bool halted_ = false;
  Cycle haltedAt_ = 0;

  struct Checkpoint {
    std::size_t pc = 0;
    std::array<std::uint64_t, kNumRegs> regs{};
    std::uint8_t statusReg = 0;
  } ckpt_;
  unsigned nestDepth_ = 0;

  std::uint64_t instsInTx_ = 0;   ///< insts-based dynamic priority (paper III-A)
  std::uint64_t memRefsInTx_ = 0; ///< progression-based priority (LosaTM)
  std::uint64_t instsRetired_ = 0;

  stats::ThreadBreakdown bd_;

  /// Commit latency ("core.<id>.latency.commit"): cycles from the first
  /// attempt of a critical section to its commit, spanning aborts, retries
  /// and fallback — the tail-latency view of the lower-bound claim. Inferred
  /// from the instruction stream the backends already emit (xbegin / the
  /// Htm and WaitLock marks open a section; xend / hlend / the lock and STM
  /// commit notes close it), so tracking adds no instructions or cycles.
  stats::Histogram& commitLatency_;
  bool inSection_ = false;
  Cycle sectionStart_ = 0;

  void sectionBegin() {
    if (inSection_) return;
    inSection_ = true;
    sectionStart_ = engine_.now();
  }
  void sectionCommit() {
    if (!inSection_) return;
    inSection_ = false;
    commitLatency_.record(engine_.now() - sectionStart_);
  }

  void step();
  void scheduleNext(Cycle delay);
  void retire(Cycle delay);
  void setReg(unsigned rd, std::uint64_t v) {
    if (rd != kZeroReg) regs_[rd] = v;
  }
  bool inTx() const { return nestDepth_ > 0 || l1_.mode() != TxMode::None; }

  std::uint64_t priorityValue() const;
  void onAbort(AbortCause cause);
  void execMem(const Instr& i);
  void execTx(const Instr& i);
};

}  // namespace lktm::cpu
