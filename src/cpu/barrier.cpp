#include "cpu/barrier.hpp"

#include <stdexcept>
#include <utility>

namespace lktm::cpu {

void BarrierUnit::arrive(CoreId id, sim::Action resume) {
  (void)id;
  waiters_.push_back(std::move(resume));
  if (waiters_.size() < participants_) return;
  ++episodes_;
  engine_.noteProgress();
  auto ready = std::exchange(waiters_, {});
  for (auto& fn : ready) {
    engine_.schedule(1, std::move(fn));
  }
}

}  // namespace lktm::cpu
