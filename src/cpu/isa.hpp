// The tiny RISC-like ISA interpreted by the simulated in-order cores.
//
// It is just rich enough to express the paper's software layer faithfully:
// the elided-lock runtime of Listings 1/2 (retry loops, lock spinning via
// CAS, xbegin status dispatch, ttest-based release) and the STAMP-analog
// workloads (pointer chasing through simulated memory, data-dependent
// addresses via registers).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace lktm::cpu {

inline constexpr unsigned kNumRegs = 32;
/// Register 0 always reads zero; writes are discarded (RISC convention).
inline constexpr unsigned kZeroReg = 0;

/// _xbegin() result on (re-)entering the transaction body.
inline constexpr std::uint64_t kTxStarted = ~std::uint64_t{0};

/// Extended ttest return values (paper Section III-C).
inline constexpr std::uint64_t kTtestStl = 0x0FFFFFFF;
inline constexpr std::uint64_t kTtestTl = 0x1FFFFFFF;

/// Software abort code used by Listing 1 line 9 (TME_LOCK_IS_ACQUIRED);
/// accounted as a `mutex` abort like the paper does. The hybrid backend
/// reuses it when an HTM attempt finds an orec locked by an STM committer —
/// the same "someone holds the software lock" situation.
inline constexpr std::int64_t kAbortCodeLockHeld = 0xFE;

/// Op::Note pulse codes (the imm operand): software-path statistics events
/// that have no hardware side effects.
inline constexpr std::int64_t kNoteLockCommit = 0;          ///< lock-path critical section done
inline constexpr std::int64_t kNoteStmCommit = 1;           ///< software transaction committed
inline constexpr std::int64_t kNoteStmAbortLock = 2;        ///< STM abort: busy orec lock
inline constexpr std::int64_t kNoteStmAbortValidation = 3;  ///< STM abort: read validation failed

enum class Op : std::uint8_t {
  Nop,
  Li,       ///< rd = imm
  Mov,      ///< rd = rs1
  Add,      ///< rd = rs1 + rs2
  Sub,      ///< rd = rs1 - rs2
  Mul,      ///< rd = rs1 * rs2
  AndB,     ///< rd = rs1 & rs2
  OrB,      ///< rd = rs1 | rs2
  XorB,     ///< rd = rs1 ^ rs2
  Shl,      ///< rd = rs1 << (rs2 & 63)
  Shr,      ///< rd = rs1 >> (rs2 & 63)
  AddI,     ///< rd = rs1 + imm
  Rem,      ///< rd = rs1 % rs2 (rs2 != 0)
  Load,     ///< rd = mem[rs1 + imm]
  Store,    ///< mem[rs1 + imm] = rs2
  Cas,      ///< tmp = mem[rs1+imm]; if tmp == rs2: mem[rs1+imm] = rd; rd = tmp
  Compute,  ///< busy for imm cycles (pure computation placeholder)
  DelayReg, ///< busy for min(rs1, 1<<16) cycles (data-dependent backoff)
  Beq,      ///< if rs1 == rs2 goto imm
  Bne,      ///< if rs1 != rs2 goto imm
  Blt,      ///< if rs1 <  rs2 goto imm (unsigned)
  Bge,      ///< if rs1 >= rs2 goto imm (unsigned)
  Jmp,      ///< goto imm
  XBegin,   ///< start/flatten HTM tx; rd = kTxStarted, or abort cause on redo
  XEnd,     ///< commit (outermost) / un-nest
  XAbort,   ///< software abort with code imm
  HlBegin,  ///< enter HTMLock TL mode (blocks for LLC authorization)
  HlEnd,    ///< leave HTMLock mode (TL or STL)
  TTest,    ///< rd = STL/TL marker or nesting depth
  SysCall,  ///< exception: aborts an HTM tx (fault), survivable in TL/STL
  Mark,     ///< attribute following cycles to TimeCat(imm) (profiling hint)
  Note,     ///< statistics pulse: see the kNote* codes above
  Barrier,  ///< synchronize with all other cores
  Halt,     ///< thread done
};

const char* toString(Op op);

struct Instr {
  Op op = Op::Nop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;

  std::string str() const;
};

/// Map an abort cause to the xbegin status code seen by software.
constexpr std::uint64_t statusOf(AbortCause cause) {
  return static_cast<std::uint64_t>(cause);
}

}  // namespace lktm::cpu
