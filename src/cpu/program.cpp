#include "cpu/program.hpp"

namespace lktm::cpu {

std::uint8_t ProgramBuilder::r8(unsigned r) {
  if (r >= kNumRegs) throw std::out_of_range("register id out of range");
  return static_cast<std::uint8_t>(r);
}

void ProgramBuilder::patchTarget(std::size_t at, Label target) {
  Instr& i = code_.at(at);
  switch (i.op) {
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Bge:
    case Op::Jmp:
      i.imm = static_cast<std::int64_t>(target);
      return;
    default:
      throw std::logic_error("patchTarget on a non-control-flow instruction");
  }
}

Program ProgramBuilder::build() {
  // Validate branch targets.
  for (const Instr& i : code_) {
    switch (i.op) {
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jmp:
        if (i.imm < 0 || static_cast<std::size_t>(i.imm) >= code_.size()) {
          throw std::logic_error("branch target out of range: " + i.str());
        }
        break;
      default:
        break;
    }
  }
  return Program{std::move(code_)};
}

}  // namespace lktm::cpu
