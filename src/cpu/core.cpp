#include "cpu/core.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "stats/path.hpp"

namespace lktm::cpu {

Cpu::Cpu(sim::SimContext& ctx, CoreId id, coh::L1Controller& l1, BarrierUnit& barrier,
         Program program, CpuParams params, std::function<void()> onHalt)
    : engine_(ctx.engine()),
      id_(id),
      l1_(l1),
      barrier_(barrier),
      prog_(std::move(program)),
      params_(params),
      onHalt_(std::move(onHalt)),
      bd_(ctx.stats(), "core." + std::to_string(id)),
      commitLatency_(ctx.stats().histogram(
          stats::statPath("core." + std::to_string(id), "latency.commit"),
          "cycles from critical-section begin to commit, spanning retries")) {
  l1_.setCallbacks(coh::L1Controller::Callbacks{
      .priorityValue = [this] { return priorityValue(); },
      .onAbort = [this](AbortCause c) { onAbort(c); },
      .onSwitchedToStl = [] {},  // attribution happens at hlend
  });
}

void Cpu::start() {
  bd_.beginSegment(TimeCat::NonTran, engine_.now());
  scheduleNext(1);
}

void Cpu::scheduleNext(Cycle delay) {
  engine_.schedule(delay, [this, ep = epoch_] {
    if (ep == epoch_ && !halted_) step();
  });
}

void Cpu::retire(Cycle delay) {
  ++instsRetired_;
  if (inTx()) ++instsInTx_;
  ++pc_;
  scheduleNext(delay);
}

std::uint64_t Cpu::priorityValue() const {
  switch (params_.priorityKind) {
    case core::PriorityKind::None: return 0;
    case core::PriorityKind::InstsBased: return instsInTx_;
    case core::PriorityKind::Progression: return memRefsInTx_;
  }
  return 0;
}

void Cpu::step() {
  const Instr& i = prog_.at(pc_);
  switch (i.op) {
    case Op::Nop:
      retire(1);
      return;
    case Op::Li:
      setReg(i.rd, static_cast<std::uint64_t>(i.imm));
      retire(1);
      return;
    case Op::Mov:
      setReg(i.rd, regs_[i.rs1]);
      retire(1);
      return;
    case Op::Add:
      setReg(i.rd, regs_[i.rs1] + regs_[i.rs2]);
      retire(1);
      return;
    case Op::Sub:
      setReg(i.rd, regs_[i.rs1] - regs_[i.rs2]);
      retire(1);
      return;
    case Op::Mul:
      setReg(i.rd, regs_[i.rs1] * regs_[i.rs2]);
      retire(1);
      return;
    case Op::AndB:
      setReg(i.rd, regs_[i.rs1] & regs_[i.rs2]);
      retire(1);
      return;
    case Op::OrB:
      setReg(i.rd, regs_[i.rs1] | regs_[i.rs2]);
      retire(1);
      return;
    case Op::XorB:
      setReg(i.rd, regs_[i.rs1] ^ regs_[i.rs2]);
      retire(1);
      return;
    case Op::Shl:
      setReg(i.rd, regs_[i.rs1] << (regs_[i.rs2] & 63));
      retire(1);
      return;
    case Op::Shr:
      setReg(i.rd, regs_[i.rs1] >> (regs_[i.rs2] & 63));
      retire(1);
      return;
    case Op::AddI:
      setReg(i.rd, regs_[i.rs1] + static_cast<std::uint64_t>(i.imm));
      retire(1);
      return;
    case Op::Rem:
      if (regs_[i.rs2] == 0) throw std::logic_error("Rem by zero");
      setReg(i.rd, regs_[i.rs1] % regs_[i.rs2]);
      retire(1);
      return;
    case Op::Compute: {
      ++instsRetired_;
      if (inTx()) ++instsInTx_;
      ++pc_;
      scheduleNext(static_cast<Cycle>(i.imm > 0 ? i.imm : 1));
      return;
    }
    case Op::DelayReg: {
      ++instsRetired_;
      if (inTx()) ++instsInTx_;
      ++pc_;
      const std::uint64_t d = regs_[i.rs1];
      scheduleNext(static_cast<Cycle>(d > 65536 ? 65536 : (d == 0 ? 1 : d)));
      return;
    }
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Bge: {
      const std::uint64_t a = regs_[i.rs1];
      const std::uint64_t b = regs_[i.rs2];
      bool taken = false;
      switch (i.op) {
        case Op::Beq: taken = a == b; break;
        case Op::Bne: taken = a != b; break;
        case Op::Blt: taken = a < b; break;
        case Op::Bge: taken = a >= b; break;
        default: break;
      }
      ++instsRetired_;
      if (inTx()) ++instsInTx_;
      pc_ = taken ? static_cast<std::size_t>(i.imm) : pc_ + 1;
      scheduleNext(1);
      return;
    }
    case Op::Jmp:
      ++instsRetired_;
      if (inTx()) ++instsInTx_;
      pc_ = static_cast<std::size_t>(i.imm);
      scheduleNext(1);
      return;
    case Op::Load:
    case Op::Store:
    case Op::Cas:
      execMem(i);
      return;
    case Op::XBegin:
    case Op::XEnd:
    case Op::XAbort:
    case Op::HlBegin:
    case Op::HlEnd:
    case Op::TTest:
      execTx(i);
      return;
    case Op::SysCall:
      if (l1_.mode() == TxMode::Htm) {
        if (params_.switchOnFault) {
          // Extension beyond the paper: try to become irrevocable first.
          l1_.trySwitchToLockMode([this, ep = epoch_](bool granted) {
            if (ep != epoch_ || halted_) return;
            if (granted) {
              retire(params_.syscallCost);  // STL survives the exception
            } else {
              l1_.txAbort(AbortCause::Fault);
            }
          });
          return;
        }
        // Architectural constraint of best-effort HTM: exceptions abort.
        // (The paper deliberately does not switch modes on exceptions.)
        l1_.txAbort(AbortCause::Fault);
        return;
      }
      retire(params_.syscallCost);
      return;
    case Op::Mark: {
      const auto cat = static_cast<TimeCat>(i.imm);
      // Every backend opens a critical section through exactly one of these
      // marks (CGL: WaitLock; TL2/hybrid: Htm) or through xbegin; re-marks
      // inside an open section (fallback, backoff) are no-ops for latency.
      if (cat == TimeCat::Htm || cat == TimeCat::WaitLock) sectionBegin();
      bd_.beginSegment(cat, engine_.now());
      retire(1);
      return;
    }
    case Op::Note:
      switch (i.imm) {
        case kNoteLockCommit:
          ++txCounters().lockCommits;
          sectionCommit();
          engine_.noteProgress();
          break;
        case kNoteStmCommit:
          ++txCounters().stmCommits;
          sectionCommit();
          engine_.noteProgress();
          break;
        // STM aborts do NOT note progress: a livelocked software path must
        // still trip the forward-progress watchdog.
        case kNoteStmAbortLock:
          txCounters().recordAbort(AbortCause::LockConflict);
          break;
        case kNoteStmAbortValidation:
          txCounters().recordAbort(AbortCause::MemConflict);
          break;
        default:
          break;
      }
      retire(1);
      return;
    case Op::Barrier:
      barrier_.arrive(id_, [this, ep = epoch_] {
        if (ep == epoch_ && !halted_) retire(1);
      });
      return;
    case Op::Halt:
      bd_.finish(engine_.now());
      halted_ = true;
      haltedAt_ = engine_.now();
      engine_.noteProgress();
      onHalt_();
      return;
  }
  throw std::logic_error("unknown opcode");
}

void Cpu::execMem(const Instr& i) {
  const Addr addr = regs_[i.rs1] + static_cast<std::uint64_t>(i.imm);
  switch (i.op) {
    case Op::Load:
      l1_.load(addr, [this, ep = epoch_, rd = i.rd](std::uint64_t v) {
        if (ep != epoch_ || halted_) return;
        setReg(rd, v);
        if (inTx()) ++memRefsInTx_;
        retire(1);
      });
      return;
    case Op::Store:
      l1_.store(addr, regs_[i.rs2], [this, ep = epoch_] {
        if (ep != epoch_ || halted_) return;
        if (inTx()) ++memRefsInTx_;
        retire(1);
      });
      return;
    case Op::Cas:
      l1_.cas(addr, regs_[i.rs2], regs_[i.rd],
              [this, ep = epoch_, rd = i.rd](std::uint64_t old) {
                if (ep != epoch_ || halted_) return;
                setReg(rd, old);
                if (inTx()) ++memRefsInTx_;
                retire(1);
              });
      return;
    default:
      throw std::logic_error("execMem on non-memory op");
  }
}

void Cpu::execTx(const Instr& i) {
  switch (i.op) {
    case Op::XBegin: {
      if (nestDepth_ == 0) {
        ckpt_.pc = pc_;
        ckpt_.regs = regs_;
        ckpt_.statusReg = i.rd;
        instsInTx_ = 0;
        memRefsInTx_ = 0;
        sectionBegin();  // survives aborts: latency spans the whole section
        l1_.txBegin();
        bd_.beginSegment(TimeCat::Htm, engine_.now());  // provisional
      }
      ++nestDepth_;
      setReg(i.rd, kTxStarted);
      retire(3);
      return;
    }
    case Op::XEnd: {
      if (nestDepth_ == 0) throw std::logic_error("xend outside transaction");
      if (--nestDepth_ > 0) {
        retire(1);
        return;
      }
      l1_.txCommit([this, ep = epoch_] {
        if (ep != epoch_ || halted_) return;
        ++txCounters().htmCommits;
        sectionCommit();
        bd_.resolveSegment(TimeCat::Htm, engine_.now(), TimeCat::NonTran);
        engine_.noteProgress();
        retire(1);
      });
      return;
    }
    case Op::XAbort: {
      const AbortCause cause =
          i.imm == kAbortCodeLockHeld ? AbortCause::Mutex : AbortCause::Explicit;
      l1_.txAbort(cause);
      return;
    }
    case Op::HlBegin: {
      assert(nestDepth_ == 0);
      bd_.beginSegment(TimeCat::WaitLock, engine_.now());  // LLC authorization
      l1_.hlBegin([this, ep = epoch_] {
        if (ep != epoch_ || halted_) return;
        bd_.beginSegment(TimeCat::Lock, engine_.now());
        instsInTx_ = 0;
        memRefsInTx_ = 0;
        engine_.noteProgress();
        retire(1);
      });
      return;
    }
    case Op::HlEnd: {
      const TxMode m = l1_.mode();
      if (!isLockMode(m)) throw std::logic_error("hlend outside HTMLock mode");
      nestDepth_ = 0;
      l1_.hlEnd([this, ep = epoch_, m] {
        if (ep != epoch_ || halted_) return;
        sectionCommit();
        if (m == TxMode::STL) {
          ++txCounters().stlCommits;
          // The whole attempt survived by switching: paper's `switchLock`.
          bd_.resolveSegment(TimeCat::SwitchLock, engine_.now(), TimeCat::NonTran);
        } else {
          ++txCounters().lockCommits;
          bd_.beginSegment(TimeCat::NonTran, engine_.now());
        }
        engine_.noteProgress();
        retire(1);
      });
      return;
    }
    case Op::TTest: {
      std::uint64_t v = 0;
      switch (l1_.mode()) {
        case TxMode::STL: v = kTtestStl; break;
        case TxMode::TL: v = kTtestTl; break;
        default: v = nestDepth_; break;
      }
      setReg(i.rd, v);
      retire(2);
      return;
    }
    default:
      throw std::logic_error("execTx on non-tx op");
  }
}

void Cpu::onAbort(AbortCause cause) {
  // The L1 has already rolled the cache back and squashed pending requests.
  ++epoch_;
  nestDepth_ = 0;
  bd_.resolveSegment(TimeCat::Aborted, engine_.now(), TimeCat::Rollback);
  const Cycle penalty =
      cause == AbortCause::Fault ? params_.faultPenalty : params_.rollbackPenalty;
  engine_.schedule(penalty, [this, cause] {
    regs_ = ckpt_.regs;
    setReg(ckpt_.statusReg, statusOf(cause));
    pc_ = ckpt_.pc + 1;  // resume at the fallback point after xbegin
    instsInTx_ = 0;
    memRefsInTx_ = 0;
    bd_.beginSegment(TimeCat::NonTran, engine_.now());
    step();
  });
}

std::string Cpu::diagnostic() const {
  std::ostringstream oss;
  oss << "cpu c" << id_ << ": pc=" << pc_ << (halted_ ? " halted" : "")
      << " nest=" << nestDepth_ << " " << l1_.diagnostic();
  return oss.str();
}

}  // namespace lktm::cpu
