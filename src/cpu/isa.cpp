#include "cpu/isa.hpp"

#include <sstream>

namespace lktm::cpu {

const char* toString(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::Li: return "li";
    case Op::Mov: return "mov";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::AndB: return "and";
    case Op::OrB: return "or";
    case Op::XorB: return "xor";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::AddI: return "addi";
    case Op::Rem: return "rem";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::Cas: return "cas";
    case Op::Compute: return "compute";
    case Op::DelayReg: return "delayreg";
    case Op::Beq: return "beq";
    case Op::Bne: return "bne";
    case Op::Blt: return "blt";
    case Op::Bge: return "bge";
    case Op::Jmp: return "jmp";
    case Op::XBegin: return "xbegin";
    case Op::XEnd: return "xend";
    case Op::XAbort: return "xabort";
    case Op::HlBegin: return "hlbegin";
    case Op::HlEnd: return "hlend";
    case Op::TTest: return "ttest";
    case Op::SysCall: return "syscall";
    case Op::Mark: return "mark";
    case Op::Note: return "note";
    case Op::Barrier: return "barrier";
    case Op::Halt: return "halt";
  }
  return "?";
}

std::string Instr::str() const {
  std::ostringstream oss;
  oss << toString(op) << " rd=r" << int(rd) << " rs1=r" << int(rs1) << " rs2=r"
      << int(rs2) << " imm=" << imm;
  return oss.str();
}

}  // namespace lktm::cpu
