// Program container and a small assembler (ProgramBuilder) with label
// patching, used by the TM runtime and the workload generators.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cpu/isa.hpp"

namespace lktm::cpu {

struct Program {
  std::vector<Instr> code;

  const Instr& at(std::size_t pc) const {
    if (pc >= code.size()) throw std::out_of_range("pc past end of program");
    return code[pc];
  }
  std::size_t size() const { return code.size(); }
};

class ProgramBuilder {
 public:
  using Label = std::size_t;  ///< instruction index

  Label here() const { return code_.size(); }

  /// Emit a raw instruction; returns its index (for later patching).
  std::size_t emit(Instr i) {
    code_.push_back(i);
    return code_.size() - 1;
  }

  // -- convenience emitters (register ids unchecked < kNumRegs by assert) --
  std::size_t nop() { return emit({Op::Nop}); }
  std::size_t li(unsigned rd, std::int64_t imm) {
    return emit({Op::Li, r8(rd), 0, 0, imm});
  }
  std::size_t mov(unsigned rd, unsigned rs1) { return emit({Op::Mov, r8(rd), r8(rs1), 0, 0}); }
  std::size_t add(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::Add, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t sub(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::Sub, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t mul(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::Mul, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t andb(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::AndB, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t orb(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::OrB, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t xorb(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::XorB, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t shl(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::Shl, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t shr(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::Shr, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t addi(unsigned rd, unsigned rs1, std::int64_t imm) {
    return emit({Op::AddI, r8(rd), r8(rs1), 0, imm});
  }
  std::size_t rem(unsigned rd, unsigned rs1, unsigned rs2) {
    return emit({Op::Rem, r8(rd), r8(rs1), r8(rs2), 0});
  }
  std::size_t load(unsigned rd, unsigned rs1, std::int64_t off = 0) {
    return emit({Op::Load, r8(rd), r8(rs1), 0, off});
  }
  std::size_t store(unsigned rs1, unsigned rs2, std::int64_t off = 0) {
    return emit({Op::Store, 0, r8(rs1), r8(rs2), off});
  }
  std::size_t cas(unsigned rd, unsigned rs1, unsigned rs2, std::int64_t off = 0) {
    return emit({Op::Cas, r8(rd), r8(rs1), r8(rs2), off});
  }
  std::size_t compute(std::int64_t cycles) { return emit({Op::Compute, 0, 0, 0, cycles}); }
  std::size_t delayReg(unsigned rs1) { return emit({Op::DelayReg, 0, r8(rs1), 0, 0}); }
  std::size_t beq(unsigned rs1, unsigned rs2, Label target = 0) {
    return emit({Op::Beq, 0, r8(rs1), r8(rs2), static_cast<std::int64_t>(target)});
  }
  std::size_t bne(unsigned rs1, unsigned rs2, Label target = 0) {
    return emit({Op::Bne, 0, r8(rs1), r8(rs2), static_cast<std::int64_t>(target)});
  }
  std::size_t blt(unsigned rs1, unsigned rs2, Label target = 0) {
    return emit({Op::Blt, 0, r8(rs1), r8(rs2), static_cast<std::int64_t>(target)});
  }
  std::size_t bge(unsigned rs1, unsigned rs2, Label target = 0) {
    return emit({Op::Bge, 0, r8(rs1), r8(rs2), static_cast<std::int64_t>(target)});
  }
  std::size_t jmp(Label target = 0) {
    return emit({Op::Jmp, 0, 0, 0, static_cast<std::int64_t>(target)});
  }
  std::size_t xbegin(unsigned rdStatus) { return emit({Op::XBegin, r8(rdStatus), 0, 0, 0}); }
  std::size_t xend() { return emit({Op::XEnd}); }
  std::size_t xabort(std::int64_t code) { return emit({Op::XAbort, 0, 0, 0, code}); }
  std::size_t hlbegin() { return emit({Op::HlBegin}); }
  std::size_t hlend() { return emit({Op::HlEnd}); }
  std::size_t ttest(unsigned rd) { return emit({Op::TTest, r8(rd), 0, 0, 0}); }
  std::size_t syscall() { return emit({Op::SysCall}); }
  std::size_t note(std::int64_t what) { return emit({Op::Note, 0, 0, 0, what}); }
  std::size_t mark(TimeCat cat) {
    return emit({Op::Mark, 0, 0, 0, static_cast<std::int64_t>(cat)});
  }
  std::size_t barrier() { return emit({Op::Barrier}); }
  std::size_t halt() { return emit({Op::Halt}); }

  /// Point a previously emitted branch/jump at `target`.
  void patchTarget(std::size_t at, Label target);

  Program build();

 private:
  std::vector<Instr> code_;

  static std::uint8_t r8(unsigned r);
};

}  // namespace lktm::cpu
