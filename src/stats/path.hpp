// statPath(...): the documented builder for StatRegistry paths. The
// determinism linter's `stat-path-literal` rule requires every registry path
// to be either a plain string literal or a statPath(...) call, so that the
// set of stat paths a build can emit stays auditable — ad-hoc string
// concatenation at registration sites is what let pre-PR-4 stat names drift
// between producers and the figures that scraped them.
//
// Pieces are joined with '.'; integral pieces are rendered in decimal, and a
// piece may itself contain dots ("l1.hits"), so per-core registrations read
// as statPath("core", id, "l1.hits") -> "core.3.l1.hits".
#pragma once

#include <string>
#include <type_traits>

namespace lktm::stats {

namespace detail {

inline void appendPathPiece(std::string& out, std::string_view piece) {
  if (!out.empty() && !piece.empty()) out += '.';
  out += piece;
}

template <class T>
void appendPathPiece(std::string& out, T v)
  requires std::is_integral_v<T>
{
  appendPathPiece(out, std::string_view(std::to_string(v)));
}

inline void appendPathPiece(std::string& out, const std::string& piece) {
  appendPathPiece(out, std::string_view(piece));
}

inline void appendPathPiece(std::string& out, const char* piece) {
  appendPathPiece(out, std::string_view(piece));
}

}  // namespace detail

template <class... Pieces>
std::string statPath(const Pieces&... pieces) {
  std::string out;
  (detail::appendPathPiece(out, pieces), ...);
  return out;
}

}  // namespace lktm::stats
