// Transaction outcome counters: commits, aborts by cause, switch attempts,
// protocol message counts. Feeds the paper's Figs 8 and 10.
#pragma once

#include <array>
#include <cstdint>

#include "sim/types.hpp"

namespace lktm::stats {

struct TxCounters {
  std::uint64_t htmCommits = 0;    ///< transactions committed speculatively
  std::uint64_t lockCommits = 0;   ///< critical sections completed in TL mode
  std::uint64_t stlCommits = 0;    ///< transactions that switched (STL) and committed
  std::uint64_t aborts = 0;        ///< total aborted speculative attempts
  std::array<std::uint64_t, 8> abortsByCause{};  ///< indexed by AbortCause

  std::uint64_t switchAttempts = 0;
  std::uint64_t switchGrants = 0;
  std::uint64_t rejectsSent = 0;      ///< recovery: toxic requests revoked
  std::uint64_t rejectsReceived = 0;
  std::uint64_t wakeupsSent = 0;
  std::uint64_t sigRejects = 0;       ///< LLC signature-induced rejections
  std::uint64_t fallbackEntries = 0;  ///< times a thread took the lock path

  void recordAbort(AbortCause cause) {
    ++aborts;
    ++abortsByCause[static_cast<std::size_t>(cause)];
  }

  std::uint64_t abortCount(AbortCause cause) const {
    return abortsByCause[static_cast<std::size_t>(cause)];
  }

  /// Commits of *speculative* attempts / all speculative attempts.
  /// Lock-mode (TL) commits are excluded: they never abort. STL commits count
  /// as commits of a speculative attempt (the attempt survived).
  double commitRate() const;

  /// Total committed critical sections of any kind.
  std::uint64_t totalCommits() const { return htmCommits + lockCommits + stlCommits; }

  TxCounters& operator+=(const TxCounters& o);
};

struct ProtocolCounters {
  std::uint64_t messages = 0;
  std::uint64_t dataMessages = 0;
  std::uint64_t flitHops = 0;
  std::uint64_t l1Hits = 0;
  std::uint64_t l1Misses = 0;
  std::uint64_t llcHits = 0;
  std::uint64_t llcMisses = 0;
  std::uint64_t writebacks = 0;

  ProtocolCounters& operator+=(const ProtocolCounters& o);
};

}  // namespace lktm::stats
