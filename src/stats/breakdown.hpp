// Per-thread execution-time breakdown, the data behind the paper's Figs 9/11.
//
// A core is always in exactly one *segment* (speculative tx attempt, lock
// transaction, waiting for a lock, non-transactional code, rollback). Segments
// in speculative mode are provisional: only when the attempt resolves do we
// know whether the cycles count as `htm`, `aborted` or `switchLock`.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lktm::stats {

class ThreadBreakdown {
 public:
  /// Begin a new segment at `now`; cycles since the previous segment boundary
  /// are attributed to the previous category.
  void beginSegment(TimeCat cat, Cycle now);

  /// Current provisional category (used when retargeting speculative time).
  TimeCat current() const { return cur_; }

  /// Reclassify the cycles accumulated in the *current open segment* plus any
  /// cycles parked via `park()` into `cat`, then start a new segment.
  /// Used when a speculative attempt resolves (commit -> Htm, abort ->
  /// Aborted, switched-and-committed -> SwitchLock).
  void resolveSegment(TimeCat cat, Cycle now, TimeCat next);

  /// Close the open segment into its own category at `now`.
  void finish(Cycle now);

  Cycle total() const;
  Cycle get(TimeCat c) const { return cycles_[static_cast<std::size_t>(c)]; }

  const std::array<Cycle, static_cast<std::size_t>(TimeCat::kCount)>& raw() const {
    return cycles_;
  }

 private:
  std::array<Cycle, static_cast<std::size_t>(TimeCat::kCount)> cycles_{};
  TimeCat cur_ = TimeCat::NonTran;
  Cycle segStart_ = 0;
};

/// Aggregate of all threads' breakdowns, normalized for reporting.
struct BreakdownSummary {
  std::array<Cycle, static_cast<std::size_t>(TimeCat::kCount)> cycles{};

  void add(const ThreadBreakdown& tb);
  Cycle total() const;
  double fraction(TimeCat c) const;
};

}  // namespace lktm::stats
