// Per-thread execution-time breakdown, the data behind the paper's Figs 9/11.
//
// A core is always in exactly one *segment* (speculative tx attempt, lock
// transaction, waiting for a lock, non-transactional code, rollback). Segments
// in speculative mode are provisional: only when the attempt resolves do we
// know whether the cycles count as `htm`, `aborted` or `switchLock`.
//
// The accumulated cycles live in the run's StatRegistry (one counter per
// TimeCat under "<prefix>.time.<cat>"); this class keeps only the open
// segment's bookkeeping. Aggregation across threads happens on snapshots
// (sum over "core.*.time.<cat>"), not here.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hpp"
#include "stats/registry.hpp"

namespace lktm::stats {

class ThreadBreakdown {
 public:
  /// Registers "<prefix>.time.<cat>" for every category (prefix: "core.<id>").
  ThreadBreakdown(StatRegistry& reg, const std::string& prefix);

  /// Begin a new segment at `now`; cycles since the previous segment boundary
  /// are attributed to the previous category.
  void beginSegment(TimeCat cat, Cycle now);

  /// Current provisional category (used when retargeting speculative time).
  TimeCat current() const { return cur_; }

  /// Reclassify the cycles accumulated in the *current open segment* into
  /// `cat`, then start a new segment. Used when a speculative attempt
  /// resolves (commit -> Htm, abort -> Aborted, switched-and-committed ->
  /// SwitchLock).
  void resolveSegment(TimeCat cat, Cycle now, TimeCat next);

  /// Close the open segment into its own category at `now`.
  void finish(Cycle now);

  Cycle total() const;
  Cycle get(TimeCat c) const {
    return cycles_[static_cast<std::size_t>(c)]->value();
  }

 private:
  std::array<Counter*, static_cast<std::size_t>(TimeCat::kCount)> cycles_;
  TimeCat cur_ = TimeCat::NonTran;
  Cycle segStart_ = 0;
};

}  // namespace lktm::stats
