// Text-report helpers: aligned ASCII tables and bar strips used by the
// figure-reproduction benches to print paper-style rows.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace lktm::stats {

/// Simple column-aligned table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  std::string str() const;

  /// Format helpers.
  static std::string fixed(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);
  /// Absent values (e.g. commit rate with zero attempts) render as "-".
  static std::string pct(std::optional<double> fraction, int precision = 1);

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal unicode-ish bar of width `width` cells filled to `fraction`.
std::string bar(double fraction, int width = 24);

}  // namespace lktm::stats
