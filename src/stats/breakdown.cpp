#include "stats/breakdown.hpp"

#include <cassert>

namespace lktm::stats {

void ThreadBreakdown::beginSegment(TimeCat cat, Cycle now) {
  assert(now >= segStart_);
  cycles_[static_cast<std::size_t>(cur_)] += now - segStart_;
  cur_ = cat;
  segStart_ = now;
}

void ThreadBreakdown::resolveSegment(TimeCat cat, Cycle now, TimeCat next) {
  assert(now >= segStart_);
  cycles_[static_cast<std::size_t>(cat)] += now - segStart_;
  cur_ = next;
  segStart_ = now;
}

void ThreadBreakdown::finish(Cycle now) { beginSegment(cur_, now); }

Cycle ThreadBreakdown::total() const {
  Cycle t = 0;
  for (auto c : cycles_) t += c;
  return t;
}

void BreakdownSummary::add(const ThreadBreakdown& tb) {
  for (std::size_t i = 0; i < cycles.size(); ++i) cycles[i] += tb.raw()[i];
}

Cycle BreakdownSummary::total() const {
  Cycle t = 0;
  for (auto c : cycles) t += c;
  return t;
}

double BreakdownSummary::fraction(TimeCat c) const {
  const Cycle t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(cycles[static_cast<std::size_t>(c)]) / static_cast<double>(t);
}

}  // namespace lktm::stats
