#include "stats/breakdown.hpp"

#include <cassert>

#include "stats/path.hpp"
#include "stats/tx_stats.hpp"

namespace lktm::stats {

ThreadBreakdown::ThreadBreakdown(StatRegistry& reg, const std::string& prefix) {
  for (std::size_t i = 0; i < cycles_.size(); ++i) {
    const auto cat = static_cast<TimeCat>(i);
    cycles_[i] = &reg.counter(statPath(prefix, "time", timeCatSlug(cat)),
                              "cycles spent in this execution category");
  }
}

void ThreadBreakdown::beginSegment(TimeCat cat, Cycle now) {
  assert(now >= segStart_);
  *cycles_[static_cast<std::size_t>(cur_)] += now - segStart_;
  cur_ = cat;
  segStart_ = now;
}

void ThreadBreakdown::resolveSegment(TimeCat cat, Cycle now, TimeCat next) {
  assert(now >= segStart_);
  *cycles_[static_cast<std::size_t>(cat)] += now - segStart_;
  cur_ = next;
  segStart_ = now;
}

void ThreadBreakdown::finish(Cycle now) { beginSegment(cur_, now); }

Cycle ThreadBreakdown::total() const {
  Cycle t = 0;
  for (const Counter* c : cycles_) t += c->value();
  return t;
}

}  // namespace lktm::stats
