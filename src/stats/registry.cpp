#include "stats/registry.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lktm::stats {

const char* toString(StatKind k) {
  switch (k) {
    case StatKind::Counter: return "counter";
    case StatKind::Histogram: return "histogram";
    case StatKind::Distribution: return "distribution";
    case StatKind::Formula: return "formula";
  }
  return "?";
}

unsigned Histogram::bucketOf(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<unsigned>(v);
  const unsigned e = static_cast<unsigned>(std::bit_width(v)) - 1;  // MSB index, >= kSubBits
  const unsigned sub = static_cast<unsigned>((v >> (e - kSubBits)) & (kSubBuckets - 1));
  return (e - kSubBits + 1) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucketLow(unsigned b) {
  if (b < kSubBuckets) return b;
  const unsigned e = b / kSubBuckets + kSubBits - 1;
  const unsigned sub = b % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (e - kSubBits);
}

std::uint64_t Histogram::bucketHigh(unsigned b) {
  if (b < kSubBuckets) return b;
  const unsigned e = b / kSubBuckets + kSubBits - 1;
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return bucketLow(b) + (width - 1);
}

std::uint64_t histogramPercentile(const SnapshotEntry& e, unsigned permille) {
  if (e.kind != StatKind::Histogram || e.count == 0) return 0;
  // rank = ceil(count * permille / 1000), clamped into [1, count].
  const auto prod = static_cast<unsigned __int128>(e.count) * permille;
  std::uint64_t rank = static_cast<std::uint64_t>((prod + 999) / 1000);
  if (rank == 0) rank = 1;
  if (rank > e.count) rank = e.count;
  std::uint64_t cum = 0;
  for (const auto& [b, n] : e.buckets) {
    cum += n;
    if (cum >= rank) return Histogram::bucketHigh(b);
  }
  return Histogram::bucketHigh(e.buckets.empty() ? 0 : e.buckets.back().first);
}

// ---------------------------------------------------------------------------
// StatSnapshot

void StatSnapshot::add(SnapshotEntry e) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), e.path,
      [](const SnapshotEntry& a, const std::string& p) { return a.path < p; });
  if (it != entries_.end() && it->path == e.path) {
    throw std::logic_error("StatSnapshot: duplicate path '" + e.path + "'");
  }
  entries_.insert(it, std::move(e));
}

const SnapshotEntry* StatSnapshot::find(std::string_view path) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), path,
      [](const SnapshotEntry& a, std::string_view p) { return a.path < p; });
  if (it == entries_.end() || it->path != path) return nullptr;
  return &*it;
}

std::uint64_t StatSnapshot::value(std::string_view path) const {
  const SnapshotEntry* e = find(path);
  return e != nullptr && e->kind == StatKind::Counter ? e->value : 0;
}

double StatSnapshot::number(std::string_view path) const {
  const SnapshotEntry* e = find(path);
  return e != nullptr && e->kind == StatKind::Formula ? e->number : 0.0;
}

bool StatSnapshot::matches(std::string_view pattern, std::string_view path) {
  // Segment-wise comparison; '*' matches exactly one segment.
  std::size_t pi = 0, si = 0;
  while (true) {
    const std::size_t pd = pattern.find('.', pi);
    const std::size_t sd = path.find('.', si);
    const std::string_view pseg = pattern.substr(
        pi, pd == std::string_view::npos ? std::string_view::npos : pd - pi);
    const std::string_view sseg =
        path.substr(si, sd == std::string_view::npos ? std::string_view::npos : sd - si);
    if (pseg != "*" && pseg != sseg) return false;
    const bool pEnd = pd == std::string_view::npos;
    const bool sEnd = sd == std::string_view::npos;
    if (pEnd || sEnd) return pEnd && sEnd;
    pi = pd + 1;
    si = sd + 1;
  }
}

std::uint64_t StatSnapshot::sumMatching(std::string_view pattern) const {
  std::uint64_t total = 0;
  for (const SnapshotEntry& e : entries_) {
    if (e.kind == StatKind::Counter && matches(pattern, e.path)) total += e.value;
  }
  return total;
}

SnapshotEntry StatSnapshot::mergedHistogram(std::string_view pattern) const {
  StatSnapshot acc;
  SnapshotEntry out;
  out.path = std::string(pattern);
  out.kind = StatKind::Histogram;
  acc.add(out);
  for (const SnapshotEntry& e : entries_) {
    if (e.kind != StatKind::Histogram || !matches(pattern, e.path)) continue;
    StatSnapshot one;
    SnapshotEntry c = e;
    c.path = std::string(pattern);
    one.add(std::move(c));
    acc.merge(one);
  }
  return acc.entries().front();
}

namespace {

std::uint64_t subSat(std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; }

std::vector<std::pair<unsigned, std::uint64_t>> diffBuckets(
    const std::vector<std::pair<unsigned, std::uint64_t>>& a,
    const std::vector<std::pair<unsigned, std::uint64_t>>& b) {
  std::vector<std::pair<unsigned, std::uint64_t>> out;
  std::size_t i = 0, j = 0;
  while (i < a.size()) {
    while (j < b.size() && b[j].first < a[i].first) ++j;
    std::uint64_t v = a[i].second;
    if (j < b.size() && b[j].first == a[i].first) v = subSat(v, b[j].second);
    if (v != 0) out.emplace_back(a[i].first, v);
    ++i;
  }
  return out;
}

std::vector<std::pair<unsigned, std::uint64_t>> mergeBuckets(
    const std::vector<std::pair<unsigned, std::uint64_t>>& a,
    const std::vector<std::pair<unsigned, std::uint64_t>>& b) {
  std::vector<std::pair<unsigned, std::uint64_t>> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

StatSnapshot StatSnapshot::diff(const StatSnapshot& base) const {
  StatSnapshot out;
  for (const SnapshotEntry& e : entries_) {
    const SnapshotEntry* b = base.find(e.path);
    if (b == nullptr || b->kind != e.kind) {
      out.add(e);
      continue;
    }
    SnapshotEntry d = e;
    d.value = subSat(e.value, b->value);
    d.count = subSat(e.count, b->count);
    d.sum = subSat(e.sum, b->sum);
    d.buckets = diffBuckets(e.buckets, b->buckets);
    d.number = e.number - b->number;
    out.add(std::move(d));
  }
  return out;
}

void StatSnapshot::merge(const StatSnapshot& other) {
  for (const SnapshotEntry& o : other.entries_) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), o.path,
        [](const SnapshotEntry& a, const std::string& p) { return a.path < p; });
    if (it == entries_.end() || it->path != o.path) {
      entries_.insert(it, o);
      continue;
    }
    if (it->kind != o.kind) {
      throw std::logic_error("StatSnapshot::merge: kind mismatch at '" + o.path + "'");
    }
    it->value += o.value;
    if (o.sum > std::numeric_limits<std::uint64_t>::max() - it->sum) {
      it->sum = std::numeric_limits<std::uint64_t>::max();
      it->overflowed = true;
    } else {
      it->sum += o.sum;
    }
    it->overflowed = it->overflowed || o.overflowed;
    it->buckets = mergeBuckets(it->buckets, o.buckets);
    // min/max widen; empty sides (count == 0) must not contribute their zeros.
    if (o.count != 0) {
      if (it->count == 0) {
        it->min = o.min;
        it->max = o.max;
      } else {
        it->min = std::min(it->min, o.min);
        it->max = std::max(it->max, o.max);
      }
    }
    it->count += o.count;
    // Formulas cannot be re-evaluated from a dump; keep this side's value.
  }
}

// ---------------------------------------------------------------------------
// StatRegistry

StatRegistry::Entry& StatRegistry::registerPath(std::string path, std::string help,
                                                StatKind kind) {
  if (path.empty()) throw std::logic_error("StatRegistry: empty stat path");
  const auto [it, inserted] = byPath_.emplace(path, entries_.size());
  if (!inserted) {
    throw std::logic_error("StatRegistry: path already registered: '" + path + "'");
  }
  entries_.push_back(Entry{std::move(path), std::move(help), kind, 0});
  return entries_.back();
}

Counter& StatRegistry::counter(std::string path, std::string help) {
  Entry& e = registerPath(std::move(path), std::move(help), StatKind::Counter);
  e.index = counters_.size();
  counters_.emplace_back();
  return counters_.back();
}

Histogram& StatRegistry::histogram(std::string path, std::string help) {
  Entry& e = registerPath(std::move(path), std::move(help), StatKind::Histogram);
  e.index = histograms_.size();
  histograms_.emplace_back();
  return histograms_.back();
}

Distribution& StatRegistry::distribution(std::string path, std::string help) {
  Entry& e = registerPath(std::move(path), std::move(help), StatKind::Distribution);
  e.index = distributions_.size();
  distributions_.emplace_back();
  return distributions_.back();
}

void StatRegistry::formula(std::string path, FormulaFn fn, std::string help) {
  Entry& e = registerPath(std::move(path), std::move(help), StatKind::Formula);
  e.index = formulas_.size();
  formulas_.push_back(std::move(fn));
}

bool StatRegistry::contains(std::string_view path) const {
  return byPath_.find(std::string(path)) != byPath_.end();
}

void StatRegistry::clear() {
  entries_.clear();
  byPath_.clear();
  counters_.clear();
  histograms_.clear();
  distributions_.clear();
  formulas_.clear();
}

void StatRegistry::reset() {
  for (Counter& c : counters_) c.reset();
  for (Histogram& h : histograms_) h.reset();
  for (Distribution& d : distributions_) d.reset();
  // Formulas are derived: they re-evaluate from the (reset) stats.
}

std::vector<std::size_t> StatRegistry::sortedOrder() const {
  std::vector<std::size_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return entries_[a].path < entries_[b].path;
  });
  return order;
}

StatSnapshot StatRegistry::snapshot() const {
  StatSnapshot snap;
  for (const std::size_t i : sortedOrder()) {
    const Entry& e = entries_[i];
    SnapshotEntry s;
    s.path = e.path;
    s.kind = e.kind;
    switch (e.kind) {
      case StatKind::Counter:
        s.value = counters_[e.index].value();
        break;
      case StatKind::Histogram: {
        const Histogram& h = histograms_[e.index];
        s.count = h.count();
        s.sum = h.sum();
        s.overflowed = h.overflowed();
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          if (h.bucket(b) != 0) s.buckets.emplace_back(b, h.bucket(b));
        }
        break;
      }
      case StatKind::Distribution: {
        const Distribution& d = distributions_[e.index];
        s.count = d.count();
        s.sum = d.sum();
        s.min = d.min();
        s.max = d.max();
        break;
      }
      case StatKind::Formula:
        s.number = formulas_[e.index]();
        break;
    }
    snap.add(std::move(s));
  }
  return snap;
}

void StatRegistry::forEach(const std::function<void(const std::string&, StatKind,
                                                    const std::string&)>& fn) const {
  for (const std::size_t i : sortedOrder()) {
    fn(entries_[i].path, entries_[i].kind, entries_[i].help);
  }
}

}  // namespace lktm::stats
