#include "stats/counters.hpp"

namespace lktm::stats {

double TxCounters::commitRate() const {
  const std::uint64_t attempts = htmCommits + stlCommits + aborts;
  if (attempts == 0) return 1.0;
  return static_cast<double>(htmCommits + stlCommits) / static_cast<double>(attempts);
}

TxCounters& TxCounters::operator+=(const TxCounters& o) {
  htmCommits += o.htmCommits;
  lockCommits += o.lockCommits;
  stlCommits += o.stlCommits;
  aborts += o.aborts;
  for (std::size_t i = 0; i < abortsByCause.size(); ++i) abortsByCause[i] += o.abortsByCause[i];
  switchAttempts += o.switchAttempts;
  switchGrants += o.switchGrants;
  rejectsSent += o.rejectsSent;
  rejectsReceived += o.rejectsReceived;
  wakeupsSent += o.wakeupsSent;
  sigRejects += o.sigRejects;
  fallbackEntries += o.fallbackEntries;
  return *this;
}

ProtocolCounters& ProtocolCounters::operator+=(const ProtocolCounters& o) {
  messages += o.messages;
  dataMessages += o.dataMessages;
  flitHops += o.flitHops;
  l1Hits += o.l1Hits;
  l1Misses += o.l1Misses;
  llcHits += o.llcHits;
  llcMisses += o.llcMisses;
  writebacks += o.writebacks;
  return *this;
}

}  // namespace lktm::stats
