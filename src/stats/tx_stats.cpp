#include "stats/tx_stats.hpp"

#include "stats/path.hpp"

namespace lktm::stats {

const char* abortCauseSlug(AbortCause c) {
  switch (c) {
    case AbortCause::None: return "none";
    case AbortCause::MemConflict: return "mem_conflict";
    case AbortCause::LockConflict: return "lock_conflict";
    case AbortCause::Mutex: return "mutex";
    case AbortCause::NonTran: return "non_tran";
    case AbortCause::Overflow: return "overflow";
    case AbortCause::Fault: return "fault";
    case AbortCause::Explicit: return "explicit";
  }
  return "?";
}

const char* timeCatSlug(TimeCat c) {
  switch (c) {
    case TimeCat::Htm: return "htm";
    case TimeCat::Aborted: return "aborted";
    case TimeCat::Lock: return "lock";
    case TimeCat::SwitchLock: return "switch_lock";
    case TimeCat::NonTran: return "non_tran";
    case TimeCat::WaitLock: return "wait_lock";
    case TimeCat::Rollback: return "rollback";
    case TimeCat::kCount: break;
  }
  return "?";
}

std::optional<double> commitRate(std::uint64_t htmCommits, std::uint64_t swCommits,
                                 std::uint64_t aborts) {
  const std::uint64_t attempts = htmCommits + swCommits + aborts;
  if (attempts == 0) return std::nullopt;
  return static_cast<double>(htmCommits + swCommits) / static_cast<double>(attempts);
}

namespace {

std::array<Counter*, TxStats::kCauses> registerCauses(StatRegistry& reg,
                                                      const std::string& prefix) {
  std::array<Counter*, TxStats::kCauses> out{};
  for (std::size_t i = 0; i < TxStats::kCauses; ++i) {
    const auto cause = static_cast<AbortCause>(i);
    out[i] = &reg.counter(statPath(prefix, "aborts", abortCauseSlug(cause)),
                          "aborts attributed to this cause");
  }
  return out;
}

}  // namespace

TxStats::TxStats(StatRegistry& reg, const std::string& prefix)
    : htmCommits(reg.counter(statPath(prefix, "commits.htm"),
                             "transactions committed speculatively")),
      lockCommits(reg.counter(statPath(prefix, "commits.lock"),
                              "critical sections completed in TL mode")),
      stlCommits(reg.counter(statPath(prefix, "commits.stl"),
                             "transactions that switched (STL) and committed")),
      stmCommits(reg.counter(statPath(prefix, "commits.stm"),
                             "software (TL2 path) transactions committed")),
      aborts(reg.counter(statPath(prefix, "aborts.total"),
                         "total aborted speculative attempts")),
      abortsByCause(registerCauses(reg, prefix)),
      switchAttempts(reg.counter(statPath(prefix, "switch.attempts"))),
      switchGrants(reg.counter(statPath(prefix, "switch.grants"))),
      rejectsSent(reg.counter(statPath(prefix, "rejects.sent"),
                              "recovery: toxic requests revoked")),
      rejectsReceived(reg.counter(statPath(prefix, "rejects.received"))),
      wakeupsSent(reg.counter(statPath(prefix, "wakeups.sent"))) {}

}  // namespace lktm::stats
