// Minimal JSON support shared by the instrumentation spine: a streaming
// writer for the run artifacts / trace files, and the recursive-descent
// reader that bench_to_json, validate_stats_json and the round-trip tests
// use. Only what our own formats need — objects, arrays, strings, numbers,
// true/false/null, common escapes.
//
// All emission is locale-independent: integers via std::to_string, doubles
// via std::to_chars, and every stream this writer drives should additionally
// be imbued with std::locale::classic() by the caller (writeTo does it).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace lktm::stats::json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  /// String content for Kind::String; for Kind::Number, the raw literal as it
  /// appeared in the document. The raw literal is what makes u64 values above
  /// 2^53 (seeds, counters) survive a parse → re-emit round trip exactly.
  std::string text;
  std::shared_ptr<Array> array;
  std::shared_ptr<Object> object;

  const Value* find(const std::string& key) const {
    if (kind != Kind::Object || object == nullptr) return nullptr;
    const auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
  bool isString() const { return kind == Kind::String; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isArray() const { return kind == Kind::Array && array != nullptr; }
  bool isObject() const { return kind == Kind::Object && object != nullptr; }
};

/// Parse a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input.
Value parse(const std::string& src);

/// Unsigned 64-bit view of a parsed number: exact (std::from_chars over the
/// raw literal) when the document carried a plain unsigned integer, the
/// rounded double otherwise. 0 for non-numbers.
std::uint64_t asU64(const Value& v);

/// Escape and quote a string for JSON output.
std::string quote(const std::string& s);

/// Locale-independent number formatting (std::to_chars; shortest roundtrip).
std::string formatDouble(double v);

/// Streaming writer with explicit structure: the caller opens/closes objects
/// and arrays; commas are inserted automatically. Output is deterministic:
/// emission order is exactly the call order.
class Writer {
 public:
  /// Imbues the stream with the classic locale so numeric punctuation can
  /// never vary with the host environment.
  explicit Writer(std::ostream& os, bool pretty = true);

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Start a keyed child inside an object.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(double v);
  void value(bool v);
  void null();
  /// Emit a pre-formatted numeric literal verbatim (raw text from a parsed
  /// Value): the byte-exactness workhorse of artifact merging.
  void rawNumber(const std::string& literal);

  /// key + value in one call.
  template <class T>
  void field(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void separate();  ///< comma/newline bookkeeping before a new element
  void indent();

  std::ostream& os_;
  bool pretty_;
  struct Scope {
    char close;        // '}' or ']'
    bool hasElements = false;
  };
  std::vector<Scope> stack_;
  bool pendingKey_ = false;
};

/// Re-emit a parsed Value through `w`: objects in key-sorted (map) order,
/// numbers via their raw literal. Deterministic — the same parsed document
/// always re-emits the same bytes — which is what lets the sweep orchestrator
/// merge per-job artifacts into a bit-stable combined document regardless of
/// how many interruptions/resumes produced them.
void writeValue(Writer& w, const Value& v);

}  // namespace lktm::stats::json
