#include "stats/report.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <locale>
#include <sstream>

namespace lktm::stats {

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::str() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream oss;
  oss.imbue(std::locale::classic());  // report text never varies with the host locale
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      oss << row[i];
      if (i + 1 < row.size()) {
        oss << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    oss << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
      oss << std::string(total, '-') << '\n';
    }
  }
  return oss.str();
}

std::string Table::fixed(double v, int precision) {
  // std::to_chars: the decimal point is always '.', whatever LC_NUMERIC says.
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, precision);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

std::string Table::pct(double fraction, int precision) {
  return fixed(fraction * 100.0, precision) + "%";
}

std::string Table::pct(std::optional<double> fraction, int precision) {
  return fraction.has_value() ? pct(*fraction, precision) : "-";
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string s;
  s.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) s += (i < filled ? '#' : '.');
  return s;
}

}  // namespace lktm::stats
