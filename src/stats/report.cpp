#include "stats/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace lktm::stats {

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::str() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream oss;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      oss << row[i];
      if (i + 1 < row.size()) {
        oss << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    oss << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
      oss << std::string(total, '-') << '\n';
    }
  }
  return oss.str();
}

std::string Table::fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string s;
  s.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) s += (i < filled ? '#' : '.');
  return s;
}

}  // namespace lktm::stats
