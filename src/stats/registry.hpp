// The instrumentation spine: one hierarchical registry of name-pathed stats
// (`core.3.aborts.mem_conflict`, `dir.llc.hits`, `noc.flit_hops`) owned by the
// per-run SimContext. Components register their stats once at construction and
// keep cheap handles (Counter&); everything downstream — text reports, the
// figure benches, --stats-json artifacts, sweep aggregation — reads the
// registry instead of scraping per-component structs.
//
// Kinds:
//  * Counter      — monotonically increasing u64 (the workhorse)
//  * Histogram    — HDR-style log2 buckets split into 16 linear sub-buckets
//                   (values < 16 are exact; above that the relative error of
//                   a bucket's bound is at most 1/16), with a saturating sum
//                   and an `overflowed` flag
//  * Distribution — count/sum/min/max summary
//  * Formula      — a double computed from other stats at snapshot time
//
// Lifecycle: SimContext::beginRun() clears the registry; the components of
// the next run re-register from scratch, so no value can leak between sweep
// iterations. reset() (zero every value, keep registrations) is the single
// reset path for harnesses that reuse live components.
//
// Iteration and snapshots are deterministically ordered by path. Registering
// the same path twice throws.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lktm::stats {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  Counter& operator++() {
    ++v_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    v_ += n;
    return *this;
  }
  std::uint64_t value() const { return v_; }
  operator std::uint64_t() const { return v_; }  // NOLINT(google-explicit-constructor)
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Histogram {
 public:
  /// HDR-style bucketing: each power-of-two range [2^e, 2^(e+1)) is split
  /// into 2^kSubBits linear sub-buckets, so any recorded value is bounded by
  /// its bucket edges with relative error <= 2^-kSubBits (6.25%). Values
  /// below 2^kSubBits get a bucket each (exact). Buckets 0..15 hold the
  /// values 0..15; bucket 16*(e-3)+s (e = 4..63, s = 0..15) holds
  /// [(16+s)*2^(e-4), (17+s)*2^(e-4)).
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 16
  static constexpr unsigned kBuckets = 61 * kSubBuckets;   // 976, covers all u64

  static unsigned bucketOf(std::uint64_t v);
  /// Inclusive value range of bucket `b`.
  static std::uint64_t bucketLow(unsigned b);
  static std::uint64_t bucketHigh(unsigned b);

  void record(std::uint64_t v) {
    ++buckets_[bucketOf(v)];
    ++count_;
    if (v > std::numeric_limits<std::uint64_t>::max() - sum_) {
      sum_ = std::numeric_limits<std::uint64_t>::max();
      overflowed_ = true;
    } else {
      sum_ += v;
    }
  }
  std::uint64_t count() const { return count_; }
  /// Saturates at u64 max instead of wrapping; `overflowed()` reports it.
  std::uint64_t sum() const { return sum_; }
  bool overflowed() const { return overflowed_; }
  std::uint64_t bucket(unsigned b) const { return buckets_.at(b); }
  void reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    overflowed_ = false;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  bool overflowed_ = false;
};

class Distribution {
 public:
  void record(std::uint64_t v) {
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// 0 when empty (min/max are meaningless without samples).
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  void reset() {
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<std::uint64_t>::max();
    max_ = 0;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

enum class StatKind : std::uint8_t { Counter, Histogram, Distribution, Formula };

const char* toString(StatKind k);

/// One stat's value at snapshot time. Which fields are meaningful depends on
/// `kind`; the others stay zero so entry comparison is well-defined.
struct SnapshotEntry {
  std::string path;
  StatKind kind = StatKind::Counter;
  std::uint64_t value = 0;                                  ///< Counter
  std::uint64_t count = 0, sum = 0, min = 0, max = 0;       ///< Histogram/Distribution
  std::vector<std::pair<unsigned, std::uint64_t>> buckets;  ///< Histogram (sparse, sorted)
  bool overflowed = false;                                  ///< Histogram sum saturated
  double number = 0.0;                                      ///< Formula

  bool operator==(const SnapshotEntry&) const = default;
};

/// Upper bound of the histogram bucket holding the sample of rank
/// ceil(count * permille / 1000) — p50 is permille 500, p999 is 999. The
/// true sample is within kSubBits relative error below the returned value.
/// 0 when the entry is empty or not a histogram.
std::uint64_t histogramPercentile(const SnapshotEntry& e, unsigned permille);

/// A path-sorted, self-contained dump of a registry. Safe to keep after the
/// registry (or the components whose formulas it evaluated) are gone.
class StatSnapshot {
 public:
  void add(SnapshotEntry e);  ///< keeps entries sorted by path; collisions throw
  const std::vector<SnapshotEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  const SnapshotEntry* find(std::string_view path) const;
  /// Counter value at `path` (0 when absent or not a counter).
  std::uint64_t value(std::string_view path) const;
  /// Formula value at `path` (0.0 when absent or not a formula).
  double number(std::string_view path) const;

  /// Sum of all *counter* values whose path matches `pattern`, where a `*`
  /// segment matches exactly one path segment: "core.*.commits.htm" sums the
  /// htm commits of every core. Exact paths are a special case.
  std::uint64_t sumMatching(std::string_view pattern) const;

  /// Bucket-wise union of every *histogram* entry matching `pattern` (same
  /// wildcard rules as sumMatching): counts, sums (saturating) and buckets
  /// add, overflowed ORs. Path is the pattern; empty entry when none match.
  SnapshotEntry mergedHistogram(std::string_view pattern) const;

  /// Entry-wise `this - base` for entries present in both (counters, counts,
  /// sums, buckets subtract saturating at 0; formulas subtract; min/max carry
  /// this snapshot's values — extrema do not diff). Entries absent from
  /// `base` pass through unchanged; entries only in `base` are dropped.
  StatSnapshot diff(const StatSnapshot& base) const;

  /// Path-union aggregation for sweeps: counters, counts, sums and buckets
  /// add; min/max widen; formulas keep this snapshot's value (they cannot be
  /// re-evaluated from a dump). Kind mismatch on a shared path throws.
  void merge(const StatSnapshot& other);

  bool operator==(const StatSnapshot&) const = default;

  static bool matches(std::string_view pattern, std::string_view path);

 private:
  std::vector<SnapshotEntry> entries_;  // sorted by path
};

class StatRegistry {
 public:
  using FormulaFn = std::function<double()>;

  StatRegistry() = default;
  StatRegistry(const StatRegistry&) = delete;
  StatRegistry& operator=(const StatRegistry&) = delete;

  /// Register a stat at `path`. References stay valid until clear().
  /// Registering an already-taken path throws std::logic_error.
  Counter& counter(std::string path, std::string help = "");
  Histogram& histogram(std::string path, std::string help = "");
  Distribution& distribution(std::string path, std::string help = "");
  void formula(std::string path, FormulaFn fn, std::string help = "");

  bool contains(std::string_view path) const;
  std::size_t size() const { return entries_.size(); }

  /// Drop every registration (SimContext::beginRun: the next run's components
  /// re-register from scratch).
  void clear();

  /// Zero every registered value, keeping the registrations. The single
  /// reset path for harnesses that reuse live components across runs.
  void reset();

  /// Evaluate every stat (including formulas) into a path-sorted snapshot.
  StatSnapshot snapshot() const;

  /// Deterministic path-sorted iteration over (path, kind, help).
  void forEach(const std::function<void(const std::string& path, StatKind kind,
                                        const std::string& help)>& fn) const;

 private:
  struct Entry {
    std::string path;
    std::string help;
    StatKind kind = StatKind::Counter;
    std::size_t index = 0;  ///< into the kind's deque
  };

  Entry& registerPath(std::string path, std::string help, StatKind kind);
  std::vector<std::size_t> sortedOrder() const;

  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> byPath_;
  std::deque<Counter> counters_;
  std::deque<Histogram> histograms_;
  std::deque<Distribution> distributions_;
  std::deque<FormulaFn> formulas_;
};

}  // namespace lktm::stats
