// Transaction-outcome stats as a registry handle bundle. Each L1 controller
// constructs one TxStats against the run's StatRegistry under its core's
// prefix ("core.<id>"); the members are references into the registry, so
// call sites read exactly like the old plain-struct counters
// (`++txStats.htmCommits`, `txStats.recordAbort(cause)`) while every value
// lives in — and is reported from — the instrumentation spine.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/types.hpp"
#include "stats/registry.hpp"

namespace lktm::stats {

/// Stable path segment for an abort cause ("mem_conflict", "overflow", ...).
const char* abortCauseSlug(AbortCause c);

/// Stable path segment for a time category ("htm", "switch_lock", ...).
const char* timeCatSlug(TimeCat c);

/// Commit rate of *speculative* attempts: (htm + sw) / (htm + sw + aborts),
/// where `swCommits` is every software speculative flavour (STL + STM).
/// Lock-mode (TL) commits are excluded: they never abort. Absent (nullopt)
/// when there were no speculative attempts at all — an idle core has no
/// commit rate, and treating it as 1.0 inflates averaged figures.
std::optional<double> commitRate(std::uint64_t htmCommits, std::uint64_t swCommits,
                                 std::uint64_t aborts);

struct TxStats {
  static constexpr std::size_t kCauses = 8;  ///< indexed by AbortCause

  /// Registers everything under `prefix` (e.g. "core.3"): commits.{htm,lock,
  /// stl,stm}, aborts.total, aborts.<cause>, switch.{attempts,grants},
  /// rejects.{sent,received}, wakeups.sent.
  TxStats(StatRegistry& reg, const std::string& prefix);

  Counter& htmCommits;   ///< transactions committed speculatively
  Counter& lockCommits;  ///< critical sections completed in TL mode
  Counter& stlCommits;   ///< transactions that switched (STL) and committed
  Counter& stmCommits;   ///< software (TL2 path) transactions committed
  Counter& aborts;       ///< total aborted speculative attempts
  std::array<Counter*, kCauses> abortsByCause;

  Counter& switchAttempts;
  Counter& switchGrants;
  Counter& rejectsSent;  ///< recovery: toxic requests revoked
  Counter& rejectsReceived;
  Counter& wakeupsSent;

  void recordAbort(AbortCause cause) {
    ++aborts;
    ++*abortsByCause[static_cast<std::size_t>(cause)];
  }

  std::uint64_t abortCount(AbortCause cause) const {
    return abortsByCause[static_cast<std::size_t>(cause)]->value();
  }

  /// Total committed critical sections of any kind.
  std::uint64_t totalCommits() const {
    return htmCommits.value() + lockCommits.value() + stlCommits.value() +
           stmCommits.value();
  }

  std::optional<double> commitRate() const {
    return stats::commitRate(htmCommits.value(),
                             stlCommits.value() + stmCommits.value(),
                             aborts.value());
  }
};

}  // namespace lktm::stats
