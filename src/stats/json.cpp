#include "stats/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <locale>
#include <stdexcept>

namespace lktm::stats::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  Value parse() {
    Value v = value();
    skipWs();
    if (pos_ != src_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skipWs() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    skipWs();
    switch (peek()) {
      case '{': return objectValue();
      case '[': return arrayValue();
      case '"': return stringValue();
      case 't': return literal("true", boolValue(true));
      case 'f': return literal("false", boolValue(false));
      case 'n': return literal("null", Value{});
      default: return numberValue();
    }
  }

  static Value boolValue(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Value literal(const std::string& word, Value v) {
    if (src_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
    return v;
  }

  Value stringValue() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= src_.size()) fail("bad escape");
        const char e = src_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Our producers are ASCII; keep the raw sequence readable.
            if (pos_ + 4 > src_.size()) fail("bad \\u escape");
            out += "\\u" + src_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    Value v;
    v.kind = Value::Kind::String;
    v.text = std::move(out);
    return v;
  }

  Value numberValue() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0 ||
            src_[pos_] == '-' || src_[pos_] == '+' || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    v.text = src_.substr(start, pos_ - start);  // raw literal, kept for re-emission
    v.number = std::stod(v.text);
    return v;
  }

  Value arrayValue() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    v.array = std::make_shared<Array>();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array->push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value objectValue() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    v.object = std::make_shared<Object>();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      Value key = stringValue();
      skipWs();
      expect(':');
      (*v.object)[key.text] = value();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& src) { return Parser(src).parse(); }

std::uint64_t asU64(const Value& v) {
  if (v.kind != Value::Kind::Number) return 0;
  if (!v.text.empty()) {
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(v.text.data(), v.text.data() + v.text.size(), out);
    if (ec == std::errc{} && ptr == v.text.data() + v.text.size()) return out;
  }
  return static_cast<std::uint64_t>(v.number);
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string formatDouble(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

Writer::Writer(std::ostream& os, bool pretty) : os_(os), pretty_(pretty) {
  os_.imbue(std::locale::classic());
}

void Writer::indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void Writer::separate() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // the key already placed the comma/indent
  }
  if (!stack_.empty()) {
    if (stack_.back().hasElements) os_ << ',';
    stack_.back().hasElements = true;
    indent();
  }
}

void Writer::beginObject() {
  separate();
  os_ << '{';
  stack_.push_back({'}'});
}

void Writer::endObject() {
  const bool had = !stack_.empty() && stack_.back().hasElements;
  stack_.pop_back();
  if (had) indent();
  os_ << '}';
  if (stack_.empty() && pretty_) os_ << '\n';
}

void Writer::beginArray() {
  separate();
  os_ << '[';
  stack_.push_back({']'});
}

void Writer::endArray() {
  const bool had = !stack_.empty() && stack_.back().hasElements;
  stack_.pop_back();
  if (had) indent();
  os_ << ']';
}

void Writer::key(const std::string& k) {
  separate();
  os_ << quote(k) << (pretty_ ? ": " : ":");
  pendingKey_ = true;
}

void Writer::value(const std::string& v) {
  separate();
  os_ << quote(v);
}

void Writer::value(const char* v) { value(std::string(v)); }

void Writer::value(std::uint64_t v) {
  separate();
  os_ << std::to_string(v);
}

void Writer::value(std::int64_t v) {
  separate();
  os_ << std::to_string(v);
}

void Writer::value(double v) {
  separate();
  os_ << formatDouble(v);
}

void Writer::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
}

void Writer::null() {
  separate();
  os_ << "null";
}

void Writer::rawNumber(const std::string& literal) {
  separate();
  os_ << literal;
}

void writeValue(Writer& w, const Value& v) {
  switch (v.kind) {
    case Value::Kind::Null:
      w.null();
      return;
    case Value::Kind::Bool:
      w.value(v.boolean);
      return;
    case Value::Kind::Number:
      if (!v.text.empty()) {
        w.rawNumber(v.text);
      } else {
        w.value(v.number);
      }
      return;
    case Value::Kind::String:
      w.value(v.text);
      return;
    case Value::Kind::Array:
      w.beginArray();
      if (v.array != nullptr) {
        for (const Value& e : *v.array) writeValue(w, e);
      }
      w.endArray();
      return;
    case Value::Kind::Object:
      w.beginObject();
      if (v.object != nullptr) {
        for (const auto& [k, child] : *v.object) {
          w.key(k);
          writeValue(w, child);
        }
      }
      w.endObject();
      return;
  }
}

}  // namespace lktm::stats::json
