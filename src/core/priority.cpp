#include "core/priority.hpp"

#include <sstream>

namespace lktm::core {

const char* toString(PriorityKind k) {
  switch (k) {
    case PriorityKind::None: return "none";
    case PriorityKind::InstsBased: return "insts";
    case PriorityKind::Progression: return "progression";
  }
  return "?";
}

std::string PrioKey::str() const {
  std::ostringstream oss;
  oss << (lockMode ? "LOCK" : "htm") << ":" << value << "@c" << core;
  return oss.str();
}

}  // namespace lktm::core
