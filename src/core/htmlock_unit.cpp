#include "core/htmlock_unit.hpp"

namespace lktm::core {

HtmLockUnit::HtmLockUnit(HtmLockUnitParams params)
    : rd_(params.signatureBits, params.signatureHashes),
      wr_(params.signatureBits, params.signatureHashes) {}

void HtmLockUnit::noteOverflow(LineAddr line, bool isWrite) {
  (isWrite ? wr_ : rd_).insert(line);
}

bool HtmLockUnit::shouldReject(LineAddr line, bool wantsExclusive,
                               bool otherCopiesExist, CoreId requester) const {
  if (lockHolder_ == kNoCore || requester == lockHolder_) return false;
  if (wr_.mayContain(line)) return true;
  if (!rd_.mayContain(line)) return false;
  // OfRdSig hit: writers always conflict; readers only if they would receive
  // exclusive data (the paper's "no other copy in the upper level caches"
  // case — an E grant would let the requester store and commit silently,
  // leaving the irrevocable lock transaction reading inconsistent data).
  return wantsExclusive || !otherCopiesExist;
}

std::vector<WakeupTable::Entry> HtmLockUnit::clearAndDrain() {
  rd_.clear();
  wr_.clear();
  return waiters_.drainAll();
}

}  // namespace lktm::core
