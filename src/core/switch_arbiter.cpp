#include "core/switch_arbiter.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lktm::core {

SwitchArbiter::Verdict SwitchArbiter::request(CoreId core, TxMode mode) {
  assert(isLockMode(mode));
  if (holder_ == kNoCore) {
    holder_ = core;
    holderMode_ = mode;
    return Verdict::Grant;
  }
  if (holder_ == core) {
    throw std::logic_error("core already holds the HTMLock slot");
  }
  if (mode == TxMode::STL) return Verdict::Deny;
  tlQueue_.push_back(core);
  return Verdict::Queued;
}

std::optional<CoreId> SwitchArbiter::release(CoreId core) {
  if (holder_ != core) {
    throw std::logic_error("release by non-holder of the HTMLock slot");
  }
  holder_ = kNoCore;
  holderMode_ = TxMode::None;
  if (tlQueue_.empty()) return std::nullopt;
  const CoreId next = tlQueue_.front();
  tlQueue_.pop_front();
  holder_ = next;
  holderMode_ = TxMode::TL;
  return next;
}

void SwitchArbiter::withdraw(CoreId core) {
  tlQueue_.erase(std::remove(tlQueue_.begin(), tlQueue_.end(), core), tlQueue_.end());
}

}  // namespace lktm::core
