#include "core/conflict_manager.hpp"

namespace lktm::core {

const char* toString(ConflictPolicy p) {
  switch (p) {
    case ConflictPolicy::RequesterWins: return "requester-wins";
    case ConflictPolicy::Recovery: return "recovery";
  }
  return "?";
}

const char* toString(RejectAction a) {
  switch (a) {
    case RejectAction::SelfAbort: return "self-abort";
    case RejectAction::RetryLater: return "retry-later";
    case RejectAction::WaitWakeup: return "wait-wakeup";
  }
  return "?";
}

AbortCause ConflictManager::classify(const LocalSide& local, const ReqSide& req) {
  if (req.lockMode) return AbortCause::LockConflict;
  if (!req.isTx) {
    // A non-transactional store to the fallback-lock word is precisely the
    // "fallback path acquired the lock" event of baseline best-effort HTM.
    return local.lineIsLockWord ? AbortCause::Mutex : AbortCause::NonTran;
  }
  return AbortCause::MemConflict;
}

Decision ConflictManager::decide(const LocalSide& local, const ReqSide& req) const {
  // An irrevocable lock transaction can never be the victim, under any policy:
  // its data must stay consistent through execution (HTMLock challenge 1).
  if (local.lockMode) return {.rejectRequester = true, .abortCause = AbortCause::None};

  // A lock-mode requester carries the globally-highest priority, so the local
  // HTM transaction always loses (HTMLock challenge 2).
  if (req.lockMode) {
    return {.rejectRequester = false, .abortCause = classify(local, req)};
  }

  // Non-transactional requesters beat HTM transactions: best-effort HTM offers
  // them no way to stall, and the paper keeps `non_tran` aborts in every
  // configuration (Fig 10).
  if (!req.isTx) {
    return {.rejectRequester = false, .abortCause = classify(local, req)};
  }

  if (policy_ == ConflictPolicy::RequesterWins) {
    return {.rejectRequester = false, .abortCause = classify(local, req)};
  }

  // Recovery: reject iff the responder's (priority, core id) outranks the
  // requester's snapshot carried on the message.
  const PrioKey mine{.lockMode = false, .value = local.priority, .core = local.core};
  const PrioKey theirs{.lockMode = false, .value = req.priority, .core = req.core};
  if (mine.beats(theirs)) {
    return {.rejectRequester = true, .abortCause = AbortCause::None};
  }
  return {.rejectRequester = false, .abortCause = classify(local, req)};
}

}  // namespace lktm::core
