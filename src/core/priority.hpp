// User-defined transaction priorities (Section III-A of the paper).
//
// The recovery mechanism carries a priority value on every coherence request
// (the paper piggybacks it on the ACE ARUSER field). A globally consistent
// total order over (lock-mode, value, core id) guarantees at least one
// transaction always wins, which is what rules out livelock.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace lktm::core {

/// How a transaction's priority value is derived.
enum class PriorityKind : std::uint8_t {
  None,        ///< constant 0: ties broken by core id only
  InstsBased,  ///< instructions committed inside the current attempt (paper's choice)
  Progression, ///< memory references completed in the attempt (LosaTM-style)
};

const char* toString(PriorityKind k);

/// A comparable priority snapshot. Lock transactions (TL/STL) outrank every
/// HTM transaction; among equals, the smaller core id wins (paper: "when
/// carrying the same priority, the processor ID is compared, with smaller IDs
/// having greater priority").
struct PrioKey {
  bool lockMode = false;
  std::uint64_t value = 0;
  CoreId core = kNoCore;

  /// True if `*this` outranks `other`.
  bool beats(const PrioKey& other) const {
    if (lockMode != other.lockMode) return lockMode;
    if (value != other.value) return value > other.value;
    return core < other.core;
  }

  std::string str() const;
};

}  // namespace lktm::core
