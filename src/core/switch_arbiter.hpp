// The LLC's HTMLock-mode authorization point (Section III-C).
//
// At most one transaction system-wide may be in HTMLock mode (TL or STL).
// Typical entry (TL) holds the software fallback lock *and* asks here;
// switchingMode entry (STL) asks here *without* the lock, relying on the
// LLC's serialization for atomic, exclusive admission. TL requests queue
// (the requester already owns the software lock and simply waits its turn);
// STL requests are denied outright when the slot is taken, in which case the
// overflowing transaction aborts exactly as baseline best-effort HTM would.
#pragma once

#include <deque>
#include <optional>

#include "sim/types.hpp"

namespace lktm::core {

class SwitchArbiter {
 public:
  enum class Verdict : std::uint8_t { Grant, Deny, Queued };

  bool active() const { return holder_ != kNoCore; }
  CoreId holder() const { return holder_; }
  TxMode holderMode() const { return holderMode_; }

  /// `mode` must be TL or STL.
  Verdict request(CoreId core, TxMode mode);

  /// Holder leaves HTMLock mode. Returns the next queued TL core to grant,
  /// if any (the grant message is the caller's job).
  std::optional<CoreId> release(CoreId core);

  /// A queued TL requester aborted/withdrew (should not happen in practice;
  /// kept for robustness).
  void withdraw(CoreId core);

  std::size_t queued() const { return tlQueue_.size(); }

  /// Grant-order view of the queued TL requesters (model-checker state
  /// fingerprints; the queue order decides who is granted next).
  const std::deque<CoreId>& tlQueue() const { return tlQueue_; }

 private:
  CoreId holder_ = kNoCore;
  TxMode holderMode_ = TxMode::None;
  std::deque<CoreId> tlQueue_;
};

}  // namespace lktm::core
