#include "core/wakeup_table.hpp"

namespace lktm::core {

std::size_t WakeupTable::size() const {
  std::size_t n = 0;
  for (const auto& [line, cores] : table_) n += cores.size();
  return n;
}

std::vector<WakeupTable::Entry> WakeupTable::drainAll() {
  std::vector<Entry> out;
  out.reserve(size());
  for (const auto& [line, cores] : table_) {
    for (CoreId c : cores) out.push_back({line, c});
  }
  table_.clear();
  return out;
}

std::vector<WakeupTable::Entry> WakeupTable::drain(LineAddr line) {
  std::vector<Entry> out;
  auto it = table_.find(line);
  if (it == table_.end()) return out;
  out.reserve(it->second.size());
  for (CoreId c : it->second) out.push_back({line, c});
  table_.erase(it);
  return out;
}

}  // namespace lktm::core
