#include "core/wakeup_table.hpp"

namespace lktm::core {

std::size_t WakeupTable::size() const {
  std::size_t n = 0;
  table_.forEachOrdered([&](LineAddr, const sim::CoreMask& cores) { n += cores.size(); });
  return n;
}

std::vector<WakeupTable::Entry> WakeupTable::drainAll() {
  std::vector<Entry> out;
  table_.forEachOrdered([&](LineAddr line, const sim::CoreMask& cores) {
    cores.forEach([&](CoreId c) { out.push_back({line, c}); });
  });
  table_.clear();
  return out;
}

std::vector<WakeupTable::Entry> WakeupTable::drain(LineAddr line) {
  std::vector<Entry> out;
  const sim::CoreMask* cores = table_.find(line);
  if (cores == nullptr) return out;
  out.reserve(cores->size());
  cores->forEach([&](CoreId c) { out.push_back({line, c}); });
  table_.erase(line);
  return out;
}

}  // namespace lktm::core
