// LLC-side support for the HTMLock mechanism: the two overflow signatures
// (OfRdSig / OfWrSig, Fig 5) recording the lock transaction's read/write set
// that spilled out of its L1, plus the waiter bookkeeping for requests the
// signatures reject.
//
// With a banked directory there is one HtmLockUnit per bank; each unit holds
// a *mirror* of the global SwitchArbiter's lock state (holder + mode),
// maintained by the home bank's inter-bank BankLockSet / BankLockClear
// broadcast. The signature filter consults only the local mirror, so a bank
// never has to reach across the chip to decide a reject.
#pragma once

#include "core/wakeup_table.hpp"
#include "mem/signature.hpp"
#include "sim/types.hpp"

namespace lktm::core {

struct HtmLockUnitParams {
  unsigned signatureBits = 2048;
  unsigned signatureHashes = 4;
};

class HtmLockUnit {
 public:
  explicit HtmLockUnit(HtmLockUnitParams params = {});

  /// Inter-bank lock mirror: the home bank installs the active HTMLock
  /// holder on every bank at grant time and clears it after hlend.
  void setLock(CoreId holder, TxMode mode) {
    lockHolder_ = holder;
    lockMode_ = mode;
  }
  void clearLock() {
    lockHolder_ = kNoCore;
    lockMode_ = TxMode::None;
  }
  CoreId lockHolder() const { return lockHolder_; }
  TxMode lockMode() const { return lockMode_; }

  /// The lock transaction spilled `line` from its L1 (eviction in TL/STL
  /// mode). Recorded conservatively in the corresponding signature.
  void noteOverflow(LineAddr line, bool isWrite);

  /// Signature check for an external request reaching the LLC (the paper's
  /// rule: reject on OfWrSig hit; reject on OfRdSig hit too when the grant
  /// would be exclusive — i.e. an exclusive request, or a read that would be
  /// granted E because no other cached copy exists).
  bool shouldReject(LineAddr line, bool wantsExclusive, bool otherCopiesExist,
                    CoreId requester) const;

  /// Remember a rejected requester so it can be woken when the lock
  /// transaction finishes.
  void recordWaiter(LineAddr line, CoreId core) { waiters_.record(line, core); }

  /// Lock transaction finished (hlend): clear both signatures and return the
  /// cores to wake. Leaves the lock mirror untouched — clearing that is the
  /// broadcast protocol's job (clearLock), because a bank must keep rejecting
  /// on behalf of the holder until its signatures are wiped.
  std::vector<WakeupTable::Entry> clearAndDrain();

  bool anyOverflow() const { return !rd_.empty() || !wr_.empty(); }
  const mem::BloomSignature& readSig() const { return rd_; }
  const mem::BloomSignature& writeSig() const { return wr_; }
  const WakeupTable& waiters() const { return waiters_; }

 private:
  CoreId lockHolder_ = kNoCore;
  TxMode lockMode_ = TxMode::None;
  mem::BloomSignature rd_;
  mem::BloomSignature wr_;
  WakeupTable waiters_;
};

}  // namespace lktm::core
