// Conflict detection outcome policy — the heart of LockillerTM's recovery
// mechanism, and the requester-wins baseline it replaces.
//
// A *conflict* exists when an external request touches a line in the local
// transaction's read/write set incompatibly (any request vs tx-written line;
// exclusive request vs tx-read line). The manager decides, at the responder,
// whether the local transaction aborts (requester wins) or the request is
// revoked with a data-less REJECT (recovery mechanism, Fig 4's green logic).
#pragma once

#include <cstdint>

#include "core/priority.hpp"
#include "sim/types.hpp"

namespace lktm::core {

enum class ConflictPolicy : std::uint8_t {
  RequesterWins,  ///< commercial best-effort HTM behaviour
  Recovery,       ///< reject toxic requests per the recovery mechanism
};

/// What a requester does when its held request comes back rejected
/// (the paper's three options: "abort directly, pause for a fixed period
/// before retrying, or wait for a wake-up before retrying").
enum class RejectAction : std::uint8_t {
  SelfAbort,   ///< Lockiller-RAI
  RetryLater,  ///< Lockiller-RRI
  WaitWakeup,  ///< Lockiller-RWI (and all HTMLock systems)
};

const char* toString(ConflictPolicy p);
const char* toString(RejectAction a);

/// Static description of the requesting side of a conflict, as carried by the
/// coherence message.
struct ReqSide {
  CoreId core = kNoCore;
  bool isTx = false;      ///< request issued from inside an HTM transaction
  bool lockMode = false;  ///< requester is a TL/STL lock transaction
  std::uint64_t priority = 0;
  bool wantsExclusive = false;  ///< GETX/UPGRADE vs GETS
};

/// The responding side: the local transaction holding the line.
struct LocalSide {
  CoreId core = kNoCore;
  bool lockMode = false;        ///< responder is a TL/STL lock transaction
  std::uint64_t priority = 0;
  bool lineIsLockWord = false;  ///< conflicting address is the fallback lock
};

struct Decision {
  bool rejectRequester = false;   ///< send REJECT, keep local state
  AbortCause abortCause = AbortCause::None;  ///< cause if local aborts
};

/// Complete TM policy of an evaluated system (one row of the paper's
/// Table II is a TmPolicy + a runtime flavour).
struct TmPolicy {
  bool htmEnabled = true;           ///< false => CGL (no speculation at all)
  ConflictPolicy conflict = ConflictPolicy::RequesterWins;
  RejectAction rejectAction = RejectAction::SelfAbort;
  PriorityKind priority = PriorityKind::None;
  bool htmLock = false;     ///< HTMLock mechanism (TL mode + LLC signatures)
  bool switching = false;   ///< switchingMode mechanism (STL on overflow)
  /// Extension beyond the paper (it deliberately aborts on exceptions,
  /// Section III-C): also attempt the STL switch on a fault inside the
  /// transaction. Off in every Table II system; exercised by the ablation
  /// benches.
  bool switchOnFault = false;
  bool subscribeLock = true;  ///< xbegin reads the fallback-lock word
                              ///< (disabled by the HTMLock software change)
};

class ConflictManager {
 public:
  ConflictManager(ConflictPolicy policy, RejectAction rejectAction)
      : policy_(policy), rejectAction_(rejectAction) {}

  ConflictPolicy policy() const { return policy_; }
  RejectAction rejectAction() const { return rejectAction_; }

  /// Decide a detected conflict at the responder.
  Decision decide(const LocalSide& local, const ReqSide& req) const;

  /// Classify why the local transaction dies to this requester.
  static AbortCause classify(const LocalSide& local, const ReqSide& req);

 private:
  ConflictPolicy policy_;
  RejectAction rejectAction_;
};

}  // namespace lktm::core
