// The per-responder wakeup bookkeeping of the recovery mechanism (the green
// shaded table in the paper's Fig 2): every time a request is rejected under
// the WaitWakeup policy, the rejecting side records which core to wake; the
// table is drained when the local transaction commits or aborts.
//
// Storage is a flat open-addressed table of per-line CoreMask bitsets; drains
// walk lines in ascending order and cores in ascending id order, which is
// exactly the old std::map<LineAddr, std::set<CoreId>> order.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/core_mask.hpp"
#include "sim/flat_table.hpp"
#include "sim/types.hpp"

namespace lktm::core {

class WakeupTable {
 public:
  struct Entry {
    LineAddr line;
    CoreId core;
  };

  /// Record that `core`'s request for `line` was rejected here.
  void record(LineAddr line, CoreId core) { table_[line].insert(core); }

  bool empty() const { return table_.empty(); }
  std::size_t size() const;

  /// Remove and return every recorded waiter (commit/abort of the local
  /// transaction releases all lines at once). Deterministic order.
  std::vector<Entry> drainAll();

  /// Remove and return waiters for one line (used by the LLC signatures when
  /// a specific address is released).
  std::vector<Entry> drain(LineAddr line);

  /// Non-draining walk in (ascending line, ascending core) order, for the
  /// model checker's state fingerprints and no-lost-wakeup invariant.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    table_.forEachOrdered([&](LineAddr line, const sim::CoreMask& m) {
      m.forEach([&](CoreId c) { fn(line, c); });
    });
  }

 private:
  sim::FlatLineTable<sim::CoreMask> table_;
};

}  // namespace lktm::core
