// Contention-free fixed-latency network, for unit tests and for isolating
// protocol behaviour from NoC effects in ablation studies.
#pragma once

#include <map>
#include <utility>

#include "noc/network.hpp"

namespace lktm::noc {

class IdealNetwork final : public Network {
 public:
  IdealNetwork(sim::SimContext& ctx, Cycle latency = 3)
      : Network(ctx), engine_(ctx.engine()), latency_(latency) {}

  /// Contention-free, but still FIFO per (src, dst) pair: the coherence
  /// protocol relies on point-to-point ordering (e.g. a PutM must not be
  /// overtaken by a later GetS for the same line).
  void send(NodeId src, NodeId dst, unsigned flits,
            sim::Action onArrive) override;

 private:
  sim::Engine& engine_;
  Cycle latency_;
  std::map<std::pair<NodeId, NodeId>, Cycle> lastArrival_;
};

}  // namespace lktm::noc
