#include "noc/ideal.hpp"

#include <utility>

namespace lktm::noc {

void IdealNetwork::send(NodeId src, NodeId dst, unsigned flits,
                        sim::Action onArrive) {
  count(flits, 1);
  Cycle arrive = engine_.now() + latency_ + flits - 1;
  Cycle& last = lastArrival_[{src, dst}];
  if (arrive <= last) arrive = last + 1;  // preserve point-to-point FIFO
  last = arrive;
  engine_.queue().scheduleAt(arrive, std::move(onArrive));
}

}  // namespace lktm::noc
