#include "noc/mesh.hpp"

#include <cassert>
#include <cstdlib>
#include <memory>
#include <utility>

namespace lktm::noc {

namespace {
enum Dir : unsigned { E = 0, W = 1, N = 2, S = 3 };
}

MeshNetwork::MeshNetwork(sim::Engine& engine, MeshParams params)
    : engine_(engine), params_(params), linkFree_(numTiles()) {}

unsigned MeshNetwork::hops(NodeId src, NodeId dst) const {
  const Pos a = posOf(tileOf(src));
  const Pos b = posOf(tileOf(dst));
  return static_cast<unsigned>(std::abs(static_cast<int>(a.x) - static_cast<int>(b.x)) +
                               std::abs(static_cast<int>(a.y) - static_cast<int>(b.y)));
}

void MeshNetwork::send(NodeId src, NodeId dst, unsigned flits,
                       sim::EventQueue::Action onArrive) {
  const unsigned srcTile = tileOf(src);
  const unsigned dstTile = tileOf(dst);
  count(flits, hops(src, dst) + 1);
  if (srcTile == dstTile) {
    // Local: through the tile's router once (e.g. L1 to co-located LLC bank).
    engine_.schedule(params_.routerLatency, std::move(onArrive));
    return;
  }
  // Injection takes one router traversal; then hop along the X-Y path.
  engine_.schedule(params_.routerLatency,
                   [this, srcTile, dstTile, flits, fn = std::move(onArrive)]() mutable {
                     hop(srcTile, dstTile, flits, 0, std::move(fn));
                   });
}

void MeshNetwork::hop(unsigned tile, unsigned dstTile, unsigned flits,
                      unsigned hopCount, sim::EventQueue::Action onArrive) {
  assert(hopCount < params_.cols + params_.rows && "routing loop");
  if (tile == dstTile) {
    onArrive();
    return;
  }
  const Pos here = posOf(tile);
  const Pos dst = posOf(dstTile);
  unsigned dir;
  unsigned next;
  if (here.x != dst.x) {  // X first
    dir = here.x < dst.x ? E : W;
    next = dir == E ? tile + 1 : tile - 1;
  } else {
    dir = here.y < dst.y ? S : N;
    next = dir == S ? tile + params_.cols : tile - params_.cols;
  }
  // Store-and-forward: the message leaves when the link is free, occupies it
  // for `flits` cycles, and is fully received linkLatency + flits - 1 later.
  const Cycle now = engine_.now();
  Cycle& nextFree = linkFree_[tile][dir];
  const Cycle depart = std::max(now, nextFree);
  nextFree = depart + flits;
  const Cycle arrive = depart + params_.linkLatency + flits - 1 + params_.routerLatency;
  engine_.queue().scheduleAt(
      arrive, [this, next, dstTile, flits, hopCount, fn = std::move(onArrive)]() mutable {
        hop(next, dstTile, flits, hopCount + 1, std::move(fn));
      });
}

}  // namespace lktm::noc
