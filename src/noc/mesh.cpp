#include "noc/mesh.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

namespace lktm::noc {

namespace {
enum Dir : unsigned { E = 0, W = 1, N = 2, S = 3 };
}

MeshParams MeshParams::forTiles(unsigned tiles) {
  MeshParams p;
  if (tiles == 0) {
    throw std::invalid_argument("mesh geometry needs at least one tile");
  }
  unsigned rows = 1;
  for (unsigned r = 1; r * r <= tiles; ++r) {
    if (tiles % r == 0) rows = r;
  }
  p.rows = rows;
  p.cols = tiles / rows;
  return p;
}

MeshNetwork::MeshNetwork(sim::SimContext& ctx, MeshParams params)
    : Network(ctx),
      engine_(ctx.engine()),
      pool_(ctx.pool<MeshPacket>()),
      params_(params),
      linkFree_(numTiles()),
      hopsHist_(ctx.stats().histogram("noc.hops",
                                      "mesh hop count per message (log2 buckets)")) {
  if (params_.cols == 0 || params_.rows == 0) {
    throw std::invalid_argument(
        "mesh geometry must have at least one column and one row, got " +
        std::to_string(params_.cols) + "x" + std::to_string(params_.rows));
  }
}

unsigned MeshNetwork::hops(NodeId src, NodeId dst) const {
  const Pos a = posOf(tileOf(src));
  const Pos b = posOf(tileOf(dst));
  return static_cast<unsigned>(std::abs(static_cast<int>(a.x) - static_cast<int>(b.x)) +
                               std::abs(static_cast<int>(a.y) - static_cast<int>(b.y)));
}

void MeshNetwork::send(NodeId src, NodeId dst, unsigned flits,
                       sim::Action onArrive) {
  const unsigned srcTile = tileOf(src);
  const unsigned dstTile = tileOf(dst);
  const unsigned h = hops(src, dst);
  count(flits, h + 1);
  hopsHist_.record(h);
  if (srcTile == dstTile) {
    // Local: through the tile's router once (e.g. L1 to co-located LLC bank).
    engine_.schedule(params_.routerLatency, std::move(onArrive));
    return;
  }
  // Injection takes one router traversal; then hop along the X-Y path.
  MeshPacket* p = pool_.acquire();
  p->tile = srcTile;
  p->dstTile = dstTile;
  p->flits = flits;
  p->hopCount = 0;
  p->onArrive = std::move(onArrive);
  engine_.schedule(params_.routerLatency, [this, p] { step(p); });
}

void MeshNetwork::step(MeshPacket* p) {
  assert(p->hopCount < params_.cols + params_.rows && "routing loop");
  if (p->tile == p->dstTile) {
    sim::Action fn = std::move(p->onArrive);
    pool_.recycle(p);
    fn();
    return;
  }
  const Pos here = posOf(p->tile);
  const Pos dst = posOf(p->dstTile);
  unsigned dir;
  unsigned next;
  if (here.x != dst.x) {  // X first
    dir = here.x < dst.x ? E : W;
    next = dir == E ? p->tile + 1 : p->tile - 1;
  } else {
    dir = here.y < dst.y ? S : N;
    next = dir == S ? p->tile + params_.cols : p->tile - params_.cols;
  }
  // Store-and-forward: the message leaves when the link is free, occupies it
  // for `flits` cycles, and is fully received linkLatency + flits - 1 later.
  const Cycle now = engine_.now();
  Cycle& nextFree = linkFree_[p->tile][dir];
  const Cycle depart = std::max(now, nextFree);
  nextFree = depart + p->flits;
  const Cycle arrive = depart + params_.linkLatency + p->flits - 1 + params_.routerLatency;
  p->tile = next;
  ++p->hopCount;
  engine_.queue().scheduleAt(arrive, [this, p] { step(p); });
}

}  // namespace lktm::noc
