#include "noc/network.hpp"

// Interface-only translation unit: keeps the vtable anchored in one place.
namespace lktm::noc {}
