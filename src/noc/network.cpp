#include "noc/network.hpp"

namespace lktm::noc {

Network::Network(sim::SimContext& ctx)
    : messages_(ctx.stats().counter("noc.messages", "messages injected")),
      dataMessages_(ctx.stats().counter("noc.data_messages",
                                        "messages carrying a cache line")),
      flitHops_(ctx.stats().counter("noc.flit_hops",
                                    "sum over messages of flits * hops")) {
  // Registry-owned handles stay valid for the registration's lifetime, and
  // the formula is cleared together with them on the next beginRun().
  ctx.stats().formula(
      "noc.avg_flit_hops_per_msg",
      [m = &messages_, f = &flitHops_] {
        return m->value() == 0 ? 0.0
                               : static_cast<double>(f->value()) /
                                     static_cast<double>(m->value());
      },
      "mean flit-hops each message cost");
}

}  // namespace lktm::noc
