// Interconnect abstraction. The coherence controllers hand the network a
// payload-delivery action plus a flit count; the network decides *when* the
// action runs. Two implementations: a 2-D mesh with X-Y routing (the paper's
// Table I configuration) and an ideal fixed-latency network for unit tests.
//
// The delivery action is a sim::Action (small-buffer callable): senders that
// carry bulky payloads (coherence Msg with a full cache line) park the
// payload in a SimContext pool and capture only the pointer, so no payload
// bytes are copied through the event queue (see coh::post in messages.hpp).
#pragma once

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"
#include "stats/registry.hpp"

namespace lktm::noc {

/// Network endpoint id. Cores occupy [0, numCores); LLC banks occupy
/// [numCores, 2*numCores), bank b co-located with tile b.
using NodeId = int;

class Network {
 public:
  /// Registers the interconnect's stats ("noc.*") in the run's registry.
  explicit Network(sim::SimContext& ctx);
  virtual ~Network() = default;

  /// Deliver `onArrive` after the message's network traversal time.
  /// `flits` models serialization (Table I: 5 flits data, 1 flit control).
  virtual void send(NodeId src, NodeId dst, unsigned flits,
                    sim::Action onArrive) = 0;

 protected:
  void count(unsigned flits, unsigned hops) {
    ++messages_;
    if (flits > 1) ++dataMessages_;
    flitHops_ += static_cast<std::uint64_t>(flits) * hops;
  }

 private:
  stats::Counter& messages_;
  stats::Counter& dataMessages_;
  stats::Counter& flitHops_;
};

inline constexpr unsigned kControlFlits = 1;
inline constexpr unsigned kDataFlits = 5;  ///< 64B line + header at 16B/flit

}  // namespace lktm::noc
