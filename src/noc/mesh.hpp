// 2-D mesh with dimension-ordered (X-Y) routing and store-and-forward link
// occupancy tracking. The default matches Table I: 4x8 mesh, 1-cycle links,
// 1 flit/cycle bandwidth, 16-byte flits; any cols x rows geometry is
// accepted (large-core configs derive a near-square grid via forTiles).
//
// Each in-flight message is one pooled MeshPacket that carries the delivery
// action once; per-hop events capture only {this, packet}, so routing a
// message allocates nothing in steady state.
#pragma once

#include <array>
#include <vector>

#include "noc/network.hpp"

namespace lktm::noc {

struct MeshParams {
  unsigned cols = 8;
  unsigned rows = 4;
  Cycle routerLatency = 1;
  Cycle linkLatency = 1;

  /// Near-square geometry with cols * rows == tiles (rows is the largest
  /// divisor of tiles not exceeding its square root): 32 -> 4x8 (the Table I
  /// grid), 128 -> 8x16, 256 -> 16x16. Latencies keep their defaults.
  static MeshParams forTiles(unsigned tiles);
};

/// In-flight message state, recycled through the SimContext packet pool.
struct MeshPacket {
  unsigned tile = 0;
  unsigned dstTile = 0;
  unsigned flits = 0;
  unsigned hopCount = 0;
  sim::Action onArrive;
};

class MeshNetwork final : public Network {
 public:
  MeshNetwork(sim::SimContext& ctx, MeshParams params);

  void send(NodeId src, NodeId dst, unsigned flits,
            sim::Action onArrive) override;

  unsigned numTiles() const { return params_.cols * params_.rows; }

  /// Tile a node is attached to (LLC bank b lives at tile b).
  unsigned tileOf(NodeId n) const { return static_cast<unsigned>(n) % numTiles(); }

  /// Number of mesh hops between two nodes (Manhattan distance).
  unsigned hops(NodeId src, NodeId dst) const;

 private:
  sim::Engine& engine_;
  sim::Pool<MeshPacket>& pool_;
  MeshParams params_;
  // nextFree cycle per directed link: [tile][direction], 0=E 1=W 2=N 3=S.
  std::vector<std::array<Cycle, 4>> linkFree_;
  stats::Histogram& hopsHist_;

  struct Pos {
    unsigned x, y;
  };
  Pos posOf(unsigned tile) const {
    return {tile % params_.cols, tile / params_.cols};
  }

  void step(MeshPacket* p);
};

}  // namespace lktm::noc
