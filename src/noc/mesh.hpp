// 2-D mesh with dimension-ordered (X-Y) routing and store-and-forward link
// occupancy tracking. Matches Table I: 4x8 mesh, 1-cycle links, 1 flit/cycle
// bandwidth, 16-byte flits.
#pragma once

#include <array>
#include <vector>

#include "noc/network.hpp"

namespace lktm::noc {

struct MeshParams {
  unsigned cols = 8;
  unsigned rows = 4;
  Cycle routerLatency = 1;
  Cycle linkLatency = 1;
};

class MeshNetwork final : public Network {
 public:
  MeshNetwork(sim::Engine& engine, MeshParams params);

  void send(NodeId src, NodeId dst, unsigned flits,
            sim::EventQueue::Action onArrive) override;

  unsigned numTiles() const { return params_.cols * params_.rows; }

  /// Tile a node is attached to (LLC bank b lives at tile b).
  unsigned tileOf(NodeId n) const { return static_cast<unsigned>(n) % numTiles(); }

  /// Number of mesh hops between two nodes (Manhattan distance).
  unsigned hops(NodeId src, NodeId dst) const;

 private:
  sim::Engine& engine_;
  MeshParams params_;
  // nextFree cycle per directed link: [tile][direction], 0=E 1=W 2=N 3=S.
  std::vector<std::array<Cycle, 4>> linkFree_;

  struct Pos {
    unsigned x, y;
  };
  Pos posOf(unsigned tile) const {
    return {tile % params_.cols, tile / params_.cols};
  }

  void hop(unsigned tile, unsigned dstTile, unsigned flits, unsigned hopCount,
           sim::EventQueue::Action onArrive);
};

}  // namespace lktm::noc
