#include "workloads/db_traffic.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "workloads/zipfian.hpp"

namespace lktm::wl {
namespace {

constexpr unsigned kRegAddr = 1;
constexpr unsigned kRegVal = 2;
constexpr unsigned kRegAddr2 = 3;
constexpr unsigned kRegVal2 = 4;
constexpr Addr kWordBytes = sizeof(std::uint64_t);

// Every generator keeps transaction synthesis in one deterministic replayable
// pass (forEachTx), shared verbatim between buildProgram and verify: the
// verifier recomputes the expected conservation totals by replaying the same
// seeded per-thread streams instead of trusting state accumulated during
// emission, so building a program twice can never skew the invariant.

// -------------------------------------------------------------------- ycsb

class YcsbWorkload final : public Workload {
 public:
  YcsbWorkload(std::string name, unsigned rows, double theta, unsigned readPct,
               unsigned scanPct, unsigned opsPerTx, unsigned scanLen,
               unsigned totalTxs, std::uint64_t seed)
      : name_(std::move(name)),
        rows_(rows),
        readPct_(readPct),
        scanPct_(scanPct),
        opsPerTx_(opsPerTx),
        scanLen_(scanLen),
        totalTxs_(totalTxs),
        seed_(seed),
        zipf_(rows, theta) {
    if (rows_ == 0) throw std::invalid_argument("ycsb: need at least one row");
  }

  std::string name() const override { return name_; }

  void init(mem::MainMemory&, unsigned) override {
    // One cache line per row. Rows start at 0 (sparse memory reads absent
    // lines as zero), so even huge stores cost nothing to lay out.
    base_ = space_.allocLines(rows_);
  }

  cpu::Program buildProgram(unsigned tid, unsigned nthreads,
                            tm::Backend& backend) override {
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, tid, nthreads);
    b.mark(TimeCat::NonTran);
    b.compute(static_cast<std::int64_t>(30 + 11 * tid));
    forEachTx(tid, nthreads, [&](const std::vector<Op>& ops) {
      backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
        for (const Op& op : ops) {
          const Addr addr = base_ + static_cast<Addr>(op.key) * kLineBytes;
          if (op.write) {
            backend.emitUpdate(pb, addr, kRegAddr, kRegVal, 1);
          } else {
            backend.emitRead(pb, addr, kRegAddr, kRegVal);
          }
        }
      });
      b.compute(25);
    });
    b.barrier();
    b.halt();
    return b.build();
  }

  std::vector<std::string> verify(const WordReader& read,
                                  unsigned nthreads) const override {
    std::uint64_t expected = 0;
    for (unsigned tid = 0; tid < nthreads; ++tid) {
      forEachTx(tid, nthreads, [&](const std::vector<Op>& ops) {
        for (const Op& op : ops) {
          if (op.write) ++expected;
        }
      });
    }
    std::uint64_t total = 0;
    for (unsigned r = 0; r < rows_; ++r) {
      total += read(base_ + static_cast<Addr>(r) * kLineBytes);
    }
    if (total == expected) return {};
    std::ostringstream oss;
    oss << name_ << ": row-update total " << total << " != generated " << expected
        << " (lost or duplicated updates)";
    return {oss.str()};
  }

  Addr footprintEnd() const override { return space_.used(); }

 private:
  struct Op {
    bool write = false;
    unsigned key = 0;
  };

  template <typename Fn>
  void forEachTx(unsigned tid, unsigned nthreads, const Fn& fn) const {
    sim::Rng rng(seed_ ^ (0xDB01ull * (tid + 1)));
    const unsigned lo = totalTxs_ * tid / nthreads;
    const unsigned hi = totalTxs_ * (tid + 1) / nthreads;
    std::vector<Op> ops;
    for (unsigned t = lo; t < hi; ++t) {
      ops.clear();
      if (scanPct_ != 0 && rng.percent(scanPct_)) {
        const auto start = static_cast<unsigned>(zipf_.sample(rng));
        for (unsigned j = 0; j < scanLen_; ++j) {
          ops.push_back({false, (start + j) % rows_});
        }
      } else {
        for (unsigned i = 0; i < opsPerTx_; ++i) {
          const auto key = static_cast<unsigned>(zipf_.sample(rng));
          ops.push_back({!rng.percent(readPct_), key});
        }
      }
      fn(ops);
    }
  }

  std::string name_;
  unsigned rows_;
  unsigned readPct_;
  unsigned scanPct_;
  unsigned opsPerTx_;
  unsigned scanLen_;
  unsigned totalTxs_;
  std::uint64_t seed_;
  Zipfian zipf_;
  AddressSpace space_;
  Addr base_ = 0;
};

// -------------------------------------------------------------------- tpcc

class TpccLiteWorkload final : public Workload {
 public:
  TpccLiteWorkload(unsigned warehouses, unsigned districts, unsigned customers,
                   unsigned items, unsigned totalTxs, std::uint64_t seed)
      : warehouses_(warehouses),
        districts_(districts),
        customers_(customers),
        items_(items),
        totalTxs_(totalTxs),
        seed_(seed),
        custZipf_(customers, 0.99),
        itemZipf_(items, 0.99) {
    if (warehouses_ == 0 || districts_ == 0 || customers_ == 0 || items_ == 0) {
      throw std::invalid_argument("tpcc: all row populations must be non-zero");
    }
  }

  std::string name() const override { return "tpcc"; }

  void init(mem::MainMemory& memory, unsigned) override {
    whBase_ = space_.allocLines(warehouses_);
    distBase_ = space_.allocLines(warehouses_ * districts_);
    custBase_ = space_.allocLines(warehouses_ * districts_ * customers_);
    itemBase_ = space_.allocLines(items_);
    for (unsigned c = 0; c < warehouses_ * districts_ * customers_; ++c) {
      memory.writeWord(custBase_ + static_cast<Addr>(c) * kLineBytes, kInitBalance);
    }
    for (unsigned i = 0; i < items_; ++i) {
      memory.writeWord(itemBase_ + static_cast<Addr>(i) * kLineBytes, kInitStock);
    }
  }

  cpu::Program buildProgram(unsigned tid, unsigned nthreads,
                            tm::Backend& backend) override {
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, tid, nthreads);
    b.mark(TimeCat::NonTran);
    b.compute(static_cast<std::int64_t>(30 + 11 * tid));
    forEachTx(tid, nthreads, [&](const std::vector<RowOp>& ops) {
      backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
        for (const RowOp& op : ops) {
          if (op.read) {
            backend.emitRead(pb, op.addr, kRegAddr, kRegVal);
          } else {
            backend.emitUpdate(pb, op.addr, kRegAddr, kRegVal, op.delta);
          }
        }
      });
      b.compute(20);
    });
    b.barrier();
    b.halt();
    return b.build();
  }

  std::vector<std::string> verify(const WordReader& read,
                                  unsigned nthreads) const override {
    // Replay the generation streams to recover the expected conservation
    // totals, then check every ledger the two transaction types touch.
    std::uint64_t amountTotal = 0, newOrders = 0, orderLines = 0;
    for (unsigned tid = 0; tid < nthreads; ++tid) {
      forEachTx(tid, nthreads, [&](const std::vector<RowOp>& ops) {
        if (ops.front().read) {  // new-order starts with the customer read
          ++newOrders;
          orderLines += ops.size() - 2;  // minus customer read + next_o_id
        } else {
          amountTotal += static_cast<std::uint64_t>(ops.front().delta);
        }
      });
    }
    const std::uint64_t nCust = warehouses_ * districts_ * customers_;
    std::uint64_t whYtd = 0, distYtd = 0, nextOid = 0, custBal = 0, custYtd = 0,
                  stock = 0;
    for (unsigned w = 0; w < warehouses_; ++w) whYtd += read(whAddr(w));
    for (unsigned wd = 0; wd < warehouses_ * districts_; ++wd) {
      distYtd += read(distBase_ + static_cast<Addr>(wd) * kLineBytes);
      nextOid += read(distBase_ + static_cast<Addr>(wd) * kLineBytes + kWordBytes);
    }
    for (unsigned c = 0; c < nCust; ++c) {
      custBal += read(custBase_ + static_cast<Addr>(c) * kLineBytes);
      custYtd += read(custBase_ + static_cast<Addr>(c) * kLineBytes + kWordBytes);
    }
    for (unsigned i = 0; i < items_; ++i) {
      stock += read(itemBase_ + static_cast<Addr>(i) * kLineBytes);
    }
    std::vector<std::string> out;
    const auto check = [&out](const char* what, std::uint64_t got,
                              std::uint64_t want) {
      if (got == want) return;
      std::ostringstream oss;
      oss << "tpcc: " << what << " " << got << " != expected " << want;
      out.push_back(oss.str());
    };
    check("warehouse ytd", whYtd, amountTotal);
    check("district ytd", distYtd, amountTotal);
    check("customer ytd_payment", custYtd, amountTotal);
    check("customer balance", custBal, nCust * kInitBalance - amountTotal);
    check("district next_o_id", nextOid, newOrders);
    check("item stock", stock,
          static_cast<std::uint64_t>(items_) * kInitStock - orderLines);
    return out;
  }

  Addr footprintEnd() const override { return space_.used(); }

 private:
  struct RowOp {
    Addr addr = 0;
    bool read = false;
    std::int64_t delta = 0;
  };

  Addr whAddr(unsigned w) const { return whBase_ + static_cast<Addr>(w) * kLineBytes; }
  Addr distAddr(unsigned w, unsigned d) const {
    return distBase_ + static_cast<Addr>(w * districts_ + d) * kLineBytes;
  }
  Addr custAddr(unsigned w, unsigned d, unsigned c) const {
    return custBase_ +
           static_cast<Addr>((w * districts_ + d) * customers_ + c) * kLineBytes;
  }
  Addr itemAddr(unsigned i) const {
    return itemBase_ + static_cast<Addr>(i) * kLineBytes;
  }

  template <typename Fn>
  void forEachTx(unsigned tid, unsigned nthreads, const Fn& fn) const {
    sim::Rng rng(seed_ ^ (0xDB02ull * (tid + 1)));
    const unsigned lo = totalTxs_ * tid / nthreads;
    const unsigned hi = totalTxs_ * (tid + 1) / nthreads;
    std::vector<RowOp> ops;
    for (unsigned t = lo; t < hi; ++t) {
      ops.clear();
      const auto w = static_cast<unsigned>(rng.below(warehouses_));
      const auto d = static_cast<unsigned>(rng.below(districts_));
      const auto c = static_cast<unsigned>(custZipf_.sample(rng));
      if (rng.percent(43)) {
        // Payment: one amount flows through every ledger at once.
        const auto amount = static_cast<std::int64_t>(rng.range(1, 100));
        ops.push_back({whAddr(w), false, amount});
        ops.push_back({distAddr(w, d), false, amount});
        ops.push_back({custAddr(w, d, c), false, -amount});
        ops.push_back({custAddr(w, d, c) + kWordBytes, false, amount});
      } else {
        // New-order: read the customer, take an order id, draw down stock.
        ops.push_back({custAddr(w, d, c), true, 0});
        ops.push_back({distAddr(w, d) + kWordBytes, false, 1});
        const auto olCnt = static_cast<unsigned>(rng.range(3, 8));
        for (unsigned ol = 0; ol < olCnt; ++ol) {
          ops.push_back({itemAddr(static_cast<unsigned>(itemZipf_.sample(rng))),
                         false, -1});
        }
      }
      fn(ops);
    }
  }

  static constexpr std::uint64_t kInitBalance = 1'000'000;
  static constexpr std::uint64_t kInitStock = 100'000;
  unsigned warehouses_;
  unsigned districts_;
  unsigned customers_;
  unsigned items_;
  unsigned totalTxs_;
  std::uint64_t seed_;
  Zipfian custZipf_;
  Zipfian itemZipf_;
  AddressSpace space_;
  Addr whBase_ = 0, distBase_ = 0, custBase_ = 0, itemBase_ = 0;
};

// --------------------------------------------------------------------- sps

class SpsWorkload final : public Workload {
 public:
  SpsWorkload(bool partDisjoint, unsigned cells, unsigned totalTxs,
              std::uint64_t seed)
      : partDisjoint_(partDisjoint), cells_(cells), totalTxs_(totalTxs), seed_(seed) {
    if (cells_ < 2) throw std::invalid_argument("sps: need at least two cells");
  }

  std::string name() const override { return partDisjoint_ ? "sps-part" : "sps"; }

  void init(mem::MainMemory& memory, unsigned) override {
    base_ = space_.allocLines(cells_);
    for (unsigned i = 0; i < cells_; ++i) {
      memory.writeWord(cellAddr(i), i + 1);  // distinct non-zero values
    }
  }

  cpu::Program buildProgram(unsigned tid, unsigned nthreads,
                            tm::Backend& backend) override {
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, tid, nthreads);
    b.mark(TimeCat::NonTran);
    b.compute(static_cast<std::int64_t>(30 + 11 * tid));
    forEachTx(tid, nthreads, [&](unsigned a, unsigned c) {
      const Addr addrA = cellAddr(a);
      const Addr addrB = cellAddr(c);
      backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
        // Atomic swap: any torn interleaving breaks the value multiset.
        backend.emitRead(pb, addrA, kRegAddr, kRegVal);
        backend.emitRead(pb, addrB, kRegAddr2, kRegVal2);
        backend.emitWrite(pb, addrA, kRegAddr, kRegVal2);
        backend.emitWrite(pb, addrB, kRegAddr2, kRegVal);
      });
      b.compute(15);
    });
    b.barrier();
    b.halt();
    return b.build();
  }

  std::vector<std::string> verify(const WordReader& read, unsigned) const override {
    // Swaps permute the initial values 1..cells: conservation of the sum and
    // of the sum of squares pins the multiset (u64 wrap is consistent on
    // both sides).
    std::uint64_t sum = 0, sumSq = 0, wantSum = 0, wantSumSq = 0;
    for (unsigned i = 0; i < cells_; ++i) {
      const std::uint64_t v = read(cellAddr(i));
      sum += v;
      sumSq += v * v;
      const std::uint64_t w = i + 1;
      wantSum += w;
      wantSumSq += w * w;
    }
    if (sum == wantSum && sumSq == wantSumSq) return {};
    std::ostringstream oss;
    oss << name() << ": value multiset not conserved (sum " << sum << "/" << wantSum
        << ", sumsq " << sumSq << "/" << wantSumSq << ")";
    return {oss.str()};
  }

  Addr footprintEnd() const override { return space_.used(); }

 private:
  Addr cellAddr(unsigned i) const {
    return base_ + static_cast<Addr>(i) * kLineBytes;
  }

  template <typename Fn>
  void forEachTx(unsigned tid, unsigned nthreads, const Fn& fn) const {
    const unsigned sliceLo = partDisjoint_ ? cells_ * tid / nthreads : 0;
    const unsigned sliceHi = partDisjoint_ ? cells_ * (tid + 1) / nthreads : cells_;
    const unsigned span = sliceHi - sliceLo;
    if (span < 2) {
      throw std::invalid_argument(
          "sps-part: thread slice has fewer than 2 cells (" +
          std::to_string(cells_) + " cells / " + std::to_string(nthreads) +
          " threads); grow the array or drop threads");
    }
    sim::Rng rng(seed_ ^ (0xDB03ull * (tid + 1)));
    const unsigned lo = totalTxs_ * tid / nthreads;
    const unsigned hi = totalTxs_ * (tid + 1) / nthreads;
    for (unsigned t = lo; t < hi; ++t) {
      const auto a = sliceLo + static_cast<unsigned>(rng.below(span));
      auto c = sliceLo + static_cast<unsigned>(rng.below(span));
      if (c == a) c = sliceLo + (c - sliceLo + 1) % span;
      fn(a, c);
    }
  }

  bool partDisjoint_;
  unsigned cells_;
  unsigned totalTxs_;
  std::uint64_t seed_;
  AddressSpace space_;
  Addr base_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeYcsb(std::string name, unsigned rows, double theta,
                                   unsigned readPct, unsigned scanPct,
                                   unsigned opsPerTx, unsigned scanLen,
                                   unsigned totalTxs, std::uint64_t seed) {
  return std::make_unique<YcsbWorkload>(std::move(name), rows, theta, readPct,
                                        scanPct, opsPerTx, scanLen, totalTxs, seed);
}

std::unique_ptr<Workload> makeTpccLite(unsigned warehouses, unsigned districts,
                                       unsigned customers, unsigned items,
                                       unsigned totalTxs, std::uint64_t seed) {
  return std::make_unique<TpccLiteWorkload>(warehouses, districts, customers,
                                            items, totalTxs, seed);
}

std::unique_ptr<Workload> makeSps(bool partDisjoint, unsigned cells,
                                  unsigned totalTxs, std::uint64_t seed) {
  return std::make_unique<SpsWorkload>(partDisjoint, cells, totalTxs, seed);
}

const std::vector<std::string>& dbWorkloadNames() {
  static const std::vector<std::string> names = {
      "ycsb", "ycsb-lo", "ycsb-w", "ycsb-scan", "tpcc", "sps", "sps-part"};
  return names;
}

std::unique_ptr<Workload> makeDbWorkload(const std::string& name,
                                         std::uint64_t seed) {
  // Canonical parameterizations: small enough for smoke sweeps, skewed
  // enough that the theta/mix knobs visibly move the latency tail.
  if (name == "ycsb") return makeYcsb(name, 1024, 0.99, 95, 0, 4, 0, 384, seed);
  if (name == "ycsb-lo") return makeYcsb(name, 1024, 0.5, 95, 0, 4, 0, 384, seed);
  if (name == "ycsb-w") return makeYcsb(name, 1024, 0.99, 50, 0, 4, 0, 384, seed);
  if (name == "ycsb-scan") {
    return makeYcsb(name, 1024, 0.99, 95, 30, 4, 16, 256, seed);
  }
  if (name == "tpcc") return makeTpccLite(4, 2, 64, 128, 256, seed);
  if (name == "sps") return makeSps(false, 128, 512, seed);
  if (name == "sps-part") return makeSps(true, 128, 512, seed);
  throw std::invalid_argument("unknown database workload '" + name + "'");
}

bool isDbWorkloadName(const std::string& name) {
  const auto& names = dbWorkloadNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace lktm::wl
