// vacation analog (low- and high-contention variants).
//
// STAMP's vacation is a travel-reservation server over red-black-tree tables
// (cars / flights / rooms / customers). Transactions are medium-length tree
// traversals (a dozen-plus reads) ending in a few updates. The contention
// knob is the table size / query range: vacation+ narrows the range.
#include <array>

#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class VacationWorkload final : public StampWorkloadBase {
 public:
  VacationWorkload(bool high, std::uint64_t seed)
      : StampWorkloadBase(seed), high_(high), tableLines_(high ? 256 : 4096) {}

  std::string name() const override { return high_ ? "vacation+" : "vacation-"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    for (auto& t : tables_) t = space().allocLines(tableLines_);
  }

  unsigned totalTransactions(unsigned) const override { return 384; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 40;
    d.gapAfter = 120 + rng.below(70);
    // Query phase: traverse 2-3 tables, ~5 probes each (tree descent).
    const unsigned ntab = 2 + static_cast<unsigned>(rng.below(2));
    for (unsigned t = 0; t < ntab; ++t) {
      const Addr table = tables_[rng.below(tables_.size())];
      const unsigned probes = 4 + static_cast<unsigned>(rng.below(3));
      for (unsigned i = 0; i < probes; ++i) {
        d.accesses.push_back(
            {table + rng.below(tableLines_) * kLineBytes, Access::Kind::Read});
      }
    }
    // Reserve: 2-4 updates.
    const unsigned upd = 2 + static_cast<unsigned>(rng.below(3));
    for (unsigned i = 0; i < upd; ++i) {
      const Addr table = tables_[rng.below(tables_.size())];
      d.accesses.push_back(
          {table + rng.below(tableLines_) * kLineBytes, Access::Kind::Increment});
    }
    return d;
  }

 private:
  bool high_;
  std::uint64_t tableLines_;
  std::array<Addr, 3> tables_{};
};

}  // namespace

std::unique_ptr<Workload> makeVacation(bool highContention, std::uint64_t seed) {
  return std::make_unique<VacationWorkload>(highContention, seed);
}

}  // namespace lktm::wl
