// yada analog.
//
// STAMP's yada performs Delaunay mesh refinement: long transactions over a
// shared mesh that frequently allocate memory, which on real best-effort HTM
// raises exceptions (syscalls/page faults) inside the transaction. Neither
// baseline HTM nor LockillerTM survives exceptions (the paper deliberately
// excludes switching on faults), so yada is the one workload where the paper
// itself loses to coarse-grained locking.
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class YadaWorkload final : public StampWorkloadBase {
 public:
  explicit YadaWorkload(std::uint64_t seed) : StampWorkloadBase(seed) {}

  std::string name() const override { return "yada"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    mesh_ = space().allocLines(kMeshLines);
    workHeap_ = space().allocLines(kHeapLines);
  }

  unsigned totalTransactions(unsigned) const override { return 128; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 80;
    d.gapAfter = 110 + rng.below(80);
    d.syscall = rng.percent(85);  // cavity expansion hits the allocator
    const unsigned n = 60 + static_cast<unsigned>(rng.below(60));
    for (unsigned i = 0; i < n; ++i) {
      const bool write = rng.percent(30);
      // Refinement clusters around the active cavity: a quarter of the
      // accesses hit a small hot region, so concurrent transactions (and the
      // irrevocable fallback transaction) genuinely conflict.
      Addr a;
      if (rng.percent(25)) {
        a = mesh_ + rng.below(kHotLines) * kLineBytes;
      } else if (rng.percent(75)) {
        a = mesh_ + rng.below(kMeshLines) * kLineBytes;
      } else {
        a = workHeap_ + rng.below(kHeapLines) * kLineBytes;
      }
      d.accesses.push_back(
          {a, write ? Access::Kind::Increment : Access::Kind::Read});
    }
    return d;
  }

 private:
  static constexpr std::uint64_t kMeshLines = 4096;
  static constexpr std::uint64_t kHeapLines = 1024;
  static constexpr std::uint64_t kHotLines = 48;
  Addr mesh_ = 0;
  Addr workHeap_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeYada(std::uint64_t seed) {
  return std::make_unique<YadaWorkload>(seed);
}

}  // namespace lktm::wl
