// ssca2 analog.
//
// STAMP's ssca2 builds a graph's adjacency arrays: transactions are tiny
// (a couple of writes to cells picked nearly uniformly from large arrays),
// so both contention and overflow are negligible — HTM's best case.
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class Ssca2Workload final : public StampWorkloadBase {
 public:
  explicit Ssca2Workload(std::uint64_t seed) : StampWorkloadBase(seed) {}

  std::string name() const override { return "ssca2"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    adjacency_ = space().allocLines(kArrayLines);
    degrees_ = space().allocLines(kArrayLines);
  }

  unsigned totalTransactions(unsigned) const override { return 768; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 4;
    d.gapAfter = 80 + rng.below(60);
    d.accesses.push_back(
        {degrees_ + rng.below(kArrayLines) * kLineBytes, Access::Kind::Read});
    d.accesses.push_back(
        {adjacency_ + rng.below(kArrayLines) * kLineBytes, Access::Kind::Increment});
    d.accesses.push_back(
        {degrees_ + rng.below(kArrayLines) * kLineBytes, Access::Kind::Increment});
    return d;
  }

 private:
  static constexpr std::uint64_t kArrayLines = 8192;
  Addr adjacency_ = 0;
  Addr degrees_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeSsca2(std::uint64_t seed) {
  return std::make_unique<Ssca2Workload>(seed);
}

}  // namespace lktm::wl
