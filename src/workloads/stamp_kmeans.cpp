// kmeans analog (low- and high-contention variants).
//
// STAMP's kmeans assigns points to clusters outside transactions and updates
// the chosen centroid inside a short transaction. Contention is set by the
// cluster count: kmeans+ (high contention) uses few clusters, kmeans- many.
// Transactions are tiny; most time is non-transactional distance math.
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class KmeansWorkload final : public StampWorkloadBase {
 public:
  KmeansWorkload(bool high, std::uint64_t seed)
      : StampWorkloadBase(seed), high_(high), clusters_(high ? 8 : 48) {}

  std::string name() const override { return high_ ? "kmeans+" : "kmeans-"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    // Two lines per centroid: dimension accumulators + membership count.
    centroids_ = space().allocLines(clusters_ * 2);
  }

  unsigned totalTransactions(unsigned) const override { return 512; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 8;
    d.gapAfter = 220 + rng.below(140);  // distance computation happens outside
    const std::uint64_t c = rng.below(clusters_);
    const Addr dims = centroids_ + c * 2 * kLineBytes;
    const Addr count = dims + kLineBytes;
    // Accumulate 3 dimensions + the membership count.
    d.accesses.push_back({dims, Access::Kind::Increment});
    d.accesses.push_back({dims + 8, Access::Kind::Increment});
    d.accesses.push_back({dims + 16, Access::Kind::Increment});
    d.accesses.push_back({count, Access::Kind::Increment});
    return d;
  }

 private:
  bool high_;
  std::uint64_t clusters_;
  Addr centroids_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeKmeans(bool highContention, std::uint64_t seed) {
  return std::make_unique<KmeansWorkload>(highContention, seed);
}

}  // namespace lktm::wl
