// intruder analog.
//
// STAMP's intruder (network intrusion detection) pops packets from a shared
// queue and reassembles flows in shared maps. Transactions are short but the
// queue head is a single scorching-hot line, so contention is very high —
// the classic friendly-fire victim that the recovery mechanism targets.
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class IntruderWorkload final : public StampWorkloadBase {
 public:
  explicit IntruderWorkload(std::uint64_t seed) : StampWorkloadBase(seed) {}

  std::string name() const override { return "intruder"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    queueHead_ = space().allocLines(1);
    slots_ = space().allocLines(kSlots);
    flowMap_ = space().allocLines(kMapLines);
  }

  unsigned totalTransactions(unsigned) const override { return 512; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned txIndex) override {
    TxDesc d;
    d.computeInside = 10;
    d.gapAfter = 55 + rng.below(40);
    // Capture: inspect the queue head, then read the packet slot. Reading
    // the hot counter up front and updating it at the end is the classic
    // friendly-fire shape: concurrent transactions' read/write sets overlap
    // on one line for the whole transaction.
    d.accesses.push_back({queueHead_, Access::Kind::Read});
    d.accesses.push_back(
        {slots_ + (txIndex % kSlots) * kLineBytes, Access::Kind::Read});
    // Reassembly: 2-5 touches in the flow map, about half of them updates.
    const unsigned n = 2 + static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < n; ++i) {
      const Addr a = flowMap_ + rng.below(kMapLines) * kLineBytes;
      d.accesses.push_back(
          {a, rng.percent(50) ? Access::Kind::Increment : Access::Kind::Read});
    }
    // Hand off to the detection queue: the scorching-hot counter is written
    // last, so the serialization window is the tail of the transaction (but
    // requester-wins friendly fire still hammers it).
    d.accesses.push_back({queueHead_, Access::Kind::Increment});
    return d;
  }

 private:
  static constexpr std::uint64_t kSlots = 1024;
  static constexpr std::uint64_t kMapLines = 512;
  Addr queueHead_ = 0;
  Addr slots_ = 0;
  Addr flowMap_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeIntruder(std::uint64_t seed) {
  return std::make_unique<IntruderWorkload>(seed);
}

}  // namespace lktm::wl
