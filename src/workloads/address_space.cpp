#include "workloads/address_space.hpp"

#include <stdexcept>

namespace lktm::wl {

Addr AddressSpace::alloc(std::uint64_t bytes, std::uint64_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("alignment must be a power of two");
  }
  next_ = (next_ + align - 1) & ~(align - 1);
  const Addr out = next_;
  next_ += bytes == 0 ? align : bytes;
  return out;
}

}  // namespace lktm::wl
