// genome analog.
//
// STAMP's genome assembles DNA segments: phase 1 deduplicates segments via a
// hash set, phase 2 string-matches and links them. Transactions are of
// moderate length, read-mostly (probe the bucket chain, then insert), over a
// large hash table => low-to-moderate contention, negligible overflow.
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class GenomeWorkload final : public StampWorkloadBase {
 public:
  explicit GenomeWorkload(std::uint64_t seed) : StampWorkloadBase(seed) {}

  std::string name() const override { return "genome"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    buckets_ = space_allocLines(kBuckets);
    segments_ = space_allocLines(kSegments);
  }

  unsigned totalTransactions(unsigned) const override { return 320; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 30;
    d.gapAfter = 120 + rng.below(80);
    // Probe the bucket chain: 1-3 bucket lines read.
    const std::uint64_t b0 = rng.below(kBuckets);
    const unsigned chain = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned i = 0; i < chain; ++i) {
      d.accesses.push_back({lineAddr(buckets_, (b0 + i) % kBuckets), Access::Kind::Read});
    }
    // Read a handful of candidate segments (string comparison).
    const unsigned nseg = 3 + static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < nseg; ++i) {
      d.accesses.push_back({lineAddr(segments_, rng.below(kSegments)), Access::Kind::Read});
    }
    // Insert: append to the bucket (1 increment), occasionally also link a
    // segment record (second increment).
    d.accesses.push_back({lineAddr(buckets_, b0), Access::Kind::Increment});
    if (rng.percent(35)) {
      d.accesses.push_back({lineAddr(segments_, rng.below(kSegments)), Access::Kind::Increment});
    }
    return d;
  }

 private:
  static constexpr std::uint64_t kBuckets = 2048;
  static constexpr std::uint64_t kSegments = 4096;
  Addr buckets_ = 0;
  Addr segments_ = 0;

  Addr space_allocLines(std::uint64_t n) { return space().allocLines(n); }
  static Addr lineAddr(Addr base, std::uint64_t idx) { return base + idx * kLineBytes; }
};

}  // namespace

std::unique_ptr<Workload> makeGenome(std::uint64_t seed) {
  return std::make_unique<GenomeWorkload>(seed);
}

}  // namespace lktm::wl
