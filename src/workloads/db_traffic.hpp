// Database-shaped traffic: skewed, structured, latency-sensitive workload
// generators in the style of YCSB, DBx1000's TPC-C, and the Benchmark{SPS,
// PartDisjoint} harnesses. Every generator emits through the tm::Backend
// registry (static addresses only, so tl2/hybrid run them too) and carries a
// closed-form conservation invariant for verify(). Together with the
// per-core commit-latency histograms these are the substrate for the
// tail-latency (p50/p99/p999) view of LockillerTM's lower-bound claim.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace lktm::wl {

/// YCSB-style keyed row store: one cache line per row, keys drawn from a
/// seeded Zipfian(theta). `readPct` of ops read a row, the rest increment
/// it; `scanPct` of transactions instead scan `scanLen` consecutive rows.
std::unique_ptr<Workload> makeYcsb(std::string name, unsigned rows, double theta,
                                   unsigned readPct, unsigned scanPct,
                                   unsigned opsPerTx, unsigned scanLen,
                                   unsigned totalTxs, std::uint64_t seed = 31);

/// TPC-C-lite: new-order and payment transactions over warehouse / district /
/// customer / item-stock rows, customers and items drawn Zipfian-skewed.
std::unique_ptr<Workload> makeTpccLite(unsigned warehouses, unsigned districts,
                                       unsigned customers, unsigned items,
                                       unsigned totalTxs, std::uint64_t seed = 32);

/// SPS integer-swap stressor: each transaction atomically swaps two cells.
/// `partDisjoint` splits the array into per-thread slices (conflict-free by
/// construction); otherwise every thread swaps over the whole array
/// (all-conflicting). The value multiset is conserved iff swaps are atomic.
std::unique_ptr<Workload> makeSps(bool partDisjoint, unsigned cells,
                                  unsigned totalTxs, std::uint64_t seed = 33);

/// Registry names of the database-traffic family, in sweep order:
/// ycsb, ycsb-lo, ycsb-w, ycsb-scan, tpcc, sps, sps-part.
const std::vector<std::string>& dbWorkloadNames();

/// Factory by registry name with the canonical parameterization (the one the
/// sweeps and lktm-sim run); throws std::invalid_argument on unknown names.
std::unique_ptr<Workload> makeDbWorkload(const std::string& name,
                                         std::uint64_t seed);

/// True when `name` belongs to the database-traffic family.
bool isDbWorkloadName(const std::string& name);

}  // namespace lktm::wl
