// Deterministic Zipfian key sampler for the database-shaped workloads: key
// popularity follows a power law (key k drawn with probability proportional
// to 1/(k+1)^theta), the YCSB/TPC-C access pattern that uniform
// microbenchmarks never produce. The cumulative-weight table is precomputed
// once per workload (plain libm pow on doubles, one operation per term so
// no FMA contraction can change results across optimization levels), and
// sampling is a binary search driven entirely by the caller's seeded
// sim::Rng — the key sequence is a pure function of (n, theta, seed),
// independent of host threads, core-count builds, or wall clock.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace lktm::wl {

class Zipfian {
 public:
  /// `n` keys, skew `theta` >= 0 (0 = uniform, 0.99 = classic YCSB hot set).
  Zipfian(std::size_t n, double theta);

  std::size_t n() const { return cum_.size(); }
  double theta() const { return theta_; }

  /// Next key in [0, n); rank 0 is the most popular.
  std::size_t sample(sim::Rng& rng) const;

 private:
  std::vector<double> cum_;  ///< cumulative weights; cum_.back() is the total
  double theta_;
};

}  // namespace lktm::wl
