#include "workloads/zipfian.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lktm::wl {

Zipfian::Zipfian(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("Zipfian: need at least one key");
  if (!(theta >= 0.0)) throw std::invalid_argument("Zipfian: theta must be >= 0");
  cum_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = std::pow(static_cast<double>(k + 1), -theta);
    total += w;
    cum_.push_back(total);
  }
}

std::size_t Zipfian::sample(sim::Rng& rng) const {
  const double u = rng.uniform() * cum_.back();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cum_.begin());
  return idx < cum_.size() ? idx : cum_.size() - 1;
}

}  // namespace lktm::wl
