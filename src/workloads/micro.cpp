#include "workloads/micro.hpp"

#include <sstream>

namespace lktm::wl {
namespace {

constexpr unsigned kRegAddr = 1;
constexpr unsigned kRegVal = 2;
constexpr unsigned kRegPtr = 3;
constexpr unsigned kRegTmp = 5;

// ------------------------------------------------------------------ counter

class CounterWorkload final : public StampWorkloadBase {
 public:
  CounterWorkload(unsigned numCells, unsigned cellsPerTx, unsigned totalTxs,
                  std::uint64_t seed)
      : StampWorkloadBase(seed),
        numCells_(numCells),
        cellsPerTx_(cellsPerTx),
        totalTxs_(totalTxs) {}

  std::string name() const override {
    std::ostringstream oss;
    oss << "counter[" << numCells_ << "x" << cellsPerTx_ << "]";
    return oss.str();
  }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    cells_ = space().allocLines(numCells_);
  }

  unsigned totalTransactions(unsigned) const override { return totalTxs_; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 6;
    d.gapAfter = 30;
    for (unsigned i = 0; i < cellsPerTx_; ++i) {
      d.accesses.push_back(
          {cells_ + rng.below(numCells_) * kLineBytes, Access::Kind::Increment});
    }
    return d;
  }

 private:
  unsigned numCells_;
  unsigned cellsPerTx_;
  unsigned totalTxs_;
  Addr cells_ = 0;
};

// --------------------------------------------------------------------- bank

class BankWorkload final : public Workload {
 public:
  BankWorkload(unsigned accounts, unsigned totalTxs, std::uint64_t seed)
      : accounts_(accounts), totalTxs_(totalTxs), seed_(seed) {}

  std::string name() const override { return "bank"; }

  void init(mem::MainMemory& memory, unsigned) override {
    base_ = space_.allocLines(accounts_);
    for (unsigned a = 0; a < accounts_; ++a) {
      memory.writeWord(base_ + a * kLineBytes, kInitialBalance);
    }
  }

  cpu::Program buildProgram(unsigned tid, unsigned nthreads,
                            tm::Backend& backend) override {
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, tid, nthreads);
    b.mark(TimeCat::NonTran);
    b.compute(static_cast<std::int64_t>(30 + 11 * tid));
    sim::Rng rng(seed_ ^ (0xBA4Cull * (tid + 1)));
    const unsigned lo = totalTxs_ * tid / nthreads;
    const unsigned hi = totalTxs_ * (tid + 1) / nthreads;
    for (unsigned t = lo; t < hi; ++t) {
      const std::uint64_t from = rng.below(accounts_);
      std::uint64_t to = rng.below(accounts_);
      if (to == from) to = (to + 1) % accounts_;
      const Addr fromAddr = base_ + from * kLineBytes;
      const Addr toAddr = base_ + to * kLineBytes;
      backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
        // balance[from] -= 1; balance[to] += 1 (atomically)
        backend.emitUpdate(pb, fromAddr, kRegAddr, kRegVal, -1);
        pb.compute(8);
        backend.emitUpdate(pb, toAddr, kRegAddr, kRegVal, 1);
      });
      b.compute(25);
    }
    b.barrier();
    b.halt();
    return b.build();
  }

  std::vector<std::string> verify(const WordReader& read, unsigned) const override {
    std::uint64_t total = 0;
    for (unsigned a = 0; a < accounts_; ++a) total += read(base_ + a * kLineBytes);
    const std::uint64_t expected =
        static_cast<std::uint64_t>(accounts_) * kInitialBalance;
    if (total == expected) return {};
    std::ostringstream oss;
    oss << "bank: total balance " << total << " != " << expected
        << " (atomicity violated)";
    return {oss.str()};
  }

  Addr footprintEnd() const override { return space_.used(); }

 private:
  static constexpr std::uint64_t kInitialBalance = 1000;
  unsigned accounts_;
  unsigned totalTxs_;
  std::uint64_t seed_;
  AddressSpace space_;
  Addr base_ = 0;
};

// -------------------------------------------------------------- linked list

class LinkedListWorkload final : public Workload {
 public:
  LinkedListWorkload(unsigned nodes, unsigned hops, unsigned totalTxs,
                     std::uint64_t seed)
      : nodes_(nodes), hops_(hops), totalTxs_(totalTxs), seed_(seed) {}

  std::string name() const override { return "linkedlist"; }

  void init(mem::MainMemory& memory, unsigned) override {
    head_ = space_.allocLines(nodes_);
    // Circular singly-linked list: word0 = next pointer, word1 = payload.
    for (unsigned i = 0; i < nodes_; ++i) {
      const Addr node = head_ + i * kLineBytes;
      const Addr next = head_ + ((i + 1) % nodes_) * kLineBytes;
      memory.writeWord(node, next);
    }
  }

  cpu::Program buildProgram(unsigned tid, unsigned nthreads,
                            tm::Backend& backend) override {
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, tid, nthreads);
    b.mark(TimeCat::NonTran);
    b.compute(static_cast<std::int64_t>(20 + 9 * tid));
    sim::Rng rng(seed_ ^ (0x115Dull * (tid + 1)));
    const unsigned lo = totalTxs_ * tid / nthreads;
    const unsigned hi = totalTxs_ * (tid + 1) / nthreads;
    for (unsigned t = lo; t < hi; ++t) {
      const std::uint64_t start = rng.below(nodes_);
      const Addr startAddr = head_ + start * kLineBytes;
      backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
        pb.li(kRegPtr, static_cast<std::int64_t>(startAddr));
        // Pointer-chase `hops_` links: addresses are data-dependent, coming
        // from simulated memory through the coherence protocol. Backends
        // without dynamic-address support reject this workload up front.
        for (unsigned h = 0; h < hops_; ++h) {
          backend.emitReadDyn(pb, kRegPtr, kRegPtr, 0);
        }
        backend.emitReadDyn(pb, kRegTmp, kRegPtr, 8);
        pb.addi(kRegTmp, kRegTmp, 1);
        backend.emitWriteDyn(pb, kRegPtr, kRegTmp, 8);
      });
      b.compute(20);
    }
    b.barrier();
    b.halt();
    return b.build();
  }

  std::vector<std::string> verify(const WordReader& read, unsigned) const override {
    std::uint64_t total = 0;
    for (unsigned i = 0; i < nodes_; ++i) total += read(head_ + i * kLineBytes + 8);
    if (total == totalTxs_) return {};
    std::ostringstream oss;
    oss << "linkedlist: payload sum " << total << " != committed txs " << totalTxs_;
    return {oss.str()};
  }

  Addr footprintEnd() const override { return space_.used(); }

 private:
  unsigned nodes_;
  unsigned hops_;
  unsigned totalTxs_;
  std::uint64_t seed_;
  AddressSpace space_;
  Addr head_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeCounter(unsigned numCells, unsigned cellsPerTx,
                                      unsigned totalTxs, std::uint64_t seed) {
  return std::make_unique<CounterWorkload>(numCells, cellsPerTx, totalTxs, seed);
}

std::unique_ptr<Workload> makeBank(unsigned accounts, unsigned totalTxs,
                                   std::uint64_t seed) {
  return std::make_unique<BankWorkload>(accounts, totalTxs, seed);
}

std::unique_ptr<Workload> makeLinkedList(unsigned nodes, unsigned hops,
                                         unsigned totalTxs, std::uint64_t seed) {
  return std::make_unique<LinkedListWorkload>(nodes, hops, totalTxs, seed);
}

}  // namespace lktm::wl
