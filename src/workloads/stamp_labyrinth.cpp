// labyrinth analog.
//
// STAMP's labyrinth routes paths in a 3-D grid; each transaction copies a
// large region of the grid into a private buffer, computes a route and writes
// the path back. The defining property is an enormous read/write set: at a
// 32 KB L1 roughly half the transactions overflow some cache set; at 8 KB
// essentially all of them do; at 128 KB almost none (the Fig 13 sensitivity
// axis). Routing work happens *inside* the transaction, so aborts are costly.
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

class LabyrinthWorkload final : public StampWorkloadBase {
 public:
  explicit LabyrinthWorkload(std::uint64_t seed) : StampWorkloadBase(seed) {}

  std::string name() const override { return "labyrinth"; }

 protected:
  void setup(mem::MainMemory&, unsigned) override {
    grid_ = space().allocLines(kGridLines);
  }

  unsigned totalTransactions(unsigned) const override { return 48; }

  TxDesc genTx(sim::Rng& rng, unsigned, unsigned, unsigned) override {
    TxDesc d;
    d.computeInside = 800;  // route calculation over the grid copy
    d.gapAfter = 320;
    // Grid copy: a large sweep of distinct random lines.
    const unsigned reads = 140 + static_cast<unsigned>(rng.below(80));
    for (unsigned i = 0; i < reads; ++i) {
      d.accesses.push_back({grid_ + rng.below(kGridLines) * kLineBytes, Access::Kind::Read});
    }
    // Write the routed path back.
    const unsigned writes = 24 + static_cast<unsigned>(rng.below(16));
    for (unsigned i = 0; i < writes; ++i) {
      d.accesses.push_back(
          {grid_ + rng.below(kGridLines) * kLineBytes, Access::Kind::Increment});
    }
    return d;
  }

 private:
  static constexpr std::uint64_t kGridLines = 4096;
  Addr grid_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeLabyrinth(std::uint64_t seed) {
  return std::make_unique<LabyrinthWorkload>(seed);
}

}  // namespace lktm::wl
