// Trivial bump allocator over the simulated physical address space, used by
// workloads to lay out their shared data structures deterministically.
#pragma once

#include "sim/types.hpp"

namespace lktm::wl {

/// The fallback lock lives on its own, well-known line.
inline constexpr Addr kFallbackLockAddr = 0x1000;

class AddressSpace {
 public:
  explicit AddressSpace(Addr base = 0x10'0000) : next_(base) {}

  /// Allocate `bytes`, aligned to `align` (power of two, default: line).
  Addr alloc(std::uint64_t bytes, std::uint64_t align = kLineBytes);

  /// Allocate `n` full cache lines; returns the first line's byte address.
  Addr allocLines(std::uint64_t n) { return alloc(n * kLineBytes, kLineBytes); }

  Addr used() const { return next_; }

 private:
  Addr next_;
};

}  // namespace lktm::wl
