#include "workloads/workload.hpp"

#include <sstream>
#include <stdexcept>

namespace lktm::wl {

namespace {
// Workload body registers (backends reserve r21-r31 inside transactions).
constexpr unsigned kRegAddr = 1;
constexpr unsigned kRegVal = 2;
constexpr unsigned kRegPriv = 3;
constexpr unsigned kRegTid = 4;
}  // namespace

void StampWorkloadBase::init(mem::MainMemory& memory, unsigned nthreads) {
  if (initialized_) throw std::logic_error("workload already initialized");
  initialized_ = true;
  privCounters_.clear();
  for (unsigned t = 0; t < nthreads; ++t) {
    privCounters_.push_back(space_.allocLines(1));
  }
  setup(memory, nthreads);
}

cpu::Program StampWorkloadBase::buildProgram(unsigned tid, unsigned nthreads,
                                             tm::Backend& backend) {
  if (!initialized_) throw std::logic_error("init() must run before buildProgram()");
  cpu::ProgramBuilder b;
  backend.emitProgramStart(b, tid, nthreads);
  b.li(kRegTid, static_cast<std::int64_t>(tid + 1));
  b.mark(TimeCat::NonTran);
  b.compute(static_cast<std::int64_t>(startupCompute(tid)));

  const unsigned total = totalTransactions(nthreads);
  // Fixed total work, statically partitioned like STAMP's thread loops.
  const unsigned lo = total * tid / nthreads;
  const unsigned hi = total * (tid + 1) / nthreads;
  sim::Rng rng = makeRng(0x5157ull * (tid + 1));
  for (unsigned t = lo; t < hi; ++t) {
    const TxDesc d = genTx(rng, tid, nthreads, t);
    emitTx(b, d, tid, backend);
  }
  b.barrier();
  b.halt();
  return b.build();
}

void StampWorkloadBase::emitTx(cpu::ProgramBuilder& b, const TxDesc& d,
                               unsigned tid, tm::Backend& backend) {
  // Account the increments up front: the body lambda below must be pure
  // emission, because dual-path backends invoke it more than once.
  unsigned increments = 0;
  for (const Access& a : d.accesses) {
    if (a.kind == Access::Kind::Increment) {
      incrementCells_.insert(a.addr);
      ++increments;
      ++expectedTotal_;
    }
  }
  const std::size_t n = d.accesses.size();
  // Spread intra-tx computation between accesses.
  const Cycle perGap = n > 0 ? d.computeInside / n : d.computeInside;
  const std::size_t syscallAt = n > 0 ? n - 1 : 0;  // faults strike at the end:
                                                    // the whole attempt is wasted
  backend.emitTransaction(b, [&](cpu::ProgramBuilder& pb) {
    for (std::size_t i = 0; i < n; ++i) {
      const Access& a = d.accesses[i];
      switch (a.kind) {
        case Access::Kind::Read:
          backend.emitRead(pb, a.addr, kRegAddr, kRegVal);
          break;
        case Access::Kind::Write:
          backend.emitWrite(pb, a.addr, kRegAddr, kRegTid);
          break;
        case Access::Kind::Increment:
          backend.emitUpdate(pb, a.addr, kRegAddr, kRegVal, 1);
          break;
      }
      if (perGap > 0) pb.compute(static_cast<std::int64_t>(perGap));
      if (d.syscall && i == syscallAt) pb.syscall();
    }
    if (d.syscall && n == 0) pb.syscall();
    if (increments > 0) {
      // Private commit ledger, updated atomically with the shared increments.
      backend.emitUpdate(pb, privCounters_.at(tid), kRegPriv, kRegVal,
                         static_cast<std::int64_t>(increments));
    }
  });
  if (d.gapAfter > 0) b.compute(static_cast<std::int64_t>(d.gapAfter));
}

std::vector<std::string> StampWorkloadBase::verify(const WordReader& read,
                                                   unsigned nthreads) const {
  std::vector<std::string> out;
  std::uint64_t shared = 0;
  for (Addr a : incrementCells_) shared += read(a);
  std::uint64_t priv = 0;
  for (unsigned t = 0; t < nthreads && t < privCounters_.size(); ++t) {
    priv += read(privCounters_[t]);
  }
  if (shared != expectedTotal_) {
    std::ostringstream oss;
    oss << name() << ": shared increment sum " << shared << " != expected "
        << expectedTotal_ << " (atomicity violated or work lost)";
    out.push_back(oss.str());
  }
  if (priv != expectedTotal_) {
    std::ostringstream oss;
    oss << name() << ": private ledger sum " << priv << " != expected "
        << expectedTotal_;
    out.push_back(oss.str());
  }
  return out;
}

std::vector<std::string> stampNames() {
  return {"genome",  "intruder", "kmeans+",   "kmeans-",   "labyrinth",
          "ssca2",   "vacation+", "vacation-", "yada"};
}

std::unique_ptr<Workload> makeStamp(const std::string& name, std::uint64_t seed) {
  if (name == "genome") return makeGenome(seed);
  if (name == "intruder") return makeIntruder(seed);
  if (name == "kmeans+") return makeKmeans(true, seed);
  if (name == "kmeans-") return makeKmeans(false, seed);
  if (name == "labyrinth") return makeLabyrinth(seed);
  if (name == "ssca2") return makeSsca2(seed);
  if (name == "vacation+") return makeVacation(true, seed);
  if (name == "vacation-") return makeVacation(false, seed);
  if (name == "yada") return makeYada(seed);
  throw std::invalid_argument("unknown STAMP workload: " + name);
}

}  // namespace lktm::wl
