#include "workloads/workload.hpp"

#include <sstream>
#include <stdexcept>

namespace lktm::wl {

namespace {
// Workload body registers (runtime reserves r27-r31).
constexpr unsigned kRegAddr = 1;
constexpr unsigned kRegVal = 2;
constexpr unsigned kRegPriv = 3;
constexpr unsigned kRegTid = 4;
}  // namespace

void StampWorkloadBase::init(mem::MainMemory& memory, unsigned nthreads) {
  if (initialized_) throw std::logic_error("workload already initialized");
  initialized_ = true;
  privCounters_.clear();
  for (unsigned t = 0; t < nthreads; ++t) {
    privCounters_.push_back(space_.allocLines(1));
  }
  setup(memory, nthreads);
}

cpu::Program StampWorkloadBase::buildProgram(unsigned tid, unsigned nthreads,
                                             const rt::TmRuntime& runtime) {
  if (!initialized_) throw std::logic_error("init() must run before buildProgram()");
  cpu::ProgramBuilder b;
  runtime.emitPrologue(b, tid);
  b.li(kRegTid, static_cast<std::int64_t>(tid + 1));
  b.mark(TimeCat::NonTran);
  b.compute(static_cast<std::int64_t>(startupCompute(tid)));

  const unsigned total = totalTransactions(nthreads);
  // Fixed total work, statically partitioned like STAMP's thread loops.
  const unsigned lo = total * tid / nthreads;
  const unsigned hi = total * (tid + 1) / nthreads;
  sim::Rng rng = makeRng(0x5157ull * (tid + 1));
  for (unsigned t = lo; t < hi; ++t) {
    const TxDesc d = genTx(rng, tid, nthreads, t);
    emitTx(b, d, tid, runtime);
  }
  b.barrier();
  b.halt();
  return b.build();
}

void StampWorkloadBase::emitTx(cpu::ProgramBuilder& b, const TxDesc& d,
                               unsigned tid, const rt::TmRuntime& runtime) {
  runtime.emitEnter(b);
  unsigned increments = 0;
  const std::size_t n = d.accesses.size();
  // Spread intra-tx computation between accesses.
  const Cycle perGap = n > 0 ? d.computeInside / n : d.computeInside;
  const std::size_t syscallAt = n > 0 ? n - 1 : 0;  // faults strike at the end:
                                                    // the whole attempt is wasted
  for (std::size_t i = 0; i < n; ++i) {
    const Access& a = d.accesses[i];
    b.li(kRegAddr, static_cast<std::int64_t>(a.addr));
    switch (a.kind) {
      case Access::Kind::Read:
        b.load(kRegVal, kRegAddr);
        break;
      case Access::Kind::Write:
        b.store(kRegAddr, kRegTid);
        break;
      case Access::Kind::Increment:
        b.load(kRegVal, kRegAddr);
        b.addi(kRegVal, kRegVal, 1);
        b.store(kRegAddr, kRegVal);
        incrementCells_.insert(a.addr);
        ++increments;
        ++expectedTotal_;
        break;
    }
    if (perGap > 0) b.compute(static_cast<std::int64_t>(perGap));
    if (d.syscall && i == syscallAt) b.syscall();
  }
  if (d.syscall && n == 0) b.syscall();
  if (increments > 0) {
    // Private commit ledger, updated atomically with the shared increments.
    b.li(kRegPriv, static_cast<std::int64_t>(privCounters_.at(tid)));
    b.load(kRegVal, kRegPriv);
    b.addi(kRegVal, kRegVal, static_cast<std::int64_t>(increments));
    b.store(kRegPriv, kRegVal);
  }
  runtime.emitExit(b);
  if (d.gapAfter > 0) b.compute(static_cast<std::int64_t>(d.gapAfter));
}

std::vector<std::string> StampWorkloadBase::verify(const WordReader& read,
                                                   unsigned nthreads) const {
  std::vector<std::string> out;
  std::uint64_t shared = 0;
  for (Addr a : incrementCells_) shared += read(a);
  std::uint64_t priv = 0;
  for (unsigned t = 0; t < nthreads && t < privCounters_.size(); ++t) {
    priv += read(privCounters_[t]);
  }
  if (shared != expectedTotal_) {
    std::ostringstream oss;
    oss << name() << ": shared increment sum " << shared << " != expected "
        << expectedTotal_ << " (atomicity violated or work lost)";
    out.push_back(oss.str());
  }
  if (priv != expectedTotal_) {
    std::ostringstream oss;
    oss << name() << ": private ledger sum " << priv << " != expected "
        << expectedTotal_;
    out.push_back(oss.str());
  }
  return out;
}

std::vector<std::string> stampNames() {
  return {"genome",  "intruder", "kmeans+",   "kmeans-",   "labyrinth",
          "ssca2",   "vacation+", "vacation-", "yada"};
}

std::unique_ptr<Workload> makeStamp(const std::string& name, std::uint64_t seed) {
  if (name == "genome") return makeGenome(seed);
  if (name == "intruder") return makeIntruder(seed);
  if (name == "kmeans+") return makeKmeans(true, seed);
  if (name == "kmeans-") return makeKmeans(false, seed);
  if (name == "labyrinth") return makeLabyrinth(seed);
  if (name == "ssca2") return makeSsca2(seed);
  if (name == "vacation+") return makeVacation(true, seed);
  if (name == "vacation-") return makeVacation(false, seed);
  if (name == "yada") return makeYada(seed);
  throw std::invalid_argument("unknown STAMP workload: " + name);
}

}  // namespace lktm::wl
