// Micro-workloads for unit/integration testing and the examples: each has a
// crisp end-to-end invariant that any correct TM system must preserve.
#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace lktm::wl {

/// Every transaction increments `cellsPerTx` cells out of `numCells` shared
/// counters. numCells == 1 is the maximum-contention stress test.
std::unique_ptr<Workload> makeCounter(unsigned numCells, unsigned cellsPerTx,
                                      unsigned totalTxs, std::uint64_t seed = 21);

/// Money transfers between accounts; the total balance is conserved iff
/// transactions are atomic.
std::unique_ptr<Workload> makeBank(unsigned accounts, unsigned totalTxs,
                                   std::uint64_t seed = 22);

/// Pointer-chasing through a linked list initialized in simulated memory
/// (exercises data-dependent addressing through the coherence protocol),
/// incrementing the payload of the reached node.
std::unique_ptr<Workload> makeLinkedList(unsigned nodes, unsigned hops,
                                         unsigned totalTxs, std::uint64_t seed = 23);

}  // namespace lktm::wl
