// Event tracing for the instrumentation spine: compile-time gated
// (configure with -DLKTM_TRACE=ON) and runtime-filtered (category mask on the
// sink). Instrumentation sites call the inline trace*() helpers below; when
// tracing is compiled out (`kTraceEnabled == false`) the `if constexpr`
// bodies are discarded and the hot paths carry zero overhead — the release
// bench gate asserts full-sim times stay within noise of the untraced build.
//
// The sink collects Chrome trace_event records ('B'/'E' duration pairs per
// core lane, 'i' instants) and serializes them as Chrome JSON, so a run dump
// opens directly in Perfetto (https://ui.perfetto.dev). Timestamps are
// simulated cycles presented in the JSON's microsecond field: 1 cycle shows
// as 1us.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/context.hpp"
#include "sim/types.hpp"

namespace lktm::sim {

#if defined(LKTM_TRACE)
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

enum class TraceCat : std::uint8_t {
  Txn = 0,    ///< transaction begin/commit/abort (with cause)
  Reject,     ///< recovery-mechanism reject edges (send/receive)
  Wakeup,     ///< wait-for-wakeup edges
  LockMode,   ///< TL/STL HTMLock-mode enter/exit
  Directory,  ///< directory request lifecycle / state transitions
  kCount,
};

const char* toString(TraceCat c);

constexpr std::uint32_t traceBit(TraceCat c) {
  return std::uint32_t{1} << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kTraceAll = 0xffffffffu;

/// One optional argument on an event. Keys must be static-lifetime strings.
struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

struct TraceEvent {
  const char* name = "";  ///< static-lifetime string
  TraceCat cat = TraceCat::Txn;
  char ph = 'i';  ///< 'B' begin, 'E' end, 'i' instant
  Cycle ts = 0;
  std::int32_t tid = 0;  ///< core id; directory events use kDirectoryLane
  TraceArg a0, a1;
};

/// The lane ('tid') directory events render on, below the core lanes.
inline constexpr std::int32_t kDirectoryLane = 1000;

class TraceSink {
 public:
  explicit TraceSink(std::uint32_t mask = kTraceAll) : mask_(mask) {}

  bool wants(TraceCat c) const { return (mask_ & traceBit(c)) != 0; }
  void setMask(std::uint32_t mask) { mask_ = mask; }
  std::uint32_t mask() const { return mask_; }

  void record(const TraceEvent& e) { events_.push_back(e); }
  void clear() { events_.clear(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Serialize as Chrome trace_event JSON ({"traceEvents": [...]}) with lane
  /// name metadata, ready for Perfetto. Locale-independent.
  void writeChromeJson(std::ostream& os) const;
  std::string chromeJson() const;
  /// File convenience; returns false when `path` cannot be opened.
  bool writeChromeJson(const std::string& path) const;

  /// Validate that per-lane 'B'/'E' events pair up (LIFO, matching names).
  /// Used by the round-trip tests; `events` is the parsed or raw stream.
  static bool nestingWellFormed(const std::vector<TraceEvent>& events,
                                std::string* why = nullptr);

 private:
  std::uint32_t mask_;
  std::vector<TraceEvent> events_;
};

/// ---- instrumentation-site helpers (compile to nothing when gated out) ----

inline void traceEmit(SimContext& ctx, TraceCat cat, char ph, const char* name,
                      std::int32_t tid, TraceArg a0 = {}, TraceArg a1 = {}) {
  if constexpr (kTraceEnabled) {
    if (TraceSink* t = ctx.traceSink(); t != nullptr && t->wants(cat)) {
      t->record(TraceEvent{name, cat, ph, ctx.now(), tid, a0, a1});
    }
  } else {
    (void)ctx, (void)cat, (void)ph, (void)name, (void)tid, (void)a0, (void)a1;
  }
}

inline void traceBegin(SimContext& ctx, TraceCat cat, const char* name,
                       std::int32_t tid, TraceArg a0 = {}, TraceArg a1 = {}) {
  traceEmit(ctx, cat, 'B', name, tid, a0, a1);
}

inline void traceEnd(SimContext& ctx, TraceCat cat, const char* name,
                     std::int32_t tid, TraceArg a0 = {}, TraceArg a1 = {}) {
  traceEmit(ctx, cat, 'E', name, tid, a0, a1);
}

inline void traceInstant(SimContext& ctx, TraceCat cat, const char* name,
                         std::int32_t tid, TraceArg a0 = {}, TraceArg a1 = {}) {
  traceEmit(ctx, cat, 'i', name, tid, a0, a1);
}

}  // namespace lktm::sim
