// Per-run simulation context: one object that owns everything a single
// deterministic simulation needs — the engine (event queue + watchdog), a
// seeded RNG, and the typed object pools that back the message/packet hot
// paths. Components take a SimContext& instead of a bare Engine& so a sweep
// worker can build hundreds of systems against one context: beginRun()
// resets logical state (clock, seq numbers, diagnostics, RNG stream) while
// every pool and event-node slab keeps its memory, making steady-state
// simulation allocation-free. SimContexts share nothing; one per host thread.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/pool.hpp"
#include "sim/rng.hpp"
#include "stats/registry.hpp"

namespace lktm::sim {

class TraceSink;

namespace detail {

struct PoolHolderBase {
  virtual ~PoolHolderBase() = default;
  virtual std::size_t slabs() const = 0;
};

template <class T>
struct PoolHolder final : PoolHolderBase {
  Pool<T> pool;
  std::size_t slabs() const override { return pool.slabs(); }
};

std::size_t nextPoolTypeId();

template <class T>
std::size_t poolTypeId() {
  static const std::size_t id = nextPoolTypeId();
  return id;
}

}  // namespace detail

class SimContext {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ull;

  explicit SimContext(Cycle watchdogWindow = 4'000'000);

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  EventQueue& queue() { return engine_.queue(); }
  Cycle now() const { return engine_.now(); }
  Rng& rng() { return rng_; }

  /// Prepare for a fresh simulation run: reset the clock, event sequence
  /// numbers, watchdog state, diagnostics, and RNG stream. Pools and event
  /// slabs keep their memory so reuse across runs is allocation-free.
  void beginRun(Cycle watchdogWindow, std::uint64_t rngSeed = kDefaultSeed);

  /// The typed object pool for T, created on first use and owned by the
  /// context for its lifetime (e.g. pool<coh::Msg>() backs Network deliveries).
  template <class T>
  Pool<T>& pool() {
    const std::size_t id = detail::poolTypeId<T>();
    if (id >= pools_.size()) pools_.resize(id + 1);
    if (pools_[id] == nullptr) pools_[id] = std::make_unique<detail::PoolHolder<T>>();
    return static_cast<detail::PoolHolder<T>*>(pools_[id].get())->pool;
  }

  /// Total slabs across this context's pools (telemetry for tests/benches).
  std::size_t pooledSlabs() const;

  std::uint64_t runsStarted() const { return runsStarted_; }

  /// The run's stat registry. Components register their stats here at
  /// construction; beginRun() clears it so the next run's components
  /// re-register from scratch (no value leaks between sweep iterations).
  stats::StatRegistry& stats() { return stats_; }
  const stats::StatRegistry& stats() const { return stats_; }

  /// Optional event-trace sink (see sim/trace.hpp). Not owned; null unless a
  /// driver attached one. Instrumentation sites are additionally compiled out
  /// entirely unless the build sets LKTM_TRACE.
  void setTraceSink(TraceSink* sink) { traceSink_ = sink; }
  TraceSink* traceSink() const { return traceSink_; }

  /// Opaque verification tap slot. The coherence layer stores a coh::MsgTap*
  /// here (see coh::post) so the model checker can observe every message send
  /// and delivery; sim stays ignorant of the concrete type. Not owned, null
  /// in normal runs, and the hot path pays one pointer test when unset.
  void setVerifyTap(void* tap) { verifyTap_ = tap; }
  void* verifyTap() const { return verifyTap_; }

 private:
  Engine engine_;
  Rng rng_;
  std::vector<std::unique_ptr<detail::PoolHolderBase>> pools_;
  std::uint64_t runsStarted_ = 0;
  void* verifyTap_ = nullptr;
  stats::StatRegistry stats_;
  TraceSink* traceSink_ = nullptr;
};

}  // namespace lktm::sim
