// Slab-backed object pool. acquire()/recycle() are O(1) and allocation-free
// once the pool has grown to the workload's high-water mark; slabs are only
// released when the pool is destroyed, so a SimContext reused across sweep
// jobs reaches a zero-allocation steady state after the first run.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "sim/kernel_stats.hpp"

namespace lktm::sim {

template <class T>
class Pool {
 public:
  static constexpr std::size_t kSlabObjects = 64;

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Hand out a recycled object (contents unspecified: assign before use).
  T* acquire() {
    if (free_.empty()) grow();
    T* p = free_.back();
    free_.pop_back();
    return p;
  }

  /// Hand out an object holding `v`.
  T* acquire(T&& v) {
    T* p = acquire();
    *p = std::move(v);
    return p;
  }

  /// Return an object to the pool. The pointer must have come from acquire().
  void recycle(T* p) { free_.push_back(p); }

  std::size_t slabs() const { return slabs_.size(); }
  std::size_t capacity() const { return slabs_.size() * kSlabObjects; }
  std::size_t available() const { return free_.size(); }

 private:
  void grow() {
    slabs_.emplace_back(new T[kSlabObjects]);
    T* s = slabs_.back().get();
    free_.reserve(free_.size() + kSlabObjects);
    for (std::size_t i = kSlabObjects; i > 0; --i) free_.push_back(&s[i - 1]);
    kstats::poolSlabs.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<T*> free_;
  std::vector<std::unique_ptr<T[]>> slabs_;
};

}  // namespace lktm::sim
