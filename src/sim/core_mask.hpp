// Fixed 64-bit bitmask over core ids, replacing std::set<CoreId> in the
// directory sharer lists, wakeup tables, and checker. Iteration is ascending
// via countr_zero, which matches std::set's order exactly, so every drain /
// fan-out that used to walk a set stays bit-deterministic. The paper's
// largest configuration is 32 cores; 64 is a hard cap enforced by assert.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace lktm::sim {

class CoreMask {
 public:
  static constexpr unsigned kMaxCores = 64;

  constexpr CoreMask() = default;

  void insert(CoreId c) { bits_ |= bitFor(c); }
  void erase(CoreId c) { bits_ &= ~bitFor(c); }
  void clear() { bits_ = 0; }

  /// std::set-compatible membership test: 0 or 1.
  std::size_t count(CoreId c) const { return (bits_ >> checked(c)) & 1u; }
  bool contains(CoreId c) const { return count(c) != 0; }

  std::size_t size() const { return static_cast<std::size_t>(std::popcount(bits_)); }
  bool empty() const { return bits_ == 0; }

  std::uint64_t raw() const { return bits_; }

  /// Visit members in ascending core order (== std::set<CoreId> order).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::uint64_t rest = bits_; rest != 0; rest &= rest - 1) {
      fn(static_cast<CoreId>(std::countr_zero(rest)));
    }
  }

  /// Minimal forward iterator so range-for and set-style loops keep working.
  class iterator {
   public:
    explicit iterator(std::uint64_t rest) : rest_(rest) {}
    CoreId operator*() const { return static_cast<CoreId>(std::countr_zero(rest_)); }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    bool operator==(const iterator& o) const { return rest_ == o.rest_; }
    bool operator!=(const iterator& o) const { return rest_ != o.rest_; }

   private:
    std::uint64_t rest_;
  };
  iterator begin() const { return iterator(bits_); }
  iterator end() const { return iterator(0); }

  bool operator==(const CoreMask& o) const { return bits_ == o.bits_; }

 private:
  static unsigned checked(CoreId c) {
    assert(c >= 0 && static_cast<unsigned>(c) < kMaxCores);
    return static_cast<unsigned>(c);
  }
  static std::uint64_t bitFor(CoreId c) { return std::uint64_t{1} << checked(c); }

  std::uint64_t bits_ = 0;
};

}  // namespace lktm::sim
