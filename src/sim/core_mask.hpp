// Fixed-width bitmask over core ids, replacing std::set<CoreId> in the
// directory sharer lists, wakeup tables, and checker. Iteration is ascending
// via countr_zero, which matches std::set's order exactly, so every drain /
// fan-out that used to walk a set stays bit-deterministic.
//
// CoreMaskT<Words> holds Words * 64 cores; the project-wide CoreMask alias is
// selected by the compile-time LKTM_MAX_CORES cap (64/128/256/512, CMake
// cache variable of the same name). The default 64-core build uses the
// single-word CoreMaskT<1> specialization below, whose code is identical to
// the pre-template u64 mask — the multi-word generalization costs the small
// configurations nothing. The cap is a build-time ceiling, not a hard
// architectural limit: exceeding it is a configuration error reported by the
// checked() assert (and by cfg::MachineParams::validate() with a rebuild
// hint, before any assert can fire).
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdio>

#include "sim/types.hpp"

#ifndef LKTM_MAX_CORES
#define LKTM_MAX_CORES 64
#endif

namespace lktm::sim {

namespace detail {
/// Range check shared by every CoreMaskT instantiation. On violation it
/// reports the configured cap and the offending id (a bare assert cannot
/// format runtime values) before asserting.
inline unsigned checkedCoreId(CoreId c, unsigned maxCores) {
#ifndef NDEBUG
  if (c < 0 || static_cast<unsigned>(c) >= maxCores) {
    std::fprintf(stderr,
                 "CoreMask: core id %d out of range for this build's "
                 "kMaxCores=%u (rebuild with a larger -DLKTM_MAX_CORES)\n",
                 c, maxCores);
    assert(false && "core id exceeds the CoreMask build cap");
  }
#endif
  return static_cast<unsigned>(c);
}
}  // namespace detail

template <unsigned Words>
class CoreMaskT {
  static_assert(Words >= 1, "CoreMaskT needs at least one word");

 public:
  static constexpr unsigned kMaxCores = Words * 64;
  static constexpr unsigned kWords = Words;

  constexpr CoreMaskT() = default;

  void insert(CoreId c) {
    const unsigned i = checked(c);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void erase(CoreId c) {
    const unsigned i = checked(c);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  void clear() { words_.fill(0); }

  /// std::set-compatible membership test: 0 or 1.
  std::size_t count(CoreId c) const {
    const unsigned i = checked(c);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }
  bool contains(CoreId c) const { return count(c) != 0; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }
  bool empty() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Raw storage words, lowest cores first. Callers folding a mask into a
  /// hash or a fingerprint must consume every word — the old single-word
  /// raw() accessor is gone precisely so no caller can silently truncate a
  /// >64-core mask to its first word.
  const std::array<std::uint64_t, Words>& rawWords() const { return words_; }

  /// Visit members in ascending core order (== std::set<CoreId> order).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (unsigned w = 0; w < Words; ++w) {
      for (std::uint64_t rest = words_[w]; rest != 0; rest &= rest - 1) {
        fn(static_cast<CoreId>(w * 64 + static_cast<unsigned>(std::countr_zero(rest))));
      }
    }
  }

  /// Minimal forward iterator so range-for and set-style loops keep working.
  /// Skips empty words eagerly, so end() is simply {mask, Words, 0}.
  class iterator {
   public:
    iterator(const CoreMaskT* m, unsigned word, std::uint64_t rest)
        : mask_(m), word_(word), rest_(rest) {
      advancePastEmpty();
    }
    CoreId operator*() const {
      return static_cast<CoreId>(word_ * 64 +
                                 static_cast<unsigned>(std::countr_zero(rest_)));
    }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      advancePastEmpty();
      return *this;
    }
    bool operator==(const iterator& o) const {
      return word_ == o.word_ && rest_ == o.rest_;
    }
    bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    void advancePastEmpty() {
      while (rest_ == 0 && word_ < Words) {
        ++word_;
        rest_ = word_ < Words ? mask_->words_[word_] : 0;
      }
    }
    const CoreMaskT* mask_;
    unsigned word_;
    std::uint64_t rest_;
  };
  iterator begin() const { return iterator(this, 0, words_[0]); }
  iterator end() const { return iterator(this, Words, 0); }

  bool operator==(const CoreMaskT& o) const { return words_ == o.words_; }

 private:
  static unsigned checked(CoreId c) { return detail::checkedCoreId(c, kMaxCores); }

  std::array<std::uint64_t, Words> words_{};
};

/// Single-word fast path: the exact pre-template u64 mask. Every hot loop
/// (sharer fan-out, wakeup drains, checker walks) compiles to the same
/// branch-free countr_zero/popcount code as before the multi-word refactor.
template <>
class CoreMaskT<1> {
 public:
  static constexpr unsigned kMaxCores = 64;
  static constexpr unsigned kWords = 1;

  constexpr CoreMaskT() = default;

  void insert(CoreId c) { bits_ |= bitFor(c); }
  void erase(CoreId c) { bits_ &= ~bitFor(c); }
  void clear() { bits_ = 0; }

  /// std::set-compatible membership test: 0 or 1.
  std::size_t count(CoreId c) const { return (bits_ >> checked(c)) & 1u; }
  bool contains(CoreId c) const { return count(c) != 0; }

  std::size_t size() const { return static_cast<std::size_t>(std::popcount(bits_)); }
  bool empty() const { return bits_ == 0; }

  /// See the primary template: hash/fingerprint callers consume every word.
  std::array<std::uint64_t, 1> rawWords() const { return {bits_}; }

  /// Visit members in ascending core order (== std::set<CoreId> order).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::uint64_t rest = bits_; rest != 0; rest &= rest - 1) {
      fn(static_cast<CoreId>(std::countr_zero(rest)));
    }
  }

  /// Minimal forward iterator so range-for and set-style loops keep working.
  class iterator {
   public:
    explicit iterator(std::uint64_t rest) : rest_(rest) {}
    CoreId operator*() const { return static_cast<CoreId>(std::countr_zero(rest_)); }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    bool operator==(const iterator& o) const { return rest_ == o.rest_; }
    bool operator!=(const iterator& o) const { return rest_ != o.rest_; }

   private:
    std::uint64_t rest_;
  };
  iterator begin() const { return iterator(bits_); }
  iterator end() const { return iterator(0); }

  bool operator==(const CoreMaskT& o) const { return bits_ == o.bits_; }

 private:
  static unsigned checked(CoreId c) { return detail::checkedCoreId(c, kMaxCores); }
  static std::uint64_t bitFor(CoreId c) { return std::uint64_t{1} << checked(c); }

  std::uint64_t bits_ = 0;
};

static_assert(LKTM_MAX_CORES % 64 == 0 && LKTM_MAX_CORES >= 64 &&
                  LKTM_MAX_CORES <= 512,
              "LKTM_MAX_CORES must be one of 64, 128, 256, 512");

using CoreMask = CoreMaskT<LKTM_MAX_CORES / 64>;

}  // namespace lktm::sim
