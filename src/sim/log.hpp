// Lightweight leveled logging with per-component tags. Off by default so the
// simulator's hot path stays cheap; tests and debugging enable it.
#pragma once

#include <cstdio>
#include <string>

#include "sim/types.hpp"

namespace lktm::sim {

enum class LogLevel : int { Off = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

class Logger {
 public:
  static LogLevel level;

  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) <= static_cast<int>(level); }

  static void write(LogLevel lvl, Cycle cycle, const char* tag, const std::string& msg);
};

#define LKTM_LOG(lvl, cycle, tag, msg)                                   \
  do {                                                                   \
    if (::lktm::sim::Logger::enabled(lvl)) {                             \
      ::lktm::sim::Logger::write((lvl), (cycle), (tag), (msg));          \
    }                                                                    \
  } while (0)

}  // namespace lktm::sim
