// Kernel allocation telemetry: cheap global counters that let tests assert
// the steady-state invariant "no event/message allocations after warm-up"
// and let benchmarks report pool growth. Counters are monotonically
// increasing and relaxed-atomic so parallel sweep workers can share them.
#pragma once

#include <atomic>
#include <cstdint>

namespace lktm::sim::kstats {

/// Callables too large for SmallFn's inline buffer (heap fallback taken).
inline std::atomic<std::uint64_t> heapCallables{0};

/// Slabs allocated by sim::Pool instances (message/packet pools).
inline std::atomic<std::uint64_t> poolSlabs{0};

/// Event-node slabs allocated by EventQueue instances.
inline std::atomic<std::uint64_t> queueSlabs{0};

struct Snapshot {
  std::uint64_t heapCallables = 0;
  std::uint64_t poolSlabs = 0;
  std::uint64_t queueSlabs = 0;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

inline Snapshot snapshot() {
  return Snapshot{heapCallables.load(std::memory_order_relaxed),
                  poolSlabs.load(std::memory_order_relaxed),
                  queueSlabs.load(std::memory_order_relaxed)};
}

}  // namespace lktm::sim::kstats
