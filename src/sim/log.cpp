#include "sim/log.hpp"

#include <cstdlib>

namespace lktm::sim {

namespace {
LogLevel initialLevel() {
  if (const char* env = std::getenv("LKTM_LOG")) {
    return static_cast<LogLevel>(std::atoi(env));
  }
  return LogLevel::Off;
}
}  // namespace

LogLevel Logger::level = initialLevel();

void Logger::write(LogLevel lvl, Cycle cycle, const char* tag, const std::string& msg) {
  static const char* names[] = {"off", "warn", "info", "debug", "trace"};
  std::fprintf(stderr, "[%8llu] %-5s %-10s %s\n",
               static_cast<unsigned long long>(cycle),
               names[static_cast<int>(lvl)], tag, msg.c_str());
}

}  // namespace lktm::sim
