// Deterministic discrete-event queue: events ordered by (cycle, insertion seq).
//
// Implementation: a two-level calendar queue. A near ring of one-cycle
// buckets covers [now, now + kHorizon); each bucket is an intrusive FIFO of
// slab-pooled event nodes, so same-cycle events come out in insertion-seq
// order for free. Events beyond the horizon wait in an overflow min-heap
// keyed on (cycle, seq) and migrate into the ring as the clock advances.
// The total order is bit-identical to the classic binary-heap implementation
// (see tests/test_kernel.cpp's replay regression), but schedule/runOne are
// O(1) amortized and allocation-free once the node slabs have warmed up.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/types.hpp"

namespace lktm::sim {

/// Thrown when the engine watchdog detects lack of forward progress
/// (a protocol livelock/deadlock) or the cycle budget is exhausted.
class SimulationHang : public std::runtime_error {
 public:
  explicit SimulationHang(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a run exhausts an explicit budget — the simulated-cycle
/// ceiling or a host wall-clock deadline — rather than losing forward
/// progress. Subclasses SimulationHang so legacy catch sites keep working,
/// but the sweep orchestrator records it as `timeout`, not `hang`.
class SimulationTimeout : public SimulationHang {
 public:
  explicit SimulationTimeout(const std::string& what) : SimulationHang(what) {}
};

/// Nondeterminism seam for the protocol model checker (src/verify): when an
/// oracle is installed, every cycle whose bucket holds more than one ready
/// event becomes an explicit choice point — the oracle picks which same-cycle
/// event runs next instead of the fixed insertion-seq order. Picking index 0
/// at every choice point reproduces the default (cycle, seq) order bit-exactly
/// (see EventQueue.OracleIndexZeroMatchesDefaultOrder). Oracles can only
/// permute events *within* one cycle; the queue asserts that a chosen event's
/// timestamp equals the current cycle, so no oracle can reorder across cycles.
class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;

  /// Pick one of the `nReady` (>= 2) events runnable at cycle `now`, indexed
  /// in insertion-seq order. Out-of-range picks throw std::logic_error.
  virtual std::size_t pick(Cycle now, std::size_t nReady) = 0;
};

class EventQueue {
 public:
  using Action = sim::Action;

  /// Cycles covered by the near ring; longer delays go to the overflow heap.
  /// 4096 covers every protocol latency (memory = 100 cycles) with headroom
  /// for Compute/DelayReg bursts; only extreme backoffs overflow.
  static constexpr std::size_t kHorizon = 4096;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` to run `delay` cycles from now. delay==0 runs later in the
  /// current cycle (after currently pending same-cycle events).
  void schedule(Cycle delay, Action fn) { insert(now_ + delay, std::move(fn)); }

  /// Schedule at an absolute cycle. Throws std::logic_error when `when` is in
  /// the past — a protocol component computed a stale timestamp.
  void scheduleAt(Cycle when, Action fn);

  Cycle now() const { return now_; }
  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }

  /// Run the next event; returns false if the queue is empty.
  bool runOne();

  /// Run until the queue drains or `maxCycles` simulated cycles elapse.
  /// Throws SimulationHang if the budget is exceeded.
  void runUntilDrained(Cycle maxCycles);

  /// Drop all pending events and rewind the clock and sequence counter to
  /// zero. Node slabs are retained, so a reused queue does not re-allocate.
  void reset();

  /// Events executed since construction (not reset by reset()).
  std::uint64_t executed() const { return executed_; }
  /// Node slabs allocated since construction (telemetry).
  std::size_t slabsAllocated() const { return slabs_.size(); }

  /// Install (or remove, with nullptr) the same-cycle choice oracle. Not
  /// owned. With no oracle the queue runs the classic (cycle, seq) order.
  void setOracle(ScheduleOracle* oracle) { oracle_ = oracle; }
  ScheduleOracle* oracle() const { return oracle_; }

  /// Visit every pending event's (cycle, insertion seq), in no particular
  /// order. The verifier folds the relative delays into its state fingerprint.
  template <typename Fn>
  void forEachPending(Fn&& fn) const {
    for (const Bucket& b : ring_) {
      for (const Node* n = b.head; n != nullptr; n = n->next) fn(n->when, n->seq);
    }
    for (const Node* n : overflow_) fn(n->when, n->seq);
  }

 private:
  struct Node {
    Cycle when = 0;
    std::uint64_t seq = 0;
    Node* next = nullptr;
    Action fn;
  };
  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  static constexpr std::size_t kMask = kHorizon - 1;
  static constexpr std::size_t kOccWords = kHorizon / 64;
  static constexpr std::size_t kSlabNodes = 256;
  static_assert((kHorizon & kMask) == 0, "horizon must be a power of two");

  std::vector<Bucket> ring_;
  std::array<std::uint64_t, kOccWords> occ_{};
  std::vector<Node*> overflow_;  ///< min-heap on (when, seq)
  ScheduleOracle* oracle_ = nullptr;
  Node* free_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> slabs_;

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
  std::size_t ringSize_ = 0;
  std::uint64_t executed_ = 0;

  static bool laterInHeap(const Node* a, const Node* b) {
    return a->when != b->when ? a->when > b->when : a->seq > b->seq;
  }

  Node* allocNode();
  void recycleNode(Node* n);
  void insert(Cycle when, Action fn);
  void appendToRing(Node* n);
  void migrateOverflow();
  std::size_t earliestRingIndex() const;
  Node* popEarliestRing();
  Node* popDefault();
  Node* popWithOracle();
};

}  // namespace lktm::sim
