// Deterministic discrete-event queue: events ordered by (cycle, insertion seq).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/types.hpp"

namespace lktm::sim {

/// Thrown when the engine watchdog detects lack of forward progress
/// (a protocol livelock/deadlock) or the cycle budget is exhausted.
class SimulationHang : public std::runtime_error {
 public:
  explicit SimulationHang(const std::string& what) : std::runtime_error(what) {}
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `fn` to run `delay` cycles from now. delay==0 runs later in the
  /// current cycle (after currently pending same-cycle events).
  void schedule(Cycle delay, Action fn);

  /// Schedule at an absolute cycle (must be >= now()).
  void scheduleAt(Cycle when, Action fn);

  Cycle now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Run the next event; returns false if the queue is empty.
  bool runOne();

  /// Run until the queue drains or `maxCycles` simulated cycles elapse.
  /// Throws SimulationHang if the budget is exceeded.
  void runUntilDrained(Cycle maxCycles);

 private:
  struct Ev {
    Cycle when;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace lktm::sim
