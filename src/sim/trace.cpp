#include "sim/trace.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "stats/json.hpp"

namespace lktm::sim {

const char* toString(TraceCat c) {
  switch (c) {
    case TraceCat::Txn: return "txn";
    case TraceCat::Reject: return "reject";
    case TraceCat::Wakeup: return "wakeup";
    case TraceCat::LockMode: return "lock_mode";
    case TraceCat::Directory: return "directory";
    case TraceCat::kCount: break;
  }
  return "?";
}

void TraceSink::writeChromeJson(std::ostream& os) const {
  stats::json::Writer w(os, /*pretty=*/true);
  w.beginObject();
  w.field("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.beginArray();

  // Lane-name metadata so Perfetto labels each row.
  std::map<std::int32_t, bool> lanes;
  for (const TraceEvent& e : events_) lanes[e.tid] = true;
  for (const auto& [tid, unused] : lanes) {
    w.beginObject();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(tid));
    w.key("args");
    w.beginObject();
    w.field("name", tid == kDirectoryLane ? std::string("directory")
                                          : "core " + std::to_string(tid));
    w.endObject();
    w.endObject();
  }

  for (const TraceEvent& e : events_) {
    w.beginObject();
    w.field("name", e.name);
    w.field("cat", toString(e.cat));
    w.field("ph", std::string(1, e.ph));
    w.field("ts", static_cast<std::uint64_t>(e.ts));
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(e.tid));
    if (e.ph == 'i') w.field("s", "t");  // thread-scoped instant
    if (e.a0.key != nullptr || e.a1.key != nullptr) {
      w.key("args");
      w.beginObject();
      if (e.a0.key != nullptr) w.field(e.a0.key, e.a0.value);
      if (e.a1.key != nullptr) w.field(e.a1.key, e.a1.value);
      w.endObject();
    }
    w.endObject();
  }

  w.endArray();
  w.endObject();
}

std::string TraceSink::chromeJson() const {
  std::ostringstream os;
  writeChromeJson(os);
  return os.str();
}

bool TraceSink::writeChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  writeChromeJson(out);
  return static_cast<bool>(out);
}

bool TraceSink::nestingWellFormed(const std::vector<TraceEvent>& events,
                                  std::string* why) {
  // Per lane: 'B'/'E' must pair LIFO with matching names and monotone ts
  // within the lane, and every span opened must close.
  std::map<std::int32_t, std::vector<const TraceEvent*>> open;
  std::map<std::int32_t, Cycle> lastTs;
  for (const TraceEvent& e : events) {
    if (auto it = lastTs.find(e.tid); it != lastTs.end() && e.ts < it->second) {
      if (why != nullptr) {
        *why = "timestamps go backwards on lane " + std::to_string(e.tid);
      }
      return false;
    }
    lastTs[e.tid] = e.ts;
    if (e.ph == 'B') {
      open[e.tid].push_back(&e);
    } else if (e.ph == 'E') {
      auto& stack = open[e.tid];
      if (stack.empty()) {
        if (why != nullptr) {
          *why = std::string("'E' without matching 'B' for '") + e.name +
                 "' on lane " + std::to_string(e.tid);
        }
        return false;
      }
      if (std::string_view(stack.back()->name) != std::string_view(e.name)) {
        if (why != nullptr) {
          *why = std::string("mismatched span: open '") + stack.back()->name +
                 "', close '" + e.name + "' on lane " + std::to_string(e.tid);
        }
        return false;
      }
      stack.pop_back();
    } else if (e.ph != 'i') {
      if (why != nullptr) *why = std::string("unknown phase '") + e.ph + "'";
      return false;
    }
  }
  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      if (why != nullptr) {
        *why = std::string("unclosed span '") + stack.back()->name +
               "' on lane " + std::to_string(tid);
      }
      return false;
    }
  }
  return true;
}

}  // namespace lktm::sim
