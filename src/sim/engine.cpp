#include "sim/engine.hpp"

#include <sstream>

namespace lktm {

const char* toString(AbortCause c) {
  switch (c) {
    case AbortCause::None: return "none";
    case AbortCause::MemConflict: return "mc";
    case AbortCause::LockConflict: return "lock";
    case AbortCause::Mutex: return "mutex";
    case AbortCause::NonTran: return "non_tran";
    case AbortCause::Overflow: return "of";
    case AbortCause::Fault: return "fault";
    case AbortCause::Explicit: return "explicit";
  }
  return "?";
}

const char* toString(TimeCat c) {
  switch (c) {
    case TimeCat::Htm: return "htm";
    case TimeCat::Aborted: return "aborted";
    case TimeCat::Lock: return "lock";
    case TimeCat::SwitchLock: return "switchLock";
    case TimeCat::NonTran: return "non_tran";
    case TimeCat::WaitLock: return "waitlock";
    case TimeCat::Rollback: return "rollback";
    case TimeCat::kCount: break;
  }
  return "?";
}

const char* toString(TxMode m) {
  switch (m) {
    case TxMode::None: return "none";
    case TxMode::Htm: return "htm";
    case TxMode::TL: return "TL";
    case TxMode::STL: return "STL";
  }
  return "?";
}

}  // namespace lktm

namespace lktm::sim {

void Engine::run(Cycle maxCycles) {
  lastProgress_ = q_.now();
  const Cycle limit = q_.now() + maxCycles;
  std::uint64_t events = 0;
  auto diagnose = [this](std::ostringstream& oss) {
    for (const auto& d : diagnostics_) oss << "\n  " << d();
  };
  while (q_.runOne()) {
    if (q_.now() - lastProgress_ > watchdogWindow_ || q_.now() > limit) {
      std::ostringstream oss;
      if (q_.now() > limit) {
        oss << "simulation exceeded cycle budget (" << maxCycles << " cycles)";
        diagnose(oss);
        throw SimulationTimeout(oss.str());
      }
      oss << "watchdog: no forward progress for " << watchdogWindow_
          << " cycles (now=" << q_.now() << ")";
      diagnose(oss);
      throw SimulationHang(oss.str());
    }
    if ((++events & kWallCheckMask) == 0 && hasWallDeadline_ &&
        std::chrono::steady_clock::now() > wallDeadline_) {
      std::ostringstream oss;
      oss << "wall-clock budget exceeded (simulated cycle " << q_.now() << ")";
      diagnose(oss);
      throw SimulationTimeout(oss.str());
    }
  }
}

}  // namespace lktm::sim
