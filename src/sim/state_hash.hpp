// Order-sensitive 64-bit state hasher for the protocol model checker's
// canonical fingerprints. Components fold their state into it word by word
// via hashState() hooks; verify::StateCanon combines the per-component
// digests. The mix is splitmix64 applied per word, which avalanches every
// input bit across the accumulator — adjacent protocol states (one flipped
// MSHR flag, one different sharer) land in unrelated fingerprints.
#pragma once

#include <cstdint>

namespace lktm::sim {

class StateHasher {
 public:
  void put(std::uint64_t v) {
    h_ += (v + 0x9e3779b97f4a7c15ull);
    h_ = mix(h_);
    ++words_;
  }

  void putBool(bool b) { put(b ? 1 : 0); }

  /// Tagged section marker, so "empty table A then one entry in B" never
  /// collides with "one entry in A then empty B".
  void section(std::uint64_t tag) { put(0xa5a5a5a5'00000000ull | tag); }

  std::uint64_t digest() const { return mix(h_ ^ words_); }
  std::uint64_t words() const { return words_; }

 private:
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t h_ = 0x6c6b746d'76657269ull;  // "lktmveri"
  std::uint64_t words_ = 0;
};

}  // namespace lktm::sim
