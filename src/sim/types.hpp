// Fundamental simulator-wide types and constants.
#pragma once

#include <cstdint>
#include <string>

namespace lktm {

/// Simulated clock cycle (2 GHz nominal, see config::MachineParams).
using Cycle = std::uint64_t;

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Cache-line address (byte address >> kLineShift).
using LineAddr = std::uint64_t;

/// Core / tile identifier. -1 means "no core".
using CoreId = int;

inline constexpr CoreId kNoCore = -1;

inline constexpr unsigned kLineShift = 6;           ///< 64-byte cache lines.
inline constexpr unsigned kLineBytes = 1u << kLineShift;
inline constexpr unsigned kWordsPerLine = kLineBytes / sizeof(std::uint64_t);

constexpr LineAddr lineOf(Addr a) { return a >> kLineShift; }
constexpr Addr byteOf(LineAddr l) { return l << kLineShift; }
constexpr unsigned wordOf(Addr a) { return static_cast<unsigned>((a >> 3) & (kWordsPerLine - 1)); }

/// Why a transaction aborted. Mirrors the six categories of the paper's Fig 10.
enum class AbortCause : std::uint8_t {
  None = 0,
  MemConflict,   ///< "mc"      — conflict with another HTM transaction
  LockConflict,  ///< "lock"    — conflict with a TL/STL lock transaction
  Mutex,         ///< "mutex"   — fallback lock acquired (lock-word subscription hit)
  NonTran,       ///< "non_tran"— conflict with a non-transactional access
  Overflow,      ///< "of"      — capacity overflow of the L1 read/write set
  Fault,         ///< "fault"   — exception (syscall/page fault) inside the transaction
  Explicit,      ///< software _xabort (e.g. TME_LOCK_IS_ACQUIRED in Listing 1)
};

const char* toString(AbortCause c);

/// Execution-time categories of the paper's Figs 9/11.
enum class TimeCat : std::uint8_t {
  Htm = 0,     ///< cycles in speculative transactions that eventually commit
  Aborted,     ///< cycles wasted in transaction attempts that abort
  Lock,        ///< cycles in lock (TL) transactions on the fallback path
  SwitchLock,  ///< cycles in transactions that switched to HTMLock (STL) mode
  NonTran,     ///< non-transactional work, incl. barriers
  WaitLock,    ///< spinning on a lock (CGL lock or fallback lock / LLC TL grant)
  Rollback,    ///< abort handling: squash + register/cache restore
  kCount,
};

const char* toString(TimeCat c);

/// Transactional execution mode of a hardware thread.
enum class TxMode : std::uint8_t {
  None = 0,  ///< not inside any critical section
  Htm,       ///< speculative best-effort HTM transaction
  TL,        ///< lock transaction that entered HTMLock mode via hlbegin
  STL,       ///< HTM transaction that switched to HTMLock mode (switchingMode)
};

const char* toString(TxMode m);

constexpr bool isLockMode(TxMode m) { return m == TxMode::TL || m == TxMode::STL; }

}  // namespace lktm
