#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "sim/kernel_stats.hpp"

namespace lktm::sim {

EventQueue::EventQueue() : ring_(kHorizon) {}

EventQueue::~EventQueue() = default;

EventQueue::Node* EventQueue::allocNode() {
  if (free_ == nullptr) {
    slabs_.emplace_back(new Node[kSlabNodes]);
    Node* s = slabs_.back().get();
    for (std::size_t i = kSlabNodes; i > 0; --i) {
      s[i - 1].next = free_;
      free_ = &s[i - 1];
    }
    kstats::queueSlabs.fetch_add(1, std::memory_order_relaxed);
  }
  Node* n = free_;
  free_ = n->next;
  n->next = nullptr;
  return n;
}

void EventQueue::recycleNode(Node* n) {
  n->fn = nullptr;  // release captured state eagerly
  n->next = free_;
  free_ = n;
}

void EventQueue::scheduleAt(Cycle when, Action fn) {
  if (when < now_) {
    throw std::logic_error("EventQueue::scheduleAt: cycle " + std::to_string(when) +
                           " is in the past (now=" + std::to_string(now_) + ")");
  }
  insert(when, std::move(fn));
}

void EventQueue::insert(Cycle when, Action fn) {
  // Guards the `when - now_` horizon test below against u64 wrap: a delay
  // large enough to overflow `now_ + delay` would otherwise alias into a ring
  // bucket of an earlier "day" and run kHorizon cycles early.
  if (when < now_) {
    throw std::logic_error("EventQueue::insert: cycle " + std::to_string(when) +
                           " wrapped past now=" + std::to_string(now_));
  }
  Node* n = allocNode();
  n->when = when;
  n->seq = seq_++;
  n->fn = std::move(fn);
  ++size_;
  if (when - now_ < kHorizon) {
    appendToRing(n);
  } else {
    overflow_.push_back(n);
    std::push_heap(overflow_.begin(), overflow_.end(), laterInHeap);
  }
}

void EventQueue::appendToRing(Node* n) {
  // Day-rollover bounds check: the ring covers exactly [now_, now_+kHorizon),
  // so an event outside that window would collide with a bucket belonging to
  // a different cycle (same index mod kHorizon) and fire at the wrong time.
  assert(n->when >= now_ && n->when - now_ < kHorizon &&
         "calendar ring day rollover: event outside the horizon window");
  Bucket& b = ring_[n->when & kMask];
  if (b.head == nullptr) {
    b.head = b.tail = n;
    occ_[(n->when & kMask) / 64] |= 1ull << ((n->when & kMask) % 64);
  } else {
    b.tail->next = n;
    b.tail = n;
  }
  ++ringSize_;
}

void EventQueue::migrateOverflow() {
  while (!overflow_.empty() && overflow_.front()->when - now_ < kHorizon) {
    std::pop_heap(overflow_.begin(), overflow_.end(), laterInHeap);
    Node* n = overflow_.back();
    overflow_.pop_back();
    n->next = nullptr;
    appendToRing(n);
  }
}

std::size_t EventQueue::earliestRingIndex() const {
  // All ring events live in [now_, now_ + kHorizon), so scanning the
  // occupancy bitmap in wrapped index order starting at now_ visits buckets
  // in cycle order. Each bucket holds exactly one cycle's events, FIFO.
  const std::size_t start = now_ & kMask;
  std::size_t word = start / 64;
  std::uint64_t bits = occ_[word] & (~0ull << (start % 64));
  for (std::size_t scanned = 0; scanned <= kOccWords; ++scanned) {
    if (bits != 0) {
      return word * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
    }
    word = (word + 1) % kOccWords;
    bits = occ_[word];
  }
  return static_cast<std::size_t>(-1);
}

EventQueue::Node* EventQueue::popEarliestRing() {
  const std::size_t idx = earliestRingIndex();
  if (idx == static_cast<std::size_t>(-1)) return nullptr;
  Bucket& b = ring_[idx];
  Node* n = b.head;
  b.head = n->next;
  if (b.head == nullptr) {
    b.tail = nullptr;
    occ_[idx / 64] &= ~(1ull << (idx % 64));
  }
  --ringSize_;
  return n;
}

bool EventQueue::runOne() {
  if (size_ == 0) return false;
  Node* n = oracle_ != nullptr ? popWithOracle() : popDefault();
  --size_;
  ++executed_;
  Action fn = std::move(n->fn);
  recycleNode(n);
  fn();
  return true;
}

EventQueue::Node* EventQueue::popDefault() {
  Node* n;
  if (ringSize_ > 0) {
    n = popEarliestRing();
    assert(n != nullptr && "occupancy bitmap out of sync");
  } else {
    // Jump across the empty window to the earliest far-future event.
    std::pop_heap(overflow_.begin(), overflow_.end(), laterInHeap);
    n = overflow_.back();
    overflow_.pop_back();
    n->next = nullptr;
  }
  assert(n->when >= now_);
  now_ = n->when;
  // Pull newly-in-horizon events into the ring *before* running the action,
  // so same-cycle ring appends from the action keep their seq order behind
  // any older overflow events for the same bucket.
  migrateOverflow();
  return n;
}

EventQueue::Node* EventQueue::popWithOracle() {
  // Advance the clock to the earliest pending cycle and migrate overflow
  // *before* choosing, so the entire same-cycle event set sits in one ring
  // bucket in insertion-seq order. Index 0 is then exactly the node the
  // default path would pop, which is what keeps a pick-0 oracle bit-exact.
  Cycle when;
  if (ringSize_ > 0) {
    Bucket& b = ring_[earliestRingIndex()];
    when = b.head->when;
  } else {
    when = overflow_.front()->when;
  }
  assert(when >= now_);
  now_ = when;
  migrateOverflow();

  Bucket& b = ring_[when & kMask];
  std::size_t nReady = 0;
  for (const Node* p = b.head; p != nullptr; p = p->next) {
    assert(p->when == when && "ring bucket mixes cycles");
    ++nReady;
  }
  assert(nReady > 0 && "earliest bucket empty after migration");
  std::size_t idx = 0;
  if (nReady > 1) {
    idx = oracle_->pick(now_, nReady);
    if (idx >= nReady) {
      throw std::logic_error("ScheduleOracle::pick returned " + std::to_string(idx) +
                             " with only " + std::to_string(nReady) + " ready events");
    }
  }
  Node* prev = nullptr;
  Node* n = b.head;
  for (std::size_t i = 0; i < idx; ++i) {
    prev = n;
    n = n->next;
  }
  if (prev == nullptr) {
    b.head = n->next;
  } else {
    prev->next = n->next;
  }
  if (b.tail == n) b.tail = prev;
  if (b.head == nullptr) {
    const std::size_t bi = when & kMask;
    occ_[bi / 64] &= ~(1ull << (bi % 64));
  }
  n->next = nullptr;
  --ringSize_;
  // Oracle permutations are same-cycle only; a cross-cycle reorder would
  // break the (cycle, *) total order every component relies on.
  assert(n->when == now_ && "oracle reordered across cycles");
  return n;
}

void EventQueue::runUntilDrained(Cycle maxCycles) {
  const Cycle limit = now_ + maxCycles;
  while (runOne()) {
    if (now_ > limit) {
      throw SimulationHang("event queue exceeded cycle budget of " +
                           std::to_string(maxCycles) + " cycles");
    }
  }
}

void EventQueue::reset() {
  for (Bucket& b : ring_) {
    while (b.head != nullptr) {
      Node* n = b.head;
      b.head = n->next;
      recycleNode(n);
    }
    b.tail = nullptr;
  }
  occ_.fill(0);
  for (Node* n : overflow_) recycleNode(n);
  overflow_.clear();
  now_ = 0;
  seq_ = 0;
  size_ = 0;
  ringSize_ = 0;
}

}  // namespace lktm::sim
