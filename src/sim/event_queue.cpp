#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "sim/kernel_stats.hpp"

namespace lktm::sim {

EventQueue::EventQueue() : ring_(kHorizon) {}

EventQueue::~EventQueue() = default;

EventQueue::Node* EventQueue::allocNode() {
  if (free_ == nullptr) {
    slabs_.emplace_back(new Node[kSlabNodes]);
    Node* s = slabs_.back().get();
    for (std::size_t i = kSlabNodes; i > 0; --i) {
      s[i - 1].next = free_;
      free_ = &s[i - 1];
    }
    kstats::queueSlabs.fetch_add(1, std::memory_order_relaxed);
  }
  Node* n = free_;
  free_ = n->next;
  n->next = nullptr;
  return n;
}

void EventQueue::recycleNode(Node* n) {
  n->fn = nullptr;  // release captured state eagerly
  n->next = free_;
  free_ = n;
}

void EventQueue::scheduleAt(Cycle when, Action fn) {
  if (when < now_) {
    throw std::logic_error("EventQueue::scheduleAt: cycle " + std::to_string(when) +
                           " is in the past (now=" + std::to_string(now_) + ")");
  }
  insert(when, std::move(fn));
}

void EventQueue::insert(Cycle when, Action fn) {
  Node* n = allocNode();
  n->when = when;
  n->seq = seq_++;
  n->fn = std::move(fn);
  ++size_;
  if (when - now_ < kHorizon) {
    appendToRing(n);
  } else {
    overflow_.push_back(n);
    std::push_heap(overflow_.begin(), overflow_.end(), laterInHeap);
  }
}

void EventQueue::appendToRing(Node* n) {
  Bucket& b = ring_[n->when & kMask];
  if (b.head == nullptr) {
    b.head = b.tail = n;
    occ_[(n->when & kMask) / 64] |= 1ull << ((n->when & kMask) % 64);
  } else {
    b.tail->next = n;
    b.tail = n;
  }
  ++ringSize_;
}

void EventQueue::migrateOverflow() {
  while (!overflow_.empty() && overflow_.front()->when - now_ < kHorizon) {
    std::pop_heap(overflow_.begin(), overflow_.end(), laterInHeap);
    Node* n = overflow_.back();
    overflow_.pop_back();
    n->next = nullptr;
    appendToRing(n);
  }
}

EventQueue::Node* EventQueue::popEarliestRing() {
  // All ring events live in [now_, now_ + kHorizon), so scanning the
  // occupancy bitmap in wrapped index order starting at now_ visits buckets
  // in cycle order. Each bucket holds exactly one cycle's events, FIFO.
  const std::size_t start = now_ & kMask;
  std::size_t word = start / 64;
  std::uint64_t bits = occ_[word] & (~0ull << (start % 64));
  for (std::size_t scanned = 0; scanned <= kOccWords; ++scanned) {
    if (bits != 0) {
      const std::size_t idx = word * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
      Bucket& b = ring_[idx];
      Node* n = b.head;
      b.head = n->next;
      if (b.head == nullptr) {
        b.tail = nullptr;
        occ_[idx / 64] &= ~(1ull << (idx % 64));
      }
      --ringSize_;
      return n;
    }
    word = (word + 1) % kOccWords;
    bits = occ_[word];
  }
  return nullptr;
}

bool EventQueue::runOne() {
  if (size_ == 0) return false;
  Node* n;
  if (ringSize_ > 0) {
    n = popEarliestRing();
    assert(n != nullptr && "occupancy bitmap out of sync");
  } else {
    // Jump across the empty window to the earliest far-future event.
    std::pop_heap(overflow_.begin(), overflow_.end(), laterInHeap);
    n = overflow_.back();
    overflow_.pop_back();
    n->next = nullptr;
  }
  assert(n->when >= now_);
  now_ = n->when;
  // Pull newly-in-horizon events into the ring *before* running the action,
  // so same-cycle ring appends from the action keep their seq order behind
  // any older overflow events for the same bucket.
  migrateOverflow();
  --size_;
  ++executed_;
  Action fn = std::move(n->fn);
  recycleNode(n);
  fn();
  return true;
}

void EventQueue::runUntilDrained(Cycle maxCycles) {
  const Cycle limit = now_ + maxCycles;
  while (runOne()) {
    if (now_ > limit) {
      throw SimulationHang("event queue exceeded cycle budget of " +
                           std::to_string(maxCycles) + " cycles");
    }
  }
}

void EventQueue::reset() {
  for (Bucket& b : ring_) {
    while (b.head != nullptr) {
      Node* n = b.head;
      b.head = n->next;
      recycleNode(n);
    }
    b.tail = nullptr;
  }
  occ_.fill(0);
  for (Node* n : overflow_) recycleNode(n);
  overflow_.clear();
  now_ = 0;
  seq_ = 0;
  size_ = 0;
  ringSize_ = 0;
}

}  // namespace lktm::sim
