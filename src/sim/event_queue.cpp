#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace lktm::sim {

void EventQueue::schedule(Cycle delay, Action fn) {
  heap_.push(Ev{now_ + delay, seq_++, std::move(fn)});
}

void EventQueue::scheduleAt(Cycle when, Action fn) {
  assert(when >= now_ && "cannot schedule in the past");
  heap_.push(Ev{when, seq_++, std::move(fn)});
}

bool EventQueue::runOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent, so
  // copy the action (cheap: std::function) and pop.
  Ev ev = heap_.top();
  heap_.pop();
  assert(ev.when >= now_);
  now_ = ev.when;
  ev.fn();
  return true;
}

void EventQueue::runUntilDrained(Cycle maxCycles) {
  const Cycle limit = now_ + maxCycles;
  while (runOne()) {
    if (now_ > limit) {
      throw SimulationHang("event queue exceeded cycle budget of " +
                           std::to_string(maxCycles) + " cycles");
    }
  }
}

}  // namespace lktm::sim
