// Small-buffer-optimized move-only callable for the event hot path.
//
// Every event and every coherence-message delivery used to be a
// std::function whose captures routinely exceeded libstdc++'s 16-byte SBO
// and heap-allocated per event. SmallFn gives the kernel a callable with a
// 48-byte inline buffer sized so that every steady-state closure in the
// simulator (pooled-message delivery, mesh packet steps, CPU continuations)
// stays inline. Oversized callables still work via a heap fallback, but the
// fallback is counted in kstats::heapCallables so the pool-reuse regression
// test can prove the hot path never takes it.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/kernel_stats.hpp"

namespace lktm::sim {

inline constexpr std::size_t kSmallFnInlineBytes = 48;

template <class Sig, std::size_t Inline = kSmallFnInlineBytes>
class SmallFn;

template <class R, class... Args, std::size_t Inline>
class SmallFn<R(Args...), Inline> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn& operator=(F&& f) {
    reset();
    construct(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) noexcept { return f.ops_ == nullptr; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) noexcept { return f.ops_ != nullptr; }

  R operator()(Args... args) { return ops_->invoke(buf_, std::forward<Args>(args)...); }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;  // move-construct + destroy source
    void (*destroy)(void*) noexcept;
  };

  alignas(std::max_align_t) unsigned char buf_[Inline];
  const Ops* ops_ = nullptr;

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  template <class F>
  void construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Inline && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      static constexpr Ops ops{
          [](void* b, Args&&... a) -> R {
            return (*std::launder(reinterpret_cast<Fn*>(b)))(std::forward<Args>(a)...);
          },
          [](void* from, void* to) noexcept {
            Fn* src = std::launder(reinterpret_cast<Fn*>(from));
            ::new (to) Fn(std::move(*src));
            src->~Fn();
          },
          [](void* b) noexcept { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
      };
      ops_ = &ops;
    } else {
      kstats::heapCallables.fetch_add(1, std::memory_order_relaxed);
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr Ops ops{
          [](void* b, Args&&... a) -> R {
            return (**std::launder(reinterpret_cast<Fn**>(b)))(std::forward<Args>(a)...);
          },
          [](void* from, void* to) noexcept {
            ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
          },
          [](void* b) noexcept { delete *std::launder(reinterpret_cast<Fn**>(b)); },
      };
      ops_ = &ops;
    }
  }
};

/// The kernel's event payload: what EventQueue stores and Network delivers.
using Action = SmallFn<void()>;

}  // namespace lktm::sim
