#include "sim/rng.hpp"

namespace lktm::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::percent(unsigned pct) { return below(100) < pct; }

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::burst(std::uint64_t mean) {
  if (mean <= 1) return 1;
  std::uint64_t n = 1;
  // p = 1 - 1/mean continuation probability.
  while (below(mean) != 0) ++n;
  return n;
}

}  // namespace lktm::sim
