// Open-addressed hash table keyed by 64-bit line addresses, replacing the
// node-based std::map / std::unordered_map tables on the coherence datapath
// (directory line state, pending transactions, wait queues, MSHRs, wakeup
// tables, L1 writeback buffers and overflow shadow sets).
//
// Design:
//  * power-of-two capacity, linear probing, max load factor 3/4;
//  * backward-shift deletion (no tombstones), so probe chains stay canonical
//    and lookup cost never degrades with churn;
//  * the slot slab is kept across clear() — a table reused across simulation
//    runs (the SimContext reuse pattern of PR 1) reaches a zero-allocation
//    steady state after its first run;
//  * hash-order iteration is NOT deterministic across capacities, so every
//    caller with an ordering contract uses forEachOrdered(), which walks keys
//    in ascending order — exactly the old std::map order — via a reusable
//    scratch vector (no per-walk allocation in steady state).
//
// References returned by find()/operator[] are invalidated by any mutation
// (insert may rehash, erase back-shifts); callers hold them only within one
// message handler, which never interleaves a mutation of the same table.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lktm::sim {

namespace flat_detail {
inline std::uint64_t mixKey(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace flat_detail

template <class V>
class FlatLineTable {
 public:
  static constexpr std::size_t kMinCapacity = 16;

  FlatLineTable() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  bool contains(LineAddr key) const { return findSlot(key) != kNpos; }

  /// Pre-size the slab for at least `n` entries (respecting the max load
  /// factor), so bulk fills like the LLC preload pay one sizing instead of a
  /// geometric rehash cascade of 80-byte slots.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (n * 4 > want * 3) want *= 2;
    if (want > slots_.size()) rehashTo(want);
  }

  V* find(LineAddr key) {
    const std::size_t i = findSlot(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const V* find(LineAddr key) const {
    const std::size_t i = findSlot(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }

  /// Find-or-default-insert (std::map::operator[] semantics).
  V& operator[](LineAddr key) { return *tryEmplace(key).first; }

  /// Returns {value*, inserted}. The value of an existing key is untouched.
  std::pair<V*, bool> tryEmplace(LineAddr key) {
    reserveForOneMore();
    std::size_t i = homeOf(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = next(i);
    }
    slots_[i].used = true;
    slots_[i].key = key;
    // No value reset needed: unused slots always hold V{} (resize
    // value-initializes, erase/clear restore it eagerly).
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Backward-shift erase; returns true when the key was present.
  bool erase(LineAddr key) {
    std::size_t i = findSlot(key);
    if (i == kNpos) return false;
    const std::size_t mask = slots_.size() - 1;
    slots_[i].used = false;
    slots_[i].value = V{};  // drop payload eagerly (e.g. queued messages)
    --size_;
    std::size_t j = i;
    while (true) {
      j = next(j);
      if (!slots_[j].used) break;
      const std::size_t home = homeOf(slots_[j].key);
      // Slot j may move into the hole unless its home lies inside (i, j].
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = std::move(slots_[j]);
        slots_[j].used = false;
        slots_[j].value = V{};
        i = j;
      }
    }
    return true;
  }

  /// Forget every entry but keep the slot slab (steady-state reuse).
  void clear() {
    for (auto& s : slots_) {
      if (s.used) {
        s.used = false;
        s.value = V{};
      }
    }
    size_ = 0;
  }

  /// Deterministic ordered walk: visits entries in ascending key order, the
  /// exact iteration order of the std::map tables this type replaced. The
  /// callback must not insert into or erase from this table.
  template <typename Fn>
  void forEachOrdered(Fn&& fn) {
    orderedKeysInto(scratch_);
    for (LineAddr k : scratch_) {
      const std::size_t i = findSlot(k);
      assert(i != kNpos);
      fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void forEachOrdered(Fn&& fn) const {
    orderedKeysInto(scratch_);
    for (LineAddr k : scratch_) {
      const std::size_t i = findSlot(k);
      assert(i != kNpos);
      fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Hash-order walk (deterministic for a fixed op sequence, but NOT the
  /// ascending order of forEachOrdered). Only for callers whose result is
  /// order-independent — e.g. flag sweeps or any-match predicates on the hot
  /// path, where the ordered walk's sort would be pure overhead. The callback
  /// must not insert into or erase from this table.
  template <typename Fn>
  void forEachUnordered(Fn&& fn) {
    for (auto& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }
  template <typename Fn>
  void forEachUnordered(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    LineAddr key = 0;
    bool used = false;
    V value{};
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t homeOf(LineAddr key) const {
    return static_cast<std::size_t>(flat_detail::mixKey(key)) & (slots_.size() - 1);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (slots_.size() - 1); }

  std::size_t findSlot(LineAddr key) const {
    if (slots_.empty()) return kNpos;
    std::size_t i = homeOf(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return i;
      i = next(i);
    }
    return kNpos;
  }

  void reserveForOneMore() {
    if (slots_.empty()) {
      slots_.resize(kMinCapacity);
      return;
    }
    if ((size_ + 1) * 4 <= slots_.size() * 3) return;
    rehashTo(slots_.size() * 2);
  }

  void rehashTo(std::size_t newCapacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(newCapacity);
    size_ = 0;
    for (auto& s : old) {
      if (!s.used) continue;
      std::size_t i = homeOf(s.key);
      while (slots_[i].used) i = next(i);
      slots_[i].used = true;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      ++size_;
    }
  }

  void orderedKeysInto(std::vector<LineAddr>& keys) const {
    keys.clear();
    keys.reserve(size_);
    for (const auto& s : slots_) {
      if (s.used) keys.push_back(s.key);
    }
    std::sort(keys.begin(), keys.end());
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  mutable std::vector<LineAddr> scratch_;  ///< ordered-walk reuse buffer
};

/// Flat hash set of line addresses (same probing scheme), replacing the
/// std::set<LineAddr> shadow sets of the L1's overflow signatures.
class FlatLineSet {
 public:
  void insert(LineAddr key) { table_.tryEmplace(key); }
  bool erase(LineAddr key) { return table_.erase(key); }
  std::size_t count(LineAddr key) const { return table_.contains(key) ? 1 : 0; }
  bool contains(LineAddr key) const { return table_.contains(key); }
  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }

  /// Ascending-order walk (== std::set order).
  template <typename Fn>
  void forEachOrdered(Fn&& fn) const {
    table_.forEachOrdered([&](LineAddr k, const Empty&) { fn(k); });
  }

 private:
  struct Empty {};
  FlatLineTable<Empty> table_;
};

}  // namespace lktm::sim
