// The simulation engine: owns the event queue and a forward-progress
// watchdog. Protocol bugs that would livelock (e.g. a wakeup that never
// arrives) surface as SimulationHang with a diagnostic instead of a hung test.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace lktm::sim {

class Engine {
 public:
  explicit Engine(Cycle watchdogWindow = 4'000'000)
      : watchdogWindow_(watchdogWindow) {}

  EventQueue& queue() { return q_; }
  const EventQueue& queue() const { return q_; }
  Cycle now() const { return q_.now(); }

  /// Install the model checker's same-cycle choice oracle (nullptr restores
  /// the default bit-exact (cycle, seq) order). Not owned; the oracle must
  /// outlive every run it steers.
  void setScheduleOracle(ScheduleOracle* oracle) { q_.setOracle(oracle); }

  void schedule(Cycle delay, EventQueue::Action fn) { q_.schedule(delay, std::move(fn)); }

  /// Rewind to a pristine pre-run state (clock, watchdog, diagnostics) while
  /// keeping the event queue's node slabs. Used by SimContext::beginRun so a
  /// context reused across sweep jobs does not re-allocate kernel memory.
  void reset(Cycle watchdogWindow) {
    q_.reset();
    watchdogWindow_ = watchdogWindow;
    lastProgress_ = 0;
    diagnostics_.clear();
    hasWallDeadline_ = false;
  }

  /// Arm a host wall-clock deadline for the next run(): the event loop polls
  /// the steady clock every few thousand events and throws SimulationTimeout
  /// once the deadline passes. Cleared by reset(); the per-job budget knob of
  /// the sweep orchestrator.
  void setWallDeadline(std::chrono::steady_clock::time_point deadline) {
    wallDeadline_ = deadline;
    hasWallDeadline_ = true;
  }
  void clearWallDeadline() { hasWallDeadline_ = false; }

  /// Components call this whenever application-visible progress happens
  /// (an instruction retires, a transaction commits, ...).
  void noteProgress() { lastProgress_ = q_.now(); }

  /// Register a callback that contributes one line to the hang diagnostic.
  void addDiagnostic(std::function<std::string()> fn) {
    diagnostics_.push_back(std::move(fn));
  }

  /// Run until the event queue drains. Throws SimulationHang when no progress
  /// was observed for `watchdogWindow` cycles, and SimulationTimeout when
  /// `maxCycles` elapse or the armed wall-clock deadline passes.
  void run(Cycle maxCycles = 2'000'000'000);

 private:
  /// Events between wall-clock polls; power of two so the check is one mask.
  static constexpr std::uint64_t kWallCheckMask = 8191;

  EventQueue q_;
  Cycle watchdogWindow_;
  Cycle lastProgress_ = 0;
  std::vector<std::function<std::string()>> diagnostics_;
  std::chrono::steady_clock::time_point wallDeadline_{};
  bool hasWallDeadline_ = false;
};

}  // namespace lktm::sim
