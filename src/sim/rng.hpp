// Deterministic pseudo-random number generation for workload synthesis.
// SplitMix64 for seeding, xoshiro256** for the stream — fast, reproducible,
// and independent of the standard library's unspecified distributions.
#pragma once

#include <cstdint>

namespace lktm::sim {

/// SplitMix64 step — used to expand a single seed into stream state.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability pct/100.
  bool percent(unsigned pct);

  /// Uniform double in [0, 1).
  double uniform();

  /// Geometric-ish burst length >= 1 with mean roughly `mean`.
  std::uint64_t burst(std::uint64_t mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace lktm::sim
