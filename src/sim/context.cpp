#include "sim/context.hpp"

#include <atomic>

namespace lktm::sim {

namespace detail {

std::size_t nextPoolTypeId() {
  static std::atomic<std::size_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

SimContext::SimContext(Cycle watchdogWindow) : engine_(watchdogWindow) {}

void SimContext::beginRun(Cycle watchdogWindow, std::uint64_t rngSeed) {
  engine_.reset(watchdogWindow);
  rng_ = Rng(rngSeed);
  stats_.clear();  // next run's components re-register from scratch
  ++runsStarted_;
}

std::size_t SimContext::pooledSlabs() const {
  std::size_t n = 0;
  for (const auto& p : pools_) {
    if (p != nullptr) n += p->slabs();
  }
  return n;
}

}  // namespace lktm::sim
