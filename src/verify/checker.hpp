// Exhaustive schedule exploration for the protocol model checker.
//
// The search is stateless (CHESS-style): protocol state lives in live
// components and event closures, which cannot be snapshotted, so the checker
// re-runs each path from the initial state with a forced schedule prefix.
// The ScheduleOracle turns every set of same-cycle-ready events into an
// explicit branch; the DfsOracle replays the prefix, then takes choice 0 and
// records every branch's arity. Backtracking increments the deepest trail
// entry that still has an unexplored sibling and replays.
//
// Visited-state pruning: once the prefix is consumed (new territory), every
// executed event's canonical fingerprint is looked up; a hit prunes the path
// — the continuation from that state was already explored from its first
// visit. Pruning is what makes abort/retry loops terminate: a livelocking
// schedule revisits a canonical state and is cut there.
//
// Invariants are checked after every executed event (state-level), at every
// reject send (event-level, via the MsgRegistry hook), and when the queue
// drains (leaf-level quiescence: a drained queue with unfinished programs or
// un-quiesced protocol state is a deadlock, reported with diagnostics).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hpp"
#include "verify/harness.hpp"
#include "verify/invariants.hpp"

namespace lktm::verify {

/// Replays a forced choice prefix, then always picks 0, recording every
/// branch (chosen index + arity) it passes through.
class DfsOracle final : public sim::ScheduleOracle {
 public:
  struct Branch {
    std::size_t chosen = 0;
    std::size_t arity = 0;
  };

  explicit DfsOracle(std::vector<std::size_t> prefix) : prefix_(std::move(prefix)) {}

  std::size_t pick(Cycle now, std::size_t nReady) override;

  const std::vector<Branch>& trail() const { return trail_; }
  bool prefixConsumed() const { return trail_.size() >= prefix_.size(); }
  std::vector<std::size_t> choices() const;

 private:
  std::vector<std::size_t> prefix_;
  std::vector<Branch> trail_;
};

struct CheckOptions {
  std::uint64_t maxEventsPerPath = 100'000;  ///< depth bound per schedule
  std::uint64_t maxPaths = UINT64_MAX;
  std::uint64_t maxStates = UINT64_MAX;
  bool stopAtFirstViolation = true;
};

/// A reproducible violating schedule, dumpable to / parseable from a file in
/// the coherence_replay trace style (see write/readCounterexample).
struct Counterexample {
  std::string configName;
  coh::DirectoryController::InjectedBug bug =
      coh::DirectoryController::InjectedBug::None;
  std::string invariant;
  std::string detail;
  std::vector<std::size_t> schedule;  ///< forced choice at each branch
  std::string trace;                  ///< message deliveries, replay style
  /// Chrome trace_event JSON of the violating path (txn/lock-mode spans,
  /// reject/wakeup/directory instants). Empty unless built with LKTM_TRACE.
  std::string traceJson;
};

struct CheckResult {
  std::vector<Violation> violations;
  std::optional<Counterexample> cex;
  std::uint64_t pathsExplored = 0;
  std::uint64_t statesVisited = 0;
  std::uint64_t choicePoints = 0;  ///< fresh scheduling decisions taken
  std::uint64_t prunedPaths = 0;
  std::uint64_t eventsExecuted = 0;
  bool truncated = false;  ///< a limit was hit: absence is NOT proven
  std::string deadlockDiagnostic;

  bool clean() const { return violations.empty(); }
  bool exhaustive() const { return !truncated; }
};

class ModelChecker {
 public:
  explicit ModelChecker(ModelConfig cfg, CheckOptions opt = {});

  /// Explore every schedule (up to the configured bounds).
  CheckResult run();

  /// Re-run one forced schedule (e.g. a parsed counterexample) and report
  /// what it violates. No pruning, no backtracking.
  static CheckResult replaySchedule(const ModelConfig& cfg,
                                    const std::vector<std::size_t>& schedule,
                                    std::uint64_t maxEvents = 100'000);

 private:
  struct PathOutcome {
    std::vector<Violation> violations;
    std::string trace;
    std::string traceJson;  ///< Chrome JSON, filled on violation (LKTM_TRACE)
    bool pruned = false;
    bool truncated = false;
    std::uint64_t events = 0;
    std::uint64_t freshChoices = 0;
    std::string deadlockDiagnostic;
  };

  static PathOutcome runPath(const ModelConfig& cfg, DfsOracle& oracle,
                             // lktm-lint: allow(no-unordered-iteration) -- membership test only
                             std::unordered_set<std::uint64_t>* visited,
                             const CheckOptions& opt, std::uint64_t* statesVisited);

  ModelConfig cfg_;
  CheckOptions opt_;
};

const char* toString(coh::DirectoryController::InjectedBug bug);
std::optional<coh::DirectoryController::InjectedBug> bugFromString(const std::string& s);

/// Serialize / parse a counterexample. Format: a small header (config,
/// injected bug, violated invariant, schedule) followed by the delivery
/// trace between trace-begin/trace-end markers.
void writeCounterexample(const std::string& path, const Counterexample& cex);
std::optional<Counterexample> readCounterexample(const std::string& path);

}  // namespace lktm::verify
