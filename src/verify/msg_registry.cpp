#include "verify/msg_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace lktm::verify {

void MsgRegistry::onSend(const coh::Msg& msg, noc::NodeId src, noc::NodeId dst) {
  inFlight_.push_back(InFlight{
      .type = msg.type,
      .line = msg.line,
      .src = src,
      .dst = dst,
      .fingerprint = coh::msgFingerprint(msg),
  });
  if (sendHook_) sendHook_(msg, src, dst);
}

void MsgRegistry::onDeliver(const coh::Msg& msg, noc::NodeId src, noc::NodeId dst) {
  const std::uint64_t fp = coh::msgFingerprint(msg);
  auto it = std::find_if(inFlight_.begin(), inFlight_.end(), [&](const InFlight& m) {
    return m.fingerprint == fp && m.src == src && m.dst == dst;
  });
  if (it == inFlight_.end()) {
    throw std::logic_error("MsgRegistry: delivery of a message never seen at send");
  }
  inFlight_.erase(it);
  if (deliverHook_) deliverHook_(msg, src, dst);
}

bool MsgRegistry::anyInFlightTo(noc::NodeId dst, coh::MsgType type, LineAddr line) const {
  for (const InFlight& m : inFlight_) {
    if (m.dst == dst && m.type == type && m.line == line) return true;
  }
  return false;
}

void MsgRegistry::hashState(sim::StateHasher& h) const {
  std::vector<std::uint64_t> words;
  words.reserve(inFlight_.size());
  for (const InFlight& m : inFlight_) {
    sim::StateHasher one;
    one.put(m.fingerprint);
    one.put(static_cast<std::uint64_t>(m.src));
    one.put(static_cast<std::uint64_t>(m.dst));
    words.push_back(one.digest());
  }
  std::sort(words.begin(), words.end());
  h.section(0x40);
  for (std::uint64_t w : words) h.put(w);
}

}  // namespace lktm::verify
