// Canonical protocol-state fingerprints for visited-state pruning.
//
// The model checker re-explores from the initial state along forced schedule
// prefixes (stateless search), so "have I seen this state before" is answered
// by hashing the full protocol state into one 64-bit fingerprint:
//
//  * every component's behaviour-relevant fields via its hashState() hook
//    (L1 cache arrays, MSHRs, writeback buffers, wakeup tables, overflow
//    sets, directory entries, pending transactions, wait queues, HTMLock
//    arbiter and signatures);
//  * the pending event multiset as (when - now) deltas, never absolute
//    cycles, so the same protocol situation reached at different times
//    canonicalizes identically;
//  * the exact in-flight message set from the MsgRegistry.
//
// Deliberately excluded: absolute cycles, event sequence numbers, MSHR retry
// counters, LRU stamps (ranked instead) and statistics — all grow
// monotonically and would make every state unique.
//
// Approximation note (see DESIGN.md §10): event closures themselves are not
// hashable, so two states whose pending events carry the same delays but
// different continuations could collide if the component state and in-flight
// messages also matched. A collision prunes a reachable state (missed
// coverage); it can never fabricate a violation.
#pragma once

#include <cstdint>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "sim/engine.hpp"
#include "sim/state_hash.hpp"
#include "verify/msg_registry.hpp"

namespace lktm::verify {

struct SystemRefs {
  const sim::Engine* engine = nullptr;
  const coh::DirectoryController* dir = nullptr;
  std::vector<const coh::L1Controller*> l1s;
  const MsgRegistry* msgs = nullptr;  ///< optional
};

/// Fold the whole system into `h` (callers may append extra words — e.g. the
/// driving program's own state — before taking the digest).
void hashSystem(sim::StateHasher& h, const SystemRefs& s);

/// Convenience: hashSystem + digest.
std::uint64_t canonicalFingerprint(const SystemRefs& s);

}  // namespace lktm::verify
