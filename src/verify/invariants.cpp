#include "verify/invariants.hpp"

#include <sstream>

#include "core/priority.hpp"

namespace lktm::verify {

namespace {

std::string describeLine(LineAddr line) {
  std::ostringstream oss;
  oss << "line " << line;
  return oss.str();
}

void checkSwmr(const SystemView& v, std::vector<Violation>& out) {
  for (LineAddr line : v.lines) {
    unsigned validCopies = 0;
    unsigned exclusiveCopies = 0;
    std::ostringstream holders;
    for (std::size_t c = 0; c < v.l1s.size(); ++c) {
      const mem::CacheEntry* e = v.l1s[c]->cache().find(line);
      if (e == nullptr) continue;
      ++validCopies;
      const bool excl = e->state == mem::MesiState::E || e->state == mem::MesiState::M;
      if (excl) ++exclusiveCopies;
      holders << " c" << c << "=" << mem::toString(e->state);
    }
    if (exclusiveCopies > 1 || (exclusiveCopies == 1 && validCopies > 1)) {
      out.push_back(Violation{
          "swmr", describeLine(line) + " has an exclusive copy coexisting with " +
                      std::to_string(validCopies - 1) + " other(s):" + holders.str()});
    }
  }
}

void checkLockHighest(const SystemView& v, std::vector<Violation>& out) {
  CoreId locker = kNoCore;
  for (std::size_t c = 0; c < v.l1s.size(); ++c) {
    if (!isLockMode(v.l1s[c]->mode())) continue;
    if (locker != kNoCore) {
      out.push_back(Violation{"lock-highest",
                              "cores c" + std::to_string(locker) + " and c" +
                                  std::to_string(c) + " are both in lock mode"});
    }
    locker = static_cast<CoreId>(c);
  }
  const core::SwitchArbiter& arb = v.dir->arbiter();
  if (arb.active() && locker != kNoCore && locker != arb.holder()) {
    out.push_back(Violation{"lock-highest",
                            "c" + std::to_string(locker) + " is in lock mode but the LLC "
                                "arbiter granted c" + std::to_string(arb.holder())});
  }
  // Every bank's lock mirror trails the arbiter through the set/clear
  // broadcasts, but must never name a *different* holder: mirrors are only
  // set after the arbiter granted and cleared before it releases.
  for (unsigned b = 0; b < v.dir->numBanks(); ++b) {
    const CoreId mirrored = v.dir->htmlockUnit(b).lockHolder();
    if (mirrored == kNoCore) continue;
    if (!arb.active() || mirrored != arb.holder()) {
      out.push_back(Violation{
          "lock-highest",
          "bank " + std::to_string(b) + " mirrors lock holder c" +
              std::to_string(mirrored) + " but the arbiter " +
              (arb.active() ? "granted c" + std::to_string(arb.holder())
                            : std::string("is idle"))});
    }
  }
  if (locker != kNoCore) {
    // The lock transaction outranks everything, so its requests are never
    // held: every MSHR entry it owns must still be in Issued state.
    v.l1s[static_cast<std::size_t>(locker)]->mshrFile().forEach(
        [&](const mem::MshrEntry& m) {
          if (m.state != mem::MshrState::Issued && !m.squashed) {
            out.push_back(Violation{
                "lock-highest", "lock transaction on c" + std::to_string(locker) +
                                    " has a held request (" + mem::toString(m.state) +
                                    ") for " + describeLine(m.line)});
          }
        });
  }
}

void checkNoLostWakeup(const SystemView& v, std::vector<Violation>& out) {
  for (std::size_t c = 0; c < v.l1s.size(); ++c) {
    const CoreId core = static_cast<CoreId>(c);
    v.l1s[c]->mshrFile().forEach([&](const mem::MshrEntry& m) {
      if (m.state != mem::MshrState::WaitingWakeup || m.squashed || m.earlyWakeup) return;
      bool covered = false;
      for (const coh::L1Controller* peer : v.l1s) {
        peer->wakeupTable().forEach([&](LineAddr line, CoreId waiter) {
          if (line == m.line && waiter == core) covered = true;
        });
      }
      for (unsigned b = 0; b < v.dir->numBanks(); ++b) {
        v.dir->htmlockUnit(b).waiters().forEach([&](LineAddr line, CoreId waiter) {
          if (line == m.line && waiter == core) covered = true;
        });
      }
      if (!covered && v.msgs != nullptr) {
        // L1 node ids equal core ids.
        covered = v.msgs->anyInFlightTo(core, coh::MsgType::Wakeup, m.line);
      }
      if (!covered) {
        out.push_back(Violation{
            "no-lost-wakeup", "c" + std::to_string(core) + " waits for a wakeup on " +
                                  describeLine(m.line) +
                                  " but no responder has it recorded and none is in flight"});
      }
    });
  }
}

}  // namespace

std::vector<Violation> InvariantPack::checkState(const SystemView& v) {
  std::vector<Violation> out;
  checkSwmr(v, out);
  checkLockHighest(v, out);
  checkNoLostWakeup(v, out);
  return out;
}

std::optional<Violation> InvariantPack::checkReject(const SystemView& v,
                                                    const coh::Msg& msg,
                                                    CoreId responder) {
  if (msg.type == coh::MsgType::InvReject || msg.type == coh::MsgType::FwdReject) {
    const core::ReqSide* req = v.dir->pendingReq(msg.line);
    if (req == nullptr) {
      return Violation{"reject-priority",
                       "c" + std::to_string(responder) + " rejected on " +
                           describeLine(msg.line) + " with no transaction pending there"};
    }
    const coh::L1Controller* l1 = v.l1s.at(static_cast<std::size_t>(responder));
    const core::PrioKey local{isLockMode(l1->mode()), v.priorityOf(responder), responder};
    const core::PrioKey remote{req->lockMode, req->priority, req->core};
    if (!local.beats(remote)) {
      return Violation{"reject-priority",
                       "c" + std::to_string(responder) + " (key " + local.str() +
                           ") rejected c" + std::to_string(req->core) + " (key " +
                           remote.str() + ") on " + describeLine(msg.line) +
                           " without outranking it"};
    }
    return std::nullopt;
  }
  if (msg.type == coh::MsgType::RejectResp &&
      msg.rejectHint == AbortCause::LockConflict) {
    // A lock-attributed reject from the directory needs lock evidence: an
    // active arbiter slot, overflow signatures, or a core in lock mode.
    bool lockerExists = v.dir->arbiter().active() || v.dir->anyOverflow();
    for (const coh::L1Controller* l1 : v.l1s) lockerExists |= isLockMode(l1->mode());
    if (!lockerExists) {
      return Violation{"reject-priority",
                       "directory sent a LockConflict reject on " + describeLine(msg.line) +
                           " with no lock transaction anywhere"};
    }
  }
  return std::nullopt;
}

std::vector<Violation> InvariantPack::checkQuiescent(const SystemView& v) {
  std::vector<Violation> out;
  if (v.dir->busyLines() != 0) {
    out.push_back(Violation{"quiescence", std::to_string(v.dir->busyLines()) +
                                              " directory line(s) still busy at drain"});
  }
  if (v.dir->interBankAcksPending() != 0) {
    out.push_back(Violation{"quiescence",
                            std::to_string(v.dir->interBankAcksPending()) +
                                " inter-bank lock/clear ack(s) outstanding at drain"});
  }
  for (std::size_t c = 0; c < v.l1s.size(); ++c) {
    const coh::L1Controller* l1 = v.l1s[c];
    const std::string who = "c" + std::to_string(c);
    if (!l1->mshrFile().empty()) {
      std::ostringstream oss;
      oss << who << " has " << l1->mshrFile().size() << " MSHR entr(ies) at drain:";
      l1->mshrFile().forEach([&](const mem::MshrEntry& m) {
        oss << " [" << describeLine(m.line) << " " << mem::toString(m.state) << "]";
      });
      out.push_back(Violation{"quiescence", oss.str()});
    }
    if (l1->writebackBufferSize() != 0) {
      out.push_back(Violation{"quiescence", who + " has writebacks awaiting PutAck at drain"});
    }
    if (l1->busy()) {
      out.push_back(Violation{"quiescence", who + " has an incomplete CPU op at drain"});
    }
    if (l1->applyingHla()) {
      out.push_back(Violation{"quiescence", who + " is stuck applyingHLA at drain"});
    }
    if (l1->mode() != TxMode::None) {
      out.push_back(Violation{"quiescence", who + " still has an open transaction at drain"});
    }
  }
  if (v.msgs != nullptr && !v.msgs->empty()) {
    out.push_back(Violation{"quiescence", std::to_string(v.msgs->size()) +
                                              " message(s) in flight with a drained queue"});
  }
  return out;
}

}  // namespace lktm::verify
