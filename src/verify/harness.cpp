#include "verify/harness.hpp"

#include <sstream>
#include <stdexcept>

namespace lktm::verify {

const char* toString(OpKind k) {
  switch (k) {
    case OpKind::TxBegin: return "TxBegin";
    case OpKind::Load: return "Load";
    case OpKind::Store: return "Store";
    case OpKind::Commit: return "Commit";
    case OpKind::HlBegin: return "HlBegin";
    case OpKind::HlEnd: return "HlEnd";
  }
  return "?";
}

namespace {

/// Shrunk latencies: every cycle of separation multiplies the interleaving
/// tree, so the model configs compress all fixed delays to 1-3 cycles. The
/// protocol logic is latency-independent; only the state-space size changes.
coh::ProtocolParams modelProtocolParams() {
  coh::ProtocolParams p;
  p.l1HitLatency = 1;
  p.llcLatency = 1;
  p.memLatency = 2;
  p.commitLatency = 1;
  p.hlLatency = 1;
  p.retryDelay = 3;
  p.nonTxRetryDelay = 3;
  p.mshrCapacity = 4;
  return p;
}

core::TmPolicy recoveryWaitWakeup() {
  core::TmPolicy p;
  p.conflict = core::ConflictPolicy::Recovery;
  p.rejectAction = core::RejectAction::WaitWakeup;
  p.priority = core::PriorityKind::InstsBased;
  return p;
}

std::vector<ProgOp> incrementTxn(LineAddr line, std::uint64_t value) {
  return {{OpKind::TxBegin}, {OpKind::Load, line}, {OpKind::Store, line, value},
          {OpKind::Commit}};
}

}  // namespace

std::optional<ModelConfig> namedConfig(const std::string& name) {
  ModelConfig cfg;
  cfg.name = name;
  cfg.protocol = modelProtocolParams();
  cfg.policy = recoveryWaitWakeup();
  if (name == "2c1l") {
    // Two cores increment the same line: the canonical conflict kernel.
    cfg.cores = 2;
    cfg.lines = {1};
    cfg.programs = {incrementTxn(1, 10), incrementTxn(1, 20)};
    return cfg;
  }
  if (name == "2c2l-cycle") {
    // Opposite-order writes over two lines under WaitWakeup: the schedule
    // shape that would deadlock if rejects could form a cycle. The priority
    // total order (III-A) must break it on every interleaving.
    cfg.cores = 2;
    cfg.lines = {1, 2};
    cfg.programs = {
        {{OpKind::TxBegin}, {OpKind::Store, 1, 11}, {OpKind::Store, 2, 12},
         {OpKind::Commit}},
        {{OpKind::TxBegin}, {OpKind::Store, 2, 21}, {OpKind::Store, 1, 22},
         {OpKind::Commit}},
    };
    return cfg;
  }
  if (name == "3c1l") {
    // Three cores on one line: wakeups race responder aborts and commits.
    cfg.cores = 3;
    cfg.lines = {1};
    cfg.programs = {incrementTxn(1, 10), incrementTxn(1, 20), incrementTxn(1, 30)};
    return cfg;
  }
  if (name == "3c2l") {
    // Mixed readers and writers over two lines (the CI soak config).
    cfg.cores = 3;
    cfg.lines = {1, 2};
    cfg.programs = {
        {{OpKind::TxBegin}, {OpKind::Store, 1, 11}, {OpKind::Store, 2, 12},
         {OpKind::Commit}},
        {{OpKind::TxBegin}, {OpKind::Store, 2, 21}, {OpKind::Store, 1, 22},
         {OpKind::Commit}},
        {{OpKind::TxBegin}, {OpKind::Load, 1}, {OpKind::Commit}},
    };
    return cfg;
  }
  if (name == "2c2l-cycle-2b") {
    // The deadlock-shaped two-line config with the directory split into two
    // banks: line 1 homes on bank 1, line 2 on bank 0, so the conflicting
    // stores (and their rejects/wakeups) cross bank boundaries.
    ModelConfig base = *namedConfig("2c2l-cycle");
    base.name = name;
    base.banks = 2;
    return base;
  }
  if (name == "3c2l-2b") {
    // The mixed reader/writer soak config over two banks. This is the 2-bank
    // bug-detection canary: a reader shares line 1 while writers upgrade it,
    // so --inject-bug swmr-skip-inv is caught here even with the lines homed
    // on different banks.
    ModelConfig base = *namedConfig("3c2l");
    base.name = name;
    base.banks = 2;
    return base;
  }
  if (name == "tl-overflow-2b") {
    // TL overflow over a banked directory: the spill set {1, 3} homes on
    // bank 1 while line 2 homes on bank 0, so a single TL acquisition must
    // set signatures via BankLockSet broadcast and the release must clear
    // and drain waiters in both banks (BankLockClear/BankClearAck) without
    // losing a wakeup.
    ModelConfig base = *namedConfig("tl-overflow");
    base.name = name;
    base.banks = 2;
    return base;
  }
  if (name == "stm-commit") {
    // The coherence footprint of a TL2-STM commit (runtime/backends/tl2.cpp)
    // racing a concurrent reader, scripted as plain non-transactional
    // accesses: line 1 is the global version clock, line 2 an orec, line 3
    // the guarded data word. The writer locks the orec (odd word), publishes
    // the data, bumps the clock, and releases the orec at the new version;
    // the reader samples clock / orec / data / orec — the TL2 validation
    // read sequence. Every interleaving must keep SWMR and coherence over
    // the mixed write-write/write-read sharing this traffic produces.
    cfg.cores = 2;
    cfg.lines = {1, 2, 3};
    cfg.programs = {
        {{OpKind::Store, 2, 3}, {OpKind::Store, 3, 42}, {OpKind::Store, 1, 1},
         {OpKind::Store, 2, 4}},
        {{OpKind::Load, 1}, {OpKind::Load, 2}, {OpKind::Load, 3},
         {OpKind::Load, 2}},
    };
    return cfg;
  }
  if (name == "tl-overflow") {
    // A TL lock transaction overflows a 2-line direct-mapped L1 (lines 1 and
    // 3 collide) while a peer HTM transaction keeps poking the spilled line:
    // exercises SigAdd spills, LLC signature rejects, and the wakeup drain at
    // hlEnd — including "overflow while a reject is pending".
    cfg.cores = 2;
    cfg.l1 = mem::CacheGeometry{2 * kLineBytes, 1};
    cfg.policy.htmLock = true;
    cfg.policy.subscribeLock = false;
    cfg.lines = {1, 2, 3};
    cfg.programs = {
        {{OpKind::HlBegin}, {OpKind::Store, 1, 11}, {OpKind::Store, 2, 12},
         {OpKind::Store, 3, 13}, {OpKind::HlEnd}},
        {{OpKind::TxBegin}, {OpKind::Store, 1, 21}, {OpKind::Commit}},
    };
    return cfg;
  }
  return std::nullopt;
}

std::vector<std::string> configNames() {
  return {"2c1l",          "2c2l-cycle", "3c1l",   "3c2l",
          "tl-overflow",   "stm-commit", "2c2l-cycle-2b", "3c2l-2b",
          "tl-overflow-2b"};
}

ModelHarness::ModelHarness(const ModelConfig& cfg)
    : cfg_(cfg),
      net_(ctx_, /*latency=*/1),
      dir_(ctx_, net_, memory_, cfg.protocol, cfg.cores, cfg.banks),
      drivers_(cfg.cores) {
  if (cfg_.programs.size() != cfg_.cores) {
    throw std::invalid_argument("ModelConfig: one program per core required");
  }
  ctx_.setVerifyTap(&registry_);
  dir_.injectBug(cfg_.bug);
  for (unsigned i = 0; i < cfg_.cores; ++i) {
    l1s_.push_back(std::make_unique<coh::L1Controller>(
        ctx_, net_, static_cast<CoreId>(i), cfg_.l1, cfg_.protocol, cfg_.policy,
        cfg_.cores));
    l1s_.back()->connectDirectory(&dir_);
    dir_.connectL1(static_cast<CoreId>(i), l1s_.back().get());
    const CoreId id = static_cast<CoreId>(i);
    l1s_.back()->setCallbacks(coh::L1Controller::Callbacks{
        .priorityValue = [this, id] { return drivers_[static_cast<std::size_t>(id)].insts; },
        .onAbort = [this, id](AbortCause) { onAbort(id); },
        .onSwitchedToStl = [] {},
    });
  }
  std::vector<coh::MsgSink*> peers;
  for (auto& l1 : l1s_) peers.push_back(l1.get());
  for (auto& l1 : l1s_) l1->connectPeers(peers);
}

ModelHarness::~ModelHarness() { ctx_.setVerifyTap(nullptr); }

void ModelHarness::start() {
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    // Seed each program through an event so step 0 competes with everything
    // else at cycle 1 under the oracle instead of running pre-simulation.
    const CoreId id = static_cast<CoreId>(c);
    const std::uint64_t gen = drivers_[c].gen;
    engine().schedule(1, [this, id, gen] {
      if (drivers_[static_cast<std::size_t>(id)].gen == gen) step(id);
    });
  }
}

void ModelHarness::step(CoreId c) {
  Driver& d = drivers_[static_cast<std::size_t>(c)];
  const auto& prog = cfg_.programs[static_cast<std::size_t>(c)];
  coh::L1Controller& l1c = *l1s_[static_cast<std::size_t>(c)];
  while (true) {
    if (d.pc >= prog.size()) {
      d.done = true;
      return;
    }
    const ProgOp& op = prog[d.pc];
    const std::uint64_t gen = d.gen;
    switch (op.kind) {
      case OpKind::TxBegin:
        d.attemptStart = d.pc;
        l1c.txBegin();
        ++d.pc;
        continue;  // synchronous; fall through to the next op
      case OpKind::Load:
        l1c.load(byteOf(op.line), [this, c, gen](std::uint64_t) { opDone(c, gen); });
        return;
      case OpKind::Store:
        l1c.store(byteOf(op.line), op.value, [this, c, gen] { opDone(c, gen); });
        return;
      case OpKind::Commit:
        l1c.txCommit([this, c, gen] { opDone(c, gen); });
        return;
      case OpKind::HlBegin:
        d.attemptStart = d.pc;
        l1c.hlBegin([this, c, gen] { opDone(c, gen); });
        return;
      case OpKind::HlEnd:
        l1c.hlEnd([this, c, gen] { opDone(c, gen); });
        return;
    }
  }
}

void ModelHarness::opDone(CoreId c, std::uint64_t gen) {
  Driver& d = drivers_[static_cast<std::size_t>(c)];
  if (d.gen != gen) return;  // completion from a squashed attempt
  ++d.insts;
  ++d.pc;
  step(c);
}

void ModelHarness::onAbort(CoreId c) {
  Driver& d = drivers_[static_cast<std::size_t>(c)];
  ++d.gen;
  ++d.aborts;
  d.insts = 0;
  d.pc = d.attemptStart;
  const std::uint64_t gen = d.gen;
  engine().schedule(1, [this, c, gen] {
    if (drivers_[static_cast<std::size_t>(c)].gen == gen) step(c);
  });
}

SystemView ModelHarness::view() const {
  SystemView v;
  v.dir = &dir_;
  for (const auto& l1 : l1s_) v.l1s.push_back(l1.get());
  v.msgs = &registry_;
  v.lines = cfg_.lines;
  v.priorityOf = [this](CoreId c) { return drivers_[static_cast<std::size_t>(c)].insts; };
  return v;
}

SystemRefs ModelHarness::refs() const {
  SystemRefs r;
  r.engine = &ctx_.engine();
  r.dir = &dir_;
  for (const auto& l1 : l1s_) r.l1s.push_back(l1.get());
  r.msgs = &registry_;
  return r;
}

std::uint64_t ModelHarness::fingerprint() const {
  sim::StateHasher h;
  hashSystem(h, refs());
  h.section(0x50);
  for (const Driver& d : drivers_) {
    h.put(d.pc);
    h.put(d.attemptStart);
    h.put(d.insts);
    h.putBool(d.done);
    // gen and aborts are monotonic attempt counters: excluded, or no two
    // paths with different abort histories could ever converge.
  }
  return h.digest();
}

bool ModelHarness::allDone() const {
  for (const Driver& d : drivers_) {
    if (!d.done) return false;
  }
  return true;
}

unsigned ModelHarness::totalAborts() const {
  unsigned n = 0;
  for (const Driver& d : drivers_) n += d.aborts;
  return n;
}

std::string ModelHarness::programStatus() const {
  std::ostringstream oss;
  for (std::size_t c = 0; c < drivers_.size(); ++c) {
    const Driver& d = drivers_[c];
    if (d.done) continue;
    const auto& prog = cfg_.programs[c];
    oss << "c" << c << " stuck at op " << d.pc << "/" << prog.size();
    if (d.pc < prog.size()) {
      oss << " (" << toString(prog[d.pc].kind) << " line=" << prog[d.pc].line << ")";
    }
    oss << " after " << d.aborts << " abort(s); " << l1s_[c]->diagnostic() << "\n";
  }
  return oss.str();
}

}  // namespace lktm::verify
