// The safety and liveness invariants the model checker evaluates at every
// explored state (and, for the reject-priority rule, at every reject send):
//
//  * SWMR            — at most one L1 holds a line in M/E, and an M/E copy
//                      never coexists with any other valid copy;
//  * lock-highest    — at most one core is in lock (TL/STL) mode; while the
//                      LLC arbiter has a holder, no other core is in lock
//                      mode; a lock transaction's requests are never held
//                      rejected (it outranks everything, Section III-A);
//  * no-lost-wakeup  — a request parked in WaitingWakeup is always covered:
//                      some responder (an L1 wakeup table or the LLC waiter
//                      table) has it recorded, or its Wakeup is already on
//                      the wire;
//  * reject-priority — a reject is only ever sent by a responder whose
//                      priority key currently beats the requester's carried
//                      snapshot (checked at send time, when the blocker is
//                      guaranteed live);
//  * quiescence      — when the event queue drains, the protocol must be
//                      fully at rest: no busy directory lines, no MSHR
//                      entries, no writebacks in limbo, no parked external
//                      requests, nothing in flight. A drained queue that is
//                      not quiescent is a deadlock.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "verify/msg_registry.hpp"

namespace lktm::verify {

struct Violation {
  std::string invariant;  ///< "swmr", "lock-highest", "no-lost-wakeup",
                          ///< "reject-priority", "quiescence"
  std::string detail;
};

/// What the invariants need to see. `msgs` may be null (hand-built test
/// states): absent wire knowledge makes no-lost-wakeup strictly stricter,
/// never laxer.
struct SystemView {
  const coh::DirectoryController* dir = nullptr;
  std::vector<const coh::L1Controller*> l1s;
  const MsgRegistry* msgs = nullptr;
  std::vector<LineAddr> lines;  ///< the config's line universe
  /// Current priority value of a core (the harness owns the counters the
  /// L1's priorityValue callback reads).
  std::function<std::uint64_t(CoreId)> priorityOf = [](CoreId) { return std::uint64_t{0}; };
};

class InvariantPack {
 public:
  /// State-level invariants: SWMR, lock-highest, no-lost-wakeup.
  static std::vector<Violation> checkState(const SystemView& v);

  /// Event-level check at the moment a reject leaves `responder` (kNoCore
  /// for directory-originated RejectResp). `msg` is the reject message.
  static std::optional<Violation> checkReject(const SystemView& v, const coh::Msg& msg,
                                              CoreId responder);

  /// Leaf-level check once the event queue has drained.
  static std::vector<Violation> checkQuiescent(const SystemView& v);
};

}  // namespace lktm::verify
