// Self-contained small-configuration system for the protocol model checker:
// 2-4 cores, an ideal 1-cycle network, a handful of cache lines, and a
// scripted transactional program per core driven directly at the L1 CPU port
// (the tests/testbed.hpp pattern, minus GTest). Each DFS path builds a fresh
// harness, replays a schedule prefix through the ScheduleOracle, and reads
// canonical fingerprints + invariant views off it.
//
// Abort/restart: when a core's transaction aborts, the driver rewinds its
// program counter to the enclosing TxBegin and re-runs the attempt one cycle
// later. Completions are generation-guarded so an event from a squashed
// attempt can never advance the restarted program.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "mem/main_memory.hpp"
#include "noc/ideal.hpp"
#include "sim/context.hpp"
#include "verify/invariants.hpp"
#include "verify/msg_registry.hpp"
#include "verify/state_canon.hpp"

namespace lktm::verify {

enum class OpKind : std::uint8_t { TxBegin, Load, Store, Commit, HlBegin, HlEnd };

const char* toString(OpKind k);

struct ProgOp {
  OpKind kind{};
  LineAddr line = 0;
  std::uint64_t value = 0;
};

struct ModelConfig {
  std::string name;
  unsigned cores = 2;
  unsigned banks = 1;  ///< LLC directory banks (lines interleave line & (banks-1))
  mem::CacheGeometry l1{4 * kLineBytes, 2};
  coh::ProtocolParams protocol;
  core::TmPolicy policy;
  std::vector<std::vector<ProgOp>> programs;  ///< one script per core
  std::vector<LineAddr> lines;                ///< the config's line universe
  coh::DirectoryController::InjectedBug bug =
      coh::DirectoryController::InjectedBug::None;
};

/// The built-in small configurations lktm_check exposes (2c1l, 2c2l-cycle,
/// 3c1l, 3c2l, tl-overflow, stm-commit — the TL2 software-commit coherence
/// footprint — plus the 2-bank variants 2c2l-cycle-2b, 3c2l-2b and
/// tl-overflow-2b that split the line universe across directory banks —
/// tl-overflow-2b drives the inter-bank lock/clear broadcasts). Returns
/// nullopt for unknown names.
std::optional<ModelConfig> namedConfig(const std::string& name);
std::vector<std::string> configNames();

class ModelHarness {
 public:
  explicit ModelHarness(const ModelConfig& cfg);
  ~ModelHarness();

  ModelHarness(const ModelHarness&) = delete;
  ModelHarness& operator=(const ModelHarness&) = delete;

  /// Kick off every core's program (schedules the first steps; nothing runs
  /// until the caller drives the event queue).
  void start();

  sim::SimContext& ctx() { return ctx_; }
  sim::Engine& engine() { return ctx_.engine(); }
  MsgRegistry& registry() { return registry_; }
  coh::DirectoryController& dir() { return dir_; }
  coh::L1Controller& l1(CoreId c) { return *l1s_.at(static_cast<std::size_t>(c)); }
  const ModelConfig& config() const { return cfg_; }

  SystemView view() const;
  SystemRefs refs() const;

  /// Canonical fingerprint of system + driver state (program counters and
  /// per-attempt progress; generation counters and abort totals are excluded
  /// as monotonic).
  std::uint64_t fingerprint() const;

  bool allDone() const;
  unsigned totalAborts() const;
  /// One line per unfinished program, for deadlock diagnostics.
  std::string programStatus() const;

 private:
  struct Driver {
    std::size_t pc = 0;
    std::size_t attemptStart = 0;  ///< rewind target on abort
    std::uint64_t gen = 0;         ///< attempt generation (staleness guard)
    std::uint64_t insts = 0;       ///< ops completed this attempt (= priority)
    bool done = false;
    unsigned aborts = 0;
  };

  void step(CoreId c);
  void opDone(CoreId c, std::uint64_t gen);
  void onAbort(CoreId c);

  ModelConfig cfg_;
  sim::SimContext ctx_;
  mem::MainMemory memory_;
  noc::IdealNetwork net_;
  coh::DirectoryController dir_;
  std::vector<std::unique_ptr<coh::L1Controller>> l1s_;
  MsgRegistry registry_;
  std::vector<Driver> drivers_;
};

}  // namespace lktm::verify
