#include "verify/state_canon.hpp"

#include <algorithm>

namespace lktm::verify {

void hashSystem(sim::StateHasher& h, const SystemRefs& s) {
  h.section(0x01);
  for (const coh::L1Controller* l1 : s.l1s) l1->hashState(h);
  s.dir->hashState(h);

  // Pending events as a sorted multiset of (when - now) deltas. The delta
  // multiset (not absolute cycles) is what decides relative firing order.
  h.section(0x02);
  std::vector<Cycle> deltas;
  const Cycle now = s.engine->now();
  s.engine->queue().forEachPending([&](Cycle when, std::uint64_t /*seq*/) {
    deltas.push_back(when - now);
  });
  std::sort(deltas.begin(), deltas.end());
  for (Cycle d : deltas) h.put(d);

  if (s.msgs != nullptr) s.msgs->hashState(h);
}

std::uint64_t canonicalFingerprint(const SystemRefs& s) {
  sim::StateHasher h;
  hashSystem(h, s);
  return h.digest();
}

}  // namespace lktm::verify
