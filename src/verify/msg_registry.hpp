// Exact registry of in-flight coherence messages, fed by the MsgTap hook on
// the SimContext (coh::post reports every send and delivery). The model
// checker needs it twice: canonical state fingerprints must cover messages
// that have left a sender but not yet reached a receiver, and several
// invariants ("no lost wakeup", "reject implies lower priority") are only
// precise when checked against what is actually on the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coherence/messages.hpp"
#include "sim/state_hash.hpp"

namespace lktm::verify {

class MsgRegistry final : public coh::MsgTap {
 public:
  struct InFlight {
    coh::MsgType type{};
    LineAddr line = 0;
    noc::NodeId src = 0;
    noc::NodeId dst = 0;
    std::uint64_t fingerprint = 0;
  };

  using Hook = std::function<void(const coh::Msg&, noc::NodeId, noc::NodeId)>;

  void onSend(const coh::Msg& msg, noc::NodeId src, noc::NodeId dst) override;
  void onDeliver(const coh::Msg& msg, noc::NodeId src, noc::NodeId dst) override;

  /// Observe message events without disturbing the registry (the checker uses
  /// these for event-level invariants and for counterexample traces).
  void setSendHook(Hook hook) { sendHook_ = std::move(hook); }
  void setDeliverHook(Hook hook) { deliverHook_ = std::move(hook); }

  const std::vector<InFlight>& inFlight() const { return inFlight_; }
  bool empty() const { return inFlight_.empty(); }
  std::size_t size() const { return inFlight_.size(); }
  void clear() { inFlight_.clear(); }

  /// Is a message of `type` for `line` on the wire to node `dst`? (L1 node
  /// ids equal core ids, so this answers "is a Wakeup in flight to core c".)
  bool anyInFlightTo(noc::NodeId dst, coh::MsgType type, LineAddr line) const;

  /// Fold the in-flight set into a state fingerprint, order-independently:
  /// per-message (fingerprint, src, dst) hashes are sorted before folding, so
  /// two schedules that put the same messages on the wire in different send
  /// order canonicalize identically.
  void hashState(sim::StateHasher& h) const;

 private:
  std::vector<InFlight> inFlight_;
  Hook sendHook_;
  Hook deliverHook_;
};

}  // namespace lktm::verify
