#include "verify/checker.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/trace.hpp"

namespace lktm::verify {

std::size_t DfsOracle::pick(Cycle /*now*/, std::size_t nReady) {
  const std::size_t idx = trail_.size();
  std::size_t chosen = 0;
  if (idx < prefix_.size()) {
    chosen = prefix_[idx];
    if (chosen >= nReady) {
      // The replayed run diverged from the run that produced this prefix —
      // either the schedule file is stale or the simulation is not
      // deterministic under forced choices. Both are fatal for replay.
      throw std::logic_error("DfsOracle: prefix choice " + std::to_string(chosen) +
                             " out of range (only " + std::to_string(nReady) +
                             " events ready)");
    }
  }
  trail_.push_back(Branch{chosen, nReady});
  return chosen;
}

std::vector<std::size_t> DfsOracle::choices() const {
  std::vector<std::size_t> out;
  out.reserve(trail_.size());
  for (const Branch& b : trail_) out.push_back(b.chosen);
  return out;
}

ModelChecker::ModelChecker(ModelConfig cfg, CheckOptions opt)
    : cfg_(std::move(cfg)), opt_(opt) {}

namespace {

/// Receiver name in the coherence_replay trace style: L1 node ids equal core
/// ids; everything above is a directory bank.
std::string nodeName(noc::NodeId node, unsigned cores) {
  if (node >= 0 && static_cast<unsigned>(node) < cores) {
    return "c" + std::to_string(node);
  }
  return "dir";
}

void appendTraceLine(std::string& trace, const coh::Msg& m, noc::NodeId dst,
                     unsigned cores) {
  std::ostringstream line;
  line << nodeName(dst, cores) << " rx " << coh::toString(m.type) << " line=" << m.line
       << " from=" << m.from;
  if (m.hasData) line << " d0=" << m.data[0];
  if (m.keptCopy) line << " kept";
  if (m.rejectHint != AbortCause::None) line << " hint=" << toString(m.rejectHint);
  line << "\n";
  trace += line.str();
}

}  // namespace

ModelChecker::PathOutcome ModelChecker::runPath(const ModelConfig& cfg,
                                                DfsOracle& oracle,
                                                // lktm-lint: allow(no-unordered-iteration) -- membership test only
                                                std::unordered_set<std::uint64_t>* visited,
                                                const CheckOptions& opt,
                                                std::uint64_t* statesVisited) {
  PathOutcome out;
  ModelHarness harness(cfg);
  harness.engine().setScheduleOracle(&oracle);

  // Record the path's event trace so a counterexample dump carries the full
  // txn/coherence timeline next to the delivery schedule. Compiles to a
  // never-written sink unless LKTM_TRACE is on.
  sim::TraceSink sink;
  harness.ctx().setTraceSink(&sink);
  const auto captureTrace = [&] {
    if (sim::kTraceEnabled && !out.violations.empty()) {
      out.traceJson = sink.chromeJson();
    }
  };

  const SystemView view = harness.view();
  harness.registry().setSendHook(
      [&](const coh::Msg& msg, noc::NodeId src, noc::NodeId /*dst*/) {
        const bool fromL1 = src >= 0 && static_cast<unsigned>(src) < cfg.cores;
        if (msg.type == coh::MsgType::InvReject || msg.type == coh::MsgType::FwdReject ||
            msg.type == coh::MsgType::RejectResp) {
          auto v = InvariantPack::checkReject(view, msg, fromL1 ? src : kNoCore);
          if (v.has_value()) out.violations.push_back(std::move(*v));
        }
      });
  harness.registry().setDeliverHook(
      [&](const coh::Msg& msg, noc::NodeId /*src*/, noc::NodeId dst) {
        appendTraceLine(out.trace, msg, dst, cfg.cores);
      });

  harness.start();
  sim::EventQueue& q = harness.engine().queue();
  while (!q.empty()) {
    const std::size_t trailBefore = oracle.trail().size();
    try {
      if (!q.runOne()) break;
    } catch (const std::exception& e) {
      out.violations.push_back(
          Violation{"exception", std::string("schedule triggers: ") + e.what()});
      captureTrace();
      return out;
    }
    ++out.events;
    if (oracle.prefixConsumed() && oracle.trail().size() > trailBefore) {
      out.freshChoices += oracle.trail().size() - trailBefore;
    }

    for (Violation& v : InvariantPack::checkState(view)) {
      out.violations.push_back(std::move(v));
    }
    if (!out.violations.empty()) {
      captureTrace();
      return out;
    }

    if (visited != nullptr && oracle.prefixConsumed()) {
      const std::uint64_t fp = harness.fingerprint();
      if (!visited->insert(fp).second) {
        out.pruned = true;
        return out;
      }
      ++*statesVisited;
      if (visited->size() >= opt.maxStates) {
        out.truncated = true;
        return out;
      }
    }
    if (out.events >= opt.maxEventsPerPath) {
      out.truncated = true;
      return out;
    }
  }

  // Leaf: the queue drained. The protocol must be quiescent and every
  // program finished — anything else is a deadlock on this schedule.
  for (Violation& v : InvariantPack::checkQuiescent(view)) {
    out.violations.push_back(std::move(v));
  }
  if (!harness.allDone()) {
    out.violations.push_back(
        Violation{"quiescence", "event queue drained with unfinished programs (deadlock)"});
    out.deadlockDiagnostic = harness.programStatus();
  }
  captureTrace();
  return out;
}

CheckResult ModelChecker::run() {
  CheckResult result;
  // lktm-lint: allow(no-unordered-iteration) -- fingerprint membership set, never iterated
  std::unordered_set<std::uint64_t> visited;
  std::vector<std::size_t> prefix;

  while (true) {
    DfsOracle oracle(prefix);
    PathOutcome out = runPath(cfg_, oracle, &visited, opt_, &result.statesVisited);
    ++result.pathsExplored;
    result.eventsExecuted += out.events;
    result.choicePoints += out.freshChoices;
    if (out.pruned) ++result.prunedPaths;
    if (out.truncated) result.truncated = true;

    if (!out.violations.empty()) {
      if (!out.deadlockDiagnostic.empty()) {
        result.deadlockDiagnostic = out.deadlockDiagnostic;
      }
      for (Violation& v : out.violations) result.violations.push_back(std::move(v));
      if (opt_.stopAtFirstViolation) {
        Counterexample cex;
        cex.configName = cfg_.name;
        cex.bug = cfg_.bug;
        cex.invariant = result.violations.front().invariant;
        cex.detail = result.violations.front().detail;
        cex.schedule = oracle.choices();
        cex.trace = std::move(out.trace);
        cex.traceJson = std::move(out.traceJson);
        result.cex = std::move(cex);
        return result;
      }
    }
    if (result.pathsExplored >= opt_.maxPaths) {
      result.truncated = true;
      return result;
    }

    // Backtrack: increment the deepest branch with an unexplored sibling.
    std::vector<DfsOracle::Branch> trail = oracle.trail();
    while (!trail.empty() && trail.back().chosen + 1 >= trail.back().arity) {
      trail.pop_back();
    }
    if (trail.empty()) return result;  // schedule tree exhausted
    prefix.clear();
    for (std::size_t i = 0; i + 1 < trail.size(); ++i) prefix.push_back(trail[i].chosen);
    prefix.push_back(trail.back().chosen + 1);
  }
}

CheckResult ModelChecker::replaySchedule(const ModelConfig& cfg,
                                         const std::vector<std::size_t>& schedule,
                                         std::uint64_t maxEvents) {
  CheckResult result;
  CheckOptions opt;
  opt.maxEventsPerPath = maxEvents;
  DfsOracle oracle(schedule);
  PathOutcome out = runPath(cfg, oracle, /*visited=*/nullptr, opt, nullptr);
  result.pathsExplored = 1;
  result.eventsExecuted = out.events;
  result.truncated = out.truncated;
  result.violations = std::move(out.violations);
  result.deadlockDiagnostic = std::move(out.deadlockDiagnostic);
  if (!result.violations.empty()) {
    Counterexample cex;
    cex.configName = cfg.name;
    cex.bug = cfg.bug;
    cex.invariant = result.violations.front().invariant;
    cex.detail = result.violations.front().detail;
    cex.schedule = oracle.choices();
    cex.trace = std::move(out.trace);
    cex.traceJson = std::move(out.traceJson);
    result.cex = std::move(cex);
  }
  return result;
}

const char* toString(coh::DirectoryController::InjectedBug bug) {
  switch (bug) {
    case coh::DirectoryController::InjectedBug::None: return "none";
    case coh::DirectoryController::InjectedBug::SwmrSkipInvalidation:
      return "swmr-skip-inv";
  }
  return "?";
}

std::optional<coh::DirectoryController::InjectedBug> bugFromString(const std::string& s) {
  if (s == "none") return coh::DirectoryController::InjectedBug::None;
  if (s == "swmr-skip-inv") {
    return coh::DirectoryController::InjectedBug::SwmrSkipInvalidation;
  }
  return std::nullopt;
}

void writeCounterexample(const std::string& path, const Counterexample& cex) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write counterexample to " + path);
  out << "lktm_check counterexample v1\n";
  out << "config " << cex.configName << "\n";
  out << "inject-bug " << toString(cex.bug) << "\n";
  out << "invariant " << cex.invariant << "\n";
  out << "detail " << cex.detail << "\n";
  out << "schedule";
  for (std::size_t c : cex.schedule) out << " " << c;
  out << "\n";
  out << "trace-begin\n" << cex.trace << "trace-end\n";
  if (!cex.traceJson.empty()) {
    out << "trace-events-begin\n" << cex.traceJson;
    if (cex.traceJson.back() != '\n') out << "\n";
    out << "trace-events-end\n";
  }
}

std::optional<Counterexample> readCounterexample(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "lktm_check counterexample v1") {
    return std::nullopt;
  }
  Counterexample cex;
  bool inTrace = false;
  bool inTraceJson = false;
  while (std::getline(in, line)) {
    if (inTrace) {
      if (line == "trace-end") {
        inTrace = false;
        continue;
      }
      cex.trace += line + "\n";
      continue;
    }
    if (inTraceJson) {
      if (line == "trace-events-end") {
        inTraceJson = false;
        continue;
      }
      cex.traceJson += line + "\n";
      continue;
    }
    if (line == "trace-begin") {
      inTrace = true;
      continue;
    }
    if (line == "trace-events-begin") {
      inTraceJson = true;
      continue;
    }
    std::istringstream iss(line);
    std::string key;
    iss >> key;
    if (key == "config") {
      iss >> cex.configName;
    } else if (key == "inject-bug") {
      std::string b;
      iss >> b;
      const auto bug = bugFromString(b);
      if (!bug.has_value()) return std::nullopt;
      cex.bug = *bug;
    } else if (key == "invariant") {
      iss >> cex.invariant;
    } else if (key == "detail") {
      std::getline(iss, cex.detail);
      if (!cex.detail.empty() && cex.detail.front() == ' ') cex.detail.erase(0, 1);
    } else if (key == "schedule") {
      std::size_t c = 0;
      while (iss >> c) cex.schedule.push_back(c);
    }
  }
  return cex;
}

}  // namespace lktm::verify
