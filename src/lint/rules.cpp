#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <set>
#include <string_view>

#include "lint/lexer.hpp"
#include "stats/json.hpp"

namespace lktm::lint {

namespace {

constexpr const char* kRuleWallClock = "no-wall-clock";
constexpr const char* kRuleUnordered = "no-unordered-iteration";
constexpr const char* kRuleRandom = "no-unseeded-randomness";
constexpr const char* kRulePtrOrder = "no-pointer-order";
constexpr const char* kRuleRetired = "no-retired-symbols";
constexpr const char* kRuleStatPath = "stat-path-literal";
constexpr const char* kRuleSuppression = "suppression-needs-reason";

/// Deterministic-zone path prefixes: code that runs inside simulated time.
/// Prefix match, so subtrees are covered too (src/runtime/ takes in the
/// src/runtime/backends/ TM-backend emitters).
constexpr std::array<std::string_view, 9> kDeterministicPrefixes = {
    "src/sim/",   "src/coherence/", "src/core/",      "src/cpu/",
    "src/mem/",   "src/noc/",       "src/runtime/",   "src/workloads/",
    "src/verify/"};

/// Wall-clock reads these files make are the *product*: Engine's wall-budget
/// deadline and the distrib heartbeat/lease machinery (whose design already
/// guarantees no cross-host clock comparison). Everything else needs an
/// inline allow() with a reason.
constexpr std::array<std::string_view, 4> kWallClockAllowedFiles = {
    "src/sim/engine.hpp", "src/sim/engine.cpp", "src/config/distrib.hpp",
    "src/config/distrib.cpp"};

constexpr std::array<std::string_view, 7> kClockIdents = {
    "system_clock", "high_resolution_clock", "gettimeofday", "clock_gettime",
    "timespec_get", "localtime",             "gmtime"};

/// Member fields of the retired ProtocolCounters struct; spelled out in full
/// so the legitimate MachineParams::protocol latency knobs
/// (m.protocol.llcLatency) never match — the bug the PR-6 grep gate had.
constexpr std::array<std::string_view, 8> kRetiredProtocolFields = {
    "messages", "dataMessages", "flitHops",   "l1Hits",
    "l1Misses", "llcHits",      "llcMisses",  "writebacks"};

bool pathMatches(const std::string& relPath, std::string_view file) {
  if (relPath == file) return true;
  // Tolerate callers handing absolute paths: match on a path-boundary suffix.
  if (relPath.size() > file.size()) {
    const std::size_t off = relPath.size() - file.size();
    return relPath[off - 1] == '/' &&
           std::string_view(relPath).substr(off) == file;
  }
  return false;
}

struct FileLinter {
  const std::string& relPath;
  const SourceFile& sf;
  Zone zone;
  const LintOptions& opts;
  std::vector<Finding> findings;
  std::set<std::pair<unsigned, std::string>> emitted;  // (line, rule) dedup

  bool active(const char* rule) const {
    if (opts.rules.empty()) return true;
    return std::find(opts.rules.begin(), opts.rules.end(), rule) !=
           opts.rules.end();
  }

  std::string excerptAt(unsigned line) const {
    if (line == 0 || line > sf.lines.size()) return {};
    const std::string& raw = sf.lines[line - 1];
    std::size_t b = 0;
    std::size_t e = raw.size();
    while (b < e && (raw[b] == ' ' || raw[b] == '\t')) ++b;
    while (e > b && (raw[e - 1] == ' ' || raw[e - 1] == '\t')) --e;
    std::string x = raw.substr(b, e - b);
    if (x.size() > 160) x = x.substr(0, 157) + "...";
    return x;
  }

  void emit(unsigned line, const char* rule) {
    if (!emitted.emplace(line, rule).second) return;
    Finding f;
    f.file = relPath;
    f.line = line;
    f.rule = rule;
    f.excerpt = excerptAt(line);
    f.zone = zone;
    findings.push_back(std::move(f));
  }

  const Token& tk(std::size_t i) const {
    static const Token end{};
    return i < sf.tokens.size() ? sf.tokens[i] : end;
  }
  bool isPunct(std::size_t i, std::string_view p) const {
    return tk(i).kind == Tok::Punct && tk(i).text == p;
  }
  bool isIdent(std::size_t i, std::string_view name) const {
    return tk(i).kind == Tok::Ident && tk(i).text == name;
  }

  /// Is `name(` at token i a *call* rather than a declaration or member
  /// access? Preceding '.'/'->' means a member call (not the libc symbol);
  /// a preceding identifier means a declaration (`int rand();`) — unless it
  /// is a statement keyword, which can only precede an expression.
  bool isFreeCall(std::size_t i) const {
    if (!isPunct(i + 1, "(")) return false;
    if (i == 0) return true;
    if (isPunct(i - 1, ".") || isPunct(i - 1, "->")) return false;
    if (isPunct(i - 1, "::")) return isIdent(i - 2, "std");
    if (tk(i - 1).kind == Tok::Ident) {
      static const std::set<std::string_view> kExprKeywords = {
          "return", "co_return", "case", "if",     "while",
          "do",     "else",      "for",  "switch", "co_await"};
      return kExprKeywords.count(tk(i - 1).text) != 0;
    }
    return true;
  }

  /// Index just past a balanced <...> starting at `open` (which must be '<');
  /// `open` itself when it is not. `sawStar`/`sawIdent` report template-arg
  /// contents for the pointer-order rule.
  std::size_t skipAngles(std::size_t open, bool* sawStar = nullptr,
                         const std::set<std::string_view>* watchIdents = nullptr,
                         bool* sawWatched = nullptr) const {
    if (!isPunct(open, "<")) return open;
    int depth = 0;
    std::size_t i = open;
    for (; i < sf.tokens.size(); ++i) {
      if (isPunct(i, "<")) ++depth;
      if (isPunct(i, ">") && --depth == 0) return i + 1;
      // A template argument list never contains these; bail so an ordinary
      // less-than comparison cannot swallow the rest of the file.
      if (isPunct(i, ";") || isPunct(i, "{")) return open + 1;
      if (depth >= 1 && sawStar != nullptr && isPunct(i, "*") && i != open) {
        *sawStar = true;
      }
      if (depth >= 1 && watchIdents != nullptr && tk(i).kind == Tok::Ident &&
          watchIdents->count(tk(i).text) != 0) {
        *sawWatched = true;
      }
    }
    return i;
  }

  // ---------------------------------------------------------------- rules

  void ruleWallClock() {
    if (!active(kRuleWallClock)) return;
    for (const std::string_view f : kWallClockAllowedFiles) {
      if (pathMatches(relPath, f)) return;
    }
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
      const Token& t = sf.tokens[i];
      if (t.kind != Tok::Ident || t.preproc) continue;
      bool hit = false;
      for (const std::string_view c : kClockIdents) hit = hit || t.text == c;
      // steady_clock is as nondeterministic as any other clock for replay
      // purposes (it differs per host/run); it shares the rule.
      hit = hit || t.text == "steady_clock";
      // A *free* call (or std::-qualified): member calls like engine.time()
      // are simulated time and fine, declarations are not reads.
      if (!hit && (t.text == "time" || t.text == "clock")) hit = isFreeCall(i);
      if (hit) emit(t.line, kRuleWallClock);
    }
  }

  void ruleUnordered() {
    if (!active(kRuleUnordered) || zone != Zone::Deterministic) return;
    static const std::set<std::string_view> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string> names;  // variables/aliases with unordered type
    // Pass 1: every non-#include mention is a declaration-site finding, and
    // the declared variable / using-alias name joins the watch set.
    std::string pendingAlias;
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
      const Token& t = sf.tokens[i];
      if (t.preproc) continue;
      if (t.kind == Tok::Ident && t.text == "using" && tk(i + 1).kind == Tok::Ident &&
          isPunct(i + 2, "=")) {
        pendingAlias = tk(i + 1).text;
      }
      if (isPunct(i, ";")) pendingAlias.clear();
      if (t.kind != Tok::Ident || kUnordered.count(t.text) == 0) continue;
      emit(t.line, kRuleUnordered);
      if (!pendingAlias.empty()) names.insert(pendingAlias);
      const std::size_t after = skipAngles(i + 1);
      if (tk(after).kind == Tok::Ident) names.insert(tk(after).text);
    }
    // Pass 2: iteration over a watched name (range-for or manual iterators).
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
      const Token& t = sf.tokens[i];
      if (t.kind != Tok::Ident || t.preproc || names.count(t.text) == 0) continue;
      const bool rangeFor = isPunct(i - 1, ":");
      const bool iterWalk =
          (isPunct(i + 1, ".") || isPunct(i + 1, "->")) &&
          (isIdent(i + 2, "begin") || isIdent(i + 2, "cbegin") ||
           isIdent(i + 2, "rbegin")) &&
          isPunct(i + 3, "(");
      if (rangeFor || iterWalk) emit(t.line, kRuleUnordered);
    }
  }

  void ruleRandomness() {
    if (!active(kRuleRandom)) return;
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
      const Token& t = sf.tokens[i];
      if (t.kind != Tok::Ident || t.preproc) continue;
      if (t.text == "random_device") {
        emit(t.line, kRuleRandom);
        continue;
      }
      const bool seedCall = t.text == "srand" || t.text == "drand48" ||
                            t.text == "lrand48" || t.text == "mrand48";
      if (seedCall && isPunct(i + 1, "(")) {
        emit(t.line, kRuleRandom);
        continue;
      }
      if (t.text == "rand" && isFreeCall(i)) emit(t.line, kRuleRandom);
    }
  }

  void rulePointerOrder() {
    if (!active(kRulePtrOrder) || zone != Zone::Deterministic) return;
    static const std::set<std::string_view> kPtrWords = {"uintptr_t",
                                                         "intptr_t"};
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
      const Token& t = sf.tokens[i];
      if (t.kind != Tok::Ident || t.preproc) continue;
      if ((t.text == "hash" || t.text == "less" || t.text == "greater" ||
           t.text == "owner_less") &&
          isPunct(i - 1, "::") && isIdent(i - 2, "std") && isPunct(i + 1, "<")) {
        bool sawStar = false;
        skipAngles(i + 1, &sawStar);
        if (sawStar) emit(t.line, kRulePtrOrder);
      }
      if (t.text == "reinterpret_cast" && isPunct(i + 1, "<")) {
        bool sawPtrWord = false;
        skipAngles(i + 1, nullptr, &kPtrWords, &sawPtrWord);
        if (sawPtrWord) emit(t.line, kRulePtrOrder);
      }
    }
  }

  void ruleRetired() {
    if (!active(kRuleRetired)) return;
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
      const Token& t = sf.tokens[i];
      if (t.kind != Tok::Ident) continue;
      if (t.text == "TxCounters" || t.text == "ProtocolCounters" ||
          t.text == "BreakdownSummary") {
        emit(t.line, kRuleRetired);
        continue;
      }
      // Member chains of the retired structs: `.tx.` and `.protocol.<field>`
      // where <field> is one of the raw counters, spelled out in full.
      if (!isPunct(i - 1, ".") && !isPunct(i - 1, "->")) continue;
      if (t.text == "tx" && isPunct(i + 1, ".")) {
        emit(t.line, kRuleRetired);
        continue;
      }
      if (t.text == "protocol" && isPunct(i + 1, ".") &&
          tk(i + 2).kind == Tok::Ident) {
        for (const std::string_view f : kRetiredProtocolFields) {
          if (tk(i + 2).text == f) {
            emit(t.line, kRuleRetired);
            break;
          }
        }
      }
    }
  }

  void ruleStatPath() {
    if (!active(kRuleStatPath)) return;
    static const std::set<std::string_view> kRegisterFns = {
        "counter", "histogram", "distribution", "formula"};
    for (std::size_t i = 0; i + 2 < sf.tokens.size(); ++i) {
      if (!isPunct(i, ".") && !isPunct(i, "->")) continue;
      const Token& fn = tk(i + 1);
      if (fn.kind != Tok::Ident || kRegisterFns.count(fn.text) == 0) continue;
      if (!isPunct(i + 2, "(")) continue;
      std::size_t a = i + 3;
      if (tk(a).kind == Tok::Str) {
        // Adjacent literals concatenate; the argument must then end.
        while (tk(a).kind == Tok::Str) ++a;
        if (isPunct(a, ",") || isPunct(a, ")")) continue;
      } else {
        // A documented builder call: [ns::]*statPath(...).
        std::size_t j = a;
        while (tk(j).kind == Tok::Ident && isPunct(j + 1, "::")) j += 2;
        if (isIdent(j, "statPath") && isPunct(j + 1, "(")) continue;
      }
      emit(fn.line, kRuleStatPath);
    }
  }

  void ruleSuppressionHygiene() {
    if (!active(kRuleSuppression)) return;
    for (const Suppression& s : sf.suppressions) {
      bool valid = !s.rules.empty() && !s.reason.empty();
      for (const std::string& r : s.rules) valid = valid && isRule(r);
      if (!valid) emit(s.firstLine, kRuleSuppression);
    }
  }

  // ------------------------------------------------------------ driver

  std::vector<Finding> run() {
    ruleWallClock();
    ruleUnordered();
    ruleRandomness();
    rulePointerOrder();
    ruleRetired();
    ruleStatPath();
    ruleSuppressionHygiene();

    // Apply suppressions: a valid allow() covers its comment's span plus the
    // next line, so it works same-line and on the line above. The hygiene
    // rule itself is not suppressible — a reasonless allow() must surface.
    for (Finding& f : findings) {
      if (f.rule == kRuleSuppression) continue;
      for (const Suppression& s : sf.suppressions) {
        if (s.rules.empty() || s.reason.empty()) continue;
        bool known = true;
        for (const std::string& r : s.rules) known = known && isRule(r);
        if (!known) continue;
        if (f.line < s.firstLine || f.line > s.lastLine + 1) continue;
        if (std::find(s.rules.begin(), s.rules.end(), f.rule) == s.rules.end()) {
          continue;
        }
        f.suppressed = true;
        f.reason = s.reason;
        break;
      }
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings);
  }
};

}  // namespace

const char* toString(Zone z) {
  return z == Zone::Deterministic ? "deterministic" : "host";
}

Zone zoneForPath(const std::string& relPath) {
  for (const std::string_view p : kDeterministicPrefixes) {
    if (relPath.size() > p.size() &&
        std::string_view(relPath).substr(0, p.size()) == p) {
      return Zone::Deterministic;
    }
  }
  return Zone::Host;
}

const std::vector<std::string>& allRules() {
  static const std::vector<std::string> kRules = {
      kRulePtrOrder,  kRuleRetired,     kRuleUnordered, kRuleRandom,
      kRuleWallClock, kRuleStatPath,    kRuleSuppression};
  return kRules;
}

bool isRule(const std::string& name) {
  const auto& rules = allRules();
  return std::find(rules.begin(), rules.end(), name) != rules.end();
}

std::vector<Finding> lintSource(const std::string& relPath,
                                const std::string& src,
                                const LintOptions& opts) {
  const SourceFile sf = lexFile(src);
  FileLinter linter{relPath, sf, zoneForPath(relPath), opts, {}, {}};
  return linter.run();
}

std::size_t LintRun::suppressedCount() const {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.suppressed ? 1 : 0;
  return n;
}

std::size_t LintRun::unsuppressedCount() const {
  return findings.size() - suppressedCount();
}

void writeArtifact(std::ostream& os, const LintRun& run) {
  stats::json::Writer w(os);
  w.beginObject();
  w.field("schema", kLintSchema);
  w.field("files_scanned", static_cast<std::uint64_t>(run.filesScanned));
  w.key("rules");
  w.beginArray();
  for (const std::string& r : run.rules) w.value(r);
  w.endArray();
  w.field("unsuppressed", static_cast<std::uint64_t>(run.unsuppressedCount()));
  w.field("suppressed", static_cast<std::uint64_t>(run.suppressedCount()));
  w.key("findings");
  w.beginArray();
  for (const Finding& f : run.findings) {
    w.beginObject();
    w.field("file", f.file);
    w.field("line", static_cast<std::uint64_t>(f.line));
    w.field("rule", f.rule);
    w.field("zone", toString(f.zone));
    w.field("suppressed", f.suppressed);
    w.field("reason", f.reason);
    w.field("excerpt", f.excerpt);
    w.endObject();
  }
  w.endArray();
  w.endObject();  // root endObject newline-terminates the document
}

}  // namespace lktm::lint
