#include "lint/selftest.hpp"

#include <ostream>

#include "lint/rules.hpp"

namespace lktm::lint {

namespace {

SelfTestCase pos(std::string name, std::string rule, std::string relPath,
                 std::string source) {
  return {std::move(name), std::move(rule), std::move(relPath),
          std::move(source), true, false};
}

SelfTestCase neg(std::string name, std::string rule, std::string relPath,
                 std::string source) {
  return {std::move(name), std::move(rule), std::move(relPath),
          std::move(source), false, false};
}

SelfTestCase sup(std::string name, std::string rule, std::string relPath,
                 std::string source) {
  return {std::move(name), std::move(rule), std::move(relPath),
          std::move(source), true, true};
}

std::vector<SelfTestCase> buildCases() {
  std::vector<SelfTestCase> cases;

  // ------------------------------------------------------- no-wall-clock
  cases.push_back(pos("no-wall-clock/planted-clock-read", "no-wall-clock",
                      "src/coherence/directory.cpp",
                      R"lint(
#include <chrono>
void tick() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
}
)lint"));
  cases.push_back(pos("no-wall-clock/host-zone-too", "no-wall-clock",
                      "tools/some_tool.cpp",
                      R"lint(
double stamp() {
  return std::chrono::duration<double>(
      std::chrono::system_clock::now().time_since_epoch()).count();
}
)lint"));
  cases.push_back(pos("no-wall-clock/free-time-call", "no-wall-clock",
                      "src/cpu/core.cpp",
                      R"lint(
unsigned long seedNow() { return time(nullptr); }
)lint"));
  cases.push_back(neg("no-wall-clock/member-time-is-sim-time", "no-wall-clock",
                      "src/cpu/core.cpp",
                      R"lint(
void step(Engine& engine) { auto now = engine.time(); (void)now; }
)lint"));
  cases.push_back(neg("no-wall-clock/string-and-comment", "no-wall-clock",
                      "src/sim/context.cpp",
                      R"lint(
// a comment may say steady_clock or gettimeofday freely
const char* kDoc = "std::chrono::system_clock::now() is banned here";
)lint"));
  cases.push_back(neg("no-wall-clock/engine-allowlist", "no-wall-clock",
                      "src/sim/engine.cpp",
                      R"lint(
bool expired() {
  return std::chrono::steady_clock::now() > wallDeadline_;
}
)lint"));
  cases.push_back(sup("no-wall-clock/suppressed-with-reason", "no-wall-clock",
                      "src/noc/mesh.cpp",
                      R"lint(
// lktm-lint: allow(no-wall-clock) -- fixture: display-only timing
auto t0 = std::chrono::steady_clock::now();
)lint"));
  cases.push_back(pos("no-wall-clock/reasonless-allow-does-not-suppress",
                      "no-wall-clock", "src/noc/mesh.cpp",
                      R"lint(
// lktm-lint: allow(no-wall-clock)
auto t0 = std::chrono::steady_clock::now();
)lint"));
  // Lexer edge: a line comment ending in a backslash splices the next line
  // into the comment, so the "violation" below it is never code at all.
  cases.push_back(neg("no-wall-clock/line-splice-comment", "no-wall-clock",
                      "src/mem/mshr.cpp",
                      "// this comment continues onto the next line \\\n"
                      "auto t = std::chrono::steady_clock::now();\n"));

  // --------------------------------------------- no-unordered-iteration
  cases.push_back(pos("no-unordered-iteration/range-for",
                      "no-unordered-iteration", "src/coherence/directory.cpp",
                      R"lint(
#include <unordered_map>
void walk(std::unordered_map<int, int> table) {
  for (const auto& kv : table) { (void)kv; }
}
)lint"));
  cases.push_back(pos("no-unordered-iteration/iterator-walk",
                      "no-unordered-iteration", "src/verify/state_canon.cpp",
                      R"lint(
std::unordered_set<unsigned long> seen;
void dump() {
  for (auto it = seen.begin(); it != seen.end(); ++it) { (void)*it; }
}
)lint"));
  cases.push_back(neg("no-unordered-iteration/host-zone-free",
                      "no-unordered-iteration", "src/config/orchestrator.cpp",
                      R"lint(
#include <unordered_map>
void walk(std::unordered_map<int, int> table) {
  for (const auto& kv : table) { (void)kv; }
}
)lint"));
  cases.push_back(neg("no-unordered-iteration/include-only",
                      "no-unordered-iteration", "src/mem/main_memory.cpp",
                      R"lint(
#include <unordered_map>
int x = 0;
)lint"));
  cases.push_back(sup("no-unordered-iteration/lookup-only-suppressed",
                      "no-unordered-iteration", "src/mem/main_memory.hpp",
                      R"lint(
// lktm-lint: allow(no-unordered-iteration) -- fixture: lookup-only store
std::unordered_map<unsigned long, int> store_;
)lint"));

  // --------------------------------------------- no-unseeded-randomness
  cases.push_back(pos("no-unseeded-randomness/rand-call",
                      "no-unseeded-randomness", "src/workloads/micro.cpp",
                      R"lint(
int pick() { return rand() % 7; }
)lint"));
  cases.push_back(pos("no-unseeded-randomness/random-device",
                      "no-unseeded-randomness", "tools/some_tool.cpp",
                      R"lint(
#include <random>
std::random_device rd;
)lint"));
  cases.push_back(neg("no-unseeded-randomness/member-rand-and-strings",
                      "no-unseeded-randomness", "src/workloads/micro.cpp",
                      R"lint(
// rand() in a comment is fine
struct Gen { int rand(); };
int pick(Gen& g) { return g.rand(); }
const char* kDoc = "never call rand() or std::random_device";
)lint"));
  // Lexer edge: raw strings (even with an odd delimiter) are opaque.
  cases.push_back(neg("no-unseeded-randomness/raw-string",
                      "no-unseeded-randomness", "src/workloads/micro.cpp",
                      R"lint(
const char* kSnippet = R"x(int bad() { return rand() + srand(1); })x";
)lint"));

  // -------------------------------------------------- no-pointer-order
  cases.push_back(pos("no-pointer-order/hash-of-pointer", "no-pointer-order",
                      "src/coherence/l1_controller.cpp",
                      R"lint(
#include <functional>
struct Node;
std::size_t key(Node* n) { return std::hash<Node*>{}(n); }
)lint"));
  cases.push_back(pos("no-pointer-order/uintptr-cast", "no-pointer-order",
                      "src/core/conflict_manager.cpp",
                      R"lint(
bool older(const void* a, const void* b) {
  return reinterpret_cast<std::uintptr_t>(a) < reinterpret_cast<std::uintptr_t>(b);
}
)lint"));
  cases.push_back(neg("no-pointer-order/hash-of-value", "no-pointer-order",
                      "src/coherence/l1_controller.cpp",
                      R"lint(
#include <functional>
std::size_t key(unsigned long v) { return std::hash<unsigned long>{}(v); }
)lint"));
  cases.push_back(neg("no-pointer-order/host-zone-free", "no-pointer-order",
                      "tools/some_tool.cpp",
                      R"lint(
struct Node;
std::size_t key(Node* n) { return std::hash<Node*>{}(n); }
)lint"));

  // ------------------------------------------------- no-retired-symbols
  cases.push_back(pos("no-retired-symbols/struct-name", "no-retired-symbols",
                      "bench/fig99.cpp",
                      R"lint(
TxCounters tx;
)lint"));
  cases.push_back(pos("no-retired-symbols/tx-member-chain",
                      "no-retired-symbols", "bench/fig99.cpp",
                      R"lint(
double rate(const RunResult& r) { return r.tx.commits; }
)lint"));
  cases.push_back(pos("no-retired-symbols/protocol-field",
                      "no-retired-symbols", "bench/fig99.cpp",
                      R"lint(
unsigned long hits(const RunResult& r) { return r.protocol.llcHits; }
)lint"));
  // The exact false positive the PR-6 grep gate had: a legitimate
  // MachineParams::protocol latency knob must NOT match.
  cases.push_back(neg("no-retired-symbols/latency-knob-is-legit",
                      "no-retired-symbols", "bench/fig99.cpp",
                      R"lint(
unsigned latency(const MachineParams& m) { return m.protocol.llcLatency; }
)lint"));
  cases.push_back(neg("no-retired-symbols/string-mention",
                      "no-retired-symbols", "tools/some_tool.cpp",
                      R"lint(
const char* kGateDoc = "TxCounters and r.tx.commits are retired";
)lint"));

  // -------------------------------------------------- stat-path-literal
  cases.push_back(pos("stat-path-literal/concatenated-path",
                      "stat-path-literal", "src/stats/tx_stats.cpp",
                      R"lint(
void reg(StatRegistry& r, const std::string& prefix) {
  r.counter(prefix + ".commits.htm");
}
)lint"));
  cases.push_back(pos("stat-path-literal/variable-path", "stat-path-literal",
                      "src/noc/network.cpp",
                      R"lint(
void reg(SimContext& ctx, const std::string& p) { ctx.stats().histogram(p); }
)lint"));
  cases.push_back(neg("stat-path-literal/literal-and-builder",
                      "stat-path-literal", "src/noc/network.cpp",
                      R"lint(
void reg(SimContext& ctx, unsigned id) {
  ctx.stats().counter("noc.messages", "messages injected");
  ctx.stats().counter(statPath("core", id, "l1.hits"));
  ctx.stats().counter(stats::statPath("core", id, "l1.misses"));
  ctx.stats().formula("noc.avg", [] { return 0.0; }, "doc");
}
)lint"));
  cases.push_back(neg("stat-path-literal/split-literal", "stat-path-literal",
                      "src/noc/network.cpp",
                      R"lint(
void reg(SimContext& ctx) {
  ctx.stats().counter(
      "noc.a_very_long_stat_path_that_needed"
      ".a_line_break");
}
)lint"));

  // ------------------------------------------- suppression-needs-reason
  cases.push_back(pos("suppression-needs-reason/missing-reason",
                      "suppression-needs-reason", "src/sim/context.cpp",
                      R"lint(
// lktm-lint: allow(no-wall-clock)
int x = 0;
)lint"));
  cases.push_back(pos("suppression-needs-reason/unknown-rule",
                      "suppression-needs-reason", "src/sim/context.cpp",
                      R"lint(
// lktm-lint: allow(no-such-rule) -- the rule id is misspelled
int x = 0;
)lint"));
  cases.push_back(neg("suppression-needs-reason/well-formed",
                      "suppression-needs-reason", "src/sim/context.cpp",
                      R"lint(
// lktm-lint: allow(no-unseeded-randomness) -- fixture: documented reason
int x = 0;
)lint"));
  // Documentation that quotes the directive in backticks is not a directive
  // (this is how the linter's own sources describe the syntax).
  cases.push_back(neg("suppression-needs-reason/backtick-quoted-doc",
                      "suppression-needs-reason", "src/lint/rules.hpp",
                      R"lint(
// Findings are suppressible with `lktm-lint: allow(<rule>) -- <reason>`.
int x = 0;
)lint"));
  // Lexer edge: block comment spanning lines both hides the violation text
  // inside it and carries a directive that must still parse.
  cases.push_back(neg("suppression-needs-reason/block-comment-span",
                      "suppression-needs-reason", "src/sim/context.cpp",
                      R"lint(
/* a block comment that
   mentions rand() and steady_clock across lines and ends with
   lktm-lint: allow(no-wall-clock) -- fixture: spans lines */
int x = 0;
)lint"));

  return cases;
}

}  // namespace

const std::vector<SelfTestCase>& selfTestCases() {
  static const std::vector<SelfTestCase> kCases = buildCases();
  return kCases;
}

bool runSelfTest(std::ostream& os) {
  bool allOk = true;
  for (const SelfTestCase& c : selfTestCases()) {
    const std::vector<Finding> findings = lintSource(c.relPath, c.source);
    std::size_t hits = 0;
    std::size_t unsuppressed = 0;
    for (const Finding& f : findings) {
      if (f.rule != c.rule) continue;
      ++hits;
      unsuppressed += f.suppressed ? 0 : 1;
    }
    bool ok = false;
    if (!c.expectFinding) {
      ok = hits == 0;
    } else if (c.expectSuppressed) {
      ok = hits > 0 && unsuppressed == 0;
    } else {
      ok = unsuppressed > 0;
    }
    os << (ok ? "PASS" : "FAIL") << "  " << c.name << "\n";
    allOk = allOk && ok;
  }
  os << (allOk ? "self-test: all fixtures behaved" : "self-test: FAILURES above")
     << "\n";
  return allOk;
}

}  // namespace lktm::lint
