#include "lint/lexer.hpp"

#include <cctype>

namespace lktm::lint {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Parse a comment's text for a `lktm-lint: allow(a,b) -- reason` directive.
/// Returns true when the marker is present at all (even malformed), so the
/// rule engine can police reason-less directives.
bool parseDirective(const std::string& comment, Suppression& out) {
  const std::size_t mark = comment.find("lktm-lint:");
  if (mark == std::string::npos) return false;
  // Documentation *about* the directive quotes it in backticks; a backtick
  // anywhere before the marker means this comment documents, not directs.
  const std::size_t tick = comment.find('`');
  if (tick != std::string::npos && tick < mark) return false;
  std::size_t p = comment.find("allow", mark);
  if (p == std::string::npos) return true;  // marker without allow(): malformed
  p = comment.find('(', p);
  if (p == std::string::npos) return true;
  const std::size_t close = comment.find(')', p);
  if (close == std::string::npos) return true;
  std::string rule;
  for (std::size_t i = p + 1; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!rule.empty()) out.rules.push_back(rule);
      rule.clear();
    } else {
      rule += c;
    }
  }
  const std::size_t dash = comment.find("--", close);
  if (dash != std::string::npos) {
    // The reason runs to the end of the directive's line; in a block comment
    // that must not swallow following lines or the closing */.
    std::string reason = comment.substr(dash + 2);
    reason = reason.substr(0, reason.find('\n'));
    const std::size_t closer = reason.find("*/");
    if (closer != std::string::npos) reason = reason.substr(0, closer);
    out.reason = trimmed(reason);
  }
  return true;
}

}  // namespace

SourceFile lexFile(const std::string& src) {
  SourceFile out;

  // Raw source lines for excerpts (before splicing, so excerpts match the
  // file as the author sees it).
  {
    std::string cur;
    for (const char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else if (c != '\r') {
        cur += c;
      }
    }
    if (!cur.empty()) out.lines.push_back(cur);
  }

  // Phase 1: line splicing. Backslash-newline joins physical lines into one
  // logical line (this is what makes `#define A \` continuations and split
  // comments lex correctly); keep a per-character map back to the original
  // line number.
  std::string text;
  std::vector<unsigned> lineOf;
  text.reserve(src.size());
  lineOf.reserve(src.size());
  {
    unsigned line = 1;
    std::size_t i = 0;
    while (i < src.size()) {
      if (src[i] == '\\' && i + 1 < src.size() &&
          (src[i + 1] == '\n' ||
           (src[i + 1] == '\r' && i + 2 < src.size() && src[i + 2] == '\n'))) {
        i += src[i + 1] == '\r' ? 3 : 2;
        ++line;
        continue;
      }
      if (src[i] == '\r') {  // normalize CRLF so '\n' is the only terminator
        ++i;
        continue;
      }
      text += src[i];
      lineOf.push_back(line);
      if (src[i] == '\n') ++line;
      ++i;
    }
  }

  const auto lineAt = [&](std::size_t i) -> unsigned {
    if (lineOf.empty()) return 1;
    return lineOf[i < lineOf.size() ? i : lineOf.size() - 1];
  };

  std::size_t i = 0;
  const std::size_t n = text.size();
  bool atLineStart = true;  // only whitespace seen since the last newline
  bool inPreproc = false;

  const auto push = [&](Tok kind, std::string tokText, std::size_t at) {
    out.tokens.push_back(Token{kind, std::move(tokText), lineAt(at), inPreproc});
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n') {
      inPreproc = false;
      atLineStart = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Line comment: runs to the end of the *logical* line (splices already
    // joined continuations, matching translation-phase order).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      Suppression s;
      s.firstLine = lineAt(start);
      s.lastLine = lineAt(i == 0 ? 0 : i - 1);
      if (parseDirective(text.substr(start, i - start), s)) {
        out.suppressions.push_back(std::move(s));
      }
      continue;
    }

    // Block comment, possibly spanning lines.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      const std::size_t end = i + 1 < n ? i + 1 : n - 1;
      i = i + 1 < n ? i + 2 : n;
      Suppression s;
      s.firstLine = lineAt(start);
      s.lastLine = lineAt(end);
      if (parseDirective(text.substr(start, end - start + 1), s)) {
        out.suppressions.push_back(std::move(s));
      }
      continue;
    }

    if (c == '#' && atLineStart) {
      inPreproc = true;
      push(Tok::Punct, "#", i);
      ++i;
      atLineStart = false;
      continue;
    }
    atLineStart = false;

    // Number first: digit separators (1'000) must not open a char literal,
    // and 1.5e+3 must not shed '+' as punctuation.
    if (isDigit(c) || (c == '.' && i + 1 < n && isDigit(text[i + 1]))) {
      const std::size_t start = i;
      std::string num;
      while (i < n) {
        const char d = text[i];
        if (isIdentChar(d) || d == '.' || d == '\'') {
          num += d;
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !num.empty()) {
          const char prev = num.back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            num += d;
            ++i;
            continue;
          }
        }
        break;
      }
      push(Tok::Number, std::move(num), start);
      continue;
    }

    if (isIdentStart(c)) {
      const std::size_t start = i;
      std::string ident;
      while (i < n && isIdentChar(text[i])) ident += text[i++];
      // Raw string literal? The prefix R / u8R / uR / UR / LR glued to '"'.
      const bool rawPrefix = ident == "R" || ident == "u8R" || ident == "uR" ||
                             ident == "UR" || ident == "LR";
      if (rawPrefix && i < n && text[i] == '"') {
        ++i;  // consume the quote
        std::string delim;
        while (i < n && text[i] != '(' && delim.size() < 16) delim += text[i++];
        if (i < n) ++i;  // consume '('
        const std::string closer = ")" + delim + "\"";
        const std::size_t bodyStart = i;
        const std::size_t endPos = text.find(closer, i);
        std::string body;
        if (endPos == std::string::npos) {
          body = text.substr(bodyStart);  // unterminated: swallow the rest
          i = n;
        } else {
          body = text.substr(bodyStart, endPos - bodyStart);
          i = endPos + closer.size();
        }
        push(Tok::Str, std::move(body), start);
        continue;
      }
      push(Tok::Ident, std::move(ident), start);
      continue;
    }

    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i;
      ++i;
      std::string body;
      while (i < n && text[i] != quote && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) {
          body += text[i];
          body += text[i + 1];
          i += 2;
          continue;
        }
        body += text[i++];
      }
      if (i < n && text[i] == quote) ++i;  // tolerate unterminated literals
      push(quote == '"' ? Tok::Str : Tok::CharLit, std::move(body), start);
      continue;
    }

    // Punctuation. Only the two operators the rules inspect structurally
    // ("::" qualification, "->" member access) are fused; everything else is
    // a single character, so ">>" closing nested templates is just two ">".
    if (i + 1 < n) {
      const char d = text[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>')) {
        push(Tok::Punct, std::string{c, d}, i);
        i += 2;
        continue;
      }
    }
    push(Tok::Punct, std::string(1, c), i);
    ++i;
  }

  return out;
}

}  // namespace lktm::lint
