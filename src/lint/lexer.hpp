// A small, dependency-free C++ lexer for lktm_lint. It does not parse C++ —
// it produces the token stream the determinism rules need, getting right the
// parts a grep gate cannot: line splices (backslash-newline) anywhere,
// line and block comments (including block comments spanning lines), string
// and character literals with escapes, raw string literals R"delim(...)delim"
// with encoding prefixes, digit separators (1'000'000, which would otherwise
// open a bogus char literal), and preprocessor directives with continuations
// (tokens inside a directive are marked so rules can ignore #include lines).
//
// Comments are not tokens; they are scanned for `lktm-lint: allow(...)`
// suppression directives, which are returned alongside the token stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lktm::lint {

enum class Tok : std::uint8_t { Ident, Number, Str, CharLit, Punct, End };

struct Token {
  Tok kind = Tok::End;
  /// Identifier/number spelling; punctuation spelling ("::" and "->" are
  /// single tokens, everything else one character); for Str/CharLit the
  /// literal's *body* with escapes left unprocessed.
  std::string text;
  unsigned line = 0;     ///< 1-based line of the token's first character
  bool preproc = false;  ///< token sits inside a preprocessor directive
};

/// One `lktm-lint: allow(rule[,rule]) -- reason` comment directive. A
/// directive with no reason (or an unparsable rule list) suppresses nothing;
/// the rule engine turns it into a `suppression-needs-reason` finding.
struct Suppression {
  std::vector<std::string> rules;
  std::string reason;
  unsigned firstLine = 0;  ///< line the comment starts on
  unsigned lastLine = 0;   ///< line the comment ends on (== firstLine for //)
};

struct SourceFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<std::string> lines;  ///< raw source lines, for finding excerpts
};

SourceFile lexFile(const std::string& src);

}  // namespace lktm::lint
