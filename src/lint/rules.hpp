// The determinism-and-protocol rule engine behind tools/lktm_lint. Files are
// classified into zones by their repo-relative path, and each rule applies
// per zone:
//
//   deterministic  src/{sim,coherence,core,cpu,mem,noc,runtime,workloads,
//                  verify} — code that runs inside simulated time, whose
//                  behavior must be a pure function of (config, seed)
//   host           src/{config,stats,lint}, tools/, tests/, bench/,
//                  examples/ — orchestration, reporting and harness code
//
// Rule catalog (see DESIGN.md §15 for the full rationale):
//   no-wall-clock            wall/steady clock reads outside the built-in
//                            allowlist (Engine's wall deadline, the distrib
//                            heartbeat/lease machinery) — both zones
//   no-unordered-iteration   std::unordered_map/set declared or iterated in
//                            the deterministic zone — use FlatLineTable /
//                            FlatLineSet or sorted extraction
//   no-unseeded-randomness   rand()/srand()/std::random_device anywhere;
//                            all randomness derives from jobRunSeed
//   no-pointer-order         hashing/ordering on pointer values in protocol
//                            state (std::hash<T*>, std::less<T*>,
//                            reinterpret_cast to [u]intptr_t) — deterministic
//                            zone
//   no-retired-symbols       the ad-hoc counter structs PR 4 deleted
//                            (TxCounters/ProtocolCounters/BreakdownSummary)
//                            and their member chains (.tx.*, .protocol.<raw
//                            field>) — both zones
//   stat-path-literal        StatRegistry paths must be string literals or
//                            built with stats::statPath(...) — both zones
//   suppression-needs-reason a `lktm-lint: allow(...)` directive without a
//                            `-- reason` (or without a rule list); such a
//                            directive suppresses nothing
//
// Findings are suppressible with `// lktm-lint: allow(<rule>) -- <reason>`
// on the same line, the line above, or a block comment whose span ends on
// the line above. The reason is mandatory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lktm::lint {

/// Schema stamp of the JSON findings artifact (writeArtifact).
inline constexpr char kLintSchema[] = "lktm.lint.v1";

enum class Zone : std::uint8_t { Deterministic, Host };

const char* toString(Zone z);

/// Zone of a repo-relative path (forward slashes, no leading "./").
Zone zoneForPath(const std::string& relPath);

struct Finding {
  std::string file;
  unsigned line = 0;
  std::string rule;
  std::string excerpt;  ///< the offending source line, whitespace-trimmed
  Zone zone = Zone::Host;
  bool suppressed = false;
  std::string reason;  ///< the allow() directive's reason when suppressed
};

/// Every rule id, sorted — the artifact's "rules" block and --list-rules.
const std::vector<std::string>& allRules();
bool isRule(const std::string& name);

struct LintOptions {
  /// Restrict to these rule ids; empty means every rule.
  std::vector<std::string> rules;
};

/// Lint one file's contents. `relPath` picks the zone and is recorded in the
/// findings verbatim. Findings come back sorted by (line, rule).
std::vector<Finding> lintSource(const std::string& relPath,
                                const std::string& src,
                                const LintOptions& opts = {});

/// An aggregated lint run over many files, ready for the artifact writer.
struct LintRun {
  std::vector<Finding> findings;   ///< sorted by (file, line, rule)
  std::vector<std::string> rules;  ///< active rule ids, sorted
  std::size_t filesScanned = 0;

  std::size_t suppressedCount() const;
  std::size_t unsuppressedCount() const;
};

/// Emit the lktm.lint.v1 artifact through the deterministic raw-literal JSON
/// writer: same findings, same bytes, on any host.
void writeArtifact(std::ostream& os, const LintRun& run);

}  // namespace lktm::lint
