// Built-in seeded-violation fixtures for lktm_lint, mirroring lktm_check's
// --inject-bug: every rule has at least one positive fixture (a planted
// violation the linter MUST flag) and one negative twin (clean code that MUST
// NOT be flagged — typically the same construct hidden in a string, comment
// or raw literal, or moved to a zone where the rule does not apply). The
// `--self-test` CLI flag runs them all; CI fails if any plant goes uncaught
// or any clean fixture trips. tests/test_lint.cpp reuses the same table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lktm::lint {

struct SelfTestCase {
  std::string name;      ///< unique, "<rule>/<variant>"
  std::string rule;      ///< the rule under test
  std::string relPath;   ///< fake path (selects the zone)
  std::string source;    ///< fixture body
  bool expectFinding;    ///< true: the rule must fire; false: must stay clean
  bool expectSuppressed; ///< when a finding is expected: must it be suppressed?
};

const std::vector<SelfTestCase>& selfTestCases();

/// Run every fixture, reporting per-case PASS/FAIL to `os`.
/// Returns true iff all pass.
bool runSelfTest(std::ostream& os);

}  // namespace lktm::lint
