// Set-associative cache data/tag array with LRU replacement and per-line
// transactional read/write bits (the L1 read/write-set tracking of best-effort
// HTM). Pure storage: all protocol policy lives in the controllers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/state_hash.hpp"
#include "sim/types.hpp"

namespace lktm::mem {

enum class MesiState : std::uint8_t { I = 0, S, E, M };

const char* toString(MesiState s);

/// One cache line's worth of data, word-granular so workloads can store and
/// load real values (enables end-to-end atomicity checking).
using LineData = std::array<std::uint64_t, kWordsPerLine>;

struct CacheEntry {
  LineAddr line = 0;
  MesiState state = MesiState::I;
  bool dirty = false;    ///< holds data newer than the LLC copy
  bool txRead = false;   ///< in the current transaction's read set
  bool txWrite = false;  ///< speculatively written by the current transaction
  LineData data{};
  std::uint64_t lru = 0;  ///< last-touch stamp, larger == more recent

  bool valid() const { return state != MesiState::I; }
  bool transactional() const { return txRead || txWrite; }

  void invalidate() {
    state = MesiState::I;
    dirty = txRead = txWrite = false;
  }
};

struct CacheGeometry {
  std::uint64_t sizeBytes = 32 * 1024;
  unsigned assoc = 4;

  unsigned numSets() const {
    return static_cast<unsigned>(sizeBytes / kLineBytes / assoc);
  }
};

class CacheArray {
 public:
  explicit CacheArray(CacheGeometry geo);

  unsigned numSets() const { return sets_; }
  unsigned assoc() const { return geo_.assoc; }
  unsigned setOf(LineAddr line) const { return static_cast<unsigned>(line % sets_); }

  /// Returns the valid entry holding `line`, or nullptr.
  CacheEntry* find(LineAddr line);
  const CacheEntry* find(LineAddr line) const;

  /// Contiguous view of one set's ways (entries_ is row-major per set).
  struct WaySpan {
    CacheEntry* first = nullptr;
    unsigned count = 0;

    CacheEntry* begin() const { return first; }
    CacheEntry* end() const { return first + count; }
    unsigned size() const { return count; }
    CacheEntry& operator[](unsigned i) { return first[i]; }
  };

  /// All ways of the set `line` maps to (valid or not). No allocation: the
  /// span aliases the backing array and stays valid for the array's lifetime.
  WaySpan ways(LineAddr line);

  /// First invalid way of the set, or nullptr if the set is full.
  CacheEntry* invalidWay(LineAddr line);

  /// Least-recently-used valid way satisfying `pred`, or nullptr.
  CacheEntry* lruWay(LineAddr line, const std::function<bool(const CacheEntry&)>& pred);

  /// Mark `e` as most recently used.
  void touch(CacheEntry& e) { e.lru = ++stamp_; }

  /// Install `line` into the given (previously victimized) entry.
  void install(CacheEntry& e, LineAddr line, MesiState st, const LineData& data);

  /// Iterate over every valid entry (used for commit/abort walks & checkers).
  void forEachValid(const std::function<void(CacheEntry&)>& fn);
  void forEachValid(const std::function<void(const CacheEntry&)>& fn) const;

  /// Fold the array's behaviour-relevant state into a model-checker
  /// fingerprint: per (set, way) the tag/state/dirty/tx bits and data, plus
  /// the way's LRU *rank* within its set. Raw LRU stamps grow monotonically
  /// and would make every state unique; only their relative order steers
  /// victim selection, so only the rank is hashed.
  void hashState(sim::StateHasher& h) const;

  std::uint64_t countIf(const std::function<bool(const CacheEntry&)>& pred) const;

 private:
  CacheGeometry geo_;
  unsigned sets_;
  std::vector<CacheEntry> entries_;  // sets_ x assoc, row-major
  std::uint64_t stamp_ = 0;

  CacheEntry* base(unsigned set) { return entries_.data() + static_cast<std::size_t>(set) * geo_.assoc; }
  const CacheEntry* base(unsigned set) const {
    return entries_.data() + static_cast<std::size_t>(set) * geo_.assoc;
  }
};

}  // namespace lktm::mem
