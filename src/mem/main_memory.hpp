// Word-granular backing store for the simulated physical address space.
// Sparse (hash map of lines) so 8 GB of simulated DRAM costs only what is
// touched. Timing (the 100-cycle latency of Table I) is applied by the
// directory controller, not here.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/cache_array.hpp"
#include "sim/types.hpp"
#include "stats/registry.hpp"

namespace lktm::mem {

class MainMemory {
 public:
  /// Opt-in instrumentation: registers "mem.line_reads"/"mem.line_writes" in
  /// `reg`. Workload setup and invariant checks that poke memory directly via
  /// the word accessors are not counted — only line traffic from the
  /// directory. Unattached (unit-test) instances count nothing.
  void attachStats(stats::StatRegistry& reg);

  /// Read a whole line; absent lines read as zero.
  LineData readLine(LineAddr line) const;

  void writeLine(LineAddr line, const LineData& data);

  /// Word accessors for workload initialization and final invariant checks.
  std::uint64_t readWord(Addr addr) const;
  void writeWord(Addr addr, std::uint64_t value);

  std::size_t touchedLines() const { return store_.size(); }

 private:
  // lktm-lint: allow(no-unordered-iteration) -- keyed lookup only, never iterated
  std::unordered_map<LineAddr, LineData> store_;
  stats::Counter* lineReads_ = nullptr;
  stats::Counter* lineWrites_ = nullptr;
};

}  // namespace lktm::mem
