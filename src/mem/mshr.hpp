// Miss Status Holding Registers. An in-order single-issue core has one demand
// miss outstanding at a time, but the recovery mechanism requires rejected
// requests to be *held* in the MSHR ("mark it as incomplete, restore the state
// before sending the request") until a retry timer or wakeup message fires, so
// entries have an explicit little lifecycle.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/flat_table.hpp"
#include "sim/types.hpp"

namespace lktm::mem {

enum class MshrState : std::uint8_t {
  Issued,         ///< request is out on the network
  HeldRejected,   ///< rejected by the recovery mechanism; waiting to retry
  WaitingWakeup,  ///< held and subscribed to a wakeup message
};

const char* toString(MshrState s);

struct MshrEntry {
  LineAddr line = 0;
  bool isWrite = false;       ///< GETX/UPGRADE vs GETS
  bool fromTx = false;        ///< issued from inside a transaction
  MshrState state = MshrState::Issued;
  bool squashed = false;      ///< owning transaction aborted; complete silently
  bool earlyWakeup = false;   ///< wakeup raced ahead of the reject response
  unsigned retries = 0;       ///< times this request has been re-sent
  std::uint64_t priority = 0; ///< requester priority sampled at (re)issue
};

/// Keyed by line address; at most one entry per line.
class MshrFile {
 public:
  explicit MshrFile(unsigned capacity = 8) : capacity_(capacity) {}

  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  MshrEntry& allocate(LineAddr line);
  MshrEntry* find(LineAddr line);
  const MshrEntry* find(LineAddr line) const;
  void release(LineAddr line);

  /// Visits entries in ascending line order (the old std::map order), for
  /// walks whose effects depend on visit order.
  template <typename Fn>
  void forEach(Fn&& fn) {
    entries_.forEachOrdered([&](LineAddr, MshrEntry& e) { fn(e); });
  }
  template <typename Fn>
  void forEach(Fn&& fn) const {
    entries_.forEachOrdered([&](LineAddr, const MshrEntry& e) { fn(e); });
  }

  /// Hash-order visit for order-independent walks (set-busy scans, squash
  /// flag sweeps) — skips the ordered walk's sort on the miss hot path.
  template <typename Fn>
  void forEachUnordered(Fn&& fn) {
    entries_.forEachUnordered([&](LineAddr, MshrEntry& e) { fn(e); });
  }

 private:
  unsigned capacity_;
  sim::FlatLineTable<MshrEntry> entries_;
};

}  // namespace lktm::mem
