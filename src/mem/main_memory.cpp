#include "mem/main_memory.hpp"

namespace lktm::mem {

void MainMemory::attachStats(stats::StatRegistry& reg) {
  lineReads_ = &reg.counter("mem.line_reads", "DRAM line fetches");
  lineWrites_ = &reg.counter("mem.line_writes", "DRAM line writebacks");
}

LineData MainMemory::readLine(LineAddr line) const {
  if (lineReads_ != nullptr) ++*lineReads_;
  auto it = store_.find(line);
  if (it == store_.end()) return LineData{};
  return it->second;
}

void MainMemory::writeLine(LineAddr line, const LineData& data) {
  if (lineWrites_ != nullptr) ++*lineWrites_;
  store_[line] = data;
}

std::uint64_t MainMemory::readWord(Addr addr) const {
  auto it = store_.find(lineOf(addr));
  if (it == store_.end()) return 0;
  return it->second[wordOf(addr)];
}

void MainMemory::writeWord(Addr addr, std::uint64_t value) {
  store_[lineOf(addr)][wordOf(addr)] = value;
}

}  // namespace lktm::mem
