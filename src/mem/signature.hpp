// LogTM-SE style address signatures: fixed-size Bloom filters over line
// addresses. Used by the HTMLock mechanism's LLC overflow signatures
// (OfRdSig / OfWrSig): conservative membership, never false negatives.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lktm::mem {

class BloomSignature {
 public:
  /// `bits` must be a power of two; `hashes` independent H3-style hashes.
  explicit BloomSignature(unsigned bits = 2048, unsigned hashes = 4);

  void insert(LineAddr line);

  /// True if `line` *may* have been inserted (false positives possible,
  /// false negatives impossible).
  bool mayContain(LineAddr line) const;

  void clear();
  bool empty() const { return population_ == 0; }

  unsigned bits() const { return static_cast<unsigned>(filter_.size()); }
  std::uint64_t population() const { return population_; }

  /// Expected false-positive probability at the current population.
  double falsePositiveRate() const;

 private:
  std::vector<bool> filter_;
  unsigned hashes_;
  std::uint64_t population_ = 0;  ///< number of insert() calls since clear()

  std::uint64_t hash(LineAddr line, unsigned i) const;
};

}  // namespace lktm::mem
