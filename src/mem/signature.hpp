// LogTM-SE style address signatures: fixed-size Bloom filters over line
// addresses. Used by the HTMLock mechanism's LLC overflow signatures
// (OfRdSig / OfWrSig): conservative membership, never false negatives.
//
// The filter is a flat array of 64-bit words. All k probe indices derive
// from ONE mix of the line address (batched H3: split the mixed word into
// two halves and stride, the classic double-hashing construction), so an
// insert or a probe costs a single multiply-mix instead of k of them, and
// bit tests are word loads instead of std::vector<bool> bit gymnastics.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lktm::mem {

class BloomSignature {
 public:
  /// `bits` must be a power of two; `hashes` independent H3-style probes.
  explicit BloomSignature(unsigned bits = 2048, unsigned hashes = 4);

  void insert(LineAddr line) {
    const auto [h1, h2] = probeSeed(line);
    const std::uint64_t mask = bits_ - 1;
    switch (hashes_) {
      case 2: return insertK<2>(h1, h2, mask);
      case 4: return insertK<4>(h1, h2, mask);
      default: return insertK<0>(h1, h2, mask);
    }
  }

  /// True if `line` *may* have been inserted (false positives possible,
  /// false negatives impossible).
  bool mayContain(LineAddr line) const {
    if (population_ == 0) return false;
    const auto [h1, h2] = probeSeed(line);
    const std::uint64_t mask = bits_ - 1;
    switch (hashes_) {
      case 2: return containsK<2>(h1, h2, mask);
      case 4: return containsK<4>(h1, h2, mask);
      default: return containsK<0>(h1, h2, mask);
    }
  }

  void clear();
  bool empty() const { return population_ == 0; }

  unsigned bits() const { return bits_; }

  /// Number of DISTINCT bits currently set in the filter. (Pre-PR-2 this
  /// counted raw insert() calls, so duplicate inserts inflated the
  /// falsePositiveRate() estimate; distinct-bit occupancy is what the false
  /// positive probability actually depends on.)
  std::uint64_t population() const { return population_; }

  /// Expected false-positive probability at the current occupancy: a probe
  /// hits k independent bits, each set with probability population/bits.
  double falsePositiveRate() const;

  /// The raw filter words, for state fingerprints (the bit pattern IS the
  /// behaviour-relevant state; two filters with equal words reject the same
  /// addresses).
  const std::vector<std::uint64_t>& rawWords() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
  unsigned bits_;
  unsigned hashes_;
  std::uint64_t population_ = 0;  ///< distinct set bits (see population())

  /// Batched H3: one mix yields the base index and the (odd) stride that
  /// generate all k probe positions. Line addresses are low-entropy (small,
  /// sequential), and a single odd-constant multiply smears them across the
  /// high bits; the fold brings those down into the index range.
  std::pair<std::uint64_t, std::uint64_t> probeSeed(LineAddr line) const {
    std::uint64_t h = (line + 0xda942042e4dd58b5ull) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    // Low half seeds the first index, high half (forced odd) is the stride:
    // index_i = h1 + i*h2 mod bits. An odd stride visits distinct positions
    // for all i < bits, so the k probes never degenerate onto one bit.
    return {h, (h >> 32) | 1u};
  }

  /// Fixed-trip-count probe kernels (K == 0 falls back to the runtime bound)
  /// so the compiler unrolls the loop for the configured k == 4 shape.
  template <unsigned K>
  void insertK(std::uint64_t h1, std::uint64_t h2, std::uint64_t mask) {
    const unsigned k = K == 0 ? hashes_ : K;
    for (unsigned i = 0; i < k; ++i) {
      const std::uint64_t bit = (h1 + i * h2) & mask;
      std::uint64_t& w = words_[bit >> 6];
      const std::uint64_t b = std::uint64_t{1} << (bit & 63);
      population_ += (w & b) == 0;  // count distinct bits only
      w |= b;
    }
  }

  template <unsigned K>
  bool containsK(std::uint64_t h1, std::uint64_t h2, std::uint64_t mask) const {
    const unsigned k = K == 0 ? hashes_ : K;
    for (unsigned i = 0; i < k; ++i) {
      const std::uint64_t bit = (h1 + i * h2) & mask;
      if ((words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) return false;
    }
    return true;
  }
};

}  // namespace lktm::mem
