#include "mem/mshr.hpp"

namespace lktm::mem {

const char* toString(MshrState s) {
  switch (s) {
    case MshrState::Issued: return "Issued";
    case MshrState::HeldRejected: return "HeldRejected";
    case MshrState::WaitingWakeup: return "WaitingWakeup";
  }
  return "?";
}

MshrEntry& MshrFile::allocate(LineAddr line) {
  if (full()) throw std::runtime_error("MSHR file full");
  auto [entry, inserted] = entries_.tryEmplace(line);
  if (!inserted) throw std::runtime_error("MSHR already allocated for line");
  entry->line = line;
  return *entry;
}

MshrEntry* MshrFile::find(LineAddr line) { return entries_.find(line); }

const MshrEntry* MshrFile::find(LineAddr line) const { return entries_.find(line); }

void MshrFile::release(LineAddr line) { entries_.erase(line); }

}  // namespace lktm::mem
