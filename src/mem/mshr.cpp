#include "mem/mshr.hpp"

namespace lktm::mem {

const char* toString(MshrState s) {
  switch (s) {
    case MshrState::Issued: return "Issued";
    case MshrState::HeldRejected: return "HeldRejected";
    case MshrState::WaitingWakeup: return "WaitingWakeup";
  }
  return "?";
}

MshrEntry& MshrFile::allocate(LineAddr line) {
  if (full()) throw std::runtime_error("MSHR file full");
  auto [it, inserted] = entries_.try_emplace(line);
  if (!inserted) throw std::runtime_error("MSHR already allocated for line");
  it->second.line = line;
  return it->second;
}

MshrEntry* MshrFile::find(LineAddr line) {
  auto it = entries_.find(line);
  return it == entries_.end() ? nullptr : &it->second;
}

void MshrFile::release(LineAddr line) { entries_.erase(line); }

}  // namespace lktm::mem
