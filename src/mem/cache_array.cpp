#include "mem/cache_array.hpp"

#include <cassert>
#include <stdexcept>

namespace lktm::mem {

const char* toString(MesiState s) {
  switch (s) {
    case MesiState::I: return "I";
    case MesiState::S: return "S";
    case MesiState::E: return "E";
    case MesiState::M: return "M";
  }
  return "?";
}

namespace {
bool isPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheArray::CacheArray(CacheGeometry geo) : geo_(geo), sets_(geo.numSets()) {
  if (sets_ == 0 || !isPow2(sets_)) {
    throw std::invalid_argument("cache geometry must yield a power-of-two set count");
  }
  entries_.resize(static_cast<std::size_t>(sets_) * geo_.assoc);
}

CacheEntry* CacheArray::find(LineAddr line) {
  CacheEntry* b = base(setOf(line));
  for (unsigned w = 0; w < geo_.assoc; ++w) {
    if (b[w].valid() && b[w].line == line) return &b[w];
  }
  return nullptr;
}

const CacheEntry* CacheArray::find(LineAddr line) const {
  const CacheEntry* b = base(setOf(line));
  for (unsigned w = 0; w < geo_.assoc; ++w) {
    if (b[w].valid() && b[w].line == line) return &b[w];
  }
  return nullptr;
}

CacheArray::WaySpan CacheArray::ways(LineAddr line) {
  return WaySpan{base(setOf(line)), geo_.assoc};
}

CacheEntry* CacheArray::invalidWay(LineAddr line) {
  CacheEntry* b = base(setOf(line));
  for (unsigned w = 0; w < geo_.assoc; ++w) {
    if (!b[w].valid()) return &b[w];
  }
  return nullptr;
}

CacheEntry* CacheArray::lruWay(LineAddr line,
                               const std::function<bool(const CacheEntry&)>& pred) {
  CacheEntry* b = base(setOf(line));
  CacheEntry* best = nullptr;
  for (unsigned w = 0; w < geo_.assoc; ++w) {
    if (!b[w].valid() || !pred(b[w])) continue;
    if (best == nullptr || b[w].lru < best->lru) best = &b[w];
  }
  return best;
}

void CacheArray::install(CacheEntry& e, LineAddr line, MesiState st, const LineData& data) {
  assert(!e.valid());
  assert(setOf(line) == static_cast<unsigned>((&e - entries_.data()) / geo_.assoc));
  e.line = line;
  e.state = st;
  e.dirty = false;
  e.txRead = e.txWrite = false;
  e.data = data;
  touch(e);
}

void CacheArray::forEachValid(const std::function<void(CacheEntry&)>& fn) {
  for (auto& e : entries_) {
    if (e.valid()) fn(e);
  }
}

void CacheArray::forEachValid(const std::function<void(const CacheEntry&)>& fn) const {
  for (const auto& e : entries_) {
    if (e.valid()) fn(e);
  }
}

void CacheArray::hashState(sim::StateHasher& h) const {
  h.section(0x11);
  for (unsigned set = 0; set < sets_; ++set) {
    const CacheEntry* b = base(set);
    for (unsigned w = 0; w < geo_.assoc; ++w) {
      const CacheEntry& e = b[w];
      if (!e.valid()) {
        h.put(0);
        continue;
      }
      // LRU rank: how many valid ways of this set were touched before e.
      unsigned rank = 0;
      for (unsigned o = 0; o < geo_.assoc; ++o) {
        if (o != w && b[o].valid() && b[o].lru < e.lru) ++rank;
      }
      h.put(1);
      h.put(e.line);
      h.put(static_cast<std::uint64_t>(e.state) | (e.dirty ? 8u : 0u) |
            (e.txRead ? 16u : 0u) | (e.txWrite ? 32u : 0u));
      h.put(rank);
      for (std::uint64_t word : e.data) h.put(word);
    }
  }
}

std::uint64_t CacheArray::countIf(const std::function<bool(const CacheEntry&)>& pred) const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) {
    if (e.valid() && pred(e)) ++n;
  }
  return n;
}

}  // namespace lktm::mem
