#include "mem/signature.hpp"

#include <cmath>
#include <stdexcept>

namespace lktm::mem {

namespace {
bool isPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

BloomSignature::BloomSignature(unsigned bits, unsigned hashes)
    : words_(bits / 64 + (bits < 64 ? 1 : 0), 0), bits_(bits), hashes_(hashes) {
  if (!isPow2(bits)) throw std::invalid_argument("signature bits must be a power of two");
  if (hashes == 0) throw std::invalid_argument("signature needs at least one hash");
}

void BloomSignature::clear() {
  if (population_ != 0) words_.assign(words_.size(), 0);
  population_ = 0;
}

double BloomSignature::falsePositiveRate() const {
  const double density = static_cast<double>(population_) / static_cast<double>(bits_);
  return std::pow(density, static_cast<double>(hashes_));
}

}  // namespace lktm::mem
