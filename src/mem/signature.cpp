#include "mem/signature.hpp"

#include <cmath>
#include <stdexcept>

namespace lktm::mem {

namespace {
bool isPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

BloomSignature::BloomSignature(unsigned bits, unsigned hashes)
    : filter_(bits, false), hashes_(hashes) {
  if (!isPow2(bits)) throw std::invalid_argument("signature bits must be a power of two");
  if (hashes == 0) throw std::invalid_argument("signature needs at least one hash");
}

std::uint64_t BloomSignature::hash(LineAddr line, unsigned i) const {
  // Seed each hash with a distinct odd constant; mix for avalanche.
  return mix(line * 0x9e3779b97f4a7c15ull + (2ull * i + 1) * 0xda942042e4dd58b5ull) &
         (filter_.size() - 1);
}

void BloomSignature::insert(LineAddr line) {
  for (unsigned i = 0; i < hashes_; ++i) filter_[hash(line, i)] = true;
  ++population_;
}

bool BloomSignature::mayContain(LineAddr line) const {
  if (population_ == 0) return false;
  for (unsigned i = 0; i < hashes_; ++i) {
    if (!filter_[hash(line, i)]) return false;
  }
  return true;
}

void BloomSignature::clear() {
  filter_.assign(filter_.size(), false);
  population_ = 0;
}

double BloomSignature::falsePositiveRate() const {
  const double k = hashes_;
  const double m = static_cast<double>(filter_.size());
  const double n = static_cast<double>(population_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace lktm::mem
