// Hybrid HTM/STM: best-effort HTM whose capacity/conflict/fault fallback is
// the TL2 software path instead of the global lock — the regime "On the Cost
// of Concurrency in Hybrid Transactional Memory" argues is the interesting
// one, because software transactions keep running concurrently where a
// global-lock fallback would serialize everything.
//
// HW/SW conflict detection rides on the coherence protocol plus the TL2
// metadata (no extra hardware):
//  * An HTM attempt reads each accessed line's orec before touching the line,
//    aborting (kAbortCodeLockHeld -> mutex) if an STM committer holds it.
//    That puts the orec in the HTM read set, so an STM commit that later
//    locks it aborts the hardware transaction through plain coherence.
//  * The attempt also reads the global commit clock at start (subscribing to
//    it) and, if it wrote anything, republishes clock = rv + 1 inside the
//    transaction, stamping each written line's orec with that version. The
//    subscription guarantees the clock is still rv at commit, so stamps never
//    exceed the clock; stamps and data publish atomically at xend; and an
//    aborted attempt rolls its stamps back with the rest of its write set.
//  * STM transactions are plain TL2 and need no awareness of HTM at all.
//
// After maxRetries transient aborts — or immediately on a persistent cause
// (overflow, fault) — the transaction switches to the TL2 path for good,
// mirroring the lock-fallback discipline of Listing 1.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/backends/tl2.hpp"

namespace lktm::tm {

/// xbegin status / retry counter for the hybrid HTM attempt loop (dead once
/// the STM fallback engages, so they may overlap the Tl2Emitter's scratch).
inline constexpr unsigned kRegHyStatus = 26;
inline constexpr unsigned kRegHyRetries = 25;

class HybridBackend final : public Backend {
 public:
  explicit HybridBackend(const BackendConfig& cfg);

  const char* name() const override { return "hybrid"; }
  bool usesStmScratch() const override { return true; }

  void emitProgramStart(cpu::ProgramBuilder& b, unsigned tid,
                        unsigned nthreads) override;
  void emitTransaction(cpu::ProgramBuilder& b, const BodyFn& body) override;
  void emitRead(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                unsigned valReg) override;
  void emitWrite(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                 unsigned valReg) override;
  void emitUpdate(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                  unsigned valReg, std::int64_t delta) override;
  [[noreturn]] void emitReadDyn(cpu::ProgramBuilder& b, unsigned rd,
                                unsigned addrReg, std::int64_t off) override;
  [[noreturn]] void emitWriteDyn(cpu::ProgramBuilder& b, unsigned addrReg,
                                 unsigned valReg, std::int64_t off) override;

 private:
  Tl2Emitter stm_;
  bool htmMode_ = false;  ///< which pass of the body is being emitted
  bool htmWrote_ = false;
  std::vector<Addr> htmChecked_;  ///< orecs already guarded this attempt
  std::vector<Addr> htmStamped_;  ///< orecs already stamped this attempt

  void checkOrec(cpu::ProgramBuilder& b, Addr addr);
  void stampOrec(cpu::ProgramBuilder& b, Addr addr);
};

}  // namespace lktm::tm
