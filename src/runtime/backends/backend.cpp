#include "runtime/backends/backend.hpp"

#include <stdexcept>

#include "runtime/backends/hybrid.hpp"
#include "runtime/backends/lockiller.hpp"
#include "runtime/backends/tl2.hpp"

namespace lktm::tm {

const std::vector<BackendInfo>& backendRegistry() {
  static const std::vector<BackendInfo> kRegistry = {
      {"lockiller",
       "HTM lock elision per the system's Table II policy (Listings 1/2)",
       nullptr, nullptr},
      {"cgl", "plain coarse-grained locking, HTM never engaged", nullptr,
       nullptr},
      {"tl2",
       "TL2-style software TM: versioned orecs, global commit clock, redo log",
       "TL2-STM",
       "software TM baseline: TL2 global-version-clock, commit-time locking"},
      {"hybrid",
       "best-effort HTM falling back to the TL2 software path on "
       "capacity/conflict aborts",
       "Hybrid-TM",
       "best-effort HTM with a TL2 software fallback instead of the global "
       "lock"},
  };
  return kRegistry;
}

std::vector<std::string> backendNames() {
  std::vector<std::string> names;
  names.reserve(backendRegistry().size());
  for (const BackendInfo& info : backendRegistry()) names.emplace_back(info.name);
  return names;
}

bool isBackendName(const std::string& name) {
  return backendInfo(name) != nullptr;
}

const BackendInfo* backendInfo(const std::string& name) {
  for (const BackendInfo& info : backendRegistry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

std::string backendNameList() {
  std::string out;
  for (const BackendInfo& info : backendRegistry()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

std::string defaultBackendFor(const core::TmPolicy& policy) {
  return policy.htmEnabled ? "lockiller" : "cgl";
}

std::unique_ptr<Backend> makeBackend(const std::string& name,
                                     const BackendConfig& cfg) {
  if (name == "lockiller") {
    return std::make_unique<LockillerBackend>(cfg, rt::runtimeFor(cfg.policy),
                                              "lockiller");
  }
  if (name == "cgl") {
    return std::make_unique<LockillerBackend>(cfg, rt::RuntimeKind::CGL, "cgl");
  }
  if (name == "tl2") return std::make_unique<Tl2Backend>(cfg);
  if (name == "hybrid") return std::make_unique<HybridBackend>(cfg);
  throw std::invalid_argument("unknown TM backend '" + name +
                              "' (valid: " + backendNameList() + ")");
}

}  // namespace lktm::tm
