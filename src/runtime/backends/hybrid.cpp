#include "runtime/backends/hybrid.hpp"

#include <algorithm>
#include <stdexcept>

using lktm::cpu::ProgramBuilder;

namespace lktm::tm {

HybridBackend::HybridBackend(const BackendConfig& cfg)
    : Backend(cfg.retry), stm_(cfg.retry) {
  if (!cfg.policy.htmEnabled) {
    throw std::invalid_argument(
        "hybrid backend: the system's policy disables HTM (htmEnabled=false); "
        "use the tl2 backend for a pure-software configuration");
  }
}

void HybridBackend::emitProgramStart(ProgramBuilder& b, unsigned tid,
                                     unsigned /*nthreads*/) {
  stm_.setThread(tid);
  stm_.emitSeedInit(b);  // the STM fallback's backoff jitter needs its PRNG
}

// Guard one line's orec before the HTM attempt touches the line. The load
// puts the orec in the hardware read set — an STM committer locking it later
// aborts this transaction through plain coherence — and a currently locked
// orec means a writeback is in flight, so the attempt aborts immediately
// (kAbortCodeLockHeld -> accounted as a mutex abort, like Listing 1's
// lock-is-acquired xabort).
void HybridBackend::checkOrec(ProgramBuilder& b, Addr addr) {
  const Addr oa = orecAddrOf(addr);
  if (std::find(htmChecked_.begin(), htmChecked_.end(), oa) !=
      htmChecked_.end()) {
    return;
  }
  htmChecked_.push_back(oa);
  b.li(kRegT1, static_cast<std::int64_t>(oa));
  b.load(kRegT2, kRegT1);
  b.li(kRegT3, static_cast<std::int64_t>(kOrecLockedBit));
  b.andb(kRegT3, kRegT2, kRegT3);
  const auto clean = b.beq(kRegT3, cpu::kZeroReg);
  b.xabort(cpu::kAbortCodeLockHeld);
  b.patchTarget(clean, b.here());
}

// Stamp a written line's orec with (rv + 1) << 1 inside the transaction. The
// clock subscription guarantees the clock is still rv at commit, so the stamp
// never exceeds the published clock; the stamp is speculative state, rolled
// back with the rest of the write set if the attempt aborts.
void HybridBackend::stampOrec(ProgramBuilder& b, Addr addr) {
  const Addr oa = orecAddrOf(addr);
  if (std::find(htmStamped_.begin(), htmStamped_.end(), oa) !=
      htmStamped_.end()) {
    return;
  }
  htmStamped_.push_back(oa);
  b.addi(kRegT2, kRegRv, 1);
  b.add(kRegT2, kRegT2, kRegT2);  // encodeOrec(rv + 1)
  b.li(kRegT1, static_cast<std::int64_t>(oa));
  b.store(kRegT1, kRegT2);
}

void HybridBackend::emitTransaction(ProgramBuilder& b, const BodyFn& body) {
  b.mark(TimeCat::Htm);
  b.li(kRegHyRetries, static_cast<std::int64_t>(retry_.maxRetries));
  const auto retryLoop = b.here();
  b.xbegin(kRegHyStatus);
  b.li(kRegT1, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto toHtm = b.beq(kRegHyStatus, kRegT1);
  // --- abort fall-through: every cause consumes an attempt (there is no
  // global lock to poll free; a mutex abort here means an STM writeback was
  // in flight, and backoff gives it time to release). ---
  b.addi(kRegHyRetries, kRegHyRetries, -1);
  std::vector<std::size_t> toStm;
  if (retry_.skipRetriesOnPersistent) {
    b.li(kRegT1, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Overflow)));
    toStm.push_back(b.beq(kRegHyStatus, kRegT1));
    b.li(kRegT1, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Fault)));
    toStm.push_back(b.beq(kRegHyStatus, kRegT1));
  }
  toStm.push_back(b.beq(kRegHyRetries, cpu::kZeroReg));
  b.compute(static_cast<std::int64_t>(retry_.backoff));
  b.jmp(retryLoop);

  // --- hardware attempt ---
  b.patchTarget(toHtm, b.here());
  htmMode_ = true;
  htmWrote_ = false;
  htmChecked_.clear();
  htmStamped_.clear();
  b.li(kRegT1, static_cast<std::int64_t>(kClockAddr));
  b.load(kRegRv, kRegT1);  // rv = clock, and subscribe to it: any STM commit
                           // bumping the clock aborts this attempt
  body(b);
  if (htmWrote_) {
    // Publish clock = rv + 1 atomically with the data at xend. Concurrent
    // HTM committers serialize through the clock subscription, so the clock
    // stays monotonic.
    b.addi(kRegT2, kRegRv, 1);
    b.li(kRegT1, static_cast<std::int64_t>(kClockAddr));
    b.store(kRegT1, kRegT2);
  }
  htmMode_ = false;
  b.xend();
  const auto toDone = b.jmp();

  // --- software fallback: the same body through the TL2 path ---
  const auto stmEntry = b.here();
  for (auto at : toStm) b.patchTarget(at, stmEntry);
  stm_.emitStmTransaction(b, body);

  b.patchTarget(toDone, b.here());
  b.mark(TimeCat::NonTran);
}

void HybridBackend::emitRead(ProgramBuilder& b, Addr addr, unsigned addrReg,
                             unsigned valReg) {
  if (!htmMode_) {
    stm_.read(b, addr, valReg);
    return;
  }
  checkOrec(b, addr);
  b.li(addrReg, static_cast<std::int64_t>(addr));
  b.load(valReg, addrReg);
}

void HybridBackend::emitWrite(ProgramBuilder& b, Addr addr, unsigned addrReg,
                              unsigned valReg) {
  if (!htmMode_) {
    stm_.write(b, addr, valReg);
    return;
  }
  checkOrec(b, addr);
  stampOrec(b, addr);
  htmWrote_ = true;
  b.li(addrReg, static_cast<std::int64_t>(addr));
  b.store(addrReg, valReg);
}

void HybridBackend::emitUpdate(ProgramBuilder& b, Addr addr, unsigned addrReg,
                               unsigned valReg, std::int64_t delta) {
  if (!htmMode_) {
    stm_.update(b, addr, valReg, delta);
    return;
  }
  checkOrec(b, addr);
  stampOrec(b, addr);
  htmWrote_ = true;
  b.li(addrReg, static_cast<std::int64_t>(addr));
  b.load(valReg, addrReg);
  b.addi(valReg, valReg, delta);
  b.store(addrReg, valReg);
}

void HybridBackend::emitReadDyn(ProgramBuilder& /*b*/, unsigned /*rd*/,
                                unsigned /*addrReg*/, std::int64_t /*off*/) {
  throw std::invalid_argument(
      "hybrid backend: data-dependent addresses (pointer chasing) are not "
      "supported — the STM fallback needs emission-time-static access sets; "
      "use the lockiller or cgl backend for this workload");
}

void HybridBackend::emitWriteDyn(ProgramBuilder& /*b*/, unsigned /*addrReg*/,
                                 unsigned /*valReg*/, std::int64_t /*off*/) {
  throw std::invalid_argument(
      "hybrid backend: data-dependent addresses (pointer chasing) are not "
      "supported — the STM fallback needs emission-time-static access sets; "
      "use the lockiller or cgl backend for this workload");
}

}  // namespace lktm::tm
