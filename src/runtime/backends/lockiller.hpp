// The first backend: the pre-refactor lock-elision runtime (tm_runtime.*)
// behind the Backend interface. Covers two registry rows:
//
//  * "lockiller" — the policy-driven flavour (CGL / BestEffort / HtmLock via
//    rt::runtimeFor), i.e. exactly what every Table II row emitted before
//    backends existed. Golden-trace tests pin that the instruction stream is
//    byte-identical to the pre-refactor tree.
//  * "cgl"       — the same wrapper with RuntimeKind::CGL forced, so
//    `-be=cgl` turns any system's sections into plain coarse-grained
//    locking regardless of its HTM policy.
#pragma once

#include "runtime/backends/backend.hpp"
#include "runtime/tm_runtime.hpp"

namespace lktm::tm {

class LockillerBackend final : public Backend {
 public:
  LockillerBackend(const BackendConfig& cfg, rt::RuntimeKind kind,
                   const char* name)
      : Backend(cfg.retry),
        runtime_(kind, cfg.lockAddr, cfg.retry),
        name_(name) {}

  const char* name() const override { return name_; }

  void emitProgramStart(cpu::ProgramBuilder& b, unsigned tid,
                        unsigned /*nthreads*/) override {
    runtime_.emitPrologue(b, tid);
  }

  void emitTransaction(cpu::ProgramBuilder& b, const BodyFn& body) override {
    runtime_.emitEnter(b);
    body(b);
    runtime_.emitExit(b);
  }

  void emitRead(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                unsigned valReg) override {
    b.li(addrReg, static_cast<std::int64_t>(addr));
    b.load(valReg, addrReg);
  }

  void emitWrite(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                 unsigned valReg) override {
    b.li(addrReg, static_cast<std::int64_t>(addr));
    b.store(addrReg, valReg);
  }

  void emitUpdate(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                  unsigned valReg, std::int64_t delta) override {
    b.li(addrReg, static_cast<std::int64_t>(addr));
    b.load(valReg, addrReg);
    b.addi(valReg, valReg, delta);
    b.store(addrReg, valReg);
  }

  void emitReadDyn(cpu::ProgramBuilder& b, unsigned rd, unsigned addrReg,
                   std::int64_t off) override {
    b.load(rd, addrReg, off);
  }

  void emitWriteDyn(cpu::ProgramBuilder& b, unsigned addrReg, unsigned valReg,
                    std::int64_t off) override {
    b.store(addrReg, valReg, off);
  }

  const rt::TmRuntime& runtime() const { return runtime_; }

 private:
  rt::TmRuntime runtime_;
  const char* name_;
};

}  // namespace lktm::tm
