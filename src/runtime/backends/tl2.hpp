// TL2-style software transactional memory as bytecode emission.
//
// Architecture (the classic global-version-clock design):
//  * a global commit clock (one word, kClockAddr);
//  * a table of versioned ownership records (orecs) keyed like FlatLineTable
//    (the same mixKey hash over the line address, masked to kNumOrecs);
//    an orec word encodes `version << 1 | locked`;
//  * per-thread redo logs and saved-version slots in a private scratch area;
//  * reads validate against the transaction's read version (rv = clock at
//    start) inline and again at commit; writes buffer into the redo log and
//    publish during a locked commit phase, program order, last write wins.
//
// Because workload access sets are static at emission time, the whole
// transaction — inline read checks, commit-time lock acquisition, read-set
// validation, writeback, release, and the abort/undo path — unrolls into
// straight-line bytecode with constant-folded addresses. Conflicts are
// resolved by try-lock + abort + randomized exponential backoff (an emitted
// per-thread xorshift64 jitters every delay — see kRegRnd below; no
// blocking, no deadlock); aborts are pulsed to the stats spine via Op::Note
// (kNoteStmAbortLock / kNoteStmAbortValidation) and commits via
// kNoteStmCommit.
//
// Simulated memory reads absent lines as zero, so the clock starts at 0 and
// every orec starts unlocked at version 0 — no initialization pass needed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/backends/backend.hpp"
#include "sim/flat_table.hpp"

namespace lktm::tm {

// ---- metadata layout inside the scratch region ----
inline constexpr Addr kClockAddr = kStmScratchBase;  ///< global commit clock
inline constexpr unsigned kOrecBits = 10;
inline constexpr std::size_t kNumOrecs = std::size_t{1} << kOrecBits;
/// One orec per cache line so hybrid HTM attempts that read/stamp orecs
/// transactionally never see false conflicts between distinct orecs.
inline constexpr Addr kOrecBase = kStmScratchBase + kLineBytes;
inline constexpr Addr kThreadScratchBase = kStmScratchBase + 0x20'0000;
inline constexpr Addr kThreadScratchStride = 0x1'0000;  ///< 64 KiB per thread
inline constexpr Addr kSavedVerOffset = 0x1000;  ///< saved-version slots
inline constexpr std::size_t kMaxWriteSet = 256;  ///< redo-log slots per tx

// ---- orec word encoding: version << 1 | locked ----
inline constexpr std::uint64_t kOrecLockedBit = 1;
/// Versions occupy the upper 63 bits; encodeOrec masks (wraps) past this.
/// Unreachable in practice: the clock advances once per committed writer.
inline constexpr std::uint64_t kMaxOrecVersion = ~std::uint64_t{0} >> 1;

constexpr std::uint64_t encodeOrec(std::uint64_t version) {
  return (version & kMaxOrecVersion) << 1;
}
constexpr bool orecLocked(std::uint64_t word) { return (word & kOrecLockedBit) != 0; }
constexpr std::uint64_t orecVersion(std::uint64_t word) { return word >> 1; }
/// Lock word: owner tid in the version bits, locked bit set — never mistaken
/// for a version because validation checks the locked bit first.
constexpr std::uint64_t orecLockWord(unsigned tid) {
  return (static_cast<std::uint64_t>(tid + 1) << 1) | kOrecLockedBit;
}

/// FlatLineTable-style keying: mix the line address, mask to the table.
inline std::size_t orecIndexOf(Addr addr) {
  return static_cast<std::size_t>(sim::flat_detail::mixKey(lineOf(addr))) &
         (kNumOrecs - 1);
}
inline Addr orecAddrOf(Addr addr) {
  return kOrecBase + static_cast<Addr>(orecIndexOf(addr)) * kLineBytes;
}
inline Addr threadScratchBase(unsigned tid) {
  return kThreadScratchBase + static_cast<Addr>(tid) * kThreadScratchStride;
}

// Registers the STM emitters reserve inside transactions (workload bodies
// keep live values in r1-r5; the lock-elision runtime's r25-r31 reservation
// is disjoint from any program that reaches these emitters).
inline constexpr unsigned kRegT1 = 31;
inline constexpr unsigned kRegT2 = 30;
inline constexpr unsigned kRegT3 = 29;
inline constexpr unsigned kRegCode = 28;  ///< abort-cause selector
inline constexpr unsigned kRegRv = 24;    ///< read version (clock at start)
inline constexpr unsigned kRegWv = 23;    ///< write version (clock after bump)
inline constexpr unsigned kRegHeld = 22;  ///< orec locks acquired so far
inline constexpr unsigned kRegBk = 21;    ///< backoff accumulator
/// Per-thread xorshift64 state, seeded once at program start (emitSeedInit)
/// and advanced on every backoff. The simulator is fully deterministic, so
/// without jitter two threads whose transactions lock overlapping orec sets
/// in opposite orders (A,B vs B,A) phase-lock into a permanent mutual-abort
/// livelock once both reach the backoff cap; the jitter breaks the symmetry
/// while keeping every run bit-reproducible (the seed is a pure function of
/// tid). Lives below the T1-T3/code/rv/wv/held/bk block and above workload
/// registers (r1-r5) — it must survive the whole program, not one attempt.
inline constexpr unsigned kRegRnd = 20;

/// Shared TL2 emission engine: Tl2Backend uses it for every transaction, the
/// hybrid backend for its software fallback path. One instance per program
/// being built (it carries per-transaction emission state).
class Tl2Emitter {
 public:
  explicit Tl2Emitter(const rt::RetryPolicy& retry) : retry_(retry) {}

  void setThread(unsigned tid) { tid_ = tid; }

  /// Seed kRegRnd with a per-thread splitmix64 constant. Must run once at
  /// program start (before the first emitStmTransaction) on every path that
  /// can reach the backoff code — both the pure-STM backend and the hybrid
  /// backend's software fallback.
  void emitSeedInit(cpu::ProgramBuilder& b);

  /// Emit a complete software transaction: attempt loop, inline-checked
  /// reads/redo-logged writes (via the hooks below, called back through
  /// `body`), locked commit with validation and writeback, and the
  /// abort/undo/backoff path. Leaves the time category at TimeCat::Htm
  /// (speculative work); the caller marks the post-transaction category.
  void emitStmTransaction(cpu::ProgramBuilder& b, const Backend::BodyFn& body);

  // Hooks — only valid while emitStmTransaction is inside `body`.
  void read(cpu::ProgramBuilder& b, Addr addr, unsigned valReg);
  void write(cpu::ProgramBuilder& b, Addr addr, unsigned valReg);
  void update(cpu::ProgramBuilder& b, Addr addr, unsigned valReg,
              std::int64_t delta);

  bool inBody() const { return inBody_; }

 private:
  // Abort-cause selector values (kRegCode) — routed to Note codes.
  static constexpr std::int64_t kBusy = 2;
  static constexpr std::int64_t kValidation = 3;
  struct Pending {
    std::size_t at;     ///< branch instruction to patch
    std::int64_t code;  ///< kBusy or kValidation
  };

  rt::RetryPolicy retry_;
  unsigned tid_ = 0;
  bool inBody_ = false;

  // Per-transaction emission state (reset by emitStmTransaction).
  std::map<Addr, unsigned> writeSlots_;        ///< address -> redo-log slot
  std::vector<Addr> writeOrder_;               ///< first-write order (unique)
  std::vector<Addr> writeOrecs_;               ///< orec addrs, first-occurrence order
  std::vector<Addr> readOrecs_;                ///< orec addrs, first-occurrence order
  std::vector<Pending> aborts_;                ///< branches to the abort stubs

  Addr redoSlotAddr(unsigned slot) const {
    return threadScratchBase(tid_) + 8 * static_cast<Addr>(slot);
  }
  Addr savedVerAddr(unsigned j) const {
    return threadScratchBase(tid_) + kSavedVerOffset + 8 * static_cast<Addr>(j);
  }
  Cycle backoffBase() const { return retry_.backoff + 17 * tid_; }
  Cycle backoffCap() const {
    const Cycle cap = retry_.clampedSpinBackoffMax();
    return cap > backoffBase() ? cap : backoffBase();
  }
};

/// The pure-software Table II row ("TL2-STM"): every transaction runs through
/// Tl2Emitter; the HTM hardware is never engaged.
class Tl2Backend final : public Backend {
 public:
  explicit Tl2Backend(const BackendConfig& cfg)
      : Backend(cfg.retry), emitter_(cfg.retry) {}

  const char* name() const override { return "tl2"; }
  bool usesStmScratch() const override { return true; }

  void emitProgramStart(cpu::ProgramBuilder& b, unsigned tid,
                        unsigned nthreads) override;
  void emitTransaction(cpu::ProgramBuilder& b, const BodyFn& body) override;
  void emitRead(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                unsigned valReg) override;
  void emitWrite(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                 unsigned valReg) override;
  void emitUpdate(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                  unsigned valReg, std::int64_t delta) override;
  [[noreturn]] void emitReadDyn(cpu::ProgramBuilder& b, unsigned rd,
                                unsigned addrReg, std::int64_t off) override;
  [[noreturn]] void emitWriteDyn(cpu::ProgramBuilder& b, unsigned addrReg,
                                 unsigned valReg, std::int64_t off) override;

 private:
  Tl2Emitter emitter_;
};

}  // namespace lktm::tm
