// Pluggable TM backends: the transaction execution path as an emission-level
// interface.
//
// A backend decides what bytecode a critical section turns into — HTM lock
// elision (lockiller), a plain coarse-grained lock (cgl), a TL2-style
// software TM (tl2), or best-effort HTM that falls back to software
// transactions (hybrid). Workloads describe *what* a transaction does
// (reads/writes/updates over shared addresses) and the backend decides *how*
// that becomes instructions, so every Table II row and every future backend
// reuses the same workload generators unchanged.
//
// The interface is emission-level rather than a runtime dispatch layer on
// purpose: programs stay plain bytecode interpreted by the unmodified
// in-order cores, so the lockiller backend reproduces the pre-refactor
// instruction stream byte-for-byte (golden-trace tests pin this), and
// software backends pay their bookkeeping in *simulated* instructions, which
// is exactly the cost model the paper's comparison needs.
//
// begin/commit/abort are folded into emitTransaction(): with statically
// emitted programs the backend lays out the whole attempt/retry/fallback
// structure around the body, and the abort path is a branch target inside
// that structure, not a callback. The contention manager is the RetryPolicy
// each backend receives in its BackendConfig (attempt budgets, backoff
// shape); `contentionPolicy()` exposes it for ablation benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/conflict_manager.hpp"
#include "cpu/program.hpp"
#include "runtime/retry_policy.hpp"
#include "sim/types.hpp"

namespace lktm::tm {

/// Base of the software-TM metadata region (global commit clock, orec table,
/// per-thread redo logs). Far above every workload footprint; the runner
/// rejects workloads that would grow into it. MainMemory is sparse and reads
/// absent lines as zero, so the whole region is implicitly zero-initialized
/// (clock 0, all orecs unlocked at version 0).
inline constexpr Addr kStmScratchBase = 0x4000'0000;

/// Everything a backend needs to emit programs for one run.
struct BackendConfig {
  core::TmPolicy policy{};
  rt::RetryPolicy retry{};
  Addr lockAddr = 0;  ///< fallback-lock word (lock-elision backends)
};

class Backend {
 public:
  /// Emits the accesses of one transaction through the hooks below. MUST be
  /// pure emission (no side effects on the workload object): dual-path
  /// backends invoke it more than once per transaction (e.g. the hybrid
  /// backend emits an HTM attempt and an STM fallback of the same body).
  using BodyFn = std::function<void(cpu::ProgramBuilder&)>;

  virtual ~Backend() = default;

  /// Registry name ("lockiller", "cgl", "tl2", "hybrid").
  virtual const char* name() const = 0;

  /// Emit once at program start, before any transaction: materialize lock /
  /// scratch addresses and record `tid` for per-thread metadata layout.
  virtual void emitProgramStart(cpu::ProgramBuilder& b, unsigned tid,
                                unsigned nthreads) = 0;

  /// One atomic section: the backend brackets `body` with its begin/commit/
  /// abort/retry structure. On fall-through the section has committed
  /// (possibly after retries or on a fallback path).
  virtual void emitTransaction(cpu::ProgramBuilder& b, const BodyFn& body) = 0;

  // ---- access hooks, valid only inside a `body` callback ----
  // `addrReg`/`valReg` preserve each workload's historical register
  // allocation so the lockiller backend reproduces the pre-refactor byte
  // sequences exactly. Backends reserve r21-r31 inside transactions;
  // workload bodies keep live values in r1-r5 only.

  /// valReg = *addr.
  virtual void emitRead(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                        unsigned valReg) = 0;
  /// *addr = valReg.
  virtual void emitWrite(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                         unsigned valReg) = 0;
  /// valReg = *addr + delta; *addr = valReg (read-modify-write).
  virtual void emitUpdate(cpu::ProgramBuilder& b, Addr addr, unsigned addrReg,
                          unsigned valReg, std::int64_t delta) = 0;

  // Data-dependent addressing (pointer chasing): the address lives in a
  // register, unknown at emission time. Backends whose conflict detection
  // needs emission-time-static access sets (tl2, hybrid) throw
  // std::invalid_argument with a diagnostic naming the limitation.

  /// rd = *(addrReg + off).
  virtual void emitReadDyn(cpu::ProgramBuilder& b, unsigned rd,
                           unsigned addrReg, std::int64_t off) = 0;
  /// *(addrReg + off) = valReg.
  virtual void emitWriteDyn(cpu::ProgramBuilder& b, unsigned addrReg,
                            unsigned valReg, std::int64_t off) = 0;

  /// True when the backend keeps software-TM metadata above kStmScratchBase
  /// (the runner rejects workloads whose footprint would collide).
  virtual bool usesStmScratch() const { return false; }

  /// Contention-manager hook: the retry/backoff strategy this backend emits
  /// between attempts.
  const rt::RetryPolicy& contentionPolicy() const { return retry_; }

 protected:
  explicit Backend(const rt::RetryPolicy& retry) : retry_(retry) {}
  rt::RetryPolicy retry_;
};

/// One registry row. Backends that exist as their own Table II system carry
/// the row's name/description here, so adding a backend in the registry adds
/// its row to cfg::evaluatedSystems() *and* bench/table2_systems at once.
struct BackendInfo {
  const char* name;        ///< registry key / `-be=` suffix / --backend value
  const char* summary;     ///< one-line mechanism description
  const char* systemRow;   ///< Table II system name, or nullptr when the
                           ///< backend is selected by existing rows' policies
  const char* systemDesc;  ///< Table II description for systemRow
};

/// All backends, in presentation order: lockiller, cgl, tl2, hybrid.
const std::vector<BackendInfo>& backendRegistry();

/// Registry names, in order ("lockiller", "cgl", "tl2", "hybrid").
std::vector<std::string> backendNames();

bool isBackendName(const std::string& name);

/// Registry row for `name`; nullptr when unknown.
const BackendInfo* backendInfo(const std::string& name);

/// One comma-separated line of the valid names, for diagnostics.
std::string backendNameList();

/// Backend implied by a Table II policy when neither the system row nor the
/// machine name carries an explicit override: "cgl" when HTM is disabled,
/// "lockiller" (the policy-driven elision runtime) otherwise.
std::string defaultBackendFor(const core::TmPolicy& policy);

/// Factory. Throws std::invalid_argument listing the valid names on an
/// unknown `name`.
std::unique_ptr<Backend> makeBackend(const std::string& name,
                                     const BackendConfig& cfg);

}  // namespace lktm::tm
