#include "runtime/backends/tl2.hpp"

#include <algorithm>
#include <stdexcept>

using lktm::cpu::ProgramBuilder;

namespace lktm::tm {

namespace {

void insertUnique(std::vector<Addr>& v, Addr a) {
  if (std::find(v.begin(), v.end(), a) == v.end()) v.push_back(a);
}

}  // namespace

void Tl2Emitter::emitSeedInit(ProgramBuilder& b) {
  // splitmix64 of (tid + 1): distinct, well-mixed, and never zero (zero is
  // the xorshift64 fixed point), computed here so the program carries only
  // one li.
  std::uint64_t s = (tid_ + 1) * 0x9e3779b97f4a7c15ull;
  s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
  s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
  s ^= s >> 31;
  if (s == 0) s = 0x2545f4914f6cdd1dull;
  b.li(kRegRnd, static_cast<std::int64_t>(s));
}

// One shared-memory read. Reads-after-writes are resolved at emission time
// from the redo log; fresh reads are the TL2 inline check: orec v1, data,
// orec v2 — consistent iff v1 unlocked, v1 <= rv, and v2 == v1.
void Tl2Emitter::read(ProgramBuilder& b, Addr addr, unsigned valReg) {
  const auto it = writeSlots_.find(addr);
  if (it != writeSlots_.end()) {
    b.li(kRegT1, static_cast<std::int64_t>(redoSlotAddr(it->second)));
    b.load(valReg, kRegT1);
    return;
  }
  const Addr oa = orecAddrOf(addr);
  b.li(kRegT1, static_cast<std::int64_t>(oa));
  b.load(kRegT2, kRegT1);  // v1
  b.li(kRegT3, static_cast<std::int64_t>(kOrecLockedBit));
  b.andb(kRegT3, kRegT2, kRegT3);
  aborts_.push_back({b.bne(kRegT3, cpu::kZeroReg), kBusy});  // writer holds it
  b.add(kRegT3, kRegRv, kRegRv);  // rv << 1
  aborts_.push_back({b.blt(kRegT3, kRegT2), kValidation});   // v1 > rv: too new
  b.li(kRegT1, static_cast<std::int64_t>(addr));
  b.load(valReg, kRegT1);  // the data word
  b.li(kRegT1, static_cast<std::int64_t>(oa));
  b.load(kRegT3, kRegT1);  // v2
  aborts_.push_back({b.bne(kRegT3, kRegT2), kValidation});   // changed mid-read
  insertUnique(readOrecs_, oa);
}

// One shared-memory write: buffered in this thread's redo log. One slot per
// address — a later write to the same address overwrites the slot, so the
// commit-time writeback publishes the last value (program order).
void Tl2Emitter::write(ProgramBuilder& b, Addr addr, unsigned valReg) {
  unsigned slot;
  const auto it = writeSlots_.find(addr);
  if (it != writeSlots_.end()) {
    slot = it->second;
  } else {
    slot = static_cast<unsigned>(writeSlots_.size());
    if (slot >= kMaxWriteSet) {
      throw std::invalid_argument(
          "tl2 backend: transaction write set exceeds the " +
          std::to_string(kMaxWriteSet) + "-slot redo log");
    }
    writeSlots_.emplace(addr, slot);
    writeOrder_.push_back(addr);
    insertUnique(writeOrecs_, orecAddrOf(addr));
  }
  b.li(kRegT1, static_cast<std::int64_t>(redoSlotAddr(slot)));
  b.store(kRegT1, valReg);
}

void Tl2Emitter::update(ProgramBuilder& b, Addr addr, unsigned valReg,
                        std::int64_t delta) {
  read(b, addr, valReg);
  b.addi(valReg, valReg, delta);
  write(b, addr, valReg);
}

void Tl2Emitter::emitStmTransaction(ProgramBuilder& b,
                                    const Backend::BodyFn& body) {
  writeSlots_.clear();
  writeOrder_.clear();
  writeOrecs_.clear();
  readOrecs_.clear();
  aborts_.clear();

  b.mark(TimeCat::Htm);  // speculative (software) attempt
  b.li(kRegBk, static_cast<std::int64_t>(backoffBase()));
  const auto attempt = b.here();
  b.li(kRegHeld, 0);
  b.li(kRegT1, static_cast<std::int64_t>(kClockAddr));
  b.load(kRegRv, kRegT1);  // rv = global clock
  inBody_ = true;
  body(b);
  inBody_ = false;

  // ---- commit ----
  if (!writeOrder_.empty()) {
    // Acquire each written orec (first-occurrence order; try-lock + abort, so
    // the order cannot deadlock), saving the pre-lock word for release and
    // for validating reads that share an orec with a write.
    for (unsigned j = 0; j < writeOrecs_.size(); ++j) {
      b.li(kRegT1, static_cast<std::int64_t>(writeOrecs_[j]));
      b.load(kRegT2, kRegT1);
      b.li(kRegT3, static_cast<std::int64_t>(kOrecLockedBit));
      b.andb(kRegT3, kRegT2, kRegT3);
      aborts_.push_back({b.bne(kRegT3, cpu::kZeroReg), kBusy});
      b.li(kRegT3, static_cast<std::int64_t>(orecLockWord(tid_)));
      b.cas(kRegT3, kRegT1, kRegT2);  // if *orec == v1: *orec = lock word
      aborts_.push_back({b.bne(kRegT3, kRegT2), kBusy});  // raced
      b.li(kRegT1, static_cast<std::int64_t>(savedVerAddr(j)));
      b.store(kRegT1, kRegT2);
      b.addi(kRegHeld, kRegHeld, 1);
    }
    // wv = ++clock (CAS loop; a lost race just refetches).
    const auto bump = b.here();
    b.li(kRegT1, static_cast<std::int64_t>(kClockAddr));
    b.load(kRegT2, kRegT1);
    b.addi(kRegT3, kRegT2, 1);
    b.cas(kRegT3, kRegT1, kRegT2);
    b.bne(kRegT3, kRegT2, bump);
    b.addi(kRegWv, kRegT2, 1);
    // Validate the read set — unless wv == rv + 1, which proves no other
    // writer committed since we read the clock (standard TL2 fast path).
    b.addi(kRegT3, kRegRv, 1);
    const auto skipValidate = b.beq(kRegT3, kRegWv);
    for (const Addr oa : readOrecs_) {
      const auto w = std::find(writeOrecs_.begin(), writeOrecs_.end(), oa);
      if (w != writeOrecs_.end()) {
        // Locked by us: judge the version we displaced when locking.
        const unsigned j = static_cast<unsigned>(w - writeOrecs_.begin());
        b.li(kRegT1, static_cast<std::int64_t>(savedVerAddr(j)));
        b.load(kRegT2, kRegT1);
      } else {
        b.li(kRegT1, static_cast<std::int64_t>(oa));
        b.load(kRegT2, kRegT1);
        b.li(kRegT3, static_cast<std::int64_t>(kOrecLockedBit));
        b.andb(kRegT3, kRegT2, kRegT3);
        aborts_.push_back({b.bne(kRegT3, cpu::kZeroReg), kBusy});
      }
      b.add(kRegT3, kRegRv, kRegRv);
      aborts_.push_back({b.blt(kRegT3, kRegT2), kValidation});  // version > rv
    }
    b.patchTarget(skipValidate, b.here());
    // Redo-log writeback, program order of first writes; slots already hold
    // the last value written per address.
    for (const Addr addr : writeOrder_) {
      b.li(kRegT1, static_cast<std::int64_t>(redoSlotAddr(writeSlots_.at(addr))));
      b.load(kRegT2, kRegT1);
      b.li(kRegT1, static_cast<std::int64_t>(addr));
      b.store(kRegT1, kRegT2);
    }
    // Release: stamp every write orec with wv (unlocked).
    b.add(kRegT2, kRegWv, kRegWv);  // encodeOrec(wv)
    for (const Addr oa : writeOrecs_) {
      b.li(kRegT1, static_cast<std::int64_t>(oa));
      b.store(kRegT1, kRegT2);
    }
  }
  b.note(cpu::kNoteStmCommit);
  const auto toDone = b.jmp();

  // ---- abort path ----
  // Stubs select the cause, then a shared handler rolls back the orec locks
  // acquired so far (restoring the exact saved versions — restoring zero
  // would corrupt other readers' snapshot checks), pulses the abort cause,
  // backs off, and retries. Unbounded retry: try-lock + backoff cannot
  // deadlock, and the xorshift-jittered exponential backoff breaks the
  // symmetry that would otherwise livelock deterministic adversaries whose
  // capped delays have phase-locked (see kRegRnd in the header).
  const auto busyStub = b.here();
  b.li(kRegCode, kBusy);
  const auto toAbort = b.jmp();
  const auto validStub = b.here();
  b.li(kRegCode, kValidation);
  const auto abortEntry = b.here();
  b.patchTarget(toAbort, abortEntry);
  for (const Pending& p : aborts_) {
    b.patchTarget(p.at, p.code == kBusy ? busyStub : validStub);
  }
  for (unsigned j = 0; j < writeOrecs_.size(); ++j) {
    b.li(kRegT1, j);
    const auto notHeld = b.bge(kRegT1, kRegHeld);  // lock j was never taken
    b.li(kRegT1, static_cast<std::int64_t>(savedVerAddr(j)));
    b.load(kRegT2, kRegT1);
    b.li(kRegT1, static_cast<std::int64_t>(writeOrecs_[j]));
    b.store(kRegT1, kRegT2);
    b.patchTarget(notHeld, b.here());
  }
  b.li(kRegT3, kValidation);
  const auto isValidation = b.beq(kRegCode, kRegT3);
  b.note(cpu::kNoteStmAbortLock);
  const auto toBackoff = b.jmp();
  b.patchTarget(isValidation, b.here());
  b.note(cpu::kNoteStmAbortValidation);
  b.patchTarget(toBackoff, b.here());
  b.mark(TimeCat::WaitLock);
  // Advance the per-thread xorshift64 (shifts 13/7/17)...
  b.li(kRegT1, 13);
  b.shl(kRegT3, kRegRnd, kRegT1);
  b.xorb(kRegRnd, kRegRnd, kRegT3);
  b.li(kRegT1, 7);
  b.shr(kRegT3, kRegRnd, kRegT1);
  b.xorb(kRegRnd, kRegRnd, kRegT3);
  b.li(kRegT1, 17);
  b.shl(kRegT3, kRegRnd, kRegT1);
  b.xorb(kRegRnd, kRegRnd, kRegT3);
  // ...and sleep bk + (rnd % (bk + 1)): uniform in [bk, 2bk]. Registers are
  // unsigned, and the divisor bk + 1 >= 1, so Rem is always defined.
  b.addi(kRegT2, kRegBk, 1);
  b.rem(kRegT3, kRegRnd, kRegT2);
  b.add(kRegT3, kRegBk, kRegT3);
  b.delayReg(kRegT3);
  b.add(kRegBk, kRegBk, kRegBk);
  b.li(kRegT3, static_cast<std::int64_t>(backoffCap()));
  const auto noCap = b.blt(kRegBk, kRegT3);
  b.mov(kRegBk, kRegT3);
  b.patchTarget(noCap, b.here());
  b.mark(TimeCat::Htm);
  b.jmp(attempt);

  b.patchTarget(toDone, b.here());
}

// ---- Tl2Backend ----

void Tl2Backend::emitProgramStart(ProgramBuilder& b, unsigned tid,
                                  unsigned /*nthreads*/) {
  emitter_.setThread(tid);
  emitter_.emitSeedInit(b);
}

void Tl2Backend::emitTransaction(ProgramBuilder& b, const BodyFn& body) {
  emitter_.emitStmTransaction(b, body);
  b.mark(TimeCat::NonTran);
}

void Tl2Backend::emitRead(ProgramBuilder& b, Addr addr, unsigned /*addrReg*/,
                          unsigned valReg) {
  emitter_.read(b, addr, valReg);
}

void Tl2Backend::emitWrite(ProgramBuilder& b, Addr addr, unsigned /*addrReg*/,
                           unsigned valReg) {
  emitter_.write(b, addr, valReg);
}

void Tl2Backend::emitUpdate(ProgramBuilder& b, Addr addr, unsigned /*addrReg*/,
                            unsigned valReg, std::int64_t delta) {
  emitter_.update(b, addr, valReg, delta);
}

void Tl2Backend::emitReadDyn(ProgramBuilder& /*b*/, unsigned /*rd*/,
                             unsigned /*addrReg*/, std::int64_t /*off*/) {
  throw std::invalid_argument(
      "tl2 backend: data-dependent addresses (pointer chasing) are not "
      "supported — TL2 conflict detection needs emission-time-static access "
      "sets; use the lockiller or cgl backend for this workload");
}

void Tl2Backend::emitWriteDyn(ProgramBuilder& /*b*/, unsigned /*addrReg*/,
                              unsigned /*valReg*/, std::int64_t /*off*/) {
  throw std::invalid_argument(
      "tl2 backend: data-dependent addresses (pointer chasing) are not "
      "supported — TL2 conflict detection needs emission-time-static access "
      "sets; use the lockiller or cgl backend for this workload");
}

}  // namespace lktm::tm
