#include "runtime/tm_runtime.hpp"

#include <vector>

using lktm::cpu::ProgramBuilder;

namespace lktm::rt {

const char* toString(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::CGL: return "cgl";
    case RuntimeKind::BestEffort: return "best-effort";
    case RuntimeKind::HtmLock: return "htmlock";
  }
  return "?";
}

RuntimeKind runtimeFor(const core::TmPolicy& policy) {
  if (!policy.htmEnabled) return RuntimeKind::CGL;
  if (policy.htmLock) return RuntimeKind::HtmLock;
  return RuntimeKind::BestEffort;
}

void TmRuntime::emitPrologue(ProgramBuilder& b, unsigned tid) const {
  b.li(kRegLockAddr, static_cast<std::int64_t>(lockAddr_));
  if (kind_ == RuntimeKind::CGL && retry_.cglLock == LockImpl::Mcs) {
    b.li(kRegMcsNode, static_cast<std::int64_t>(mcsNodeAddr(tid)));
  }
}

// MCS queue lock: swap self onto the tail, link behind the predecessor and
// spin on our *own* node's flag — one invalidation + one refill per handoff,
// no global refetch/CAS storm. Node layout: word0 = next, word1 = locked.
void TmRuntime::emitMcsAcquire(ProgramBuilder& b) const {
  b.store(kRegMcsNode, cpu::kZeroReg, 0);  // next = null
  b.li(kRegMcsTmp, 1);
  b.store(kRegMcsNode, kRegMcsTmp, 8);     // locked = 1
  const auto swapLoop = b.here();
  b.load(kRegMcsTmp, kRegLockAddr);        // expected = current tail
  b.mov(kRegStatus, kRegMcsNode);          // desired = my node
  b.cas(kRegStatus, kRegLockAddr, kRegMcsTmp);
  const auto raced = b.bne(kRegStatus, kRegMcsTmp);
  b.patchTarget(raced, swapLoop);
  const auto noPred = b.beq(kRegMcsTmp, cpu::kZeroReg);  // prev == null -> ours
  b.store(kRegMcsTmp, kRegMcsNode, 0);     // prev->next = me
  const auto wait = b.here();
  b.load(kRegStatus, kRegMcsNode, 8);      // spin locally on my flag
  const auto granted = b.beq(kRegStatus, cpu::kZeroReg);
  b.compute(8);
  b.jmp(wait);
  b.patchTarget(granted, b.here());
  b.patchTarget(noPred, b.here());
}

void TmRuntime::emitMcsRelease(ProgramBuilder& b) const {
  b.load(kRegMcsTmp, kRegMcsNode, 0);      // next
  const auto handoffKnown = b.bne(kRegMcsTmp, cpu::kZeroReg);
  // No visible successor: try to swing tail back to null.
  b.li(kRegStatus, 0);                     // desired = null
  b.cas(kRegStatus, kRegLockAddr, kRegMcsNode);
  const auto released = b.beq(kRegStatus, kRegMcsNode);
  // A successor is mid-enqueue: wait for the link.
  const auto waitLink = b.here();
  b.load(kRegMcsTmp, kRegMcsNode, 0);
  const auto linked = b.bne(kRegMcsTmp, cpu::kZeroReg);
  b.compute(8);
  b.jmp(waitLink);
  b.patchTarget(linked, b.here());
  b.patchTarget(handoffKnown, b.here());
  b.store(kRegMcsTmp, cpu::kZeroReg, 8);   // next->locked = 0
  b.patchTarget(released, b.here());
}

void TmRuntime::emitEnter(ProgramBuilder& b) const {
  switch (kind_) {
    case RuntimeKind::CGL: return emitEnterCgl(b);
    case RuntimeKind::BestEffort: return emitEnterBestEffort(b);
    case RuntimeKind::HtmLock: return emitEnterHtmLock(b);
  }
}

void TmRuntime::emitExit(ProgramBuilder& b) const {
  switch (kind_) {
    case RuntimeKind::CGL: return emitExitCgl(b);
    case RuntimeKind::BestEffort: return emitExitBestEffort(b);
    case RuntimeKind::HtmLock: return emitExitHtmLock(b);
  }
}

// Test-and-test-and-set acquire of the fallback lock through the coherence
// protocol (CAS needs exclusive ownership, polling reads stay shared).
void TmRuntime::emitSpinAcquire(ProgramBuilder& b) const {
  b.li(kRegScratch2, static_cast<std::int64_t>(retry_.clampedSpinBackoff()));
  const auto spin = b.here();
  b.load(kRegStatus, kRegLockAddr);
  const auto poll = b.bne(kRegStatus, cpu::kZeroReg);  // held -> backoff
  b.li(kRegStatus, 1);
  b.cas(kRegStatus, kRegLockAddr, cpu::kZeroReg);  // if *lock==0: *lock=1
  const auto gotIt = b.beq(kRegStatus, cpu::kZeroReg);
  // Exponential backoff (capped): avoids the thundering herd on release.
  const auto backoff = b.here();
  b.delayReg(kRegScratch2);
  b.add(kRegScratch2, kRegScratch2, kRegScratch2);
  b.li(kRegStatus, static_cast<std::int64_t>(retry_.clampedSpinBackoffMax()));
  const auto noCap = b.blt(kRegScratch2, kRegStatus);
  b.mov(kRegScratch2, kRegStatus);
  b.patchTarget(noCap, b.here());
  b.jmp(spin);
  b.patchTarget(poll, backoff);
  b.patchTarget(gotIt, b.here());
}

void TmRuntime::emitEnterCgl(ProgramBuilder& b) const {
  b.mark(TimeCat::WaitLock);
  if (retry_.cglLock == LockImpl::Mcs) {
    emitMcsAcquire(b);
  } else {
    emitSpinAcquire(b);
  }
  b.mark(TimeCat::Lock);
}

void TmRuntime::emitExitCgl(ProgramBuilder& b) const {
  if (retry_.cglLock == LockImpl::Mcs) {
    emitMcsRelease(b);
  } else {
    b.store(kRegLockAddr, cpu::kZeroReg);  // lock_release
  }
  b.note(0);  // completed a lock-path critical section
  b.mark(TimeCat::NonTran);
}

// Listing 1, stock best-effort flavour: the transaction subscribes to the
// fallback-lock word; any lock acquisition therefore aborts every running
// transaction (the `mutex` pathology the HTMLock mechanism removes).
void TmRuntime::emitEnterBestEffort(ProgramBuilder& b) const {
  b.li(kRegRetries, static_cast<std::int64_t>(retry_.maxRetries));
  const auto retryLoop = b.here();
  b.xbegin(kRegStatus);
  b.li(kRegScratch, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto toSubscribe = b.beq(kRegStatus, kRegScratch);
  // --- abort fall-through: retry_strategy(xstatus, &num_retries, lock) ---
  // A lock-holder abort (mutex) is not the transaction's fault: poll until
  // the lock is free, then retry without consuming an attempt (this is what
  // production elision runtimes do to avoid the lemming effect).
  b.li(kRegScratch, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Mutex)));
  const auto notMutex = b.bne(kRegStatus, kRegScratch);
  b.mark(TimeCat::WaitLock);  // waiting for the fallback path to release
  const auto pollLock = b.here();
  b.load(kRegScratch, kRegLockAddr);
  const auto lockFree = b.beq(kRegScratch, cpu::kZeroReg);
  b.compute(static_cast<std::int64_t>(retry_.clampedSpinBackoff()));
  b.jmp(pollLock);
  b.patchTarget(lockFree, b.here());
  b.jmp(retryLoop);
  b.patchTarget(notMutex, b.here());
  b.addi(kRegRetries, kRegRetries, -1);
  std::vector<std::size_t> toFallback;
  if (retry_.skipRetriesOnPersistent) {
    b.li(kRegScratch, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Overflow)));
    toFallback.push_back(b.beq(kRegStatus, kRegScratch));
    b.li(kRegScratch, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Fault)));
    toFallback.push_back(b.beq(kRegStatus, kRegScratch));
  }
  toFallback.push_back(b.beq(kRegRetries, cpu::kZeroReg));
  b.compute(static_cast<std::int64_t>(retry_.backoff));
  b.jmp(retryLoop);
  // --- subscribe the fallback lock (lines 8-9 of Listing 1) ---
  const auto subscribe = b.here();
  b.patchTarget(toSubscribe, subscribe);
  b.load(kRegScratch, kRegLockAddr);
  const auto toBody = b.beq(kRegScratch, cpu::kZeroReg);
  b.xabort(cpu::kAbortCodeLockHeld);
  // --- fallback path: lock_acquire(lock) ---
  const auto fallback = b.here();
  for (auto at : toFallback) b.patchTarget(at, fallback);
  b.mark(TimeCat::WaitLock);
  emitSpinAcquire(b);
  b.mark(TimeCat::Lock);
  b.patchTarget(toBody, b.here());
}

void TmRuntime::emitExitBestEffort(ProgramBuilder& b) const {
  b.load(kRegScratch, kRegLockAddr);
  const auto toXend = b.beq(kRegScratch, cpu::kZeroReg);
  b.store(kRegLockAddr, cpu::kZeroReg);  // lock_release
  b.note(0);  // fallback-path critical section completed
  b.mark(TimeCat::NonTran);
  const auto toDone = b.jmp();
  b.patchTarget(toXend, b.here());
  b.xend();
  b.patchTarget(toDone, b.here());
}

// Listing 1 with the grey HTMLock modifications: no lock-word subscription,
// hlbegin after acquiring the fallback lock.
void TmRuntime::emitEnterHtmLock(ProgramBuilder& b) const {
  b.li(kRegRetries, static_cast<std::int64_t>(retry_.maxRetries));
  const auto retryLoop = b.here();
  b.xbegin(kRegStatus);
  b.li(kRegScratch, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto toBody = b.beq(kRegStatus, kRegScratch);  // straight to the body
  // --- abort fall-through ---
  b.addi(kRegRetries, kRegRetries, -1);
  std::vector<std::size_t> toFallback;
  if (retry_.skipRetriesOnPersistent) {
    b.li(kRegScratch, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Overflow)));
    toFallback.push_back(b.beq(kRegStatus, kRegScratch));
    b.li(kRegScratch, static_cast<std::int64_t>(cpu::statusOf(AbortCause::Fault)));
    toFallback.push_back(b.beq(kRegStatus, kRegScratch));
  }
  toFallback.push_back(b.beq(kRegRetries, cpu::kZeroReg));
  b.compute(static_cast<std::int64_t>(retry_.backoff));
  b.jmp(retryLoop);
  // --- fallback: lock_acquire(lock); hlbegin(); (Listing 1 lines 16-17) ---
  const auto fallback = b.here();
  for (auto at : toFallback) b.patchTarget(at, fallback);
  b.mark(TimeCat::WaitLock);
  emitSpinAcquire(b);
  b.hlbegin();  // waits for the LLC HTMLock authorization
  b.patchTarget(toBody, b.here());
}

// Listing 2: dispatch on the extended ttest.
void TmRuntime::emitExitHtmLock(ProgramBuilder& b) const {
  b.ttest(kRegStatus);
  b.li(kRegScratch, static_cast<std::int64_t>(cpu::kTtestStl));
  const auto toStl = b.beq(kRegStatus, kRegScratch);
  b.li(kRegScratch, static_cast<std::int64_t>(cpu::kTtestTl));
  const auto toTl = b.beq(kRegStatus, kRegScratch);
  b.xend();
  const auto toDone1 = b.jmp();
  b.patchTarget(toStl, b.here());
  b.hlend();  // STL: switched from HTM, no lock to release
  const auto toDone2 = b.jmp();
  b.patchTarget(toTl, b.here());
  b.hlend();  // TL: also release the fallback lock
  b.store(kRegLockAddr, cpu::kZeroReg);
  b.mark(TimeCat::NonTran);
  b.patchTarget(toDone1, b.here());
  b.patchTarget(toDone2, b.here());
}

}  // namespace lktm::rt
