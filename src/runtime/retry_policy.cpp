#include "runtime/retry_policy.hpp"

// Configuration-only translation unit.
namespace lktm::rt {}
