// The software half of the system: critical-section entry/exit code emitted
// as bytecode, matching the paper's Listings 1 and 2.
//
//  * CGL          — plain test-and-test-and-set spinlock around the section.
//  * BestEffort   — Listing 1 as recommended for commercial HTM: xbegin,
//                   subscribe the fallback-lock word, xabort if held, retry
//                   loop, spin-acquire fallback.
//  * HtmLock      — Listing 1 with the grey modifications (no lock-word
//                   subscription; hlbegin after acquiring the lock) plus the
//                   Listing 2 release that dispatches on the extended ttest,
//                   so it transparently supports switchingMode (STL).
//
// Register convention: r27-r31 are reserved for the runtime; workload code
// must not keep live values there across enter/exit.
#pragma once

#include "core/conflict_manager.hpp"
#include "cpu/program.hpp"
#include "runtime/retry_policy.hpp"
#include "sim/types.hpp"

namespace lktm::rt {

enum class RuntimeKind : std::uint8_t { CGL, BestEffort, HtmLock };

const char* toString(RuntimeKind k);

/// Pick the runtime flavour implied by a TM policy (Table II row).
RuntimeKind runtimeFor(const core::TmPolicy& policy);

/// Runtime-reserved registers.
inline constexpr unsigned kRegLockAddr = 28;
inline constexpr unsigned kRegStatus = 29;
inline constexpr unsigned kRegRetries = 30;
inline constexpr unsigned kRegScratch = 31;
inline constexpr unsigned kRegScratch2 = 27;
inline constexpr unsigned kRegMcsNode = 26;  ///< this thread's MCS queue node
inline constexpr unsigned kRegMcsTmp = 25;

class TmRuntime {
 public:
  TmRuntime(RuntimeKind kind, Addr lockAddr, RetryPolicy retry = {})
      : kind_(kind), lockAddr_(lockAddr), retry_(retry) {}

  RuntimeKind kind() const { return kind_; }
  Addr lockAddr() const { return lockAddr_; }

  /// Emit once at program start: materialize the lock address (and, for the
  /// MCS coarse-grained lock, this thread's queue-node address).
  void emitPrologue(cpu::ProgramBuilder& b, unsigned tid = 0) const;

  /// Per-thread MCS queue node (a line in the reserved lock region).
  Addr mcsNodeAddr(unsigned tid) const { return lockAddr_ + kLineBytes * (tid + 1); }

  /// lock_acquire_elided(): on return, the thread is inside the critical
  /// section, either speculatively (HTM) or on the fallback path (TL).
  void emitEnter(cpu::ProgramBuilder& b) const;

  /// lock_release_elided().
  void emitExit(cpu::ProgramBuilder& b) const;

 private:
  RuntimeKind kind_;
  Addr lockAddr_;
  RetryPolicy retry_;

  void emitSpinAcquire(cpu::ProgramBuilder& b) const;
  void emitMcsAcquire(cpu::ProgramBuilder& b) const;
  void emitMcsRelease(cpu::ProgramBuilder& b) const;
  void emitEnterCgl(cpu::ProgramBuilder& b) const;
  void emitEnterBestEffort(cpu::ProgramBuilder& b) const;
  void emitEnterHtmLock(cpu::ProgramBuilder& b) const;
  void emitExitCgl(cpu::ProgramBuilder& b) const;
  void emitExitBestEffort(cpu::ProgramBuilder& b) const;
  void emitExitHtmLock(cpu::ProgramBuilder& b) const;
};

}  // namespace lktm::rt
