// Parameters of the software retry loop around xbegin (Listing 1's
// `retry_strategy`). Exposed separately so benches can ablate them.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/types.hpp"

namespace lktm::rt {

/// Lock algorithm used for the coarse-grained-locking baseline. The fallback
/// lock of the elision runtimes stays test-and-test-and-set (matching real
/// elision implementations); CGL defaults to MCS so the locking baseline is a
/// competent one (per-waiter queue nodes, O(1) coherence traffic on handoff).
enum class LockImpl : unsigned char { TestAndSet, Mcs };

struct RetryPolicy {
  /// Largest spin-backoff value the codegen will load: the backoff register
  /// is doubled *before* it is clamped against the cap, and the CPU's
  /// registers are signed 64-bit, so the cap must leave headroom for one
  /// doubling (2 * ceiling must not overflow int64).
  static constexpr Cycle kSpinBackoffCeiling =
      static_cast<Cycle>(std::numeric_limits<std::int64_t>::max() / 2);

  LockImpl cglLock = LockImpl::Mcs;
  unsigned maxRetries = 8;    ///< attempts before taking the fallback path
  Cycle backoff = 40;         ///< pause between speculative attempts
  Cycle spinBackoff = 24;     ///< initial pause between lock-word polls
  Cycle spinBackoffMax = 512;  ///< exponential backoff cap while spinning

  /// Overflow-safe views of the spin-backoff knobs — what the codegen
  /// actually emits. A config with a huge cap (e.g. Cycle max) used to make
  /// the emitted `add r,r,r` doubling overflow into negative delays.
  Cycle clampedSpinBackoffMax() const {
    return spinBackoffMax < kSpinBackoffCeiling ? spinBackoffMax
                                                : kSpinBackoffCeiling;
  }
  Cycle clampedSpinBackoff() const {
    const Cycle cap = clampedSpinBackoffMax();
    return spinBackoff < cap ? spinBackoff : cap;
  }

  /// Overflow/fault aborts are persistent: retrying speculation cannot help,
  /// so go straight to the fallback path (standard best-effort practice).
  bool skipRetriesOnPersistent = true;
};

}  // namespace lktm::rt
