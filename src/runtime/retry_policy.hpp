// Parameters of the software retry loop around xbegin (Listing 1's
// `retry_strategy`). Exposed separately so benches can ablate them.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace lktm::rt {

/// Lock algorithm used for the coarse-grained-locking baseline. The fallback
/// lock of the elision runtimes stays test-and-test-and-set (matching real
/// elision implementations); CGL defaults to MCS so the locking baseline is a
/// competent one (per-waiter queue nodes, O(1) coherence traffic on handoff).
enum class LockImpl : unsigned char { TestAndSet, Mcs };

struct RetryPolicy {
  LockImpl cglLock = LockImpl::Mcs;
  unsigned maxRetries = 8;    ///< attempts before taking the fallback path
  Cycle backoff = 40;         ///< pause between speculative attempts
  Cycle spinBackoff = 24;     ///< initial pause between lock-word polls
  Cycle spinBackoffMax = 512;  ///< exponential backoff cap while spinning
  /// Overflow/fault aborts are persistent: retrying speculation cannot help,
  /// so go straight to the fallback path (standard best-effort practice).
  bool skipRetriesOnPersistent = true;
};

}  // namespace lktm::rt
