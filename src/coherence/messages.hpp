// Coherence message vocabulary of our MESI-Two-Level-HTM protocol.
//
// All request/response traffic between private L1s and the shared
// directory+LLC flows through these messages. The recovery mechanism's
// REJECT/NACK extensions (paper Figs 2-4) appear as InvReject / FwdReject /
// RejectResp / Wakeup; the HTMLock and switchingMode extensions as
// SigAdd / SigClear / HlaReq / HlaGrant / HlaDeny.
#pragma once

#include <cstdint>
#include <string>

#include "core/conflict_manager.hpp"
#include "mem/cache_array.hpp"
#include "noc/network.hpp"
#include "sim/context.hpp"
#include "sim/types.hpp"

namespace lktm::coh {

enum class MsgType : std::uint8_t {
  // --- L1 -> directory requests (serialized per line) ---
  GetS,        ///< read miss
  GetX,        ///< write miss or S->M upgrade
  PutM,        ///< dirty eviction (carries data)
  WbClean,     ///< pre-image flush before the first speculative store to a
               ///< locally-dirty line; ownership retained (Fig 3 support)
  TxAbortInv,  ///< aborting owner invalidated a speculatively-written line
  SigAdd,      ///< HTMLock: lock-tx line spilled from L1; add to OfRd/OfWrSig
  SigClear,    ///< HTMLock: hlend; clear signatures, release the HTMLock slot
  HlaReq,      ///< apply for HTMLock-mode authorization (TL or STL)
  Unblock,     ///< requester confirms receipt; directory leaves busy state

  // --- directory -> L1 ---
  DataE,       ///< data grant, exclusive
  DataS,       ///< data grant, shared
  UpgradeAck,  ///< exclusivity grant without data (requester had an S copy)
  RejectResp,  ///< request revoked (recovery mechanism / LLC signatures)
  PutAck,      ///< eviction acknowledged; writeback buffer entry may retire
  Inv,         ///< invalidate your S copy (carries requester info)
  FwdGetS,     ///< you own this line; a reader wants it
  FwdGetX,     ///< you own this line; a writer wants it
  HlaGrant,
  HlaDeny,

  // --- L1 -> directory responses ---
  InvAck,      ///< complied with Inv
  InvReject,   ///< recovery: refused Inv, kept the S copy
  FwdAck,      ///< complied with Fwd (keptCopy says S-downgrade vs invalidate)
  FwdAckTxInv, ///< complied by self-invalidating an aborted speculative line;
               ///< serve the requester exclusively from the LLC (Fig 3 NACK)
  FwdReject,   ///< recovery: refused Fwd, state unchanged

  // --- L1 -> L1 ---
  Wakeup,      ///< retry your previously rejected request for this line

  // --- directory bank -> directory bank (banked LLC only) ---
  BankLockSet,   ///< home bank installs the HTMLock holder mirror on a bank
  BankLockAck,   ///< bank confirms the mirror; grant waits for all acks
  BankLockClear, ///< hlend: clear your signatures + mirror, drain waiters
  BankClearAck,  ///< bank finished clearing; release waits for all acks
};

const char* toString(MsgType t);

constexpr bool carriesData(MsgType t) {
  return t == MsgType::DataE || t == MsgType::DataS;
}

struct Msg {
  MsgType type{};
  LineAddr line = 0;
  CoreId from = kNoCore;     ///< sending core (or kNoCore when from directory)
  core::ReqSide req{};       ///< requester descriptor, carried end-to-end
  mem::LineData data{};
  bool hasData = false;
  bool keptCopy = false;     ///< FwdAck: responder retains an S copy
  bool sigIsWrite = false;   ///< SigAdd: write-set vs read-set overflow
  unsigned bank = 0;         ///< Bank*: target bank (Set/Clear) or acking bank
  TxMode hlaMode = TxMode::None;       ///< HlaReq: TL or STL; BankLockSet: mode
  AbortCause rejectHint = AbortCause::None;  ///< RejectResp: who beat us

  std::string str() const;
};

/// Anything that can receive coherence messages off the network.
class MsgSink {
 public:
  virtual ~MsgSink() = default;
  virtual void onMessage(const Msg& msg) = 0;
};

/// Verification tap: installed on the SimContext (setVerifyTap) by the model
/// checker, it observes every post()ed message at send time and again just
/// before delivery, giving the verifier an exact registry of in-flight
/// messages without the protocol components knowing they are being watched.
class MsgTap {
 public:
  virtual ~MsgTap() = default;
  virtual void onSend(const Msg& msg, noc::NodeId src, noc::NodeId dst) = 0;
  virtual void onDeliver(const Msg& msg, noc::NodeId src, noc::NodeId dst) = 0;
};

/// Canonical 64-bit fingerprint of a message's behaviour-relevant content
/// (type, line, sender, requester descriptor, payload, flags). Used by the
/// model checker to fold queued and in-flight messages into state
/// fingerprints; intentionally excludes anything tied to absolute time.
std::uint64_t msgFingerprint(const Msg& msg);

/// Send `msg` to `sink` across `net` without copying the payload through the
/// event queue: the Msg moves into the context's message pool and the
/// in-flight delivery closure captures only {sink, msg*, pool*}, which stays
/// inside sim::Action's inline buffer. Flit count derives from hasData.
void post(sim::SimContext& ctx, noc::Network& net, noc::NodeId src,
          noc::NodeId dst, MsgSink& sink, Msg&& msg);

}  // namespace lktm::coh
