// Shared-LLC directory controller of the MESI-Two-Level-HTM protocol.
//
// The LLC is inclusive and holds the directory (owner / sharer list) per
// line. Requests are serialized per line: while a transaction is in flight
// the line is "busy" and later requests queue in FIFO order. All responses
// route through the directory (the paper's Fig 2 topology where L1 caches
// communicate through their subordinate), which centralizes the recovery
// mechanism's reject aggregation and the HTMLock signature checks.
//
// Capacity note (documented in DESIGN.md): the LLC data store is sparse and
// effectively unbounded; LLC capacity effects are second-order for the
// paper's experiments (its sensitivity axis is the L1), while cold misses do
// pay the memory latency.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/htmlock_unit.hpp"
#include "core/switch_arbiter.hpp"
#include "coherence/messages.hpp"
#include "coherence/params.hpp"
#include "mem/main_memory.hpp"
#include "noc/network.hpp"
#include "sim/context.hpp"
#include "sim/core_mask.hpp"
#include "sim/engine.hpp"
#include "sim/flat_table.hpp"
#include "stats/registry.hpp"

namespace lktm::coh {

class DirectoryController final : public MsgSink {
 public:
  DirectoryController(sim::SimContext& ctx, noc::Network& net,
                      mem::MainMemory& memory, ProtocolParams params,
                      unsigned numCores,
                      core::HtmLockUnitParams sigParams = {});

  void connectL1(CoreId core, MsgSink* sink);

  /// Warm the inclusive LLC with the lines [from, to) before simulation, so
  /// short benchmark runs measure steady-state behaviour instead of cold-miss
  /// serialization (documented substitution in DESIGN.md).
  void preloadLlc(LineAddr from, LineAddr to);

  void onMessage(const Msg& msg) override;

  // --- introspection (tests, checker, harness) ---
  struct DirSnapshot {
    CoreId owner = kNoCore;
    sim::CoreMask sharers;  ///< set-compatible: count()/size()/iteration
    bool busy = false;
  };
  DirSnapshot snapshot(LineAddr line) const;

  bool llcHas(LineAddr line) const { return llc_.contains(line); }
  mem::LineData llcData(LineAddr line) const;

  const core::SwitchArbiter& arbiter() const { return arbiter_; }
  const core::HtmLockUnit& htmlockUnit() const { return hlUnit_; }
  std::uint64_t llcHits() const { return llcHits_.value(); }
  std::uint64_t llcMisses() const { return llcMisses_.value(); }
  std::uint64_t writebacks() const { return writebacks_.value(); }
  std::uint64_t sigRejects() const { return sigRejects_.value(); }

  /// Pending per-line transactions (0 when the protocol is quiescent).
  std::size_t busyLines() const { return pending_.size(); }

  /// Requester descriptor of the in-flight transaction on `line`, or nullptr
  /// when the line is not busy. The model checker's reject-priority invariant
  /// reads the requester's carried priority snapshot from here at the moment
  /// a responder sends a reject.
  const core::ReqSide* pendingReq(LineAddr line) const {
    const Pending* p = pending_.find(line);
    return p == nullptr ? nullptr : &p->req.req;
  }

  std::string diagnostic() const;

  // --- model-checker exports ---
  /// Deliberate protocol defects, reachable only through lktm_check
  /// --inject-bug: they validate that the checker actually detects
  /// violations and can reproduce them from a dumped counterexample.
  enum class InjectedBug : std::uint8_t {
    None,
    /// handleGetX grants exclusive data without invalidating the remaining
    /// sharers — a textbook SWMR violation.
    SwmrSkipInvalidation,
  };
  void injectBug(InjectedBug bug) { bug_ = bug; }

  /// Fold the directory's behaviour-relevant state — LLC lines, dir entries,
  /// pending transactions, wait queues, HTMLock arbiter + signatures, LLC
  /// waiter table — into a model-checker fingerprint. Stats are excluded.
  void hashState(sim::StateHasher& h) const;

 private:
  struct DirInfo {
    CoreId owner = kNoCore;
    sim::CoreMask sharers;

    bool hasCopies() const { return owner != kNoCore || !sharers.empty(); }
  };

  /// The slice of a GetS/GetX message the directory needs while the line is
  /// busy. Requests carry no data payload, so storing the full Msg (with its
  /// inline LineData) would only fatten the pending_ slots the open-addressed
  /// erase has to shift around.
  struct PendingReq {
    MsgType type{};
    LineAddr line = 0;
    CoreId from = kNoCore;
    core::ReqSide req{};
  };

  struct Pending {
    PendingReq req;
    unsigned acksLeft = 0;
    bool anyReject = false;
    AbortCause rejectHint = AbortCause::MemConflict;
    bool waitUnblock = false;
  };

  sim::SimContext& ctx_;
  sim::Engine& engine_;
  noc::Network& net_;
  mem::MainMemory& memory_;
  ProtocolParams params_;
  unsigned numCores_;

  std::vector<MsgSink*> l1s_;
  sim::FlatLineTable<mem::LineData> llc_;
  sim::FlatLineTable<DirInfo> dir_;
  sim::FlatLineTable<Pending> pending_;          // busy lines
  sim::FlatLineTable<std::deque<Msg>> waitq_;    // queued requests per line

  core::SwitchArbiter arbiter_;
  core::HtmLockUnit hlUnit_;
  stats::Counter& llcHits_;
  stats::Counter& llcMisses_;
  stats::Counter& writebacks_;
  stats::Counter& sigRejects_;
  stats::Distribution& waitqDepth_;
  InjectedBug bug_ = InjectedBug::None;

  // --- helpers ---
  unsigned bankOf(LineAddr line) const { return static_cast<unsigned>(line % numCores_); }
  noc::NodeId bankNode(LineAddr line) const { return static_cast<noc::NodeId>(numCores_ + bankOf(line)); }

  void sendToL1(CoreId core, Msg msg);
  mem::LineData& llcFetch(LineAddr line, bool& cold);

  void startRequest(const Msg& msg);
  void handleRequest(LineAddr line);
  void finishPending(LineAddr line);

  void handleGetS(Pending& p, DirInfo& d);
  void handleGetX(Pending& p, DirInfo& d);
  void sendReject(const PendingReq& req, AbortCause hint);

  void onInvResponse(const Msg& msg, bool rejected);
  void onFwdResponse(const Msg& msg);
  void onPutM(const Msg& msg);
  void onSigAdd(const Msg& msg);
  void onSigClear(const Msg& msg);
  void onHlaReq(const Msg& msg);
};

}  // namespace lktm::coh
