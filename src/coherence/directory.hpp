// Shared-LLC directory controller of the MESI-Two-Level-HTM protocol.
//
// The LLC is inclusive and holds the directory (owner / sharer list) per
// line. Requests are serialized per line: while a transaction is in flight
// the line is "busy" and later requests queue in FIFO order. All responses
// route through the directory (the paper's Fig 2 topology where L1 caches
// communicate through their subordinate), which centralizes the recovery
// mechanism's reject aggregation and the HTMLock signature checks.
//
// Banking: the logical directory is sharded into numBanks address-interleaved
// banks (bank = line mod numBanks, numBanks a power of two). Each bank owns
// its own line tables, pending queue, wait queues, and HTMLock signature
// pair. The SwitchArbiter slot stays globally unique and lives at the *home
// bank* (bank 0, where HlaReq/SigClear arrive), but its decisions now travel
// to the other banks as explicit NoC messages: a grant broadcasts
// BankLockSet and is only delivered to the requester once every bank has
// acked its lock mirror, and hlend broadcasts BankLockClear — each bank
// clears its signatures, drains its own waiters, and acks — before the slot
// is released to the next queued TL core. With numBanks == 1 every broadcast
// degenerates to a synchronous local update and the controller is
// message-for-message identical to the pre-banking monolith.
//
// Capacity note (documented in DESIGN.md): the LLC data store is sparse and
// effectively unbounded; LLC capacity effects are second-order for the
// paper's experiments (its sensitivity axis is the L1), while cold misses do
// pay the memory latency.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/htmlock_unit.hpp"
#include "core/switch_arbiter.hpp"
#include "coherence/messages.hpp"
#include "coherence/params.hpp"
#include "mem/main_memory.hpp"
#include "noc/network.hpp"
#include "sim/context.hpp"
#include "sim/core_mask.hpp"
#include "sim/engine.hpp"
#include "sim/flat_table.hpp"
#include "stats/registry.hpp"

namespace lktm::coh {

class DirectoryController final : public MsgSink {
 public:
  /// Throws std::invalid_argument when numBanks is 0, not a power of two, or
  /// exceeds numCores (each bank needs a distinct home node on the NoC).
  DirectoryController(sim::SimContext& ctx, noc::Network& net,
                      mem::MainMemory& memory, ProtocolParams params,
                      unsigned numCores, unsigned numBanks = 1,
                      core::HtmLockUnitParams sigParams = {});

  void connectL1(CoreId core, MsgSink* sink);

  /// Warm the inclusive LLC with the lines [from, to) before simulation, so
  /// short benchmark runs measure steady-state behaviour instead of cold-miss
  /// serialization (documented substitution in DESIGN.md).
  void preloadLlc(LineAddr from, LineAddr to);

  void onMessage(const Msg& msg) override;

  // --- introspection (tests, checker, harness) ---
  struct DirSnapshot {
    CoreId owner = kNoCore;
    sim::CoreMask sharers;  ///< set-compatible: count()/size()/iteration
    bool busy = false;
  };
  DirSnapshot snapshot(LineAddr line) const;

  bool llcHas(LineAddr line) const { return bankFor(line).llc.contains(line); }
  mem::LineData llcData(LineAddr line) const;

  unsigned numBanks() const { return static_cast<unsigned>(banks_.size()); }
  unsigned bankOfLine(LineAddr line) const {
    return static_cast<unsigned>(line) & bankMask_;
  }

  const core::SwitchArbiter& arbiter() const { return arbiter_; }
  /// Per-bank signature/waiter state; the no-argument overload is the home
  /// bank (compatible with single-bank callers).
  const core::HtmLockUnit& htmlockUnit(unsigned bank = 0) const {
    return banks_.at(bank).hl;
  }
  /// Any bank holding overflow signature bits (lock evidence for invariants).
  bool anyOverflow() const;
  /// Outstanding inter-bank lock-mirror broadcast acks (0 when the TL/STL
  /// protocol is quiescent; always 0 with a single bank).
  unsigned interBankAcksPending() const { return lockAcksLeft_ + clearAcksLeft_; }

  std::uint64_t llcHits() const { return llcHits_.value(); }
  std::uint64_t llcMisses() const { return llcMisses_.value(); }
  std::uint64_t writebacks() const { return writebacks_.value(); }
  std::uint64_t sigRejects() const { return sigRejects_.value(); }

  /// Pending per-line transactions (0 when the protocol is quiescent).
  std::size_t busyLines() const;

  /// Requester descriptor of the in-flight transaction on `line`, or nullptr
  /// when the line is not busy. The model checker's reject-priority invariant
  /// reads the requester's carried priority snapshot from here at the moment
  /// a responder sends a reject.
  const core::ReqSide* pendingReq(LineAddr line) const {
    const Pending* p = bankFor(line).pending.find(line);
    return p == nullptr ? nullptr : &p->req.req;
  }

  std::string diagnostic() const;

  // --- model-checker exports ---
  /// Deliberate protocol defects, reachable only through lktm_check
  /// --inject-bug: they validate that the checker actually detects
  /// violations and can reproduce them from a dumped counterexample.
  enum class InjectedBug : std::uint8_t {
    None,
    /// handleGetX grants exclusive data without invalidating the remaining
    /// sharers — a textbook SWMR violation.
    SwmrSkipInvalidation,
  };
  void injectBug(InjectedBug bug) { bug_ = bug; }

  /// Fold the directory's behaviour-relevant state — per-bank LLC lines, dir
  /// entries, pending transactions, wait queues, HTMLock arbiter + mirrors +
  /// signatures + waiter tables, and in-flight broadcast bookkeeping — into a
  /// model-checker fingerprint. Stats are excluded.
  void hashState(sim::StateHasher& h) const;

 private:
  struct DirInfo {
    CoreId owner = kNoCore;
    sim::CoreMask sharers;

    bool hasCopies() const { return owner != kNoCore || !sharers.empty(); }
  };

  /// The slice of a GetS/GetX message the directory needs while the line is
  /// busy. Requests carry no data payload, so storing the full Msg (with its
  /// inline LineData) would only fatten the pending_ slots the open-addressed
  /// erase has to shift around.
  struct PendingReq {
    MsgType type{};
    LineAddr line = 0;
    CoreId from = kNoCore;
    core::ReqSide req{};
  };

  struct Pending {
    PendingReq req;
    unsigned acksLeft = 0;
    bool anyReject = false;
    AbortCause rejectHint = AbortCause::MemConflict;
    bool waitUnblock = false;
  };

  /// One address-interleaved directory shard: independent line tables plus
  /// its own HTMLock signature pair, waiter table and lock mirror.
  struct Bank {
    explicit Bank(core::HtmLockUnitParams sigParams) : hl(sigParams) {}

    sim::FlatLineTable<mem::LineData> llc;
    sim::FlatLineTable<DirInfo> dir;
    sim::FlatLineTable<Pending> pending;        // busy lines
    sim::FlatLineTable<std::deque<Msg>> waitq;  // queued requests per line
    core::HtmLockUnit hl;
  };

  sim::SimContext& ctx_;
  sim::Engine& engine_;
  noc::Network& net_;
  mem::MainMemory& memory_;
  ProtocolParams params_;
  unsigned numCores_;
  unsigned bankMask_;

  std::vector<MsgSink*> l1s_;
  std::vector<Bank> banks_;

  core::SwitchArbiter arbiter_;  // global slot, owned by the home bank

  // Home-bank broadcast bookkeeping. A grant is withheld until every bank
  // mirrors the new holder; a release is withheld until every bank has wiped
  // its signatures (otherwise a freshly granted holder could spill into a
  // bank that a late BankLockClear then erases).
  unsigned lockAcksLeft_ = 0;
  CoreId lockGrantee_ = kNoCore;
  TxMode lockGranteeMode_ = TxMode::None;
  unsigned clearAcksLeft_ = 0;
  CoreId clearingCore_ = kNoCore;

  stats::Counter& llcHits_;
  stats::Counter& llcMisses_;
  stats::Counter& writebacks_;
  stats::Counter& sigRejects_;
  stats::Counter& interBankMsgs_;
  stats::Distribution& waitqDepth_;
  std::vector<stats::Counter*> bankReqs_;
  InjectedBug bug_ = InjectedBug::None;

  // --- helpers ---
  Bank& bankFor(LineAddr line) { return banks_[bankOfLine(line)]; }
  const Bank& bankFor(LineAddr line) const { return banks_[bankOfLine(line)]; }

  /// NoC node serving `line` (network-level striping over all numCores LLC
  /// slices; unchanged by logical banking so single-bank timing is stable).
  unsigned nodeSliceOf(LineAddr line) const {
    return static_cast<unsigned>(line % numCores_);
  }
  noc::NodeId lineNode(LineAddr line) const {
    return static_cast<noc::NodeId>(numCores_ + nodeSliceOf(line));
  }
  /// NoC node carrying bank b's control traffic (bank home tile).
  noc::NodeId bankCtrlNode(unsigned bank) const {
    return static_cast<noc::NodeId>(numCores_ + (bank % numCores_));
  }

  void sendToL1(CoreId core, Msg msg);
  void sendBankToBank(unsigned srcBank, unsigned dstBank, Msg msg);
  mem::LineData& llcFetch(Bank& b, LineAddr line, bool& cold);

  void startRequest(const Msg& msg);
  void handleRequest(LineAddr line);
  void finishPending(LineAddr line);

  void handleGetS(Bank& b, Pending& p, DirInfo& d);
  void handleGetX(Bank& b, Pending& p, DirInfo& d);
  void sendReject(const PendingReq& req, AbortCause hint);

  void onInvResponse(const Msg& msg, bool rejected);
  void onFwdResponse(const Msg& msg);
  void onPutM(const Msg& msg);
  void onSigAdd(const Msg& msg);
  void onSigClear(const Msg& msg);
  void onHlaReq(const Msg& msg);

  // inter-bank TL/STL protocol
  void beginLockBroadcast(CoreId core, TxMode mode);
  void finishRelease(CoreId core);
  void clearBankAndWake(unsigned bank);
  void onBankLockSet(const Msg& msg);
  void onBankLockAck(const Msg& msg);
  void onBankLockClear(const Msg& msg);
  void onBankClearAck(const Msg& msg);
};

}  // namespace lktm::coh
