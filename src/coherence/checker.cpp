#include "coherence/checker.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace lktm::coh {

namespace {
struct Copy {
  CoreId core;
  mem::MesiState state;
  bool dirty;
  bool txBits;
  mem::LineData data;
};
}  // namespace

std::vector<std::string> CoherenceChecker::check() const {
  std::vector<std::string> out;
  auto fail = [&](LineAddr line, const std::string& what) {
    std::ostringstream oss;
    oss << "line 0x" << std::hex << line << std::dec << ": " << what;
    out.push_back(oss.str());
  };

  if (dir_->busyLines() != 0) {
    out.push_back("directory not quiescent: " + std::to_string(dir_->busyLines()) +
                  " busy lines");
  }

  std::map<LineAddr, std::vector<Copy>> copies;
  for (std::size_t i = 0; i < l1s_.size(); ++i) {
    const L1Controller* l1 = l1s_[i];
    const CoreId core = static_cast<CoreId>(i);
    l1->cache().forEachValid([&](const mem::CacheEntry& e) {
      copies[e.line].push_back(
          Copy{core, e.state, e.dirty, e.transactional(), e.data});
    });
    if (l1->mode() == TxMode::None) {
      const auto txLines = l1->cache().countIf(
          [](const mem::CacheEntry& e) { return e.transactional(); });
      if (txLines != 0) {
        out.push_back("core " + std::to_string(core) + " has " +
                      std::to_string(txLines) + " tx-marked lines outside a tx");
      }
    }
  }

  for (const auto& [line, cs] : copies) {
    unsigned exclusive = 0;
    unsigned dirtyCount = 0;
    CoreId owner = kNoCore;
    for (const Copy& c : cs) {
      if (c.state == mem::MesiState::E || c.state == mem::MesiState::M) {
        ++exclusive;
        owner = c.core;
      }
      if (c.dirty) ++dirtyCount;
    }
    if (exclusive > 1) fail(line, "multiple E/M copies (SWMR violated)");
    if (exclusive == 1 && cs.size() > 1) fail(line, "E/M copy coexists with sharers");
    if (dirtyCount > 1) fail(line, "multiple dirty copies");

    const auto snap = dir_->snapshot(line);
    if (exclusive == 1 && snap.owner != owner) {
      fail(line, "directory owner=" + std::to_string(snap.owner) +
                     " but E/M copy at core " + std::to_string(owner));
    }
    for (const Copy& c : cs) {
      if (c.state == mem::MesiState::S && snap.owner == kNoCore &&
          snap.sharers.count(c.core) == 0) {
        fail(line, "S copy at core " + std::to_string(c.core) +
                       " missing from the sharer list");
      }
      // Clean copies must agree with the LLC (value coherence). Dirty copies
      // are by definition newer.
      if (!c.dirty && !c.txBits && dir_->llcHas(line) &&
          c.data != dir_->llcData(line)) {
        fail(line, "clean copy at core " + std::to_string(c.core) +
                       " disagrees with the LLC");
      }
    }
  }
  return out;
}

void CoherenceChecker::expectClean() const {
  const auto violations = check();
  if (violations.empty()) return;
  std::ostringstream oss;
  oss << violations.size() << " coherence violations:";
  for (const auto& v : violations) oss << "\n  " << v;
  throw std::logic_error(oss.str());
}

}  // namespace lktm::coh
