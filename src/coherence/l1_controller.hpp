// Private L1 cache controller with best-effort HTM support and the three
// LockillerTM mechanisms:
//  * read/write-set tracking via per-line tx bits; requester-wins or
//    recovery-mechanism conflict resolution on external Inv/Fwd requests
//    (Fig 4's enhanced request-handling flow);
//  * held/rejected requests parked in the MSHR with self-abort, fixed-pause
//    retry, or wait-for-wakeup resumption (Fig 2 step 7/8);
//  * HTMLock (TL/STL) lock-transaction mode: tx bits still recorded, local
//    overflow filters mirror the LLC signatures, evictions of transactional
//    lines spill into the LLC signatures instead of aborting;
//  * switchingMode: on capacity overflow an HTM transaction blocks external
//    requests (applyingHLA, Fig 6), asks the LLC for STL admission and either
//    continues irrevocably or aborts as plain best-effort HTM would.
#pragma once

#include <deque>
#include <functional>

#include "core/conflict_manager.hpp"
#include "core/wakeup_table.hpp"
#include "coherence/messages.hpp"
#include "coherence/params.hpp"
#include "mem/cache_array.hpp"
#include "mem/mshr.hpp"
#include "noc/network.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/flat_table.hpp"
#include "sim/small_fn.hpp"
#include "stats/tx_stats.hpp"

namespace lktm::coh {

class L1Controller final : public MsgSink {
 public:
  /// CPU-port completion callables. Value completions get a wider inline
  /// buffer because store() adapts a whole void() action into one, and that
  /// wrapper must still avoid the heap on the hot path.
  using DoneFn = sim::Action;
  using DoneValFn = sim::SmallFn<void(std::uint64_t), 64>;
  using DoneBoolFn = sim::SmallFn<void(bool)>;

  /// Hooks into the owning CPU model.
  struct Callbacks {
    /// Current priority value per the configured PriorityKind.
    std::function<std::uint64_t()> priorityValue = [] { return std::uint64_t{0}; };
    /// The local transaction was killed (conflict loss, overflow, fault...).
    std::function<void(AbortCause)> onAbort = [](AbortCause) {};
    /// switchingMode succeeded; the CPU is now in STL mode.
    std::function<void()> onSwitchedToStl = [] {};
  };

  L1Controller(sim::SimContext& ctx, noc::Network& net, CoreId id,
               mem::CacheGeometry geometry, ProtocolParams params,
               core::TmPolicy policy, unsigned numCores);

  void connectDirectory(MsgSink* dir) { dir_ = dir; }
  /// Peer L1s, indexed by core id, for direct wakeup messages.
  void connectPeers(std::vector<MsgSink*> peers) { peers_ = std::move(peers); }
  void setCallbacks(Callbacks cb) { cb_ = std::move(cb); }
  /// Address of the fallback-lock word, for the `mutex` abort classification.
  void setLockLine(LineAddr line) { lockLine_ = line; }

  // ---- CPU port: one outstanding operation at a time ----
  void load(Addr addr, DoneValFn done);
  void store(Addr addr, std::uint64_t value, DoneFn done);
  /// Atomic compare-and-swap; completes with the *old* word value.
  void cas(Addr addr, std::uint64_t expect, std::uint64_t desired,
           DoneValFn done);

  // ---- HTM port ----
  void txBegin();
  void txCommit(DoneFn done);
  /// Abort the running HTM transaction (explicit xabort / fault / internal).
  void txAbort(AbortCause cause);
  /// Enter TL mode (caller holds the software fallback lock). Completion
  /// waits for the LLC's HTMLock authorization.
  void hlBegin(DoneFn done);
  void hlEnd(DoneFn done);
  /// switchingMode entry that is not driven by an overflowing memory request
  /// (e.g. the switch-on-fault extension): apply for STL; `done(granted)`.
  /// On denial the caller decides (typically txAbort(Fault)).
  void trySwitchToLockMode(DoneBoolFn done);

  TxMode mode() const { return mode_; }
  bool busy() const { return op_.active; }

  // ---- network port ----
  void onMessage(const Msg& msg) override;

  // ---- introspection ----
  const mem::CacheArray& cache() const { return cache_; }
  mem::CacheArray& cacheMut() { return cache_; }
  stats::TxStats& txCounters() { return txc_; }
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::size_t writebackBufferSize() const { return wb_.size(); }
  std::string diagnostic() const;

  // ---- model-checker exports ----
  const mem::MshrFile& mshrFile() const { return mshr_; }
  mem::MshrFile& mshrFileMut() { return mshr_; }
  core::WakeupTable& wakeupTableMut() { return wakeups_; }
  const core::WakeupTable& wakeupTable() const { return wakeups_; }
  /// applyingHLA (Fig 6): external requests are parked while the STL switch
  /// is pending at the LLC.
  bool applyingHla() const { return switchPending_; }
  /// Fold every behaviour-relevant field of this controller — cache array,
  /// CPU op latch, MSHR entries (minus retry counters), writeback buffer,
  /// wakeup table, overflow shadow sets, mode/switch flags, and the parked
  /// external requests — into a model-checker fingerprint.
  void hashState(sim::StateHasher& h) const;

 private:
  enum class OpKind : std::uint8_t { Load, Store, Cas };

  struct CpuOp {
    bool active = false;
    OpKind kind = OpKind::Load;
    Addr addr = 0;
    std::uint64_t value = 0;   // store value / CAS desired
    std::uint64_t expect = 0;  // CAS expected
    DoneValFn done;
  };

  sim::SimContext& ctx_;
  sim::Engine& engine_;
  noc::Network& net_;
  CoreId id_;
  mem::CacheArray cache_;
  ProtocolParams params_;
  core::TmPolicy policy_;
  core::ConflictManager cm_;
  unsigned numCores_;
  MsgSink* dir_ = nullptr;
  std::vector<MsgSink*> peers_;
  Callbacks cb_;
  LineAddr lockLine_ = static_cast<LineAddr>(-1);

  CpuOp op_;
  mem::MshrFile mshr_;
  sim::FlatLineTable<mem::LineData> wb_;  ///< dirty evictions awaiting PutAck
  core::WakeupTable wakeups_;
  sim::FlatLineSet ofRd_, ofWr_;  ///< exact local view of the LLC signatures

  TxMode mode_ = TxMode::None;
  bool triedSwitch_ = false;
  bool switchPending_ = false;            ///< applyingHLA: external reqs blocked
  std::deque<Msg> blockedExternal_;
  DoneFn hlBeginDone_;
  DoneBoolFn switchDone_;  ///< non-overflow switch requests

  stats::TxStats txc_;
  stats::Counter& hits_;
  stats::Counter& misses_;

  bool inAnyTx() const { return mode_ != TxMode::None; }

  // messaging
  void sendToDir(Msg msg);
  void sendWakeup(CoreId core, LineAddr line);
  core::ReqSide myReqSide(bool wantsExclusive) const;
  core::LocalSide myLocalSide(LineAddr line) const;

  // CPU op pipeline
  void startOp(CpuOp op);
  void lookupAndHandle();
  void completeOnLine(mem::CacheEntry& e);
  bool reserveVictim(LineAddr line);
  void evictClean(mem::CacheEntry& v);
  void evictForSpace(mem::CacheEntry& v);
  void evictTxLine(mem::CacheEntry& v);
  void issueRequest(LineAddr line, bool wantsExclusive);
  void reissue(mem::MshrEntry& m);

  // responses
  void onData(const Msg& msg, bool exclusive);
  void onUpgradeAck(const Msg& msg);
  void onRejectResp(const Msg& msg);
  void scheduleHeldRetry(LineAddr line, Cycle delay);
  void onWakeup(const Msg& msg);
  void onHlaGrant();
  void onHlaDeny();

  // external requests
  void handleInv(const Msg& msg);
  void handleFwd(const Msg& msg, bool isGetX);
  void complyFwd(mem::CacheEntry& e, bool isGetX);
  void recordRejectedWaiter(LineAddr line, CoreId requester);
  void drainBlockedExternal();

  // transactions
  void txAbortInternal(AbortCause cause, const LineAddr* exceptLine);
  void clearTxBitsAndWake();
};

}  // namespace lktm::coh
