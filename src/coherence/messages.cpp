#include "coherence/messages.hpp"

#include <sstream>
#include <utility>

namespace lktm::coh {

void post(sim::SimContext& ctx, noc::Network& net, noc::NodeId src,
          noc::NodeId dst, MsgSink& sink, Msg&& msg) {
  const unsigned flits = msg.hasData ? noc::kDataFlits : noc::kControlFlits;
  sim::Pool<Msg>& pool = ctx.pool<Msg>();
  Msg* m = pool.acquire(std::move(msg));
  net.send(src, dst, flits, [s = &sink, m, p = &pool] {
    s->onMessage(*m);
    p->recycle(m);
  });
}

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::GetS: return "GetS";
    case MsgType::GetX: return "GetX";
    case MsgType::PutM: return "PutM";
    case MsgType::WbClean: return "WbClean";
    case MsgType::TxAbortInv: return "TxAbortInv";
    case MsgType::SigAdd: return "SigAdd";
    case MsgType::SigClear: return "SigClear";
    case MsgType::HlaReq: return "HlaReq";
    case MsgType::Unblock: return "Unblock";
    case MsgType::DataE: return "DataE";
    case MsgType::DataS: return "DataS";
    case MsgType::UpgradeAck: return "UpgradeAck";
    case MsgType::RejectResp: return "RejectResp";
    case MsgType::PutAck: return "PutAck";
    case MsgType::Inv: return "Inv";
    case MsgType::FwdGetS: return "FwdGetS";
    case MsgType::FwdGetX: return "FwdGetX";
    case MsgType::HlaGrant: return "HlaGrant";
    case MsgType::HlaDeny: return "HlaDeny";
    case MsgType::InvAck: return "InvAck";
    case MsgType::InvReject: return "InvReject";
    case MsgType::FwdAck: return "FwdAck";
    case MsgType::FwdAckTxInv: return "FwdAckTxInv";
    case MsgType::FwdReject: return "FwdReject";
    case MsgType::Wakeup: return "Wakeup";
  }
  return "?";
}

std::string Msg::str() const {
  std::ostringstream oss;
  oss << toString(type) << " line=0x" << std::hex << line << std::dec
      << " from=" << from << " req.core=" << req.core
      << (req.isTx ? " tx" : "") << (req.lockMode ? " LOCK" : "")
      << " prio=" << req.priority << (hasData ? " +data" : "");
  return oss.str();
}

}  // namespace lktm::coh
