#include "coherence/messages.hpp"

#include <sstream>
#include <utility>

#include "sim/state_hash.hpp"

namespace lktm::coh {

void post(sim::SimContext& ctx, noc::Network& net, noc::NodeId src,
          noc::NodeId dst, MsgSink& sink, Msg&& msg) {
  const unsigned flits = msg.hasData ? noc::kDataFlits : noc::kControlFlits;
  sim::Pool<Msg>& pool = ctx.pool<Msg>();
  auto* tap = static_cast<MsgTap*>(ctx.verifyTap());
  if (tap != nullptr) tap->onSend(msg, src, dst);
  Msg* m = pool.acquire(std::move(msg));
  if (tap == nullptr) {
    net.send(src, dst, flits, [s = &sink, m, p = &pool] {
      s->onMessage(*m);
      p->recycle(m);
    });
    return;
  }
  net.send(src, dst, flits, [s = &sink, m, p = &pool, tap, src, dst] {
    tap->onDeliver(*m, src, dst);
    s->onMessage(*m);
    p->recycle(m);
  });
}

std::uint64_t msgFingerprint(const Msg& msg) {
  sim::StateHasher h;
  h.put(static_cast<std::uint64_t>(msg.type));
  h.put(msg.line);
  h.put(static_cast<std::uint64_t>(msg.from));
  h.put(static_cast<std::uint64_t>(msg.req.core));
  h.put((msg.req.isTx ? 1u : 0u) | (msg.req.lockMode ? 2u : 0u) |
        (msg.req.wantsExclusive ? 4u : 0u));
  h.put(msg.req.priority);
  h.putBool(msg.hasData);
  if (msg.hasData) {
    for (std::uint64_t word : msg.data) h.put(word);
  }
  h.put((msg.keptCopy ? 1u : 0u) | (msg.sigIsWrite ? 2u : 0u));
  h.put(msg.bank);
  h.put(static_cast<std::uint64_t>(msg.hlaMode));
  h.put(static_cast<std::uint64_t>(msg.rejectHint));
  return h.digest();
}

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::GetS: return "GetS";
    case MsgType::GetX: return "GetX";
    case MsgType::PutM: return "PutM";
    case MsgType::WbClean: return "WbClean";
    case MsgType::TxAbortInv: return "TxAbortInv";
    case MsgType::SigAdd: return "SigAdd";
    case MsgType::SigClear: return "SigClear";
    case MsgType::HlaReq: return "HlaReq";
    case MsgType::Unblock: return "Unblock";
    case MsgType::DataE: return "DataE";
    case MsgType::DataS: return "DataS";
    case MsgType::UpgradeAck: return "UpgradeAck";
    case MsgType::RejectResp: return "RejectResp";
    case MsgType::PutAck: return "PutAck";
    case MsgType::Inv: return "Inv";
    case MsgType::FwdGetS: return "FwdGetS";
    case MsgType::FwdGetX: return "FwdGetX";
    case MsgType::HlaGrant: return "HlaGrant";
    case MsgType::HlaDeny: return "HlaDeny";
    case MsgType::InvAck: return "InvAck";
    case MsgType::InvReject: return "InvReject";
    case MsgType::FwdAck: return "FwdAck";
    case MsgType::FwdAckTxInv: return "FwdAckTxInv";
    case MsgType::FwdReject: return "FwdReject";
    case MsgType::Wakeup: return "Wakeup";
    case MsgType::BankLockSet: return "BankLockSet";
    case MsgType::BankLockAck: return "BankLockAck";
    case MsgType::BankLockClear: return "BankLockClear";
    case MsgType::BankClearAck: return "BankClearAck";
  }
  return "?";
}

std::string Msg::str() const {
  std::ostringstream oss;
  oss << toString(type) << " line=0x" << std::hex << line << std::dec
      << " from=" << from << " req.core=" << req.core
      << (req.isTx ? " tx" : "") << (req.lockMode ? " LOCK" : "")
      << " prio=" << req.priority << (hasData ? " +data" : "");
  return oss.str();
}

}  // namespace lktm::coh
