#include "coherence/l1_controller.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "sim/log.hpp"
#include "sim/trace.hpp"
#include "stats/path.hpp"

namespace lktm::coh {

using sim::TraceCat;

L1Controller::L1Controller(sim::SimContext& ctx, noc::Network& net, CoreId id,
                           mem::CacheGeometry geometry, ProtocolParams params,
                           core::TmPolicy policy, unsigned numCores)
    : ctx_(ctx),
      engine_(ctx.engine()),
      net_(net),
      id_(id),
      cache_(geometry),
      params_(params),
      policy_(policy),
      cm_(policy.conflict, policy.rejectAction),
      numCores_(numCores),
      mshr_(params.mshrCapacity),
      txc_(ctx.stats(), stats::statPath("core", id)),
      hits_(ctx.stats().counter(stats::statPath("core", id, "l1.hits"))),
      misses_(ctx.stats().counter(stats::statPath("core", id, "l1.misses"))) {}

// ---------------------------------------------------------------- messaging

void L1Controller::sendToDir(Msg msg) {
  msg.from = id_;
  const noc::NodeId dst =
      static_cast<noc::NodeId>(numCores_ + static_cast<unsigned>(msg.line % numCores_));
  LKTM_LOG(sim::LogLevel::Trace, engine_.now(), "l1", "c" + std::to_string(id_) + " tx " + msg.str());
  post(ctx_, net_, id_, dst, *dir_, std::move(msg));
}

core::ReqSide L1Controller::myReqSide(bool wantsExclusive) const {
  return core::ReqSide{
      .core = id_,
      .isTx = inAnyTx(),
      .lockMode = isLockMode(mode_),
      .priority = cb_.priorityValue(),
      .wantsExclusive = wantsExclusive,
  };
}

core::LocalSide L1Controller::myLocalSide(LineAddr line) const {
  return core::LocalSide{
      .core = id_,
      .lockMode = isLockMode(mode_),
      .priority = cb_.priorityValue(),
      .lineIsLockWord = line == lockLine_,
  };
}

// --------------------------------------------------------------- CPU port

void L1Controller::load(Addr addr, DoneValFn done) {
  startOp(CpuOp{.active = true, .kind = OpKind::Load, .addr = addr, .done = std::move(done)});
}

void L1Controller::store(Addr addr, std::uint64_t value, DoneFn done) {
  startOp(CpuOp{.active = true,
                .kind = OpKind::Store,
                .addr = addr,
                .value = value,
                .done = [d = std::move(done)](std::uint64_t) mutable { d(); }});
}

void L1Controller::cas(Addr addr, std::uint64_t expect, std::uint64_t desired,
                       DoneValFn done) {
  startOp(CpuOp{.active = true,
                .kind = OpKind::Cas,
                .addr = addr,
                .value = desired,
                .expect = expect,
                .done = std::move(done)});
}

void L1Controller::startOp(CpuOp op) {
  if (op_.active) throw std::logic_error("L1 already has an outstanding CPU op");
  op_ = std::move(op);
  engine_.schedule(params_.l1HitLatency, [this]() {
    if (op_.active) lookupAndHandle();
  });
}

void L1Controller::lookupAndHandle() {
  const LineAddr line = lineOf(op_.addr);
  mem::CacheEntry* e = cache_.find(line);
  const bool needExclusive = op_.kind != OpKind::Load;
  if (e != nullptr &&
      (!needExclusive || e->state == mem::MesiState::E || e->state == mem::MesiState::M)) {
    ++hits_;
    completeOnLine(*e);
    return;
  }
  ++misses_;
  // A squashed request (from an aborted transaction) may still be in flight
  // for this line — or for another line of the same set, whose fill will
  // consume the one reserved way. Wait for it to drain before re-requesting.
  bool setBusy = mshr_.full();
  mshr_.forEachUnordered([&](const mem::MshrEntry& m) {
    if (m.line == line || cache_.setOf(m.line) == cache_.setOf(line)) setBusy = true;
  });
  if (setBusy) {
    engine_.schedule(4, [this]() {
      if (op_.active) lookupAndHandle();
    });
    return;
  }
  if (e != nullptr) {
    // S->M upgrade: no victim needed, the line is already resident.
    issueRequest(line, /*wantsExclusive=*/true);
    return;
  }
  if (!reserveVictim(line)) return;  // aborted or applyingHLA; op parked/squashed
  issueRequest(line, needExclusive);
}

void L1Controller::completeOnLine(mem::CacheEntry& e) {
  cache_.touch(e);
  const unsigned w = wordOf(op_.addr);
  if (inAnyTx()) {
    if (op_.kind == OpKind::Load) {
      e.txRead = true;
    } else {
      // First speculative store to a line that is dirty with *pre-transaction*
      // data: flush the pre-image to the LLC first (WbClean), so an abort can
      // simply invalidate and the Fig 3 NACK path serves original data.
      if (mode_ == TxMode::Htm && !e.txWrite && e.dirty) {
        Msg wbc{.type = MsgType::WbClean, .line = e.line, .data = e.data, .hasData = true};
        sendToDir(std::move(wbc));
      }
      e.txWrite = true;
    }
  }
  std::uint64_t result = 0;
  switch (op_.kind) {
    case OpKind::Load:
      result = e.data[w];
      break;
    case OpKind::Store:
      e.data[w] = op_.value;
      e.state = mem::MesiState::M;
      e.dirty = true;
      break;
    case OpKind::Cas:
      result = e.data[w];
      if (result == op_.expect) {
        e.data[w] = op_.value;
        e.state = mem::MesiState::M;
        e.dirty = true;
      }
      break;
  }
  auto done = std::move(op_.done);
  op_ = CpuOp{};
  done(result);
}

bool L1Controller::reserveVictim(LineAddr line) {
  if (cache_.invalidWay(line) != nullptr) return true;
  mem::CacheEntry* v =
      cache_.lruWay(line, [](const mem::CacheEntry& e) { return !e.transactional(); });
  if (v != nullptr) {
    evictForSpace(*v);
    return true;
  }
  // Every way of the set belongs to the running transaction's read/write set.
  if (isLockMode(mode_)) {
    // HTMLock: spill into the LLC overflow signatures instead of aborting.
    v = cache_.lruWay(line, [](const mem::CacheEntry&) { return true; });
    assert(v != nullptr);
    evictTxLine(*v);
    return true;
  }
  assert(mode_ == TxMode::Htm && "tx bits outside a transaction");
  if (policy_.switching && !triedSwitch_) {
    // switchingMode (Fig 6): revoke the CPU request, block external requests
    // (applyingHLA) and ask the LLC for STL admission.
    triedSwitch_ = true;
    switchPending_ = true;
    ++txc_.switchAttempts;
    Msg req{.type = MsgType::HlaReq, .line = 0, .hlaMode = TxMode::STL};
    sendToDir(std::move(req));
    return false;
  }
  txAbort(AbortCause::Overflow);
  return false;
}

void L1Controller::evictForSpace(mem::CacheEntry& v) {
  assert(!v.transactional());
  if (v.state == mem::MesiState::M && v.dirty) {
    wb_[v.line] = v.data;
    Msg put{.type = MsgType::PutM, .line = v.line, .data = v.data, .hasData = true};
    sendToDir(std::move(put));
  }
  // Clean E/S lines are dropped silently; the directory discovers staleness
  // lazily (owner re-request or FwdAckTxInv).
  v.invalidate();
}

void L1Controller::evictTxLine(mem::CacheEntry& v) {
  assert(isLockMode(mode_));
  const bool isWr = v.txWrite;
  (isWr ? ofWr_ : ofRd_).insert(v.line);
  Msg sig{.type = MsgType::SigAdd, .line = v.line, .sigIsWrite = isWr};
  if (v.dirty) {
    // Lock-transaction stores are irrevocable, so spilled dirty data is real
    // data: it writes back with the signature notification.
    wb_[v.line] = v.data;
    sig.data = v.data;
    sig.hasData = true;
  }
  sendToDir(std::move(sig));
  v.invalidate();
}

void L1Controller::issueRequest(LineAddr line, bool wantsExclusive) {
  mem::MshrEntry& m = mshr_.allocate(line);
  m.isWrite = wantsExclusive;
  m.fromTx = inAnyTx();
  m.priority = cb_.priorityValue();
  Msg req{.type = wantsExclusive ? MsgType::GetX : MsgType::GetS,
          .line = line,
          .req = myReqSide(wantsExclusive)};
  sendToDir(std::move(req));
}

void L1Controller::reissue(mem::MshrEntry& m) {
  m.state = mem::MshrState::Issued;
  m.earlyWakeup = false;
  ++m.retries;
  m.priority = cb_.priorityValue();
  Msg req{.type = m.isWrite ? MsgType::GetX : MsgType::GetS,
          .line = m.line,
          .req = myReqSide(m.isWrite)};
  sendToDir(std::move(req));
}

// --------------------------------------------------------------- HTM port

void L1Controller::txBegin() {
  assert(mode_ == TxMode::None);
  mode_ = TxMode::Htm;
  triedSwitch_ = false;
  sim::traceBegin(ctx_, TraceCat::Txn, "txn", id_);
}

void L1Controller::txCommit(DoneFn done) {
  assert(mode_ == TxMode::Htm);
  clearTxBitsAndWake();
  mode_ = TxMode::None;
  sim::traceEnd(ctx_, TraceCat::Txn, "txn", id_, {"committed", 1});
  engine_.schedule(params_.commitLatency, std::move(done));
}

void L1Controller::txAbort(AbortCause cause) { txAbortInternal(cause, nullptr); }

void L1Controller::txAbortInternal(AbortCause cause, const LineAddr* exceptLine) {
  assert(mode_ == TxMode::Htm && "lock transactions are irrevocable");
  txc_.recordAbort(cause);

  // Squash transactional MSHRs: in-flight ones complete silently; held ones
  // (rejected / waiting for wakeup) have nothing in flight and are dropped.
  std::vector<LineAddr> toRelease;
  mshr_.forEachUnordered([&](mem::MshrEntry& m) {
    if (!m.fromTx) return;
    if (m.state == mem::MshrState::Issued) {
      m.squashed = true;
    } else {
      toRelease.push_back(m.line);
    }
  });
  for (LineAddr l : toRelease) mshr_.release(l);

  // Discard speculatively-written lines; tell the directory so it stops
  // considering us the owner (the LLC still holds pre-images).
  cache_.forEachValid([&](mem::CacheEntry& e) {
    if (exceptLine != nullptr && e.line == *exceptLine) return;  // caller handles
    if (e.txWrite) {
      Msg inv{.type = MsgType::TxAbortInv, .line = e.line};
      sendToDir(std::move(inv));
      e.invalidate();
    } else if (e.txRead && params_.invalidateReadSetOnAbort && !e.dirty) {
      e.invalidate();  // silent drop; the directory learns lazily
    } else {
      e.txRead = false;
    }
  });

  for (const auto& wkp : wakeups_.drainAll()) {
    sendWakeup(wkp.core, wkp.line);
    ++txc_.wakeupsSent;
  }
  mode_ = TxMode::None;
  sim::traceEnd(ctx_, TraceCat::Txn, "txn", id_,
                {"abort_cause", static_cast<std::uint64_t>(cause)});
  if (op_.active) op_ = CpuOp{};  // the CPU rolls back; never complete this op
  cb_.onAbort(cause);
}

void L1Controller::clearTxBitsAndWake() {
  cache_.forEachValid([](mem::CacheEntry& e) { e.txRead = e.txWrite = false; });
  for (const auto& wkp : wakeups_.drainAll()) {
    sendWakeup(wkp.core, wkp.line);
    ++txc_.wakeupsSent;
  }
}

void L1Controller::hlBegin(DoneFn done) {
  assert(mode_ == TxMode::None);
  assert(!hlBeginDone_);
  hlBeginDone_ = std::move(done);
  Msg req{.type = MsgType::HlaReq, .line = 0, .hlaMode = TxMode::TL};
  sendToDir(std::move(req));
}

void L1Controller::hlEnd(DoneFn done) {
  assert(isLockMode(mode_));
  const bool wasStl = mode_ == TxMode::STL;
  clearTxBitsAndWake();
  ofRd_.clear();
  ofWr_.clear();
  Msg clr{.type = MsgType::SigClear, .line = 0};
  sendToDir(std::move(clr));
  mode_ = TxMode::None;
  sim::traceEnd(ctx_, TraceCat::LockMode, "lock_mode", id_);
  // An STL section is the tail of a speculative transaction: its span closes
  // here, after the inner lock-mode span (LIFO nesting per lane).
  if (wasStl) sim::traceEnd(ctx_, TraceCat::Txn, "txn", id_, {"committed", 1});
  engine_.schedule(params_.hlLatency, std::move(done));
}

void L1Controller::sendWakeup(CoreId core, LineAddr line) {
  assert(core != id_);
  sim::traceInstant(ctx_, TraceCat::Wakeup, "wakeup_sent", id_, {"line", line},
                    {"to", static_cast<std::uint64_t>(core)});
  MsgSink* peer = peers_.at(static_cast<std::size_t>(core));
  Msg wake{.type = MsgType::Wakeup, .line = line, .from = id_};
  post(ctx_, net_, id_, core, *peer, std::move(wake));
}

// ------------------------------------------------------------ network port

void L1Controller::onMessage(const Msg& msg) {
  LKTM_LOG(sim::LogLevel::Trace, engine_.now(), "l1",
           "c" + std::to_string(id_) + " rx " + msg.str());
  switch (msg.type) {
    case MsgType::DataE: return onData(msg, /*exclusive=*/true);
    case MsgType::DataS: return onData(msg, /*exclusive=*/false);
    case MsgType::UpgradeAck: return onUpgradeAck(msg);
    case MsgType::RejectResp: return onRejectResp(msg);
    case MsgType::PutAck:
      wb_.erase(msg.line);
      return;
    case MsgType::Inv: return handleInv(msg);
    case MsgType::FwdGetS: return handleFwd(msg, /*isGetX=*/false);
    case MsgType::FwdGetX: return handleFwd(msg, /*isGetX=*/true);
    case MsgType::Wakeup: return onWakeup(msg);
    case MsgType::HlaGrant: return onHlaGrant();
    case MsgType::HlaDeny: return onHlaDeny();
    default:
      throw std::logic_error(std::string("L1 cannot handle ") + toString(msg.type));
  }
}

void L1Controller::onData(const Msg& msg, bool exclusive) {
  mem::MshrEntry* m = mshr_.find(msg.line);
  if (m == nullptr) throw std::logic_error("data response without MSHR");
  const bool squashed = m->squashed;
  mshr_.release(msg.line);

  mem::CacheEntry* way = cache_.find(msg.line);
  if (way != nullptr) {
    // Upgrade of a still-resident S copy: refresh in place.
    way->state = exclusive ? mem::MesiState::E : mem::MesiState::S;
    way->data = msg.data;
    cache_.touch(*way);
  } else {
    way = cache_.invalidWay(msg.line);
    assert(way != nullptr && "fill target way must be free");
    cache_.install(*way, msg.line, exclusive ? mem::MesiState::E : mem::MesiState::S,
                   msg.data);
  }

  Msg unb{.type = MsgType::Unblock, .line = msg.line};
  sendToDir(std::move(unb));

  if (squashed) return;
  assert(op_.active && lineOf(op_.addr) == msg.line);
  completeOnLine(*way);
}

// INVARIANT: the directory never sends UpgradeAck anymore — silent clean-line
// drops make data-less upgrade grants unsound, so GetX always answers with
// DataE (see DirectoryController::handleGetX). This handler is kept only so a
// future protocol variant that re-enables data-less upgrades has the L1 side
// ready; re-enabling it requires explicit PutS messages (no silent S drops).
void L1Controller::onUpgradeAck(const Msg& msg) {
  mem::MshrEntry* m = mshr_.find(msg.line);
  if (m == nullptr) throw std::logic_error("upgrade ack without MSHR");
  const bool squashed = m->squashed;
  mshr_.release(msg.line);

  mem::CacheEntry* e = cache_.find(msg.line);
  assert(e != nullptr && "UpgradeAck implies the S copy survived");
  e->state = mem::MesiState::E;

  Msg unb{.type = MsgType::Unblock, .line = msg.line};
  sendToDir(std::move(unb));

  if (squashed) return;
  assert(op_.active && lineOf(op_.addr) == msg.line);
  completeOnLine(*e);
}

void L1Controller::onRejectResp(const Msg& msg) {
  mem::MshrEntry* m = mshr_.find(msg.line);
  if (m == nullptr) return;  // stale (already squashed+released)
  ++txc_.rejectsReceived;
  sim::traceInstant(ctx_, TraceCat::Reject, "reject_received", id_,
                    {"line", msg.line});
  if (m->squashed) {
    mshr_.release(msg.line);
    return;
  }
  if (!m->fromTx) {
    // A non-transactional request can only have been rejected by a lock
    // transaction (or the LLC signatures); it simply polls.
    m->state = mem::MshrState::HeldRejected;
    scheduleHeldRetry(msg.line, params_.nonTxRetryDelay);
    return;
  }
  switch (policy_.rejectAction) {
    case core::RejectAction::SelfAbort:
      mshr_.release(msg.line);
      txAbort(msg.rejectHint == AbortCause::None ? AbortCause::MemConflict : msg.rejectHint);
      return;
    case core::RejectAction::RetryLater:
      m->state = mem::MshrState::HeldRejected;
      scheduleHeldRetry(msg.line, params_.retryDelay);
      return;
    case core::RejectAction::WaitWakeup:
      if (m->earlyWakeup) {
        reissue(*m);
      } else {
        m->state = mem::MshrState::WaitingWakeup;
      }
      return;
  }
}

void L1Controller::scheduleHeldRetry(LineAddr line, Cycle delay) {
  engine_.schedule(delay, [this, line]() {
    mem::MshrEntry* m = mshr_.find(line);
    if (m != nullptr && !m->squashed && m->state == mem::MshrState::HeldRejected) {
      reissue(*m);
    }
  });
}

void L1Controller::onWakeup(const Msg& msg) {
  mem::MshrEntry* m = mshr_.find(msg.line);
  if (m == nullptr || m->squashed) return;
  if (m->state == mem::MshrState::WaitingWakeup || m->state == mem::MshrState::HeldRejected) {
    reissue(*m);
  } else {
    m->earlyWakeup = true;  // wakeup overtook the reject response
  }
}

void L1Controller::trySwitchToLockMode(DoneBoolFn done) {
  if (!policy_.switching || triedSwitch_ || mode_ != TxMode::Htm) {
    done(false);
    return;
  }
  triedSwitch_ = true;
  switchPending_ = true;
  switchDone_ = std::move(done);
  ++txc_.switchAttempts;
  Msg req{.type = MsgType::HlaReq, .line = 0, .hlaMode = TxMode::STL};
  sendToDir(std::move(req));
}

void L1Controller::onHlaGrant() {
  if (switchPending_) {
    // switchingMode succeeded: continue the same transaction irrevocably.
    switchPending_ = false;
    mode_ = TxMode::STL;
    ++txc_.switchGrants;
    sim::traceBegin(ctx_, TraceCat::LockMode, "lock_mode", id_,
                    {"mode", static_cast<std::uint64_t>(TxMode::STL)});
    cb_.onSwitchedToStl();
    drainBlockedExternal();
    if (switchDone_) {
      auto done = std::move(switchDone_);
      switchDone_ = nullptr;
      done(true);
      return;
    }
    // Resume the CPU request that was revoked by the overflow.
    assert(op_.active);
    engine_.schedule(1, [this]() {
      if (op_.active) lookupAndHandle();
    });
    return;
  }
  assert(hlBeginDone_);
  mode_ = TxMode::TL;
  sim::traceBegin(ctx_, TraceCat::LockMode, "lock_mode", id_,
                  {"mode", static_cast<std::uint64_t>(TxMode::TL)});
  auto done = std::move(hlBeginDone_);
  hlBeginDone_ = nullptr;
  done();
}

void L1Controller::onHlaDeny() {
  assert(switchPending_);
  switchPending_ = false;
  if (switchDone_) {
    auto done = std::move(switchDone_);
    switchDone_ = nullptr;
    drainBlockedExternal();
    done(false);  // caller decides how to die
    return;
  }
  txAbort(AbortCause::Overflow);
  drainBlockedExternal();
}

// ------------------------------------------------------ external requests

void L1Controller::recordRejectedWaiter(LineAddr line, CoreId requester) {
  ++txc_.rejectsSent;
  sim::traceInstant(ctx_, TraceCat::Reject, "reject_sent", id_, {"line", line},
                    {"to", static_cast<std::uint64_t>(requester)});
  if (policy_.rejectAction == core::RejectAction::WaitWakeup || isLockMode(mode_)) {
    wakeups_.record(line, requester);
  }
}

void L1Controller::handleInv(const Msg& msg) {
  if (switchPending_) {
    blockedExternal_.push_back(msg);
    return;
  }
  const LineAddr line = msg.line;
  mem::CacheEntry* e = cache_.find(line);

  // Race closure: we spilled this line into the LLC signatures but the
  // invalidation was already in flight. The lock transaction still owns it.
  if (isLockMode(mode_) && (ofRd_.count(line) != 0 || ofWr_.count(line) != 0)) {
    recordRejectedWaiter(line, msg.req.core);
    Msg rej{.type = MsgType::InvReject, .line = line, .rejectHint = AbortCause::LockConflict};
    sendToDir(std::move(rej));
    return;
  }

  const bool conflict = e != nullptr && e->transactional();
  if (conflict) {
    const auto d = cm_.decide(myLocalSide(line), msg.req);
    if (d.rejectRequester) {
      recordRejectedWaiter(line, msg.req.core);
      Msg rej{.type = MsgType::InvReject,
              .line = line,
              .rejectHint = isLockMode(mode_) ? AbortCause::LockConflict
                                              : AbortCause::MemConflict};
      sendToDir(std::move(rej));
      return;
    }
    // Inv only reaches S copies, which are never speculatively written, so
    // the line survives the abort walk; invalidate it as part of compliance.
    assert(!e->txWrite);
    txAbortInternal(d.abortCause, nullptr);
    e = cache_.find(line);  // abort cleared bits but kept the S line
  }
  if (e != nullptr) e->invalidate();
  Msg ack{.type = MsgType::InvAck, .line = line};
  sendToDir(std::move(ack));
}

void L1Controller::handleFwd(const Msg& msg, bool isGetX) {
  if (switchPending_) {
    blockedExternal_.push_back(msg);
    return;
  }
  const LineAddr line = msg.line;
  mem::CacheEntry* e = cache_.find(line);

  if (e == nullptr) {
    // Overflowed lock-transaction lines are still conflicts (signature race).
    if (isLockMode(mode_) &&
        (ofWr_.count(line) != 0 || (isGetX && ofRd_.count(line) != 0))) {
      recordRejectedWaiter(line, msg.req.core);
      Msg rej{.type = MsgType::FwdReject, .line = line, .rejectHint = AbortCause::LockConflict};
      sendToDir(std::move(rej));
      return;
    }
    const mem::LineData* wbData = wb_.find(line);
    if (wbData != nullptr) {
      // Eviction raced the forward: serve from the writeback buffer.
      Msg ack{.type = MsgType::FwdAck, .line = line, .data = *wbData,
              .hasData = true, .keptCopy = false};
      sendToDir(std::move(ack));
      return;
    }
    // Aborted speculative line or silently-dropped clean copy: the LLC data
    // is current; let the directory serve the requester exclusively (Fig 3).
    Msg ack{.type = MsgType::FwdAckTxInv, .line = line};
    sendToDir(std::move(ack));
    return;
  }

  const bool conflict = e->txWrite || (isGetX && e->txRead);
  if (conflict) {
    const auto d = cm_.decide(myLocalSide(line), msg.req);
    if (d.rejectRequester) {
      recordRejectedWaiter(line, msg.req.core);
      Msg rej{.type = MsgType::FwdReject,
              .line = line,
              .rejectHint = isLockMode(mode_) ? AbortCause::LockConflict
                                              : AbortCause::MemConflict};
      sendToDir(std::move(rej));
      return;
    }
    if (e->txWrite) {
      // Speculative data must never escape: abort, self-invalidate, and send
      // the Fig 3 NACK so the directory serves original data from the LLC.
      txAbortInternal(d.abortCause, &line);
      e->invalidate();
      Msg ack{.type = MsgType::FwdAckTxInv, .line = line};
      sendToDir(std::move(ack));
      return;
    }
    // Read-set conflict (exclusive request vs tx-read line): abort, then
    // comply. The abort walk may have flushed this clean read line already,
    // in which case the LLC copy is current and serves the requester.
    txAbortInternal(d.abortCause, nullptr);
    e = cache_.find(line);
    if (e == nullptr) {
      Msg ack{.type = MsgType::FwdAckTxInv, .line = line};
      sendToDir(std::move(ack));
      return;
    }
  }
  complyFwd(*e, isGetX);
}

void L1Controller::complyFwd(mem::CacheEntry& e, bool isGetX) {
  Msg ack{.type = MsgType::FwdAck, .line = e.line};
  if (e.dirty) {
    ack.data = e.data;
    ack.hasData = true;
  }
  if (isGetX) {
    ack.keptCopy = false;
    e.invalidate();
  } else {
    ack.keptCopy = true;
    e.state = mem::MesiState::S;
    e.dirty = false;
  }
  sendToDir(std::move(ack));
}

void L1Controller::drainBlockedExternal() {
  while (!blockedExternal_.empty()) {
    const Msg m = blockedExternal_.front();
    blockedExternal_.pop_front();
    if (m.type == MsgType::Inv) {
      handleInv(m);
    } else {
      handleFwd(m, m.type == MsgType::FwdGetX);
    }
  }
}

std::string L1Controller::diagnostic() const {
  std::ostringstream oss;
  oss << "L1 c" << id_ << ": mode=" << toString(mode_) << " mshr=" << mshr_.size()
      << " wb=" << wb_.size() << (op_.active ? " op-active" : "")
      << (switchPending_ ? " applyingHLA" : "");
  return oss.str();
}

void L1Controller::hashState(sim::StateHasher& h) const {
  h.section(0x20);
  h.put(static_cast<std::uint64_t>(id_));
  cache_.hashState(h);

  h.section(0x21);  // CPU op latch
  h.putBool(op_.active);
  if (op_.active) {
    h.put(static_cast<std::uint64_t>(op_.kind));
    h.put(op_.addr);
    h.put(op_.value);
    h.put(op_.expect);
  }

  h.section(0x22);  // MSHR (retries excluded: they only pace, never branch)
  mshr_.forEach([&](const mem::MshrEntry& m) {
    h.put(m.line);
    h.put(static_cast<std::uint64_t>(m.state) | (m.isWrite ? 8u : 0u) |
          (m.fromTx ? 16u : 0u) | (m.squashed ? 32u : 0u) |
          (m.earlyWakeup ? 64u : 0u));
    h.put(m.priority);
  });

  h.section(0x23);  // writeback buffer
  wb_.forEachOrdered([&](LineAddr line, const mem::LineData& data) {
    h.put(line);
    for (std::uint64_t word : data) h.put(word);
  });

  h.section(0x24);  // wakeup waiters recorded at this responder
  wakeups_.forEach([&](LineAddr line, CoreId core) {
    h.put(line);
    h.put(static_cast<std::uint64_t>(core));
  });

  h.section(0x25);  // local view of the LLC overflow signatures
  ofRd_.forEachOrdered([&](LineAddr line) { h.put(line); });
  h.section(0x26);
  ofWr_.forEachOrdered([&](LineAddr line) { h.put(line); });

  h.section(0x27);  // mode + switch machinery
  h.put(static_cast<std::uint64_t>(mode_) | (triedSwitch_ ? 8u : 0u) |
        (switchPending_ ? 16u : 0u) | (hlBeginDone_ != nullptr ? 32u : 0u) |
        (switchDone_ != nullptr ? 64u : 0u));
  for (const Msg& m : blockedExternal_) h.put(msgFingerprint(m));
}

}  // namespace lktm::coh
