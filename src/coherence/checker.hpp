// Whole-system coherence invariant checker, run at quiescent points in tests
// (barriers, end of simulation). Verifies SWMR and value coherence across all
// L1s plus directory bookkeeping consistency, tolerating the protocol's
// intentional laziness (silent clean-line drops leave stale directory hints).
#pragma once

#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"

namespace lktm::coh {

class CoherenceChecker {
 public:
  CoherenceChecker(std::vector<const L1Controller*> l1s, const DirectoryController* dir)
      : l1s_(std::move(l1s)), dir_(dir) {}

  /// Returns a list of violation descriptions; empty means all invariants hold.
  /// Preconditions: protocol quiescent (no in-flight messages, no busy lines).
  std::vector<std::string> check() const;

  /// Convenience: throws std::logic_error listing all violations.
  void expectClean() const;

 private:
  std::vector<const L1Controller*> l1s_;
  const DirectoryController* dir_;
};

}  // namespace lktm::coh
