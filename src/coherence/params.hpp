// Timing and structural knobs of the memory hierarchy (paper Table I).
#pragma once

#include "mem/cache_array.hpp"
#include "sim/types.hpp"

namespace lktm::coh {

struct ProtocolParams {
  Cycle l1HitLatency = 2;    ///< Table I: L1 2-cycle hit
  Cycle llcLatency = 12;     ///< Table I: L2 12-cycle hit
  Cycle memLatency = 100;    ///< Table I: memory 100-cycle
  Cycle commitLatency = 3;   ///< flash-clear of tx bits at xend
  Cycle hlLatency = 2;       ///< hlbegin/hlend local cost (load-like)

  /// Recovery mechanism: fixed pause of the SelfRetryLater policy.
  Cycle retryDelay = 64;
  /// Backoff of a rejected non-transactional request (it cannot wait for a
  /// transaction-scoped wakeup, so it polls).
  Cycle nonTxRetryDelay = 48;

  unsigned mshrCapacity = 4;

  /// Gem5's HTM-extended MESI protocols flush transactionally-read lines on
  /// abort (speculative state is discarded wholesale), so a retried attempt
  /// re-misses. Clean read lines are dropped silently; dirty pre-transaction
  /// data is kept (it is not speculative).
  bool invalidateReadSetOnAbort = true;
};

}  // namespace lktm::coh
