#include "coherence/directory.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "sim/log.hpp"
#include "sim/trace.hpp"
#include "stats/path.hpp"

namespace lktm::coh {

using sim::TraceCat;
using sim::kDirectoryLane;

DirectoryController::DirectoryController(sim::SimContext& ctx, noc::Network& net,
                                         mem::MainMemory& memory,
                                         ProtocolParams params, unsigned numCores,
                                         unsigned numBanks,
                                         core::HtmLockUnitParams sigParams)
    : ctx_(ctx),
      engine_(ctx.engine()),
      net_(net),
      memory_(memory),
      params_(params),
      numCores_(numCores),
      bankMask_(numBanks - 1),
      l1s_(numCores, nullptr),
      llcHits_(ctx.stats().counter("dir.llc.hits")),
      llcMisses_(ctx.stats().counter("dir.llc.misses")),
      writebacks_(ctx.stats().counter("dir.writebacks",
                                      "dirty lines written back into the LLC")),
      sigRejects_(ctx.stats().counter("dir.sig_rejects",
                                      "LLC signature-induced rejections")),
      interBankMsgs_(ctx.stats().counter(
          "dir.interbank.msgs",
          "lock-mirror broadcast messages between LLC banks")),
      waitqDepth_(ctx.stats().distribution(
          "dir.waitq.depth", "requests queued behind a busy line at enqueue")) {
  if (numBanks == 0 || (numBanks & (numBanks - 1)) != 0) {
    throw std::invalid_argument(
        "directory bank count must be a power of two, got " +
        std::to_string(numBanks));
  }
  if (numBanks > numCores) {
    throw std::invalid_argument(
        "directory bank count (" + std::to_string(numBanks) +
        ") cannot exceed the core count (" + std::to_string(numCores) +
        "): each bank needs a distinct home node on the NoC");
  }
  banks_.reserve(numBanks);
  bankReqs_.reserve(numBanks);
  for (unsigned b = 0; b < numBanks; ++b) {
    banks_.emplace_back(sigParams);
    bankReqs_.push_back(
        &ctx.stats().counter(stats::statPath("dir.bank", b, "reqs")));
  }
}

void DirectoryController::connectL1(CoreId core, MsgSink* sink) {
  l1s_.at(static_cast<std::size_t>(core)) = sink;
}

void DirectoryController::preloadLlc(LineAddr from, LineAddr to) {
  if (to > from) {
    const std::size_t perBank = (to - from) / banks_.size() + 1;
    for (Bank& b : banks_) b.llc.reserve(b.llc.size() + perBank);
  }
  for (LineAddr l = from; l < to; ++l) {
    auto [data, inserted] = bankFor(l).llc.tryEmplace(l);
    if (inserted) *data = memory_.readLine(l);
  }
}

void DirectoryController::sendToL1(CoreId core, Msg msg) {
  MsgSink* sink = l1s_.at(static_cast<std::size_t>(core));
  assert(sink != nullptr);
  post(ctx_, net_, lineNode(msg.line), core, *sink, std::move(msg));
}

void DirectoryController::sendBankToBank(unsigned srcBank, unsigned dstBank,
                                         Msg msg) {
  ++interBankMsgs_;
  post(ctx_, net_, bankCtrlNode(srcBank), bankCtrlNode(dstBank), *this,
       std::move(msg));
}

mem::LineData& DirectoryController::llcFetch(Bank& b, LineAddr line, bool& cold) {
  if (mem::LineData* data = b.llc.find(line)) {
    cold = false;
    ++llcHits_;
    return *data;
  }
  cold = true;
  ++llcMisses_;
  mem::LineData* data = b.llc.tryEmplace(line).first;
  *data = memory_.readLine(line);
  return *data;
}

DirectoryController::DirSnapshot DirectoryController::snapshot(LineAddr line) const {
  DirSnapshot s;
  const Bank& b = bankFor(line);
  if (const DirInfo* d = b.dir.find(line)) {
    s.owner = d->owner;
    s.sharers = d->sharers;
  }
  s.busy = b.pending.contains(line);
  return s;
}

mem::LineData DirectoryController::llcData(LineAddr line) const {
  if (const mem::LineData* data = bankFor(line).llc.find(line)) return *data;
  return memory_.readLine(line);
}

bool DirectoryController::anyOverflow() const {
  for (const Bank& b : banks_) {
    if (b.hl.anyOverflow()) return true;
  }
  return false;
}

std::size_t DirectoryController::busyLines() const {
  std::size_t n = 0;
  for (const Bank& b : banks_) n += b.pending.size();
  return n;
}

std::string DirectoryController::diagnostic() const {
  std::ostringstream oss;
  oss << "directory: " << busyLines() << " busy lines";
  for (unsigned bi = 0; bi < banks_.size(); ++bi) {
    banks_[bi].pending.forEachOrdered([&](LineAddr line, const Pending& p) {
      oss << " [0x" << std::hex << line << std::dec << " " << toString(p.req.type)
          << " from c" << p.req.from << " acksLeft=" << p.acksLeft
          << (p.waitUnblock ? " waitUnblock" : "") << "]";
    });
  }
  if (arbiter_.active()) {
    oss << " HTMLock holder=c" << arbiter_.holder() << " (" << toString(arbiter_.holderMode())
        << ", " << arbiter_.queued() << " TL queued)";
  }
  if (interBankAcksPending() != 0) {
    oss << " interbank acks pending=" << interBankAcksPending();
  }
  return oss.str();
}

void DirectoryController::onMessage(const Msg& msg) {
  LKTM_LOG(sim::LogLevel::Trace, engine_.now(), "dir", "rx " + msg.str());
  switch (msg.type) {
    case MsgType::GetS:
    case MsgType::GetX: {
      Bank& b = bankFor(msg.line);
      if (b.pending.contains(msg.line)) {
        std::deque<Msg>& q = b.waitq[msg.line];
        q.push_back(msg);
        waitqDepth_.record(q.size());
        return;
      }
      startRequest(msg);
      return;
    }
    case MsgType::Unblock: {
      const Pending* p = bankFor(msg.line).pending.find(msg.line);
      // Unblock must match an in-flight transaction.
      if (p == nullptr || !p->waitUnblock) {
        throw std::logic_error("stray Unblock at directory");
      }
      finishPending(msg.line);
      return;
    }
    case MsgType::InvAck: return onInvResponse(msg, /*rejected=*/false);
    case MsgType::InvReject: return onInvResponse(msg, /*rejected=*/true);
    case MsgType::FwdAck:
    case MsgType::FwdAckTxInv:
    case MsgType::FwdReject: return onFwdResponse(msg);
    case MsgType::PutM: return onPutM(msg);
    case MsgType::WbClean: {
      bankFor(msg.line).llc[msg.line] = msg.data;
      return;
    }
    case MsgType::TxAbortInv: {
      Bank& b = bankFor(msg.line);
      if (b.pending.contains(msg.line)) {
        // A forward for this line is in flight to the aborting owner; its
        // response (FwdAckTxInv) will carry the state fix. Drop.
        return;
      }
      if (DirInfo* d = b.dir.find(msg.line); d != nullptr && d->owner == msg.from) {
        d->owner = kNoCore;
      }
      return;
    }
    case MsgType::SigAdd: return onSigAdd(msg);
    case MsgType::SigClear: return onSigClear(msg);
    case MsgType::HlaReq: return onHlaReq(msg);
    case MsgType::BankLockSet: return onBankLockSet(msg);
    case MsgType::BankLockAck: return onBankLockAck(msg);
    case MsgType::BankLockClear: return onBankLockClear(msg);
    case MsgType::BankClearAck: return onBankClearAck(msg);
    default:
      throw std::logic_error(std::string("directory cannot handle ") + toString(msg.type));
  }
}

void DirectoryController::startRequest(const Msg& msg) {
  sim::traceInstant(ctx_, TraceCat::Directory, "dir_busy", kDirectoryLane,
                    {"line", msg.line},
                    {"from", static_cast<std::uint64_t>(msg.from)});
  Bank& b = bankFor(msg.line);
  ++*bankReqs_[bankOfLine(msg.line)];
  Pending& p = *b.pending.tryEmplace(msg.line).first;
  p.req = PendingReq{msg.type, msg.line, msg.from, msg.req};
  p.acksLeft = 0;
  p.anyReject = false;
  p.rejectHint = AbortCause::MemConflict;
  p.waitUnblock = false;
  // LLC/tag access latency; cold lines additionally pay the memory latency.
  const bool cold = !b.llc.contains(msg.line);
  const Cycle lat = params_.llcLatency + (cold ? params_.memLatency : 0);
  engine_.schedule(lat, [this, line = msg.line]() { handleRequest(line); });
}

void DirectoryController::handleRequest(LineAddr line) {
  Bank& b = bankFor(line);
  Pending* pp = b.pending.find(line);
  assert(pp != nullptr);
  Pending& p = *pp;
  DirInfo& d = b.dir[line];
  bool cold = false;
  llcFetch(b, line, cold);  // materialize data

  // HTMLock mechanism: LLC overflow-signature filter (Fig 5 step 3),
  // answered entirely from this bank's signatures and lock mirror.
  const bool wantX = p.req.type == MsgType::GetX;
  if (b.hl.shouldReject(line, wantX, d.hasCopies(), p.req.from)) {
    ++sigRejects_;
    sim::traceInstant(ctx_, TraceCat::Directory, "sig_reject", kDirectoryLane,
                      {"line", line},
                      {"core", static_cast<std::uint64_t>(p.req.from)});
    b.hl.recordWaiter(line, p.req.from);
    sendReject(p.req, AbortCause::LockConflict);
    finishPending(line);
    return;
  }

  if (wantX) {
    handleGetX(b, p, d);
  } else {
    handleGetS(b, p, d);
  }
}

void DirectoryController::handleGetS(Bank& b, Pending& p, DirInfo& d) {
  const LineAddr line = p.req.line;
  const CoreId r = p.req.from;
  if (d.owner == r || !d.hasCopies()) {
    // No other copies (or the owner silently dropped a clean line and is
    // re-requesting): grant exclusive, MESI E-state optimization.
    Msg resp{.type = MsgType::DataE, .line = line, .data = b.llc[line], .hasData = true};
    d.owner = r;
    d.sharers.clear();
    p.waitUnblock = true;
    sendToL1(r, std::move(resp));
    return;
  }
  if (d.owner != kNoCore) {
    Msg fwd{.type = MsgType::FwdGetS, .line = line, .req = p.req.req};
    p.acksLeft = 1;
    sendToL1(d.owner, std::move(fwd));
    return;
  }
  // Shared: serve from LLC.
  Msg resp{.type = MsgType::DataS, .line = line, .data = b.llc[line], .hasData = true};
  d.sharers.insert(r);
  p.waitUnblock = true;
  sendToL1(r, std::move(resp));
}

void DirectoryController::handleGetX(Bank& b, Pending& p, DirInfo& d) {
  const LineAddr line = p.req.line;
  const CoreId r = p.req.from;
  if (d.owner == r) {
    // Owner silently dropped its clean copy and wants it back exclusively.
    Msg resp{.type = MsgType::DataE, .line = line, .data = b.llc[line], .hasData = true};
    p.waitUnblock = true;
    sendToL1(r, std::move(resp));
    return;
  }
  if (d.owner != kNoCore) {
    Msg fwd{.type = MsgType::FwdGetX, .line = line, .req = p.req.req};
    p.acksLeft = 1;
    sendToL1(d.owner, std::move(fwd));
    return;
  }
  // Count sharers other than the requester.
  unsigned others = 0;
  for (CoreId s : d.sharers) {
    if (s != r) ++others;
  }
  if (others == 0) {
    // Even when the requester is a listed sharer, send data: it may have
    // silently dropped its clean copy, and the directory cannot tell.
    Msg resp{.type = MsgType::DataE, .line = line, .data = b.llc[line], .hasData = true};
    d.sharers.clear();
    d.owner = r;
    p.waitUnblock = true;
    sendToL1(r, std::move(resp));
    return;
  }
  if (bug_ == InjectedBug::SwmrSkipInvalidation) {
    // Injected defect: grant exclusive data while the sharers keep their
    // copies and stay listed — the requester and every sharer now hold the
    // line simultaneously, violating SWMR.
    Msg resp{.type = MsgType::DataE, .line = line, .data = b.llc[line], .hasData = true};
    d.owner = r;
    p.waitUnblock = true;
    sendToL1(r, std::move(resp));
    return;
  }
  p.acksLeft = others;
  for (CoreId s : d.sharers) {
    if (s == r) continue;
    Msg inv{.type = MsgType::Inv, .line = line, .req = p.req.req};
    sendToL1(s, std::move(inv));
  }
}

void DirectoryController::hashState(sim::StateHasher& h) const {
  h.section(0x30);  // LLC data, per bank
  for (const Bank& b : banks_) {
    b.llc.forEachOrdered([&](LineAddr line, const mem::LineData& data) {
      h.put(line);
      for (std::uint64_t word : data) h.put(word);
    });
  }

  h.section(0x31);  // directory entries, per bank
  for (const Bank& b : banks_) {
    b.dir.forEachOrdered([&](LineAddr line, const DirInfo& d) {
      h.put(line);
      h.put(static_cast<std::uint64_t>(d.owner));
      for (std::uint64_t w : d.sharers.rawWords()) h.put(w);
    });
  }

  h.section(0x32);  // pending per-line transactions, per bank
  for (const Bank& b : banks_) {
    b.pending.forEachOrdered([&](LineAddr line, const Pending& p) {
      h.put(line);
      h.put(static_cast<std::uint64_t>(p.req.type));
      h.put(static_cast<std::uint64_t>(p.req.from));
      h.put(static_cast<std::uint64_t>(p.req.req.core));
      h.put((p.req.req.isTx ? 1u : 0u) | (p.req.req.lockMode ? 2u : 0u) |
            (p.req.req.wantsExclusive ? 4u : 0u));
      h.put(p.req.req.priority);
      h.put(p.acksLeft);
      h.put((p.anyReject ? 1u : 0u) | (p.waitUnblock ? 2u : 0u));
      h.put(static_cast<std::uint64_t>(p.rejectHint));
    });
  }

  h.section(0x33);  // queued requests, FIFO order per line, per bank
  for (const Bank& b : banks_) {
    b.waitq.forEachOrdered([&](LineAddr line, const std::deque<Msg>& q) {
      h.put(line);
      for (const Msg& m : q) h.put(msgFingerprint(m));
    });
  }

  h.section(0x34);  // HTMLock arbiter + inter-bank broadcast bookkeeping
  h.put(static_cast<std::uint64_t>(arbiter_.holder()));
  h.put(static_cast<std::uint64_t>(arbiter_.holderMode()));
  for (CoreId c : arbiter_.tlQueue()) h.put(static_cast<std::uint64_t>(c));
  h.put(lockAcksLeft_);
  h.put(static_cast<std::uint64_t>(lockGrantee_));
  h.put(static_cast<std::uint64_t>(lockGranteeMode_));
  h.put(clearAcksLeft_);
  h.put(static_cast<std::uint64_t>(clearingCore_));

  h.section(0x35);  // per-bank lock mirrors, overflow signatures + waiters
  for (const Bank& b : banks_) {
    h.put(static_cast<std::uint64_t>(b.hl.lockHolder()));
    h.put(static_cast<std::uint64_t>(b.hl.lockMode()));
    for (std::uint64_t w : b.hl.readSig().rawWords()) h.put(w);
    for (std::uint64_t w : b.hl.writeSig().rawWords()) h.put(w);
    b.hl.waiters().forEach([&](LineAddr line, CoreId core) {
      h.put(line);
      h.put(static_cast<std::uint64_t>(core));
    });
  }
}

void DirectoryController::sendReject(const PendingReq& req, AbortCause hint) {
  Msg resp{.type = MsgType::RejectResp, .line = req.line, .rejectHint = hint};
  sendToL1(req.from, std::move(resp));
}

void DirectoryController::onInvResponse(const Msg& msg, bool rejected) {
  Bank& b = bankFor(msg.line);
  Pending* pp = b.pending.find(msg.line);
  assert(pp != nullptr && pp->acksLeft > 0);
  Pending& p = *pp;
  DirInfo& d = b.dir[msg.line];
  if (rejected) {
    p.anyReject = true;
    if (msg.rejectHint == AbortCause::LockConflict) p.rejectHint = AbortCause::LockConflict;
    // Rejecting sharer keeps its copy: stays in the sharer list.
  } else {
    d.sharers.erase(msg.from);
  }
  if (--p.acksLeft > 0) return;

  const CoreId r = p.req.from;
  if (p.anyReject) {
    sendReject(p.req, p.rejectHint);
    finishPending(msg.line);
    return;
  }
  Msg resp{.type = MsgType::DataE, .line = msg.line, .data = b.llc[msg.line],
           .hasData = true};
  d.sharers.clear();
  d.owner = r;
  p.waitUnblock = true;
  sendToL1(r, std::move(resp));
}

void DirectoryController::onFwdResponse(const Msg& msg) {
  Bank& b = bankFor(msg.line);
  Pending* pp = b.pending.find(msg.line);
  assert(pp != nullptr && pp->acksLeft == 1);
  Pending& p = *pp;
  DirInfo& d = b.dir[msg.line];
  const CoreId r = p.req.from;
  const bool isGetX = p.req.type == MsgType::GetX;

  switch (msg.type) {
    case MsgType::FwdReject:
      sendReject(p.req, msg.rejectHint);
      finishPending(msg.line);
      return;
    case MsgType::FwdAckTxInv: {
      // Fig 3: the owner invalidated itself (aborted speculative line or a
      // silently-dropped clean copy); the LLC copy is current, so the
      // requester receives exclusive data either way.
      d.owner = r;
      d.sharers.clear();
      Msg resp{.type = MsgType::DataE, .line = msg.line, .data = b.llc[msg.line], .hasData = true};
      p.acksLeft = 0;
      p.waitUnblock = true;
      sendToL1(r, std::move(resp));
      return;
    }
    case MsgType::FwdAck: {
      if (msg.hasData) {
        b.llc[msg.line] = msg.data;
        ++writebacks_;
      }
      Msg resp;
      if (isGetX) {
        d.sharers.clear();
        d.owner = r;
        resp = Msg{.type = MsgType::DataE, .line = msg.line, .data = b.llc[msg.line], .hasData = true};
      } else {
        const CoreId prevOwner = d.owner;
        d.owner = kNoCore;
        d.sharers.insert(r);
        if (msg.keptCopy && prevOwner != kNoCore) d.sharers.insert(prevOwner);
        resp = Msg{.type = MsgType::DataS, .line = msg.line, .data = b.llc[msg.line], .hasData = true};
      }
      p.acksLeft = 0;
      p.waitUnblock = true;
      sendToL1(r, std::move(resp));
      return;
    }
    default:
      throw std::logic_error("unexpected forward response");
  }
}

void DirectoryController::onPutM(const Msg& msg) {
  Bank& b = bankFor(msg.line);
  if (DirInfo* d = b.dir.find(msg.line); d != nullptr && d->owner == msg.from) {
    b.llc[msg.line] = msg.data;
    d->owner = kNoCore;
    ++writebacks_;
  }
  // Stale PutM (ownership already moved via a forward served from the
  // writeback buffer): the data was already delivered; just ack.
  Msg ack{.type = MsgType::PutAck, .line = msg.line};
  sendToL1(msg.from, std::move(ack));
}

void DirectoryController::onSigAdd(const Msg& msg) {
  Bank& b = bankFor(msg.line);
  b.hl.noteOverflow(msg.line, msg.sigIsWrite);
  if (DirInfo* d = b.dir.find(msg.line)) {
    if (d->owner == msg.from) d->owner = kNoCore;
    d->sharers.erase(msg.from);
  }
  if (msg.hasData) {
    b.llc[msg.line] = msg.data;
    ++writebacks_;
    Msg ack{.type = MsgType::PutAck, .line = msg.line};
    sendToL1(msg.from, std::move(ack));
  }
}

void DirectoryController::onSigClear(const Msg& msg) {
  // hlend arrives at the home bank (SigClear carries line 0). The home bank
  // clears locally right away; remote banks clear when BankLockClear reaches
  // them, and the arbiter slot is only released once every bank acked — a
  // successor's spills must never race a stale clear.
  assert(lockAcksLeft_ == 0 && clearAcksLeft_ == 0 &&
         "overlapping HTMLock hand-offs");
  clearBankAndWake(0);
  if (banks_.size() == 1) {
    finishRelease(msg.from);
    return;
  }
  clearingCore_ = msg.from;
  clearAcksLeft_ = static_cast<unsigned>(banks_.size()) - 1;
  for (unsigned b = 1; b < banks_.size(); ++b) {
    Msg clear{.type = MsgType::BankLockClear, .from = msg.from, .bank = b};
    sendBankToBank(0, b, std::move(clear));
  }
}

void DirectoryController::onHlaReq(const Msg& msg) {
  switch (arbiter_.request(msg.from, msg.hlaMode)) {
    case core::SwitchArbiter::Verdict::Grant:
      beginLockBroadcast(msg.from, msg.hlaMode);
      return;
    case core::SwitchArbiter::Verdict::Deny: {
      Msg deny{.type = MsgType::HlaDeny, .line = 0};
      sendToL1(msg.from, std::move(deny));
      return;
    }
    case core::SwitchArbiter::Verdict::Queued:
      return;  // granted later, on SigClear of the current holder
  }
}

void DirectoryController::beginLockBroadcast(CoreId core, TxMode mode) {
  banks_[0].hl.setLock(core, mode);  // home mirror updates synchronously
  if (banks_.size() == 1) {
    Msg grant{.type = MsgType::HlaGrant, .line = 0};
    sendToL1(core, std::move(grant));
    return;
  }
  lockGrantee_ = core;
  lockGranteeMode_ = mode;
  lockAcksLeft_ = static_cast<unsigned>(banks_.size()) - 1;
  for (unsigned b = 1; b < banks_.size(); ++b) {
    Msg set{.type = MsgType::BankLockSet, .from = core, .bank = b, .hlaMode = mode};
    sendBankToBank(0, b, std::move(set));
  }
}

void DirectoryController::finishRelease(CoreId core) {
  banks_[0].hl.clearLock();
  if (auto next = arbiter_.release(core)) {
    beginLockBroadcast(*next, TxMode::TL);
  }
}

void DirectoryController::clearBankAndWake(unsigned bank) {
  for (const auto& w : banks_[bank].hl.clearAndDrain()) {
    Msg wake{.type = MsgType::Wakeup, .line = w.line};
    sendToL1(w.core, std::move(wake));
  }
  if (bank != 0) banks_[bank].hl.clearLock();
  // Bank 0's mirror is cleared in finishRelease: the home bank keeps
  // rejecting on the holder's behalf until the slot actually changes hands.
}

void DirectoryController::onBankLockSet(const Msg& msg) {
  banks_.at(msg.bank).hl.setLock(msg.from, msg.hlaMode);
  Msg ack{.type = MsgType::BankLockAck, .from = msg.from, .bank = msg.bank};
  sendBankToBank(msg.bank, 0, std::move(ack));
}

void DirectoryController::onBankLockAck(const Msg& msg) {
  (void)msg;
  assert(lockAcksLeft_ > 0);
  if (--lockAcksLeft_ > 0) return;
  Msg grant{.type = MsgType::HlaGrant, .line = 0};
  const CoreId grantee = lockGrantee_;
  lockGrantee_ = kNoCore;
  lockGranteeMode_ = TxMode::None;
  sendToL1(grantee, std::move(grant));
}

void DirectoryController::onBankLockClear(const Msg& msg) {
  clearBankAndWake(msg.bank);
  Msg ack{.type = MsgType::BankClearAck, .from = msg.from, .bank = msg.bank};
  sendBankToBank(msg.bank, 0, std::move(ack));
}

void DirectoryController::onBankClearAck(const Msg& msg) {
  (void)msg;
  assert(clearAcksLeft_ > 0);
  if (--clearAcksLeft_ > 0) return;
  const CoreId releasing = clearingCore_;
  clearingCore_ = kNoCore;
  finishRelease(releasing);
}

void DirectoryController::finishPending(LineAddr line) {
  sim::traceInstant(ctx_, TraceCat::Directory, "dir_done", kDirectoryLane,
                    {"line", line});
  Bank& b = bankFor(line);
  b.pending.erase(line);
  std::deque<Msg>* q = b.waitq.find(line);
  if (q == nullptr) return;  // common case: nobody queued behind this line
  if (q->empty()) {
    b.waitq.erase(line);
    return;
  }
  Msg next = q->front();
  q->pop_front();
  if (q->empty()) b.waitq.erase(line);
  startRequest(next);
}

}  // namespace lktm::coh
