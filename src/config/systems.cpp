#include "config/systems.hpp"

#include <cstring>
#include <stdexcept>

#include "runtime/backends/backend.hpp"

namespace lktm::cfg {

namespace {
using core::ConflictPolicy;
using core::PriorityKind;
using core::RejectAction;
using core::TmPolicy;

TmPolicy cgl() {
  TmPolicy p;
  p.htmEnabled = false;
  return p;
}

TmPolicy baseline() {
  TmPolicy p;  // requester-wins, lock subscription — commercial best-effort
  return p;
}

TmPolicy losaSafu() {
  // LosaTM-SAFU approximation: NACK-style recovery with progression-based
  // priority and stall-and-wake conflict handling; no false-sharing or
  // capacity-overflow optimizations (that is the -SAFU configuration).
  TmPolicy p;
  p.conflict = ConflictPolicy::Recovery;
  p.rejectAction = RejectAction::WaitWakeup;
  p.priority = PriorityKind::Progression;
  return p;
}

TmPolicy recovery(RejectAction action, PriorityKind prio) {
  TmPolicy p;
  p.conflict = ConflictPolicy::Recovery;
  p.rejectAction = action;
  p.priority = prio;
  return p;
}

TmPolicy withHtmLock(TmPolicy p) {
  p.htmLock = true;
  p.subscribeLock = false;  // the grey software change of Listing 1
  return p;
}

TmPolicy withSwitching(TmPolicy p) {
  p.switching = true;
  return p;
}

/// Policy backing a backend-defined Table II row. The backend decides the
/// execution path itself; the policy only has to agree with it about whether
/// the HTM hardware may be engaged.
TmPolicy policyForBackend(const char* backendName) {
  TmPolicy p;
  if (std::strcmp(backendName, "tl2") == 0 ||
      std::strcmp(backendName, "cgl") == 0) {
    p.htmEnabled = false;  // pure software: HTM never engaged
  } else {
    // hybrid: best-effort HTM, but no fallback-lock subscription — the HTM
    // path subscribes the STM commit clock instead.
    p.subscribeLock = false;
  }
  return p;
}
}  // namespace

std::vector<SystemSpec> evaluatedSystems() {
  std::vector<SystemSpec> out;
  out.push_back({"CGL", "Coarse-grained locking with the same granularity of transactions",
                 cgl(), {}});
  out.push_back({"Baseline", "Best-Effort HTM with requester-win", baseline(), {}});
  out.push_back({"LosaTM-SAFU",
                 "LosaTM without False Sharing and Capacity Overflow OPT",
                 losaSafu(), {}});
  out.push_back({"Lockiller-RAI", "Baseline + Recovery + SelfAbort + InstsBasedPriority",
                 recovery(RejectAction::SelfAbort, PriorityKind::InstsBased), {}});
  out.push_back({"Lockiller-RRI",
                 "Baseline + Recovery + SelfRetryLater + InstsBasedPriority",
                 recovery(RejectAction::RetryLater, PriorityKind::InstsBased), {}});
  out.push_back({"Lockiller-RWI", "Baseline + Recovery + WaitWakeup + InstsBasedPriority",
                 recovery(RejectAction::WaitWakeup, PriorityKind::InstsBased), {}});
  out.push_back({"Lockiller-RWL", "Baseline + Recovery + WaitWakeup + HTMLock",
                 withHtmLock(recovery(RejectAction::WaitWakeup, PriorityKind::None)), {}});
  out.push_back({"Lockiller-RWIL", "Lockiller-RWI + HTMLock",
                 withHtmLock(recovery(RejectAction::WaitWakeup, PriorityKind::InstsBased)),
                 {}});
  out.push_back(
      {"LockillerTM", "Lockiller-RWI + HTMLock + SwitchingMode",
       withSwitching(withHtmLock(recovery(RejectAction::WaitWakeup, PriorityKind::InstsBased))),
       {}});
  // Backend-defined rows (TL2-STM, Hybrid-TM): one per registry entry that
  // declares itself a Table II system, so bench/table2_systems and this list
  // can never drift apart.
  for (const tm::BackendInfo& info : tm::backendRegistry()) {
    if (info.systemRow == nullptr) continue;
    out.push_back({info.systemRow, info.systemDesc, policyForBackend(info.name),
                   {}, info.name});
  }
  return out;
}

SystemSpec systemByName(const std::string& name) {
  for (auto& s : evaluatedSystems()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown system: " + name);
}

}  // namespace lktm::cfg
