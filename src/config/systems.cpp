#include "config/systems.hpp"

#include <stdexcept>

namespace lktm::cfg {

namespace {
using core::ConflictPolicy;
using core::PriorityKind;
using core::RejectAction;
using core::TmPolicy;

TmPolicy cgl() {
  TmPolicy p;
  p.htmEnabled = false;
  return p;
}

TmPolicy baseline() {
  TmPolicy p;  // requester-wins, lock subscription — commercial best-effort
  return p;
}

TmPolicy losaSafu() {
  // LosaTM-SAFU approximation: NACK-style recovery with progression-based
  // priority and stall-and-wake conflict handling; no false-sharing or
  // capacity-overflow optimizations (that is the -SAFU configuration).
  TmPolicy p;
  p.conflict = ConflictPolicy::Recovery;
  p.rejectAction = RejectAction::WaitWakeup;
  p.priority = PriorityKind::Progression;
  return p;
}

TmPolicy recovery(RejectAction action, PriorityKind prio) {
  TmPolicy p;
  p.conflict = ConflictPolicy::Recovery;
  p.rejectAction = action;
  p.priority = prio;
  return p;
}

TmPolicy withHtmLock(TmPolicy p) {
  p.htmLock = true;
  p.subscribeLock = false;  // the grey software change of Listing 1
  return p;
}

TmPolicy withSwitching(TmPolicy p) {
  p.switching = true;
  return p;
}
}  // namespace

std::vector<SystemSpec> evaluatedSystems() {
  std::vector<SystemSpec> out;
  out.push_back({"CGL", "Coarse-grained locking with the same granularity of transactions",
                 cgl(), {}});
  out.push_back({"Baseline", "Best-Effort HTM with requester-win", baseline(), {}});
  out.push_back({"LosaTM-SAFU",
                 "LosaTM without False Sharing and Capacity Overflow OPT",
                 losaSafu(), {}});
  out.push_back({"Lockiller-RAI", "Baseline + Recovery + SelfAbort + InstsBasedPriority",
                 recovery(RejectAction::SelfAbort, PriorityKind::InstsBased), {}});
  out.push_back({"Lockiller-RRI",
                 "Baseline + Recovery + SelfRetryLater + InstsBasedPriority",
                 recovery(RejectAction::RetryLater, PriorityKind::InstsBased), {}});
  out.push_back({"Lockiller-RWI", "Baseline + Recovery + WaitWakeup + InstsBasedPriority",
                 recovery(RejectAction::WaitWakeup, PriorityKind::InstsBased), {}});
  out.push_back({"Lockiller-RWL", "Baseline + Recovery + WaitWakeup + HTMLock",
                 withHtmLock(recovery(RejectAction::WaitWakeup, PriorityKind::None)), {}});
  out.push_back({"Lockiller-RWIL", "Lockiller-RWI + HTMLock",
                 withHtmLock(recovery(RejectAction::WaitWakeup, PriorityKind::InstsBased)),
                 {}});
  out.push_back(
      {"LockillerTM", "Lockiller-RWI + HTMLock + SwitchingMode",
       withSwitching(withHtmLock(recovery(RejectAction::WaitWakeup, PriorityKind::InstsBased))),
       {}});
  return out;
}

SystemSpec systemByName(const std::string& name) {
  for (auto& s : evaluatedSystems()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown system: " + name);
}

}  // namespace lktm::cfg
