// The evaluated systems of the paper's Table II.
#pragma once

#include <string>
#include <vector>

#include "core/conflict_manager.hpp"
#include "runtime/retry_policy.hpp"

namespace lktm::cfg {

struct SystemSpec {
  std::string name;
  std::string description;
  core::TmPolicy policy{};
  rt::RetryPolicy retry{};
};

/// All nine rows of Table II, in paper order:
/// CGL, Baseline, LosaTM-SAFU, Lockiller-RAI, -RRI, -RWI, -RWL, -RWIL,
/// LockillerTM.
std::vector<SystemSpec> evaluatedSystems();

SystemSpec systemByName(const std::string& name);

}  // namespace lktm::cfg
