// The evaluated systems of the paper's Table II.
#pragma once

#include <string>
#include <vector>

#include "core/conflict_manager.hpp"
#include "runtime/retry_policy.hpp"

namespace lktm::cfg {

struct SystemSpec {
  std::string name;
  std::string description;
  core::TmPolicy policy{};
  rt::RetryPolicy retry{};
  /// TM backend this row runs on. Empty = pick from the policy
  /// (tm::defaultBackendFor); a machine-name `-be=` suffix overrides both.
  std::string backend;
};

/// All eleven evaluated rows: the paper's Table II in paper order
/// (CGL, Baseline, LosaTM-SAFU, Lockiller-RAI, -RRI, -RWI, -RWL, -RWIL,
/// LockillerTM) plus one row per backend-defined system from the backend
/// registry (TL2-STM, Hybrid-TM).
std::vector<SystemSpec> evaluatedSystems();

SystemSpec systemByName(const std::string& name);

}  // namespace lktm::cfg
