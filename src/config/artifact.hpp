// Versioned machine-readable run artifacts (`--stats-json`). One schema —
// "lktm.stats.v1" — shared by lktm_sim, the sweep tools and the
// validate_stats_json checker:
//
//   {
//     "schema": "lktm.stats.v1",
//     "runs": [ {
//       "system": ..., "workload": ..., "machine": ..., "threads": N,
//       "seed": N, "cycles": N, "ok": bool,
//       "status": "ok" | "failed" | "hang" | "timeout",
//       "hang": bool,                  // status == "hang" (legacy consumers)
//       "diagnostic": "...",           // failure detail, "" when ok
//       "wall_seconds": f,
//       "violations": [ ... ],
//       "derived": { "commit_rate": f, "total_commits": N, ... },
//       "stats": [ {"path": "core.0.commits.htm", "kind": "counter",
//                   "value": N},
//                  {"path": "noc.hops", "kind": "histogram", "count": N,
//                   "sum": N, "buckets": [[b, n], ...]},
//                  {"path": "dir.waitq.depth", "kind": "distribution",
//                   "count": N, "sum": N, "min": N, "max": N},
//                  {"path": "noc.avg_flit_hops_per_msg", "kind": "formula",
//                   "value": f} ]
//     } ]
//   }
//
// Stats are emitted in path-sorted order and all numbers are
// locale-independent, so the same run always produces byte-identical output.
#pragma once

#include <iosfwd>
#include <vector>

#include "config/runner.hpp"
#include "stats/json.hpp"
#include "stats/registry.hpp"

namespace lktm::cfg {

inline constexpr const char* kStatsSchema = "lktm.stats.v1";
/// Compact per-cell companion of a merged lktm.stats.v1 document: identity +
/// cycles + derived metrics per run, no full stat snapshot. What the repo
/// commits for big grids (plus the command to regenerate the full artifact)
/// instead of megabytes of raw counters.
inline constexpr const char* kSummarySchema = "lktm.summary.v1";

/// Emit one snapshot as the schema's "stats" array (used by the artifact
/// writer and by trace/counterexample embeddings).
void writeSnapshotJson(stats::json::Writer& w, const stats::StatSnapshot& snap);

/// Write the full artifact document for one or more runs.
void writeStatsJson(std::ostream& os, const std::vector<const RunResult*>& runs);
void writeStatsJson(std::ostream& os, const RunResult& run);

/// Write the artifact to `path`; returns false (with a message on stderr)
/// when the file cannot be opened.
bool writeStatsJsonFile(const std::string& path, const RunResult& run);

/// Atomic variant: write `path + tmpSuffix`, then rename over `path`.
/// Concurrent writers (distributed sweep workers double-executing a job
/// after a spurious reclaim) must each use a distinct suffix; readers then
/// never see a torn file and the last rename wins with identical bytes.
bool writeStatsJsonFileAtomic(const std::string& path, const RunResult& run,
                              const std::string& tmpSuffix);

/// Reduce a parsed lktm.stats.v1 document to its lktm.summary.v1 companion:
/// per run, the identity/scale fields and the "derived" block, re-emitted
/// through the raw-literal writer so the summary bytes are as deterministic
/// as the merge they came from. Throws std::runtime_error when `statsDoc` is
/// not a stats artifact.
void writeSummaryArtifact(const stats::json::Value& statsDoc, std::ostream& os);

/// Rebuild a RunResult from one parsed "runs" entry — the inverse of the
/// writer as far as a dump allows (formula stats come back as plain values;
/// that is also what snapshot merging already assumes). Throws
/// std::runtime_error on a malformed entry.
RunResult runResultFromJson(const stats::json::Value& run);

/// Load a single-run artifact file written by writeStatsJsonFile. Throws
/// std::runtime_error when the file is unreadable or not a one-run
/// lktm.stats.v1 document.
RunResult loadStatsArtifact(const std::string& path);

}  // namespace lktm::cfg
