// Versioned machine-readable run artifacts (`--stats-json`). One schema —
// "lktm.stats.v1" — shared by lktm_sim, the sweep tools and the
// validate_stats_json checker:
//
//   {
//     "schema": "lktm.stats.v1",
//     "runs": [ {
//       "system": ..., "workload": ..., "machine": ..., "threads": N,
//       "seed": N, "cycles": N, "ok": bool,
//       "status": "ok" | "failed" | "hang" | "timeout",
//       "hang": bool,                  // status == "hang" (legacy consumers)
//       "diagnostic": "...",           // failure detail, "" when ok
//       "wall_seconds": f,
//       "violations": [ ... ],
//       "derived": { "commit_rate": f, "total_commits": N, ... },
//       "stats": [ {"path": "core.0.commits.htm", "kind": "counter",
//                   "value": N},
//                  {"path": "noc.hops", "kind": "histogram", "count": N,
//                   "sum": N, "buckets": [[b, n], ...]},
//                  {"path": "dir.waitq.depth", "kind": "distribution",
//                   "count": N, "sum": N, "min": N, "max": N},
//                  {"path": "noc.avg_flit_hops_per_msg", "kind": "formula",
//                   "value": f} ]
//     } ]
//   }
//
// Stats are emitted in path-sorted order and all numbers are
// locale-independent, so the same run always produces byte-identical output.
#pragma once

#include <iosfwd>
#include <vector>

#include "config/runner.hpp"
#include "stats/json.hpp"
#include "stats/registry.hpp"

namespace lktm::cfg {

inline constexpr const char* kStatsSchema = "lktm.stats.v1";

/// Emit one snapshot as the schema's "stats" array (used by the artifact
/// writer and by trace/counterexample embeddings).
void writeSnapshotJson(stats::json::Writer& w, const stats::StatSnapshot& snap);

/// Write the full artifact document for one or more runs.
void writeStatsJson(std::ostream& os, const std::vector<const RunResult*>& runs);
void writeStatsJson(std::ostream& os, const RunResult& run);

/// Write the artifact to `path`; returns false (with a message on stderr)
/// when the file cannot be opened.
bool writeStatsJsonFile(const std::string& path, const RunResult& run);

/// Rebuild a RunResult from one parsed "runs" entry — the inverse of the
/// writer as far as a dump allows (formula stats come back as plain values;
/// that is also what snapshot merging already assumes). Throws
/// std::runtime_error on a malformed entry.
RunResult runResultFromJson(const stats::json::Value& run);

/// Load a single-run artifact file written by writeStatsJsonFile. Throws
/// std::runtime_error when the file is unreadable or not a one-run
/// lktm.stats.v1 document.
RunResult loadStatsArtifact(const std::string& path);

}  // namespace lktm::cfg
