// Manifest-driven experiment orchestrator: the layer between the raw
// worker-pool sweep (config/sweep.hpp) and the figure suite. A sweep is
// described by a persistent manifest ("lktm.manifest.v1", written through the
// same JSON layer as the stats artifacts) recording every job's spec, seed,
// state, attempt count and artifact path. runManifest() executes the pending
// jobs, checkpoints the manifest after every completion, and writes one
// lktm.stats.v1 artifact per job — so a killed sweep resumes exactly where it
// stopped, skipping completed jobs.
//
// Determinism contract (regression-tested): an interrupted-and-resumed sweep
// produces a merged artifact bit-identical to an uninterrupted one, at any
// hostThreads. Per-job results depend only on the job spec; host-timing
// fields (wall_seconds) are zeroed in the merged document because they are
// the one thing a host cannot reproduce.
//
// Failure taxonomy: a job ends Ok/Failed/Hang/Timeout (RunStatus). Wall-clock
// timeouts and TransientJobError throws are *transient* — the orchestrator
// retries them in place with exponential backoff up to maxAttempts. Cycle-
// budget timeouts, hangs, violations and crashes are deterministic: retrying
// would reproduce them, so they fail fast and stay recorded.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/sweep.hpp"

namespace lktm::cfg {

/// Current manifest schema. v2 adds the top-level "shards" count backing the
/// distributed worker-pull protocol (config/distrib.hpp); v1 documents load
/// transparently with shards = 1.
inline constexpr const char* kManifestSchema = "lktm.manifest.v2";
inline constexpr const char* kManifestSchemaV1 = "lktm.manifest.v1";

/// Throw this from a job runner to mark the failure as transient (worth a
/// bounded retry): host resource hiccups, injected flakiness in tests, …
class TransientJobError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Manifest-side job lifecycle. Pending/Running are orchestration states; the
/// terminal states mirror RunStatus (with Failed also covering invariant
/// violations). A Running entry found on load is a stale marker from a killed
/// sweep and is normalized back to Pending.
enum class JobState : std::uint8_t { Pending, Running, Ok, Failed, Hang, Timeout };

const char* toString(JobState s);
/// Inverse of toString; returns false on an unknown name.
bool jobStateFromString(const std::string& name, JobState& out);
/// Terminal state for a finished run.
JobState jobStateOf(const RunResult& r);

/// Identity of one simulation cell. `machine` is stored by preset name
/// (machineByName) so the manifest stays a plain-text document.
struct JobSpec {
  std::string system;
  std::string workload;
  std::string machine = "typical";
  unsigned threads = 0;
  /// Workload-generation seed; the run's RNG-stream seed is derived from it
  /// and the other coordinates via jobRunSeed().
  std::uint64_t seed = kDefaultSweepSeed;

  /// Stable human-readable identity, unique within a manifest:
  /// "system/workload/machine@threads#seed".
  std::string id() const;
  bool operator==(const JobSpec&) const = default;
};

/// Filesystem-safe name for everything keyed by one job: its per-job artifact
/// is "<stem>.json" and its claim/done spool entries are the bare stem. The
/// sanitized id is shared so the artifact a worker wrote and the claim it
/// held always agree on the job they describe.
std::string jobFileStem(const JobSpec& spec);

struct JobRecord {
  JobSpec spec;
  JobState state = JobState::Pending;
  unsigned attempts = 0;        ///< runs consumed (across resumes)
  std::string diagnostic;       ///< failure detail, "" while pending/ok
  std::string artifact;         ///< per-job lktm.stats.v1 path ("" until Ok)
  double wallSeconds = 0.0;     ///< host seconds of the last attempt
  std::uint64_t cycles = 0;     ///< simulated cycles of the last attempt
};

struct SweepManifest {
  /// Directory per-job artifacts are written into (created on demand).
  std::string artifactDir;
  /// Shard count for distributed fan-out (>= 1). Purely advisory for the
  /// single-process runner; `lktm_sweep work` uses it with jobShard() so
  /// every worker computes the same job -> shard map with no coordination.
  std::uint64_t shards = 1;
  std::vector<JobRecord> jobs;

  JobRecord* find(const std::string& id);
  std::size_t countIn(JobState s) const;
  /// True when every job reached a terminal state.
  bool complete() const;
  /// True when every job is Ok.
  bool allOk() const;

  /// Parse a manifest document. Throws std::runtime_error on malformed input
  /// or duplicate job ids.
  static SweepManifest fromJson(const std::string& text);
  static SweepManifest load(const std::string& path);
  std::string toJson() const;
  /// Atomic save: write to `path + ".tmp"` then rename, so a kill mid-write
  /// can never truncate the manifest a resume depends on.
  bool save(const std::string& path) const;
};

struct OrchestratorOptions {
  unsigned hostThreads = 0;   ///< 0 = hardware concurrency
  /// Total attempts a transient job may consume (>=1). Deterministic
  /// failures never retry regardless.
  unsigned maxAttempts = 2;
  /// Host-sleep before retry k is backoff * 2^(k-1) seconds (0 = none).
  double retryBackoffSeconds = 0.0;
  /// Per-job host wall-clock budget (0 = none). Expiry => transient Timeout.
  double jobWallBudgetSeconds = 0.0;
  /// Per-job simulated-cycle ceiling override (0 = the machine's maxCycles).
  /// Expiry => deterministic Timeout.
  Cycle jobCycleBudget = 0;
  /// Stop claiming new jobs after this many have been started in this
  /// invocation (0 = unlimited). The rest stay Pending in the manifest —
  /// this is how the kill-and-resume tests interrupt a sweep exactly.
  std::size_t maxJobs = 0;
  /// Also re-run jobs already recorded as Failed/Hang/Timeout.
  bool rerunFailed = false;
  /// Live progress lines ("[done/total] id: state ... eta Ns"), one per
  /// completed job. Null = silent.
  std::ostream* progress = nullptr;
};

/// How a job executes: default is runSpec() below; tests substitute scripted
/// runners (crashing, hanging, flaky) to exercise the orchestrator itself.
using JobRunner =
    std::function<RunResult(const JobSpec&, const OrchestratorOptions&, sim::SimContext&)>;

/// The default runner: machineByName/systemByName/makeJobWorkload, RNG seed
/// from jobRunSeed(), budgets from opts.
RunResult runSpec(const JobSpec& spec, const OrchestratorOptions& opts,
                  sim::SimContext& ctx);

/// Workload factory shared with lktm_sim: STAMP analogs by name, plus the
/// micro workloads "counter" / "bank" / "linkedlist".
std::unique_ptr<wl::Workload> makeJobWorkload(const std::string& name,
                                              std::uint64_t seed);

/// Transient <=> worth retrying: wall-clock Timeout or TransientJobError.
bool isTransientFailure(const RunResult& r);

struct OrchestratorReport {
  std::size_t ran = 0;      ///< jobs executed in this invocation
  std::size_t skipped = 0;  ///< jobs already terminal (resume fast-path)
  std::size_t retried = 0;  ///< extra attempts consumed by transient jobs
  std::size_t ok = 0;       ///< jobs Ok after this invocation (whole manifest)
  std::size_t failed = 0;   ///< jobs Failed/Hang/Timeout (whole manifest)
};

/// Execute a manifest: normalize stale state (Running -> Pending, Ok with a
/// missing artifact file -> Pending), run every pending job on the worker
/// pool, retry transient failures with backoff, write one per-job artifact
/// and checkpoint the manifest after each completion. When `manifestPath` is
/// empty the manifest is kept in memory only (no checkpoints). When `results`
/// is non-null it receives one RunResult per job in manifest order — loaded
/// from the artifact for skipped-Ok jobs, so a resumed sweep still hands the
/// figure code the complete result set.
OrchestratorReport runManifest(SweepManifest& manifest, const std::string& manifestPath,
                               const OrchestratorOptions& opts = {},
                               const JobRunner& runner = {},
                               std::vector<RunResult>* results = nullptr);

/// Merge the per-job artifacts of every Ok job (manifest order) into one
/// multi-run lktm.stats.v1 document. Each run entry is re-emitted through the
/// deterministic JSON re-writer with "wall_seconds" zeroed, so the merged
/// bytes depend only on the job specs — not on interruptions, resumes or
/// hostThreads. Returns false (with a message on stderr) when an artifact is
/// missing or unreadable.
bool writeMergedArtifact(const SweepManifest& manifest, const std::string& outPath);

/// Cross-product helper: one Pending record per (workload x system x threads)
/// cell on `machine`, in the same order sweepSystems() runs them.
SweepManifest makeManifest(const std::string& artifactDir,
                           const std::string& machine,
                           const std::vector<std::string>& systems,
                           const std::vector<std::string>& workloads,
                           const std::vector<unsigned>& threads,
                           std::uint64_t seed = kDefaultSweepSeed);

namespace detail {

/// One attempt of `run` with every escape hatch closed: TransientJobError,
/// std::exception and non-standard throws all come back as a Failed result
/// keyed by the spec (transient throws keep their retryable classification
/// via the diagnostic prefix isTransientFailure() keys on).
RunResult attemptJobOnce(const JobSpec& spec, const OrchestratorOptions& opts,
                         const JobRunner& run, sim::SimContext& ctx);

/// The PR-5 retry contract, shared by the in-process orchestrator and the
/// distributed worker: run until Ok, a deterministic failure, or the attempt
/// count reaches opts.maxAttempts; transient failures back off exponentially
/// between attempts. `beginAttempt` hands out the (cumulative, possibly
/// claim-inherited) 1-based attempt number under the caller's lock;
/// `onRetry(attempt, r)` fires before each extra attempt (may be null).
RunResult runJobWithRetries(
    const JobSpec& spec, const OrchestratorOptions& opts, const JobRunner& run,
    sim::SimContext& ctx, const std::function<unsigned()>& beginAttempt,
    const std::function<void(unsigned, const RunResult&)>& onRetry);

}  // namespace detail

}  // namespace lktm::cfg
