#include "config/artifact.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "stats/tx_stats.hpp"

namespace lktm::cfg {

void writeSnapshotJson(stats::json::Writer& w, const stats::StatSnapshot& snap) {
  w.beginArray();
  for (const stats::SnapshotEntry& e : snap.entries()) {
    w.beginObject();
    w.field("path", e.path);
    w.field("kind", stats::toString(e.kind));
    switch (e.kind) {
      case stats::StatKind::Counter:
        w.field("value", e.value);
        break;
      case stats::StatKind::Histogram: {
        w.field("count", e.count);
        w.field("sum", e.sum);
        // Emitted only when set: absent means false, and the common case
        // stays byte-identical to pre-overflow-flag artifacts.
        if (e.overflowed) w.field("overflowed", true);
        w.key("buckets");
        w.beginArray();
        for (const auto& [b, n] : e.buckets) {
          w.beginArray();
          w.value(b);
          w.value(n);
          w.endArray();
        }
        w.endArray();
        break;
      }
      case stats::StatKind::Distribution:
        w.field("count", e.count);
        w.field("sum", e.sum);
        // No samples, no extrema: emitting min=0/max=0 would make an empty
        // stat indistinguishable from a real 0-cycle sample.
        if (e.count != 0) {
          w.field("min", e.min);
          w.field("max", e.max);
        }
        break;
      case stats::StatKind::Formula:
        w.field("value", e.number);
        break;
    }
    w.endObject();
  }
  w.endArray();
}

namespace {

void writeRun(stats::json::Writer& w, const RunResult& r) {
  w.beginObject();
  w.field("system", r.system);
  w.field("workload", r.workload);
  w.field("machine", r.machine);
  w.field("backend", r.backend);
  w.field("threads", r.threads);
  w.field("cores", r.cores);
  w.field("banks", r.banks);
  w.field("seed", r.seed);
  w.field("cycles", r.cycles);
  w.field("ok", r.ok());
  w.field("status", toString(r.status));
  w.field("hang", r.hang());
  w.field("diagnostic", r.diagnostic);
  w.field("wall_seconds", r.wallSeconds);
  w.key("violations");
  w.beginArray();
  for (const std::string& v : r.violations) w.value(v);
  w.endArray();
  w.key("derived");
  w.beginObject();
  w.key("commit_rate");
  if (const auto rate = r.commitRate(); rate.has_value()) {
    w.value(*rate);
  } else {
    w.null();  // no speculative attempts — not a perfect 1.0
  }
  w.field("total_commits", r.totalCommits());
  w.field("htm_commits", r.htmCommits());
  w.field("lock_commits", r.lockCommits());
  w.field("stl_commits", r.stlCommits());
  w.field("stm_commits", r.stmCommits());
  w.field("aborts", r.aborts());
  const stats::SnapshotEntry lat = r.commitLatency();
  w.key("commit_latency");
  w.beginObject();
  w.field("count", lat.count);
  w.field("p50", stats::histogramPercentile(lat, 500));
  w.field("p90", stats::histogramPercentile(lat, 900));
  w.field("p99", stats::histogramPercentile(lat, 990));
  w.field("p999", stats::histogramPercentile(lat, 999));
  w.endObject();
  w.endObject();
  w.key("stats");
  writeSnapshotJson(w, r.stats);
  w.endObject();
}

}  // namespace

void writeStatsJson(std::ostream& os, const std::vector<const RunResult*>& runs) {
  os.imbue(std::locale::classic());
  stats::json::Writer w(os, /*pretty=*/true);
  w.beginObject();
  w.field("schema", kStatsSchema);
  w.key("runs");
  w.beginArray();
  for (const RunResult* r : runs) {
    if (r != nullptr) writeRun(w, *r);
  }
  w.endArray();
  w.endObject();
}

void writeStatsJson(std::ostream& os, const RunResult& run) {
  writeStatsJson(os, std::vector<const RunResult*>{&run});
}

bool writeStatsJsonFile(const std::string& path, const RunResult& run) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  writeStatsJson(out, run);
  return static_cast<bool>(out);
}

bool writeStatsJsonFileAtomic(const std::string& path, const RunResult& run,
                              const std::string& tmpSuffix) {
  const std::string tmp = path + tmpSuffix;
  if (!writeStatsJsonFile(tmp, run)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::cerr << "error: cannot rename " << tmp << " -> " << path << ": "
              << ec.message() << "\n";
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    return false;
  }
  return true;
}

void writeSummaryArtifact(const stats::json::Value& statsDoc, std::ostream& os) {
  using stats::json::Value;
  const Value* schema = statsDoc.find("schema");
  if (schema == nullptr || schema->text != kStatsSchema) {
    throw std::runtime_error(std::string("summary input is not a ") +
                             kStatsSchema + " document");
  }
  const Value* runs = statsDoc.find("runs");
  if (runs == nullptr || !runs->isArray()) {
    throw std::runtime_error("summary input has no \"runs\" array");
  }
  os.imbue(std::locale::classic());
  stats::json::Writer w(os, /*pretty=*/true);
  w.beginObject();
  w.field("schema", kSummarySchema);
  w.field("source", kStatsSchema);
  w.key("runs");
  w.beginArray();
  for (const Value& run : *runs->array) {
    if (!run.isObject()) continue;
    w.beginObject();
    // Fixed field order; numeric literals re-emitted raw so the summary is
    // exactly as byte-deterministic as the merged document it condenses.
    for (const char* key :
         {"system", "workload", "machine", "threads", "cores", "banks", "seed",
          "cycles", "status", "diagnostic"}) {
      const Value* v = run.find(key);
      if (v == nullptr) continue;
      w.key(key);
      if (v->isNumber()) {
        w.rawNumber(v->text);
      } else {
        w.value(v->text);
      }
    }
    if (const Value* derived = run.find("derived"); derived != nullptr) {
      w.key("derived");
      stats::json::writeValue(w, *derived);
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

namespace {

using stats::json::asU64;
using stats::json::Value;

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("malformed stats artifact: " + what);
}

const Value& need(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr) malformed(std::string("missing \"") + key + "\"");
  return *v;
}

stats::SnapshotEntry snapshotEntryFromJson(const Value& e) {
  stats::SnapshotEntry out;
  out.path = need(e, "path").text;
  const std::string& kind = need(e, "kind").text;
  if (kind == "counter") {
    out.kind = stats::StatKind::Counter;
    out.value = asU64(need(e, "value"));
  } else if (kind == "histogram") {
    out.kind = stats::StatKind::Histogram;
    out.count = asU64(need(e, "count"));
    out.sum = asU64(need(e, "sum"));
    if (const Value* of = e.find("overflowed"); of != nullptr) {
      out.overflowed = of->boolean;
    }
    const Value& buckets = need(e, "buckets");
    if (!buckets.isArray()) malformed(out.path + ": buckets is not an array");
    for (const Value& b : *buckets.array) {
      if (!b.isArray() || b.array->size() != 2) {
        malformed(out.path + ": bucket entries must be [bucket, count] pairs");
      }
      out.buckets.emplace_back(static_cast<unsigned>(asU64(b.array->at(0))),
                               asU64(b.array->at(1)));
    }
  } else if (kind == "distribution") {
    out.kind = stats::StatKind::Distribution;
    out.count = asU64(need(e, "count"));
    out.sum = asU64(need(e, "sum"));
    if (out.count != 0) {
      out.min = asU64(need(e, "min"));
      out.max = asU64(need(e, "max"));
    }
  } else if (kind == "formula") {
    out.kind = stats::StatKind::Formula;
    out.number = need(e, "value").number;
  } else {
    malformed(out.path + ": unknown stat kind \"" + kind + "\"");
  }
  return out;
}

}  // namespace

RunResult runResultFromJson(const Value& run) {
  if (!run.isObject()) malformed("run entry is not an object");
  RunResult r;
  r.system = need(run, "system").text;
  r.workload = need(run, "workload").text;
  r.machine = need(run, "machine").text;
  // Optional: pre-backend artifacts (schema-compatible) omit it.
  if (const Value* be = run.find("backend"); be != nullptr) r.backend = be->text;
  r.threads = static_cast<unsigned>(asU64(need(run, "threads")));
  r.cores = static_cast<unsigned>(asU64(need(run, "cores")));
  r.banks = static_cast<unsigned>(asU64(need(run, "banks")));
  r.seed = asU64(need(run, "seed"));
  r.cycles = asU64(need(run, "cycles"));
  if (!runStatusFromString(need(run, "status").text, r.status)) {
    malformed("unknown run status \"" + need(run, "status").text + "\"");
  }
  r.diagnostic = need(run, "diagnostic").text;
  r.wallSeconds = need(run, "wall_seconds").number;
  const Value& violations = need(run, "violations");
  if (!violations.isArray()) malformed("violations is not an array");
  for (const Value& v : *violations.array) r.violations.push_back(v.text);
  const Value& statsArr = need(run, "stats");
  if (!statsArr.isArray()) malformed("stats is not an array");
  for (const Value& e : *statsArr.array) {
    r.stats.add(snapshotEntryFromJson(e));
  }
  return r;
}

RunResult loadStatsArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open stats artifact: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const Value doc = stats::json::parse(ss.str());
  const Value* schema = doc.find("schema");
  if (schema == nullptr || schema->text != kStatsSchema) {
    malformed(path + ": not a " + std::string(kStatsSchema) + " document");
  }
  const Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->isArray() || runs->array->size() != 1) {
    malformed(path + ": expected exactly one run");
  }
  return runResultFromJson(runs->array->at(0));
}

}  // namespace lktm::cfg
