#include "config/artifact.hpp"

#include <fstream>
#include <iostream>
#include <locale>

#include "stats/tx_stats.hpp"

namespace lktm::cfg {

void writeSnapshotJson(stats::json::Writer& w, const stats::StatSnapshot& snap) {
  w.beginArray();
  for (const stats::SnapshotEntry& e : snap.entries()) {
    w.beginObject();
    w.field("path", e.path);
    w.field("kind", stats::toString(e.kind));
    switch (e.kind) {
      case stats::StatKind::Counter:
        w.field("value", e.value);
        break;
      case stats::StatKind::Histogram: {
        w.field("count", e.count);
        w.field("sum", e.sum);
        w.key("buckets");
        w.beginArray();
        for (const auto& [b, n] : e.buckets) {
          w.beginArray();
          w.value(b);
          w.value(n);
          w.endArray();
        }
        w.endArray();
        break;
      }
      case stats::StatKind::Distribution:
        w.field("count", e.count);
        w.field("sum", e.sum);
        w.field("min", e.min);
        w.field("max", e.max);
        break;
      case stats::StatKind::Formula:
        w.field("value", e.number);
        break;
    }
    w.endObject();
  }
  w.endArray();
}

namespace {

void writeRun(stats::json::Writer& w, const RunResult& r) {
  w.beginObject();
  w.field("system", r.system);
  w.field("workload", r.workload);
  w.field("machine", r.machine);
  w.field("threads", r.threads);
  w.field("cycles", r.cycles);
  w.field("ok", r.ok());
  w.field("hang", r.hang);
  w.field("wall_seconds", r.wallSeconds);
  w.key("violations");
  w.beginArray();
  for (const std::string& v : r.violations) w.value(v);
  w.endArray();
  w.key("derived");
  w.beginObject();
  w.field("commit_rate", r.commitRate());
  w.field("total_commits", r.totalCommits());
  w.field("htm_commits", r.htmCommits());
  w.field("lock_commits", r.lockCommits());
  w.field("stl_commits", r.stlCommits());
  w.field("aborts", r.aborts());
  w.endObject();
  w.key("stats");
  writeSnapshotJson(w, r.stats);
  w.endObject();
}

}  // namespace

void writeStatsJson(std::ostream& os, const std::vector<const RunResult*>& runs) {
  os.imbue(std::locale::classic());
  stats::json::Writer w(os, /*pretty=*/true);
  w.beginObject();
  w.field("schema", kStatsSchema);
  w.key("runs");
  w.beginArray();
  for (const RunResult* r : runs) {
    if (r != nullptr) writeRun(w, *r);
  }
  w.endArray();
  w.endObject();
}

void writeStatsJson(std::ostream& os, const RunResult& run) {
  writeStatsJson(os, std::vector<const RunResult*>{&run});
}

bool writeStatsJsonFile(const std::string& path, const RunResult& run) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  writeStatsJson(out, run);
  return static_cast<bool>(out);
}

}  // namespace lktm::cfg
