// End-to-end simulation harness: builds a full system (cores + L1s + mesh +
// directory/LLC) for one (machine, system, workload, thread-count) tuple,
// runs it to completion, verifies workload invariants and optionally the
// coherence checker, and returns aggregated statistics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "config/machine.hpp"
#include "config/systems.hpp"
#include "sim/context.hpp"
#include "stats/breakdown.hpp"
#include "stats/counters.hpp"
#include "workloads/workload.hpp"

namespace lktm::cfg {

struct RunResult {
  std::string system;
  std::string workload;
  std::string machine;
  unsigned threads = 0;

  Cycle cycles = 0;  ///< wall-clock of the run (last thread's halt)
  stats::TxCounters tx;
  stats::ProtocolCounters protocol;
  stats::BreakdownSummary breakdown;
  std::vector<stats::ThreadBreakdown> perThread;

  std::vector<std::string> violations;  ///< workload + coherence failures
  bool hang = false;
  std::string hangDiagnostic;

  bool ok() const { return violations.empty() && !hang; }
  double commitRate() const { return tx.commitRate(); }

  std::string str() const;
};

/// A workload factory: each run needs a fresh instance.
using WorkloadFactory = std::function<std::unique_ptr<wl::Workload>()>;

struct RunConfig {
  MachineParams machine = MachineParams::typical();
  SystemSpec system;
  unsigned threads = 2;
  bool runCoherenceChecker = true;
  bool verifyWorkload = true;
  /// Warm the inclusive LLC with the workload footprint (steady-state runs).
  bool warmLlc = true;
};

/// Run one simulation. When `ctx` is non-null the run executes inside that
/// context (beginRun() resets its logical state first, pools keep their
/// memory — the sweep reuse path); when null a fresh context is built on the
/// stack, which preserves the simple one-shot call shape.
RunResult runSimulation(const RunConfig& cfg, const WorkloadFactory& makeWorkload,
                        sim::SimContext* ctx = nullptr);

}  // namespace lktm::cfg
