// End-to-end simulation harness: builds a full system (cores + L1s + mesh +
// directory/LLC) for one (machine, system, workload, thread-count) tuple,
// runs it to completion, verifies workload invariants and optionally the
// coherence checker, and returns the run's stat snapshot.
//
// All statistics flow through the instrumentation spine: components register
// into the SimContext's StatRegistry, and RunResult carries one StatSnapshot
// of everything. The named accessors below are the blessed read paths for the
// figures and tools (they sum per-core counters exactly like the retired
// per-struct aggregation did, so derived numbers are bit-identical).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/machine.hpp"
#include "config/systems.hpp"
#include "sim/context.hpp"
#include "stats/registry.hpp"
#include "workloads/workload.hpp"

namespace lktm::cfg {

/// Aggregated execution-time breakdown (the paper's Figs 9/11), computed from
/// a snapshot's "core.*.time.<cat>" counters.
struct TimeBreakdown {
  std::array<Cycle, static_cast<std::size_t>(TimeCat::kCount)> cycles{};

  Cycle total() const;
  Cycle get(TimeCat c) const { return cycles[static_cast<std::size_t>(c)]; }
  double fraction(TimeCat c) const;
};

/// How a run terminated. `Failed` covers crashes (exceptions) and invariant
/// violations; `Hang` is the forward-progress watchdog (livelock/deadlock);
/// `Timeout` is an exhausted budget (simulated-cycle ceiling or host
/// wall-clock deadline). The distinction matters downstream: a crash is a
/// bug, a hang is a protocol bug, a timeout may just be an undersized budget.
enum class RunStatus : std::uint8_t { Ok, Failed, Hang, Timeout };

const char* toString(RunStatus s);
/// Inverse of toString; returns false on an unknown name.
bool runStatusFromString(const std::string& name, RunStatus& out);

struct RunResult {
  std::string system;
  std::string workload;
  std::string machine;
  std::string backend;  ///< TM backend the run executed on (registry name)
  unsigned threads = 0;
  unsigned cores = 0;      ///< machine core count the run executed with
  unsigned banks = 1;      ///< LLC directory bank count
  std::uint64_t seed = 0;  ///< RNG seed the run executed with (job identity)

  Cycle cycles = 0;  ///< wall-clock of the run (last thread's halt)
  stats::StatSnapshot stats;  ///< full registry dump at end of run
  double wallSeconds = 0.0;   ///< host seconds the simulation loop took

  std::vector<std::string> violations;  ///< workload + coherence failures
  RunStatus status = RunStatus::Ok;
  std::string diagnostic;  ///< failure detail (exception text, hang report, …)

  bool ok() const { return violations.empty() && status == RunStatus::Ok; }
  bool hang() const { return status == RunStatus::Hang; }

  // ---- registry-backed accessors (sums over all cores) ----
  std::uint64_t htmCommits() const { return stats.sumMatching("core.*.commits.htm"); }
  std::uint64_t lockCommits() const { return stats.sumMatching("core.*.commits.lock"); }
  std::uint64_t stlCommits() const { return stats.sumMatching("core.*.commits.stl"); }
  std::uint64_t stmCommits() const { return stats.sumMatching("core.*.commits.stm"); }
  std::uint64_t totalCommits() const {
    return htmCommits() + lockCommits() + stlCommits() + stmCommits();
  }
  std::uint64_t aborts() const { return stats.sumMatching("core.*.aborts.total"); }
  std::uint64_t abortCount(AbortCause cause) const;
  std::uint64_t switchAttempts() const { return stats.sumMatching("core.*.switch.attempts"); }
  std::uint64_t switchGrants() const { return stats.sumMatching("core.*.switch.grants"); }
  std::uint64_t rejectsSent() const { return stats.sumMatching("core.*.rejects.sent"); }
  std::uint64_t rejectsReceived() const { return stats.sumMatching("core.*.rejects.received"); }
  std::uint64_t wakeupsSent() const { return stats.sumMatching("core.*.wakeups.sent"); }
  std::uint64_t sigRejects() const { return stats.value("dir.sig_rejects"); }
  std::uint64_t l1Hits() const { return stats.sumMatching("core.*.l1.hits"); }
  std::uint64_t l1Misses() const { return stats.sumMatching("core.*.l1.misses"); }
  std::uint64_t llcHits() const { return stats.value("dir.llc.hits"); }
  std::uint64_t llcMisses() const { return stats.value("dir.llc.misses"); }
  std::uint64_t writebacks() const { return stats.value("dir.writebacks"); }
  std::uint64_t messages() const { return stats.value("noc.messages"); }
  std::uint64_t dataMessages() const { return stats.value("noc.data_messages"); }
  std::uint64_t flitHops() const { return stats.value("noc.flit_hops"); }

  /// Commit rate of speculative attempts: (htm+stl+stm)/(htm+stl+stm+aborts);
  /// absent when there were none — idle cores must not read as perfect.
  std::optional<double> commitRate() const;

  /// All cores' commit-latency histograms ("core.*.latency.commit") merged
  /// into one entry: cycles from a critical section's first attempt to its
  /// commit, spanning aborts/retries/fallback.
  stats::SnapshotEntry commitLatency() const {
    return stats.mergedHistogram("core.*.latency.commit");
  }
  /// Commit-latency percentile in cycles (permille: p50=500, p999=999).
  std::uint64_t commitLatencyPercentile(unsigned permille) const {
    return stats::histogramPercentile(commitLatency(), permille);
  }

  /// Sum over all threads (Fig 9); per-thread view for skew analysis.
  TimeBreakdown breakdown() const;
  TimeBreakdown threadBreakdown(unsigned tid) const;

  std::string str() const;
};

/// A workload factory: each run needs a fresh instance.
using WorkloadFactory = std::function<std::unique_ptr<wl::Workload>()>;

struct RunConfig {
  MachineParams machine = MachineParams::typical();
  SystemSpec system;
  unsigned threads = 2;
  /// Seed for the context RNG stream (SimContext::beginRun). Always set
  /// explicitly by the sweep orchestrator from the job manifest so a job's
  /// randomness can never depend on which worker's context runs it.
  std::uint64_t rngSeed = sim::SimContext::kDefaultSeed;
  /// Host wall-clock budget for the simulation loop (0 = unlimited). On
  /// expiry the run ends with RunStatus::Timeout.
  double wallBudgetSeconds = 0.0;
  bool runCoherenceChecker = true;
  bool verifyWorkload = true;
  /// Warm the inclusive LLC with the workload footprint (steady-state runs).
  bool warmLlc = true;
  /// Optional event-trace sink (only records in LKTM_TRACE builds). The run
  /// installs it on the SimContext for its duration; caller keeps ownership.
  sim::TraceSink* traceSink = nullptr;
};

/// Run one simulation. When `ctx` is non-null the run executes inside that
/// context (beginRun() resets its logical state first, pools keep their
/// memory — the sweep reuse path); when null a fresh context is built on the
/// stack, which preserves the simple one-shot call shape.
RunResult runSimulation(const RunConfig& cfg, const WorkloadFactory& makeWorkload,
                        sim::SimContext* ctx = nullptr);

}  // namespace lktm::cfg
