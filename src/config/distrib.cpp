#include "config/distrib.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "config/artifact.hpp"
#include "stats/json.hpp"

namespace lktm::cfg {

namespace {

namespace fs = std::filesystem;
using stats::json::Value;

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double unixNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Unique-per-call tmp name inside `dir`: worker id + pid + counter, so
/// concurrent writers (threads, processes, hosts on a shared mount) never
/// collide before their rename.
std::string tmpName(const std::string& dir, const std::string& worker) {
  static std::atomic<std::uint64_t> seq{0};
  return dir + "/.tmp." + worker + "." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1));
}

/// Atomic publish: write a unique tmp file, rename over the target. Readers
/// never observe a torn file; concurrent writers resolve to the last rename.
bool atomicWrite(const std::string& path, const std::string& content,
                 const std::string& worker) {
  const std::string tmp = tmpName(fs::path(path).parent_path().string(), worker);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    return false;
  }
  return true;
}

/// Exclusive create (seeding only): O_CREAT|O_EXCL so exactly one of any
/// number of racing seeders materializes the entry; the rest see EEXIST and
/// move on. All steady-state transitions use rename, not this.
bool exclusiveCreate(const std::string& path, const std::string& content) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

std::string claimJson(const std::string& id, const std::string& worker,
                      unsigned attempts) {
  std::ostringstream os;
  stats::json::Writer w(os, /*pretty=*/false);
  w.beginObject();
  w.field("id", id);
  w.field("worker", worker);
  w.field("attempts", attempts);
  w.endObject();
  return os.str();
}

std::string doneJson(const DoneRecord& d) {
  std::ostringstream os;
  stats::json::Writer w(os, /*pretty=*/false);
  w.beginObject();
  w.field("id", d.id);
  w.field("state", toString(d.state));
  w.field("attempts", d.attempts);
  w.field("diagnostic", d.diagnostic);
  w.field("artifact", d.artifact);
  w.field("wall_seconds", d.wallSeconds);
  w.field("cycles", d.cycles);
  w.field("worker", d.worker);
  w.endObject();
  return os.str();
}

/// Tolerant parse: spool files can legitimately be mid-transition tokens
/// ({"id","attempts"} without an owner) or, worst case, unreadable — every
/// field falls back to a safe default rather than throwing inside a scan.
Value parseOrNull(const std::string& text) {
  if (text.empty()) return {};
  try {
    return stats::json::parse(text);
  } catch (const std::exception&) {
    return {};
  }
}

std::vector<std::string> listDirSorted(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (!name.empty() && name[0] != '.') names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::size_t jobShard(const JobSpec& spec, std::uint64_t numShards) {
  if (numShards <= 1) return 0;
  std::uint64_t h =
      jobRunSeed(spec.seed, spec.system, spec.workload, spec.threads);
  for (const char c : spec.machine) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % numShards);
}

ClaimStore::ClaimStore(std::string root, std::string workerId)
    : root_(std::move(root)), workerId_(std::move(workerId)) {}

void ClaimStore::init() const {
  std::error_code ec;
  for (const char* sub : {"todo", "claimed", "done", "hb"}) {
    fs::create_directories(fs::path(root_) / sub, ec);
    if (ec) {
      throw std::runtime_error("cannot create claim directory " +
                               (fs::path(root_) / sub).string() + ": " +
                               ec.message());
    }
  }
}

std::size_t ClaimStore::seed(const SweepManifest& manifest) const {
  std::size_t created = 0;
  for (const JobRecord& j : manifest.jobs) {
    const std::string f = jobFileStem(j.spec);
    if (doneExists(f) || todoExists(f) ||
        fs::exists(fs::path(root_) / "claimed" / f)) {
      continue;
    }
    const bool okWithArtifact = j.state == JobState::Ok && !j.artifact.empty() &&
                                fs::exists(fs::path(j.artifact));
    const bool terminalFailure = j.state == JobState::Failed ||
                                 j.state == JobState::Hang ||
                                 j.state == JobState::Timeout;
    if (okWithArtifact || terminalFailure) {
      DoneRecord d;
      d.file = f;
      d.id = j.spec.id();
      d.state = j.state;
      d.attempts = j.attempts;
      d.diagnostic = j.diagnostic;
      d.artifact = okWithArtifact ? j.artifact : "";
      d.wallSeconds = j.wallSeconds;
      d.cycles = j.cycles;
      d.worker = workerId_;
      created += exclusiveCreate((fs::path(root_) / "done" / f).string(),
                                 doneJson(d))
                     ? 1
                     : 0;
    } else {
      // Pending / stale Running / Ok-with-lost-artifact: (re)run it. The
      // token carries the cumulative attempt count forward.
      created += exclusiveCreate((fs::path(root_) / "todo" / f).string(),
                                 claimJson(j.spec.id(), "", j.attempts))
                     ? 1
                     : 0;
    }
  }
  return created;
}

bool ClaimStore::take(const std::string& file, ClaimRecord& out) const {
  const std::string from = (fs::path(root_) / "todo" / file).string();
  const std::string to = (fs::path(root_) / "claimed" / file).string();
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) return false;  // lost the race (or the token was already gone)
  const Value v = parseOrNull(readFileOrEmpty(to));
  out.file = file;
  const Value* id = v.find("id");
  out.id = id != nullptr && id->isString() ? id->text : "";
  const Value* attempts = v.find("attempts");
  out.attempts = attempts != nullptr
                     ? static_cast<unsigned>(stats::json::asU64(*attempts))
                     : 0;
  out.worker = workerId_;
  publishClaim(out);
  return true;
}

void ClaimStore::publishClaim(const ClaimRecord& c) const {
  atomicWrite((fs::path(root_) / "claimed" / c.file).string(),
              claimJson(c.id, c.worker, c.attempts), workerId_);
}

bool ClaimStore::markDone(const DoneRecord& d) const {
  if (!atomicWrite((fs::path(root_) / "done" / d.file).string(), doneJson(d),
                   workerId_)) {
    return false;
  }
  std::error_code ec;
  fs::remove(fs::path(root_) / "claimed" / d.file, ec);
  return true;
}

bool ClaimStore::reclaim(const std::string& file) const {
  std::error_code ec;
  if (doneExists(file)) {
    // The owner finished but died before unclaiming: done/ wins, the claim
    // is garbage.
    fs::remove(fs::path(root_) / "claimed" / file, ec);
    return false;
  }
  fs::rename(fs::path(root_) / "claimed" / file, fs::path(root_) / "todo" / file,
             ec);
  return !ec;
}

void ClaimStore::writeHeartbeat(std::uint64_t seq) const {
  std::ostringstream os;
  stats::json::Writer w(os, /*pretty=*/false);
  w.beginObject();
  w.field("worker", workerId_);
  w.field("seq", seq);
  w.field("unix_seconds", unixNow());
  w.endObject();
  atomicWrite((fs::path(root_) / "hb" / workerId_).string(), os.str(),
              workerId_);
}

std::vector<std::string> ClaimStore::listTodo() const {
  return listDirSorted((fs::path(root_) / "todo").string());
}

std::vector<ClaimRecord> ClaimStore::listClaimed() const {
  std::vector<ClaimRecord> out;
  for (const std::string& f :
       listDirSorted((fs::path(root_) / "claimed").string())) {
    const Value v =
        parseOrNull(readFileOrEmpty((fs::path(root_) / "claimed" / f).string()));
    ClaimRecord c;
    c.file = f;
    const Value* id = v.find("id");
    c.id = id != nullptr && id->isString() ? id->text : "";
    const Value* worker = v.find("worker");
    c.worker = worker != nullptr && worker->isString() ? worker->text : "";
    const Value* attempts = v.find("attempts");
    c.attempts = attempts != nullptr
                     ? static_cast<unsigned>(stats::json::asU64(*attempts))
                     : 0;
    out.push_back(std::move(c));
  }
  return out;
}

bool ClaimStore::readDone(const std::string& file, DoneRecord& out) const {
  const std::string text =
      readFileOrEmpty((fs::path(root_) / "done" / file).string());
  const Value v = parseOrNull(text);
  if (!v.isObject()) return false;
  out.file = file;
  const Value* id = v.find("id");
  out.id = id != nullptr && id->isString() ? id->text : "";
  const Value* state = v.find("state");
  if (state == nullptr || !state->isString() ||
      !jobStateFromString(state->text, out.state)) {
    return false;
  }
  const Value* attempts = v.find("attempts");
  out.attempts = attempts != nullptr
                     ? static_cast<unsigned>(stats::json::asU64(*attempts))
                     : 0;
  const Value* diag = v.find("diagnostic");
  out.diagnostic = diag != nullptr && diag->isString() ? diag->text : "";
  const Value* artifact = v.find("artifact");
  out.artifact = artifact != nullptr && artifact->isString() ? artifact->text : "";
  const Value* wall = v.find("wall_seconds");
  out.wallSeconds = wall != nullptr && wall->isNumber() ? wall->number : 0.0;
  const Value* cycles = v.find("cycles");
  out.cycles = cycles != nullptr ? stats::json::asU64(*cycles) : 0;
  const Value* worker = v.find("worker");
  out.worker = worker != nullptr && worker->isString() ? worker->text : "";
  return true;
}

std::vector<DoneRecord> ClaimStore::listDone() const {
  std::vector<DoneRecord> out;
  for (const std::string& f : listDirSorted((fs::path(root_) / "done").string())) {
    DoneRecord d;
    if (readDone(f, d)) out.push_back(std::move(d));
  }
  return out;
}

std::vector<HeartbeatRecord> ClaimStore::listHeartbeats() const {
  std::vector<HeartbeatRecord> out;
  for (const std::string& f : listDirSorted((fs::path(root_) / "hb").string())) {
    const Value v =
        parseOrNull(readFileOrEmpty((fs::path(root_) / "hb" / f).string()));
    HeartbeatRecord h;
    h.worker = f;
    const Value* seq = v.find("seq");
    h.seq = seq != nullptr ? stats::json::asU64(*seq) : 0;
    const Value* unix = v.find("unix_seconds");
    h.unixSeconds = unix != nullptr && unix->isNumber() ? unix->number : 0.0;
    out.push_back(std::move(h));
  }
  return out;
}

bool ClaimStore::todoExists(const std::string& file) const {
  return fs::exists(fs::path(root_) / "todo" / file);
}

bool ClaimStore::doneExists(const std::string& file) const {
  return fs::exists(fs::path(root_) / "done" / file);
}

std::size_t ClaimStore::doneCount() const {
  return listDirSorted((fs::path(root_) / "done").string()).size();
}

void ClaimStore::discardTodo(const std::string& file) const {
  std::error_code ec;
  fs::remove(fs::path(root_) / "todo" / file, ec);
}

std::size_t foldClaimState(SweepManifest& manifest, const std::string& claimDir) {
  if (claimDir.empty() || !fs::exists(claimDir)) return 0;
  const ClaimStore store(claimDir, "fold");
  std::size_t folded = 0;
  for (JobRecord& j : manifest.jobs) {
    const std::string f = jobFileStem(j.spec);
    DoneRecord d;
    if (store.readDone(f, d)) {
      j.state = d.state;
      j.attempts = d.attempts;
      j.diagnostic = d.diagnostic;
      j.artifact = d.artifact;
      j.wallSeconds = d.wallSeconds;
      j.cycles = d.cycles;
      ++folded;
      continue;
    }
    if (fs::exists(fs::path(claimDir) / "claimed" / f)) {
      j.state = JobState::Running;
      continue;
    }
    if (store.todoExists(f)) j.state = JobState::Pending;
  }
  return folded;
}

OrchestratorReport runWorker(SweepManifest& manifest, const WorkerOptions& wopts,
                             const OrchestratorOptions& opts,
                             const JobRunner& runner) {
  if (wopts.workerId.empty()) {
    throw std::invalid_argument("runWorker: worker id must not be empty");
  }
  if (wopts.claimDir.empty()) {
    throw std::invalid_argument("runWorker: claim directory must not be empty");
  }
  const JobRunner run = runner ? runner : JobRunner(&runSpec);
  OrchestratorReport report;

  if (!manifest.artifactDir.empty()) {
    std::error_code ec;
    fs::create_directories(manifest.artifactDir, ec);
  }

  const ClaimStore store(wopts.claimDir, wopts.workerId);
  store.init();
  store.seed(manifest);

  // Claim preference: own shard in manifest order, then everyone else's
  // (work stealing keeps a dead worker's slice from stranding the sweep).
  const std::uint64_t shards = std::max<std::uint64_t>(1, manifest.shards);
  std::size_t myShard = wopts.shard;
  if (myShard == WorkerOptions::kAutoShard) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : wopts.workerId) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    myShard = static_cast<std::size_t>(h % shards);
  } else {
    myShard %= shards;
  }
  std::vector<std::string> stems(manifest.jobs.size());
  std::vector<std::size_t> order;
  order.reserve(manifest.jobs.size());
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    stems[i] = jobFileStem(manifest.jobs[i].spec);
    if (jobShard(manifest.jobs[i].spec, shards) == myShard) order.push_back(i);
  }
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    if (jobShard(manifest.jobs[i].spec, shards) != myShard) order.push_back(i);
  }

  // Heartbeat thread: the claim this process holds must look alive for as
  // long as the process is, even while a job runs for minutes.
  std::mutex hbMu;
  std::condition_variable hbCv;
  bool hbStop = false;
  store.writeHeartbeat(0);
  std::thread hbThread([&] {
    std::uint64_t seq = 1;
    std::unique_lock<std::mutex> lk(hbMu);
    const auto period = std::chrono::duration<double>(
        std::max(0.05, wopts.heartbeatSeconds));
    while (!hbCv.wait_for(lk, period, [&] { return hbStop; })) {
      store.writeHeartbeat(seq++);
    }
  });

  // Foreign-claim staleness bookkeeping: fingerprint = owner + its heartbeat
  // seq (or the raw claim content while ownerless). Reclaim only when the
  // fingerprint has been frozen for leaseSeconds of OUR steady clock — no
  // cross-host clock comparison anywhere.
  struct Watch {
    std::string fingerprint;
    std::chrono::steady_clock::time_point since;
  };
  std::map<std::string, Watch> watched;

  std::mutex mu;  // guards manifest records, report, watched, progress
  std::size_t started = 0;
  std::size_t doneThisRun = 0;
  std::vector<unsigned> inheritedAttempts(manifest.jobs.size(), 0);
  const auto t0 = std::chrono::steady_clock::now();

  auto heartbeatFingerprint = [&](const ClaimRecord& c) -> std::string {
    if (c.worker.empty()) {
      return "unowned#" + c.id + "#" + std::to_string(c.attempts);
    }
    for (const HeartbeatRecord& h : store.listHeartbeats()) {
      if (h.worker == c.worker) {
        return c.worker + "#" + std::to_string(h.seq);
      }
    }
    return c.worker + "#missing";
  };

  auto claimNext = [&]() -> std::ptrdiff_t {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (opts.maxJobs != 0 && started >= opts.maxJobs) return -1;
        const std::vector<std::string> todoList = store.listTodo();
        for (const std::size_t i : order) {
          if (std::find(todoList.begin(), todoList.end(), stems[i]) ==
              todoList.end()) {
            continue;
          }
          if (store.doneExists(stems[i])) {
            // Leftover token from a spurious reclaim that raced a finish;
            // the result exists, never run it again.
            store.discardTodo(stems[i]);
            continue;
          }
          ClaimRecord c;
          if (store.take(stems[i], c)) {
            watched.erase(stems[i]);
            inheritedAttempts[i] = c.attempts;
            ++started;
            return static_cast<std::ptrdiff_t>(i);
          }
        }
        // Nothing takeable: look for claims whose owner stopped heartbeating.
        const auto now = std::chrono::steady_clock::now();
        bool reclaimed = false;
        for (const ClaimRecord& c : store.listClaimed()) {
          if (c.worker == wopts.workerId) continue;  // our own pool threads
          if (store.doneExists(c.file)) {
            store.reclaim(c.file);  // drops the stale claim, done/ wins
            continue;
          }
          const std::string fp = heartbeatFingerprint(c);
          const auto it = watched.find(c.file);
          if (it == watched.end() || it->second.fingerprint != fp) {
            watched[c.file] = Watch{fp, now};
            continue;
          }
          const double frozen =
              std::chrono::duration<double>(now - it->second.since).count();
          if (frozen >= wopts.leaseSeconds) {
            if (store.reclaim(c.file)) {
              reclaimed = true;
              if (opts.progress != nullptr) {
                *opts.progress << "reclaimed " << c.id << " from dead worker \""
                               << c.worker << "\" (heartbeat frozen "
                               << static_cast<long>(frozen) << "s)\n";
              }
            }
            watched.erase(c.file);
          }
        }
        if (reclaimed) continue;
        if (store.doneCount() >= manifest.jobs.size()) return -1;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.01, wopts.pollSeconds)));
    }
  };

  auto runOne = [&](std::size_t i, sim::SimContext& ctx) {
    const JobSpec spec = manifest.jobs[i].spec;
    unsigned attempts = inheritedAttempts[i];
    auto beginAttempt = [&]() -> unsigned {
      std::lock_guard<std::mutex> lock(mu);
      ++attempts;
      // Keep the published claim's attempt count current so a reclaim after
      // OUR death hands the next owner the true remaining budget.
      store.publishClaim(ClaimRecord{stems[i], spec.id(), wopts.workerId, attempts});
      return attempts;
    };
    auto onRetry = [&](unsigned attempt, const RunResult& failed) {
      std::lock_guard<std::mutex> lock(mu);
      ++report.retried;
      if (opts.progress != nullptr) {
        *opts.progress << "retry " << spec.id() << " (attempt " << (attempt + 1)
                       << "/" << std::max(1u, opts.maxAttempts)
                       << "): " << failed.diagnostic << "\n";
      }
    };
    RunResult r =
        detail::runJobWithRetries(spec, opts, run, ctx, beginAttempt, onRetry);

    JobState state = jobStateOf(r);
    std::string artifactPath;
    if (state == JobState::Ok && !manifest.artifactDir.empty()) {
      artifactPath =
          (fs::path(manifest.artifactDir) / (stems[i] + ".json")).string();
      if (!writeStatsJsonFileAtomic(artifactPath, r,
                                    ".tmp-" + wopts.workerId)) {
        state = JobState::Failed;
        r.status = RunStatus::Failed;
        r.diagnostic = "cannot write artifact " + artifactPath;
        artifactPath.clear();
      }
    }

    std::lock_guard<std::mutex> lock(mu);
    JobRecord& j = manifest.jobs[i];
    j.state = state;
    j.attempts = attempts;
    j.artifact = artifactPath;
    j.wallSeconds = r.wallSeconds;
    j.cycles = r.cycles;
    j.diagnostic = state == JobState::Ok ? "" : r.diagnostic;
    if (state == JobState::Failed && j.diagnostic.empty() && !r.violations.empty()) {
      j.diagnostic = r.violations.front();
    }
    DoneRecord d;
    d.file = stems[i];
    d.id = spec.id();
    d.state = state;
    d.attempts = attempts;
    d.diagnostic = j.diagnostic;
    d.artifact = artifactPath;
    d.wallSeconds = r.wallSeconds;
    d.cycles = r.cycles;
    d.worker = wopts.workerId;
    store.markDone(d);
    ++report.ran;
    ++doneThisRun;
    if (opts.progress != nullptr) {
      const std::size_t doneGlobal = store.doneCount();
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const std::size_t left =
          manifest.jobs.size() > doneGlobal ? manifest.jobs.size() - doneGlobal : 0;
      char etaStr[32];
      if (doneThisRun > 0 && elapsed > 0.0) {
        std::snprintf(etaStr, sizeof(etaStr), "%.0fs",
                      elapsed / static_cast<double>(doneThisRun) *
                          static_cast<double>(left));
      } else {
        std::snprintf(etaStr, sizeof(etaStr), "--");
      }
      char line[256];
      std::snprintf(line, sizeof(line), "[%zu/%zu] %s: %s (%.1fs) eta %s\n",
                    doneGlobal, manifest.jobs.size(), spec.id().c_str(),
                    toString(state), j.wallSeconds, etaStr);
      *opts.progress << line;
    }
  };

  detail::runWorkerPool(opts.hostThreads, manifest.jobs.size(), claimNext, runOne);

  {
    std::lock_guard<std::mutex> lock(hbMu);
    hbStop = true;
  }
  hbCv.notify_all();
  hbThread.join();

  // Fold the whole spool back so the caller's manifest reflects every
  // worker's results, not just ours.
  foldClaimState(manifest, wopts.claimDir);
  for (const JobRecord& j : manifest.jobs) {
    if (j.state == JobState::Ok) ++report.ok;
    if (j.state == JobState::Failed || j.state == JobState::Hang ||
        j.state == JobState::Timeout) {
      ++report.failed;
    }
  }
  report.skipped = manifest.jobs.size() - report.ran;
  return report;
}

}  // namespace lktm::cfg
