#include "config/machine.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "runtime/backends/backend.hpp"
#include "sim/core_mask.hpp"

namespace lktm::cfg {

MachineParams MachineParams::typical() { return MachineParams{}; }

MachineParams MachineParams::smallCache() {
  MachineParams m;
  m.name = "small-cache";
  m.l1 = mem::CacheGeometry{8 * 1024, 4};
  m.llcBytes = 1ull * 1024 * 1024;
  m.protocol.llcLatency = 10;  // smaller LLC is a touch faster
  return m;
}

MachineParams MachineParams::largeCache() {
  MachineParams m;
  m.name = "large-cache";
  m.l1 = mem::CacheGeometry{128 * 1024, 4};
  m.llcBytes = 32ull * 1024 * 1024;
  m.protocol.llcLatency = 16;  // bigger LLC is a touch slower
  return m;
}

void MachineParams::validate() const {
  if (numCores == 0) {
    throw std::invalid_argument("machine '" + name + "': core count must be >= 1");
  }
  if (numCores > sim::CoreMask::kMaxCores) {
    throw std::invalid_argument(
        "machine '" + name + "': " + std::to_string(numCores) +
        " cores exceed this build's CoreMask cap of " +
        std::to_string(sim::CoreMask::kMaxCores) +
        " (reconfigure with -DLKTM_MAX_CORES=" +
        std::to_string(numCores <= 128 ? 128 : (numCores <= 256 ? 256 : 512)) +
        " or use the 'bigcores' preset)");
  }
  if (numBanks == 0 || (numBanks & (numBanks - 1)) != 0) {
    throw std::invalid_argument("machine '" + name + "': bank count must be a power of two, got " +
                                std::to_string(numBanks));
  }
  if (numBanks > numCores) {
    throw std::invalid_argument(
        "machine '" + name + "': " + std::to_string(numBanks) +
        " banks exceed the core count (" + std::to_string(numCores) +
        "); each bank needs a distinct home node");
  }
  if (!idealNetwork) {
    if (mesh.cols == 0 || mesh.rows == 0) {
      throw std::invalid_argument("machine '" + name + "': mesh must be at least 1x1, got " +
                                  std::to_string(mesh.cols) + "x" + std::to_string(mesh.rows));
    }
    if (mesh.cols * mesh.rows < numCores) {
      throw std::invalid_argument(
          "machine '" + name + "': mesh " + std::to_string(mesh.cols) + "x" +
          std::to_string(mesh.rows) + " has " + std::to_string(mesh.cols * mesh.rows) +
          " tiles, fewer than " + std::to_string(numCores) +
          " cores (need cols*rows >= cores; try --mesh " +
          std::to_string(noc::MeshParams::forTiles(numCores).cols) + "x" +
          std::to_string(noc::MeshParams::forTiles(numCores).rows) + ")");
    }
  }
}

std::string MachineParams::describe() const {
  std::ostringstream oss;
  oss << name << ": " << numCores << " cores, ";
  if (numBanks > 1) oss << numBanks << " LLC banks, ";
  oss << "L1 " << l1.sizeBytes / 1024 << "KB/"
      << l1.assoc << "-way (" << protocol.l1HitLatency << "cyc), LLC "
      << llcBytes / (1024 * 1024) << "MB (" << protocol.llcLatency
      << "cyc), mem " << protocol.memLatency << "cyc, ";
  if (idealNetwork) {
    oss << "ideal net (" << idealNetworkLatency << "cyc)";
  } else {
    oss << "mesh " << mesh.rows << "x" << mesh.cols;
  }
  return oss.str();
}

void applyMachineOverrides(MachineParams& m, const MachineOverrides& ov) {
  if (ov.cores != 0) {
    m.numCores = ov.cores;
    m.name += "-c" + std::to_string(ov.cores);
    if (ov.meshCols == 0) {
      // Derive a near-square grid for the new core count; keep the preset's
      // link/router latencies.
      const noc::MeshParams derived = noc::MeshParams::forTiles(ov.cores);
      m.mesh.cols = derived.cols;
      m.mesh.rows = derived.rows;
    }
  }
  if (ov.banks != 0) {
    m.numBanks = ov.banks;
    m.name += "-b" + std::to_string(ov.banks);
  }
  if (ov.meshCols != 0) {
    m.mesh.cols = ov.meshCols;
    m.mesh.rows = ov.meshRows;
    m.name += "-m" + std::to_string(ov.meshCols) + "x" + std::to_string(ov.meshRows);
  }
  if (!ov.backend.empty()) {
    if (!tm::isBackendName(ov.backend)) {
      throw std::invalid_argument("machine '" + m.name + "': unknown TM backend '" +
                                  ov.backend + "' (valid: " +
                                  tm::backendNameList() + ")");
    }
    m.backend = ov.backend;
    m.name += "-be=" + ov.backend;
  }
}

namespace {

/// Match one "-cN" / "-bN" / "-mWxH" suffix token into `ov`; returns the
/// token's length (including the dash) or 0 when `name` ends in no such
/// token. Tokens are parsed right-to-left so preset names containing dashes
/// ("small-cache") stay intact.
std::size_t parseSuffixToken(const std::string& name, MachineOverrides& ov) {
  const std::size_t dash = name.rfind('-');
  if (dash == std::string::npos) return 0;
  const std::string tok = name.substr(dash + 1);
  if (tok.size() < 2) return 0;
  unsigned a = 0;
  unsigned b = 0;
  char tail = 0;
  // "-be=NAME" first: it must never fall through to the numeric patterns
  // (sscanf would not match "b%u" on "be=...", but keep the intent explicit).
  if (tok.compare(0, 3, "be=") == 0 && tok.size() > 3) {
    ov.backend = tok.substr(3);
    return tok.size() + 1;
  }
  if (std::sscanf(tok.c_str(), "c%u%c", &a, &tail) == 1 && a != 0) {
    ov.cores = a;
    return tok.size() + 1;
  }
  if (std::sscanf(tok.c_str(), "b%u%c", &a, &tail) == 1 && a != 0) {
    ov.banks = a;
    return tok.size() + 1;
  }
  if (std::sscanf(tok.c_str(), "m%ux%u%c", &a, &b, &tail) == 2 && a != 0 && b != 0) {
    ov.meshCols = a;
    ov.meshRows = b;
    return tok.size() + 1;
  }
  return 0;
}

}  // namespace

MachineParams machineByName(const std::string& name) {
  // Strip scale suffixes right-to-left, then look up the base preset and
  // re-apply the overrides in canonical order (so the resulting name
  // round-trips byte-identically through applyMachineOverrides).
  std::string base = name;
  MachineOverrides ov;
  for (std::size_t n = parseSuffixToken(base, ov); n != 0;
       n = parseSuffixToken(base, ov)) {
    base.resize(base.size() - n);
  }

  MachineParams m;
  if (base == "typical") {
    m = MachineParams::typical();
  } else if (base == "small-cache" || base == "small") {
    m = MachineParams::smallCache();
  } else if (base == "large-cache" || base == "large") {
    m = MachineParams::largeCache();
  } else {
    throw std::invalid_argument("unknown machine: " + name);
  }
  applyMachineOverrides(m, ov);
  return m;
}

}  // namespace lktm::cfg
