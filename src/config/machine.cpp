#include "config/machine.hpp"

#include <sstream>
#include <stdexcept>

namespace lktm::cfg {

MachineParams MachineParams::typical() { return MachineParams{}; }

MachineParams MachineParams::smallCache() {
  MachineParams m;
  m.name = "small-cache";
  m.l1 = mem::CacheGeometry{8 * 1024, 4};
  m.llcBytes = 1ull * 1024 * 1024;
  m.protocol.llcLatency = 10;  // smaller LLC is a touch faster
  return m;
}

MachineParams MachineParams::largeCache() {
  MachineParams m;
  m.name = "large-cache";
  m.l1 = mem::CacheGeometry{128 * 1024, 4};
  m.llcBytes = 32ull * 1024 * 1024;
  m.protocol.llcLatency = 16;  // bigger LLC is a touch slower
  return m;
}

std::string MachineParams::describe() const {
  std::ostringstream oss;
  oss << name << ": " << numCores << " cores, L1 " << l1.sizeBytes / 1024 << "KB/"
      << l1.assoc << "-way (" << protocol.l1HitLatency << "cyc), LLC "
      << llcBytes / (1024 * 1024) << "MB (" << protocol.llcLatency
      << "cyc), mem " << protocol.memLatency << "cyc, ";
  if (idealNetwork) {
    oss << "ideal net (" << idealNetworkLatency << "cyc)";
  } else {
    oss << "mesh " << mesh.rows << "x" << mesh.cols;
  }
  return oss.str();
}

MachineParams machineByName(const std::string& name) {
  if (name == "typical") return MachineParams::typical();
  if (name == "small-cache" || name == "small") return MachineParams::smallCache();
  if (name == "large-cache" || name == "large") return MachineParams::largeCache();
  throw std::invalid_argument("unknown machine: " + name);
}

}  // namespace lktm::cfg
