// Machine configurations: Table I (typical) plus the Fig 13 sensitivity
// configurations (small: 8KB L1 / 1MB LLC, large: 128KB L1 / 32MB LLC).
#pragma once

#include <string>

#include "coherence/params.hpp"
#include "cpu/core.hpp"
#include "mem/cache_array.hpp"
#include "noc/mesh.hpp"

namespace lktm::cfg {

struct MachineParams {
  std::string name = "typical";
  unsigned numCores = 32;               ///< tiles on the mesh
  mem::CacheGeometry l1{32 * 1024, 4};  ///< private, 4-way, 64B lines
  std::uint64_t llcBytes = 8ull * 1024 * 1024;  ///< shared L2 (latency model)
  coh::ProtocolParams protocol{};
  noc::MeshParams mesh{};              ///< 4x8, X-Y routing, 1-cycle links
  cpu::CpuParams cpu{};
  unsigned signatureBits = 2048;       ///< HTMLock LLC overflow signatures
  bool idealNetwork = false;           ///< ablation: contention-free fixed-latency net
  Cycle idealNetworkLatency = 6;       ///< ~average mesh traversal
  Cycle maxCycles = 400'000'000;       ///< per-run simulation budget
  Cycle watchdogWindow = 4'000'000;    ///< forward-progress hang detector

  /// Table I baseline configuration.
  static MachineParams typical();
  /// Fig 13 "small cache": 8 KB L1, 1 MB LLC.
  static MachineParams smallCache();
  /// Fig 13 "large cache": 128 KB L1, 32 MB LLC.
  static MachineParams largeCache();

  std::string describe() const;
};

/// Look up a machine preset by name: "typical", "small-cache" (alias
/// "small"), "large-cache" (alias "large"). Throws std::invalid_argument on
/// an unknown name. The sweep manifest stores machines by these names.
MachineParams machineByName(const std::string& name);

}  // namespace lktm::cfg
