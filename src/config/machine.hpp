// Machine configurations: Table I (typical) plus the Fig 13 sensitivity
// configurations (small: 8KB L1 / 1MB LLC, large: 128KB L1 / 32MB LLC).
//
// Large-core scaling: every preset can be scaled past its stock geometry with
// MachineOverrides (core count, LLC bank count, mesh shape, TM backend).
// Overrides are recorded in the machine *name* as "-cN" / "-bN" / "-mWxH" /
// "-be=NAME" suffixes, and machineByName parses those suffixes back — so a
// sweep manifest entry like "typical-c128-b8" or "typical-be=tl2" round-trips
// through the orchestrator with no schema change and no code edits.
#pragma once

#include <string>

#include "coherence/params.hpp"
#include "cpu/core.hpp"
#include "mem/cache_array.hpp"
#include "noc/mesh.hpp"

namespace lktm::cfg {

struct MachineParams {
  std::string name = "typical";
  unsigned numCores = 32;               ///< tiles on the mesh
  unsigned numBanks = 1;                ///< address-interleaved LLC directory banks
  mem::CacheGeometry l1{32 * 1024, 4};  ///< private, 4-way, 64B lines
  std::uint64_t llcBytes = 8ull * 1024 * 1024;  ///< shared L2 (latency model)
  coh::ProtocolParams protocol{};
  noc::MeshParams mesh{};              ///< 4x8, X-Y routing, 1-cycle links
  cpu::CpuParams cpu{};
  unsigned signatureBits = 2048;       ///< HTMLock LLC overflow signatures
  bool idealNetwork = false;           ///< ablation: contention-free fixed-latency net
  Cycle idealNetworkLatency = 6;       ///< ~average mesh traversal
  Cycle maxCycles = 400'000'000;       ///< per-run simulation budget
  Cycle watchdogWindow = 4'000'000;    ///< forward-progress hang detector
  /// TM backend forced by a "-be=NAME" name suffix; empty = let the system
  /// row / its policy decide (see tm::defaultBackendFor).
  std::string backend;

  /// Table I baseline configuration.
  static MachineParams typical();
  /// Fig 13 "small cache": 8 KB L1, 1 MB LLC.
  static MachineParams smallCache();
  /// Fig 13 "large cache": 128 KB L1, 32 MB LLC.
  static MachineParams largeCache();

  /// Reject inconsistent configurations with a diagnostic instead of letting
  /// an assert fire deep in the simulator: core count within the compiled
  /// CoreMask cap (with a rebuild hint), bank count a power of two within
  /// [1, numCores], and mesh tiles >= numCores so every core gets a tile.
  /// Throws std::invalid_argument.
  void validate() const;

  std::string describe() const;
};

/// Scale overrides applied on top of a named preset; 0 means "keep the
/// preset's value". Overriding cores without a mesh derives a near-square
/// mesh for the new core count automatically.
struct MachineOverrides {
  unsigned cores = 0;
  unsigned banks = 0;
  unsigned meshCols = 0;
  unsigned meshRows = 0;
  std::string backend;  ///< empty = keep the system's backend choice
};

/// Apply `ov` to `m`, suffixing the machine name ("-cN", "-bN", "-mWxH",
/// "-be=NAME") so artifacts and manifests record the scaled configuration.
/// Throws std::invalid_argument on a backend name not in the registry;
/// geometry is not validated here — call m.validate() when final.
void applyMachineOverrides(MachineParams& m, const MachineOverrides& ov);

/// Look up a machine by name: the presets "typical", "small-cache" (alias
/// "small"), "large-cache" (alias "large"), optionally scaled by suffixes as
/// produced by applyMachineOverrides — e.g. "typical-c128-b8",
/// "large-cache-c256-b16-m16x16", or "typical-be=hybrid". Throws
/// std::invalid_argument on an unknown name (the sweep manifest stores
/// machines by these names).
MachineParams machineByName(const std::string& name);

}  // namespace lktm::cfg
