// Parallel sweep executor: figure-reproduction benches run hundreds of
// independent simulations (workload x system x threads x machine); each
// simulation is single-threaded and deterministic, so sweeps parallelize
// perfectly across host cores. Each worker thread owns one SimContext and
// reuses it for every job it picks up, so a sweep allocates kernel memory
// (event slabs, message pools) once per host thread, not once per run.
//
// Determinism contract: a job's result depends only on its spec (including
// its seed) — never on hostThreads, on which worker ran it, or on what the
// worker's reused context executed before (regression-tested in
// tests/test_sweep.cpp). The manifest-driven orchestrator on top of this
// layer lives in config/orchestrator.hpp.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "config/runner.hpp"
#include "sim/context.hpp"

namespace lktm::cfg {

/// Default workload-generation seed of the figure sweeps (matches the
/// lktm_sim --seed default).
inline constexpr std::uint64_t kDefaultSweepSeed = 11;

/// Per-job RNG-stream seed, derived from the job's manifest identity (never
/// from worker/context state): splitmix64 over the base seed mixed with the
/// job's coordinates.
std::uint64_t jobRunSeed(std::uint64_t baseSeed, const std::string& system,
                         const std::string& workload, unsigned threads);

struct SweepJob {
  std::string label;
  /// Identity of the simulated cell. Carried on the job (not just inside the
  /// result) so a job that dies with an exception still produces a result
  /// that findResult() can locate by (system, workload, threads).
  std::string system;
  std::string workload;
  unsigned threads = 0;
  /// Seed this job runs with; travels into the result even when the job
  /// throws, so failure artifacts stay reproducible.
  std::uint64_t seed = kDefaultSweepSeed;
  std::function<RunResult(sim::SimContext&)> run;
};

/// Execute all jobs on `hostThreads` std::threads (0 = hardware concurrency,
/// and never more threads than jobs), preserving job order in the result
/// vector. Exceptions inside a job — std::exception or not — are captured as
/// a RunStatus::Failed result keyed by the job's (system, workload, threads)
/// rather than tearing the sweep down.
std::vector<RunResult> runSweep(std::vector<SweepJob> jobs, unsigned hostThreads = 0);

/// Convenience: build the jobs for a cross product and run them.
std::vector<RunResult> sweepSystems(
    const MachineParams& machine, const std::vector<SystemSpec>& systems,
    const std::vector<std::string>& workloads, const std::vector<unsigned>& threads,
    unsigned hostThreads = 0);

/// Find the result for a (system, workload, threads) cell.
const RunResult* findResult(const std::vector<RunResult>& results,
                            const std::string& system, const std::string& workload,
                            unsigned threads);

namespace detail {

/// Worker-pool core shared by runSweep and the orchestrator: spin up
/// `hostThreads` workers (0 = hardware concurrency), each owning one reused
/// SimContext; every worker repeatedly calls `claim` for the next job index
/// (negative = no more work for this worker) and hands it to `runOne`.
/// `claim` and `runOne` must be thread-safe.
void runWorkerPool(unsigned hostThreads, std::size_t jobCount,
                   const std::function<std::ptrdiff_t()>& claim,
                   const std::function<void(std::size_t, sim::SimContext&)>& runOne);

}  // namespace detail

}  // namespace lktm::cfg
