// Parallel sweep executor: figure-reproduction benches run hundreds of
// independent simulations (workload x system x threads x machine); each
// simulation is single-threaded and deterministic, so sweeps parallelize
// perfectly across host cores. Each worker thread owns one SimContext and
// reuses it for every job it picks up, so a sweep allocates kernel memory
// (event slabs, message pools) once per host thread, not once per run.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "config/runner.hpp"
#include "sim/context.hpp"

namespace lktm::cfg {

struct SweepJob {
  std::string label;
  /// Identity of the simulated cell. Carried on the job (not just inside the
  /// result) so a job that dies with an exception still produces a result
  /// that findResult() can locate by (system, workload, threads).
  std::string system;
  std::string workload;
  unsigned threads = 0;
  std::function<RunResult(sim::SimContext&)> run;
};

/// Execute all jobs on `hostThreads` std::threads (0 = hardware concurrency,
/// and never more threads than jobs), preserving job order in the result
/// vector. Exceptions inside a job are captured as a failed RunResult —
/// keyed by the job's (system, workload, threads) — rather than tearing the
/// sweep down.
std::vector<RunResult> runSweep(std::vector<SweepJob> jobs, unsigned hostThreads = 0);

/// Convenience: build the jobs for a cross product and run them.
std::vector<RunResult> sweepSystems(
    const MachineParams& machine, const std::vector<SystemSpec>& systems,
    const std::vector<std::string>& workloads, const std::vector<unsigned>& threads,
    unsigned hostThreads = 0);

/// Find the result for a (system, workload, threads) cell.
const RunResult* findResult(const std::vector<RunResult>& results,
                            const std::string& system, const std::string& workload,
                            unsigned threads);

}  // namespace lktm::cfg
