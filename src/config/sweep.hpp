// Parallel sweep executor: figure-reproduction benches run hundreds of
// independent simulations (workload x system x threads x machine); each
// simulation is single-threaded and deterministic, so sweeps parallelize
// perfectly across host cores.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "config/runner.hpp"

namespace lktm::cfg {

struct SweepJob {
  std::string label;
  std::function<RunResult()> run;
};

/// Execute all jobs on `hostThreads` std::threads (0 = hardware concurrency),
/// preserving job order in the result vector. Exceptions inside a job are
/// captured as a failed RunResult rather than tearing the sweep down.
std::vector<RunResult> runSweep(std::vector<SweepJob> jobs, unsigned hostThreads = 0);

/// Convenience: build the jobs for a cross product and run them.
std::vector<RunResult> sweepSystems(
    const MachineParams& machine, const std::vector<SystemSpec>& systems,
    const std::vector<std::string>& workloads, const std::vector<unsigned>& threads,
    unsigned hostThreads = 0);

/// Find the result for a (system, workload, threads) cell.
const RunResult* findResult(const std::vector<RunResult>& results,
                            const std::string& system, const std::string& workload,
                            unsigned threads);

}  // namespace lktm::cfg
