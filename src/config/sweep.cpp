#include "config/sweep.hpp"

#include <atomic>
#include <thread>

#include "config/orchestrator.hpp"
#include "workloads/workload.hpp"

namespace lktm::cfg {

namespace detail {

void runWorkerPool(unsigned hostThreads, std::size_t jobCount,
                   const std::function<std::ptrdiff_t()>& claim,
                   const std::function<void(std::size_t, sim::SimContext&)>& runOne) {
  if (jobCount == 0) return;
  if (hostThreads == 0) {
    hostThreads = std::max(1u, std::thread::hardware_concurrency());
  }
  hostThreads = std::min<unsigned>(hostThreads, static_cast<unsigned>(jobCount));

  auto worker = [&] {
    sim::SimContext ctx;  // reused across every job this thread executes
    for (;;) {
      const std::ptrdiff_t i = claim();
      if (i < 0) return;
      runOne(static_cast<std::size_t>(i), ctx);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(hostThreads);
  for (unsigned t = 0; t < hostThreads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

}  // namespace detail

std::uint64_t jobRunSeed(std::uint64_t baseSeed, const std::string& system,
                         const std::string& workload, unsigned threads) {
  // FNV-1a over the coordinates, finished with a splitmix64 mix so adjacent
  // cells land in unrelated parts of the stream space.
  std::uint64_t h = 0xcbf29ce484222325ull ^ baseSeed;
  auto mixStr = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
    h *= 0x100000001b3ull;
  };
  mixStr(system);
  mixStr(workload);
  h ^= threads;
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

std::vector<RunResult> runSweep(std::vector<SweepJob> jobs, unsigned hostThreads) {
  std::vector<RunResult> results(jobs.size());
  std::atomic<std::size_t> next{0};
  auto claim = [&]() -> std::ptrdiff_t {
    const std::size_t i = next.fetch_add(1);
    return i < jobs.size() ? static_cast<std::ptrdiff_t>(i) : -1;
  };
  auto failedResult = [&](std::size_t i, std::string diagnostic) {
    RunResult r;
    r.system = jobs[i].system.empty() ? jobs[i].label : jobs[i].system;
    r.workload = jobs[i].workload;
    r.threads = jobs[i].threads;
    r.seed = jobs[i].seed;
    r.status = RunStatus::Failed;
    r.diagnostic = std::move(diagnostic);
    return r;
  };
  auto runOne = [&](std::size_t i, sim::SimContext& ctx) {
    try {
      results[i] = jobs[i].run(ctx);
    } catch (const std::exception& e) {
      results[i] = failedResult(i, std::string("exception: ") + e.what());
    } catch (...) {
      // A non-std::exception throw used to escape the worker thread and
      // std::terminate the whole sweep; capture it like any other crash.
      results[i] = failedResult(
          i, "non-standard exception (not derived from std::exception)");
    }
  };
  detail::runWorkerPool(hostThreads, jobs.size(), claim, runOne);
  return results;
}

std::vector<RunResult> sweepSystems(const MachineParams& machine,
                                    const std::vector<SystemSpec>& systems,
                                    const std::vector<std::string>& workloads,
                                    const std::vector<unsigned>& threads,
                                    unsigned hostThreads) {
  std::vector<SweepJob> jobs;
  for (const auto& w : workloads) {
    for (const auto& s : systems) {
      for (unsigned t : threads) {
        const std::uint64_t seed = kDefaultSweepSeed;
        jobs.push_back(SweepJob{
            .label = s.name + "/" + w + "@" + std::to_string(t),
            .system = s.name,
            .workload = w,
            .threads = t,
            .seed = seed,
            .run = [machine, s, w, t, seed](sim::SimContext& ctx) {
              RunConfig cfg;
              cfg.machine = machine;
              cfg.system = s;
              cfg.threads = t;
              cfg.rngSeed = jobRunSeed(seed, s.name, w, t);
              // Same name registry as the manifest orchestrator, so a bench
              // grid and a sweep job agree on every workload family (STAMP,
              // micro, database traffic).
              return runSimulation(cfg, [&] { return makeJobWorkload(w, seed); }, &ctx);
            }});
      }
    }
  }
  return runSweep(std::move(jobs), hostThreads);
}

const RunResult* findResult(const std::vector<RunResult>& results,
                            const std::string& system, const std::string& workload,
                            unsigned threads) {
  for (const auto& r : results) {
    if (r.system == system && r.workload == workload && r.threads == threads) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace lktm::cfg
