#include "config/sweep.hpp"

#include <atomic>
#include <thread>

#include "workloads/workload.hpp"

namespace lktm::cfg {

std::vector<RunResult> runSweep(std::vector<SweepJob> jobs, unsigned hostThreads) {
  if (jobs.empty()) return {};
  if (hostThreads == 0) {
    hostThreads = std::max(1u, std::thread::hardware_concurrency());
  }
  hostThreads = std::min<unsigned>(hostThreads, static_cast<unsigned>(jobs.size()));

  std::vector<RunResult> results(jobs.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    sim::SimContext ctx;  // reused across every job this thread executes
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      try {
        results[i] = jobs[i].run(ctx);
      } catch (const std::exception& e) {
        RunResult r;
        r.system = jobs[i].system.empty() ? jobs[i].label : jobs[i].system;
        r.workload = jobs[i].workload;
        r.threads = jobs[i].threads;
        r.hang = true;
        r.hangDiagnostic = std::string("exception: ") + e.what();
        results[i] = r;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(hostThreads);
  for (unsigned t = 0; t < hostThreads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

std::vector<RunResult> sweepSystems(const MachineParams& machine,
                                    const std::vector<SystemSpec>& systems,
                                    const std::vector<std::string>& workloads,
                                    const std::vector<unsigned>& threads,
                                    unsigned hostThreads) {
  std::vector<SweepJob> jobs;
  for (const auto& w : workloads) {
    for (const auto& s : systems) {
      for (unsigned t : threads) {
        jobs.push_back(SweepJob{
            .label = s.name + "/" + w + "@" + std::to_string(t),
            .system = s.name,
            .workload = w,
            .threads = t,
            .run = [machine, s, w, t](sim::SimContext& ctx) {
              RunConfig cfg;
              cfg.machine = machine;
              cfg.system = s;
              cfg.threads = t;
              return runSimulation(cfg, [&w] { return wl::makeStamp(w); }, &ctx);
            }});
      }
    }
  }
  return runSweep(std::move(jobs), hostThreads);
}

const RunResult* findResult(const std::vector<RunResult>& results,
                            const std::string& system, const std::string& workload,
                            unsigned threads) {
  for (const auto& r : results) {
    if (r.system == system && r.workload == workload && r.threads == threads) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace lktm::cfg
