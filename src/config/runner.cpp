#include "config/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "coherence/checker.hpp"
#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "cpu/barrier.hpp"
#include "cpu/core.hpp"
#include "noc/ideal.hpp"
#include "noc/mesh.hpp"
#include "runtime/backends/backend.hpp"
#include "sim/engine.hpp"
#include "stats/tx_stats.hpp"

namespace lktm::cfg {

namespace {

// Host-side wall clock for the run's wall budget and wallSeconds reporting;
// it never feeds simulated time, which advances only through Engine events.
// lktm-lint: allow(no-wall-clock) -- wall-budget enforcement and reporting only
using WallClock = std::chrono::steady_clock;

}  // namespace

const char* toString(RunStatus s) {
  switch (s) {
    case RunStatus::Ok: return "ok";
    case RunStatus::Failed: return "failed";
    case RunStatus::Hang: return "hang";
    case RunStatus::Timeout: return "timeout";
  }
  return "?";
}

bool runStatusFromString(const std::string& name, RunStatus& out) {
  for (auto s : {RunStatus::Ok, RunStatus::Failed, RunStatus::Hang,
                 RunStatus::Timeout}) {
    if (name == toString(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

Cycle TimeBreakdown::total() const {
  Cycle t = 0;
  for (const Cycle c : cycles) t += c;
  return t;
}

double TimeBreakdown::fraction(TimeCat c) const {
  const Cycle t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(get(c)) / static_cast<double>(t);
}

std::uint64_t RunResult::abortCount(AbortCause cause) const {
  return stats.sumMatching(std::string("core.*.aborts.") + stats::abortCauseSlug(cause));
}

std::optional<double> RunResult::commitRate() const {
  return stats::commitRate(htmCommits(), stlCommits() + stmCommits(), aborts());
}

TimeBreakdown RunResult::breakdown() const {
  TimeBreakdown b;
  for (std::size_t i = 0; i < b.cycles.size(); ++i) {
    b.cycles[i] = stats.sumMatching(std::string("core.*.time.") +
                                    stats::timeCatSlug(static_cast<TimeCat>(i)));
  }
  return b;
}

TimeBreakdown RunResult::threadBreakdown(unsigned tid) const {
  TimeBreakdown b;
  const std::string prefix = "core." + std::to_string(tid) + ".time.";
  for (std::size_t i = 0; i < b.cycles.size(); ++i) {
    b.cycles[i] = stats.value(prefix + stats::timeCatSlug(static_cast<TimeCat>(i)));
  }
  return b;
}

std::string RunResult::str() const {
  std::ostringstream oss;
  oss << system << "/" << workload << "@" << threads << "t[" << machine
      << "]: " << cycles << " cycles, commits htm=" << htmCommits()
      << " lock=" << lockCommits() << " stl=" << stlCommits()
      << " stm=" << stmCommits() << " aborts=" << aborts() << " (rate=";
  if (const auto rate = commitRate(); rate.has_value()) {
    oss << *rate;
  } else {
    oss << "-";
  }
  oss << ")" << (ok() ? "" : " FAILED");
  for (const auto& v : violations) oss << "\n  violation: " << v;
  if (status != RunStatus::Ok) {
    oss << "\n  " << toString(status) << ": " << diagnostic;
  }
  return oss.str();
}

RunResult runSimulation(const RunConfig& cfg, const WorkloadFactory& makeWorkload,
                        sim::SimContext* ctx) {
  cfg.machine.validate();
  if (cfg.threads > cfg.machine.numCores) {
    throw std::invalid_argument(
        "run config: " + std::to_string(cfg.threads) + " threads exceed the " +
        std::to_string(cfg.machine.numCores) + " cores of machine '" +
        cfg.machine.name + "' (one thread per core; scale the machine with "
        "--cores or a -cN name suffix)");
  }

  RunResult res;
  res.system = cfg.system.name;
  res.machine = cfg.machine.name;
  res.threads = cfg.threads;
  res.cores = cfg.machine.numCores;
  res.banks = cfg.machine.numBanks;
  res.seed = cfg.rngSeed;

  std::unique_ptr<sim::SimContext> localCtx;
  if (ctx == nullptr) {
    localCtx = std::make_unique<sim::SimContext>(cfg.machine.watchdogWindow);
    ctx = localCtx.get();
  }
  sim::SimContext& simCtx = *ctx;
  simCtx.beginRun(cfg.machine.watchdogWindow, cfg.rngSeed);
  simCtx.setTraceSink(cfg.traceSink);  // nullptr clears any previous run's sink
  sim::Engine& engine = simCtx.engine();
  mem::MainMemory memory;
  memory.attachStats(simCtx.stats());
  std::unique_ptr<noc::Network> netPtr;
  if (cfg.machine.idealNetwork) {
    netPtr = std::make_unique<noc::IdealNetwork>(simCtx, cfg.machine.idealNetworkLatency);
  } else {
    netPtr = std::make_unique<noc::MeshNetwork>(simCtx, cfg.machine.mesh);
  }
  noc::Network& net = *netPtr;

  coh::DirectoryController dir(simCtx, net, memory, cfg.machine.protocol,
                               cfg.machine.numCores, cfg.machine.numBanks,
                               core::HtmLockUnitParams{cfg.machine.signatureBits, 4});

  const unsigned n = cfg.threads;
  std::unique_ptr<wl::Workload> workload = makeWorkload();
  res.workload = workload->name();
  workload->init(memory, n);

  // Backend resolution: machine suffix > system row > policy default.
  const std::string backendName = !cfg.machine.backend.empty()
                                      ? cfg.machine.backend
                                      : (!cfg.system.backend.empty()
                                             ? cfg.system.backend
                                             : tm::defaultBackendFor(cfg.system.policy));
  std::unique_ptr<tm::Backend> backend = tm::makeBackend(
      backendName,
      tm::BackendConfig{cfg.system.policy, cfg.system.retry, wl::kFallbackLockAddr});
  res.backend = backend->name();
  // The footprint guard must precede the LLC warm-up: preloading a footprint
  // that reaches the STM scratch region would allocate LLC state for the
  // whole (possibly enormous) range before the rejection fires.
  if (backend->usesStmScratch() && workload->footprintEnd() > tm::kStmScratchBase) {
    throw std::invalid_argument(
        "backend '" + backendName + "': workload '" + res.workload +
        "' footprint reaches into the software-TM metadata region (>= " +
        std::to_string(tm::kStmScratchBase) + ")");
  }

  if (cfg.warmLlc) {
    dir.preloadLlc(lineOf(wl::kFallbackLockAddr), lineOf(workload->footprintEnd()) + 1);
  }

  std::vector<std::unique_ptr<coh::L1Controller>> l1s;
  l1s.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    l1s.push_back(std::make_unique<coh::L1Controller>(
        simCtx, net, static_cast<CoreId>(i), cfg.machine.l1, cfg.machine.protocol,
        cfg.system.policy, cfg.machine.numCores));
    l1s.back()->connectDirectory(&dir);
    l1s.back()->setLockLine(lineOf(wl::kFallbackLockAddr));
    dir.connectL1(static_cast<CoreId>(i), l1s.back().get());
  }
  std::vector<coh::MsgSink*> peers;
  for (auto& l1 : l1s) peers.push_back(l1.get());
  for (auto& l1 : l1s) l1->connectPeers(peers);

  cpu::BarrierUnit barrier(simCtx, n);
  cpu::CpuParams cpuParams = cfg.machine.cpu;
  cpuParams.priorityKind = cfg.system.policy.priority;
  cpuParams.switchOnFault = cfg.system.policy.switching && cfg.system.policy.switchOnFault;

  std::vector<std::unique_ptr<cpu::Cpu>> cpus;
  cpus.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    cpus.push_back(std::make_unique<cpu::Cpu>(
        simCtx, static_cast<CoreId>(i), *l1s[i], barrier,
        workload->buildProgram(i, n, *backend), cpuParams));
    engine.addDiagnostic([c = cpus.back().get()] { return c->diagnostic(); });
  }
  engine.addDiagnostic([&dir] { return dir.diagnostic(); });

  for (auto& c : cpus) c->start();

  const auto wallStart = WallClock::now();
  if (cfg.wallBudgetSeconds > 0.0) {
    engine.setWallDeadline(
        wallStart + std::chrono::duration_cast<WallClock::duration>(
                        std::chrono::duration<double>(cfg.wallBudgetSeconds)));
  }
  try {
    engine.run(cfg.machine.maxCycles);
  } catch (const sim::SimulationTimeout& e) {
    res.status = RunStatus::Timeout;
    res.diagnostic = e.what();
  } catch (const sim::SimulationHang& e) {
    res.status = RunStatus::Hang;
    res.diagnostic = e.what();
  }
  engine.clearWallDeadline();
  res.wallSeconds =
      std::chrono::duration<double>(WallClock::now() - wallStart).count();

  for (auto& c : cpus) {
    if (!c->halted()) {
      if (res.status == RunStatus::Ok) {
        res.status = RunStatus::Hang;
        res.diagnostic = "thread never halted";
      }
      res.diagnostic += "\n  " + c->diagnostic();
    }
    res.cycles = std::max(res.cycles, c->haltedAt());
  }
  if (res.cycles == 0) res.cycles = engine.now();
  res.stats = simCtx.stats().snapshot();

  if (res.status == RunStatus::Ok && cfg.runCoherenceChecker) {
    std::vector<const coh::L1Controller*> cl1s;
    for (auto& l1 : l1s) cl1s.push_back(l1.get());
    coh::CoherenceChecker checker(cl1s, &dir);
    for (auto& v : checker.check()) res.violations.push_back("coherence: " + v);
  }

  if (res.status == RunStatus::Ok && cfg.verifyWorkload) {
    // Coherent word reader: freshest dirty L1 copy > LLC > main memory.
    wl::WordReader read = [&](Addr addr) -> std::uint64_t {
      const LineAddr line = lineOf(addr);
      for (auto& l1 : l1s) {
        const mem::CacheEntry* e = l1->cache().find(line);
        if (e != nullptr && e->dirty) return e->data[wordOf(addr)];
      }
      if (dir.llcHas(line)) return dir.llcData(line)[wordOf(addr)];
      return memory.readWord(addr);
    };
    for (auto& v : workload->verify(read, n)) res.violations.push_back(v);
  }
  return res;
}

}  // namespace lktm::cfg
