// Distributed sweep fan-out: many `lktm_sweep work` processes — on one host
// or on several sharing a directory (NFS mount or rsync'd spool) — execute
// one manifest cooperatively, with no daemon and no coordinator.
//
// The protocol is a filesystem claim spool next to the manifest. Every job
// has one file, named by jobFileStem(), that lives in exactly one of three
// subdirectories; every transition is a POSIX rename of that file, which is
// atomic even on shared filesystems:
//
//     todo/<stem>      --take-->      claimed/<stem>     (exactly one winner)
//     claimed/<stem>   --reclaim-->   todo/<stem>        (exactly one winner)
//     claimed/<stem>   --finish-->    done/<stem> written, claimed/ removed
//
// Claim contents travel with the rename: a token carries the cumulative
// attempt count, so a job reclaimed from a dead worker resumes its retry
// budget instead of resetting it.
//
// Liveness is a heartbeat file per worker (hb/<worker>, rewritten atomically
// on a cadence by a dedicated thread). Staleness is judged WITHOUT comparing
// clocks across hosts: a worker watches a foreign claim, remembers the
// owner's heartbeat fingerprint, and reclaims only when the fingerprint has
// not changed across `leaseSeconds` of its OWN steady clock. A SIGKILLed
// worker's jobs therefore flow back into todo/ and the survivors finish
// them — mapping dead workers onto the ordinary pending state of the PR-5
// taxonomy.
//
// Crash windows resolve safely because every job is deterministic: the worst
// a spurious reclaim can cause is a double execution, and both executions
// write byte-identical artifacts (atomically, via tmp + rename), so the
// merged document stays bit-identical to a single-worker run no matter how
// many workers ran, where, or how often they died. done/ beats claimed/
// whenever both exist (a worker died between finishing and unclaiming).
//
// Shard assignment is pure computation, not state: jobShard() keys on the
// same manifest identity that feeds jobRunSeed, so every worker derives the
// same job -> shard map with no messages. Workers *prefer* their own shard
// (disjoint claim traffic in the common case) and steal from other shards
// once theirs is drained, so a lost worker never strands its slice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/orchestrator.hpp"

namespace lktm::cfg {

/// Deterministic job -> shard assignment for a manifest with `numShards`
/// shards. Keyed by the same identity that feeds jobRunSeed() — plus the
/// machine name, which the RNG seed deliberately omits but which must
/// separate cells that differ only by machine (the fig13 grids). Pure
/// function of the spec: identical on every host.
std::size_t jobShard(const JobSpec& spec, std::uint64_t numShards);

/// One worker's view of a claim file (claimed/<stem>).
struct ClaimRecord {
  std::string file;     ///< spool file name (the job's stem)
  std::string id;       ///< JobSpec::id(), carried in the content
  std::string worker;   ///< current owner ("" in the brief post-take window)
  unsigned attempts = 0;  ///< attempts consumed by all owners so far
};

/// Terminal record (done/<stem>): the manifest-record fields a worker learns
/// when it finishes (or inherits) a job.
struct DoneRecord {
  std::string file;
  std::string id;
  JobState state = JobState::Failed;
  unsigned attempts = 0;
  std::string diagnostic;
  std::string artifact;
  double wallSeconds = 0.0;
  std::uint64_t cycles = 0;
  std::string worker;  ///< who finished it
};

/// Parsed heartbeat file (hb/<worker>).
struct HeartbeatRecord {
  std::string worker;
  std::uint64_t seq = 0;       ///< monotonically increasing per rewrite
  double unixSeconds = 0.0;    ///< writer's wall clock (display only — never
                               ///< used for staleness decisions)
};

/// The claim spool. All mutating operations are single filesystem renames
/// (or exclusive creates), so any number of ClaimStores — across threads,
/// processes and hosts — can operate on the same directory concurrently.
class ClaimStore {
 public:
  ClaimStore(std::string root, std::string workerId);

  /// Create the spool directories. Throws std::runtime_error on failure.
  void init() const;

  /// Ensure every manifest job has a spool entry: terminal jobs (Ok with a
  /// live artifact, or failed/hang/timeout) get a done/ record, everything
  /// else a todo/ token. Entries that already exist anywhere are left alone,
  /// so seeding is idempotent and races between workers are harmless.
  /// Returns the number of entries this call created.
  std::size_t seed(const SweepManifest& manifest) const;

  /// Claim todo/<file> by renaming it into claimed/. On the win, `out` holds
  /// the inherited attempt count and the claim file has been republished
  /// with this worker as owner. Returns false when someone else won (or the
  /// token vanished).
  bool take(const std::string& file, ClaimRecord& out) const;

  /// Republish claimed/<file> content (owner + attempts). Only the owner
  /// should call this.
  void publishClaim(const ClaimRecord& c) const;

  /// Record a terminal state: write done/<file> atomically, then drop the
  /// claim. Safe against concurrent duplicate executions — last writer wins
  /// with equivalent content.
  bool markDone(const DoneRecord& d) const;

  /// Return claimed/<file> to todo/ (dead-owner reclamation). When a done/
  /// record already exists the claim is just dropped instead — the job
  /// finished, its owner merely died before unclaiming. Returns true only
  /// when the job actually went back to todo/ by this call.
  bool reclaim(const std::string& file) const;

  /// Rewrite this worker's heartbeat file.
  void writeHeartbeat(std::uint64_t seq) const;

  // ---- scans (each a directory listing; sorted by file name) ----
  std::vector<std::string> listTodo() const;
  std::vector<ClaimRecord> listClaimed() const;
  std::vector<DoneRecord> listDone() const;
  std::vector<HeartbeatRecord> listHeartbeats() const;
  bool todoExists(const std::string& file) const;
  bool doneExists(const std::string& file) const;
  std::size_t doneCount() const;
  /// Parse one done/<file> record; returns false when absent/malformed.
  bool readDone(const std::string& file, DoneRecord& out) const;

  /// Drop a stray todo/ token (used when a done/ record already exists after
  /// a spurious reclaim; the job must not run again).
  void discardTodo(const std::string& file) const;

  const std::string& root() const { return root_; }
  const std::string& workerId() const { return workerId_; }

 private:
  std::string root_;
  std::string workerId_;
};

/// Per-worker knobs for runWorker / `lktm_sweep work`.
struct WorkerOptions {
  static constexpr std::size_t kAutoShard = static_cast<std::size_t>(-1);

  std::string workerId;   ///< required; also names the heartbeat file
  std::string claimDir;   ///< spool root (shared across all workers)
  double heartbeatSeconds = 2.0;  ///< heartbeat rewrite cadence
  /// Reclaim a foreign claim after its owner's heartbeat fingerprint stayed
  /// frozen this long on OUR steady clock (>= a few heartbeat periods).
  double leaseSeconds = 30.0;
  double pollSeconds = 0.2;  ///< idle wait between claim scans
  /// Preferred shard (< manifest.shards). kAutoShard derives one from the
  /// worker id, so N distinctly-named workers spread over the shards.
  std::size_t shard = kAutoShard;
};

/// Execute `manifest` as one worker of a distributed sweep: seed the spool,
/// pull claims (own shard first, then steal), run each job with the shared
/// PR-5 retry/backoff rules, write per-job artifacts atomically, mark jobs
/// done, heartbeat throughout, and reclaim jobs from dead workers. Returns
/// when every job has a done/ record (or opts.maxJobs claims were taken).
/// The manifest is an in-memory view — distributed state lives in the spool;
/// on return the manifest has been folded up to date (foldClaimState).
OrchestratorReport runWorker(SweepManifest& manifest, const WorkerOptions& wopts,
                             const OrchestratorOptions& opts = {},
                             const JobRunner& runner = {});

/// Overlay spool state onto manifest records: done/ records set terminal
/// state/attempts/diagnostic/artifact, claimed/ shows as Running, todo/ as
/// Pending (done beats claimed beats todo). Jobs with no spool entry keep
/// their manifest state. Returns the number of jobs updated from done/.
/// No-op (returns 0) when `claimDir` does not exist.
std::size_t foldClaimState(SweepManifest& manifest, const std::string& claimDir);

}  // namespace lktm::cfg
