#include "config/orchestrator.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "config/artifact.hpp"
#include "config/systems.hpp"
#include "stats/json.hpp"
#include "workloads/db_traffic.hpp"
#include "workloads/micro.hpp"
#include "workloads/workload.hpp"

namespace lktm::cfg {

namespace {

namespace fs = std::filesystem;
using stats::json::Value;

// Wall clock for the operator-facing progress/ETA line only; job scheduling,
// seeds and artifacts are pure functions of the manifest.
// lktm-lint: allow(no-wall-clock) -- progress/ETA display only
using WallClock = std::chrono::steady_clock;

/// Diagnostic prefix marking a TransientJobError capture; isTransientFailure
/// keys on it so scripted runners returning (not throwing) a transient
/// failure classify identically.
constexpr const char* kTransientPrefix = "transient: ";

[[noreturn]] void badManifest(const std::string& what) {
  throw std::runtime_error("malformed manifest: " + what);
}

const Value& needField(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr) badManifest(std::string("missing \"") + key + "\"");
  return *v;
}

}  // namespace

std::string jobFileStem(const JobSpec& spec) {
  const std::string id = spec.id();
  std::string out;
  out.reserve(id.size());
  for (const char c : id) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    out += keep ? c : '_';
  }
  return out;
}

const char* toString(JobState s) {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Ok: return "ok";
    case JobState::Failed: return "failed";
    case JobState::Hang: return "hang";
    case JobState::Timeout: return "timeout";
  }
  return "?";
}

bool jobStateFromString(const std::string& name, JobState& out) {
  for (const JobState s : {JobState::Pending, JobState::Running, JobState::Ok,
                           JobState::Failed, JobState::Hang, JobState::Timeout}) {
    if (name == toString(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

JobState jobStateOf(const RunResult& r) {
  switch (r.status) {
    case RunStatus::Hang: return JobState::Hang;
    case RunStatus::Timeout: return JobState::Timeout;
    case RunStatus::Failed: return JobState::Failed;
    case RunStatus::Ok: break;
  }
  // Invariant/coherence violations fail the job even though the simulation
  // itself ran to completion.
  return r.violations.empty() ? JobState::Ok : JobState::Failed;
}

std::string JobSpec::id() const {
  return system + "/" + workload + "/" + machine + "@" + std::to_string(threads) +
         "#" + std::to_string(seed);
}

JobRecord* SweepManifest::find(const std::string& id) {
  for (JobRecord& j : jobs) {
    if (j.spec.id() == id) return &j;
  }
  return nullptr;
}

std::size_t SweepManifest::countIn(JobState s) const {
  std::size_t n = 0;
  for (const JobRecord& j : jobs) n += (j.state == s) ? 1 : 0;
  return n;
}

bool SweepManifest::complete() const {
  for (const JobRecord& j : jobs) {
    if (j.state == JobState::Pending || j.state == JobState::Running) return false;
  }
  return true;
}

bool SweepManifest::allOk() const {
  for (const JobRecord& j : jobs) {
    if (j.state != JobState::Ok) return false;
  }
  return true;
}

SweepManifest SweepManifest::fromJson(const std::string& text) {
  const Value doc = stats::json::parse(text);
  const Value* schema = doc.find("schema");
  if (schema == nullptr ||
      (schema->text != kManifestSchema && schema->text != kManifestSchemaV1)) {
    badManifest(std::string("schema is not ") + kManifestSchema + " (or " +
                kManifestSchemaV1 + ")");
  }
  SweepManifest m;
  m.artifactDir = needField(doc, "artifact_dir").text;
  // v1 documents predate sharding; they load as a single shard and save back
  // as v2.
  if (const Value* shards = doc.find("shards"); shards != nullptr) {
    m.shards = stats::json::asU64(*shards);
    if (m.shards == 0) badManifest("shards must be >= 1");
  }
  const Value& jobs = needField(doc, "jobs");
  if (!jobs.isArray()) badManifest("jobs is not an array");
  std::vector<std::string> seen;
  for (const Value& e : *jobs.array) {
    if (!e.isObject()) badManifest("job entry is not an object");
    JobRecord j;
    j.spec.system = needField(e, "system").text;
    j.spec.workload = needField(e, "workload").text;
    j.spec.machine = needField(e, "machine").text;
    j.spec.threads = static_cast<unsigned>(stats::json::asU64(needField(e, "threads")));
    j.spec.seed = stats::json::asU64(needField(e, "seed"));
    if (!jobStateFromString(needField(e, "state").text, j.state)) {
      badManifest("unknown job state \"" + needField(e, "state").text + "\"");
    }
    j.attempts = static_cast<unsigned>(stats::json::asU64(needField(e, "attempts")));
    j.diagnostic = needField(e, "diagnostic").text;
    j.artifact = needField(e, "artifact").text;
    j.wallSeconds = needField(e, "wall_seconds").number;
    j.cycles = stats::json::asU64(needField(e, "cycles"));
    const std::string id = j.spec.id();
    for (const std::string& s : seen) {
      if (s == id) badManifest("duplicate job id " + id);
    }
    seen.push_back(id);
    m.jobs.push_back(std::move(j));
  }
  return m;
}

SweepManifest SweepManifest::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open manifest: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return fromJson(ss.str());
}

std::string SweepManifest::toJson() const {
  std::ostringstream os;
  stats::json::Writer w(os, /*pretty=*/true);
  w.beginObject();
  w.field("schema", kManifestSchema);
  w.field("artifact_dir", artifactDir);
  w.field("shards", shards);
  w.key("jobs");
  w.beginArray();
  for (const JobRecord& j : jobs) {
    w.beginObject();
    w.field("id", j.spec.id());
    w.field("system", j.spec.system);
    w.field("workload", j.spec.workload);
    w.field("machine", j.spec.machine);
    w.field("threads", j.spec.threads);
    w.field("seed", j.spec.seed);
    w.field("state", toString(j.state));
    w.field("attempts", j.attempts);
    w.field("diagnostic", j.diagnostic);
    w.field("artifact", j.artifact);
    w.field("wall_seconds", j.wallSeconds);
    w.field("cycles", j.cycles);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return os.str();
}

bool SweepManifest::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot open " << tmp << " for writing\n";
      return false;
    }
    out << toJson();
    if (!out) {
      std::cerr << "error: short write to " << tmp << "\n";
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::cerr << "error: cannot rename " << tmp << " -> " << path << ": "
              << ec.message() << "\n";
    return false;
  }
  return true;
}

std::unique_ptr<wl::Workload> makeJobWorkload(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "counter") return wl::makeCounter(4, 2, 256, seed);
  if (name == "bank") return wl::makeBank(64, 480, seed);
  if (name == "linkedlist") return wl::makeLinkedList(128, 6, 240, seed);
  if (wl::isDbWorkloadName(name)) return wl::makeDbWorkload(name, seed);
  return wl::makeStamp(name, seed);
}

RunResult runSpec(const JobSpec& spec, const OrchestratorOptions& opts,
                  sim::SimContext& ctx) {
  RunConfig cfg;
  cfg.machine = machineByName(spec.machine);
  if (opts.jobCycleBudget > 0) cfg.machine.maxCycles = opts.jobCycleBudget;
  cfg.system = systemByName(spec.system);
  cfg.threads = spec.threads;
  cfg.rngSeed = jobRunSeed(spec.seed, spec.system, spec.workload, spec.threads);
  cfg.wallBudgetSeconds = opts.jobWallBudgetSeconds;
  RunResult r = runSimulation(
      cfg, [&] { return makeJobWorkload(spec.workload, spec.seed); }, &ctx);
  r.workload = spec.workload;
  return r;
}

bool isTransientFailure(const RunResult& r) {
  if (r.status == RunStatus::Timeout) {
    // Wall-clock expiry depends on host load; a cycle-budget timeout is a
    // property of the simulation and would reproduce exactly.
    return r.diagnostic.find("wall-clock") != std::string::npos;
  }
  if (r.status == RunStatus::Failed) {
    return r.diagnostic.compare(0, std::char_traits<char>::length(kTransientPrefix),
                                kTransientPrefix) == 0;
  }
  return false;
}

namespace detail {

RunResult attemptJobOnce(const JobSpec& spec, const OrchestratorOptions& opts,
                         const JobRunner& run, sim::SimContext& ctx) {
  auto crashed = [&](std::string diagnostic) {
    RunResult r;
    r.system = spec.system;
    r.workload = spec.workload;
    r.machine = spec.machine;
    r.threads = spec.threads;
    r.seed = jobRunSeed(spec.seed, spec.system, spec.workload, spec.threads);
    r.status = RunStatus::Failed;
    r.diagnostic = std::move(diagnostic);
    return r;
  };
  try {
    return run(spec, opts, ctx);
  } catch (const TransientJobError& e) {
    return crashed(std::string(kTransientPrefix) + e.what());
  } catch (const std::exception& e) {
    return crashed(std::string("exception: ") + e.what());
  } catch (...) {
    return crashed("non-standard exception (not derived from std::exception)");
  }
}

RunResult runJobWithRetries(
    const JobSpec& spec, const OrchestratorOptions& opts, const JobRunner& run,
    sim::SimContext& ctx, const std::function<unsigned()>& beginAttempt,
    const std::function<void(unsigned, const RunResult&)>& onRetry) {
  const unsigned maxAttempts = std::max(1u, opts.maxAttempts);
  for (;;) {
    const unsigned attempt = beginAttempt();
    RunResult r = attemptJobOnce(spec, opts, run, ctx);
    if (jobStateOf(r) == JobState::Ok || !isTransientFailure(r) ||
        attempt >= maxAttempts) {
      return r;
    }
    if (onRetry) onRetry(attempt, r);
    if (opts.retryBackoffSeconds > 0.0) {
      // A claim-inherited attempt count can be large; clamp the doubling so
      // the shift stays defined and the sleep finite.
      const unsigned exp = std::min(attempt - 1, 20u);
      const double backoff =
          opts.retryBackoffSeconds * static_cast<double>(1u << exp);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

}  // namespace detail

OrchestratorReport runManifest(SweepManifest& manifest, const std::string& manifestPath,
                               const OrchestratorOptions& opts, const JobRunner& runner,
                               std::vector<RunResult>* results) {
  const JobRunner run = runner ? runner : JobRunner(&runSpec);
  OrchestratorReport report;

  if (!manifest.artifactDir.empty()) {
    std::error_code ec;
    fs::create_directories(manifest.artifactDir, ec);
  }

  // Normalize stale state from a previous (possibly killed) invocation.
  std::vector<std::size_t> runnable;
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    JobRecord& j = manifest.jobs[i];
    if (j.state == JobState::Running) j.state = JobState::Pending;
    if (j.state == JobState::Ok &&
        (j.artifact.empty() || !fs::exists(fs::path(j.artifact)))) {
      j.state = JobState::Pending;  // artifact lost; the result is gone with it
      j.artifact.clear();
    }
    if (opts.rerunFailed &&
        (j.state == JobState::Failed || j.state == JobState::Hang ||
         j.state == JobState::Timeout)) {
      j.state = JobState::Pending;
      j.diagnostic.clear();
    }
    if (j.state == JobState::Pending) {
      runnable.push_back(i);
    } else {
      ++report.skipped;
    }
  }

  std::mutex mu;  // guards manifest, report, progress, checkpoint saves
  std::vector<char> ranNow(manifest.jobs.size(), 0);
  std::size_t started = 0;
  std::size_t claimCursor = 0;
  std::size_t doneThisRun = 0;
  const auto t0 = WallClock::now();

  auto checkpoint = [&] {
    if (!manifestPath.empty()) manifest.save(manifestPath);
  };

  auto claim = [&]() -> std::ptrdiff_t {
    std::lock_guard<std::mutex> lock(mu);
    if (claimCursor >= runnable.size()) return -1;
    if (opts.maxJobs != 0 && started >= opts.maxJobs) return -1;
    const std::size_t i = runnable[claimCursor++];
    ++started;
    manifest.jobs[i].state = JobState::Running;
    checkpoint();
    return static_cast<std::ptrdiff_t>(i);
  };

  const unsigned maxAttempts = std::max(1u, opts.maxAttempts);

  auto runOne = [&](std::size_t i, sim::SimContext& ctx) {
    const JobSpec spec = manifest.jobs[i].spec;
    auto beginAttempt = [&]() -> unsigned {
      std::lock_guard<std::mutex> lock(mu);
      return ++manifest.jobs[i].attempts;
    };
    auto onRetry = [&](unsigned attempt, const RunResult& failed) {
      std::lock_guard<std::mutex> lock(mu);
      ++report.retried;
      if (opts.progress != nullptr) {
        *opts.progress << "retry " << spec.id() << " (attempt " << (attempt + 1)
                       << "/" << maxAttempts << "): " << failed.diagnostic << "\n";
      }
    };
    RunResult r = detail::runJobWithRetries(spec, opts, run, ctx, beginAttempt,
                                            onRetry);

    JobState state = jobStateOf(r);
    std::string artifactPath;
    if (state == JobState::Ok && !manifest.artifactDir.empty()) {
      artifactPath =
          (fs::path(manifest.artifactDir) / (jobFileStem(spec) + ".json")).string();
      if (!writeStatsJsonFile(artifactPath, r)) {
        state = JobState::Failed;
        r.status = RunStatus::Failed;
        r.diagnostic = "cannot write artifact " + artifactPath;
        artifactPath.clear();
      }
    }

    std::lock_guard<std::mutex> lock(mu);
    JobRecord& j = manifest.jobs[i];
    j.state = state;
    j.artifact = artifactPath;
    j.wallSeconds = r.wallSeconds;
    j.cycles = r.cycles;
    j.diagnostic = state == JobState::Ok ? "" : r.diagnostic;
    if (state == JobState::Failed && j.diagnostic.empty() && !r.violations.empty()) {
      j.diagnostic = r.violations.front();
    }
    if (results != nullptr) (*results)[i] = std::move(r);
    ranNow[i] = 1;
    ++report.ran;
    ++doneThisRun;
    checkpoint();
    if (opts.progress != nullptr) {
      const std::size_t terminalTotal = report.skipped + doneThisRun;
      const double elapsed =
          std::chrono::duration<double>(WallClock::now() - t0).count();
      const std::size_t target =
          opts.maxJobs != 0 ? std::min(runnable.size(), opts.maxJobs) : runnable.size();
      const std::size_t left = target > doneThisRun ? target - doneThisRun : 0;
      // No completed jobs or zero measured wall time means there is no rate
      // to extrapolate from — print "--" rather than a bogus "eta 0s".
      char etaStr[32];
      if (doneThisRun > 0 && elapsed > 0.0) {
        std::snprintf(etaStr, sizeof(etaStr), "%.0fs",
                      elapsed / static_cast<double>(doneThisRun) *
                          static_cast<double>(left));
      } else {
        std::snprintf(etaStr, sizeof(etaStr), "--");
      }
      char line[256];
      std::snprintf(line, sizeof(line), "[%zu/%zu] %s: %s (%.1fs) eta %s\n",
                    terminalTotal, manifest.jobs.size(), spec.id().c_str(),
                    toString(state), j.wallSeconds, etaStr);
      *opts.progress << line;
    }
  };

  if (results != nullptr) {
    results->clear();
    results->resize(manifest.jobs.size());
  }

  detail::runWorkerPool(opts.hostThreads, runnable.size(), claim, runOne);

  // Hand back the complete result set: skipped-Ok jobs reload from their
  // artifacts so figure code sees a resumed sweep exactly like a fresh one.
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    const JobRecord& j = manifest.jobs[i];
    if (j.state == JobState::Ok) ++report.ok;
    if (j.state == JobState::Failed || j.state == JobState::Hang ||
        j.state == JobState::Timeout) {
      ++report.failed;
    }
    if (results == nullptr || ranNow[i] != 0) continue;
    RunResult& slot = (*results)[i];
    if (j.state == JobState::Ok) {
      try {
        slot = loadStatsArtifact(j.artifact);
        continue;
      } catch (const std::exception& e) {
        slot.diagnostic = std::string("exception: ") + e.what();
        slot.status = RunStatus::Failed;
      }
    }
    slot.system = j.spec.system;
    slot.workload = j.spec.workload;
    slot.machine = j.spec.machine;
    slot.threads = j.spec.threads;
    slot.seed = j.spec.seed;
    if (j.state == JobState::Hang) slot.status = RunStatus::Hang;
    if (j.state == JobState::Timeout) slot.status = RunStatus::Timeout;
    if (j.state == JobState::Failed) slot.status = RunStatus::Failed;
    if (j.state == JobState::Pending || j.state == JobState::Running) {
      // maxJobs interrupted the invocation before this job ran; make sure the
      // placeholder can never pass for a real result.
      slot.status = RunStatus::Failed;
      slot.diagnostic = "job not run (interrupted invocation)";
    }
    if (slot.diagnostic.empty()) slot.diagnostic = j.diagnostic;
  }

  checkpoint();
  return report;
}

bool writeMergedArtifact(const SweepManifest& manifest, const std::string& outPath) {
  std::ostringstream os;
  stats::json::Writer w(os, /*pretty=*/true);
  w.beginObject();
  w.field("schema", kStatsSchema);
  w.key("runs");
  w.beginArray();
  for (const JobRecord& j : manifest.jobs) {
    if (j.state != JobState::Ok) continue;
    std::ifstream in(j.artifact, std::ios::binary);
    if (!in) {
      std::cerr << "error: cannot open artifact " << j.artifact << " for "
                << j.spec.id() << "\n";
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    Value doc;
    try {
      doc = stats::json::parse(ss.str());
    } catch (const std::exception& e) {
      std::cerr << "error: " << j.artifact << ": " << e.what() << "\n";
      return false;
    }
    const Value* runs = doc.find("runs");
    if (runs == nullptr || !runs->isArray() || runs->array->size() != 1) {
      std::cerr << "error: " << j.artifact << " is not a one-run artifact\n";
      return false;
    }
    Value run = runs->array->at(0);
    if (run.isObject()) {
      // Host timing is the one field a resume cannot reproduce; zero it so
      // merged bytes depend only on the job specs.
      Value zero;
      zero.kind = Value::Kind::Number;
      zero.number = 0.0;
      zero.text = "0";
      (*run.object)["wall_seconds"] = zero;
    }
    stats::json::writeValue(w, run);
  }
  w.endArray();
  w.endObject();

  std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot open " << outPath << " for writing\n";
    return false;
  }
  out << os.str();
  return static_cast<bool>(out);
}

SweepManifest makeManifest(const std::string& artifactDir, const std::string& machine,
                           const std::vector<std::string>& systems,
                           const std::vector<std::string>& workloads,
                           const std::vector<unsigned>& threads, std::uint64_t seed) {
  SweepManifest m;
  m.artifactDir = artifactDir;
  for (const std::string& w : workloads) {
    for (const std::string& s : systems) {
      for (const unsigned t : threads) {
        JobRecord j;
        j.spec = JobSpec{s, w, machine, t, seed};
        m.jobs.push_back(std::move(j));
      }
    }
  }
  return m;
}

}  // namespace lktm::cfg
