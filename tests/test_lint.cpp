// Tests for the determinism-and-protocol linter (src/lint): the lexer's
// hard cases, zone classification, per-rule positive/negative fixtures, the
// suppression contract, and the lktm.lint.v1 artifact byte format.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/selftest.hpp"
#include "stats/json.hpp"

namespace lint = lktm::lint;
namespace json = lktm::stats::json;

using lint::Finding;
using lint::lexFile;
using lint::lintSource;
using lint::Tok;
using lint::Zone;

namespace {

std::vector<std::string> identTexts(const lint::SourceFile& sf) {
  std::vector<std::string> out;
  for (const lint::Token& t : sf.tokens) {
    if (t.kind == Tok::Ident) out.push_back(t.text);
  }
  return out;
}

std::size_t countRule(const std::vector<Finding>& fs, const std::string& rule,
                      bool suppressed) {
  std::size_t n = 0;
  for (const Finding& f : fs) {
    n += (f.rule == rule && f.suppressed == suppressed) ? 1 : 0;
  }
  return n;
}

}  // namespace

// ------------------------------------------------------------------- lexer

TEST(LintLexer, RawStringIsOneOpaqueToken) {
  const auto sf = lexFile(
      "const char* s = R\"x(rand() and \"quotes\" and steady_clock)x\";\n"
      "int after = 0;\n");
  std::size_t strs = 0;
  for (const auto& t : sf.tokens) {
    if (t.kind == Tok::Str) {
      ++strs;
      EXPECT_EQ(t.text, "rand() and \"quotes\" and steady_clock");
      EXPECT_EQ(t.line, 1u);
    }
  }
  EXPECT_EQ(strs, 1u);
  const auto idents = identTexts(sf);
  // Nothing inside the raw string leaks out as an identifier.
  for (const auto& i : idents) {
    EXPECT_NE(i, "rand");
    EXPECT_NE(i, "steady_clock");
  }
  EXPECT_EQ(idents.back(), "after");
}

TEST(LintLexer, BlockCommentSpansLinesAndTracksLineNumbers) {
  const auto sf = lexFile(
      "int before = 1;\n"
      "/* contains rand()\n"
      "   and steady_clock\n"
      "   across lines */\n"
      "int after = 2;\n");
  const auto idents = identTexts(sf);
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "before", "int", "after"}));
  // The token after the comment is attributed to its own line, not the
  // comment's start line.
  EXPECT_EQ(sf.tokens.back().line, 5u);
}

TEST(LintLexer, LineContinuationSplicesPreprocessorDirective) {
  const auto sf = lexFile(
      "#define WIDE(x) \\\n"
      "  ((x) + offset)\n"
      "int code = 0;\n");
  bool sawOffset = false;
  for (const auto& t : sf.tokens) {
    if (t.text == "offset") {
      sawOffset = true;
      // The spliced continuation still counts as part of the directive.
      EXPECT_TRUE(t.preproc);
      EXPECT_EQ(t.line, 2u);
    }
    if (t.text == "code") EXPECT_FALSE(t.preproc);
  }
  EXPECT_TRUE(sawOffset);
}

TEST(LintLexer, StringEmbeddedKeywordsStayStrings) {
  const auto sf = lexFile(
      "const char* a = \"calls rand() and time(nullptr)\";\n"
      "char b = '\\\"';\n");
  for (const auto& i : identTexts(sf)) {
    EXPECT_NE(i, "rand");
    EXPECT_NE(i, "time");
  }
}

TEST(LintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  const auto sf = lexFile("long n = 1'000'000; int m = 2;\n");
  ASSERT_GE(sf.tokens.size(), 4u);
  bool sawNumber = false;
  for (const auto& t : sf.tokens) {
    if (t.kind == Tok::Number && t.text == "1'000'000") sawNumber = true;
    EXPECT_NE(t.kind, Tok::CharLit);
  }
  EXPECT_TRUE(sawNumber);
}

TEST(LintLexer, DirectiveParsedFromBlockComment) {
  const auto sf = lexFile(
      "/* preamble\n"
      "   lktm-lint: allow(no-wall-clock,no-unseeded-randomness) -- why not\n"
      "*/\n"
      "int x = 0;\n");
  ASSERT_EQ(sf.suppressions.size(), 1u);
  const auto& s = sf.suppressions[0];
  EXPECT_EQ(s.rules,
            (std::vector<std::string>{"no-wall-clock", "no-unseeded-randomness"}));
  EXPECT_EQ(s.reason, "why not");
  EXPECT_EQ(s.firstLine, 1u);
  EXPECT_EQ(s.lastLine, 3u);
}

TEST(LintLexer, BacktickQuotedDocIsNotADirective) {
  const auto sf = lexFile(
      "// suppress with `lktm-lint: allow(no-wall-clock) -- reason` comments\n"
      "int x = 0;\n");
  EXPECT_TRUE(sf.suppressions.empty());
}

// ------------------------------------------------------------------- zones

TEST(LintZones, PathClassification) {
  for (const char* det :
       {"src/sim/engine.cpp", "src/coherence/directory.cpp", "src/core/a.hpp",
        "src/cpu/core.cpp", "src/mem/mshr.cpp", "src/noc/mesh.cpp",
        "src/runtime/tm_runtime.cpp", "src/runtime/backends/tl2.cpp",
        "src/workloads/micro.cpp", "src/workloads/db_traffic.cpp",
        "src/workloads/zipfian.cpp", "src/verify/checker.cpp"}) {
    EXPECT_EQ(lint::zoneForPath(det), Zone::Deterministic) << det;
  }
  for (const char* host :
       {"src/config/runner.cpp", "src/stats/registry.cpp", "src/lint/rules.cpp",
        "tools/lktm_sweep.cpp", "tests/test_sweep.cpp", "bench/fig1.cpp",
        "examples/demo.cpp"}) {
    EXPECT_EQ(lint::zoneForPath(host), Zone::Host) << host;
  }
  EXPECT_STREQ(toString(Zone::Deterministic), "deterministic");
  EXPECT_STREQ(toString(Zone::Host), "host");
}

// ----------------------------------------------------------------- fixtures

// Every built-in seeded-violation fixture (one positive plant + one clean
// twin per rule, plus suppression variants) must behave — the same table
// lktm_lint --self-test runs.
TEST(LintRules, SelfTestFixturesBehave) {
  for (const auto& c : lint::selfTestCases()) {
    const std::vector<Finding> findings = lintSource(c.relPath, c.source);
    std::size_t hits = 0;
    std::size_t unsuppressed = 0;
    for (const Finding& f : findings) {
      if (f.rule != c.rule) continue;
      ++hits;
      unsuppressed += f.suppressed ? 0 : 1;
    }
    if (!c.expectFinding) {
      EXPECT_EQ(hits, 0u) << c.name;
    } else if (c.expectSuppressed) {
      EXPECT_GT(hits, 0u) << c.name;
      EXPECT_EQ(unsuppressed, 0u) << c.name;
    } else {
      EXPECT_GT(unsuppressed, 0u) << c.name;
    }
  }
  std::ostringstream quiet;
  EXPECT_TRUE(lint::runSelfTest(quiet));
}

TEST(LintRules, EveryRuleHasPositiveAndNegativeFixture) {
  for (const std::string& rule : lint::allRules()) {
    bool pos = false;
    bool neg = false;
    for (const auto& c : lint::selfTestCases()) {
      if (c.rule != rule) continue;
      pos = pos || (c.expectFinding && !c.expectSuppressed);
      neg = neg || !c.expectFinding;
    }
    EXPECT_TRUE(pos) << "no positive fixture for " << rule;
    EXPECT_TRUE(neg) << "no negative fixture for " << rule;
  }
}

TEST(LintRules, SuppressionRequiresReason) {
  const std::string src =
      "// lktm-lint: allow(no-unseeded-randomness)\n"
      "int r = rand();\n";
  const auto findings = lintSource("src/cpu/core.cpp", src);
  // The reasonless directive suppresses nothing and is itself a finding.
  EXPECT_EQ(countRule(findings, "no-unseeded-randomness", false), 1u);
  EXPECT_EQ(countRule(findings, "suppression-needs-reason", false), 1u);

  const std::string fixed =
      "// lktm-lint: allow(no-unseeded-randomness) -- test fixture\n"
      "int r = rand();\n";
  const auto ok = lintSource("src/cpu/core.cpp", fixed);
  EXPECT_EQ(countRule(ok, "no-unseeded-randomness", true), 1u);
  EXPECT_EQ(countRule(ok, "no-unseeded-randomness", false), 0u);
  EXPECT_EQ(countRule(ok, "suppression-needs-reason", false), 0u);
}

TEST(LintRules, RuleFilterRestrictsFindings) {
  const std::string src =
      "int r = rand();\n"
      "auto t = std::chrono::steady_clock::now();\n";
  lint::LintOptions only;
  only.rules = {"no-wall-clock"};
  const auto findings = lintSource("src/cpu/core.cpp", src, only);
  EXPECT_EQ(countRule(findings, "no-wall-clock", false), 1u);
  EXPECT_EQ(countRule(findings, "no-unseeded-randomness", false), 0u);
}

TEST(LintRules, FindingsSortedAndCarryExcerpts) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();\n"
      "int r = rand();\n";
  const auto findings = lintSource("src/cpu/core.cpp", src);
  ASSERT_GE(findings.size(), 2u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    const bool ordered =
        findings[i - 1].line < findings[i].line ||
        (findings[i - 1].line == findings[i].line &&
         findings[i - 1].rule <= findings[i].rule);
    EXPECT_TRUE(ordered);
  }
  EXPECT_EQ(findings[0].excerpt, "auto t = std::chrono::steady_clock::now();");
  EXPECT_EQ(findings[1].excerpt, "int r = rand();");
}

// ----------------------------------------------------------------- artifact

TEST(LintArtifact, GoldenJsonRoundTrip) {
  lint::LintRun run;
  run.filesScanned = 2;
  run.rules = {"no-wall-clock"};
  Finding a;
  a.file = "src/sim/a.cpp";
  a.line = 3;
  a.rule = "no-wall-clock";
  a.zone = Zone::Deterministic;
  a.excerpt = "auto t = std::chrono::steady_clock::now();";
  Finding b;
  b.file = "tools/b.cpp";
  b.line = 7;
  b.rule = "no-wall-clock";
  b.zone = Zone::Host;
  b.suppressed = true;
  b.reason = "display-only timing";
  b.excerpt = "wallNow();";
  run.findings = {a, b};
  EXPECT_EQ(run.unsuppressedCount(), 1u);
  EXPECT_EQ(run.suppressedCount(), 1u);

  std::ostringstream os;
  lint::writeArtifact(os, run);
  const std::string golden = R"({
  "schema": "lktm.lint.v1",
  "files_scanned": 2,
  "rules": [
    "no-wall-clock"
  ],
  "unsuppressed": 1,
  "suppressed": 1,
  "findings": [
    {
      "file": "src/sim/a.cpp",
      "line": 3,
      "rule": "no-wall-clock",
      "zone": "deterministic",
      "suppressed": false,
      "reason": "",
      "excerpt": "auto t = std::chrono::steady_clock::now();"
    },
    {
      "file": "tools/b.cpp",
      "line": 7,
      "rule": "no-wall-clock",
      "zone": "host",
      "suppressed": true,
      "reason": "display-only timing",
      "excerpt": "wallNow();"
    }
  ]
}
)";
  EXPECT_EQ(os.str(), golden);

  // And the bytes parse back to the same structure.
  const json::Value doc = json::parse(os.str());
  EXPECT_EQ(doc.find("schema")->text, lint::kLintSchema);
  EXPECT_EQ(json::asU64(*doc.find("files_scanned")), 2u);
  EXPECT_EQ(json::asU64(*doc.find("unsuppressed")), 1u);
  EXPECT_EQ(json::asU64(*doc.find("suppressed")), 1u);
  const json::Value* findings = doc.find("findings");
  ASSERT_TRUE(findings != nullptr && findings->isArray());
  ASSERT_EQ(findings->array->size(), 2u);
  const json::Value& f0 = findings->array->at(0);
  EXPECT_EQ(f0.find("zone")->text, "deterministic");
  EXPECT_FALSE(f0.find("suppressed")->boolean);
  const json::Value& f1 = findings->array->at(1);
  EXPECT_TRUE(f1.find("suppressed")->boolean);
  EXPECT_EQ(f1.find("reason")->text, "display-only timing");
}

TEST(LintArtifact, RuleCatalogIsSortedAndQueryable) {
  const auto& rules = lint::allRules();
  ASSERT_FALSE(rules.empty());
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1], rules[i]);
  }
  for (const auto& r : rules) EXPECT_TRUE(lint::isRule(r));
  EXPECT_FALSE(lint::isRule("no-such-rule"));
}
