// Deterministic replay scenarios for the coherence datapath. The scripted
// directory scenario and the full-simulation fingerprint below were recorded
// against the PR-1 (node-based std::map/std::set/unordered_map) containers;
// tests/test_coherence_determinism.cpp replays them against the current tree
// and requires byte-identical traces, which pins the flat-container rework to
// the exact observable behaviour of the structures it replaced.
#pragma once

#include <array>
#include <sstream>
#include <string>

#include "coherence/directory.hpp"
#include "config/runner.hpp"
#include "config/systems.hpp"
#include "noc/ideal.hpp"
#include "sim/context.hpp"
#include "workloads/micro.hpp"

namespace lktm::test {

/// Scripted L1 endpoint: appends every received message to a shared trace and
/// answers the directory immediately (Unblock / InvAck / FwdAck), so the
/// scenario below exercises forward chains and invalidation fan-out without a
/// real L1.
struct ReplayL1 final : coh::MsgSink {
  coh::DirectoryController* dir = nullptr;
  CoreId id = 0;
  std::string* trace = nullptr;

  void onMessage(const coh::Msg& m) override {
    std::ostringstream line;
    line << "c" << id << " rx " << coh::toString(m.type) << " line=" << m.line
         << " from=" << m.from;
    if (m.hasData) line << " d0=" << m.data[0];
    if (m.keptCopy) line << " kept";
    if (m.rejectHint != AbortCause::None) line << " hint=" << toString(m.rejectHint);
    line << "\n";
    *trace += line.str();

    coh::Msg r;
    r.line = m.line;
    r.from = id;
    switch (m.type) {
      case coh::MsgType::DataE:
      case coh::MsgType::DataS:
        r.type = coh::MsgType::Unblock;
        break;
      case coh::MsgType::Inv:
        r.type = coh::MsgType::InvAck;
        break;
      case coh::MsgType::FwdGetS:
        r.type = coh::MsgType::FwdAck;
        r.keptCopy = true;
        break;
      case coh::MsgType::FwdGetX:
        r.type = coh::MsgType::FwdAck;
        r.keptCopy = false;
        break;
      default:
        return;  // PutAck / RejectResp / Wakeup / Hla* need no answer
    }
    dir->onMessage(r);
  }
};

/// Directed directory scenario covering fills, forward chains, invalidation
/// fan-out, writebacks, abort invalidations, the HTMLock signature flows, and
/// the wakeup drain. The line set {5, 69, 133, 4101} is adversarial for an
/// open-addressed table: the addresses collide modulo every power-of-two
/// bucket count up to 64, forcing long probe chains and backward-shift
/// deletions while the golden trace pins the externally visible order.
///
/// With `banks` > 1 the same script runs against an interleaved directory:
/// the odd lines (and the HTMLock spill set) home on bank 1 while the HlaReq
/// / SigClear control line 0 homes on bank 0, so the lock set/clear
/// broadcasts and the cross-bank wakeup drain are all on the recorded path.
inline std::string directoryReplayTrace(unsigned banks = 1) {
  constexpr std::array<LineAddr, 6> kLines{5, 69, 133, 4101, 1, 2};
  std::string trace;
  sim::SimContext ctx;
  noc::IdealNetwork net(ctx, 1);
  mem::MainMemory memory;
  for (LineAddr l : kLines) memory.writeWord(byteOf(l), 1000 + l);
  coh::DirectoryController dir(ctx, net, memory, coh::ProtocolParams{}, 4, banks);
  std::array<ReplayL1, 4> l1s;
  for (CoreId c = 0; c < 4; ++c) {
    auto& l1 = l1s[static_cast<std::size_t>(c)];
    l1.dir = &dir;
    l1.id = c;
    l1.trace = &trace;
    dir.connectL1(c, &l1);
  }
  auto req = [](coh::MsgType t, LineAddr line, CoreId from) {
    coh::Msg m;
    m.type = t;
    m.line = line;
    m.from = from;
    m.req.core = from;
    m.req.wantsExclusive = t == coh::MsgType::GetX;
    return m;
  };
  auto drain = [&] { ctx.queue().runUntilDrained(1'000'000); };

  // Phase 1: cold fills, then sharer growth through the forward chain.
  trace += "== phase 1: fills and sharers\n";
  for (LineAddr l : kLines) {
    for (CoreId c = 0; c < 3; ++c) {
      dir.onMessage(req(coh::MsgType::GetS, l, c));
      drain();
    }
  }

  // Phase 2: exclusive requests trigger Inv fan-out over the sharer masks.
  trace += "== phase 2: invalidation fan-out\n";
  for (LineAddr l : {LineAddr{5}, LineAddr{4101}}) {
    dir.onMessage(req(coh::MsgType::GetX, l, 3));
    drain();
  }

  // Phase 3: several lines busy at once; the diagnostic's ordered walk over
  // the pending table must list them in ascending line order.
  trace += "== phase 3: busy-line diagnostic\n";
  dir.onMessage(req(coh::MsgType::GetS, 4101, 0));
  dir.onMessage(req(coh::MsgType::GetS, 5, 0));
  dir.onMessage(req(coh::MsgType::GetS, 133, 0));
  trace += dir.diagnostic() + "\n";
  drain();

  // Phase 4: dirty writeback, stale PutM, abort invalidation, clean flush.
  trace += "== phase 4: writebacks and aborts\n";
  dir.onMessage(req(coh::MsgType::GetX, 2, 1));
  drain();
  coh::Msg put = req(coh::MsgType::PutM, 2, 1);
  put.hasData = true;
  put.data[0] = 777;
  dir.onMessage(put);
  drain();
  dir.onMessage(req(coh::MsgType::GetX, 1, 0));
  drain();
  coh::Msg wbc = req(coh::MsgType::WbClean, 1, 0);
  wbc.hasData = true;
  wbc.data[0] = 888;
  dir.onMessage(wbc);
  dir.onMessage(req(coh::MsgType::TxAbortInv, 1, 0));
  drain();

  // Phase 5: HTMLock signatures — spills, rejects, waiters, wakeup drain.
  trace += "== phase 5: HTMLock signatures\n";
  coh::Msg tl = req(coh::MsgType::HlaReq, 0, 0);
  tl.hlaMode = TxMode::TL;
  dir.onMessage(tl);
  drain();
  coh::Msg spill = req(coh::MsgType::SigAdd, 5, 0);
  spill.sigIsWrite = true;
  spill.hasData = true;
  spill.data[0] = 999;
  dir.onMessage(spill);
  dir.onMessage(req(coh::MsgType::SigAdd, 69, 0));
  dir.onMessage(req(coh::MsgType::SigAdd, 4101, 0));
  drain();
  dir.onMessage(req(coh::MsgType::GetS, 5, 1));  // write-sig hit: reject
  drain();
  dir.onMessage(req(coh::MsgType::GetS, 5, 2));  // second waiter on line 5
  drain();
  dir.onMessage(req(coh::MsgType::GetX, 69, 3));  // read-sig hit + exclusive
  drain();
  dir.onMessage(req(coh::MsgType::GetS, 69, 1));  // read-sig hit, copies exist
  drain();
  coh::Msg tl1 = req(coh::MsgType::HlaReq, 0, 1);
  tl1.hlaMode = TxMode::TL;
  dir.onMessage(tl1);  // queued behind holder 0
  coh::Msg stl2 = req(coh::MsgType::HlaReq, 0, 2);
  stl2.hlaMode = TxMode::STL;
  dir.onMessage(stl2);  // denied while TL active
  drain();
  dir.onMessage(req(coh::MsgType::SigClear, 0, 0));  // wakeups + grant to c1
  drain();
  dir.onMessage(req(coh::MsgType::SigClear, 0, 1));
  drain();

  // Final state: snapshots (sharer masks print in ascending core order) and
  // the datapath counters.
  trace += "== final state\n";
  for (LineAddr l : kLines) {
    const auto snap = dir.snapshot(l);
    std::ostringstream line;
    line << "line " << l << " owner=" << snap.owner << " sharers=[";
    bool first = true;
    for (CoreId c = 0; c < 4; ++c) {
      if (snap.sharers.count(c) != 0) {
        if (!first) line << ",";
        line << c;
        first = false;
      }
    }
    line << "] busy=" << (snap.busy ? 1 : 0) << "\n";
    trace += line.str();
  }
  std::ostringstream tail;
  tail << "llcHits=" << dir.llcHits() << " llcMisses=" << dir.llcMisses()
       << " writebacks=" << dir.writebacks() << " sigRejects=" << dir.sigRejects()
       << " busyLines=" << dir.busyLines() << "\n";
  trace += tail.str();
  return trace;
}

/// Stats fingerprint of a few full simulations (MSHR, wakeup tables, L1
/// shadow sets, and the directory all in the loop). Cycle counts are exact:
/// any container swap that changes iteration order or timing shows up here.
inline std::string fullSimFingerprint() {
  struct Case {
    const char* system;
    const char* workload;
    unsigned threads;
  };
  const std::array<Case, 3> cases{{
      {"LockillerTM", "counter", 4},
      {"Baseline", "counter", 4},
      {"LockillerTM", "vacation+", 8},
  }};
  std::string out;
  for (const auto& c : cases) {
    cfg::RunConfig rc;
    rc.system = cfg::systemByName(c.system);
    rc.threads = c.threads;
    const auto r = cfg::runSimulation(rc, [&]() {
      if (std::string(c.workload) == "counter") return wl::makeCounter(8, 2, 128);
      return wl::makeStamp(c.workload);
    });
    std::ostringstream line;
    line << c.system << "/" << c.workload << "/t" << c.threads
         << " cycles=" << r.cycles << " commits=" << r.htmCommits() << "/"
         << r.lockCommits() << "/" << r.stlCommits() << " aborts=" << r.aborts()
         << " rejects=" << r.rejectsSent() << " wakeups=" << r.wakeupsSent()
         << " sig=" << r.sigRejects() << " llc=" << r.llcHits() << "/"
         << r.llcMisses() << " wb=" << r.writebacks()
         << " msgs=" << r.messages() << " ok=" << (r.ok() ? 1 : 0) << "\n";
    out += line.str();
  }
  return out;
}

}  // namespace lktm::test
