// Directed unit tests of the DirectoryController against scripted fake L1s:
// each protocol flow is inspected message by message (who was asked what,
// in which order), independent of the real L1 implementation.
#include <gtest/gtest.h>

#include <deque>

#include "coherence/directory.hpp"
#include "noc/ideal.hpp"
#include "sim/engine.hpp"

namespace lktm::test {
namespace {

using coh::Msg;
using coh::MsgType;

/// Records every message delivered to this "L1".
struct FakeL1 final : coh::MsgSink {
  std::deque<Msg> inbox;
  void onMessage(const Msg& m) override { inbox.push_back(m); }

  Msg expect(MsgType t) {
    EXPECT_FALSE(inbox.empty()) << "expected " << coh::toString(t);
    if (inbox.empty()) return Msg{};
    Msg m = inbox.front();
    inbox.pop_front();
    EXPECT_EQ(m.type, t) << "got " << coh::toString(m.type);
    return m;
  }
};

struct DirHarness {
  sim::SimContext ctx;
  sim::Engine& engine = ctx.engine();
  mem::MainMemory memory;
  noc::IdealNetwork net{ctx, 1};
  coh::ProtocolParams params{};
  coh::DirectoryController dir;
  std::array<FakeL1, 4> l1s;

  DirHarness() : dir(ctx, net, memory, coh::ProtocolParams{}, 32) {
    for (CoreId c = 0; c < 4; ++c) dir.connectL1(c, &l1s[static_cast<std::size_t>(c)]);
  }

  void sendToDir(Msg m) {
    dir.onMessage(m);  // direct injection: timing handled by the dir itself
  }
  void drain() { engine.queue().runUntilDrained(100000); }

  Msg req(MsgType t, LineAddr line, CoreId from, bool isTx = false) {
    Msg m;
    m.type = t;
    m.line = line;
    m.from = from;
    m.req.core = from;
    m.req.isTx = isTx;
    m.req.wantsExclusive = t == MsgType::GetX;
    return m;
  }
};

TEST(Directory, ColdGetSGrantsExclusiveAndWaitsForUnblock) {
  DirHarness h;
  h.memory.writeWord(byteOf(5), 77);
  h.sendToDir(h.req(MsgType::GetS, 5, 0));
  h.drain();
  const Msg data = h.l1s[0].expect(MsgType::DataE);
  EXPECT_EQ(data.data[0], 77u);
  EXPECT_TRUE(h.dir.snapshot(5).busy);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.drain();
  EXPECT_FALSE(h.dir.snapshot(5).busy);
  EXPECT_EQ(h.dir.snapshot(5).owner, 0);
}

TEST(Directory, SecondRequestQueuesBehindBusyLine) {
  DirHarness h;
  h.sendToDir(h.req(MsgType::GetS, 5, 0));
  h.sendToDir(h.req(MsgType::GetS, 5, 1));  // queued: line busy
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  EXPECT_TRUE(h.l1s[1].inbox.empty()) << "second request must wait";
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.drain();
  // Now the queued GetS is processed: owner 0 gets a FwdGetS.
  const Msg fwd = h.l1s[0].expect(MsgType::FwdGetS);
  EXPECT_EQ(fwd.req.core, 1);
}

TEST(Directory, FwdAckWithDataUpdatesLlcAndShares) {
  DirHarness h;
  h.sendToDir(h.req(MsgType::GetS, 5, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.sendToDir(h.req(MsgType::GetS, 5, 1));
  h.drain();
  h.l1s[0].expect(MsgType::FwdGetS);
  Msg ack;
  ack.type = MsgType::FwdAck;
  ack.line = 5;
  ack.from = 0;
  ack.keptCopy = true;
  ack.hasData = true;
  ack.data[0] = 123;
  h.sendToDir(ack);
  h.drain();
  const Msg data = h.l1s[1].expect(MsgType::DataS);
  EXPECT_EQ(data.data[0], 123u);
  EXPECT_EQ(h.dir.llcData(5)[0], 123u);
  h.sendToDir(h.req(MsgType::Unblock, 5, 1));
  h.drain();
  const auto snap = h.dir.snapshot(5);
  EXPECT_EQ(snap.owner, kNoCore);
  EXPECT_EQ(snap.sharers.size(), 2u);
}

TEST(Directory, FwdAckTxInvGrantsExclusiveFromLlc) {
  DirHarness h;
  h.memory.writeWord(byteOf(5), 9);
  h.sendToDir(h.req(MsgType::GetS, 5, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.sendToDir(h.req(MsgType::GetS, 5, 1));
  h.drain();
  h.l1s[0].expect(MsgType::FwdGetS);
  Msg nack;
  nack.type = MsgType::FwdAckTxInv;  // Fig 3: owner self-invalidated
  nack.line = 5;
  nack.from = 0;
  h.sendToDir(nack);
  h.drain();
  const Msg data = h.l1s[1].expect(MsgType::DataE);  // exclusive, per Fig 3
  EXPECT_EQ(data.data[0], 9u);
  h.sendToDir(h.req(MsgType::Unblock, 5, 1));
  h.drain();
  EXPECT_EQ(h.dir.snapshot(5).owner, 1);
}

TEST(Directory, FwdRejectRestoresStableStateAndRejectsRequester) {
  DirHarness h;
  h.sendToDir(h.req(MsgType::GetX, 5, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.sendToDir(h.req(MsgType::GetX, 5, 1, /*isTx=*/true));
  h.drain();
  h.l1s[0].expect(MsgType::FwdGetX);
  Msg rej;
  rej.type = MsgType::FwdReject;
  rej.line = 5;
  rej.from = 0;
  rej.rejectHint = AbortCause::MemConflict;
  h.sendToDir(rej);
  h.drain();
  const Msg resp = h.l1s[1].expect(MsgType::RejectResp);
  EXPECT_EQ(resp.rejectHint, AbortCause::MemConflict);
  EXPECT_EQ(h.dir.snapshot(5).owner, 0) << "owner unchanged after reject";
  EXPECT_FALSE(h.dir.snapshot(5).busy) << "no unblock needed after reject";
}

TEST(Directory, InvCollectionWithMixedAckAndReject) {
  DirHarness h;
  // Build S{0,1,2} by three readers.
  for (CoreId c = 0; c < 3; ++c) {
    h.sendToDir(h.req(MsgType::GetS, 5, c));
    h.drain();
    if (c == 0) {
      h.l1s[0].expect(MsgType::DataE);
    } else if (c == 1) {
      // Owner 0 gets a FwdGetS; it complies keeping a copy.
      h.l1s[0].expect(MsgType::FwdGetS);
      Msg ack;
      ack.type = MsgType::FwdAck;
      ack.line = 5;
      ack.from = 0;
      ack.keptCopy = true;
      h.sendToDir(ack);
      h.drain();
      h.l1s[1].expect(MsgType::DataS);
    } else {
      h.l1s[2].expect(MsgType::DataS);
    }
    h.sendToDir(h.req(MsgType::Unblock, 5, c));
    h.drain();
  }
  ASSERT_EQ(h.dir.snapshot(5).sharers.size(), 3u);

  // Core 3 wants exclusive: Invs go to 0,1,2; core 1 rejects.
  h.sendToDir(h.req(MsgType::GetX, 5, 3, /*isTx=*/true));
  h.drain();
  h.l1s[0].expect(MsgType::Inv);
  h.l1s[1].expect(MsgType::Inv);
  h.l1s[2].expect(MsgType::Inv);
  Msg a0;
  a0.type = MsgType::InvAck;
  a0.line = 5;
  a0.from = 0;
  h.sendToDir(a0);
  Msg r1;
  r1.type = MsgType::InvReject;
  r1.line = 5;
  r1.from = 1;
  r1.rejectHint = AbortCause::MemConflict;
  h.sendToDir(r1);
  Msg a2;
  a2.type = MsgType::InvAck;
  a2.line = 5;
  a2.from = 2;
  h.sendToDir(a2);
  h.drain();
  h.l1s[3].expect(MsgType::RejectResp);
  const auto snap = h.dir.snapshot(5);
  EXPECT_EQ(snap.sharers.count(1), 1u) << "rejecting sharer keeps its copy";
  EXPECT_EQ(snap.sharers.count(0), 0u) << "complying sharers are gone";
  EXPECT_EQ(snap.sharers.count(2), 0u);
  EXPECT_FALSE(snap.busy);
}

TEST(Directory, StalePutMIsAckedAndIgnored) {
  DirHarness h;
  // Owner 0, then ownership moves to 1 via a forward.
  h.sendToDir(h.req(MsgType::GetX, 5, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.sendToDir(h.req(MsgType::GetX, 5, 1));
  h.drain();
  h.l1s[0].expect(MsgType::FwdGetX);
  Msg ack;
  ack.type = MsgType::FwdAck;
  ack.line = 5;
  ack.from = 0;
  ack.hasData = true;
  ack.data[0] = 50;
  h.sendToDir(ack);
  h.drain();
  h.l1s[1].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 1));
  h.drain();
  // Now a stale PutM from core 0 arrives (e.g. it was in its WB buffer).
  Msg put;
  put.type = MsgType::PutM;
  put.line = 5;
  put.from = 0;
  put.hasData = true;
  put.data[0] = 999;  // stale data must NOT reach the LLC
  h.sendToDir(put);
  h.drain();
  h.l1s[0].expect(MsgType::PutAck);
  EXPECT_EQ(h.dir.llcData(5)[0], 50u);
  EXPECT_EQ(h.dir.snapshot(5).owner, 1);
}

TEST(Directory, TxAbortInvClearsOwnerWhenIdle) {
  DirHarness h;
  h.sendToDir(h.req(MsgType::GetX, 5, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.drain();
  Msg inv;
  inv.type = MsgType::TxAbortInv;
  inv.line = 5;
  inv.from = 0;
  h.sendToDir(inv);
  h.drain();
  EXPECT_EQ(h.dir.snapshot(5).owner, kNoCore);
}

TEST(Directory, HlaGrantDenyAndQueue) {
  DirHarness h;
  Msg tl;
  tl.type = MsgType::HlaReq;
  tl.line = 0;
  tl.from = 0;
  tl.hlaMode = TxMode::TL;
  h.sendToDir(tl);
  h.drain();
  h.l1s[0].expect(MsgType::HlaGrant);

  Msg stl = tl;
  stl.from = 1;
  stl.hlaMode = TxMode::STL;
  h.sendToDir(stl);
  h.drain();
  h.l1s[1].expect(MsgType::HlaDeny);

  Msg tl2 = tl;
  tl2.from = 2;
  h.sendToDir(tl2);
  h.drain();
  EXPECT_TRUE(h.l1s[2].inbox.empty()) << "TL queues";

  Msg clr;
  clr.type = MsgType::SigClear;
  clr.line = 0;
  clr.from = 0;
  h.sendToDir(clr);
  h.drain();
  h.l1s[2].expect(MsgType::HlaGrant);
}

TEST(Directory, SignatureRejectRecordsWaiterAndWakesOnClear) {
  DirHarness h;
  Msg tl;
  tl.type = MsgType::HlaReq;
  tl.from = 0;
  tl.hlaMode = TxMode::TL;
  h.sendToDir(tl);
  h.drain();
  h.l1s[0].expect(MsgType::HlaGrant);
  // Holder spills line 5 (write set).
  Msg sig;
  sig.type = MsgType::SigAdd;
  sig.line = 5;
  sig.from = 0;
  sig.sigIsWrite = true;
  h.sendToDir(sig);
  // Core 1 requests the spilled line -> signature reject.
  h.sendToDir(h.req(MsgType::GetS, 5, 1));
  h.drain();
  h.l1s[1].expect(MsgType::RejectResp);
  EXPECT_EQ(h.dir.sigRejects(), 1u);
  // hlend: waiter is woken.
  Msg clr;
  clr.type = MsgType::SigClear;
  clr.from = 0;
  h.sendToDir(clr);
  h.drain();
  const Msg wake = h.l1s[1].expect(MsgType::Wakeup);
  EXPECT_EQ(wake.line, 5u);
}

TEST(Directory, SigAddRemovesHolderFromSharerBookkeeping) {
  DirHarness h;
  h.sendToDir(h.req(MsgType::GetX, 5, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  h.sendToDir(h.req(MsgType::Unblock, 5, 0));
  h.drain();
  Msg sig;
  sig.type = MsgType::SigAdd;
  sig.line = 5;
  sig.from = 0;
  sig.sigIsWrite = true;
  sig.hasData = true;
  sig.data[0] = 31;
  h.sendToDir(sig);
  h.drain();
  h.l1s[0].expect(MsgType::PutAck);  // carried data: WB buffer must retire
  EXPECT_EQ(h.dir.snapshot(5).owner, kNoCore);
  EXPECT_EQ(h.dir.llcData(5)[0], 31u);
}

TEST(Directory, ColdMissPaysMemoryLatency) {
  DirHarness h;
  const Cycle t0 = h.engine.now();
  h.sendToDir(h.req(MsgType::GetS, 7, 0));
  h.drain();
  h.l1s[0].expect(MsgType::DataE);
  const Cycle cold = h.engine.now() - t0;
  h.sendToDir(h.req(MsgType::Unblock, 7, 0));
  h.drain();
  EXPECT_GE(cold, h.params.llcLatency + h.params.memLatency);

  h.dir.preloadLlc(8, 9);
  const Cycle t1 = h.engine.now();
  h.sendToDir(h.req(MsgType::GetS, 8, 1));
  h.drain();
  h.l1s[1].expect(MsgType::DataE);
  EXPECT_LT(h.engine.now() - t1, h.params.llcLatency + h.params.memLatency);
}

}  // namespace
}  // namespace lktm::test
