// Directed MESI coherence scenarios on the mini system, driven at the L1 CPU
// port (no CPUs): state transitions, data movement, directory bookkeeping,
// silent-drop recovery, and SWMR/value invariants after every scenario.
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace lktm::test {
namespace {

using mem::MesiState;

constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x200040;

TEST(Protocol, ColdLoadGrantsExclusive) {
  TestSystem sys;
  sys.memory().writeWord(kA, 42);
  EXPECT_EQ(sys.load(0, kA), 42u);
  const auto* e = sys.l1(0).cache().find(lineOf(kA));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, MesiState::E);  // MESI E optimization
  sys.drain();
  const auto snap = sys.dir().snapshot(lineOf(kA));
  EXPECT_EQ(snap.owner, 0);
  EXPECT_FALSE(snap.busy);
  sys.expectCoherent();
}

TEST(Protocol, SecondReaderDowngradesToShared) {
  TestSystem sys;
  sys.memory().writeWord(kA, 7);
  sys.load(0, kA);
  EXPECT_EQ(sys.load(1, kA), 7u);
  EXPECT_EQ(sys.l1(0).cache().find(lineOf(kA))->state, MesiState::S);
  EXPECT_EQ(sys.l1(1).cache().find(lineOf(kA))->state, MesiState::S);
  const auto snap = sys.dir().snapshot(lineOf(kA));
  EXPECT_EQ(snap.owner, kNoCore);
  EXPECT_EQ(snap.sharers.size(), 2u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, StoreGivesModified) {
  TestSystem sys;
  sys.store(0, kA, 9);
  const auto* e = sys.l1(0).cache().find(lineOf(kA));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, MesiState::M);
  EXPECT_TRUE(e->dirty);
  EXPECT_EQ(sys.load(0, kA), 9u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, DirtyDataForwardedToReader) {
  TestSystem sys;
  sys.store(0, kA, 13);
  EXPECT_EQ(sys.load(1, kA), 13u);  // via FwdGetS + writeback
  EXPECT_EQ(sys.l1(0).cache().find(lineOf(kA))->state, MesiState::S);
  EXPECT_FALSE(sys.l1(0).cache().find(lineOf(kA))->dirty);
  // The LLC must have been updated by the forward writeback.
  EXPECT_EQ(sys.dir().llcData(lineOf(kA))[wordOf(kA)], 13u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, DirtyDataForwardedToWriter) {
  TestSystem sys;
  sys.store(0, kA, 21);
  sys.store(1, kA, 22);
  EXPECT_EQ(sys.l1(0).cache().find(lineOf(kA)), nullptr);  // invalidated
  EXPECT_EQ(sys.l1(1).cache().find(lineOf(kA))->state, MesiState::M);
  EXPECT_EQ(sys.load(1, kA), 22u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, UpgradeInvalidatesSharers) {
  TestSystem sys{TestSystemOptions{.cores = 4}};
  for (CoreId c = 0; c < 4; ++c) sys.load(c, kA);
  sys.store(2, kA, 5);
  for (CoreId c = 0; c < 4; ++c) {
    if (c == 2) continue;
    EXPECT_EQ(sys.l1(c).cache().find(lineOf(kA)), nullptr) << "core " << c;
  }
  EXPECT_EQ(sys.l1(2).cache().find(lineOf(kA))->state, MesiState::M);
  EXPECT_EQ(sys.load(0, kA), 5u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, WritebackOnEviction) {
  // 8KB 4-way L1 = 32 sets: lines kA, kA+32*64, ... collide in one set.
  TestSystemOptions opt;
  opt.l1 = mem::CacheGeometry{8 * 1024, 4};
  TestSystem sys(opt);
  const Addr base = 0x100000;
  for (int i = 0; i < 5; ++i) {
    sys.store(0, base + static_cast<Addr>(i) * 32 * kLineBytes, 100 + i);
  }
  sys.drain();
  // The first line was evicted; its data must have reached the LLC.
  EXPECT_EQ(sys.l1(0).cache().find(lineOf(base)), nullptr);
  EXPECT_EQ(sys.dir().llcData(lineOf(base))[wordOf(base)], 100u);
  EXPECT_EQ(sys.l1(0).writebackBufferSize(), 0u);  // PutAck retired it
  EXPECT_EQ(sys.load(1, base), 100u);
  sys.expectCoherent();
}

TEST(Protocol, SilentCleanDropRecovery) {
  TestSystemOptions opt;
  opt.l1 = mem::CacheGeometry{8 * 1024, 4};
  TestSystem sys(opt);
  sys.memory().writeWord(kA, 55);
  sys.load(0, kA);  // E, clean
  // Evict it silently by filling the set with clean loads.
  for (int i = 1; i <= 4; ++i) {
    sys.load(0, kA + static_cast<Addr>(i) * 32 * kLineBytes);
  }
  EXPECT_EQ(sys.l1(0).cache().find(lineOf(kA)), nullptr);
  // Directory still believes core 0 owns it; both re-request paths must work.
  EXPECT_EQ(sys.load(1, kA), 55u);  // forwarded to stale owner -> FwdAckTxInv
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, StaleOwnerReRequestsItsOwnLine) {
  TestSystemOptions opt;
  opt.l1 = mem::CacheGeometry{8 * 1024, 4};
  TestSystem sys(opt);
  sys.memory().writeWord(kA, 66);
  sys.load(0, kA);
  for (int i = 1; i <= 4; ++i) {
    sys.load(0, kA + static_cast<Addr>(i) * 32 * kLineBytes);
  }
  // Re-request: directory sees owner == requester.
  EXPECT_EQ(sys.load(0, kA), 66u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, UpgradeAfterSilentSharedDrop) {
  TestSystemOptions opt;
  opt.l1 = mem::CacheGeometry{8 * 1024, 4};
  TestSystem sys(opt);
  sys.load(0, kA);
  sys.load(1, kA);  // both S
  // Core 0 silently drops its S copy.
  for (int i = 1; i <= 4; ++i) {
    sys.load(0, kA + static_cast<Addr>(i) * 32 * kLineBytes);
  }
  // Store: directory thinks core 0 is still a sharer; must send data anyway.
  sys.store(0, kA, 77);
  EXPECT_EQ(sys.l1(0).cache().find(lineOf(kA))->state, MesiState::M);
  EXPECT_EQ(sys.load(1, kA), 77u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, CasTransfersOwnership) {
  TestSystem sys;
  sys.memory().writeWord(kA, 0);
  EXPECT_EQ(sys.cas(0, kA, 0, 1), 0u);  // success
  EXPECT_EQ(sys.cas(1, kA, 0, 2), 1u);  // failure: sees 1
  EXPECT_EQ(sys.cas(1, kA, 1, 2), 1u);  // success
  EXPECT_EQ(sys.load(0, kA), 2u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, WordGranularityWithinLine) {
  TestSystem sys;
  sys.store(0, kA, 1);
  sys.store(0, kA + 8, 2);
  sys.store(0, kA + 56, 8);
  EXPECT_EQ(sys.load(1, kA), 1u);
  EXPECT_EQ(sys.load(1, kA + 8), 2u);
  EXPECT_EQ(sys.load(1, kA + 56), 8u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, ManyCoresPingPong) {
  TestSystem sys{TestSystemOptions{.cores = 8}};
  for (int round = 0; round < 4; ++round) {
    for (CoreId c = 0; c < 8; ++c) {
      const std::uint64_t v = sys.load(c, kA);
      sys.store(c, kA, v + 1);
    }
  }
  EXPECT_EQ(sys.load(0, kA), 32u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, IndependentLinesDontInterfere) {
  TestSystem sys;
  sys.store(0, kA, 1);
  sys.store(1, kB, 2);
  EXPECT_EQ(sys.load(0, kB), 2u);
  EXPECT_EQ(sys.load(1, kA), 1u);
  sys.drain();
  sys.expectCoherent();
}

TEST(Protocol, LlcPreloadAvoidsMemoryLatency) {
  TestSystem cold;
  cold.memory().writeWord(kA, 5);
  const Cycle t0 = cold.engine().now();
  cold.load(0, kA);
  const Cycle coldLat = cold.engine().now() - t0;

  TestSystem warm;
  warm.memory().writeWord(kA, 5);
  warm.dir().preloadLlc(lineOf(kA), lineOf(kA) + 1);
  const Cycle t1 = warm.engine().now();
  warm.load(0, kA);
  const Cycle warmLat = warm.engine().now() - t1;
  EXPECT_GE(coldLat, warmLat + 90);  // ~the 100-cycle memory latency
}

TEST(Protocol, LatencyRoughlyMatchesTableI) {
  TestSystem sys;
  sys.dir().preloadLlc(lineOf(kA), lineOf(kA) + 1);
  const Cycle t0 = sys.engine().now();
  sys.load(0, kA);  // miss: L1 + net + LLC + net
  const Cycle missLat = sys.engine().now() - t0;
  EXPECT_GE(missLat, 2u + 12u);  // at least L1 + LLC latency
  EXPECT_LE(missLat, 60u);       // plus bounded mesh traversal

  const Cycle t1 = sys.engine().now();
  sys.load(0, kA);  // hit
  EXPECT_EQ(sys.engine().now() - t1, 2u);  // Table I: 2-cycle L1 hit
}

TEST(Protocol, CountersTrackHitsAndMisses) {
  TestSystem sys;
  sys.load(0, kA);
  sys.load(0, kA);
  sys.load(0, kA);
  EXPECT_EQ(sys.l1(0).misses(), 1u);
  EXPECT_EQ(sys.l1(0).hits(), 2u);
}

}  // namespace
}  // namespace lktm::test
