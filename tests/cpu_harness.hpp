// Harness for running real Cpu objects (bytecode interpreter) on the mini
// test system, with a coherent post-run word reader.
#pragma once

#include <memory>
#include <vector>

#include "cpu/barrier.hpp"
#include "cpu/core.hpp"
#include "testbed.hpp"

namespace lktm::test {

class CpuHarness {
 public:
  explicit CpuHarness(unsigned cores, TestSystemOptions opt = {},
                      cpu::CpuParams cpuParams = {})
      : opt_([&] {
          opt.cores = cores;
          return opt;
        }()),
        sys_(opt_),
        barrier_(sys_.ctx(), cores),
        cpuParams_(cpuParams) {}

  void setProgram(CoreId c, cpu::Program p) {
    while (cpus_.size() <= static_cast<std::size_t>(c)) {
      cpus_.push_back(nullptr);
    }
    cpus_[static_cast<std::size_t>(c)] = std::make_unique<cpu::Cpu>(
        sys_.ctx(), c, sys_.l1(c), barrier_, std::move(p), cpuParams_);
  }

  /// Run to completion; EXPECTs all CPUs halted.
  void run(Cycle budget = 10'000'000) {
    for (auto& c : cpus_) c->start();
    sys_.engine().run(budget);
    for (auto& c : cpus_) {
      EXPECT_TRUE(c->halted()) << c->diagnostic();
    }
  }

  cpu::Cpu& cpu(CoreId c) { return *cpus_.at(static_cast<std::size_t>(c)); }
  TestSystem& sys() { return sys_; }
  cpu::BarrierUnit& barrier() { return barrier_; }

  /// Coherent read of the final memory image.
  std::uint64_t read(Addr a) {
    const LineAddr line = lineOf(a);
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      const mem::CacheEntry* e = sys_.l1(static_cast<CoreId>(i)).cache().find(line);
      if (e != nullptr && e->dirty) return e->data[wordOf(a)];
    }
    if (sys_.dir().llcHas(line)) return sys_.dir().llcData(line)[wordOf(a)];
    return sys_.memory().readWord(a);
  }

 private:
  TestSystemOptions opt_;
  TestSystem sys_;
  cpu::BarrierUnit barrier_;
  cpu::CpuParams cpuParams_;
  std::vector<std::unique_ptr<cpu::Cpu>> cpus_;
};

}  // namespace lktm::test
