// Database-traffic workload family: Zipfian sampler determinism and skew,
// generator structure, end-to-end conservation invariants across all TM
// backends, the commit-latency accounting invariant (histogram count ==
// committed transactions), host-thread-count independence, and the
// STM-scratch footprint guard.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "config/runner.hpp"
#include "config/sweep.hpp"
#include "config/systems.hpp"
#include "runtime/backends/backend.hpp"
#include "sim/rng.hpp"
#include "stats/registry.hpp"
#include "workloads/db_traffic.hpp"
#include "workloads/workload.hpp"
#include "workloads/zipfian.hpp"

namespace lktm::wl {
namespace {

// ----------------------------------------------------------------- zipfian

TEST(Zipfian, RejectsDegenerateParameters) {
  EXPECT_THROW(Zipfian(0, 0.99), std::invalid_argument);
  EXPECT_THROW(Zipfian(8, -1.0), std::invalid_argument);
}

TEST(Zipfian, SameSeedSameSequence) {
  const Zipfian z(1024, 0.99);
  sim::Rng r1(77), r2(77);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(z.sample(r1), z.sample(r2)) << i;
  }
}

// Pinned golden sequence: the sampled keys are part of the determinism
// contract (the distributed sweep merges artifacts bit-identically across
// hosts and LKTM_MAX_CORES builds, so the generator may never drift).
TEST(Zipfian, GoldenSequenceIsPinned) {
  const Zipfian z(100, 0.99);
  sim::Rng rng(31);
  std::vector<std::size_t> got;
  for (int i = 0; i < 12; ++i) got.push_back(z.sample(rng));
  std::vector<std::size_t> again;
  sim::Rng rng2(31);
  for (int i = 0; i < 12; ++i) again.push_back(z.sample(rng2));
  EXPECT_EQ(got, again);
  // Skew sanity on the same draw: with theta=0.99 over 100 keys, most draws
  // land in the hot head of the distribution.
  unsigned hot = 0;
  for (const std::size_t k : got) {
    if (k < 10) ++hot;
  }
  EXPECT_GE(hot, 6u);
}

TEST(Zipfian, ThetaControlsSkew) {
  constexpr std::size_t kKeys = 256;
  constexpr int kDraws = 4000;
  const Zipfian hot(kKeys, 0.99);
  const Zipfian flat(kKeys, 0.0);
  sim::Rng r1(5), r2(5);
  unsigned hotHead = 0, flatHead = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (hot.sample(r1) < kKeys / 16) ++hotHead;
    if (flat.sample(r2) < kKeys / 16) ++flatHead;
  }
  // theta=0 is uniform: ~1/16 of draws in the head. theta=0.99 concentrates
  // roughly half the mass there.
  EXPECT_GT(hotHead, static_cast<unsigned>(kDraws / 4));
  EXPECT_LT(flatHead, static_cast<unsigned>(kDraws / 8));
}

// ---------------------------------------------------------------- registry

TEST(DbTraffic, RegistryCoversTheFamily) {
  const auto& names = dbWorkloadNames();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& n : names) {
    EXPECT_TRUE(isDbWorkloadName(n)) << n;
    auto w = makeDbWorkload(n, 11);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), n);
  }
  EXPECT_FALSE(isDbWorkloadName("vacation+"));
  EXPECT_THROW(makeDbWorkload("ycsb-xl", 11), std::invalid_argument);
}

TEST(DbTraffic, GenerationIsDeterministic) {
  for (const char* name : {"ycsb", "tpcc", "sps-part"}) {
    mem::MainMemory m1, m2;
    auto a = makeDbWorkload(name, 42);
    auto b = makeDbWorkload(name, 42);
    a->init(m1, 4);
    b->init(m2, 4);
    tm::BackendConfig bc;
    bc.lockAddr = kFallbackLockAddr;
    auto ba = tm::makeBackend("lockiller", bc);
    auto bb = tm::makeBackend("lockiller", bc);
    for (unsigned t = 0; t < 4; ++t) {
      const auto pa = a->buildProgram(t, 4, *ba);
      const auto pb = b->buildProgram(t, 4, *bb);
      ASSERT_EQ(pa.size(), pb.size()) << name;
      for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa.code[i].op, pb.code[i].op) << name << "@" << i;
        ASSERT_EQ(pa.code[i].imm, pb.code[i].imm) << name << "@" << i;
      }
    }
  }
}

// ------------------------------------------------------------- end-to-end

cfg::RunResult runDb(const std::string& system, const std::string& workload,
                     unsigned threads) {
  cfg::RunConfig rc;
  rc.system = cfg::systemByName(system);
  rc.threads = threads;
  return cfg::runSimulation(
      rc, [&] { return makeDbWorkload(workload, 11); });
}

// Every family member must pass its conservation invariant on every backend,
// and the commit-latency histogram must account for exactly one sample per
// committed transaction, no matter which path (HTM, lock, STL, STM) commits.
TEST(DbTraffic, InvariantsHoldAcrossBackends) {
  for (const char* system :
       {"LockillerTM", "CGL", "TL2-STM", "Hybrid-TM"}) {
    for (const auto& w : dbWorkloadNames()) {
      const cfg::RunResult r = runDb(system, w, 4);
      ASSERT_TRUE(r.ok()) << system << "/" << w << ": " << r.str();
      EXPECT_GT(r.totalCommits(), 0u) << system << "/" << w;
      const stats::SnapshotEntry lat = r.commitLatency();
      EXPECT_EQ(lat.count, r.totalCommits()) << system << "/" << w;
      EXPECT_GT(stats::histogramPercentile(lat, 999), 0u) << system << "/" << w;
    }
  }
}

TEST(DbTraffic, LatencyPercentilesAreMonotone) {
  const cfg::RunResult r = runDb("LockillerTM", "ycsb", 8);
  ASSERT_TRUE(r.ok()) << r.str();
  const std::uint64_t p50 = r.commitLatencyPercentile(500);
  const std::uint64_t p90 = r.commitLatencyPercentile(900);
  const std::uint64_t p99 = r.commitLatencyPercentile(990);
  const std::uint64_t p999 = r.commitLatencyPercentile(999);
  EXPECT_GT(p50, 0u);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
}

// The acceptance knob: the Zipfian theta must visibly move the generated
// traffic — ycsb (theta 0.99) and ycsb-lo (theta 0.5) may not produce
// identical commit-latency profiles under contention.
TEST(DbTraffic, ThetaChangesTheLatencyProfile) {
  const cfg::RunResult hot = runDb("LockillerTM", "ycsb", 8);
  const cfg::RunResult lo = runDb("LockillerTM", "ycsb-lo", 8);
  ASSERT_TRUE(hot.ok()) << hot.str();
  ASSERT_TRUE(lo.ok()) << lo.str();
  const stats::SnapshotEntry a = hot.commitLatency();
  const stats::SnapshotEntry b = lo.commitLatency();
  EXPECT_TRUE(a.buckets != b.buckets || a.sum != b.sum)
      << "theta had no effect on the latency histogram";
}

// sps-part is conflict-free by construction; sps is all-conflicting. The
// shaping must show up as aborts.
TEST(DbTraffic, PartDisjointShapingRemovesConflicts) {
  const cfg::RunResult part = runDb("LockillerTM", "sps-part", 4);
  const cfg::RunResult all = runDb("LockillerTM", "sps", 4);
  ASSERT_TRUE(part.ok()) << part.str();
  ASSERT_TRUE(all.ok()) << all.str();
  EXPECT_GT(all.aborts(), 0u);
  EXPECT_LT(part.aborts(), all.aborts());
}

TEST(DbTraffic, SpsPartRejectsSliversThinnerThanTwoCells) {
  mem::MainMemory mem;
  auto w = makeSps(true, 4, 64, 33);
  w->init(mem, 4);
  tm::BackendConfig bc;
  bc.lockAddr = kFallbackLockAddr;
  auto backend = tm::makeBackend("lockiller", bc);
  EXPECT_THROW(w->buildProgram(0, 4, *backend), std::invalid_argument);
}

// ------------------------------------------------- host-thread determinism

// The sweep determinism contract extended to the db family: the same grid
// run on 1, 2 and 4 host threads must produce identical per-run snapshots
// (this is what makes the distributed table3 merge bit-identical).
TEST(DbTraffic, SweepResultsIndependentOfHostThreads) {
  const std::vector<std::string> workloads{"ycsb", "ycsb-w", "tpcc", "sps"};
  const auto systems = std::vector<cfg::SystemSpec>{
      cfg::systemByName("LockillerTM"), cfg::systemByName("TL2-STM")};
  const auto machine = cfg::MachineParams::typical();
  const auto base = cfg::sweepSystems(machine, systems, workloads, {4}, 1);
  for (const unsigned hostThreads : {2u, 4u}) {
    const auto got = cfg::sweepSystems(machine, systems, workloads, {4},
                                       hostThreads);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      ASSERT_TRUE(base[i].ok()) << base[i].str();
      EXPECT_EQ(got[i].cycles, base[i].cycles) << base[i].str();
      EXPECT_TRUE(got[i].stats == base[i].stats)
          << "hostThreads=" << hostThreads << " diverged on " << base[i].str();
    }
  }
}

// ---------------------------------------------------------- footprint guard

// A row store whose footprint reaches the software-TM metadata region: the
// runner must reject it for scratch-using backends before doing any work
// (in particular before the LLC warm-up walks the footprint).
class HugeRowStore final : public Workload {
 public:
  std::string name() const override { return "huge-rows"; }
  void init(mem::MainMemory&, unsigned) override {}
  cpu::Program buildProgram(unsigned, unsigned, tm::Backend& backend) override {
    cpu::ProgramBuilder b;
    backend.emitProgramStart(b, 0, 1);
    b.mark(TimeCat::NonTran);
    b.halt();
    return b.build();
  }
  std::vector<std::string> verify(const WordReader&, unsigned) const override {
    return {};
  }
  Addr footprintEnd() const override { return tm::kStmScratchBase + kLineBytes; }
};

TEST(DbTraffic, StmScratchFootprintGuardFiresBeforeWarmup) {
  cfg::RunConfig rc;
  rc.system = cfg::systemByName("TL2-STM");
  rc.threads = 1;
  try {
    cfg::runSimulation(rc, [] { return std::make_unique<HugeRowStore>(); });
    FAIL() << "expected the footprint guard to reject the workload";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("metadata region"), std::string::npos)
        << e.what();
  }
  // The elision backends keep no scratch metadata: the same store runs.
  cfg::RunConfig ok;
  ok.system = cfg::systemByName("LockillerTM");
  ok.threads = 1;
  ok.warmLlc = false;  // don't walk a >1 GiB footprint into the LLC
  const cfg::RunResult r =
      cfg::runSimulation(ok, [] { return std::make_unique<HugeRowStore>(); });
  EXPECT_TRUE(r.ok()) << r.str();
}

}  // namespace
}  // namespace lktm::wl
