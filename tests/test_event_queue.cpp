#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace lktm::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(2); });
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(3); });
  while (q.runOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, SameCycleIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.schedule(7, [&order, i] { order.push_back(i); });
  }
  while (q.runOne()) {
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ZeroDelayRunsWithinCurrentCycle) {
  EventQueue q;
  bool ran = false;
  q.schedule(3, [&] {
    q.schedule(0, [&] { ran = true; });
  });
  while (q.runOne()) {
  }
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 3u);
}

TEST(EventQueue, NestedSchedulingAdvancesTime) {
  EventQueue q;
  Cycle sawAt = 0;
  q.schedule(1, [&] {
    q.schedule(4, [&] { sawAt = q.now(); });
  });
  while (q.runOne()) {
  }
  EXPECT_EQ(sawAt, 5u);
}

TEST(EventQueue, ScheduleAtAbsolute) {
  EventQueue q;
  Cycle at = 0;
  q.scheduleAt(42, [&] { at = q.now(); });
  while (q.runOne()) {
  }
  EXPECT_EQ(at, 42u);
}

TEST(EventQueue, ScheduleAtPastThrowsWithBothCycles) {
  EventQueue q;
  q.schedule(100, [] {});
  while (q.runOne()) {
  }
  ASSERT_EQ(q.now(), 100u);
  try {
    q.scheduleAt(40, [] {});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    // The diagnostic must name both the stale target cycle and the current
    // cycle so the offending component is identifiable from the message.
    const std::string what = e.what();
    EXPECT_NE(what.find("40"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
  }
}

TEST(EventQueue, ScheduleAtNowIsAllowed) {
  EventQueue q;
  q.schedule(7, [] {});
  q.runOne();
  bool ran = false;
  q.scheduleAt(7, [&] { ran = true; });
  q.runOne();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueue, BeyondHorizonDelaysStillOrdered) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(EventQueue::kHorizon * 3, [&] { order.push_back(3); });
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(EventQueue::kHorizon + 10, [&] { order.push_back(2); });
  while (q.runOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), EventQueue::kHorizon * 3);
}

TEST(EventQueue, OverflowMigrationKeepsSameCycleFifo) {
  EventQueue q;
  std::vector<int> order;
  const Cycle target = EventQueue::kHorizon + 50;
  // Scheduled while `target` is beyond the horizon: goes to the overflow heap.
  q.scheduleAt(target, [&] { order.push_back(1); });
  // An intermediate event brings `target` inside the horizon, then appends a
  // same-cycle event directly to the ring. Seq order must still win.
  q.schedule(100, [&, target] {
    q.scheduleAt(target, [&] { order.push_back(2); });
  });
  while (q.runOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ResetKeepsSlabsDropsEvents) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) q.schedule(static_cast<Cycle>(i), [] {});
  const std::size_t slabs = q.slabsAllocated();
  EXPECT_GT(slabs, 0u);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0u);
  for (int i = 0; i < 1000; ++i) q.schedule(static_cast<Cycle>(i), [] {});
  EXPECT_EQ(q.slabsAllocated(), slabs);  // reuse, no new slabs
  while (q.runOne()) {
  }
}

TEST(EventQueue, RunUntilDrainedThrowsOnBudget) {
  EventQueue q;
  // Self-perpetuating event chain: must hit the budget.
  std::function<void()> tick = [&] { q.schedule(1, tick); };
  q.schedule(1, tick);
  EXPECT_THROW(q.runUntilDrained(1000), SimulationHang);
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.runOne();
  EXPECT_EQ(q.pending(), 1u);
}

namespace {

/// Always picks the same index (clamped to the ready count).
class FixedOracle final : public ScheduleOracle {
 public:
  explicit FixedOracle(std::size_t idx, bool fromEnd = false)
      : idx_(idx), fromEnd_(fromEnd) {}
  std::size_t pick(Cycle, std::size_t nReady) override {
    ++picks;
    if (fromEnd_) return nReady - 1 - (idx_ < nReady ? idx_ : nReady - 1);
    return idx_ < nReady ? idx_ : nReady - 1;
  }
  unsigned picks = 0;

 private:
  std::size_t idx_;
  bool fromEnd_;
};

}  // namespace

TEST(EventQueue, OracleIndexZeroMatchesDefaultOrder) {
  // Same schedule twice: default order vs a pick-0 oracle. The model
  // checker's soundness rests on choice 0 being bit-exact with the classic
  // (cycle, seq) order, so any divergence here is a real bug.
  auto build = [](EventQueue& q, std::vector<int>& order) {
    for (int i = 0; i < 4; ++i) {
      q.schedule(5, [&order, i] { order.push_back(100 + i); });
      q.schedule(9, [&order, i] { order.push_back(200 + i); });
    }
    q.schedule(7, [&order, &q] {
      order.push_back(300);
      q.schedule(0, [&order] { order.push_back(301); });
      q.schedule(2, [&order] { order.push_back(302); });
    });
  };
  std::vector<int> defaultOrder;
  {
    EventQueue q;
    build(q, defaultOrder);
    while (q.runOne()) {
    }
  }
  std::vector<int> oracleOrder;
  {
    EventQueue q;
    FixedOracle pickZero(0);
    q.setOracle(&pickZero);
    build(q, oracleOrder);
    while (q.runOne()) {
    }
    EXPECT_GT(pickZero.picks, 0u);
  }
  EXPECT_EQ(oracleOrder, defaultOrder);
}

TEST(EventQueue, OraclePermutesWithinCycleOnly) {
  // A pick-last oracle reverses each same-cycle group but can never move an
  // event across cycle boundaries.
  EventQueue q;
  FixedOracle pickLast(0, /*fromEnd=*/true);
  q.setOracle(&pickLast);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) q.schedule(5, [&order, i] { order.push_back(i); });
  for (int i = 0; i < 2; ++i) q.schedule(8, [&order, i] { order.push_back(10 + i); });
  while (q.runOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0, 11, 10}));
}

TEST(EventQueue, OracleConsultedOnlyAtRealChoicePoints) {
  // Singleton buckets are not branches: the oracle must not be consulted
  // when only one event is ready, or the DFS trail would fill with
  // arity-1 entries.
  EventQueue q;
  FixedOracle pickZero(0);
  q.setOracle(&pickZero);
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.schedule(2, [] {});
  while (q.runOne()) {
  }
  EXPECT_EQ(pickZero.picks, 1u);
}

TEST(EventQueue, OracleOutOfRangePickThrows) {
  class BadOracle final : public ScheduleOracle {
   public:
    std::size_t pick(Cycle, std::size_t nReady) override { return nReady; }
  };
  EventQueue q;
  BadOracle bad;
  q.setOracle(&bad);
  q.schedule(3, [] {});
  q.schedule(3, [] {});
  EXPECT_THROW(q.runOne(), std::logic_error);
}

TEST(EventQueue, DelayWrappingPastNowThrows) {
  // A u64-wrapping delay would otherwise alias into the ring's horizon
  // window and fire in the past.
  EventQueue q;
  q.schedule(5, [] {});
  while (q.runOne()) {
  }
  ASSERT_EQ(q.now(), 5u);
  EXPECT_THROW(q.schedule(UINT64_MAX, [] {}), std::logic_error);
}

TEST(Engine, WatchdogFiresWithoutProgress) {
  Engine e(/*watchdogWindow=*/100);
  std::function<void()> tick = [&] { e.schedule(10, tick); };
  e.schedule(1, tick);
  EXPECT_THROW(e.run(), SimulationHang);
}

TEST(Engine, ProgressKeepsWatchdogQuiet) {
  Engine e(/*watchdogWindow=*/100);
  int steps = 0;
  std::function<void()> tick = [&] {
    e.noteProgress();
    if (++steps < 50) e.schedule(90, tick);
  };
  e.schedule(1, tick);
  EXPECT_NO_THROW(e.run());
  EXPECT_EQ(steps, 50);
}

TEST(Engine, DiagnosticsAppearInHangMessage) {
  Engine e(/*watchdogWindow=*/50);
  e.addDiagnostic([] { return std::string("component-state-xyz"); });
  std::function<void()> tick = [&] { e.schedule(10, tick); };
  e.schedule(1, tick);
  try {
    e.run();
    FAIL() << "expected hang";
  } catch (const SimulationHang& ex) {
    EXPECT_NE(std::string(ex.what()).find("component-state-xyz"), std::string::npos);
  }
}

TEST(Engine, CycleBudgetEnforced) {
  Engine e(/*watchdogWindow=*/1'000'000);
  std::function<void()> tick = [&] {
    e.noteProgress();
    e.schedule(10, tick);
  };
  e.schedule(1, tick);
  EXPECT_THROW(e.run(/*maxCycles=*/500), SimulationHang);
}

}  // namespace
}  // namespace lktm::sim
