// Instruction-semantics and transactional-control tests for the bytecode CPU,
// run on the real memory hierarchy.
#include <gtest/gtest.h>

#include "cpu_harness.hpp"
#include "cpu/program.hpp"

namespace lktm::test {
namespace {

using cpu::Op;
using cpu::ProgramBuilder;

constexpr Addr kOut = 0x20000;  // result mailbox

// -------------------------------------------------------------------- ALU

struct AluCase {
  const char* name;
  Op op;
  std::uint64_t a, b;
  std::uint64_t expect;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, ComputesAndStores) {
  const AluCase& tc = GetParam();
  ProgramBuilder b;
  b.li(1, static_cast<std::int64_t>(tc.a));
  b.li(2, static_cast<std::int64_t>(tc.b));
  b.emit({tc.op, 3, 1, 2, 0});
  b.li(4, kOut);
  b.store(4, 3);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), tc.expect) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{"add", Op::Add, 5, 7, 12},
        AluCase{"add_wraps", Op::Add, ~0ull, 1, 0},
        AluCase{"sub", Op::Sub, 10, 4, 6},
        AluCase{"sub_underflow", Op::Sub, 3, 5, ~0ull - 1},
        AluCase{"mul", Op::Mul, 6, 7, 42},
        AluCase{"and", Op::AndB, 0b1100, 0b1010, 0b1000},
        AluCase{"or", Op::OrB, 0b1100, 0b1010, 0b1110},
        AluCase{"xor", Op::XorB, 0b1100, 0b1010, 0b0110},
        AluCase{"shl", Op::Shl, 1, 12, 4096},
        AluCase{"shl_mask", Op::Shl, 1, 64, 1},  // shift amount & 63
        AluCase{"shr", Op::Shr, 4096, 12, 1},
        AluCase{"rem", Op::Rem, 17, 5, 2}),
    [](const auto& info) { return info.param.name; });

TEST(CpuBasics, LiMovAddi) {
  ProgramBuilder b;
  b.li(1, 100);
  b.mov(2, 1);
  b.addi(2, 2, -58);
  b.li(4, kOut);
  b.store(4, 2);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 42u);
}

TEST(CpuBasics, RegisterZeroIsHardwired) {
  ProgramBuilder b;
  b.li(0, 77);  // write to r0 is discarded
  b.li(4, kOut);
  b.store(4, 0);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 0u);
}

TEST(CpuBasics, BranchLoopSumsOneToTen) {
  ProgramBuilder b;
  b.li(1, 0);   // i
  b.li(2, 0);   // sum
  b.li(3, 10);  // bound
  const auto loop = b.here();
  b.addi(1, 1, 1);
  b.add(2, 2, 1);
  const auto back = b.blt(1, 3);
  b.patchTarget(back, loop);
  b.li(4, kOut);
  b.store(4, 2);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 55u);
}

TEST(CpuBasics, LoadStoreRoundTrip) {
  ProgramBuilder b;
  b.li(1, 0x30000);
  b.li(2, 1234);
  b.store(1, 2, 8);
  b.load(3, 1, 8);
  b.li(4, kOut);
  b.store(4, 3);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 1234u);
  EXPECT_EQ(h.read(0x30008), 1234u);
}

TEST(CpuBasics, LoadSeesInitializedMemory) {
  CpuHarness h(1);
  h.sys().memory().writeWord(0x40000, 4242);
  ProgramBuilder b;
  b.li(1, 0x40000);
  b.load(2, 1);
  b.li(4, kOut);
  b.store(4, 2);
  b.barrier();
  b.halt();
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 4242u);
}

TEST(CpuBasics, CasSuccessAndFailure) {
  CpuHarness h(1);
  h.sys().memory().writeWord(0x50000, 7);
  ProgramBuilder b;
  b.li(1, 0x50000);
  // CAS expecting 7, desired 9 -> succeeds, old value 7.
  b.li(2, 7);
  b.li(3, 9);
  b.cas(3, 1, 2);
  b.li(4, kOut);
  b.store(4, 3);  // old value (7)
  // CAS expecting 7 again -> fails (now 9), old value 9, memory unchanged.
  b.li(2, 7);
  b.li(3, 11);
  b.cas(3, 1, 2);
  b.li(4, kOut + 8);
  b.store(4, 3);
  b.barrier();
  b.halt();
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 7u);
  EXPECT_EQ(h.read(kOut + 8), 9u);
  EXPECT_EQ(h.read(0x50000), 9u);
}

TEST(CpuBasics, ComputeCostsCycles) {
  ProgramBuilder a, b;
  a.compute(1000);
  a.barrier();
  a.halt();
  b.barrier();
  b.halt();
  CpuHarness h1(1);
  h1.setProgram(0, a.build());
  h1.run();
  CpuHarness h2(1);
  h2.setProgram(0, b.build());
  h2.run();
  EXPECT_GE(h1.cpu(0).haltedAt(), h2.cpu(0).haltedAt() + 999);
}

TEST(CpuBasics, DelayRegUsesRegisterValue) {
  ProgramBuilder b;
  b.li(1, 500);
  b.delayReg(1);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_GE(h.cpu(0).haltedAt(), 500u);
  EXPECT_LE(h.cpu(0).haltedAt(), 600u);
}

TEST(CpuBasics, InstsRetiredCounts) {
  ProgramBuilder b;
  b.li(1, 1);
  b.li(2, 2);
  b.add(3, 1, 2);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.cpu(0).instsRetired(), 4u);  // halt does not retire
}

// ------------------------------------------------------------ HTM control

TEST(CpuTx, CommitMakesStoresVisible) {
  ProgramBuilder b;
  b.xbegin(10);
  b.li(1, kOut);
  b.li(2, 5);
  b.store(1, 2);
  b.xend();
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 5u);
  EXPECT_EQ(h.cpu(0).txCounters().htmCommits, 1u);
  EXPECT_EQ(h.cpu(0).txCounters().aborts, 0u);
}

TEST(CpuTx, ExplicitAbortRollsBackAndDeliversStatus) {
  // xbegin; store 5; xabort. On resume status != started -> skip the abort
  // path and store the status code instead.
  ProgramBuilder b;
  b.li(5, 0);  // attempt counter
  b.xbegin(10);
  b.li(1, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto resumed = b.bne(10, 1);
  b.li(1, kOut);
  b.li(2, 5);
  b.store(1, 2);
  b.xabort(0x7);  // Explicit
  const auto after = b.here();
  b.patchTarget(resumed, after);
  b.li(1, kOut + 8);
  b.store(1, 10);  // status register
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 0u) << "speculative store must not be visible";
  EXPECT_EQ(h.read(kOut + 8), cpu::statusOf(AbortCause::Explicit));
  EXPECT_EQ(h.cpu(0).txCounters().aborts, 1u);
  EXPECT_EQ(h.cpu(0).txCounters().abortCount(AbortCause::Explicit), 1u);
}

TEST(CpuTx, AbortRestoresRegisters) {
  ProgramBuilder b;
  b.li(3, 111);  // live-in
  b.xbegin(10);
  b.li(1, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto resumed = b.bne(10, 1);
  b.li(3, 999);  // clobber inside the tx
  b.xabort(0x7);
  const auto after = b.here();
  b.patchTarget(resumed, after);
  b.li(1, kOut);
  b.store(1, 3);  // must be the pre-tx value
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 111u);
}

TEST(CpuTx, NestedTransactionsFlatten) {
  ProgramBuilder b;
  b.xbegin(10);
  b.xbegin(11);
  b.ttest(12);  // depth 2
  b.li(1, kOut);
  b.store(1, 12);
  b.xend();
  b.ttest(12);  // depth 1
  b.li(1, kOut + 8);
  b.store(1, 12);
  b.xend();
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 2u);
  EXPECT_EQ(h.read(kOut + 8), 1u);
  EXPECT_EQ(h.cpu(0).txCounters().htmCommits, 1u);  // one flat commit
}

TEST(CpuTx, SyscallAbortsHtmWithFault) {
  ProgramBuilder b;
  b.xbegin(10);
  b.li(1, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto resumed = b.bne(10, 1);
  b.syscall();
  b.xend();  // unreachable
  const auto after = b.here();
  b.patchTarget(resumed, after);
  b.li(1, kOut);
  b.store(1, 10);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), cpu::statusOf(AbortCause::Fault));
  EXPECT_EQ(h.cpu(0).txCounters().abortCount(AbortCause::Fault), 1u);
}

TEST(CpuTx, SyscallOutsideTxJustCosts) {
  ProgramBuilder b;
  b.syscall();
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_GE(h.cpu(0).haltedAt(), 100u);
}

TEST(CpuTx, TtestOutsideTxIsZero) {
  ProgramBuilder b;
  b.ttest(2);
  b.li(1, kOut);
  b.addi(2, 2, 1);  // store depth+1 to distinguish from untouched memory
  b.store(1, 2);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  EXPECT_EQ(h.read(kOut), 1u);
}

// --------------------------------------------------------------- barriers

TEST(CpuBarrier, SynchronizesAllThreads) {
  // Thread 0 computes long, thread 1 waits at the barrier for it.
  ProgramBuilder a;
  a.compute(2000);
  a.barrier();
  a.halt();
  ProgramBuilder b;
  b.barrier();
  b.halt();
  CpuHarness h(2);
  h.setProgram(0, a.build());
  h.setProgram(1, b.build());
  h.run();
  EXPECT_GE(h.cpu(1).haltedAt(), 2000u);
  EXPECT_EQ(h.barrier().episodes(), 1u);
}

TEST(CpuBarrier, MultiplePhases) {
  ProgramBuilder a;
  for (int i = 0; i < 3; ++i) {
    a.compute(50);
    a.barrier();
  }
  a.halt();
  ProgramBuilder b;
  for (int i = 0; i < 3; ++i) b.barrier();
  b.halt();
  CpuHarness h(2);
  h.setProgram(0, a.build());
  h.setProgram(1, b.build());
  h.run();
  EXPECT_EQ(h.barrier().episodes(), 3u);
}

// ------------------------------------------------------------- breakdown

TEST(CpuStats, BreakdownCoversWholeRun) {
  ProgramBuilder b;
  b.mark(TimeCat::NonTran);
  b.compute(100);
  b.xbegin(10);
  b.li(1, kOut);
  b.li(2, 1);
  b.store(1, 2);
  b.xend();
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  auto& bd = h.cpu(0).breakdown();
  EXPECT_EQ(bd.total(), h.cpu(0).haltedAt());
  EXPECT_GT(bd.get(TimeCat::Htm), 0u);
  EXPECT_GT(bd.get(TimeCat::NonTran), 100u);
  EXPECT_EQ(bd.get(TimeCat::Aborted), 0u);
}

TEST(CpuStats, AbortedAttemptCountedAsAbortedPlusRollback) {
  ProgramBuilder b;
  b.xbegin(10);
  b.li(1, static_cast<std::int64_t>(cpu::kTxStarted));
  const auto resumed = b.bne(10, 1);
  b.compute(300);
  b.xabort(0x7);
  const auto after = b.here();
  b.patchTarget(resumed, after);
  b.barrier();
  b.halt();
  CpuHarness h(1);
  h.setProgram(0, b.build());
  h.run();
  auto& bd = h.cpu(0).breakdown();
  EXPECT_GE(bd.get(TimeCat::Aborted), 300u);
  EXPECT_GT(bd.get(TimeCat::Rollback), 0u);
  EXPECT_EQ(bd.get(TimeCat::Htm), 0u);
}

}  // namespace
}  // namespace lktm::test
