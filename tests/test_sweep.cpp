// The sweep path end to end: worker-pool exception capture, per-job
// determinism across host-thread counts, the manifest orchestrator
// (checkpoint/resume, retry classification, budgets) and the bit-identical
// merged-artifact guarantee an interrupted sweep must keep.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "config/artifact.hpp"
#include "config/orchestrator.hpp"
#include "config/sweep.hpp"
#include "stats/json.hpp"

namespace lktm::test {
namespace {

namespace fs = std::filesystem;
using namespace lktm::cfg;

std::string tempDir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("lktm_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The small real grid the orchestrator tests run: micro workloads so every
/// job finishes in milliseconds.
SweepManifest testManifest(const std::string& artifactDir) {
  return makeManifest(artifactDir, "typical", {"Baseline", "LockillerTM"},
                      {"counter", "bank"}, {2}, kDefaultSweepSeed);
}

// ---------------------------------------------------------------- runSweep

TEST(Sweep, NonStdExceptionIsCapturedAsFailure) {
  // A throw that is not derived from std::exception used to escape the
  // worker thread and std::terminate the whole process.
  std::vector<SweepJob> jobs;
  jobs.push_back({.label = "boom",
                  .system = "S",
                  .workload = "w",
                  .threads = 2,
                  .run = [](sim::SimContext&) -> RunResult { throw 42; }});
  const auto results = runSweep(std::move(jobs), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::Failed);
  EXPECT_NE(results[0].diagnostic.find("non-standard exception"), std::string::npos);
  EXPECT_FALSE(results[0].hang());
}

TEST(Sweep, JobSeedTravelsIntoFailedResults) {
  std::vector<SweepJob> jobs;
  jobs.push_back({.label = "boom",
                  .system = "S",
                  .workload = "w",
                  .threads = 2,
                  .seed = 0x9e3779b97f4a7c15ull,
                  .run = [](sim::SimContext&) -> RunResult {
                    throw std::runtime_error("x");
                  }});
  const auto results = runSweep(std::move(jobs), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].seed, 0x9e3779b97f4a7c15ull);
}

TEST(Sweep, JobRunSeedDependsOnEveryCoordinate) {
  const std::uint64_t base = jobRunSeed(11, "A", "w", 2);
  EXPECT_EQ(jobRunSeed(11, "A", "w", 2), base);  // deterministic
  EXPECT_NE(jobRunSeed(12, "A", "w", 2), base);
  EXPECT_NE(jobRunSeed(11, "B", "w", 2), base);
  EXPECT_NE(jobRunSeed(11, "A", "x", 2), base);
  EXPECT_NE(jobRunSeed(11, "A", "w", 4), base);
  // Concatenation ambiguity must not collide.
  EXPECT_NE(jobRunSeed(11, "ab", "c", 2), jobRunSeed(11, "a", "bc", 2));
}

TEST(Sweep, ResultsIndependentOfHostThreads) {
  // The determinism contract: per-job results depend only on the job spec,
  // never on hostThreads or on what a reused worker context ran before.
  std::vector<RunResult> reference;
  for (const unsigned hostThreads : {1u, 2u, 4u}) {
    SweepManifest m = testManifest("");
    OrchestratorOptions opts;
    opts.hostThreads = hostThreads;
    std::vector<RunResult> results;
    runManifest(m, "", opts, {}, &results);
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.str();
    }
    if (reference.empty()) {
      reference = std::move(results);
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[i].cycles, reference[i].cycles)
          << "hostThreads=" << hostThreads << " job " << i;
      EXPECT_EQ(results[i].seed, reference[i].seed);
      EXPECT_TRUE(results[i].stats == reference[i].stats)
          << "snapshot diverged at hostThreads=" << hostThreads << " job " << i;
    }
  }
}

// ---------------------------------------------------------------- manifest

TEST(Orchestrator, ManifestRoundTripPreservesU64Seeds) {
  SweepManifest m;
  m.artifactDir = "runs";
  JobRecord j;
  // Above 2^53: a double-typed JSON layer would silently round this.
  j.spec = JobSpec{"LockillerTM", "genome", "typical", 32, 0x9e3779b97f4a7c15ull};
  j.state = JobState::Timeout;
  j.attempts = 3;
  j.diagnostic = "wall-clock budget exceeded";
  j.cycles = 0xfedcba9876543210ull;
  m.jobs.push_back(j);

  const SweepManifest back = SweepManifest::fromJson(m.toJson());
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.artifactDir, "runs");
  EXPECT_TRUE(back.jobs[0].spec == j.spec);
  EXPECT_EQ(back.jobs[0].spec.seed, 0x9e3779b97f4a7c15ull);
  EXPECT_EQ(back.jobs[0].cycles, 0xfedcba9876543210ull);
  EXPECT_EQ(back.jobs[0].state, JobState::Timeout);
  EXPECT_EQ(back.jobs[0].attempts, 3u);
  EXPECT_EQ(back.jobs[0].diagnostic, "wall-clock budget exceeded");

  // And byte-stable: re-serializing the parsed manifest reproduces itself.
  EXPECT_EQ(back.toJson(), m.toJson());
}

TEST(Orchestrator, ManifestSaveIsAtomicAndLoadable) {
  const std::string dir = tempDir("manifest_save");
  const std::string path = dir + "/sweep.json";
  SweepManifest m = testManifest(dir + "/runs");
  ASSERT_TRUE(m.save(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // tmp renamed away
  const SweepManifest back = SweepManifest::load(path);
  ASSERT_EQ(back.jobs.size(), m.jobs.size());
  EXPECT_EQ(back.artifactDir, m.artifactDir);
  EXPECT_TRUE(back.jobs[2].spec == m.jobs[2].spec);
}

TEST(Orchestrator, DuplicateJobIdsRejected) {
  SweepManifest m;
  m.jobs.resize(2);
  m.jobs[0].spec = JobSpec{"A", "w", "typical", 2, 11};
  m.jobs[1].spec = JobSpec{"A", "w", "typical", 2, 11};
  EXPECT_THROW((void)SweepManifest::fromJson(m.toJson()), std::runtime_error);
}

// ------------------------------------------------------------- orchestrator

TEST(Orchestrator, ResumeSkipsCompletedJobs) {
  const std::string dir = tempDir("resume_skip");
  const std::string path = dir + "/sweep.json";
  SweepManifest m = testManifest(dir + "/runs");

  std::atomic<unsigned> invocations{0};
  auto countingRunner = [&](const JobSpec& spec, const OrchestratorOptions& o,
                            sim::SimContext& ctx) {
    ++invocations;
    return runSpec(spec, o, ctx);
  };

  OrchestratorOptions opts;
  opts.hostThreads = 1;
  const OrchestratorReport first = runManifest(m, path, opts, countingRunner);
  EXPECT_EQ(first.ran, 4u);
  EXPECT_EQ(first.ok, 4u);
  EXPECT_EQ(invocations.load(), 4u);
  EXPECT_TRUE(m.complete());
  EXPECT_TRUE(m.allOk());

  // Reload from disk (what a fresh process would see) and run again: nothing
  // executes.
  SweepManifest resumed = SweepManifest::load(path);
  const OrchestratorReport second = runManifest(resumed, path, opts, countingRunner);
  EXPECT_EQ(second.ran, 0u);
  EXPECT_EQ(second.skipped, 4u);
  EXPECT_EQ(second.ok, 4u);
  EXPECT_EQ(invocations.load(), 4u);
}

TEST(Orchestrator, ResumedResultsIncludeSkippedJobs) {
  const std::string dir = tempDir("resume_results");
  const std::string path = dir + "/sweep.json";
  SweepManifest m = testManifest(dir + "/runs");
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  std::vector<RunResult> full;
  runManifest(m, path, opts, {}, &full);
  ASSERT_EQ(full.size(), 4u);

  SweepManifest resumed = SweepManifest::load(path);
  std::vector<RunResult> reloaded;
  runManifest(resumed, path, opts, {}, &reloaded);
  ASSERT_EQ(reloaded.size(), 4u);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_TRUE(reloaded[i].ok()) << reloaded[i].str();
    EXPECT_EQ(reloaded[i].cycles, full[i].cycles);
    EXPECT_EQ(reloaded[i].seed, full[i].seed);
    EXPECT_TRUE(reloaded[i].stats == full[i].stats)
        << "artifact round-trip changed job " << i;
  }
}

TEST(Orchestrator, KillAndResumeMergesBitIdentical) {
  // Uninterrupted sweep on 2 host threads...
  const std::string dirA = tempDir("merge_a");
  SweepManifest a = testManifest(dirA + "/runs");
  OrchestratorOptions optsA;
  optsA.hostThreads = 2;
  runManifest(a, dirA + "/sweep.json", optsA);
  ASSERT_TRUE(a.allOk());
  ASSERT_TRUE(writeMergedArtifact(a, dirA + "/merged.json"));

  // ...vs the same sweep interrupted after 2 jobs, then resumed from disk on
  // 1 host thread.
  const std::string dirB = tempDir("merge_b");
  const std::string pathB = dirB + "/sweep.json";
  SweepManifest b = testManifest(dirB + "/runs");
  OrchestratorOptions interrupted;
  interrupted.hostThreads = 1;
  interrupted.maxJobs = 2;
  const OrchestratorReport rep = runManifest(b, pathB, interrupted);
  EXPECT_EQ(rep.ran, 2u);
  EXPECT_FALSE(b.complete());
  EXPECT_EQ(b.countIn(JobState::Pending), 2u);

  SweepManifest resumed = SweepManifest::load(pathB);
  OrchestratorOptions rest;
  rest.hostThreads = 1;
  const OrchestratorReport rep2 = runManifest(resumed, pathB, rest);
  EXPECT_EQ(rep2.ran, 2u);
  EXPECT_EQ(rep2.skipped, 2u);
  ASSERT_TRUE(resumed.allOk());
  ASSERT_TRUE(writeMergedArtifact(resumed, dirB + "/merged.json"));

  EXPECT_EQ(slurp(dirA + "/merged.json"), slurp(dirB + "/merged.json"))
      << "interrupted+resumed merge must be bit-identical to uninterrupted";
}

TEST(Orchestrator, StaleRunningJobsRestartOnResume) {
  const std::string dir = tempDir("stale_running");
  SweepManifest m = testManifest(dir + "/runs");
  m.jobs[1].state = JobState::Running;  // marker left by a killed process
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  const OrchestratorReport rep = runManifest(m, dir + "/sweep.json", opts);
  EXPECT_EQ(rep.ran, 4u);
  EXPECT_TRUE(m.allOk());
}

TEST(Orchestrator, OkJobWithMissingArtifactReruns) {
  const std::string dir = tempDir("lost_artifact");
  const std::string path = dir + "/sweep.json";
  SweepManifest m = testManifest(dir + "/runs");
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  runManifest(m, path, opts);
  ASSERT_TRUE(m.allOk());
  fs::remove(m.jobs[0].artifact);  // lose one artifact

  SweepManifest resumed = SweepManifest::load(path);
  const OrchestratorReport rep = runManifest(resumed, path, opts);
  EXPECT_EQ(rep.ran, 1u);
  EXPECT_EQ(rep.skipped, 3u);
  EXPECT_TRUE(resumed.allOk());
  EXPECT_TRUE(fs::exists(resumed.jobs[0].artifact));
}

// ----------------------------------------------------- failure classification

TEST(Orchestrator, TransientFailureRetriesUpToMaxAttempts) {
  SweepManifest m;
  m.jobs.resize(1);
  m.jobs[0].spec = JobSpec{"A", "w", "typical", 2, 11};
  std::atomic<unsigned> calls{0};
  auto alwaysTransient = [&](const JobSpec&, const OrchestratorOptions&,
                             sim::SimContext&) -> RunResult {
    ++calls;
    throw TransientJobError("injected flake");
  };
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  opts.maxAttempts = 3;
  const OrchestratorReport rep = runManifest(m, "", opts, alwaysTransient);
  EXPECT_EQ(calls.load(), 3u);
  EXPECT_EQ(m.jobs[0].attempts, 3u);
  EXPECT_EQ(m.jobs[0].state, JobState::Failed);
  EXPECT_EQ(rep.retried, 2u);
  EXPECT_EQ(rep.failed, 1u);
}

TEST(Orchestrator, TransientFailureSucceedsOnRetry) {
  SweepManifest m;
  m.jobs.resize(1);
  m.jobs[0].spec = JobSpec{"Baseline", "counter", "typical", 2, 11};
  std::atomic<unsigned> calls{0};
  auto flaky = [&](const JobSpec& spec, const OrchestratorOptions& o,
                   sim::SimContext& ctx) -> RunResult {
    if (++calls == 1) throw TransientJobError("first attempt flakes");
    return runSpec(spec, o, ctx);
  };
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  opts.maxAttempts = 2;
  std::vector<RunResult> results;
  const OrchestratorReport rep = runManifest(m, "", opts, flaky, &results);
  EXPECT_EQ(calls.load(), 2u);
  EXPECT_EQ(m.jobs[0].state, JobState::Ok);
  EXPECT_EQ(m.jobs[0].attempts, 2u);
  EXPECT_EQ(rep.retried, 1u);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok()) << results[0].str();
}

TEST(Orchestrator, PermanentFailureIsNotRetried) {
  SweepManifest m;
  m.jobs.resize(1);
  m.jobs[0].spec = JobSpec{"A", "w", "typical", 2, 11};
  std::atomic<unsigned> calls{0};
  auto crash = [&](const JobSpec&, const OrchestratorOptions&,
                   sim::SimContext&) -> RunResult {
    ++calls;
    throw std::runtime_error("deterministic bug");
  };
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  opts.maxAttempts = 5;
  runManifest(m, "", opts, crash);
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(m.jobs[0].state, JobState::Failed);
  EXPECT_NE(m.jobs[0].diagnostic.find("deterministic bug"), std::string::npos);
}

TEST(Orchestrator, WallClockTimeoutClassifiesTransient) {
  RunResult r;
  r.status = RunStatus::Timeout;
  r.diagnostic = "wall-clock budget exceeded (simulated cycle 1234)";
  EXPECT_TRUE(isTransientFailure(r));
  // A simulated-cycle budget timeout reproduces deterministically.
  r.diagnostic = "cycle budget exceeded";
  EXPECT_FALSE(isTransientFailure(r));
  r.status = RunStatus::Hang;
  r.diagnostic = "no forward progress";
  EXPECT_FALSE(isTransientFailure(r));
  r.status = RunStatus::Failed;
  r.diagnostic = "transient: injected";
  EXPECT_TRUE(isTransientFailure(r));
  r.diagnostic = "exception: boom";
  EXPECT_FALSE(isTransientFailure(r));
}

TEST(Orchestrator, WallBudgetEndsRunAsTimeout) {
  // An unmeetable host wall-clock budget must surface as RunStatus::Timeout
  // (transient), not as a hang, and must not retry past maxAttempts.
  SweepManifest m;
  m.jobs.resize(1);
  m.jobs[0].spec = JobSpec{"LockillerTM", "genome", "typical", 8, 11};
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  opts.maxAttempts = 1;
  opts.jobWallBudgetSeconds = 1e-9;
  std::vector<RunResult> results;
  runManifest(m, "", opts, {}, &results);
  EXPECT_EQ(m.jobs[0].state, JobState::Timeout);
  EXPECT_EQ(m.jobs[0].attempts, 1u);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::Timeout);
  EXPECT_NE(results[0].diagnostic.find("wall-clock"), std::string::npos);
  EXPECT_TRUE(isTransientFailure(results[0]));
}

TEST(Orchestrator, CycleBudgetEndsRunAsDeterministicTimeout) {
  SweepManifest m;
  m.jobs.resize(1);
  m.jobs[0].spec = JobSpec{"LockillerTM", "genome", "typical", 8, 11};
  std::atomic<unsigned> calls{0};
  auto counting = [&](const JobSpec& spec, const OrchestratorOptions& o,
                      sim::SimContext& ctx) {
    ++calls;
    return runSpec(spec, o, ctx);
  };
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  opts.maxAttempts = 3;
  opts.jobCycleBudget = 50;  // far too small for any real run
  std::vector<RunResult> results;
  runManifest(m, "", opts, counting, &results);
  EXPECT_EQ(m.jobs[0].state, JobState::Timeout);
  // Deterministic timeout: retrying cannot help, so exactly one attempt.
  EXPECT_EQ(calls.load(), 1u);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::Timeout);
  EXPECT_FALSE(isTransientFailure(results[0]));
}

// ----------------------------------------------------------------- artifacts

TEST(Orchestrator, ArtifactRoundTripReconstructsRunResult) {
  const std::string dir = tempDir("artifact_rt");
  SweepManifest m;
  m.artifactDir = dir + "/runs";
  m.jobs.resize(1);
  m.jobs[0].spec = JobSpec{"Baseline", "counter", "typical", 2, 11};
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  std::vector<RunResult> results;
  runManifest(m, "", opts, {}, &results);
  ASSERT_EQ(m.jobs[0].state, JobState::Ok);

  const RunResult back = loadStatsArtifact(m.jobs[0].artifact);
  EXPECT_EQ(back.system, results[0].system);
  EXPECT_EQ(back.workload, results[0].workload);
  EXPECT_EQ(back.machine, results[0].machine);
  EXPECT_EQ(back.threads, results[0].threads);
  EXPECT_EQ(back.seed, results[0].seed);
  EXPECT_EQ(back.cycles, results[0].cycles);
  EXPECT_EQ(back.status, RunStatus::Ok);
  EXPECT_TRUE(back.stats == results[0].stats);
  // Derived accessors work off the reconstructed snapshot.
  EXPECT_EQ(back.totalCommits(), results[0].totalCommits());
  EXPECT_DOUBLE_EQ(back.commitRate().value_or(-1.0),
                   results[0].commitRate().value_or(-1.0));
}

TEST(Orchestrator, MergedArtifactIsValidStatsV1) {
  const std::string dir = tempDir("merged_valid");
  SweepManifest m = testManifest(dir + "/runs");
  OrchestratorOptions opts;
  opts.hostThreads = 1;
  runManifest(m, dir + "/sweep.json", opts);
  ASSERT_TRUE(m.allOk());
  ASSERT_TRUE(writeMergedArtifact(m, dir + "/merged.json"));

  const auto doc = stats::json::parse(slurp(dir + "/merged.json"));
  const auto* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->text, kStatsSchema);
  const auto* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->isArray());
  ASSERT_EQ(runs->array->size(), 4u);
  for (const auto& run : *runs->array) {
    const auto* wall = run.find("wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->number, 0.0);  // host timing zeroed for determinism
    const auto* status = run.find("status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->text, "ok");
    EXPECT_NE(run.find("seed"), nullptr);
  }
}

}  // namespace
}  // namespace lktm::test
