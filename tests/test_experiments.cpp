// Experiment sanity: the paper's qualitative claims must hold in this
// reproduction (shape, not absolute numbers). These back the rows reported
// in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cmath>

#include "config/runner.hpp"
#include "config/systems.hpp"
#include "workloads/workload.hpp"

namespace lktm::cfg {
namespace {

RunResult run(const std::string& system, const std::string& workload,
              unsigned threads, MachineParams machine = MachineParams::typical()) {
  RunConfig rc;
  rc.machine = machine;
  rc.system = systemByName(system);
  rc.threads = threads;
  auto r = runSimulation(rc, [&] { return wl::makeStamp(workload); });
  EXPECT_TRUE(r.ok()) << r.str();
  return r;
}

double speedup(const RunResult& base, const RunResult& sys) {
  return static_cast<double>(base.cycles) / static_cast<double>(sys.cycles);
}

// Fig 1: requester-win best-effort HTM loses to CGL on the pathological
// workloads and wins on the friendly ones (2 threads).
TEST(Fig1, BaselineLosesOnPathologicalWorkloads) {
  for (const char* w : {"labyrinth", "yada"}) {
    const auto cgl = run("CGL", w, 2);
    const auto base = run("Baseline", w, 2);
    EXPECT_LT(speedup(cgl, base), 1.0) << w;
  }
}

TEST(Fig1, BaselineWinsOnFriendlyWorkloads) {
  for (const char* w : {"genome", "ssca2", "vacation-", "kmeans-"}) {
    const auto cgl = run("CGL", w, 2);
    const auto base = run("Baseline", w, 2);
    EXPECT_GT(speedup(cgl, base), 1.0) << w;
  }
}

// Section IV headline: LockillerTM outperforms CGL on every workload except
// yada, independent of thread count.
TEST(Fig7, LockillerBeatsCglExceptYada) {
  for (const char* w : {"genome", "intruder", "kmeans+", "ssca2", "vacation+",
                        "labyrinth"}) {
    for (unsigned t : {2u, 16u}) {
      const auto cgl = run("CGL", w, t);
      const auto lk = run("LockillerTM", w, t);
      EXPECT_GT(speedup(cgl, lk), 1.0) << w << "@" << t;
    }
  }
}

TEST(Fig7, YadaIsTheException) {
  const auto cgl = run("CGL", "yada", 2);
  const auto lk = run("LockillerTM", "yada", 2);
  EXPECT_LT(speedup(cgl, lk), 1.0);
}

TEST(Fig7, LockillerBeatsBaselineOnContention) {
  for (const char* w : {"intruder", "vacation+", "kmeans+"}) {
    const auto base = run("Baseline", w, 16);
    const auto lk = run("LockillerTM", w, 16);
    EXPECT_GT(speedup(base, lk), 1.0) << w;
  }
}

// Fig 8: the recovery mechanism + insts-based priority raises commit rates
// over requester-wins.
TEST(Fig8, RecoveryImprovesCommitRate) {
  // Averaged across workloads, as the paper reports (intruder's total-overlap
  // pattern bounds any policy's rate near 1/threads, so per-workload
  // comparisons there are noise).
  double sumBase = 0.0, sumRwi = 0.0;
  int n = 0;
  for (const char* w : {"kmeans+", "vacation+", "genome", "ssca2"}) {
    sumBase += run("Baseline", w, 16).commitRate().value();
    sumRwi += run("Lockiller-RWI", w, 16).commitRate().value();
    ++n;
  }
  EXPECT_GT(sumRwi / n, sumBase / n);
}

// Fig 9: HTMLock slashes waitlock time on lock-heavy workloads (32 threads).
TEST(Fig9, HtmLockReducesWaitLockTime) {
  // The paper's Fig 9 calls out genome / vacation+- / intruder: conflicts push
  // threads onto the fallback path, and HTMLock removes the all-stop.
  for (const char* w : {"vacation+", "intruder"}) {
    const auto rwi = run("Lockiller-RWI", w, 16);
    const auto rwil = run("Lockiller-RWIL", w, 16);
    const double rwiWait = rwi.breakdown().fraction(TimeCat::WaitLock);
    const double rwilWait = rwil.breakdown().fraction(TimeCat::WaitLock);
    EXPECT_LE(rwilWait, rwiWait) << w;
  }
}

// Fig 10: HTMLock eliminates `mutex` aborts entirely; switchingMode slashes
// `of` aborts (2 threads).
TEST(Fig10, HtmLockEliminatesMutexAborts) {
  for (const char* w : {"intruder", "yada", "labyrinth"}) {
    const auto base = run("Baseline", w, 2);
    const auto rwil = run("Lockiller-RWIL", w, 2);
    EXPECT_GT(base.abortCount(AbortCause::Mutex) +
                  base.abortCount(AbortCause::LockConflict),
              0u)
        << w << ": baseline should see fallback-induced aborts";
    EXPECT_EQ(rwil.abortCount(AbortCause::Mutex), 0u) << w;
  }
}

TEST(Fig10, SwitchingModeReducesOverflowAborts) {
  const auto rwil = run("Lockiller-RWIL", "labyrinth", 2);
  const auto lk = run("LockillerTM", "labyrinth", 2);
  EXPECT_LT(lk.abortCount(AbortCause::Overflow),
            rwil.abortCount(AbortCause::Overflow));
  EXPECT_GT(lk.stlCommits(), 0u);
  EXPECT_GT(lk.switchGrants(), 0u);
}

// Fig 11: successful switches appear as `switchLock` execution time.
TEST(Fig11, SwitchLockTimeAppears) {
  const auto lk = run("LockillerTM", "labyrinth", 2);
  EXPECT_GT(lk.breakdown().cycles[static_cast<std::size_t>(TimeCat::SwitchLock)], 0u);
}

// Fig 12: LockillerTM edges out the LosaTM-SAFU comparator on average.
TEST(Fig12, LockillerBeatsLosaOnAverage) {
  double geoLk = 1.0, geoLosa = 1.0;
  int n = 0;
  for (const char* w : {"intruder", "kmeans+", "vacation+", "genome"}) {
    const auto cgl = run("CGL", w, 8);
    const auto losa = run("LosaTM-SAFU", w, 8);
    const auto lk = run("LockillerTM", w, 8);
    geoLk *= speedup(cgl, lk);
    geoLosa *= speedup(cgl, losa);
    ++n;
  }
  EXPECT_GT(std::pow(geoLk, 1.0 / n), std::pow(geoLosa, 1.0 / n));
}

// Fig 13: the small-cache configuration widens LockillerTM's advantage over
// the baseline on overflow-prone workloads.
TEST(Fig13, AdvantageHoldsInSmallAndLargeCaches) {
  // The paper's Fig 13 claim: in BOTH the small (8KB L1) and large (128KB L1)
  // configurations, LockillerTM's average speedup beats coarse-grained
  // locking and requester-win best-effort HTM.
  for (auto machine : {MachineParams::smallCache(), MachineParams::largeCache()}) {
    double cglCycles = 0.0, baseCycles = 0.0, lkCycles = 0.0;
    for (const char* w : {"intruder", "kmeans+", "vacation+", "labyrinth"}) {
      cglCycles += static_cast<double>(run("CGL", w, 8, machine).cycles);
      baseCycles += static_cast<double>(run("Baseline", w, 8, machine).cycles);
      lkCycles += static_cast<double>(run("LockillerTM", w, 8, machine).cycles);
    }
    EXPECT_LT(lkCycles, cglCycles) << machine.name;
    EXPECT_LT(lkCycles, baseCycles) << machine.name;
  }
}

}  // namespace
}  // namespace lktm::cfg
