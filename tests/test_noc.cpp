#include <gtest/gtest.h>

#include <vector>

#include "noc/ideal.hpp"
#include "noc/mesh.hpp"
#include "sim/context.hpp"

namespace lktm::noc {
namespace {

TEST(Mesh, HopCountsManhattan) {
  sim::SimContext sc;
  MeshNetwork net(sc, {});
  // 4x8 mesh: tile = col + row*8.
  EXPECT_EQ(net.hops(0, 0), 0u);
  EXPECT_EQ(net.hops(0, 7), 7u);   // across the top row
  EXPECT_EQ(net.hops(0, 24), 3u);  // down one column
  EXPECT_EQ(net.hops(0, 31), 10u); // opposite corner
  EXPECT_EQ(net.hops(5, 5 + 32), 0u);  // LLC bank co-located with its tile
}

TEST(Mesh, LocalDeliveryIsOneRouterHop) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  Cycle at = 0;
  net.send(3, 3 + 32, kControlFlits, [&] { at = e.now(); });
  e.queue().runUntilDrained(1000);
  EXPECT_EQ(at, 1u);
}

TEST(Mesh, ControlLatencyMatchesPath) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshParams p;
  MeshNetwork net(sc, p);
  // src 0 -> dst 2: 2 hops. Injection router (1) then per hop:
  // link 1 + flits-1 (0) + router 1 = 2. Total = 1 + 2*2 = 5.
  Cycle at = 0;
  net.send(0, 2, kControlFlits, [&] { at = e.now(); });
  e.queue().runUntilDrained(1000);
  EXPECT_EQ(at, 5u);
}

TEST(Mesh, DataMessagesSerializeFlits) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  Cycle ctrl = 0, data = 0;
  net.send(0, 1, kControlFlits, [&] { ctrl = e.now(); });
  e.queue().runUntilDrained(1000);
  sim::SimContext sc2;
  sim::Engine& e2 = sc2.engine();
  MeshNetwork net2(sc2, {});
  net2.send(0, 1, kDataFlits, [&] { data = e2.now(); });
  e2.queue().runUntilDrained(1000);
  EXPECT_EQ(data, ctrl + kDataFlits - 1);
}

TEST(Mesh, ContentionDelaysSecondMessage) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  std::vector<Cycle> arrivals;
  net.send(0, 1, kDataFlits, [&] { arrivals.push_back(e.now()); });
  net.send(0, 1, kDataFlits, [&] { arrivals.push_back(e.now()); });
  e.queue().runUntilDrained(1000);
  ASSERT_EQ(arrivals.size(), 2u);
  // Second message waits for the first's flits on the shared link.
  EXPECT_GE(arrivals[1], arrivals[0] + kDataFlits);
}

TEST(Mesh, FifoPerSourceDestinationPair) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  std::vector<int> order;
  // A 5-flit data message followed by a 1-flit control message on the same
  // path must not be overtaken (the protocol relies on this).
  net.send(0, 10, kDataFlits, [&] { order.push_back(1); });
  net.send(0, 10, kControlFlits, [&] { order.push_back(2); });
  e.queue().runUntilDrained(10000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Mesh, DisjointPathsDontInterfere) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  Cycle a = 0, b = 0;
  net.send(0, 1, kDataFlits, [&] { a = e.now(); });
  net.send(8, 9, kDataFlits, [&] { b = e.now(); });
  e.queue().runUntilDrained(1000);
  EXPECT_EQ(a, b);  // same relative geometry, no shared links
}

TEST(Mesh, CountsFlitHops) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  net.send(0, 2, kDataFlits, [] {});
  e.queue().runUntilDrained(1000);
  const stats::StatSnapshot snap = sc.stats().snapshot();
  EXPECT_EQ(snap.value("noc.messages"), 1u);
  EXPECT_EQ(snap.value("noc.data_messages"), 1u);
  EXPECT_EQ(snap.value("noc.flit_hops"), kDataFlits * 3u);  // (2 hops + injection) * 5 flits
  // The hop histogram saw exactly one 2-hop message, and the formula stat
  // derives flit-hops per message from the same counters.
  const stats::SnapshotEntry* h = snap.find("noc.hops");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 2u);
  EXPECT_DOUBLE_EQ(snap.number("noc.avg_flit_hops_per_msg"), kDataFlits * 3.0);
}

TEST(Ideal, FixedLatency) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  IdealNetwork net(sc, 3);
  Cycle at = 0;
  net.send(0, 31, kControlFlits, [&] { at = e.now(); });
  e.queue().runUntilDrained(100);
  EXPECT_EQ(at, 3u);
}

TEST(Ideal, DataPaysSerialization) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  IdealNetwork net(sc, 3);
  Cycle at = 0;
  net.send(0, 31, kDataFlits, [&] { at = e.now(); });
  e.queue().runUntilDrained(100);
  EXPECT_EQ(at, 3u + kDataFlits - 1);
}


TEST(Ideal, FifoPerPairEvenWhenFlitsDiffer) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  IdealNetwork net(sc, 3);
  std::vector<int> order;
  net.send(0, 9, kDataFlits, [&] { order.push_back(1); });
  net.send(0, 9, kControlFlits, [&] { order.push_back(2); });  // would overtake
  e.queue().runUntilDrained(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Ideal, DistinctPairsIndependent) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  IdealNetwork net(sc, 3);
  Cycle a = 0, b = 0;
  net.send(0, 9, kDataFlits, [&] { a = e.now(); });
  net.send(1, 9, kControlFlits, [&] { b = e.now(); });
  e.queue().runUntilDrained(1000);
  EXPECT_LT(b, a);  // different source: no ordering constraint
}

class MeshAllPairsTest : public ::testing::TestWithParam<int> {};

TEST_P(MeshAllPairsTest, EveryDestinationReachable) {
  sim::SimContext sc;
  sim::Engine& e = sc.engine();
  MeshNetwork net(sc, {});
  const int src = GetParam();
  int delivered = 0;
  for (int dst = 0; dst < 64; ++dst) {
    net.send(src, dst, kControlFlits, [&] { ++delivered; });
  }
  e.queue().runUntilDrained(100000);
  EXPECT_EQ(delivered, 64);
}

INSTANTIATE_TEST_SUITE_P(Sources, MeshAllPairsTest,
                         ::testing::Values(0, 7, 24, 31, 32, 63));

}  // namespace
}  // namespace lktm::noc
