// The software layer: Listing 1 / Listing 2 codegen, lock implementations,
// retry strategy — validated structurally and end-to-end on real CPUs.
#include <gtest/gtest.h>

#include "cpu_harness.hpp"
#include "runtime/tm_runtime.hpp"
#include "workloads/address_space.hpp"

namespace lktm::test {
namespace {

using cpu::Op;
using cpu::ProgramBuilder;
using rt::RuntimeKind;
using rt::TmRuntime;

constexpr Addr kCounter = 0x100000;

cpu::Program incrementProgram(const TmRuntime& runtime, unsigned tid,
                              unsigned iters) {
  ProgramBuilder b;
  runtime.emitPrologue(b, tid);
  b.mark(TimeCat::NonTran);
  b.compute(static_cast<std::int64_t>(5 + 3 * tid));
  for (unsigned i = 0; i < iters; ++i) {
    runtime.emitEnter(b);
    b.li(1, kCounter);
    b.load(2, 1);
    b.addi(2, 2, 1);
    b.store(1, 2);
    runtime.emitExit(b);
    b.compute(15);
  }
  b.barrier();
  b.halt();
  return b.build();
}

unsigned countOps(const cpu::Program& p, Op op) {
  unsigned n = 0;
  for (const auto& i : p.code) n += i.op == op;
  return n;
}

// ------------------------------------------------------------- structural

TEST(Runtime, KindSelection) {
  core::TmPolicy cgl;
  cgl.htmEnabled = false;
  EXPECT_EQ(rt::runtimeFor(cgl), RuntimeKind::CGL);
  core::TmPolicy base;
  EXPECT_EQ(rt::runtimeFor(base), RuntimeKind::BestEffort);
  core::TmPolicy hl;
  hl.htmLock = true;
  EXPECT_EQ(rt::runtimeFor(hl), RuntimeKind::HtmLock);
}

TEST(Runtime, CglUsesNoTransactions) {
  TmRuntime r(RuntimeKind::CGL, wl::kFallbackLockAddr);
  const auto p = incrementProgram(r, 0, 1);
  EXPECT_EQ(countOps(p, Op::XBegin), 0u);
  EXPECT_EQ(countOps(p, Op::HlBegin), 0u);
  EXPECT_GT(countOps(p, Op::Cas), 0u);  // lock acquisition
}

TEST(Runtime, BestEffortSubscribesAndAbortsOnHeldLock) {
  // Listing 1 lines 8-9: load of the lock word inside the tx + xabort.
  TmRuntime r(RuntimeKind::BestEffort, wl::kFallbackLockAddr);
  const auto p = incrementProgram(r, 0, 1);
  EXPECT_EQ(countOps(p, Op::XBegin), 1u);
  EXPECT_EQ(countOps(p, Op::XAbort), 1u);
  EXPECT_EQ(countOps(p, Op::HlBegin), 0u);
  EXPECT_EQ(countOps(p, Op::TTest), 0u);
}

TEST(Runtime, HtmLockDoesNotSubscribeAndUsesListing2) {
  // The grey modifications: no lock-word subscription (no xabort), hlbegin
  // on the fallback path, ttest-dispatched release.
  TmRuntime r(RuntimeKind::HtmLock, wl::kFallbackLockAddr);
  const auto p = incrementProgram(r, 0, 1);
  EXPECT_EQ(countOps(p, Op::XBegin), 1u);
  EXPECT_EQ(countOps(p, Op::XAbort), 0u);
  EXPECT_EQ(countOps(p, Op::HlBegin), 1u);
  EXPECT_EQ(countOps(p, Op::HlEnd), 2u);  // STL and TL branches
  EXPECT_EQ(countOps(p, Op::TTest), 1u);
}

TEST(Runtime, McsNodesAreDistinctLines) {
  TmRuntime r(RuntimeKind::CGL, wl::kFallbackLockAddr);
  EXPECT_NE(lineOf(r.mcsNodeAddr(0)), lineOf(wl::kFallbackLockAddr));
  for (unsigned a = 0; a < 32; ++a) {
    for (unsigned b = a + 1; b < 32; ++b) {
      EXPECT_NE(lineOf(r.mcsNodeAddr(a)), lineOf(r.mcsNodeAddr(b)));
    }
  }
}

// -------------------------------------------------------------- end-to-end

class RuntimeE2E : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(RuntimeE2E, CriticalSectionsExecuteExactlyOnce) {
  const RuntimeKind kind = GetParam();
  rt::RetryPolicy retry;
  TmRuntime runtime(kind, wl::kFallbackLockAddr, retry);
  TestSystemOptions opt;
  opt.cores = 4;
  opt.policy = kind == RuntimeKind::HtmLock ? htmLockPolicy(true) : recoveryPolicy();
  if (kind == RuntimeKind::CGL) opt.policy.htmEnabled = false;
  CpuHarness h(4, opt);
  const unsigned iters = 20;
  for (CoreId c = 0; c < 4; ++c) {
    h.setProgram(c, incrementProgram(runtime, static_cast<unsigned>(c), iters));
  }
  h.run();
  EXPECT_EQ(h.read(kCounter), 4u * iters);
  h.sys().expectCoherent();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RuntimeE2E,
                         ::testing::Values(RuntimeKind::CGL, RuntimeKind::BestEffort,
                                           RuntimeKind::HtmLock),
                         [](const auto& info) {
                           std::string s = toString(info.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(Runtime, TestAndSetCglAlsoCorrect) {
  rt::RetryPolicy retry;
  retry.cglLock = rt::LockImpl::TestAndSet;
  TmRuntime runtime(RuntimeKind::CGL, wl::kFallbackLockAddr, retry);
  TestSystemOptions opt;
  opt.cores = 4;
  opt.policy.htmEnabled = false;
  CpuHarness h(4, opt);
  for (CoreId c = 0; c < 4; ++c) {
    h.setProgram(c, incrementProgram(runtime, static_cast<unsigned>(c), 15));
  }
  h.run();
  EXPECT_EQ(h.read(kCounter), 60u);
}

TEST(Runtime, BestEffortFallsBackOnFault) {
  // A syscall inside every critical section: best-effort HTM cannot commit a
  // single one speculatively; all must complete via the fallback lock.
  TmRuntime runtime(RuntimeKind::BestEffort, wl::kFallbackLockAddr);
  TestSystemOptions opt;
  opt.cores = 2;
  CpuHarness h(2, opt);
  for (CoreId c = 0; c < 2; ++c) {
    ProgramBuilder b;
    runtime.emitPrologue(b, static_cast<unsigned>(c));
    for (int i = 0; i < 5; ++i) {
      runtime.emitEnter(b);
      b.li(1, kCounter);
      b.load(2, 1);
      b.addi(2, 2, 1);
      b.syscall();
      b.store(1, 2);
      runtime.emitExit(b);
    }
    b.barrier();
    b.halt();
    h.setProgram(c, b.build());
  }
  h.run();
  EXPECT_EQ(h.read(kCounter), 10u);
  const auto& tx0 = h.cpu(0).txCounters();
  const auto& tx1 = h.cpu(1).txCounters();
  EXPECT_EQ(tx0.htmCommits + tx1.htmCommits, 0u);
  EXPECT_GE(tx0.abortCount(AbortCause::Fault) + tx1.abortCount(AbortCause::Fault), 10u);
}

TEST(Runtime, HtmLockFaultGoesToTlAndSurvives) {
  TmRuntime runtime(RuntimeKind::HtmLock, wl::kFallbackLockAddr);
  TestSystemOptions opt;
  opt.cores = 2;
  opt.policy = htmLockPolicy(true);
  CpuHarness h(2, opt);
  for (CoreId c = 0; c < 2; ++c) {
    ProgramBuilder b;
    runtime.emitPrologue(b, static_cast<unsigned>(c));
    for (int i = 0; i < 5; ++i) {
      runtime.emitEnter(b);
      b.li(1, kCounter);
      b.load(2, 1);
      b.addi(2, 2, 1);
      b.syscall();
      b.store(1, 2);
      runtime.emitExit(b);
    }
    b.barrier();
    b.halt();
    h.setProgram(c, b.build());
  }
  h.run();
  EXPECT_EQ(h.read(kCounter), 10u);
  EXPECT_EQ(h.cpu(0).txCounters().lockCommits + h.cpu(1).txCounters().lockCommits,
            10u);
}

TEST(Runtime, SwitchingModeCompletesOverflowingSections) {
  // Critical sections whose write sets overflow a tiny L1: with switchingMode
  // they complete as STL without ever acquiring the software lock.
  TmRuntime runtime(RuntimeKind::HtmLock, wl::kFallbackLockAddr);
  TestSystemOptions opt;
  opt.cores = 2;
  opt.policy = htmLockPolicy(true);
  opt.l1 = mem::CacheGeometry{8 * 1024, 4};  // 32 sets
  CpuHarness h(2, opt);
  for (CoreId c = 0; c < 2; ++c) {
    ProgramBuilder b;
    runtime.emitPrologue(b, static_cast<unsigned>(c));
    for (int i = 0; i < 3; ++i) {
      runtime.emitEnter(b);
      // Six same-set lines (disjoint per core) force an overflow.
      for (int j = 0; j < 6; ++j) {
        b.li(1, static_cast<std::int64_t>(0x100000 + c * 0x40000 +
                                          static_cast<Addr>(j) * 32 * kLineBytes));
        b.load(2, 1);
        b.addi(2, 2, 1);
        b.store(1, 2);
      }
      runtime.emitExit(b);
      b.compute(20);
    }
    b.barrier();
    b.halt();
    h.setProgram(c, b.build());
  }
  h.run();
  for (CoreId c = 0; c < 2; ++c) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(h.read(0x100000 + static_cast<Addr>(c) * 0x40000 +
                       static_cast<Addr>(j) * 32 * kLineBytes),
                3u);
    }
  }
  const auto stl = h.cpu(0).txCounters().stlCommits + h.cpu(1).txCounters().stlCommits;
  EXPECT_GT(stl, 0u) << "switchingMode should have rescued overflow aborts";
}

TEST(Runtime, SpinBackoffClampBoundary) {
  // The emitted backoff loop doubles the register *before* clamping, so the
  // clamped cap must leave headroom for one doubling in a signed int64.
  rt::RetryPolicy p;
  EXPECT_EQ(p.clampedSpinBackoff(), p.spinBackoff);
  EXPECT_EQ(p.clampedSpinBackoffMax(), p.spinBackoffMax);

  p.spinBackoffMax = rt::RetryPolicy::kSpinBackoffCeiling - 1;
  EXPECT_EQ(p.clampedSpinBackoffMax(), rt::RetryPolicy::kSpinBackoffCeiling - 1);
  p.spinBackoffMax = rt::RetryPolicy::kSpinBackoffCeiling;
  EXPECT_EQ(p.clampedSpinBackoffMax(), rt::RetryPolicy::kSpinBackoffCeiling);
  p.spinBackoffMax = rt::RetryPolicy::kSpinBackoffCeiling + 1;
  EXPECT_EQ(p.clampedSpinBackoffMax(), rt::RetryPolicy::kSpinBackoffCeiling);
  p.spinBackoffMax = std::numeric_limits<Cycle>::max();
  EXPECT_EQ(p.clampedSpinBackoffMax(), rt::RetryPolicy::kSpinBackoffCeiling);

  // One doubling of anything at or below the clamp stays a valid int64.
  const auto clamped = static_cast<std::int64_t>(p.clampedSpinBackoffMax());
  EXPECT_GT(clamped, 0);
  EXPECT_LE(clamped, std::numeric_limits<std::int64_t>::max() / 2);

  // The initial backoff is clamped against the effective cap, not the raw one.
  p.spinBackoffMax = 16;
  p.spinBackoff = 1000;
  EXPECT_EQ(p.clampedSpinBackoff(), 16u);
}

TEST(Runtime, HugeSpinBackoffCapRunsCorrectly) {
  // A cap of Cycle max used to be loaded verbatim into a signed register
  // (becoming -1) and the pre-clamp doubling could overflow. With the clamp
  // the contended fallback path must still produce the exact counter value.
  rt::RetryPolicy retry;
  retry.maxRetries = 1;  // force the lock path under conflicts
  retry.spinBackoffMax = std::numeric_limits<Cycle>::max();
  TmRuntime runtime(RuntimeKind::BestEffort, wl::kFallbackLockAddr, retry);
  TestSystemOptions opt;
  opt.cores = 4;
  CpuHarness h(4, opt);
  for (CoreId c = 0; c < 4; ++c) {
    h.setProgram(c, incrementProgram(runtime, static_cast<unsigned>(c), 25));
  }
  h.run();
  EXPECT_EQ(h.read(kCounter), 100u);
}

TEST(Runtime, RetryExhaustionTakesFallback) {
  // With zero retries every conflict abort goes straight to the lock.
  rt::RetryPolicy retry;
  retry.maxRetries = 1;
  TmRuntime runtime(RuntimeKind::BestEffort, wl::kFallbackLockAddr, retry);
  TestSystemOptions opt;
  opt.cores = 4;
  CpuHarness h(4, opt);
  for (CoreId c = 0; c < 4; ++c) {
    h.setProgram(c, incrementProgram(runtime, static_cast<unsigned>(c), 25));
  }
  h.run();
  EXPECT_EQ(h.read(kCounter), 100u);
}

}  // namespace
}  // namespace lktm::test
