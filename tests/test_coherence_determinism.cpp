// Determinism replay tests for the flat coherence datapath (labelled
// `coherence` in ctest). The golden strings in golden_coherence.hpp were
// recorded against the node-based std::map/std::set containers the flat
// structures replaced; byte-identical replays prove the rework preserved
// every externally observable ordering (wakeup drains, diagnostics, sharer
// walks, full-simulation cycle counts). The structural tests below fuzz each
// flat container against its reference-semantics counterpart, including
// adversarial same-bucket probe chains.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "coherence_replay.hpp"
#include "core/wakeup_table.hpp"
#include "golden_coherence.hpp"
#include "sim/core_mask.hpp"
#include "sim/flat_table.hpp"
#include "sim/rng.hpp"

namespace lktm::test {
namespace {

// ----------------------------------------------------- golden replays

TEST(CoherenceReplay, DirectoryTraceMatchesGolden) {
  EXPECT_EQ(directoryReplayTrace(), kGoldenDirectoryTrace);
}

TEST(CoherenceReplay, DirectoryTraceIsStableAcrossRuns) {
  EXPECT_EQ(directoryReplayTrace(), directoryReplayTrace());
}

TEST(CoherenceReplay, FullSimFingerprintMatchesGolden) {
  EXPECT_EQ(fullSimFingerprint(), kGoldenFullSimFingerprint);
}

// ----------------------------------------------------- banked directory

TEST(CoherenceReplay, TwoBankDirectoryTraceMatchesGolden) {
  EXPECT_EQ(directoryReplayTrace(2), kGoldenDirectoryTrace2B);
}

TEST(CoherenceReplay, TwoBankDirectoryTraceIsStableAcrossRuns) {
  EXPECT_EQ(directoryReplayTrace(2), directoryReplayTrace(2));
}

// Pure coherence traffic never crosses bank boundaries (only the HTMLock
// set/clear broadcasts do), so a workload that stays out of the fallback
// lock must produce *identical* results no matter how many banks the
// directory is split into — same commits, same aborts, same cycle count.
TEST(CoherenceReplay, BankCountInvariantForLockFreeWorkload) {
  auto fingerprint = [](unsigned banks) {
    cfg::RunConfig rc;
    rc.system = cfg::systemByName("LockillerTM");
    rc.threads = 4;
    rc.machine.numBanks = banks;
    const auto r = cfg::runSimulation(
        rc, [] { return wl::makeCounter(64, 2, 128); });
    std::ostringstream oss;
    oss << "cycles=" << r.cycles << " commits=" << r.htmCommits() << "/"
        << r.lockCommits() << "/" << r.stlCommits() << " aborts=" << r.aborts()
        << " rejects=" << r.rejectsSent() << " wakeups=" << r.wakeupsSent()
        << " msgs=" << r.messages() << " ok=" << (r.ok() ? 1 : 0);
    return oss.str();
  };
  const std::string oneBank = fingerprint(1);
  EXPECT_EQ(oneBank, fingerprint(2));
  EXPECT_EQ(oneBank, fingerprint(4));
  EXPECT_EQ(oneBank, fingerprint(32));
}

// ----------------------------------------------------- flat table vs map

TEST(FlatLineTable, MatchesMapReferenceUnderChurn) {
  sim::FlatLineTable<int> t;
  std::map<LineAddr, int> ref;
  sim::Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const LineAddr key = rng.next() % 512;  // dense key range -> heavy churn
    switch (rng.next() % 4) {
      case 0:
        t[key] = static_cast<int>(key) + step;
        ref[key] = static_cast<int>(key) + step;
        break;
      case 1: {
        auto [v, inserted] = t.tryEmplace(key);
        auto [rit, rinserted] = ref.try_emplace(key);
        ASSERT_EQ(inserted, rinserted);
        ASSERT_EQ(*v, rit->second);
        break;
      }
      case 2:
        ASSERT_EQ(t.erase(key), ref.erase(key) != 0);
        break;
      default: {
        const int* v = t.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(v != nullptr, rit != ref.end());
        if (v != nullptr) {
          ASSERT_EQ(*v, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  // The ordered walk must equal std::map iteration exactly.
  std::vector<std::pair<LineAddr, int>> walked;
  t.forEachOrdered([&](LineAddr k, int& v) { walked.emplace_back(k, v); });
  std::vector<std::pair<LineAddr, int>> expect(ref.begin(), ref.end());
  EXPECT_EQ(walked, expect);
}

TEST(FlatLineTable, AdversarialProbeCollisionChains) {
  // Handcraft keys that all hash to the same home bucket at the minimum
  // capacity, forcing maximal linear-probe chains and exercising the
  // backward-shift deletion across wrap-around.
  std::vector<LineAddr> colliders;
  for (LineAddr k = 0; colliders.size() < 12; ++k) {
    if ((sim::flat_detail::mixKey(k) & (sim::FlatLineTable<int>::kMinCapacity - 1)) == 0) {
      colliders.push_back(k);
    }
  }
  sim::FlatLineTable<int> t;
  std::map<LineAddr, int> ref;
  for (std::size_t i = 0; i < colliders.size(); ++i) {
    t[colliders[i]] = static_cast<int>(i);
    ref[colliders[i]] = static_cast<int>(i);
  }
  // Erase from the middle of the chain outwards; lookups must stay correct
  // after every single backward shift.
  const std::size_t order[] = {5, 6, 4, 7, 3, 8, 2, 9, 1, 10, 0, 11};
  for (std::size_t i : order) {
    ASSERT_TRUE(t.erase(colliders[i]));
    ref.erase(colliders[i]);
    for (const auto& [k, v] : ref) {
      const int* got = t.find(k);
      ASSERT_NE(got, nullptr);
      ASSERT_EQ(*got, v);
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  EXPECT_TRUE(t.empty());
}

TEST(FlatLineTable, ClearKeepsSlabAndStaysUsable) {
  sim::FlatLineTable<int> t;
  for (LineAddr k = 0; k < 100; ++k) t[k] = static_cast<int>(k);
  const std::size_t cap = t.capacity();
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.capacity(), cap);  // slab survives for zero-alloc reuse
  for (LineAddr k = 0; k < 100; ++k) EXPECT_FALSE(t.contains(k));
  t[7] = 70;
  EXPECT_EQ(*t.find(7), 70);
}

TEST(FlatLineSet, MatchesSetReference) {
  sim::FlatLineSet s;
  std::set<LineAddr> ref;
  sim::Rng rng(99);
  for (int step = 0; step < 10000; ++step) {
    const LineAddr key = rng.next() % 256;
    if (rng.next() % 3 == 0) {
      ASSERT_EQ(s.erase(key), ref.erase(key) != 0);
    } else {
      s.insert(key);
      ref.insert(key);
    }
    ASSERT_EQ(s.size(), ref.size());
    ASSERT_EQ(s.count(key), ref.count(key));
  }
  std::vector<LineAddr> walked;
  s.forEachOrdered([&](LineAddr k) { walked.push_back(k); });
  std::vector<LineAddr> expect(ref.begin(), ref.end());
  EXPECT_EQ(walked, expect);
}

// ----------------------------------------------------- core mask vs set

TEST(CoreMask, MatchesSetReference) {
  sim::CoreMask m;
  std::set<CoreId> ref;
  sim::Rng rng(7);
  for (int step = 0; step < 5000; ++step) {
    const CoreId c = static_cast<CoreId>(rng.next() % 64);
    if (rng.next() % 3 == 0) {
      m.erase(c);
      ref.erase(c);
    } else {
      m.insert(c);
      ref.insert(c);
    }
    ASSERT_EQ(m.size(), ref.size());
    ASSERT_EQ(m.count(c), ref.count(c));
    ASSERT_EQ(m.empty(), ref.empty());
  }
  // Both range-for and forEach must walk in std::set (ascending) order.
  std::vector<CoreId> ranged;
  for (CoreId c : m) ranged.push_back(c);
  std::vector<CoreId> visited;
  m.forEach([&](CoreId c) { visited.push_back(c); });
  std::vector<CoreId> expect(ref.begin(), ref.end());
  EXPECT_EQ(ranged, expect);
  EXPECT_EQ(visited, expect);
}

// Multi-word masks are exercised explicitly regardless of this build's
// LKTM_MAX_CORES: word-boundary ids and set-parity must hold for every
// instantiation the build system can select.
template <unsigned Words>
void coreMaskMatchesSet(std::uint64_t rngSeed) {
  sim::CoreMaskT<Words> m;
  std::set<CoreId> ref;
  sim::Rng rng(rngSeed);
  for (int step = 0; step < 5000; ++step) {
    const CoreId c = static_cast<CoreId>(rng.next() % (Words * 64));
    if (rng.next() % 3 == 0) {
      m.erase(c);
      ref.erase(c);
    } else {
      m.insert(c);
      ref.insert(c);
    }
    ASSERT_EQ(m.size(), ref.size());
    ASSERT_EQ(m.count(c), ref.count(c));
    ASSERT_EQ(m.empty(), ref.empty());
  }
  std::vector<CoreId> ranged;
  for (CoreId c : m) ranged.push_back(c);
  std::vector<CoreId> visited;
  m.forEach([&](CoreId c) { visited.push_back(c); });
  std::vector<CoreId> expect(ref.begin(), ref.end());
  EXPECT_EQ(ranged, expect);
  EXPECT_EQ(visited, expect);
}

TEST(CoreMask, TwoWordMatchesSetReference) { coreMaskMatchesSet<2>(7); }
TEST(CoreMask, FourWordMatchesSetReference) { coreMaskMatchesSet<4>(13); }
TEST(CoreMask, EightWordMatchesSetReference) { coreMaskMatchesSet<8>(29); }

TEST(CoreMask, WordBoundaryIds) {
  // Cores 63/64/65 straddle the first word boundary, 127/128 the second.
  sim::CoreMaskT<4> m;
  for (CoreId c : {63, 64, 65, 127, 128}) {
    EXPECT_EQ(m.count(static_cast<CoreId>(c)), 0u);
    m.insert(static_cast<CoreId>(c));
    EXPECT_EQ(m.count(static_cast<CoreId>(c)), 1u);
  }
  EXPECT_EQ(m.size(), 5u);
  std::vector<CoreId> walked;
  m.forEach([&](CoreId c) { walked.push_back(c); });
  EXPECT_EQ(walked, (std::vector<CoreId>{63, 64, 65, 127, 128}));

  // Erasing an id in one word must not disturb its neighbours.
  m.erase(64);
  EXPECT_EQ(m.count(63), 1u);
  EXPECT_EQ(m.count(64), 0u);
  EXPECT_EQ(m.count(65), 1u);
  EXPECT_EQ(m.size(), 4u);

  // rawWords() exposes every word: ids >= 64 must not be truncated into
  // word 0 (the old single-u64 raw() trap).
  const auto words = m.rawWords();
  EXPECT_EQ(words[0], std::uint64_t{1} << 63);                         // core 63
  EXPECT_EQ(words[1], (std::uint64_t{1} << 1) | (std::uint64_t{1} << 63));  // 65, 127
  EXPECT_EQ(words[2], std::uint64_t{1});                               // core 128
  EXPECT_EQ(words[3], std::uint64_t{0});
}

TEST(CoreMask, SingleWordSpecializationKeepsRawWordsShape) {
  sim::CoreMaskT<1> m;
  m.insert(0);
  m.insert(63);
  const auto words = m.rawWords();
  EXPECT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], (std::uint64_t{1} << 63) | std::uint64_t{1});
}

// ----------------------------------------------------- wakeup table order

TEST(WakeupTable, DrainOrderMatchesMapOfSetsReference) {
  core::WakeupTable wt;
  std::map<LineAddr, std::set<CoreId>> ref;
  sim::Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const LineAddr line = rng.next() % 40;
    const CoreId core = static_cast<CoreId>(rng.next() % 16);
    wt.record(line, core);
    ref[line].insert(core);
  }
  std::size_t refSize = 0;
  for (const auto& [line, cores] : ref) refSize += cores.size();
  ASSERT_EQ(wt.size(), refSize);

  // Single-line drain first (the SigClear per-address path).
  const auto one = wt.drain(3);
  std::vector<CoreId> oneExpect(ref[3].begin(), ref[3].end());
  ASSERT_EQ(one.size(), oneExpect.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].line, 3u);
    EXPECT_EQ(one[i].core, oneExpect[i]);
  }
  ref.erase(3);

  // Full drain: ascending line, ascending core — the old map/set order.
  const auto all = wt.drainAll();
  std::vector<core::WakeupTable::Entry> expect;
  for (const auto& [line, cores] : ref) {
    for (CoreId c : cores) expect.push_back({line, c});
  }
  ASSERT_EQ(all.size(), expect.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].line, expect[i].line);
    EXPECT_EQ(all[i].core, expect[i].core);
  }
  EXPECT_TRUE(wt.empty());
}

}  // namespace
}  // namespace lktm::test
