// Unit tests for the LockillerTM policy layer in src/core: priorities,
// conflict decisions, wakeup bookkeeping, the HTMLock signatures and the
// LLC switch arbiter.
#include <gtest/gtest.h>

#include "core/conflict_manager.hpp"
#include "core/htmlock_unit.hpp"
#include "core/priority.hpp"
#include "core/switch_arbiter.hpp"
#include "core/wakeup_table.hpp"
#include "sim/rng.hpp"

namespace lktm::core {
namespace {

// ---------------------------------------------------------------- PrioKey

TEST(Priority, LockModeBeatsEverything) {
  PrioKey lockTx{.lockMode = true, .value = 0, .core = 31};
  PrioKey htmTx{.lockMode = false, .value = 1'000'000, .core = 0};
  EXPECT_TRUE(lockTx.beats(htmTx));
  EXPECT_FALSE(htmTx.beats(lockTx));
}

TEST(Priority, HigherValueWins) {
  PrioKey a{.lockMode = false, .value = 10, .core = 5};
  PrioKey b{.lockMode = false, .value = 9, .core = 1};
  EXPECT_TRUE(a.beats(b));
  EXPECT_FALSE(b.beats(a));
}

TEST(Priority, TieBrokenBySmallerCoreId) {
  PrioKey a{.lockMode = false, .value = 7, .core = 2};
  PrioKey b{.lockMode = false, .value = 7, .core = 9};
  EXPECT_TRUE(a.beats(b));
  EXPECT_FALSE(b.beats(a));
}

TEST(Priority, TotalOrderOverRandomKeys) {
  // The livelock-freedom argument needs a strict total order: exactly one of
  // a.beats(b) / b.beats(a) for distinct keys, and transitivity.
  sim::Rng rng(99);
  std::vector<PrioKey> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(PrioKey{.lockMode = rng.percent(20),
                           .value = rng.below(4),
                           .core = static_cast<CoreId>(i)});
  }
  for (const auto& a : keys) {
    for (const auto& b : keys) {
      if (a.core == b.core) continue;
      EXPECT_NE(a.beats(b), b.beats(a)) << a.str() << " vs " << b.str();
      for (const auto& c : keys) {
        if (c.core == a.core || c.core == b.core) continue;
        if (a.beats(b) && b.beats(c)) {
          EXPECT_TRUE(a.beats(c)) << a.str() << " " << b.str() << " " << c.str();
        }
      }
    }
  }
}

// ------------------------------------------------------- ConflictManager

ReqSide htmReq(CoreId c, std::uint64_t prio, bool excl = true) {
  return ReqSide{.core = c, .isTx = true, .lockMode = false, .priority = prio,
                 .wantsExclusive = excl};
}

LocalSide htmLocal(CoreId c, std::uint64_t prio) {
  return LocalSide{.core = c, .lockMode = false, .priority = prio,
                   .lineIsLockWord = false};
}

TEST(ConflictManager, RequesterWinsAlwaysAbortsLocal) {
  ConflictManager cm(ConflictPolicy::RequesterWins, RejectAction::SelfAbort);
  const auto d = cm.decide(htmLocal(0, 1'000'000), htmReq(1, 0));
  EXPECT_FALSE(d.rejectRequester);
  EXPECT_EQ(d.abortCause, AbortCause::MemConflict);
}

TEST(ConflictManager, RecoveryRejectsLowerPriorityRequester) {
  ConflictManager cm(ConflictPolicy::Recovery, RejectAction::WaitWakeup);
  const auto d = cm.decide(htmLocal(0, 100), htmReq(1, 50));
  EXPECT_TRUE(d.rejectRequester);
  EXPECT_EQ(d.abortCause, AbortCause::None);
}

TEST(ConflictManager, RecoveryYieldsToHigherPriorityRequester) {
  ConflictManager cm(ConflictPolicy::Recovery, RejectAction::WaitWakeup);
  const auto d = cm.decide(htmLocal(0, 50), htmReq(1, 100));
  EXPECT_FALSE(d.rejectRequester);
  EXPECT_EQ(d.abortCause, AbortCause::MemConflict);
}

TEST(ConflictManager, RecoveryTieGoesToSmallerCore) {
  ConflictManager cm(ConflictPolicy::Recovery, RejectAction::WaitWakeup);
  // Local core 0 vs requester core 1, equal priority: local wins.
  EXPECT_TRUE(cm.decide(htmLocal(0, 5), htmReq(1, 5)).rejectRequester);
  // Local core 1 vs requester core 0: requester wins.
  EXPECT_FALSE(cm.decide(htmLocal(1, 5), htmReq(0, 5)).rejectRequester);
}

TEST(ConflictManager, LockModeResponderNeverAborts) {
  for (auto policy : {ConflictPolicy::RequesterWins, ConflictPolicy::Recovery}) {
    ConflictManager cm(policy, RejectAction::SelfAbort);
    LocalSide local{.core = 3, .lockMode = true, .priority = 0, .lineIsLockWord = false};
    EXPECT_TRUE(cm.decide(local, htmReq(1, 1'000'000)).rejectRequester);
    // Even against non-transactional requesters.
    ReqSide nonTx{.core = 1, .isTx = false, .lockMode = false, .priority = 0,
                  .wantsExclusive = true};
    EXPECT_TRUE(cm.decide(local, nonTx).rejectRequester);
  }
}

TEST(ConflictManager, LockModeRequesterAlwaysWins) {
  ConflictManager cm(ConflictPolicy::Recovery, RejectAction::WaitWakeup);
  ReqSide lockReq{.core = 1, .isTx = true, .lockMode = true, .priority = 0,
                  .wantsExclusive = true};
  const auto d = cm.decide(htmLocal(0, 1'000'000), lockReq);
  EXPECT_FALSE(d.rejectRequester);
  EXPECT_EQ(d.abortCause, AbortCause::LockConflict);
}

TEST(ConflictManager, NonTransactionalRequesterBeatsHtm) {
  ConflictManager cm(ConflictPolicy::Recovery, RejectAction::WaitWakeup);
  ReqSide nonTx{.core = 1, .isTx = false, .lockMode = false, .priority = 0,
                .wantsExclusive = true};
  const auto d = cm.decide(htmLocal(0, 1'000'000), nonTx);
  EXPECT_FALSE(d.rejectRequester);
  EXPECT_EQ(d.abortCause, AbortCause::NonTran);
}

TEST(ConflictManager, LockWordConflictClassifiedAsMutex) {
  ConflictManager cm(ConflictPolicy::RequesterWins, RejectAction::SelfAbort);
  LocalSide local = htmLocal(0, 0);
  local.lineIsLockWord = true;
  ReqSide nonTx{.core = 1, .isTx = false, .lockMode = false, .priority = 0,
                .wantsExclusive = true};
  EXPECT_EQ(cm.decide(local, nonTx).abortCause, AbortCause::Mutex);
}

TEST(ConflictManager, ClassifyTable) {
  LocalSide local = htmLocal(0, 0);
  ReqSide lockReq{.core = 1, .isTx = true, .lockMode = true};
  ReqSide htm{.core = 1, .isTx = true, .lockMode = false};
  ReqSide nonTx{.core = 1, .isTx = false, .lockMode = false};
  EXPECT_EQ(ConflictManager::classify(local, lockReq), AbortCause::LockConflict);
  EXPECT_EQ(ConflictManager::classify(local, htm), AbortCause::MemConflict);
  EXPECT_EQ(ConflictManager::classify(local, nonTx), AbortCause::NonTran);
  local.lineIsLockWord = true;
  EXPECT_EQ(ConflictManager::classify(local, nonTx), AbortCause::Mutex);
}

// ------------------------------------------------------------ WakeupTable

TEST(WakeupTable, RecordAndDrainAll) {
  WakeupTable t;
  t.record(10, 1);
  t.record(10, 2);
  t.record(20, 1);
  EXPECT_EQ(t.size(), 3u);
  const auto all = t.drainAll();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(t.empty());
}

TEST(WakeupTable, DuplicateWaitersCollapse) {
  WakeupTable t;
  t.record(10, 1);
  t.record(10, 1);
  EXPECT_EQ(t.size(), 1u);
}

TEST(WakeupTable, DrainSingleLine) {
  WakeupTable t;
  t.record(10, 1);
  t.record(20, 2);
  const auto some = t.drain(10);
  ASSERT_EQ(some.size(), 1u);
  EXPECT_EQ(some[0].core, 1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.drain(99).empty());
}

// ---------------------------------------------------------- SwitchArbiter

TEST(SwitchArbiter, GrantsFirstRequester) {
  SwitchArbiter a;
  EXPECT_FALSE(a.active());
  EXPECT_EQ(a.request(3, TxMode::TL), SwitchArbiter::Verdict::Grant);
  EXPECT_TRUE(a.active());
  EXPECT_EQ(a.holder(), 3);
  EXPECT_EQ(a.holderMode(), TxMode::TL);
}

TEST(SwitchArbiter, StlDeniedWhileHeld) {
  SwitchArbiter a;
  a.request(0, TxMode::TL);
  EXPECT_EQ(a.request(1, TxMode::STL), SwitchArbiter::Verdict::Deny);
  EXPECT_EQ(a.holder(), 0);
}

TEST(SwitchArbiter, TlQueuesWhileHeldAndGetsGrantOnRelease) {
  SwitchArbiter a;
  a.request(0, TxMode::STL);
  EXPECT_EQ(a.request(1, TxMode::TL), SwitchArbiter::Verdict::Queued);
  EXPECT_EQ(a.queued(), 1u);
  const auto next = a.release(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1);
  EXPECT_EQ(a.holder(), 1);
  EXPECT_EQ(a.holderMode(), TxMode::TL);
}

TEST(SwitchArbiter, ReleaseWithEmptyQueueFreesSlot) {
  SwitchArbiter a;
  a.request(5, TxMode::STL);
  EXPECT_FALSE(a.release(5).has_value());
  EXPECT_FALSE(a.active());
}

TEST(SwitchArbiter, ReleaseByNonHolderThrows) {
  SwitchArbiter a;
  a.request(0, TxMode::TL);
  EXPECT_THROW(a.release(1), std::logic_error);
}

TEST(SwitchArbiter, WithdrawRemovesFromQueue) {
  SwitchArbiter a;
  a.request(0, TxMode::TL);
  a.request(1, TxMode::TL);
  a.request(2, TxMode::TL);
  a.withdraw(1);
  const auto next = a.release(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2);
}

// ------------------------------------------------------------ HtmLockUnit

class HtmLockUnitTest : public ::testing::Test {
 protected:
  HtmLockUnit unit;
};

TEST_F(HtmLockUnitTest, InactiveUnitNeverRejects) {
  unit.noteOverflow(10, true);
  EXPECT_FALSE(unit.shouldReject(10, true, false, 1));  // no lock mirrored
}

TEST_F(HtmLockUnitTest, HolderBypassesItsOwnSignatures) {
  unit.setLock(0, TxMode::TL);
  unit.noteOverflow(10, true);
  EXPECT_FALSE(unit.shouldReject(10, true, false, 0));
  EXPECT_TRUE(unit.shouldReject(10, true, false, 1));
}

TEST_F(HtmLockUnitTest, WriteSignatureRejectsEverything) {
  unit.setLock(0, TxMode::TL);
  unit.noteOverflow(10, /*isWrite=*/true);
  EXPECT_TRUE(unit.shouldReject(10, /*wantsExclusive=*/false, /*otherCopies=*/true, 1));
  EXPECT_TRUE(unit.shouldReject(10, true, true, 1));
}

TEST_F(HtmLockUnitTest, ReadSignatureRejectsExclusiveGrants) {
  unit.setLock(0, TxMode::TL);
  unit.noteOverflow(10, /*isWrite=*/false);
  // GetX: reject.
  EXPECT_TRUE(unit.shouldReject(10, true, true, 1));
  // GetS with other cached copies: grant stays shared -> allowed.
  EXPECT_FALSE(unit.shouldReject(10, false, true, 1));
  // GetS with no other copy would be granted E -> reject (paper's rule).
  EXPECT_TRUE(unit.shouldReject(10, false, false, 1));
}

TEST_F(HtmLockUnitTest, UnrelatedLinesPass) {
  unit.setLock(0, TxMode::TL);
  unit.noteOverflow(10, true);
  EXPECT_FALSE(unit.shouldReject(11, true, false, 1));
}

TEST_F(HtmLockUnitTest, ClearAndDrainReturnsWaiters) {
  unit.setLock(0, TxMode::TL);
  unit.noteOverflow(10, true);
  unit.recordWaiter(10, 1);
  unit.recordWaiter(10, 2);
  const auto waiters = unit.clearAndDrain();
  EXPECT_EQ(waiters.size(), 2u);
  EXPECT_FALSE(unit.anyOverflow());
  EXPECT_FALSE(unit.shouldReject(10, true, false, 1));
}

TEST_F(HtmLockUnitTest, ClearLockResetsMirror) {
  unit.setLock(3, TxMode::STL);
  EXPECT_EQ(unit.lockHolder(), 3);
  EXPECT_EQ(unit.lockMode(), TxMode::STL);
  unit.clearLock();
  EXPECT_EQ(unit.lockHolder(), kNoCore);
  unit.noteOverflow(10, true);
  EXPECT_FALSE(unit.shouldReject(10, true, false, 1));
}

}  // namespace
}  // namespace lktm::core
