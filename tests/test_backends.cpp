// The pluggable TM-backend layer (src/runtime/backends): registry contracts,
// lockiller bit-identity with the direct runtime emission, TL2 orec algebra
// and commit/abort accounting, hybrid HTM+STM mixing, the -be= machine
// suffix, and host-thread-count independence of the backend sweep rows.
#include <gtest/gtest.h>

#include <stdexcept>

#include "config/machine.hpp"
#include "config/orchestrator.hpp"
#include "config/runner.hpp"
#include "config/sweep.hpp"
#include "config/systems.hpp"
#include "runtime/backends/backend.hpp"
#include "runtime/backends/tl2.hpp"
#include "runtime/tm_runtime.hpp"
#include "workloads/micro.hpp"
#include "workloads/workload.hpp"

namespace lktm::tm {
namespace {

cfg::RunResult runMicro(const std::string& system, unsigned threads,
                        const std::function<std::unique_ptr<wl::Workload>()>& mk,
                        cfg::MachineParams machine = cfg::MachineParams::typical()) {
  cfg::RunConfig rc;
  rc.machine = machine;
  rc.system = cfg::systemByName(system);
  rc.threads = threads;
  return cfg::runSimulation(rc, mk);
}

// ---------------------------------------------------------------- registry

TEST(BackendRegistry, NamesRowsAndLookups) {
  const auto names = backendNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "lockiller");
  EXPECT_EQ(names[1], "cgl");
  EXPECT_EQ(names[2], "tl2");
  EXPECT_EQ(names[3], "hybrid");
  for (const std::string& n : names) {
    EXPECT_TRUE(isBackendName(n)) << n;
    EXPECT_NE(backendNameList().find(n), std::string::npos) << n;
  }
  EXPECT_FALSE(isBackendName("stm"));
  // Only the backends that add Table II rows carry a systemRow.
  EXPECT_STREQ(backendInfo("tl2")->systemRow, "TL2-STM");
  EXPECT_STREQ(backendInfo("hybrid")->systemRow, "Hybrid-TM");
  EXPECT_EQ(backendInfo("lockiller")->systemRow, nullptr);
  EXPECT_EQ(backendInfo("cgl")->systemRow, nullptr);
}

TEST(BackendRegistry, UnknownNameThrows) {
  EXPECT_THROW(makeBackend("no-such-backend", BackendConfig{}),
               std::invalid_argument);
  EXPECT_EQ(backendInfo("no-such-backend"), nullptr);
}

TEST(BackendRegistry, DefaultFollowsPolicy) {
  core::TmPolicy htm;  // htmEnabled defaults true
  EXPECT_EQ(defaultBackendFor(htm), "lockiller");
  core::TmPolicy cglOnly;
  cglOnly.htmEnabled = false;
  EXPECT_EQ(defaultBackendFor(cglOnly), "cgl");
}

TEST(BackendRegistry, HybridRequiresHtm) {
  BackendConfig bc;
  bc.policy.htmEnabled = false;
  bc.lockAddr = wl::kFallbackLockAddr;
  EXPECT_THROW(makeBackend("hybrid", bc), std::invalid_argument);
}

// ------------------------------------------------- lockiller bit-identity

void expectSamePrograms(const cpu::Program& a, const cpu::Program& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t pc = 0; pc < a.size(); ++pc) {
    const cpu::Instr& x = a.at(pc);
    const cpu::Instr& y = b.at(pc);
    EXPECT_TRUE(x.op == y.op && x.rd == y.rd && x.rs1 == y.rs1 &&
                x.rs2 == y.rs2 && x.imm == y.imm)
        << "pc " << pc << ": " << x.str() << " vs " << y.str();
  }
}

TEST(LockillerBackend, EmitsByteIdenticalToDirectRuntime) {
  const Addr addr = 0x10000;
  for (const char* system : {"CGL", "Baseline", "LockillerTM"}) {
    const cfg::SystemSpec sys = cfg::systemByName(system);

    cpu::ProgramBuilder direct;
    rt::TmRuntime rt(rt::runtimeFor(sys.policy), wl::kFallbackLockAddr,
                     sys.retry);
    rt.emitPrologue(direct, 3);
    rt.emitEnter(direct);
    direct.li(10, static_cast<std::int64_t>(addr));
    direct.load(11, 10);
    direct.li(10, static_cast<std::int64_t>(addr));
    direct.load(11, 10);
    direct.addi(11, 11, 1);
    direct.store(10, 11);
    rt.emitExit(direct);
    direct.halt();

    BackendConfig bc;
    bc.policy = sys.policy;
    bc.retry = sys.retry;
    bc.lockAddr = wl::kFallbackLockAddr;
    auto backend = makeBackend(defaultBackendFor(sys.policy), bc);
    cpu::ProgramBuilder viaBackend;
    backend->emitProgramStart(viaBackend, 3, 8);
    backend->emitTransaction(viaBackend, [&](cpu::ProgramBuilder& pb) {
      backend->emitRead(pb, addr, 10, 11);
      backend->emitUpdate(pb, addr, 10, 11, 1);
    });
    viaBackend.halt();

    SCOPED_TRACE(system);
    expectSamePrograms(direct.build(), viaBackend.build());
  }
}

TEST(LockillerBackend, MachineSuffixRunMatchesDefaultRun) {
  // Forcing -be=lockiller on a machine must be a no-op for an HTM system:
  // same cycles, same full stat snapshot.
  const auto mk = [] { return wl::makeCounter(4, 2, 64); };
  const auto a = runMicro("LockillerTM", 4, mk);
  cfg::MachineOverrides ov;
  ov.backend = "lockiller";
  cfg::MachineParams forced = cfg::MachineParams::typical();
  cfg::applyMachineOverrides(forced, ov);
  const auto b = runMicro("LockillerTM", 4, mk, forced);
  ASSERT_TRUE(a.ok()) << a.str();
  ASSERT_TRUE(b.ok()) << b.str();
  EXPECT_EQ(a.backend, "lockiller");
  EXPECT_EQ(b.backend, "lockiller");
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_TRUE(a.stats == b.stats);
}

// ----------------------------------------------------------- TL2 orec math

TEST(Tl2, OrecEncodingWrapsAtMaxVersion) {
  EXPECT_EQ(orecVersion(encodeOrec(7)), 7u);
  EXPECT_FALSE(orecLocked(encodeOrec(7)));
  // Version overflow wraps through the lock bit instead of setting it.
  EXPECT_EQ(encodeOrec(kMaxOrecVersion + 1), 0u);
  EXPECT_FALSE(orecLocked(encodeOrec(kMaxOrecVersion + 1)));
  EXPECT_EQ(orecVersion(encodeOrec(kMaxOrecVersion)), kMaxOrecVersion);
  // Lock words are odd, owner-distinct, never version-shaped.
  EXPECT_TRUE(orecLocked(orecLockWord(0)));
  EXPECT_TRUE(orecLocked(orecLockWord(31)));
  EXPECT_NE(orecLockWord(0), orecLockWord(1));
}

TEST(Tl2, OrecTableMapsWholeLinesInsideScratch) {
  for (const Addr a : {Addr{0}, Addr{0x1234}, Addr{0xfffff8}, Addr{1} << 29}) {
    const Addr oa = orecAddrOf(a);
    EXPECT_GE(oa, kOrecBase);
    EXPECT_LT(oa, kOrecBase + kNumOrecs * kLineBytes);
    // One orec per cache line: all words of a line share the stripe.
    EXPECT_EQ(orecAddrOf(a), orecAddrOf((a & ~Addr{kLineBytes - 1}) + 8));
  }
}

TEST(Tl2, RejectsDataDependentAddresses) {
  BackendConfig bc;
  bc.policy.htmEnabled = false;
  bc.lockAddr = wl::kFallbackLockAddr;
  auto tl2 = makeBackend("tl2", bc);
  cpu::ProgramBuilder pb;
  EXPECT_THROW(tl2->emitReadDyn(pb, 10, 11, 0), std::invalid_argument);
  EXPECT_THROW(tl2->emitWriteDyn(pb, 10, 11, 0), std::invalid_argument);
  // End to end: the pointer-chasing workload cannot build on the STM row.
  EXPECT_THROW(runMicro("TL2-STM", 2, [] { return wl::makeLinkedList(16, 3, 16); }),
               std::invalid_argument);
}

// -------------------------------------------------------- TL2 end to end

TEST(Tl2, CommitsAreSoftwareAndInvariantsHold) {
  const auto r = runMicro("TL2-STM", 4, [] { return wl::makeCounter(4, 2, 96); });
  ASSERT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.backend, "tl2");
  EXPECT_GT(r.stmCommits(), 0u);
  EXPECT_EQ(r.htmCommits(), 0u);
  EXPECT_EQ(r.lockCommits(), 0u);
  EXPECT_EQ(r.stlCommits(), 0u);
  EXPECT_EQ(r.totalCommits(), r.stmCommits());
}

TEST(Tl2, ContentionAbortsAreCountedButHarmless) {
  // Maximum contention: every transaction increments the same single cell,
  // so commit-time lock/validation conflicts are guaranteed at 4 threads.
  const auto r = runMicro("TL2-STM", 4, [] { return wl::makeCounter(1, 1, 96); });
  ASSERT_TRUE(r.ok()) << r.str();
  EXPECT_GT(r.stmCommits(), 0u);
  EXPECT_GT(r.aborts(), 0u);
  EXPECT_GT(r.abortCount(AbortCause::LockConflict) +
                r.abortCount(AbortCause::MemConflict),
            0u);
  EXPECT_LT(r.commitRate().value(), 1.0);
}

TEST(Tl2, BankTransfersStayAtomic) {
  const auto r = runMicro("TL2-STM", 4, [] { return wl::makeBank(8, 128); });
  ASSERT_TRUE(r.ok()) << r.str();  // verify() checks balance conservation
  EXPECT_GT(r.stmCommits(), 0u);
}

// A one-thread workload whose transaction writes A, then B, then A again:
// pins the redo log's program-order writeback with last-wins semantics.
class RewriteWorkload : public wl::Workload {
 public:
  std::string name() const override { return "rewrite"; }
  void init(mem::MainMemory&, unsigned) override {}
  Addr footprintEnd() const override { return kA + kLineBytes; }
  cpu::Program buildProgram(unsigned tid, unsigned,
                            tm::Backend& backend) override {
    cpu::ProgramBuilder pb;
    backend.emitProgramStart(pb, tid, 1);
    backend.emitTransaction(pb, [&](cpu::ProgramBuilder& b) {
      pb.li(11, 5);
      backend.emitWrite(b, kA, 10, 11);
      pb.li(11, 6);
      backend.emitWrite(b, kB, 10, 11);
      pb.li(11, 7);
      backend.emitWrite(b, kA, 10, 11);
    });
    pb.halt();
    return pb.build();
  }
  std::vector<std::string> verify(const wl::WordReader& read,
                                  unsigned) const override {
    std::vector<std::string> v;
    if (read(kA) != 7) v.push_back("A: rewrite lost (want 7)");
    if (read(kB) != 6) v.push_back("B: write lost (want 6)");
    return v;
  }
  // Same line on purpose: the second A-write must reuse the A redo slot.
  static constexpr Addr kA = 0x20000;
  static constexpr Addr kB = 0x20008;
};

TEST(Tl2, RedoLogWritebackIsLastWins) {
  cfg::RunConfig rc;
  rc.system = cfg::systemByName("TL2-STM");
  rc.threads = 1;
  const auto r = cfg::runSimulation(rc, [] { return std::make_unique<RewriteWorkload>(); });
  ASSERT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.stmCommits(), 1u);
}

// The runner must refuse to aim an STM backend at a workload whose data
// footprint would alias the orec/clock/redo metadata region.
class HugeFootprintWorkload final : public RewriteWorkload {
 public:
  Addr footprintEnd() const override { return kStmScratchBase + kLineBytes; }
};

TEST(Tl2, ScratchCollisionIsRejected) {
  cfg::RunConfig rc;
  rc.system = cfg::systemByName("TL2-STM");
  rc.threads = 1;
  EXPECT_THROW(
      cfg::runSimulation(rc, [] { return std::make_unique<HugeFootprintWorkload>(); }),
      std::invalid_argument);
}

// ------------------------------------------------------------ hybrid row

TEST(Hybrid, CommitsInHardwareWithSoftwareFallback) {
  const auto r = runMicro("Hybrid-TM", 4, [] { return wl::makeCounter(4, 2, 96); });
  ASSERT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.backend, "hybrid");
  // No global-lock path exists in the hybrid: commits are HTM or TL2.
  EXPECT_EQ(r.lockCommits(), 0u);
  EXPECT_EQ(r.stlCommits(), 0u);
  EXPECT_GT(r.htmCommits() + r.stmCommits(), 0u);
  EXPECT_GT(r.htmCommits(), 0u) << "low contention should mostly commit in HTM";
}

TEST(Hybrid, HighContentionExercisesTheStmFallback) {
  const auto r = runMicro("Hybrid-TM", 8, [] { return wl::makeCounter(1, 1, 192); });
  ASSERT_TRUE(r.ok()) << r.str();
  EXPECT_GT(r.htmCommits() + r.stmCommits(), 0u);
  EXPECT_GT(r.aborts(), 0u);
  EXPECT_EQ(r.totalCommits(), r.htmCommits() + r.stmCommits());
}

TEST(Hybrid, BankTransfersStayAtomic) {
  const auto r = runMicro("Hybrid-TM", 4, [] { return wl::makeBank(8, 128); });
  ASSERT_TRUE(r.ok()) << r.str();
}

TEST(Backends, RunsAreDeterministic) {
  for (const char* system : {"TL2-STM", "Hybrid-TM"}) {
    const auto mk = [] { return wl::makeBank(8, 96); };
    const auto a = runMicro(system, 4, mk);
    const auto b = runMicro(system, 4, mk);
    ASSERT_TRUE(a.ok()) << a.str();
    EXPECT_EQ(a.cycles, b.cycles) << system;
    EXPECT_TRUE(a.stats == b.stats) << system;
  }
}

// ------------------------------------------------------- machine suffix

TEST(MachineSuffix, BackendRoundTripsThroughTheName) {
  cfg::MachineOverrides ov;
  ov.backend = "tl2";
  cfg::MachineParams m = cfg::MachineParams::typical();
  cfg::applyMachineOverrides(m, ov);
  EXPECT_EQ(m.backend, "tl2");
  EXPECT_NE(m.name.find("-be=tl2"), std::string::npos);
  const cfg::MachineParams parsed = cfg::machineByName(m.name);
  EXPECT_EQ(parsed.backend, "tl2");
  EXPECT_EQ(parsed.name, m.name);
}

TEST(MachineSuffix, UnknownBackendNamesAreRejected) {
  cfg::MachineOverrides ov;
  ov.backend = "vaporware";
  cfg::MachineParams m = cfg::MachineParams::typical();
  EXPECT_THROW(cfg::applyMachineOverrides(m, ov), std::invalid_argument);
  EXPECT_THROW(cfg::machineByName("typical-be=vaporware"), std::invalid_argument);
}

// ------------------------------------------------------------- sweep rows

TEST(BackendSweep, ResultsIndependentOfHostThreads) {
  // The backend Table II rows inherit the sweep determinism contract: the
  // same manifest merged from 1, 2 or 4 worker threads is bit-identical.
  std::vector<cfg::RunResult> reference;
  for (const unsigned hostThreads : {1u, 2u, 4u}) {
    cfg::SweepManifest m =
        cfg::makeManifest("", "typical", {"TL2-STM", "Hybrid-TM"},
                          {"counter", "bank"}, {2}, cfg::kDefaultSweepSeed);
    cfg::OrchestratorOptions opts;
    opts.hostThreads = hostThreads;
    std::vector<cfg::RunResult> results;
    cfg::runManifest(m, "", opts, {}, &results);
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.str();
      EXPECT_GT(r.stmCommits() + r.htmCommits(), 0u) << r.str();
    }
    if (reference.empty()) {
      reference = std::move(results);
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[i].cycles, reference[i].cycles)
          << "hostThreads=" << hostThreads << " job " << i;
      EXPECT_TRUE(results[i].stats == reference[i].stats)
          << "snapshot diverged at hostThreads=" << hostThreads << " job " << i;
    }
  }
}

}  // namespace
}  // namespace lktm::tm
