// HTMLock and switchingMode mechanisms at protocol level: TL/STL admission,
// lock-transaction irrevocability, concurrent HTM execution, LLC overflow
// signatures, and in-place switching on capacity overflow (Fig 5/6).
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace lktm::test {
namespace {

constexpr Addr kA = 0x100000;
constexpr Addr kB = 0x200040;

TestSystemOptions htmLockOpts(bool switching = false,
                              mem::CacheGeometry geo = {32 * 1024, 4}) {
  TestSystemOptions opt;
  opt.policy = htmLockPolicy(switching);
  opt.l1 = geo;
  return opt;
}

TEST(HtmLock, TlEntryGrantedWhenFree) {
  TestSystem sys(htmLockOpts());
  sys.hlBegin(0);
  EXPECT_EQ(sys.l1(0).mode(), TxMode::TL);
  EXPECT_TRUE(sys.dir().arbiter().active());
  EXPECT_EQ(sys.dir().arbiter().holder(), 0);
  sys.hlEnd(0);
  EXPECT_EQ(sys.l1(0).mode(), TxMode::None);
  sys.drain();
  EXPECT_FALSE(sys.dir().arbiter().active());
}

TEST(HtmLock, HtmTxRunsConcurrentlyWithLockTx) {
  // The headline HTMLock property: a lock transaction and an HTM transaction
  // on disjoint data both commit, neither aborts.
  TestSystem sys(htmLockOpts());
  sys.hlBegin(0);
  sys.store(0, kA, 1);
  sys.l1(1).txBegin();
  sys.store(1, kB, 2);
  sys.commit(1);           // HTM tx commits while the lock tx is running
  sys.hlEnd(0);
  EXPECT_TRUE(sys.aborts(0).empty());
  EXPECT_TRUE(sys.aborts(1).empty());
  EXPECT_EQ(sys.load(1, kA), 1u);
  EXPECT_EQ(sys.load(0, kB), 2u);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, ConflictingHtmTxIsRejectedNotLockTx) {
  TestSystem sys(htmLockOpts());
  sys.setPriority(1, 1'000'000);  // even a "high priority" HTM tx loses
  sys.hlBegin(0);
  sys.store(0, kA, 1);
  sys.l1(1).txBegin();
  auto done = sys.asyncStore(1, kA, 2);
  sys.drain();
  EXPECT_FALSE(*done) << "HTM tx must wait for the irrevocable lock tx";
  EXPECT_TRUE(sys.aborts(0).empty());
  sys.hlEnd(0);
  sys.runUntil(*done);  // woken at hlend
  sys.commit(1);
  EXPECT_EQ(sys.load(0, kA), 2u);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, LockTxAbortsConflictingHtmTxOnItsOwnRequests) {
  TestSystem sys(htmLockOpts());
  sys.setPriority(1, 1'000'000);
  sys.l1(1).txBegin();
  sys.store(1, kA, 2);  // HTM tx owns the line speculatively
  sys.hlBegin(0);
  sys.store(0, kA, 1);  // lock-mode request carries top priority
  ASSERT_EQ(sys.aborts(1).size(), 1u);
  EXPECT_EQ(sys.aborts(1)[0], AbortCause::LockConflict);
  sys.hlEnd(0);
  EXPECT_EQ(sys.load(1, kA), 1u);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, LockTxRecordsReadWriteSets) {
  TestSystem sys(htmLockOpts());
  sys.hlBegin(0);
  sys.load(0, kA);
  sys.store(0, kB, 1);
  EXPECT_TRUE(sys.l1(0).cache().find(lineOf(kA))->txRead);
  EXPECT_TRUE(sys.l1(0).cache().find(lineOf(kB))->txWrite);
  sys.hlEnd(0);
  EXPECT_EQ(sys.l1(0).cache().countIf(
                [](const mem::CacheEntry& e) { return e.transactional(); }),
            0u);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, LockTxSurvivesFaultsByConstruction) {
  // TL mode is not speculative: there is no abort path at all; we simply
  // verify stores are immediately durable and mode survives arbitrary events.
  TestSystem sys(htmLockOpts());
  sys.hlBegin(0);
  sys.store(0, kA, 7);
  EXPECT_EQ(sys.l1(0).mode(), TxMode::TL);
  sys.hlEnd(0);
  EXPECT_EQ(sys.load(1, kA), 7u);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, OverflowSpillsIntoLlcSignatures) {
  TestSystem sys(htmLockOpts(false, {8 * 1024, 4}));  // 32 sets
  sys.hlBegin(0);
  for (int i = 0; i < 5; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 10 + i);
  }
  sys.drain();
  // One line spilled; it is in the write signature, and its (irrevocable)
  // data reached the LLC.
  EXPECT_TRUE(sys.dir().htmlockUnit().writeSig().mayContain(lineOf(kA)));
  EXPECT_EQ(sys.dir().llcData(lineOf(kA))[wordOf(kA)], 10u);
  // Another core's request for the spilled line is signature-rejected.
  auto done = sys.asyncLoad(1, kA);
  sys.runFor(20000);  // non-tx requests poll; the queue never drains
  EXPECT_FALSE(*done);
  EXPECT_GT(sys.dir().sigRejects(), 0u);
  // hlend clears signatures and wakes the waiter.
  sys.hlEnd(0);
  sys.runUntil(*done);
  EXPECT_EQ(sys.load(1, kA), 10u);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, ReadOverflowAllowsSharedButNotExclusive) {
  TestSystem sys(htmLockOpts(false, {8 * 1024, 4}));
  sys.memory().writeWord(kA, 5);
  sys.load(1, kA);  // another cached copy exists
  sys.hlBegin(0);
  for (int i = 0; i < 5; ++i) {
    sys.load(0, kA + static_cast<Addr>(i) * 32 * kLineBytes);
  }
  sys.drain();
  EXPECT_TRUE(sys.dir().htmlockUnit().readSig().mayContain(lineOf(kA)));
  // A shared read is fine (another copy exists: no silent-E hazard)...
  TestSystem* s = &sys;
  EXPECT_EQ(s->load(1, kA), 5u);  // core 1 still has/refreshes S copy
  // ...but an exclusive request must be rejected.
  auto done = sys.asyncStore(1, kA, 9);
  sys.runFor(20000);
  EXPECT_FALSE(*done);
  sys.hlEnd(0);
  sys.runUntil(*done);
  sys.drain();
  sys.expectCoherent();
}

TEST(HtmLock, SecondTlWaitsForFirst) {
  TestSystem sys(htmLockOpts());
  sys.hlBegin(0);
  bool granted = false;
  sys.l1(1).hlBegin([&] { granted = true; });
  sys.drain();
  EXPECT_FALSE(granted) << "only one HTMLock-mode transaction at a time";
  sys.hlEnd(0);
  sys.runUntil(granted);
  EXPECT_EQ(sys.l1(1).mode(), TxMode::TL);
  sys.hlEnd(1);
  sys.drain();
  sys.expectCoherent();
}

// --------------------------------------------------------- switchingMode

TEST(SwitchingMode, OverflowSwitchesToStl) {
  TestSystem sys(htmLockOpts(true, {8 * 1024, 4}));
  sys.l1(0).txBegin();
  for (int i = 0; i < 4; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 20 + i);
  }
  // Fifth same-set line: instead of aborting, apply for STL.
  sys.store(0, kA + 4ull * 32 * kLineBytes, 24);
  EXPECT_EQ(sys.l1(0).mode(), TxMode::STL);
  EXPECT_EQ(sys.switchedCount(0), 1u);
  EXPECT_TRUE(sys.aborts(0).empty()) << "no work lost";
  EXPECT_EQ(sys.dir().arbiter().holderMode(), TxMode::STL);
  EXPECT_EQ(sys.l1(0).txCounters().switchAttempts, 1u);
  EXPECT_EQ(sys.l1(0).txCounters().switchGrants, 1u);
  // The spilled line went into the signatures (irrevocable data).
  sys.drain();
  EXPECT_TRUE(sys.dir().htmlockUnit().anyOverflow());
  // Commit via hlend (Listing 2's STL branch).
  sys.hlEnd(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sys.load(1, kA + static_cast<Addr>(i) * 32 * kLineBytes), 20u + i);
  }
  sys.drain();
  sys.expectCoherent();
}

TEST(SwitchingMode, DeniedWhileLockTxActiveAbortsAsUsual) {
  TestSystem sys(htmLockOpts(true, {8 * 1024, 4}));
  sys.hlBegin(1);  // TL holder occupies the HTMLock slot
  sys.l1(0).txBegin();
  for (int i = 0; i < 4; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 1);
  }
  auto done = sys.asyncStore(0, kA + 4ull * 32 * kLineBytes, 1);
  sys.drain();
  EXPECT_FALSE(*done);
  ASSERT_EQ(sys.aborts(0).size(), 1u);
  EXPECT_EQ(sys.aborts(0)[0], AbortCause::Overflow);
  EXPECT_EQ(sys.l1(0).txCounters().switchAttempts, 1u);
  EXPECT_EQ(sys.l1(0).txCounters().switchGrants, 0u);
  sys.hlEnd(1);
  sys.drain();
  sys.expectCoherent();
}

TEST(SwitchingMode, OnlyOneSwitchAttemptPerTransaction) {
  TestSystem sys(htmLockOpts(true, {8 * 1024, 4}));
  sys.hlBegin(1);  // slot taken: the switch attempt below will be denied
  sys.l1(0).txBegin();
  for (int i = 0; i < 4; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 1);
  }
  auto done = sys.asyncStore(0, kA + 4ull * 32 * kLineBytes, 1);
  sys.drain();
  ASSERT_EQ(sys.aborts(0).size(), 1u);
  // Retry the transaction; the slot is still taken. Second overflow in the
  // *new* attempt is allowed one fresh switch attempt.
  sys.l1(0).txBegin();
  for (int i = 0; i < 4; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 1);
  }
  auto done2 = sys.asyncStore(0, kA + 4ull * 32 * kLineBytes, 1);
  sys.drain();
  EXPECT_FALSE(*done2);
  EXPECT_EQ(sys.l1(0).txCounters().switchAttempts, 2u);
  sys.hlEnd(1);
  sys.drain();
  sys.expectCoherent();
}

TEST(SwitchingMode, StlBlocksExternalRequestsWhileApplying) {
  // Functional check: a conflicting request arriving during/after the switch
  // is rejected rather than aborting the (now irrevocable) transaction.
  TestSystem sys(htmLockOpts(true, {8 * 1024, 4}));
  sys.l1(0).txBegin();
  for (int i = 0; i < 5; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 30 + i);
  }
  ASSERT_EQ(sys.l1(0).mode(), TxMode::STL);
  auto done = sys.asyncStore(1, kA + 32 * kLineBytes, 99);
  sys.runFor(20000);
  EXPECT_FALSE(*done);
  EXPECT_TRUE(sys.aborts(0).empty());
  sys.hlEnd(0);
  sys.runUntil(*done);
  sys.drain();
  sys.expectCoherent();
}

TEST(SwitchingMode, TlNeedsAuthorizationWhileStlActive) {
  TestSystem sys(htmLockOpts(true, {8 * 1024, 4}));
  sys.l1(0).txBegin();
  for (int i = 0; i < 5; ++i) {
    sys.store(0, kA + static_cast<Addr>(i) * 32 * kLineBytes, 1);
  }
  ASSERT_EQ(sys.l1(0).mode(), TxMode::STL);
  bool granted = false;
  sys.l1(1).hlBegin([&] { granted = true; });
  sys.drain();
  EXPECT_FALSE(granted) << "TL must wait for the STL transaction";
  sys.hlEnd(0);
  sys.runUntil(granted);
  EXPECT_EQ(sys.l1(1).mode(), TxMode::TL);
  sys.hlEnd(1);
  sys.drain();
  sys.expectCoherent();
}


// ------------------------------------------- switch-on-fault extension API

TEST(SwitchOnFault, GrantedWhenSlotFree) {
  TestSystem sys(htmLockOpts(true));
  sys.l1(0).txBegin();
  sys.store(0, kA, 1);
  bool granted = false;
  bool called = false;
  sys.l1(0).trySwitchToLockMode([&](bool ok) {
    granted = ok;
    called = true;
  });
  while (!called) {
    ASSERT_TRUE(sys.engine().queue().runOne());
  }
  EXPECT_TRUE(granted);
  EXPECT_EQ(sys.l1(0).mode(), TxMode::STL);
  // The speculative store survives and commits via hlend.
  sys.hlEnd(0);
  EXPECT_EQ(sys.load(1, kA), 1u);
  sys.drain();
  sys.expectCoherent();
}

TEST(SwitchOnFault, DeniedWhenSlotTaken) {
  TestSystem sys(htmLockOpts(true));
  sys.hlBegin(1);
  sys.l1(0).txBegin();
  sys.store(0, kA, 1);
  bool called = false, granted = true;
  sys.l1(0).trySwitchToLockMode([&](bool ok) {
    granted = ok;
    called = true;
  });
  while (!called) sys.engine().queue().runOne();
  EXPECT_FALSE(granted);
  EXPECT_EQ(sys.l1(0).mode(), TxMode::Htm) << "caller decides how to die";
  sys.l1(0).txAbort(AbortCause::Fault);
  sys.hlEnd(1);
  sys.drain();
  sys.expectCoherent();
}

TEST(SwitchOnFault, RefusedOutsideHtmOrAfterPriorAttempt) {
  TestSystem sys(htmLockOpts(true));
  bool granted = true;
  sys.l1(0).trySwitchToLockMode([&](bool ok) { granted = ok; });
  EXPECT_FALSE(granted) << "not in a transaction";
  sys.drain();
}

}  // namespace
}  // namespace lktm::test
