// Workload generators: structural properties, determinism, footprints, and
// end-to-end invariant verification through the full simulator.
#include <gtest/gtest.h>

#include "config/runner.hpp"
#include "config/systems.hpp"
#include "workloads/micro.hpp"
#include "workloads/workload.hpp"

namespace lktm::wl {
namespace {

/// Best-effort lock-elision backend with the default policy — the emission
/// path every pre-backend test used.
std::unique_ptr<tm::Backend> makeElisionBackend() {
  tm::BackendConfig bc;
  bc.lockAddr = kFallbackLockAddr;
  return tm::makeBackend("lockiller", bc);
}

TEST(AddressSpace, BumpAllocatesAligned) {
  AddressSpace s(0x1000);
  const Addr a = s.alloc(100);
  const Addr b = s.alloc(1, 256);
  EXPECT_EQ(a % kLineBytes, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
  EXPECT_THROW(s.alloc(8, 3), std::invalid_argument);
}

TEST(AddressSpace, AllocLinesAdvances) {
  AddressSpace s(0);
  const Addr a = s.allocLines(4);
  const Addr b = s.allocLines(1);
  EXPECT_EQ(b - a, 4 * kLineBytes);
}

TEST(Stamp, RegistryCoversAllNineWorkloads) {
  const auto names = stampNames();
  EXPECT_EQ(names.size(), 9u);
  for (const auto& n : names) {
    auto w = makeStamp(n);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), n);
  }
  EXPECT_THROW(makeStamp("bayes"), std::invalid_argument);  // excluded by paper
}

TEST(Stamp, ProgramsAreBuildableForEveryThreadCount) {
  mem::MainMemory mem;
  for (const auto& n : stampNames()) {
    auto w = makeStamp(n);
    w->init(mem, 32);
    tm::BackendConfig bc;
    bc.policy.htmLock = true;
    bc.lockAddr = kFallbackLockAddr;
    auto backend = tm::makeBackend("lockiller", bc);
    std::size_t total = 0;
    for (unsigned t = 0; t < 32; ++t) {
      const auto p = w->buildProgram(t, 32, *backend);
      EXPECT_GT(p.size(), 4u) << n;
      total += p.size();
    }
    EXPECT_GT(total, 500u) << n;
    EXPECT_GT(w->footprintEnd(), 0x100000u) << n;
  }
}

TEST(Stamp, InitTwiceThrows) {
  mem::MainMemory mem;
  auto w = makeGenome();
  w->init(mem, 2);
  EXPECT_THROW(w->init(mem, 2), std::logic_error);
}

TEST(Stamp, GenerationIsDeterministic) {
  mem::MainMemory m1, m2;
  auto a = makeVacation(true, 42);
  auto b = makeVacation(true, 42);
  a->init(m1, 4);
  b->init(m2, 4);
  auto ba = makeElisionBackend();
  auto bb = makeElisionBackend();
  for (unsigned t = 0; t < 4; ++t) {
    const auto pa = a->buildProgram(t, 4, *ba);
    const auto pb = b->buildProgram(t, 4, *bb);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa.code[i].op, pb.code[i].op);
      EXPECT_EQ(pa.code[i].imm, pb.code[i].imm);
    }
  }
}

TEST(Stamp, DifferentSeedsDiffer) {
  mem::MainMemory m1, m2;
  auto a = makeVacation(true, 1);
  auto b = makeVacation(true, 2);
  a->init(m1, 2);
  b->init(m2, 2);
  auto backend = makeElisionBackend();
  const auto pa = a->buildProgram(0, 2, *backend);
  const auto pb = b->buildProgram(0, 2, *backend);
  bool differs = pa.size() != pb.size();
  for (std::size_t i = 0; !differs && i < pa.size(); ++i) {
    differs = pa.code[i].imm != pb.code[i].imm;
  }
  EXPECT_TRUE(differs);
}

TEST(Stamp, WorkIsPartitionedNotReplicated) {
  // Total expected increments must not depend on the thread count.
  auto total = [](unsigned threads) {
    mem::MainMemory mem;
    auto w = makeSsca2(7);
    auto* base = dynamic_cast<StampWorkloadBase*>(w.get());
    w->init(mem, threads);
    auto backend = makeElisionBackend();
    for (unsigned t = 0; t < threads; ++t) w->buildProgram(t, threads, *backend);
    return base->expectedIncrementTotal();
  };
  EXPECT_EQ(total(2), total(32));
}

struct LabyrinthProfile : ::testing::Test {};

TEST(Stamp, LabyrinthHasLargeSets) {
  mem::MainMemory mem;
  auto w = makeLabyrinth(3);
  w->init(mem, 2);
  auto backend = makeElisionBackend();
  const auto p = w->buildProgram(0, 2, *backend);
  // 24 txs/thread, each >120 accesses: the program must be large.
  EXPECT_GT(p.size(), 24u * 120u);
}

TEST(Stamp, YadaRaisesExceptions) {
  mem::MainMemory mem;
  auto w = makeYada(3);
  w->init(mem, 2);
  auto backend = makeElisionBackend();
  const auto p = w->buildProgram(0, 2, *backend);
  unsigned syscalls = 0;
  for (const auto& i : p.code) syscalls += i.op == cpu::Op::SysCall;
  EXPECT_GT(syscalls, 20u);  // ~70% of 64 transactions
}

TEST(Stamp, KmeansContentionKnob) {
  // kmeans+ concentrates its updates on far fewer lines than kmeans-.
  auto distinctCells = [](bool high) {
    mem::MainMemory mem;
    auto w = makeKmeans(high, 5);
    w->init(mem, 2);
    auto backend = makeElisionBackend();
    w->buildProgram(0, 1, *backend);
    return w->footprintEnd();
  };
  EXPECT_LT(distinctCells(true), distinctCells(false));
}

// ------------------------------------------------- full-stack invariants

cfg::RunResult runMicro(const char* system, const cfg::WorkloadFactory& f,
                        unsigned threads) {
  cfg::RunConfig rc;
  rc.system = cfg::systemByName(system);
  rc.threads = threads;
  return cfg::runSimulation(rc, f);
}

class MicroInvariantTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MicroInvariantTest, MaxContentionCounter) {
  const auto r = runMicro(GetParam(), [] { return makeCounter(1, 1, 96); }, 8);
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST_P(MicroInvariantTest, BankConservesMoney) {
  const auto r = runMicro(GetParam(), [] { return makeBank(32, 120); }, 8);
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST_P(MicroInvariantTest, LinkedListPointerChase) {
  const auto r = runMicro(GetParam(), [] { return makeLinkedList(64, 5, 80); }, 4);
  EXPECT_TRUE(r.ok()) << r.str();
}

INSTANTIATE_TEST_SUITE_P(AllSystems, MicroInvariantTest,
                         ::testing::Values("CGL", "Baseline", "LosaTM-SAFU",
                                           "Lockiller-RAI", "Lockiller-RRI",
                                           "Lockiller-RWI", "Lockiller-RWL",
                                           "Lockiller-RWIL", "LockillerTM"),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace lktm::wl
