// Kernel regression tests for the pooled calendar-queue event substrate:
//  * a 10k-event replay that locks the calendar queue's total order to the
//    reference binary-heap semantics ((cycle, insertion-seq) ascending),
//    including horizon-crossing and overflow-migration tie-break cases;
//  * pool-reuse proofs that steady-state simulation performs no event-node,
//    message-pool, or callable heap allocations after warm-up (kstats
//    telemetry hooks);
//  * SimContext reuse determinism: the same run in a recycled context is
//    bit-identical to a fresh one.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "coherence/messages.hpp"
#include "config/runner.hpp"
#include "config/systems.hpp"
#include "noc/ideal.hpp"
#include "noc/mesh.hpp"
#include "sim/context.hpp"
#include "sim/event_queue.hpp"
#include "sim/kernel_stats.hpp"
#include "workloads/micro.hpp"

namespace lktm {
namespace {

// ---------------------------------------------------------------------------
// Determinism replay: drive the production EventQueue and a reference
// binary-heap queue (the seed implementation's semantics) with an identical
// self-expanding event trace and require the same execution order.

/// Splitmix-style hash: deterministic per-event randomness without an RNG
/// object that the two queue drivers would have to share.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Delay distribution exercising every queue path: same-cycle (0), near-ring,
/// horizon-straddling, and deep-overflow delays (up to 16x the horizon).
Cycle traceDelay(std::uint64_t h) {
  switch (h % 8) {
    case 0: return 0;
    case 1: return 1 + (h >> 8) % 7;
    case 2: return (h >> 8) % 97;
    case 3: return (h >> 8) % 500;
    case 4: return sim::EventQueue::kHorizon - 2 + (h >> 8) % 5;
    case 5: return sim::EventQueue::kHorizon + (h >> 8) % 300;
    case 6: return (h >> 8) % 65536;
    default: return 3;
  }
}

/// Trace logic shared by both drivers: record the event, then (budget
/// permitting) spawn 0-2 follow-up events whose ids/delays derive only from
/// the parent id — identical expansion regardless of the queue under test.
template <class ScheduleFn>
void onTraceEvent(std::uint64_t id, std::vector<std::uint64_t>& order, int& budget, ScheduleFn&& sched) {
  order.push_back(id);
  const std::uint64_t h = mix(id);
  const int children = static_cast<int>(h % 3);
  for (int c = 0; c < children; ++c) {
    if (budget <= 0) return;
    --budget;
    const std::uint64_t hc = mix(h + static_cast<std::uint64_t>(c) + 1);
    sched(traceDelay(hc), id * 3 + static_cast<std::uint64_t>(c) + 1000);
  }
}

/// Reference implementation: the seed's std::priority_queue ordered on
/// (cycle, insertion seq) — smallest first, FIFO within a cycle.
struct ReferenceHeapQueue {
  struct Ev {
    Cycle when;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> pq;
  Cycle now = 0;
  std::uint64_t seq = 0;

  void schedule(Cycle delay, std::uint64_t id) { pq.push(Ev{now + delay, seq++, id}); }

  std::vector<std::uint64_t> run(int seedEvents, int totalBudget) {
    std::vector<std::uint64_t> order;
    int budget = totalBudget;
    for (int i = 0; i < seedEvents; ++i) {
      schedule(traceDelay(mix(static_cast<std::uint64_t>(i) * 77)),
               static_cast<std::uint64_t>(i));
    }
    while (!pq.empty()) {
      const Ev e = pq.top();
      pq.pop();
      now = e.when;
      onTraceEvent(e.id, order, budget,
                   [this](Cycle d, std::uint64_t cid) { schedule(d, cid); });
    }
    return order;
  }
};

std::vector<std::uint64_t> runCalendarTrace(int seedEvents, int totalBudget) {
  sim::EventQueue q;
  std::vector<std::uint64_t> order;
  int budget = totalBudget;
  std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
    onTraceEvent(id, order, budget, [&](Cycle d, std::uint64_t cid) {
      q.schedule(d, [&fire, cid] { fire(cid); });
    });
  };
  for (int i = 0; i < seedEvents; ++i) {
    const std::uint64_t id = static_cast<std::uint64_t>(i);
    q.schedule(traceDelay(mix(id * 77)), [&fire, id] { fire(id); });
  }
  while (q.runOne()) {
  }
  return order;
}

TEST(KernelDeterminism, CalendarQueueReplaysReferenceHeapOrder) {
  // ~10k executed events: 2048 seeds + 8000 spawn budget.
  ReferenceHeapQueue ref;
  const std::vector<std::uint64_t> expect = ref.run(2048, 8000);
  const std::vector<std::uint64_t> got = runCalendarTrace(2048, 8000);
  ASSERT_GE(expect.size(), 10000u);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(got[i], expect[i]) << "divergence at event " << i;
  }
}

// ---------------------------------------------------------------------------
// Pool reuse: after a warm-up run, repeating identical work in the same
// SimContext must not allocate event slabs, pool slabs, or heap callables.

struct CountSink final : coh::MsgSink {
  std::uint64_t received = 0;
  void onMessage(const coh::Msg&) override { ++received; }
};

TEST(KernelPools, MessageTrafficIsAllocationFreeAfterWarmup) {
  sim::SimContext ctx;
  CountSink sink;
  noc::IdealNetwork net(ctx, 3);
  auto burst = [&] {
    ctx.beginRun(1'000'000);
    for (int i = 0; i < 256; ++i) {
      coh::Msg m{.type = coh::MsgType::DataE,
                 .line = static_cast<LineAddr>(i),
                 .hasData = true};
      coh::post(ctx, net, 0, 1, sink, std::move(m));
    }
    ctx.queue().runUntilDrained(1'000'000'000);
  };
  burst();  // warm-up populates the Msg pool and event slabs
  const auto before = sim::kstats::snapshot();
  burst();
  burst();
  const auto after = sim::kstats::snapshot();
  EXPECT_EQ(after.heapCallables, before.heapCallables);
  EXPECT_EQ(after.poolSlabs, before.poolSlabs);
  EXPECT_EQ(after.queueSlabs, before.queueSlabs);
  EXPECT_EQ(sink.received, 3u * 256u);
}

TEST(KernelPools, FullSimulationIsAllocationFreeAfterWarmup) {
  sim::SimContext ctx;
  auto simulate = [&] {
    cfg::RunConfig rc;
    rc.system = cfg::systemByName("LockillerTM");
    rc.threads = 4;
    rc.runCoherenceChecker = false;
    return cfg::runSimulation(rc, [] { return wl::makeCounter(4, 2, 64); }, &ctx);
  };
  ASSERT_TRUE(simulate().ok());  // warm-up
  const auto before = sim::kstats::snapshot();
  ASSERT_TRUE(simulate().ok());
  ASSERT_TRUE(simulate().ok());
  const auto after = sim::kstats::snapshot();
  // The kernel hot path (event nodes, pooled messages/packets, inline
  // callables) must be memory-steady across identical back-to-back runs.
  EXPECT_EQ(after.queueSlabs, before.queueSlabs);
  EXPECT_EQ(after.poolSlabs, before.poolSlabs);
  EXPECT_EQ(after.heapCallables, before.heapCallables);
}

// ---------------------------------------------------------------------------
// Context reuse determinism: a recycled SimContext reproduces a fresh
// context's results exactly (beginRun resets all logical state).

TEST(KernelContext, ReusedContextMatchesFreshRun) {
  auto simulate = [](sim::SimContext* ctx) {
    cfg::RunConfig rc;
    rc.system = cfg::systemByName("LockillerTM");
    rc.threads = 8;
    rc.runCoherenceChecker = false;
    return cfg::runSimulation(rc, [] { return wl::makeStamp("intruder"); }, ctx);
  };
  const auto fresh = simulate(nullptr);
  sim::SimContext ctx;
  simulate(&ctx);  // dirty the context with a first run
  const auto reused = simulate(&ctx);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(fresh.cycles, reused.cycles);
  EXPECT_EQ(fresh.htmCommits(), reused.htmCommits());
  EXPECT_EQ(fresh.lockCommits(), reused.lockCommits());
  EXPECT_EQ(fresh.aborts(), reused.aborts());
  EXPECT_EQ(fresh.messages(), reused.messages());
}

TEST(KernelContext, PoolsSurviveBeginRun) {
  sim::SimContext ctx;
  auto& msgs = ctx.pool<coh::Msg>();
  coh::Msg* a = msgs.acquire();
  msgs.recycle(a);
  const std::size_t slabs = ctx.pooledSlabs();
  EXPECT_GT(slabs, 0u);
  ctx.beginRun(1000);
  EXPECT_EQ(ctx.pooledSlabs(), slabs);  // memory retained across runs
  EXPECT_EQ(&ctx.pool<coh::Msg>(), &msgs);
  EXPECT_EQ(ctx.runsStarted(), 1u);
}

}  // namespace
}  // namespace lktm
